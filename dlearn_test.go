package dlearn_test

import (
	"strings"
	"testing"

	"dlearn"
)

// buildTinyProblem constructs the public-API equivalent of the package
// documentation example: high-grossing movies are the comedies, with BOM
// style titles that only match IMDB titles approximately.
func buildTinyProblem() dlearn.Problem {
	schema := dlearn.NewSchema()
	schema.MustAdd(dlearn.NewRelation("movies",
		dlearn.Attr("id", "imdb_id"), dlearn.Attr("title", "imdb_title"), dlearn.ConstAttr("year", "year")))
	schema.MustAdd(dlearn.NewRelation("mov2genres",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("genre", "genre")))

	db := dlearn.NewInstance(schema)
	rows := []struct{ id, title, genre string }{
		{"m1", "Silent Harbor", "comedy"},
		{"m2", "Crimson Station", "comedy"},
		{"m3", "Broken Mirror", "drama"},
		{"m4", "Hidden Canyon", "drama"},
		{"m5", "Electric Parade", "comedy"},
		{"m6", "Midnight Archive", "thriller"},
	}
	for _, r := range rows {
		db.MustInsert("movies", r.id, r.title+" (2007)", "2007")
		db.MustInsert("mov2genres", r.id, r.genre)
	}

	target := dlearn.NewRelation("highGrossing", dlearn.Attr("title", "bom_title"))
	var pos, neg []dlearn.Tuple
	for _, r := range rows {
		e := dlearn.NewTuple("highGrossing", r.title)
		if r.genre == "comedy" {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	return dlearn.Problem{
		Instance: db,
		Target:   target,
		MDs:      []dlearn.MD{dlearn.SimpleMD("md_title", "highGrossing", "title", "movies", "title")},
		Pos:      pos,
		Neg:      neg,
	}
}

func tinyConfig() dlearn.Config {
	cfg := dlearn.DefaultConfig()
	cfg.Threads = 2
	cfg.BottomClause.Iterations = 2
	cfg.BottomClause.KM = 2
	cfg.GeneralizationSample = 3
	cfg.MaxClauses = 3
	return cfg
}

func TestPublicAPILearn(t *testing.T) {
	p := buildTinyProblem()
	def, report, err := dlearn.Learn(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if def.Len() == 0 {
		t.Fatal("no clauses learned through the public API")
	}
	if report.Duration <= 0 {
		t.Error("report duration missing")
	}
	if !strings.Contains(def.String(), "comedy") {
		t.Errorf("learned definition should mention comedy:\n%s", def)
	}
}

func TestPublicAPIModelAndEvaluation(t *testing.T) {
	p := buildTinyProblem()
	model, _, err := dlearn.LearnModel(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	split := dlearn.Split{TestPos: p.Pos, TestNeg: p.Neg}
	m, err := dlearn.EvaluateSplit(model, split)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1() < 0.9 {
		t.Errorf("training F1 = %.2f, expected near-perfect fit on the tiny problem", m.F1())
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	p := buildTinyProblem()
	def, model, report, err := dlearn.RunBaseline(dlearn.CastorNoMD, p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if def == nil || model == nil || report == nil {
		t.Fatal("RunBaseline returned nil components")
	}
	// Without MDs the heterogeneous titles cannot be connected, so no
	// informative clause can be learned.
	for _, c := range def.Clauses {
		if c.Length() > 0 {
			t.Errorf("Castor-NoMD learned an informative clause over heterogeneous data: %v", c)
		}
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	mcfg := dlearn.DefaultMoviesConfig()
	mcfg.Movies = 60
	mcfg.Positives = 8
	mcfg.Negatives = 16
	ds, err := dlearn.GenerateMovies(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Problem.Validate(); err != nil {
		t.Fatal(err)
	}
	pcfg := dlearn.DefaultProductsConfig()
	pcfg.Products = 50
	if _, err := dlearn.GenerateProducts(pcfg); err != nil {
		t.Fatal(err)
	}
	ccfg := dlearn.DefaultCitationsConfig()
	ccfg.Papers = 50
	ccfg.Positives = 20
	ccfg.Negatives = 40
	if _, err := dlearn.GenerateCitations(ccfg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIKFold(t *testing.T) {
	p := buildTinyProblem()
	splits, err := dlearn.KFold(p.Pos, p.Neg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("expected 3 folds, got %d", len(splits))
	}
	if _, err := dlearn.HoldOut(p.Pos, p.Neg, 0.34, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExperimentOptions(t *testing.T) {
	if dlearn.DefaultExperimentOptions().Folds != 5 {
		t.Error("default experiment options should use 5-fold cross validation")
	}
	if !dlearn.QuickExperimentOptions().Quick {
		t.Error("quick experiment options should set Quick")
	}
}
