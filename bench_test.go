// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6) in quick mode, plus ablation benchmarks for the design choices
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// For paper-scale runs use cmd/dlearn-bench, which uses the full dataset
// sizes and the 5-fold cross validation of the paper.
package dlearn_test

import (
	"context"
	"io"
	"testing"

	"dlearn/internal/baseline"
	"dlearn/internal/bench"
	"dlearn/internal/coverage"
	"dlearn/internal/datagen"
	"dlearn/internal/logic"
	"dlearn/internal/repair"
	"dlearn/internal/similarity"
)

func quietQuickOptions() bench.Options {
	o := bench.QuickOptions()
	o.Out = io.Discard
	return o
}

func meanF1Table4(rows []bench.Table4Row, system baseline.System) float64 {
	var sum float64
	var n int
	for _, r := range rows {
		if r.System == system {
			sum += r.F1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkTable3DatasetStats regenerates Table 3 (dataset statistics).
func BenchmarkTable3DatasetStats(b *testing.B) {
	o := quietQuickOptions()
	for i := 0; i < b.N; i++ {
		stats, err := bench.RunTable3(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, s := range stats {
			total += s.Tuples
		}
		b.ReportMetric(float64(total), "tuples")
	}
}

// BenchmarkTable4MDLearning regenerates Table 4 (Castor baselines vs DLearn
// over MD-only dirty datasets).
func BenchmarkTable4MDLearning(b *testing.B) {
	o := quietQuickOptions()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable4(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanF1Table4(rows, baseline.DLearn), "dlearn-f1")
		b.ReportMetric(meanF1Table4(rows, baseline.CastorNoMD), "nomd-f1")
	}
}

// BenchmarkTable5CFDLearning regenerates Table 5 (DLearn-CFD vs
// DLearn-Repaired under injected CFD violations).
func BenchmarkTable5CFDLearning(b *testing.B) {
	o := quietQuickOptions()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable5(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		var cfd, rep float64
		var nc, nr int
		for _, r := range rows {
			if r.System == baseline.DLearnCFD {
				cfd += r.F1
				nc++
			} else {
				rep += r.F1
				nr++
			}
		}
		if nc > 0 {
			b.ReportMetric(cfd/float64(nc), "dlearn-cfd-f1")
		}
		if nr > 0 {
			b.ReportMetric(rep/float64(nr), "dlearn-repaired-f1")
		}
	}
}

// BenchmarkTable6ExampleScaling regenerates Table 6 (training-set scaling
// with CFD violations).
func BenchmarkTable6ExampleScaling(b *testing.B) {
	o := quietQuickOptions()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable6(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) > 0 {
			b.ReportMetric(rows[len(rows)-1].F1, "largest-f1")
		}
	}
}

// BenchmarkTable7IterationDepth regenerates Table 7 (the effect of the
// number of iterations d).
func BenchmarkTable7IterationDepth(b *testing.B) {
	o := quietQuickOptions()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable7(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) > 1 {
			b.ReportMetric(rows[len(rows)-1].F1-rows[0].F1, "f1-gain-deepest")
		}
	}
}

// BenchmarkFigure1LeftExampleSweep regenerates Figure 1 (left).
func BenchmarkFigure1LeftExampleSweep(b *testing.B) {
	o := quietQuickOptions()
	for i := 0; i < b.N; i++ {
		pts, err := bench.RunFigure1Left(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) > 0 {
			b.ReportMetric(pts[len(pts)-1].F1, "largest-f1")
		}
	}
}

// BenchmarkFigure1MiddleSampleSweep regenerates Figure 1 (middle).
func BenchmarkFigure1MiddleSampleSweep(b *testing.B) {
	o := quietQuickOptions()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFigure1Middle(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1RightSampleSweep regenerates Figure 1 (right).
func BenchmarkFigure1RightSampleSweep(b *testing.B) {
	o := quietQuickOptions()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFigure1Right(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks ----------------------------------------------------

// ablationDataset builds a small dirty dataset reused by the ablations.
func ablationDataset(b *testing.B) *datagen.Dataset {
	b.Helper()
	cfg := datagen.DefaultMoviesConfig()
	cfg.Movies = 80
	cfg.Positives = 10
	cfg.Negatives = 20
	cfg.ViolationRate = 0.1
	ds, err := datagen.Movies(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkAblationRepairExpansion measures repaired-clause expansion of a
// bottom clause with MD and CFD repair literals — the operation the
// repair-literal representation makes lazy instead of materializing repairs
// of the whole database.
func BenchmarkAblationRepairExpansion(b *testing.B) {
	clause := cfdAndMDClause()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := repair.RepairedClauses(clause, repair.Options{})
		if len(out) == 0 {
			b.Fatal("no repaired clauses")
		}
	}
}

// BenchmarkAblationMinimalCFDRepair measures the instance-level minimal
// repair used by the DLearn-Repaired baseline (the work DLearn avoids by
// learning over the dirty instance directly).
func BenchmarkAblationMinimalCFDRepair(b *testing.B) {
	ds := ablationDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := repair.MinimalCFDRepair(ds.Problem.Instance, ds.Problem.CFDs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSimilarityBlocking compares the blocked similarity index
// against the brute-force scan it replaces.
func BenchmarkAblationSimilarityBlocking(b *testing.B) {
	ds := ablationDataset(b)
	values := ds.Problem.Instance.DistinctValues("omdb_movies", 1)
	probes := ds.Problem.Instance.DistinctValues("imdb_movies", 1)[:20]
	sim := similarity.Default()

	b.Run("blocked-index", func(b *testing.B) {
		idx := similarity.NewIndex(values, sim, 0.55)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range probes {
				idx.TopK(p, 5)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range probes {
				similarity.BruteForceTopK(p, values, sim, 0.55, 5)
			}
		}
	})
}

// BenchmarkAblationParallelCoverage compares serial and parallel coverage
// testing of a clause over a batch of examples.
func BenchmarkAblationParallelCoverage(b *testing.B) {
	clause := cfdAndMDClause()
	grounds := make([]logic.Clause, 0, 24)
	for i := 0; i < 24; i++ {
		grounds = append(grounds, groundVariantClause(i))
	}
	for _, threads := range []int{1, 8} {
		name := "serial"
		if threads > 1 {
			name = "parallel-8"
		}
		b.Run(name, func(b *testing.B) {
			ev := coverage.NewEvaluator(coverage.Options{Threads: threads})
			exs, err := ev.NewExamples(context.Background(), grounds)
			if err != nil {
				b.Fatalf("NewExamples: %v", err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.CountPositiveExamples(context.Background(), clause, exs)
			}
		})
	}
}

// cfdAndMDClause builds a representative clause carrying both MD and CFD
// repair literals.
func cfdAndMDClause() logic.Clause {
	x, tt, y, z := logic.Var("x"), logic.Var("t"), logic.Var("y"), logic.Var("z")
	vx, vt := logic.Var("vx"), logic.Var("vt")
	u1, u2, c1, c2 := logic.Var("u1"), logic.Var("u2"), logic.Var("c1"), logic.Var("c2")
	simCond := logic.Condition{Op: logic.CondSim, L: x, R: tt}
	cfdCond := []logic.Condition{{Op: logic.CondEq, L: u1, R: u2}, {Op: logic.CondNeq, L: c1, R: c2}}
	return logic.NewClause(
		logic.Rel("highGrossing", x),
		logic.Sim(x, tt),
		logic.RepairInGroup("md_title", "md_title#0", logic.OriginMD, x, vx, simCond),
		logic.RepairInGroup("md_title", "md_title#0", logic.OriginMD, tt, vt, simCond),
		logic.Eq(vx, vt),
		logic.Rel("movies", y, tt, z),
		logic.Rel("mov2genres", y, logic.Const("Drama")),
		logic.Rel("mov2locale", u1, logic.Const("English"), c1),
		logic.Rel("mov2locale", u2, logic.Const("English"), c2),
		logic.InducedEq(u1, u2),
		logic.RepairInGroup("cfd1", "cfd1#rhs1", logic.OriginCFD, c1, c2, cfdCond...),
		logic.RepairInGroup("cfd1", "cfd1#rhs2", logic.OriginCFD, c2, c1, cfdCond...),
	)
}

// groundVariantClause builds ground bottom clauses that differ per index so
// the coverage benchmark exercises both covered and uncovered examples.
func groundVariantClause(i int) logic.Clause {
	title := "Silent Harbor"
	genre := "Drama"
	if i%3 == 0 {
		genre = "Comedy"
	}
	id := logic.Const("m" + string(rune('a'+i%26)))
	full := logic.Const(title + " (2007)")
	short := logic.Const(title)
	w1, w2 := logic.Var("w1"), logic.Var("w2")
	cond := logic.Condition{Op: logic.CondSim, L: short, R: full}
	return logic.NewClause(
		logic.Rel("highGrossing", short),
		logic.Sim(short, full),
		logic.RepairInGroup("md_title", "md_title#0", logic.OriginMD, short, w1, cond),
		logic.RepairInGroup("md_title", "md_title#0", logic.OriginMD, full, w2, cond),
		logic.Eq(w1, w2),
		logic.Rel("movies", id, full, logic.Const("2007")),
		logic.Rel("mov2genres", id, logic.Const(genre)),
		logic.Rel("mov2locale", full, logic.Const("English"), logic.Const("USA")),
		logic.Rel("mov2locale", full, logic.Const("English"), logic.Const("Ireland")),
		logic.RepairInGroup("cfd1", "cfd1#rhs1", logic.OriginCFD, logic.Const("USA"), logic.Const("Ireland"),
			logic.Condition{Op: logic.CondNeq, L: logic.Const("USA"), R: logic.Const("Ireland")}),
		logic.RepairInGroup("cfd1", "cfd1#rhs2", logic.OriginCFD, logic.Const("Ireland"), logic.Const("USA"),
			logic.Condition{Op: logic.CondNeq, L: logic.Const("USA"), R: logic.Const("Ireland")}),
	)
}
