package dlearn_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dlearn"
)

// buildTinyProblemFluent is buildTinyProblem expressed through the
// ProblemBuilder, exercising the fluent path end to end.
func buildTinyProblemFluent(t *testing.T) *dlearn.Problem {
	t.Helper()
	schema := dlearn.NewSchema()
	schema.MustAdd(dlearn.NewRelation("movies",
		dlearn.Attr("id", "imdb_id"), dlearn.Attr("title", "imdb_title"), dlearn.ConstAttr("year", "year")))
	schema.MustAdd(dlearn.NewRelation("mov2genres",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("genre", "genre")))

	db := dlearn.NewInstance(schema)
	rows := []struct{ id, title, genre string }{
		{"m1", "Silent Harbor", "comedy"},
		{"m2", "Crimson Station", "comedy"},
		{"m3", "Broken Mirror", "drama"},
		{"m4", "Hidden Canyon", "drama"},
		{"m5", "Electric Parade", "comedy"},
		{"m6", "Midnight Archive", "thriller"},
	}
	for _, r := range rows {
		db.MustInsert("movies", r.id, r.title+" (2007)", "2007")
		db.MustInsert("mov2genres", r.id, r.genre)
	}

	target := dlearn.NewRelation("highGrossing", dlearn.Attr("title", "bom_title"))
	b := dlearn.NewProblem(target).
		OnInstance(db).
		WithMDs(dlearn.SimpleMD("md_title", "highGrossing", "title", "movies", "title"))
	for _, r := range rows {
		if r.genre == "comedy" {
			b.PosValues(r.title)
		} else {
			b.NegValues(r.title)
		}
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tinyEngineOptions() []dlearn.Option {
	return []dlearn.Option{
		dlearn.WithThreads(2),
		dlearn.WithIterations(2),
		dlearn.WithTopMatches(2),
		dlearn.WithGeneralizationSample(3),
		dlearn.WithMaxClauses(3),
	}
}

func TestEngineOptionDefaults(t *testing.T) {
	def := dlearn.DefaultConfig()
	cfg := dlearn.New().Config()
	if cfg.Threads != def.Threads || cfg.Seed != def.Seed ||
		cfg.MaxClauses != def.MaxClauses || cfg.MaxNegativeFraction != def.MaxNegativeFraction {
		t.Errorf("New() must start from DefaultConfig; got %+v", cfg)
	}
}

func TestEngineOptionApplication(t *testing.T) {
	cfg := dlearn.New(
		dlearn.WithThreads(7),
		dlearn.WithSeed(42),
		dlearn.WithNoiseTolerance(0.125),
		dlearn.WithMaxClauses(9),
		dlearn.WithMinPositiveCoverage(3),
		dlearn.WithGeneralizationSample(5),
		dlearn.WithNegativeSearchSample(11),
		dlearn.WithSubsumptionBudget(1234),
		dlearn.WithRepairBudget(8, 99),
		dlearn.WithIterations(4),
		dlearn.WithSampleSize(6),
		dlearn.WithTopMatches(3),
		dlearn.WithSimilarityThreshold(0.7),
		dlearn.WithMDMode(dlearn.MDExact),
		dlearn.WithCFDRepairs(false),
	).Config()
	if cfg.Threads != 7 || cfg.Seed != 42 || cfg.MaxNegativeFraction != 0.125 ||
		cfg.MaxClauses != 9 || cfg.MinPositiveCoverage != 3 ||
		cfg.GeneralizationSample != 5 || cfg.NegativeSearchSample != 11 {
		t.Errorf("learner options not applied: %+v", cfg)
	}
	if cfg.Subsumption.MaxNodes != 1234 || cfg.Repair.MaxClauses != 8 || cfg.Repair.MaxStates != 99 {
		t.Errorf("budget options not applied: %+v", cfg)
	}
	bc := cfg.BottomClause
	if bc.Iterations != 4 || bc.SampleSize != 6 || bc.KM != 3 || bc.SimilarityThreshold != 0.7 ||
		bc.MDMode != dlearn.MDExact || bc.UseCFDs || bc.Seed != 42 {
		t.Errorf("bottom-clause options not applied: %+v", bc)
	}
}

func TestEngineWithConfigComposes(t *testing.T) {
	base := dlearn.DefaultConfig()
	base.MaxClauses = 2
	cfg := dlearn.New(dlearn.WithConfig(base), dlearn.WithThreads(3)).Config()
	if cfg.MaxClauses != 2 || cfg.Threads != 3 {
		t.Errorf("WithConfig must compose with later options: %+v", cfg)
	}
}

func TestProblemBuilderValidationErrors(t *testing.T) {
	target := dlearn.NewRelation("t", dlearn.Attr("a", "d"))
	schema := dlearn.NewSchema()
	schema.MustAdd(dlearn.NewRelation("r", dlearn.Attr("a", "d")))
	db := dlearn.NewInstance(schema)

	cases := []struct {
		name  string
		build func() (*dlearn.Problem, error)
	}{
		{"nil target", func() (*dlearn.Problem, error) {
			return dlearn.NewProblem(nil).OnInstance(db).PosValues("x").Build()
		}},
		{"missing instance", func() (*dlearn.Problem, error) {
			return dlearn.NewProblem(target).PosValues("x").Build()
		}},
		{"nil instance", func() (*dlearn.Problem, error) {
			return dlearn.NewProblem(target).OnInstance(nil).PosValues("x").Build()
		}},
		{"no positives", func() (*dlearn.Problem, error) {
			return dlearn.NewProblem(target).OnInstance(db).NegValues("x").Build()
		}},
		{"wrong relation example", func() (*dlearn.Problem, error) {
			return dlearn.NewProblem(target).OnInstance(db).Pos(dlearn.NewTuple("other", "x")).Build()
		}},
		{"wrong arity example", func() (*dlearn.Problem, error) {
			return dlearn.NewProblem(target).OnInstance(db).PosValues("x", "y").Build()
		}},
		{"bad MD", func() (*dlearn.Problem, error) {
			return dlearn.NewProblem(target).OnInstance(db).
				WithMDs(dlearn.SimpleMD("md", "nope", "a", "r", "a")).
				PosValues("x").Build()
		}},
		{"bad CFD", func() (*dlearn.Problem, error) {
			return dlearn.NewProblem(target).OnInstance(db).
				WithCFDs(dlearn.FD("fd", "unknown_rel", []string{"a"}, "a")).
				PosValues("x").Build()
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build(); err == nil {
			t.Errorf("%s: Build must fail", tc.name)
		}
	}

	// A well-formed problem builds.
	if _, err := dlearn.NewProblem(target).OnInstance(db).PosValues("x").Build(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func TestEngineLearnFluent(t *testing.T) {
	p := buildTinyProblemFluent(t)
	eng := dlearn.New(tinyEngineOptions()...)
	def, report, err := eng.Learn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if def.Len() == 0 {
		t.Fatal("no clauses learned through the Engine API")
	}
	if report.Duration <= 0 {
		t.Error("report duration missing")
	}
}

func TestEngineLearnNilProblem(t *testing.T) {
	if _, _, err := dlearn.New().Learn(context.Background(), nil); err == nil {
		t.Error("nil problem must be rejected")
	}
}

// TestEngineLearnHonorsCancellation cancels the context from inside the
// first covering iteration (via the observer) and requires Learn to return
// ctx.Err() promptly instead of finishing the search.
func TestEngineLearnHonorsCancellation(t *testing.T) {
	p := buildTinyProblemFluent(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	eng := dlearn.New(append(tinyEngineOptions(),
		dlearn.WithObserver(dlearn.ObserverFunc(func(e dlearn.Event) {
			if _, ok := e.(dlearn.IterationStarted); ok {
				cancel() // mid-search: bottom clauses built, covering started
			}
		})))...)

	start := time.Now()
	def, _, err := eng.Learn(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Learn = (%v, %v), want context.Canceled", def, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled Learn took %s; cancellation must interrupt the search promptly", elapsed)
	}
}

func TestEngineLearnPreCancelled(t *testing.T) {
	p := buildTinyProblemFluent(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := dlearn.New(tinyEngineOptions()...).Learn(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("Learn with cancelled context = %v, want context.Canceled", err)
	}
}

// TestEngineDeterministicAcrossRuns is the regression test for seed-driven
// determinism: the same engine run twice — and a second engine with the same
// seed — must produce identical definitions.
func TestEngineDeterministicAcrossRuns(t *testing.T) {
	p := buildTinyProblemFluent(t)
	opts := append(tinyEngineOptions(), dlearn.WithSeed(7))
	eng := dlearn.New(opts...)

	def1, _, err := eng.Learn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	def2, _, err := eng.Learn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if def1.String() != def2.String() {
		t.Errorf("same engine, same seed, different definitions:\n%s\nvs\n%s", def1, def2)
	}

	def3, _, err := dlearn.New(opts...).Learn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if def1.String() != def3.String() {
		t.Errorf("fresh engine with same seed diverged:\n%s\nvs\n%s", def1, def3)
	}
}

// tinyGoldenDefinition is the definition learned from the tiny problem with
// tinyEngineOptions and seed 7, captured before the data layer moved to the
// interned columnar backend. Pinning the exact bytes (not just cross-run
// equality) proves the refactor changed the representation without changing
// a single learned clause.
const tinyGoldenDefinition = "highGrossing(v0) <- v0 ~ v1, V[md_title/md_title#0|v0~v1](v0, f0), V[md_title/md_title#0|v0~v1](v1, f1), f0 = f1, movies(v2, v1, 2007), movies(v3, v4, 2007), movies(v5, v6, 2007), movies(v7, v8, 2007), movies(v9, v10, 2007), movies(v11, v12, 2007), mov2genres(v2, comedy).  (pos=3, neg=0)"

// TestEngineDeterministicAcrossThreadCounts pins the two-tier scheduler's
// central promise: the learned definition is byte-identical for a fixed seed
// regardless of the inner thread count and the outer candidate parallelism,
// because the scheduler's shared floor only prunes candidates that provably
// cannot win. The matrix also crosses the literal planner on/off: a plan is a
// permutation of one probe's search order, so it may change how a fixed point
// is reached but never which definition is learned. The serial reference is
// additionally pinned to the pre-refactor golden output, so the whole matrix
// transitively certifies the interned data layer against the boxed one.
func TestEngineDeterministicAcrossThreadCounts(t *testing.T) {
	p := buildTinyProblemFluent(t)
	base := append(tinyEngineOptions(), dlearn.WithSeed(7))
	ref, _, err := dlearn.New(append(base, dlearn.WithThreads(1), dlearn.WithCandidateParallelism(1))...).
		Learn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if ref.String() != tinyGoldenDefinition {
		t.Errorf("serial run diverged from the pre-refactor golden definition:\n%s\nvs\n%s", ref, tinyGoldenDefinition)
	}
	for _, planner := range []bool{true, false} {
		for _, cfg := range []struct{ threads, candPar int }{
			{1, 1}, {1, 4}, {4, 1}, {4, 4}, {8, 3}, {16, 8},
		} {
			def, _, err := dlearn.New(append(base,
				dlearn.WithThreads(cfg.threads),
				dlearn.WithCandidateParallelism(cfg.candPar),
				dlearn.WithLiteralPlanner(planner))...).
				Learn(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if def.String() != ref.String() {
				t.Errorf("threads=%d candidateParallelism=%d planner=%v diverged from the serial run:\n%s\nvs\n%s",
					cfg.threads, cfg.candPar, planner, def, ref)
			}
		}
	}
}

// moviesGoldenDefinition is the definition learned from the generated
// IMDB+OMDB dataset below, captured before the interned columnar data layer
// replaced the boxed one. The two clauses are joined by "\n" exactly as
// Definition.String renders them.
const moviesGoldenDefinition = "dramaRestrictedMovies(v0) <- imdb_mov2genres(v0, Drama), imdb_mov2genres(v0, Documentary), imdb_mov2cast(v0, v7), imdb_mov2cast(v0, v8), imdb_mov2writers(v0, v9), imdb_mov2cast(v20, v7), imdb_mov2writers(v21, v8), imdb_mov2writers(v22, v8).  (pos=3, neg=0)\n" +
	"dramaRestrictedMovies(v0) <- v1 ~ v2, V[md_title/md_title#0|v1~v2](v1, f0), f0 = f1, v1 ~ v3, V[md_title/md_title#1|v1~v3](v1, f2), f2 = f3, v1 ~ v4, V[md_title/md_title#2|v1~v4](v1, f4), f4 = f5, v1 ~ v5, V[md_title/md_title#3|v1~v5](v1, f6), f6 = f7, v1 ~ v6, V[md_title/md_title#4|v1~v6](v1, f8), f8 = f9, imdb_movies(v0, v1, 1994), imdb_mov2genres(v0, Drama), imdb_mov2cast(v0, v7), imdb_mov2cast(v0, v8), imdb_mov2writers(v0, v9), imdb_mov2writers(v21, v7).  (pos=2, neg=0)"

// TestEngineGoldenMoviesAcrossThreadCounts is the generated-dataset leg of
// the golden-determinism battery: a small IMDB+OMDB problem (exercising MDs,
// similarity literals and the full bottom-clause pipeline against the
// interned instance) must learn the exact pre-refactor definition, across
// thread counts, candidate parallelism and the literal planner toggle.
func TestEngineGoldenMoviesAcrossThreadCounts(t *testing.T) {
	mcfg := dlearn.DefaultMoviesConfig()
	mcfg.MDCount = 1
	mcfg.Seed = 101
	mcfg.Movies = 100
	mcfg.Positives = 12
	mcfg.Negatives = 24
	ds, err := dlearn.GenerateMovies(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &dlearn.Problem{
		Target:   ds.Problem.Target,
		Instance: ds.Problem.Instance,
		MDs:      ds.Problem.MDs,
		CFDs:     ds.Problem.CFDs,
		Pos:      ds.Problem.Pos,
		Neg:      ds.Problem.Neg,
	}
	base := []dlearn.Option{
		dlearn.WithSeed(3),
		dlearn.WithIterations(2),
		dlearn.WithSampleSize(4),
		dlearn.WithGeneralizationSample(4),
		dlearn.WithNegativeSearchSample(16),
		dlearn.WithMaxClauses(4),
		dlearn.WithSubsumptionBudget(10000),
	}
	for _, planner := range []bool{true, false} {
		for _, cfg := range []struct{ threads, candPar int }{
			{1, 1}, {4, 1}, {4, 4}, {8, 3},
		} {
			def, _, err := dlearn.New(append(base,
				dlearn.WithThreads(cfg.threads),
				dlearn.WithCandidateParallelism(cfg.candPar),
				dlearn.WithLiteralPlanner(planner))...).
				Learn(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if def.String() != moviesGoldenDefinition {
				t.Errorf("threads=%d candidateParallelism=%d planner=%v diverged from the pre-refactor golden:\n%s\nvs\n%s",
					cfg.threads, cfg.candPar, planner, def, moviesGoldenDefinition)
			}
		}
	}
}

// TestEngineObserverEventStream checks the observer sees a coherent event
// stream: a run start, both phase completions, at least one iteration and a
// final RunFinished consistent with the returned report.
func TestEngineObserverEventStream(t *testing.T) {
	p := buildTinyProblemFluent(t)
	var events []dlearn.Event
	eng := dlearn.New(append(tinyEngineOptions(),
		dlearn.WithObserver(dlearn.ObserverFunc(func(e dlearn.Event) {
			events = append(events, e)
		})))...)
	def, report, err := eng.Learn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	var started, finished bool
	var phases []string
	var iterations, accepted int
	for _, e := range events {
		switch ev := e.(type) {
		case dlearn.RunStarted:
			started = true
			if ev.Target != "highGrossing" || ev.Positives == 0 {
				t.Errorf("bad RunStarted: %+v", ev)
			}
		case dlearn.PhaseDone:
			phases = append(phases, ev.Phase)
		case dlearn.IterationStarted:
			iterations++
		case dlearn.ClauseAccepted:
			accepted++
		case dlearn.RunFinished:
			finished = true
			if ev.Clauses != def.Len() || ev.UncoveredPositives != report.UncoveredPositives {
				t.Errorf("RunFinished %+v disagrees with report %+v", ev, report)
			}
		}
	}
	if !started || !finished {
		t.Errorf("missing run boundary events (started=%v finished=%v)", started, finished)
	}
	if len(phases) != 2 || phases[0] != dlearn.PhaseBottomClauses || phases[1] != dlearn.PhaseCovering {
		t.Errorf("phases = %v, want [%s %s]", phases, dlearn.PhaseBottomClauses, dlearn.PhaseCovering)
	}
	if iterations == 0 {
		t.Error("no IterationStarted events")
	}
	if accepted != def.Len() {
		t.Errorf("%d ClauseAccepted events for %d learned clauses", accepted, def.Len())
	}
}

func TestEngineRunBaseline(t *testing.T) {
	p := buildTinyProblemFluent(t)
	def, model, report, err := dlearn.New(tinyEngineOptions()...).
		RunBaseline(context.Background(), dlearn.CastorNoMD, p)
	if err != nil {
		t.Fatal(err)
	}
	if def == nil || model == nil || report == nil {
		t.Fatal("RunBaseline returned nil components")
	}
}

func TestMultiObserverFanOut(t *testing.T) {
	var a, b int
	obs := dlearn.MultiObserver(
		dlearn.ObserverFunc(func(dlearn.Event) { a++ }),
		nil,
		dlearn.ObserverFunc(func(dlearn.Event) { b++ }),
	)
	obs.Observe(dlearn.RunStarted{})
	obs.Observe(dlearn.RunFinished{})
	if a != 2 || b != 2 {
		t.Errorf("fan-out observed a=%d b=%d, want 2/2", a, b)
	}
}
