package dlearn_test

import (
	"context"
	"fmt"
	"os"

	"dlearn"
)

// exampleProblem assembles a tiny learning task shared by the runnable
// examples: six movies, a genre table, and "high-grossing" labels that
// follow the comedy genre.
func exampleProblem() *dlearn.Problem {
	schema := dlearn.NewSchema()
	schema.MustAdd(dlearn.NewRelation("movies",
		dlearn.Attr("id", "imdb_id"), dlearn.Attr("title", "imdb_title")))
	schema.MustAdd(dlearn.NewRelation("mov2genres",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("genre", "genre")))

	db := dlearn.NewInstance(schema)
	rows := []struct{ id, title, genre string }{
		{"m1", "Silent Harbor", "comedy"},
		{"m2", "Crimson Station", "comedy"},
		{"m3", "Broken Mirror", "drama"},
		{"m4", "Hidden Canyon", "drama"},
		{"m5", "Electric Parade", "comedy"},
		{"m6", "Midnight Archive", "thriller"},
	}
	for _, r := range rows {
		db.MustInsert("movies", r.id, r.title+" (2007)")
		db.MustInsert("mov2genres", r.id, r.genre)
	}

	target := dlearn.NewRelation("highGrossing", dlearn.Attr("title", "bom_title"))
	b := dlearn.NewProblem(target).
		OnInstance(db).
		WithMDs(dlearn.SimpleMD("md_title", "highGrossing", "title", "movies", "title"))
	for _, r := range rows {
		if r.genre == "comedy" {
			b.PosValues(r.title)
		} else {
			b.NegValues(r.title)
		}
	}
	return b.MustBuild()
}

// ExampleProblemBuilder shows the fluent path from schema to validated
// problem: the builder accumulates the instance, constraints and examples,
// and Build reports every structural mistake at once instead of failing
// later inside Learn.
func ExampleProblemBuilder() {
	p := exampleProblem()
	fmt.Printf("target %s with %d positive and %d negative examples\n",
		p.Target.Name, len(p.Pos), len(p.Neg))
	// Output:
	// target highGrossing with 3 positive and 3 negative examples
}

// ExampleWithSnapshotStore demonstrates warm starts: the first run prepares
// the training examples and persists them; the second run over the same
// database, constraints and options is served from the snapshot. The
// observer stream makes the difference visible.
func ExampleWithSnapshotStore() {
	dir, err := os.MkdirTemp("", "dlearn-snapshots-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	store := dlearn.NewDirSnapshotStore(dir)

	run := func(label string) {
		eng := dlearn.New(
			dlearn.WithThreads(2),
			dlearn.WithSeed(1),
			dlearn.WithSnapshotStore(store),
			dlearn.WithObserver(dlearn.ObserverFunc(func(e dlearn.Event) {
				switch e.(type) {
				case dlearn.SnapshotHit:
					fmt.Printf("%s: prepared examples loaded from snapshot\n", label)
				case dlearn.SnapshotMiss:
					fmt.Printf("%s: no snapshot, preparing fresh\n", label)
				}
			})),
		)
		if _, _, err := eng.Learn(context.Background(), exampleProblem()); err != nil {
			panic(err)
		}
	}
	run("first run")
	run("second run")
	// Output:
	// first run: no snapshot, preparing fresh
	// second run: prepared examples loaded from snapshot
}

// ExampleWithCandidateParallelism demonstrates the two-tier coverage
// scheduler: the engine scores the independent candidate clauses of each
// refinement sample concurrently (the outer tier set here), while each
// candidate's example batch runs on the WithThreads worker pool (the inner
// tier). The learned definition is identical for every combination of the
// two settings; the CandidateBatchScored observer event shows the scheduler
// at work.
func ExampleWithCandidateParallelism() {
	batches := 0
	eng := dlearn.New(
		dlearn.WithThreads(2),              // inner tier: examples per batch
		dlearn.WithCandidateParallelism(4), // outer tier: candidates in flight
		dlearn.WithSeed(1),
		dlearn.WithObserver(dlearn.ObserverFunc(func(e dlearn.Event) {
			// Parallelism reports the workers actually used: at most the
			// configured 4, never more than the batch has candidates.
			if b, ok := e.(dlearn.CandidateBatchScored); ok && b.Parallelism >= 1 {
				batches++
			}
		})),
	)
	def, _, err := eng.Learn(context.Background(), exampleProblem())
	if err != nil {
		panic(err)
	}
	fmt.Printf("learned %d clause(s); every candidate batch used the scheduler: %v\n",
		def.Len(), batches > 0)
	// Output:
	// learned 1 clause(s); every candidate batch used the scheduler: true
}
