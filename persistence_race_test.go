package dlearn_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dlearn"
)

// TestConcurrentEnginesSharedStore is the shared-store race test behind
// dlearn-serve: many engines learn concurrently against one DirSnapshotStore
// — some colliding on the same snapshot key, some churning distinct keys —
// while a compactor goroutine runs LRU sweeps over the same directory the
// whole time. Every run must produce a definition byte-identical to a cold
// reference run with the same seed, whether it hit a snapshot, raced a
// sweep, or prepared fresh. Run with -race this pins the store's and the
// restore path's concurrency safety.
func TestConcurrentEnginesSharedStore(t *testing.T) {
	p := buildTinyProblemFluent(t)
	seeds := []int64{1, 2, 3}

	// Cold references, no store involved.
	want := make(map[int64]string, len(seeds))
	for _, seed := range seeds {
		opts := append(tinyEngineOptions(), dlearn.WithSeed(seed))
		def, _, err := dlearn.New(opts...).Learn(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = def.String()
	}

	// A cap this small keeps the sweeps evicting constantly, so concurrent
	// loads race deletions and most runs fall back to fresh preparation.
	store := dlearn.NewDirSnapshotStore(t.TempDir()).SetMaxBytes(1 << 10)

	const workers = 8
	const runsPerWorker = 3
	stop := make(chan struct{})
	var compactor sync.WaitGroup
	compactor.Add(1)
	go func() {
		defer compactor.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := store.Compact(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers*runsPerWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < runsPerWorker; r++ {
				seed := seeds[(w+r)%len(seeds)]
				opts := append(tinyEngineOptions(),
					dlearn.WithSeed(seed),
					dlearn.WithSnapshotStore(store))
				def, _, err := dlearn.New(opts...).Learn(context.Background(), p)
				if err != nil {
					errs <- fmt.Errorf("worker %d run %d (seed %d): %w", w, r, seed, err)
					return
				}
				if got := def.String(); got != want[seed] {
					errs <- fmt.Errorf("worker %d run %d (seed %d): definition diverged under the shared store:\n%s\nwant:\n%s",
						w, r, seed, got, want[seed])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	compactor.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The store must still be a consistent directory after the churn: within
	// its cap modulo the newest snapshot, and sized without error.
	if _, _, err := store.Size(); err != nil {
		t.Fatalf("store unreadable after concurrent churn: %v", err)
	}
}
