package dlearn

import (
	"context"
	"fmt"

	"dlearn/internal/baseline"
	"dlearn/internal/core"
)

// Engine is a reusable, configured DLearn instance. An Engine is built once
// with New and functional options, holds no per-run state, and is safe for
// concurrent use: every Learn call derives its random stream from the
// engine's Seed, so repeated runs over the same problem produce identical
// definitions.
//
//	eng := dlearn.New(
//		dlearn.WithThreads(16),
//		dlearn.WithSeed(1),
//		dlearn.WithNoiseTolerance(0.3),
//	)
//	def, report, err := eng.Learn(ctx, problem)
//
// All engine methods are context-first: cancellation and deadlines are
// honoured inside the covering loop, the parallel coverage worker pool and
// each θ-subsumption search, so even a single long-running coverage test is
// interrupted promptly.
type Engine struct {
	cfg core.Config
}

// New builds an Engine from DefaultConfig plus the given options.
func New(opts ...Option) *Engine {
	e := &Engine{cfg: core.DefaultConfig()}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Config returns a copy of the engine's effective learner configuration.
func (e *Engine) Config() Config { return e.cfg }

// Learn runs DLearn on the problem and returns the learned definition. A
// cancelled or expired context returns ctx.Err().
func (e *Engine) Learn(ctx context.Context, p *Problem) (*Definition, *Report, error) {
	if p == nil {
		return nil, nil, fmt.Errorf("dlearn: nil problem")
	}
	return core.NewLearner(e.cfg).LearnContext(ctx, *p)
}

// LearnModel learns a definition and wraps it in a Model for prediction.
func (e *Engine) LearnModel(ctx context.Context, p *Problem) (*Model, *Report, error) {
	if p == nil {
		return nil, nil, fmt.Errorf("dlearn: nil problem")
	}
	return core.LearnModelContext(ctx, *p, e.cfg)
}

// RunBaseline learns with one of the paper's systems (DLearn or a Castor
// baseline) over the problem.
func (e *Engine) RunBaseline(ctx context.Context, system System, p *Problem) (*Definition, *Model, *Report, error) {
	if p == nil {
		return nil, nil, nil, fmt.Errorf("dlearn: nil problem")
	}
	res, err := baseline.RunContext(ctx, system, *p, e.cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Definition, res.Model, res.Report, nil
}
