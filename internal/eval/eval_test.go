package eval

import (
	"math"
	"testing"
	"testing/quick"

	"dlearn/internal/relation"
)

func TestMetrics(t *testing.T) {
	m := Metrics{TruePositives: 8, FalsePositives: 2, TrueNegatives: 18, FalseNegatives: 2}
	if p := m.Precision(); math.Abs(p-0.8) > 1e-9 {
		t.Errorf("precision = %f", p)
	}
	if r := m.Recall(); math.Abs(r-0.8) > 1e-9 {
		t.Errorf("recall = %f", r)
	}
	if f := m.F1(); math.Abs(f-0.8) > 1e-9 {
		t.Errorf("f1 = %f", f)
	}
	if a := m.Accuracy(); math.Abs(a-26.0/30.0) > 1e-9 {
		t.Errorf("accuracy = %f", a)
	}
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Error("zero metrics should all be 0, not NaN")
	}
	other := Metrics{TruePositives: 1}
	zero.Add(other)
	if zero.TruePositives != 1 {
		t.Error("Add did not accumulate")
	}
	if s := m.String(); s == "" {
		t.Error("String should not be empty")
	}
}

func TestEvaluate(t *testing.T) {
	preds := []bool{true, true, false, false}
	labels := []bool{true, false, true, false}
	m, err := Evaluate(preds, labels)
	if err != nil {
		t.Fatal(err)
	}
	if m.TruePositives != 1 || m.FalsePositives != 1 || m.FalseNegatives != 1 || m.TrueNegatives != 1 {
		t.Errorf("confusion matrix wrong: %+v", m)
	}
	if _, err := Evaluate([]bool{true}, []bool{}); err == nil {
		t.Error("length mismatch must error")
	}
}

func examples(rel string, n int, prefix string) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.NewTuple(rel, prefix+string(rune('a'+i%26))+string(rune('0'+i/26)))
	}
	return out
}

func TestKFold(t *testing.T) {
	pos := examples("t", 10, "p")
	neg := examples("t", 20, "n")
	splits, err := KFold(pos, neg, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 5 {
		t.Fatalf("expected 5 splits, got %d", len(splits))
	}
	seenTestPos := map[string]int{}
	for _, s := range splits {
		if len(s.TrainPos)+len(s.TestPos) != 10 || len(s.TrainNeg)+len(s.TestNeg) != 20 {
			t.Errorf("split does not partition the examples: %+v", s)
		}
		if len(s.TestPos) == 0 || len(s.TestNeg) == 0 {
			t.Error("every fold needs test examples of both classes")
		}
		for _, e := range s.TestPos {
			seenTestPos[e.Key()]++
		}
	}
	for k, c := range seenTestPos {
		if c != 1 {
			t.Errorf("example %s appears in %d test folds", k, c)
		}
	}
	if len(seenTestPos) != 10 {
		t.Errorf("all positives should appear in exactly one test fold, got %d", len(seenTestPos))
	}
	if _, err := KFold(pos, neg, 1, 1); err == nil {
		t.Error("k=1 must be rejected")
	}
	if _, err := KFold(pos[:2], neg, 5, 1); err == nil {
		t.Error("too few examples must be rejected")
	}
}

func TestHoldOut(t *testing.T) {
	pos := examples("t", 20, "p")
	neg := examples("t", 40, "n")
	s, err := HoldOut(pos, neg, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TestPos) != 5 || len(s.TestNeg) != 10 {
		t.Errorf("unexpected test sizes: %d pos, %d neg", len(s.TestPos), len(s.TestNeg))
	}
	if len(s.TrainPos) != 15 || len(s.TrainNeg) != 30 {
		t.Errorf("unexpected train sizes: %d pos, %d neg", len(s.TrainPos), len(s.TrainNeg))
	}
	if _, err := HoldOut(pos, neg, 0, 1); err == nil {
		t.Error("fraction 0 must be rejected")
	}
	if _, err := HoldOut(pos, neg, 1, 1); err == nil {
		t.Error("fraction 1 must be rejected")
	}
}

// constPredictor predicts a fixed label.
type constPredictor bool

func (c constPredictor) Predict(relation.Tuple) (bool, error) { return bool(c), nil }

func TestEvaluateSplit(t *testing.T) {
	s := Split{
		TestPos: examples("t", 4, "p"),
		TestNeg: examples("t", 6, "n"),
	}
	m, err := EvaluateSplit(constPredictor(true), s)
	if err != nil {
		t.Fatal(err)
	}
	if m.TruePositives != 4 || m.FalsePositives != 6 {
		t.Errorf("always-positive predictor confusion wrong: %+v", m)
	}
	m, err = EvaluateSplit(constPredictor(false), s)
	if err != nil {
		t.Fatal(err)
	}
	if m.FalseNegatives != 4 || m.TrueNegatives != 6 {
		t.Errorf("always-negative predictor confusion wrong: %+v", m)
	}
}

func TestStopwatch(t *testing.T) {
	sw := NewStopwatch()
	if sw.Elapsed() < 0 || sw.Minutes() < 0 {
		t.Error("stopwatch went backwards")
	}
}

// Property: F1 is always within [0,1] and 0 when there are no true positives.
func TestPropertyF1Range(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		m := Metrics{TruePositives: int(tp), FalsePositives: int(fp), TrueNegatives: int(tn), FalseNegatives: int(fn)}
		f1 := m.F1()
		if f1 < 0 || f1 > 1 || math.IsNaN(f1) {
			return false
		}
		if tp == 0 && f1 != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
