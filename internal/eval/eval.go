// Package eval provides the evaluation harness used by the experiments:
// precision/recall/F1 metrics, k-fold cross validation over labelled
// examples, and simple wall-clock timing, mirroring the 5-fold
// cross-validated F1 and time reporting of Section 6.
package eval

import (
	"fmt"
	"math/rand"
	"time"

	"dlearn/internal/relation"
)

// Metrics are the standard binary classification metrics.
type Metrics struct {
	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// Add accumulates another metrics value (used to aggregate folds).
func (m *Metrics) Add(o Metrics) {
	m.TruePositives += o.TruePositives
	m.FalsePositives += o.FalsePositives
	m.TrueNegatives += o.TrueNegatives
	m.FalseNegatives += o.FalseNegatives
}

// Precision is TP / (TP + FP); it is defined as 0 when nothing was predicted
// positive.
func (m Metrics) Precision() float64 {
	d := m.TruePositives + m.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(d)
}

// Recall is TP / (TP + FN); it is defined as 0 when there are no positives.
func (m Metrics) Recall() float64 {
	d := m.TruePositives + m.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(d)
}

// F1 is the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP + TN) / total.
func (m Metrics) Accuracy() float64 {
	total := m.TruePositives + m.FalsePositives + m.TrueNegatives + m.FalseNegatives
	if total == 0 {
		return 0
	}
	return float64(m.TruePositives+m.TrueNegatives) / float64(total)
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f (tp=%d fp=%d tn=%d fn=%d)",
		m.Precision(), m.Recall(), m.F1(), m.TruePositives, m.FalsePositives, m.TrueNegatives, m.FalseNegatives)
}

// Evaluate scores predictions against labels: predictions[i] is the
// predicted label of an example whose true label is labels[i].
func Evaluate(predictions, labels []bool) (Metrics, error) {
	if len(predictions) != len(labels) {
		return Metrics{}, fmt.Errorf("eval: %d predictions for %d labels", len(predictions), len(labels))
	}
	var m Metrics
	for i, p := range predictions {
		switch {
		case p && labels[i]:
			m.TruePositives++
		case p && !labels[i]:
			m.FalsePositives++
		case !p && labels[i]:
			m.FalseNegatives++
		default:
			m.TrueNegatives++
		}
	}
	return m, nil
}

// Split is one train/test partition of a labelled example set.
type Split struct {
	TrainPos, TrainNeg []relation.Tuple
	TestPos, TestNeg   []relation.Tuple
}

// KFold partitions the examples into k cross-validation splits. The split is
// deterministic for a given seed. k must be at least 2 and at most the size
// of the smaller class.
func KFold(pos, neg []relation.Tuple, k int, seed int64) ([]Split, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k must be at least 2, got %d", k)
	}
	if len(pos) < k || len(neg) < k {
		return nil, fmt.Errorf("eval: need at least k=%d examples per class (have %d pos, %d neg)", k, len(pos), len(neg))
	}
	rng := rand.New(rand.NewSource(seed))
	posIdx := rng.Perm(len(pos))
	negIdx := rng.Perm(len(neg))

	splits := make([]Split, k)
	for fold := 0; fold < k; fold++ {
		var s Split
		for i, pi := range posIdx {
			if i%k == fold {
				s.TestPos = append(s.TestPos, pos[pi])
			} else {
				s.TrainPos = append(s.TrainPos, pos[pi])
			}
		}
		for i, ni := range negIdx {
			if i%k == fold {
				s.TestNeg = append(s.TestNeg, neg[ni])
			} else {
				s.TrainNeg = append(s.TrainNeg, neg[ni])
			}
		}
		splits[fold] = s
	}
	return splits, nil
}

// HoldOut splits the examples into a single train/test partition with the
// given test fraction (used by the scalability experiments that fix a test
// set and grow the training set).
func HoldOut(pos, neg []relation.Tuple, testFraction float64, seed int64) (Split, error) {
	if testFraction <= 0 || testFraction >= 1 {
		return Split{}, fmt.Errorf("eval: test fraction must be in (0,1), got %f", testFraction)
	}
	rng := rand.New(rand.NewSource(seed))
	posIdx := rng.Perm(len(pos))
	negIdx := rng.Perm(len(neg))
	nTestPos := int(float64(len(pos)) * testFraction)
	nTestNeg := int(float64(len(neg)) * testFraction)
	if nTestPos == 0 || nTestNeg == 0 {
		return Split{}, fmt.Errorf("eval: test fraction %f leaves an empty test class", testFraction)
	}
	var s Split
	for i, pi := range posIdx {
		if i < nTestPos {
			s.TestPos = append(s.TestPos, pos[pi])
		} else {
			s.TrainPos = append(s.TrainPos, pos[pi])
		}
	}
	for i, ni := range negIdx {
		if i < nTestNeg {
			s.TestNeg = append(s.TestNeg, neg[ni])
		} else {
			s.TrainNeg = append(s.TrainNeg, neg[ni])
		}
	}
	return s, nil
}

// Predictor classifies target-relation tuples; core.Model satisfies it.
type Predictor interface {
	Predict(example relation.Tuple) (bool, error)
}

// EvaluateSplit runs a predictor over a split's test examples and returns
// the resulting metrics.
func EvaluateSplit(m Predictor, s Split) (Metrics, error) {
	var metrics Metrics
	for _, e := range s.TestPos {
		p, err := m.Predict(e)
		if err != nil {
			return Metrics{}, err
		}
		if p {
			metrics.TruePositives++
		} else {
			metrics.FalseNegatives++
		}
	}
	for _, e := range s.TestNeg {
		p, err := m.Predict(e)
		if err != nil {
			return Metrics{}, err
		}
		if p {
			metrics.FalsePositives++
		} else {
			metrics.TrueNegatives++
		}
	}
	return metrics, nil
}

// Stopwatch measures wall-clock durations for the experiment reports.
type Stopwatch struct{ start time.Time }

// NewStopwatch starts a stopwatch.
func NewStopwatch() *Stopwatch { return &Stopwatch{start: time.Now()} }

// Elapsed returns the time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// Minutes returns the elapsed time in minutes, the unit used in the paper's
// tables.
func (s *Stopwatch) Minutes() float64 { return s.Elapsed().Minutes() }
