package logic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	v := Var("x")
	if !v.IsVar() || v.IsConst() {
		t.Fatalf("Var(x) should be a variable: %+v", v)
	}
	c := Const("Star Wars")
	if c.IsVar() || !c.IsConst() {
		t.Fatalf("Const should be a constant: %+v", c)
	}
	if got := c.String(); got != `"Star Wars"` {
		t.Errorf("constant with space should quote, got %s", got)
	}
	if got := Const("comedy").String(); got != "comedy" {
		t.Errorf("plain constant should not quote, got %s", got)
	}
	if got := v.String(); got != "x" {
		t.Errorf("variable string = %s, want x", got)
	}
}

func TestSubstitutionApplyAndBind(t *testing.T) {
	s := NewSubstitution()
	if !s.Bind("x", Const("a")) {
		t.Fatal("first bind must succeed")
	}
	if !s.Bind("x", Const("a")) {
		t.Fatal("re-binding to same term must succeed")
	}
	if s.Bind("x", Const("b")) {
		t.Fatal("conflicting bind must fail")
	}
	if got := s.Apply(Var("x")); got != Const("a") {
		t.Errorf("apply bound var = %v", got)
	}
	if got := s.Apply(Var("y")); got != Var("y") {
		t.Errorf("apply unbound var should be identity, got %v", got)
	}
	if got := s.Apply(Const("c")); got != Const("c") {
		t.Errorf("apply constant should be identity, got %v", got)
	}
}

func TestSubstitutionCloneIsIndependent(t *testing.T) {
	s := Substitution{"x": Const("a")}
	c := s.Clone()
	c["y"] = Const("b")
	if _, ok := s["y"]; ok {
		t.Fatal("mutating clone must not affect original")
	}
}

func TestSubstitutionCompose(t *testing.T) {
	s := Substitution{"x": Var("y")}
	u := Substitution{"y": Const("a"), "z": Const("b")}
	got := s.Compose(u)
	if got.Apply(Var("x")) != Const("a") {
		t.Errorf("compose should map x to a, got %v", got.Apply(Var("x")))
	}
	if got.Apply(Var("z")) != Const("b") {
		t.Errorf("compose should keep binding z/b, got %v", got.Apply(Var("z")))
	}
}

func TestVarCounterFresh(t *testing.T) {
	c := NewVarCounter("u")
	a, b := c.Fresh(), c.Fresh()
	if a == b {
		t.Fatal("fresh variables must be distinct")
	}
	if a.Name != "u0" || b.Name != "u1" {
		t.Errorf("unexpected names %s, %s", a.Name, b.Name)
	}
	if NewVarCounter("").Fresh().Name != "v0" {
		t.Error("empty prefix should default to v")
	}
}

func TestLiteralConstructorsAndAccessors(t *testing.T) {
	r := Rel("movies", Var("y"), Var("t"), Var("z"))
	if !r.IsRelation() || r.IsRepair() || r.IsRestriction() {
		t.Fatal("Rel should build a relation literal")
	}
	eq := Eq(Var("a"), Var("b"))
	if !eq.IsRestriction() {
		t.Fatal("Eq should be a restriction literal")
	}
	rep := Repair("md1", OriginMD, Var("x"), Var("vx"), Condition{Op: CondSim, L: Var("x"), R: Var("t")})
	if !rep.IsRepair() {
		t.Fatal("Repair should build a repair literal")
	}
	if rep.Target() != Var("x") || rep.Replacement() != Var("vx") {
		t.Error("repair target/replacement accessors wrong")
	}
	if rep.Origin != OriginMD {
		t.Error("repair origin not recorded")
	}
}

func TestLiteralRenameDeep(t *testing.T) {
	rep := Repair("md1", OriginMD, Var("x"), Var("vx"), Condition{Op: CondSim, L: Var("x"), R: Var("t")})
	s := Substitution{"x": Const("a"), "t": Const("b")}
	renamed := rep.Rename(s)
	if renamed.Args[0] != Const("a") {
		t.Errorf("argument not renamed: %v", renamed.Args[0])
	}
	if renamed.Cond[0].L != Const("a") || renamed.Cond[0].R != Const("b") {
		t.Errorf("condition not renamed: %v", renamed.Cond[0])
	}
	// Renaming must not mutate the original.
	if rep.Args[0] != Var("x") || rep.Cond[0].R != Var("t") {
		t.Error("Rename mutated the receiver")
	}
}

func TestLiteralVariablesAndConstants(t *testing.T) {
	l := Rel("movies", Var("y"), Const("Superbad"), Var("z"))
	vars := l.Variables()
	if !vars["y"] || !vars["z"] || len(vars) != 2 {
		t.Errorf("variables = %v", vars)
	}
	consts := l.Constants()
	if !consts["Superbad"] || len(consts) != 1 {
		t.Errorf("constants = %v", consts)
	}
}

func TestLiteralEqualAndKey(t *testing.T) {
	a := Rel("r", Var("x"), Const("c"))
	b := Rel("r", Var("x"), Const("c"))
	c := Rel("r", Var("x"), Const("d"))
	if !a.Equal(b) {
		t.Error("identical literals must be Equal")
	}
	if a.Equal(c) {
		t.Error("different literals must not be Equal")
	}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Error("Key must agree with Equal")
	}
}

func TestLiteralString(t *testing.T) {
	cases := []struct {
		lit  Literal
		want string
	}{
		{Rel("movies", Var("x"), Const("comedy")), "movies(x, comedy)"},
		{Eq(Var("a"), Var("b")), "a = b"},
		{Neq(Var("a"), Var("b")), "a != b"},
		{Sim(Var("a"), Var("b")), "a ~ b"},
	}
	for _, tc := range cases {
		if got := tc.lit.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	rep := Repair("md1", OriginMD, Var("x"), Var("vx"), Condition{Op: CondSim, L: Var("x"), R: Var("t")})
	if s := rep.String(); !strings.Contains(s, "V[md1") || !strings.Contains(s, "x~t") {
		t.Errorf("repair literal rendering unexpected: %s", s)
	}
}

func TestClauseHeadConnected(t *testing.T) {
	// highGrossing(x) <- movies(y,t,z), mov2genres(y,comedy), countries(u, USA)
	// countries(u, USA) is NOT head connected (u appears nowhere else).
	c := NewClause(
		Rel("highGrossing", Var("x")),
		Rel("movies", Var("y"), Var("x"), Var("z")),
		Rel("mov2genres", Var("y"), Const("comedy")),
		Rel("countries", Var("u"), Const("USA")),
	)
	connected := c.HeadConnected()
	if len(connected) != 2 {
		t.Fatalf("expected 2 head-connected literals, got %v", connected)
	}
	pruned := c.PruneUnconnected()
	if pruned.Length() != 2 {
		t.Fatalf("pruned clause should have 2 literals, got %d", pruned.Length())
	}
	for _, l := range pruned.Body {
		if l.Pred == "countries" {
			t.Fatal("unconnected literal survived pruning")
		}
	}
}

func TestClauseConnectivityThroughRepairLiterals(t *testing.T) {
	// Head variable x connects to movies only through the chain of repair
	// literals V(x,vx), V(t,vt) and the restriction vx = vt.
	c := NewClause(
		Rel("highGrossing", Var("x")),
		Rel("movies", Var("y"), Var("t"), Var("z")),
		Sim(Var("x"), Var("t")),
		Repair("md1", OriginMD, Var("x"), Var("vx"), Condition{Op: CondSim, L: Var("x"), R: Var("t")}),
		Repair("md1", OriginMD, Var("t"), Var("vt"), Condition{Op: CondSim, L: Var("x"), R: Var("t")}),
		Eq(Var("vx"), Var("vt")),
	)
	if got := len(c.HeadConnected()); got != 5 {
		t.Fatalf("all 5 body literals should be head-connected, got %d", got)
	}
}

func TestDropDanglingAuxiliaries(t *testing.T) {
	c := NewClause(
		Rel("t", Var("x")),
		Rel("r", Var("x"), Var("y")),
		Eq(Var("p"), Var("q")), // dangling: p, q appear in no relation literal
		Repair("md", OriginMD, Var("y"), Var("vy")),
	)
	out := c.DropDanglingAuxiliaries()
	if out.Length() != 2 {
		t.Fatalf("expected dangling equality to be dropped, got %v", out)
	}
}

func TestClauseConnectedRepairLiterals(t *testing.T) {
	c := NewClause(
		Rel("t", Var("x")),
		Rel("r", Var("x"), Var("y")),                 // 0
		Repair("md", OriginMD, Var("y"), Var("vy")),  // 1: connected to 0 via y
		Repair("md", OriginMD, Var("vy"), Var("wy")), // 2: connected transitively via vy
		Repair("md", OriginMD, Var("z"), Var("vz")),  // 3: not connected
	)
	got := c.ConnectedRepairLiterals(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("connected repair literals = %v, want [1 2]", got)
	}
	if c.ConnectedRepairLiterals(1) != nil {
		t.Fatal("repair literal itself should return nil")
	}
}

func TestClauseRemoveBodyAt(t *testing.T) {
	c := NewClause(Rel("t", Var("x")),
		Rel("a", Var("x")), Rel("b", Var("x")), Rel("c", Var("x")))
	out := c.RemoveBodyAt(1)
	if out.Length() != 2 || out.Body[0].Pred != "a" || out.Body[1].Pred != "c" {
		t.Fatalf("RemoveBodyAt produced %v", out)
	}
	if c.Length() != 3 {
		t.Fatal("RemoveBodyAt mutated the receiver")
	}
}

func TestClauseKeyOrderInsensitive(t *testing.T) {
	a := NewClause(Rel("t", Var("x")), Rel("a", Var("x")), Rel("b", Var("x")))
	b := NewClause(Rel("t", Var("x")), Rel("b", Var("x")), Rel("a", Var("x")))
	if a.Key() != b.Key() {
		t.Error("Key should be insensitive to body order")
	}
	if a.Equal(b) {
		t.Error("Equal is order sensitive and should report false here")
	}
}

func TestDefinitionStringAndAdd(t *testing.T) {
	d := &Definition{Target: "highGrossing"}
	d.Add(NewClause(Rel("highGrossing", Var("x")), Rel("movies", Var("y"), Var("x"), Var("z"))),
		ClauseStats{PositivesCovered: 10, NegativesCovered: 1, Score: 9})
	if d.Len() != 1 {
		t.Fatal("Add should append")
	}
	s := d.String()
	if !strings.Contains(s, "pos=10") || !strings.Contains(s, "movies") {
		t.Errorf("definition rendering missing pieces: %s", s)
	}
	empty := &Definition{Target: "p"}
	if !strings.Contains(empty.String(), "empty") {
		t.Error("empty definition should say so")
	}
}

func TestClauseCloneAndRenameIndependence(t *testing.T) {
	c := NewClause(Rel("t", Var("x")), Rel("r", Var("x"), Var("y")))
	clone := c.Clone()
	clone.Body[0].Args[0] = Const("mutated")
	if c.Body[0].Args[0] != Var("x") {
		t.Fatal("Clone must deep-copy body literals")
	}
	renamed := c.Rename(Substitution{"x": Const("a")})
	if renamed.Head.Args[0] != Const("a") || renamed.Body[0].Args[0] != Const("a") {
		t.Fatal("Rename should substitute in head and body")
	}
	if c.Head.Args[0] != Var("x") {
		t.Fatal("Rename must not mutate the receiver")
	}
}

// Property: renaming with an empty substitution is the identity.
func TestPropertyRenameEmptySubstitutionIdentity(t *testing.T) {
	f := func(pred string, varNames []string) bool {
		if pred == "" {
			pred = "r"
		}
		args := make([]Term, 0, len(varNames)+1)
		for _, v := range varNames {
			if v == "" {
				v = "x"
			}
			args = append(args, Var(v))
		}
		args = append(args, Const("c"))
		l := Rel(pred, args...)
		return l.Rename(NewSubstitution()).Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a clause key is stable under any permutation of its body.
func TestPropertyClauseKeyPermutationInvariant(t *testing.T) {
	f := func(perm []int) bool {
		body := []Literal{
			Rel("a", Var("x")), Rel("b", Var("x"), Var("y")),
			Rel("c", Var("y")), Eq(Var("x"), Var("y")),
		}
		c1 := NewClause(Rel("t", Var("x")), body...)
		// Build a permuted body using perm as a shuffle source.
		shuffled := make([]Literal, len(body))
		copy(shuffled, body)
		for i := range shuffled {
			if len(perm) == 0 {
				break
			}
			j := abs(perm[i%len(perm)]) % len(shuffled)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		c2 := NewClause(Rel("t", Var("x")), shuffled...)
		return c1.Key() == c2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
