package logic

import (
	"fmt"
	"strings"
)

// Kind distinguishes the literal forms of the extended hypothesis language.
type Kind int

const (
	// RelationLit is an atom over a schema relation, R(t1, ..., tn).
	RelationLit Kind = iota
	// EqualityLit is a restriction or induced-equality literal t1 = t2.
	EqualityLit
	// InequalityLit is a restriction literal t1 ≠ t2.
	InequalityLit
	// SimilarityLit is a similarity literal t1 ≈ t2 added for MD matches.
	SimilarityLit
	// RepairLit is a repair literal V_c(x, v_x) representing the repair
	// operation "replace x with v_x when condition c holds".
	RepairLit
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case RelationLit:
		return "relation"
	case EqualityLit:
		return "equality"
	case InequalityLit:
		return "inequality"
	case SimilarityLit:
		return "similarity"
	case RepairLit:
		return "repair"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// RepairOrigin records which kind of dependency induced a repair literal.
type RepairOrigin int

const (
	// OriginNone marks literals that are not repair literals.
	OriginNone RepairOrigin = iota
	// OriginMD marks repair literals induced by a matching dependency.
	OriginMD
	// OriginCFD marks repair literals induced by a CFD violation.
	OriginCFD
)

// String returns the origin name.
func (o RepairOrigin) String() string {
	switch o {
	case OriginNone:
		return "none"
	case OriginMD:
		return "md"
	case OriginCFD:
		return "cfd"
	default:
		return fmt.Sprintf("RepairOrigin(%d)", int(o))
	}
}

// CondOp is a comparison operator usable in a repair-literal condition.
type CondOp int

const (
	// CondEq requires the two terms to be equal.
	CondEq CondOp = iota
	// CondNeq requires the two terms to be distinct.
	CondNeq
	// CondSim requires the two terms to be similar (≈).
	CondSim
)

// String returns the operator symbol.
func (o CondOp) String() string {
	switch o {
	case CondEq:
		return "="
	case CondNeq:
		return "!="
	case CondSim:
		return "~"
	default:
		return fmt.Sprintf("CondOp(%d)", int(o))
	}
}

// Condition is one conjunct of the condition c of a repair literal V_c(x,vx).
type Condition struct {
	Op   CondOp
	L, R Term
}

// String renders the condition.
func (c Condition) String() string {
	return fmt.Sprintf("%s%s%s", c.L, c.Op, c.R)
}

// Rename returns the condition with its variable terms renamed through s.
func (c Condition) Rename(s Substitution) Condition {
	return Condition{Op: c.Op, L: s.Apply(c.L), R: s.Apply(c.R)}
}

// Literal is a literal of the extended language. The zero value is not a
// valid literal; use the constructor helpers below.
type Literal struct {
	Kind Kind
	// Pred is the relation symbol for RelationLit literals. For repair
	// literals it is a synthetic symbol naming the dependency that induced
	// the literal (useful for ordering and debugging); other kinds leave it
	// empty.
	Pred string
	// Args are the literal arguments. Relation literals have one argument
	// per attribute; built-in and repair literals have exactly two.
	Args []Term
	// Cond is the condition c of a repair literal; empty otherwise.
	Cond []Condition
	// Origin records whether a repair literal came from an MD or a CFD.
	Origin RepairOrigin
	// Group names the repair operation a repair literal belongs to. The
	// repair literals of one group encode a single repair operation on the
	// underlying database (e.g. the pair V(x,vx), V(t,vt) of one MD match)
	// and are applied together when converting a clause to its repaired
	// clauses. Alternative fixes of the same CFD violation carry distinct
	// groups.
	Group string
	// Induced marks equality literals that were introduced when replacing
	// repeated occurrences of a variable or constant (Section 3.2); they are
	// removed from repaired clauses when they no longer connect schema
	// literals.
	Induced bool
}

// Rel constructs a relation literal.
func Rel(pred string, args ...Term) Literal {
	return Literal{Kind: RelationLit, Pred: pred, Args: args}
}

// Eq constructs an equality literal l = r.
func Eq(l, r Term) Literal {
	return Literal{Kind: EqualityLit, Args: []Term{l, r}}
}

// InducedEq constructs an induced equality literal l = r (Section 3.2).
func InducedEq(l, r Term) Literal {
	return Literal{Kind: EqualityLit, Args: []Term{l, r}, Induced: true}
}

// Neq constructs an inequality literal l ≠ r.
func Neq(l, r Term) Literal {
	return Literal{Kind: InequalityLit, Args: []Term{l, r}}
}

// Sim constructs a similarity literal l ≈ r.
func Sim(l, r Term) Literal {
	return Literal{Kind: SimilarityLit, Args: []Term{l, r}}
}

// Repair constructs a repair literal V_cond(target, replacement) with the
// given origin. name identifies the inducing dependency. The literal is
// placed in a group of its own (named after the dependency); use
// RepairInGroup when several literals form one repair operation.
func Repair(name string, origin RepairOrigin, target, replacement Term, cond ...Condition) Literal {
	return RepairInGroup(name, name, origin, target, replacement, cond...)
}

// RepairInGroup constructs a repair literal belonging to the named repair
// group. All literals of a group are applied together when producing
// repaired clauses.
func RepairInGroup(name, group string, origin RepairOrigin, target, replacement Term, cond ...Condition) Literal {
	return Literal{
		Kind:   RepairLit,
		Pred:   name,
		Args:   []Term{target, replacement},
		Cond:   cond,
		Origin: origin,
		Group:  group,
	}
}

// IsRelation reports whether l is a relation literal.
func (l Literal) IsRelation() bool { return l.Kind == RelationLit }

// IsRepair reports whether l is a repair literal.
func (l Literal) IsRepair() bool { return l.Kind == RepairLit }

// IsRestriction reports whether l is a restriction literal (=, ≠ or ≈).
func (l Literal) IsRestriction() bool {
	return l.Kind == EqualityLit || l.Kind == InequalityLit || l.Kind == SimilarityLit
}

// Target returns the term a repair literal replaces (its first argument).
func (l Literal) Target() Term { return l.Args[0] }

// Replacement returns the replacement term of a repair literal (its second
// argument).
func (l Literal) Replacement() Term { return l.Args[1] }

// Clone returns a deep copy of the literal.
func (l Literal) Clone() Literal {
	c := l
	c.Args = make([]Term, len(l.Args))
	copy(c.Args, l.Args)
	if len(l.Cond) > 0 {
		c.Cond = make([]Condition, len(l.Cond))
		copy(c.Cond, l.Cond)
	}
	return c
}

// Rename returns the literal with every term replaced by its image under s.
// Conditions of repair literals are renamed as well.
func (l Literal) Rename(s Substitution) Literal {
	c := l.Clone()
	for i, a := range c.Args {
		c.Args[i] = s.Apply(a)
	}
	for i, cond := range c.Cond {
		c.Cond[i] = cond.Rename(s)
	}
	return c
}

// Terms returns the argument terms of the literal (not including condition
// terms of repair literals).
func (l Literal) Terms() []Term { return l.Args }

// AllTerms returns argument terms plus condition terms for repair literals.
func (l Literal) AllTerms() []Term {
	if len(l.Cond) == 0 {
		return l.Args
	}
	out := make([]Term, 0, len(l.Args)+2*len(l.Cond))
	out = append(out, l.Args...)
	for _, c := range l.Cond {
		out = append(out, c.L, c.R)
	}
	return out
}

// Variables returns the set of variable names appearing in the literal
// arguments (conditions included for repair literals).
func (l Literal) Variables() map[string]bool {
	vars := make(map[string]bool)
	for _, t := range l.AllTerms() {
		if t.Var {
			vars[t.Name] = true
		}
	}
	return vars
}

// Constants returns the set of constant values appearing in the literal.
func (l Literal) Constants() map[string]bool {
	consts := make(map[string]bool)
	for _, t := range l.AllTerms() {
		if !t.Var {
			consts[t.Name] = true
		}
	}
	return consts
}

// Equal reports whether two literals are syntactically identical.
func (l Literal) Equal(o Literal) bool {
	if l.Kind != o.Kind || l.Pred != o.Pred || l.Origin != o.Origin ||
		l.Group != o.Group ||
		len(l.Args) != len(o.Args) || len(l.Cond) != len(o.Cond) {
		return false
	}
	for i := range l.Args {
		if l.Args[i] != o.Args[i] {
			return false
		}
	}
	for i := range l.Cond {
		if l.Cond[i] != o.Cond[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string identity for the literal, usable for
// de-duplication in sets.
func (l Literal) Key() string { return l.String() }

// String renders the literal in Datalog-like syntax.
func (l Literal) String() string {
	switch l.Kind {
	case RelationLit:
		return fmt.Sprintf("%s(%s)", l.Pred, joinTerms(l.Args))
	case EqualityLit:
		return fmt.Sprintf("%s = %s", l.Args[0], l.Args[1])
	case InequalityLit:
		return fmt.Sprintf("%s != %s", l.Args[0], l.Args[1])
	case SimilarityLit:
		return fmt.Sprintf("%s ~ %s", l.Args[0], l.Args[1])
	case RepairLit:
		conds := make([]string, len(l.Cond))
		for i, c := range l.Cond {
			conds[i] = c.String()
		}
		tag := "V"
		if l.Origin == OriginCFD {
			tag = "Vcfd"
		}
		name := l.Pred
		if l.Group != "" && l.Group != l.Pred {
			name = l.Pred + "/" + l.Group
		}
		if len(conds) == 0 {
			return fmt.Sprintf("%s[%s](%s)", tag, name, joinTerms(l.Args))
		}
		return fmt.Sprintf("%s[%s|%s](%s)", tag, name, strings.Join(conds, "&"), joinTerms(l.Args))
	default:
		return fmt.Sprintf("?%d(%s)", int(l.Kind), joinTerms(l.Args))
	}
}

func joinTerms(ts []Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}
