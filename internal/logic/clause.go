package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Clause is a Horn clause Head ← Body. The head is always a relation literal
// over the target relation; the body may contain relation, restriction and
// repair literals.
type Clause struct {
	Head Literal
	Body []Literal
}

// NewClause builds a clause from a head and body literals.
func NewClause(head Literal, body ...Literal) Clause {
	return Clause{Head: head, Body: body}
}

// Clone returns a deep copy of the clause.
func (c Clause) Clone() Clause {
	out := Clause{Head: c.Head.Clone(), Body: make([]Literal, len(c.Body))}
	for i, l := range c.Body {
		out.Body[i] = l.Clone()
	}
	return out
}

// Rename applies the substitution to every literal of the clause.
func (c Clause) Rename(s Substitution) Clause {
	out := Clause{Head: c.Head.Rename(s), Body: make([]Literal, len(c.Body))}
	for i, l := range c.Body {
		out.Body[i] = l.Rename(s)
	}
	return out
}

// Variables returns the set of variable names in the clause.
func (c Clause) Variables() map[string]bool {
	vars := c.Head.Variables()
	for _, l := range c.Body {
		for v := range l.Variables() {
			vars[v] = true
		}
	}
	return vars
}

// Constants returns the set of constant values in the clause.
func (c Clause) Constants() map[string]bool {
	consts := c.Head.Constants()
	for _, l := range c.Body {
		for v := range l.Constants() {
			consts[v] = true
		}
	}
	return consts
}

// RelationLiterals returns the body literals that are relation literals.
func (c Clause) RelationLiterals() []Literal {
	var out []Literal
	for _, l := range c.Body {
		if l.IsRelation() {
			out = append(out, l)
		}
	}
	return out
}

// RepairLiterals returns the body repair literals.
func (c Clause) RepairLiterals() []Literal {
	var out []Literal
	for _, l := range c.Body {
		if l.IsRepair() {
			out = append(out, l)
		}
	}
	return out
}

// HasRepairLiterals reports whether the clause contains any repair literal.
func (c Clause) HasRepairLiterals() bool {
	for _, l := range c.Body {
		if l.IsRepair() {
			return true
		}
	}
	return false
}

// IsRepaired reports whether the clause is a repaired clause, i.e. contains
// no repair literals (Section 3.2).
func (c Clause) IsRepaired() bool { return !c.HasRepairLiterals() }

// Length returns the number of body literals.
func (c Clause) Length() int { return len(c.Body) }

// Equal reports whether two clauses are syntactically identical (same head,
// same body literals in the same order).
func (c Clause) Equal(o Clause) bool {
	if !c.Head.Equal(o.Head) || len(c.Body) != len(o.Body) {
		return false
	}
	for i := range c.Body {
		if !c.Body[i].Equal(o.Body[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical identity for the clause that is insensitive to the
// order of body literals, useful for de-duplicating repaired clauses.
func (c Clause) Key() string {
	keys := make([]string, len(c.Body))
	for i, l := range c.Body {
		keys[i] = l.Key()
	}
	sort.Strings(keys)
	return c.Head.Key() + " <- " + strings.Join(keys, " & ")
}

// String renders the clause in Datalog syntax.
func (c Clause) String() string {
	if len(c.Body) == 0 {
		return c.Head.String() + "."
	}
	parts := make([]string, len(c.Body))
	for i, l := range c.Body {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s <- %s.", c.Head.String(), strings.Join(parts, ", "))
}

// connectionGraph captures which body literals share variables, treating the
// head as node -1.
type connectionGraph struct {
	varToLits map[string][]int
}

func buildConnectionGraph(c Clause) connectionGraph {
	g := connectionGraph{varToLits: make(map[string][]int)}
	for i, l := range c.Body {
		for v := range l.Variables() {
			g.varToLits[v] = append(g.varToLits[v], i)
		}
	}
	return g
}

// HeadConnected returns the indices of body literals that are head-connected:
// a literal is head-connected if it shares a variable with the head literal or
// with another head-connected literal (Section 2.1). Restriction and repair
// literals participate in connectivity through their variables.
func (c Clause) HeadConnected() []int {
	g := buildConnectionGraph(c)
	reached := make([]bool, len(c.Body))
	queueVars := make([]string, 0, len(c.Head.Variables()))
	seenVar := make(map[string]bool)
	for v := range c.Head.Variables() {
		queueVars = append(queueVars, v)
		seenVar[v] = true
	}
	for len(queueVars) > 0 {
		v := queueVars[0]
		queueVars = queueVars[1:]
		for _, li := range g.varToLits[v] {
			if reached[li] {
				continue
			}
			reached[li] = true
			for nv := range c.Body[li].Variables() {
				if !seenVar[nv] {
					seenVar[nv] = true
					queueVars = append(queueVars, nv)
				}
			}
		}
	}
	var out []int
	for i, r := range reached {
		if r {
			out = append(out, i)
		}
	}
	return out
}

// PruneUnconnected returns a copy of the clause containing only
// head-connected body literals, preserving their original order. It then
// drops restriction and repair literals none of whose variables appear in a
// remaining relation literal or in the head (the clean-up step of
// Section 3.2).
func (c Clause) PruneUnconnected() Clause {
	connected := c.HeadConnected()
	keep := make(map[int]bool, len(connected))
	for _, i := range connected {
		keep[i] = true
	}
	pruned := Clause{Head: c.Head.Clone()}
	for i, l := range c.Body {
		if keep[i] {
			pruned.Body = append(pruned.Body, l.Clone())
		}
	}
	return pruned.DropDanglingAuxiliaries()
}

// DropDanglingAuxiliaries removes repair literals that no longer reference
// any term occurring in a schema (relation) literal or in the head, and then
// removes restriction literals that reference neither an anchored variable
// nor a surviving repair literal's variable. Relation literals are always
// kept. On a repaired clause (no repair literals left) this is exactly the
// clean-up step of Section 3.2.
func (c Clause) DropDanglingAuxiliaries() Clause {
	anchored := make(map[string]bool)
	for v := range c.Head.Variables() {
		anchored[v] = true
	}
	for _, l := range c.Body {
		if l.IsRelation() {
			for v := range l.Variables() {
				anchored[v] = true
			}
		}
	}
	// First pass: decide which repair literals survive (their target or
	// replacement touches an anchored variable) and extend the anchor set
	// with their variables so their restriction literals survive too.
	keepRepair := make(map[int]bool)
	for i, l := range c.Body {
		if !l.IsRepair() {
			continue
		}
		for _, a := range l.Args {
			if a.Var && anchored[a.Name] {
				keepRepair[i] = true
				break
			}
			// Repair literals targeting constants (ground bottom clauses)
			// are kept as long as a relation literal still carries that
			// constant; approximating that check, constant-targeting repair
			// literals are always kept.
			if a.IsConst() {
				keepRepair[i] = true
				break
			}
		}
	}
	for i := range keepRepair {
		for v := range c.Body[i].Variables() {
			anchored[v] = true
		}
	}
	out := Clause{Head: c.Head.Clone()}
	for i, l := range c.Body {
		switch {
		case l.IsRelation():
			out.Body = append(out.Body, l.Clone())
		case l.IsRepair():
			if keepRepair[i] {
				out.Body = append(out.Body, l.Clone())
			}
		default:
			keep := false
			for v := range l.Variables() {
				if anchored[v] {
					keep = true
					break
				}
			}
			// Fully ground restriction literals (possible in ground bottom
			// clauses) are kept; they carry constant-level constraints.
			if len(l.Variables()) == 0 {
				keep = true
			}
			if keep {
				out.Body = append(out.Body, l.Clone())
			}
		}
	}
	return out
}

// RemoveBodyAt returns a copy of the clause with the body literal at index i
// removed.
func (c Clause) RemoveBodyAt(i int) Clause {
	out := Clause{Head: c.Head.Clone(), Body: make([]Literal, 0, len(c.Body)-1)}
	for j, l := range c.Body {
		if j == i {
			continue
		}
		out.Body = append(out.Body, l.Clone())
	}
	return out
}

// ConnectedRepairLiterals returns the indices of repair literals in c that
// are connected to the body literal at index li in the sense of Definition
// 4.4: a repair literal V_c(x, vx) is connected to a non-repair literal L iff
// x or vx appears in L, or it appears in the arguments of a repair literal
// connected to L. Connectivity is tracked over terms (both variables and
// constants) so it also applies to ground bottom clauses.
func (c Clause) ConnectedRepairLiterals(li int) []int {
	target := c.Body[li]
	if target.IsRepair() {
		return nil
	}
	terms := make(map[Term]bool)
	for _, t := range target.Terms() {
		terms[t] = true
	}
	// Fixed-point: keep adding repair literals whose arguments intersect the
	// growing term set contributed by already-connected repair literals.
	connected := make(map[int]bool)
	changed := true
	for changed {
		changed = false
		for i, l := range c.Body {
			if !l.IsRepair() || connected[i] {
				continue
			}
			for _, a := range l.Args {
				if terms[a] {
					connected[i] = true
					changed = true
					for _, b := range l.Args {
						terms[b] = true
					}
					break
				}
			}
		}
	}
	out := make([]int, 0, len(connected))
	for i := range connected {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Definition is a set of clauses with the same head relation (a union of
// conjunctive queries / non-recursive Datalog program).
type Definition struct {
	// Target is the name of the relation being defined.
	Target string
	// Clauses are the learned clauses.
	Clauses []Clause
	// Stats holds optional per-clause training statistics, parallel to
	// Clauses. It may be nil or shorter than Clauses.
	Stats []ClauseStats
}

// ClauseStats records training-set coverage of a learned clause.
type ClauseStats struct {
	PositivesCovered int
	NegativesCovered int
	Score            int
}

// Add appends a clause (and its stats) to the definition.
func (d *Definition) Add(c Clause, stats ClauseStats) {
	d.Clauses = append(d.Clauses, c)
	d.Stats = append(d.Stats, stats)
}

// Len returns the number of clauses in the definition.
func (d *Definition) Len() int { return len(d.Clauses) }

// String renders the definition, one clause per line, with coverage stats
// when available.
func (d *Definition) String() string {
	if d == nil || len(d.Clauses) == 0 {
		return fmt.Sprintf("%s :- <empty definition>", d.targetName())
	}
	var b strings.Builder
	for i, c := range d.Clauses {
		b.WriteString(c.String())
		if i < len(d.Stats) {
			fmt.Fprintf(&b, "  (pos=%d, neg=%d)", d.Stats[i].PositivesCovered, d.Stats[i].NegativesCovered)
		}
		if i != len(d.Clauses)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func (d *Definition) targetName() string {
	if d == nil {
		return "<nil>"
	}
	return d.Target
}
