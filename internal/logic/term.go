// Package logic provides the first-order logic layer used by DLearn:
// terms, literals (including the similarity and repair literals introduced by
// the paper), Horn clauses, definitions, and substitutions.
//
// The hypothesis language follows Section 3.2 of "Learning Over Dirty Data
// Without Cleaning" (Picado et al., SIGMOD 2020): Horn clauses over schema
// relations extended with similarity literals (x ≈ y), repair literals
// V_c(x, v_x) that compactly represent repair operations induced by matching
// dependencies (MDs) and conditional functional dependencies (CFDs), and
// restriction literals (=, ≠, ≈) that relate the replacement variables.
package logic

import (
	"fmt"
	"strings"
)

// Term is a variable or a constant appearing as an argument of a literal.
// Terms are small value types and are comparable, so they can be used as map
// keys in substitutions and indexes.
type Term struct {
	// Name is the variable name (for variables) or the constant value (for
	// constants).
	Name string
	// Var reports whether the term is a variable.
	Var bool
}

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{Name: name, Var: true} }

// Const returns a constant term with the given value.
func Const(value string) Term { return Term{Name: value, Var: false} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Var }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return !t.Var }

// String renders the term; constants are quoted when they contain spaces or
// commas so clauses remain readable and unambiguous.
func (t Term) String() string {
	if t.Var {
		return t.Name
	}
	if strings.ContainsAny(t.Name, " ,()'") || t.Name == "" {
		return fmt.Sprintf("%q", t.Name)
	}
	return t.Name
}

// Substitution maps variable names to terms. Applying a substitution to a
// clause replaces every occurrence of a bound variable with its image.
type Substitution map[string]Term

// NewSubstitution returns an empty substitution.
func NewSubstitution() Substitution { return make(Substitution) }

// Clone returns a copy of the substitution that can be extended without
// affecting the receiver.
func (s Substitution) Clone() Substitution {
	c := make(Substitution, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Apply returns the image of t under the substitution. Constants and unbound
// variables are returned unchanged.
func (s Substitution) Apply(t Term) Term {
	if !t.Var {
		return t
	}
	if img, ok := s[t.Name]; ok {
		return img
	}
	return t
}

// Bind records that variable v maps to term t. It reports false if v is
// already bound to a different term (the substitution is left unchanged in
// that case).
func (s Substitution) Bind(v string, t Term) bool {
	if cur, ok := s[v]; ok {
		return cur == t
	}
	s[v] = t
	return true
}

// Compose returns the substitution s;u, i.e. first s then u applied to the
// images of s, plus the bindings of u for variables unbound in s.
func (s Substitution) Compose(u Substitution) Substitution {
	out := make(Substitution, len(s)+len(u))
	for k, v := range s {
		out[k] = u.Apply(v)
	}
	for k, v := range u {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// String renders the substitution deterministically (sorted by variable).
func (s Substitution) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sortStrings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s/%s", k, s[k]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// sortStrings sorts in place without importing sort in every file.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// VarCounter generates fresh variable names (v0, v1, ...). It is not safe for
// concurrent use; each clause-construction task owns its own counter.
type VarCounter struct {
	next int
	pfx  string
}

// NewVarCounter returns a counter that generates names with the given prefix.
func NewVarCounter(prefix string) *VarCounter {
	if prefix == "" {
		prefix = "v"
	}
	return &VarCounter{pfx: prefix}
}

// Fresh returns the next unused variable term.
func (c *VarCounter) Fresh() Term {
	t := Var(fmt.Sprintf("%s%d", c.pfx, c.next))
	c.next++
	return t
}

// Peek reports how many variables have been generated so far.
func (c *VarCounter) Peek() int { return c.next }
