package fault

import (
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if f := inj.Fire("p"); f != nil {
		t.Fatalf("nil injector fired %+v", f)
	}
	if err := inj.Err("p"); err != nil {
		t.Fatalf("nil injector errored: %v", err)
	}
	inj.Panic("p") // must not panic
	inj.Delay("p") // must not sleep
	if m := inj.Fired(); m != nil {
		t.Fatalf("nil injector reports fires: %v", m)
	}
	if s := inj.String(); s != "<none>" {
		t.Fatalf("nil injector String = %q", s)
	}
}

func TestHitRulesFireExactly(t *testing.T) {
	inj := New(1, Rule{Point: "w", Hits: []int{2, 4}, Kind: KindError, Msg: "boom"})
	var fired []int
	for hit := 1; hit <= 5; hit++ {
		if err := inj.Err("w"); err != nil {
			fired = append(fired, hit)
			if !strings.Contains(err.Error(), "boom") {
				t.Errorf("hit %d error = %v, want it to carry the message", hit, err)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [2 4]", fired)
	}
	if n := inj.Fired()["w"]; n != 2 {
		t.Errorf("Fired()[w] = %d, want 2", n)
	}
}

func TestEveryRuleFiresPeriodically(t *testing.T) {
	inj := New(1, Rule{Point: "w", Every: 3, Kind: KindError, Msg: "x"})
	var fired []int
	for hit := 1; hit <= 9; hit++ {
		if inj.Err("w") != nil {
			fired = append(fired, hit)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on %v, want %v", fired, want)
		}
	}
}

func TestProbRuleDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		inj := New(seed, Rule{Point: "w", Prob: 0.5, Kind: KindError, Msg: "x"})
		var fired []int
		for hit := 1; hit <= 64; hit++ {
			if inj.Err("w") != nil {
				fired = append(fired, hit)
			}
		}
		return fired
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fires: %v vs %v", a, b)
		}
	}
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("prob=0.5 fired %d/64 times; rule is not probabilistic", len(a))
	}
}

func TestTornKeepsPrefix(t *testing.T) {
	inj := New(1, Rule{Point: "w", Hits: []int{1}, Kind: KindTorn, Msg: "crash", Keep: 3})
	f := inj.Fire("w")
	if f == nil || f.Kind != KindTorn {
		t.Fatalf("Fire = %+v, want a torn fault", f)
	}
	if got := string(f.Torn([]byte("abcdef"))); got != "abc" {
		t.Errorf("Torn = %q, want %q", got, "abc")
	}
	half := &Fault{Kind: KindTorn}
	if got := string(half.Torn([]byte("abcdef"))); got != "abc" {
		t.Errorf("default Torn = %q, want half the payload", got)
	}
	long := &Fault{Kind: KindTorn, Keep: 100}
	if got := string(long.Torn([]byte("ab"))); got != "ab" {
		t.Errorf("oversized keep = %q, want the full payload", got)
	}
}

func TestPanicAndDelayHelpers(t *testing.T) {
	inj := New(1,
		Rule{Point: "p", Hits: []int{1}, Kind: KindPanic, Msg: "kaboom"},
		Rule{Point: "d", Hits: []int{1}, Kind: KindDelay, Delay: 10 * time.Millisecond},
	)
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(r.(string), "kaboom") {
				t.Errorf("recover = %v, want the injected panic", r)
			}
		}()
		inj.Panic("p")
	}()
	start := time.Now()
	inj.Delay("d")
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("Delay slept %s, want at least 10ms", d)
	}
	// Mismatched kinds at a point are invisible to the typed helpers.
	if err := inj.Err("p"); err != nil {
		t.Errorf("Err on a panic-only point = %v, want nil", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inj, err := Parse("journal.finish:hit=1,3:torn=crash:keep=10; worker.observe:every=2:panic=boom ;sse.write:prob=0.25:delay=50ms", 9)
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil {
		t.Fatal("Parse returned a nil injector for a non-empty spec")
	}
	f := inj.Fire("journal.finish")
	if f == nil || f.Kind != KindTorn || f.Msg != "crash" || f.Keep != 10 {
		t.Errorf("journal.finish hit 1 = %+v, want torn/crash/keep 10", f)
	}
	if f := inj.Fire("journal.finish"); f != nil {
		t.Errorf("journal.finish hit 2 fired %+v, want nil", f)
	}
	if f := inj.Fire("journal.finish"); f == nil {
		t.Error("journal.finish hit 3 did not fire")
	}
	inj.Fire("worker.observe")
	if f := inj.Fire("worker.observe"); f == nil || f.Kind != KindPanic || f.Msg != "boom" {
		t.Errorf("worker.observe hit 2 = %+v, want panic/boom", f)
	}
}

func TestParseEmptyAndInvalid(t *testing.T) {
	if inj, err := Parse("   ", 1); err != nil || inj != nil {
		t.Errorf("blank spec = (%v, %v), want (nil, nil)", inj, err)
	}
	for _, spec := range []string{
		"pointonly",
		"p:hit=0:error=x",
		"p:prob=2:error=x",
		"p:hit=1",                 // no behavior
		"p:error=x",               // no trigger
		"p:hit=1:error=a:panic=b", // two behaviors
		"p:hit=1:wat=1",
		"p:hit=1:delay=banana",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
}

// BenchmarkNilInjector pins the zero-overhead claim for production runs: an
// injection point on a nil *Injector is one nil check.
func BenchmarkNilInjector(b *testing.B) {
	var inj *Injector
	for i := 0; i < b.N; i++ {
		if err := inj.Err("hot.path"); err != nil {
			b.Fatal(err)
		}
	}
}
