// Package fault is a deterministic fault-injection layer for the I/O seams
// of the serving stack: journal writes, snapshot persistence, SSE delivery
// and the job worker. Production code paths carry a *Injector that is nil
// unless a test (or the -fault-schedule flag on dlearn-serve) installs a
// schedule; every method no-ops on a nil receiver, so an injection point in
// the hot path compiles to a single nil check (see BenchmarkNilInjector —
// sub-nanosecond, fully inlined).
//
// A schedule is a set of rules keyed by named injection points. Rules fire
// either at exact hit counts of a point ("the 3rd journal write fails"), on
// a period ("every snapshot save fails"), or probabilistically from a seeded
// RNG. Hit-count and period rules are fully deterministic; probabilistic
// rules are deterministic given the seed and the order points are hit, which
// single-threaded seams (the journal, one worker) guarantee and concurrent
// seams do not — the chaos suite pins its invariants with hit-count rules
// and uses seeded probability only for dirty-environment smoke.
//
// The schedule grammar, used by tests and dlearn-serve's -fault-schedule
// test hook, is a semicolon-separated list of rules:
//
//	point:key=value[:key=value...][;point2:...]
//
// with one trigger key — hit=N[,M...] (exact 1-based hit numbers), every=N
// (each Nth hit), or prob=P (per-hit probability) — and one behavior key:
// error=MSG (the seam fails with MSG), torn=MSG (the seam tears the write —
// a truncated payload reaches the final file — then fails with MSG),
// panic=MSG (the seam panics), or delay=DUR (the seam sleeps DUR, a Go
// duration such as 50ms). A torn rule may add keep=N to control how many
// payload bytes survive (default: half). Example:
//
//	journal.finish:hit=1:torn=crash at fsync;worker.observe:hit=3:panic=boom
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Behavior kinds a rule can inject.
const (
	// KindError makes the seam return an error.
	KindError = "error"
	// KindTorn makes a write seam commit a truncated payload and then fail,
	// simulating a torn write that reached the disk before a crash.
	KindTorn = "torn"
	// KindPanic makes the seam panic.
	KindPanic = "panic"
	// KindDelay makes the seam sleep, simulating a slow peer.
	KindDelay = "delay"
)

// Rule schedules one fault at a named injection point. Exactly one trigger
// (Hits, Every or Prob) and one behavior (Kind plus its parameters) apply.
type Rule struct {
	// Point is the injection point name the rule is keyed by.
	Point string
	// Hits lists exact 1-based hit counts of the point that fire.
	Hits []int
	// Every fires on each Nth hit when positive (and Hits is empty).
	Every int
	// Prob fires each hit with this probability from the injector's seeded
	// RNG when positive (and Hits is empty, Every zero).
	Prob float64
	// Kind is one of the Kind* constants; empty means KindError.
	Kind string
	// Msg is the error or panic message.
	Msg string
	// Delay is how long a KindDelay rule sleeps.
	Delay time.Duration
	// Keep is how many payload bytes a KindTorn rule lets through; zero
	// means half the payload.
	Keep int
}

func (r *Rule) matches(hit int, rng *rand.Rand) bool {
	if len(r.Hits) > 0 {
		for _, h := range r.Hits {
			if h == hit {
				return true
			}
		}
		return false
	}
	if r.Every > 0 {
		return hit%r.Every == 0
	}
	if r.Prob > 0 {
		return rng.Float64() < r.Prob
	}
	return false
}

// Fault is one scheduled fault returned by Fire: the matched rule's
// behavior, ready for the seam to apply.
type Fault struct {
	// Point is the injection point that fired.
	Point string
	// Kind is the behavior to apply (one of the Kind* constants).
	Kind string
	// Msg is the error or panic message.
	Msg string
	// Delay is the sleep for KindDelay faults.
	Delay time.Duration
	// Keep is the surviving byte count for KindTorn faults (zero = half).
	Keep int
}

// Err renders the fault as an error.
func (f *Fault) Err() error {
	if f.Msg != "" {
		return fmt.Errorf("fault: %s: %s", f.Point, f.Msg)
	}
	return fmt.Errorf("fault: injected at %s", f.Point)
}

// Torn returns the prefix of data a torn write lets through.
func (f *Fault) Torn(data []byte) []byte {
	keep := f.Keep
	if keep <= 0 {
		keep = len(data) / 2
	}
	if keep > len(data) {
		keep = len(data)
	}
	return data[:keep]
}

// Injector decides, per hit of each named injection point, whether a
// scheduled fault fires. The zero of usefulness is nil: every method on a
// nil *Injector is a no-op, which is how production runs pay nothing.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string][]*Rule
	hits  map[string]int
	fired map[string]int
}

// New builds an injector over the rules with a seeded RNG for probabilistic
// triggers. Rules for unknown points are fine — they simply never fire.
func New(seed int64, rules ...Rule) *Injector {
	if seed == 0 {
		seed = 1
	}
	inj := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string][]*Rule),
		hits:  make(map[string]int),
		fired: make(map[string]int),
	}
	for i := range rules {
		r := rules[i]
		if r.Kind == "" {
			r.Kind = KindError
		}
		inj.rules[r.Point] = append(inj.rules[r.Point], &r)
	}
	return inj
}

// Parse builds an injector from the schedule grammar described in the
// package comment. An empty spec returns a nil injector — faults disabled.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: rule %q needs point:key=value", part)
		}
		r := Rule{Point: strings.TrimSpace(fields[0])}
		if r.Point == "" {
			return nil, fmt.Errorf("fault: rule %q has an empty point", part)
		}
		for _, kv := range fields[1:] {
			key, value, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: %q is not key=value", part, kv)
			}
			var err error
			switch key {
			case "hit":
				for _, h := range strings.Split(value, ",") {
					n, herr := strconv.Atoi(strings.TrimSpace(h))
					if herr != nil || n < 1 {
						return nil, fmt.Errorf("fault: rule %q: bad hit %q", part, h)
					}
					r.Hits = append(r.Hits, n)
				}
			case "every":
				if r.Every, err = strconv.Atoi(value); err != nil || r.Every < 1 {
					return nil, fmt.Errorf("fault: rule %q: bad every %q", part, value)
				}
			case "prob":
				if r.Prob, err = strconv.ParseFloat(value, 64); err != nil || r.Prob <= 0 || r.Prob > 1 {
					return nil, fmt.Errorf("fault: rule %q: bad prob %q", part, value)
				}
			case "error", "torn", "panic":
				if r.Kind != "" {
					return nil, fmt.Errorf("fault: rule %q sets two behaviors", part)
				}
				r.Kind, r.Msg = key, value
			case "delay":
				if r.Kind != "" {
					return nil, fmt.Errorf("fault: rule %q sets two behaviors", part)
				}
				r.Kind = KindDelay
				if r.Delay, err = time.ParseDuration(value); err != nil || r.Delay < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad delay %q", part, value)
				}
			case "keep":
				if r.Keep, err = strconv.Atoi(value); err != nil || r.Keep < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad keep %q", part, value)
				}
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown key %q", part, key)
			}
		}
		if len(r.Hits) == 0 && r.Every == 0 && r.Prob == 0 {
			return nil, fmt.Errorf("fault: rule %q needs a trigger (hit=, every= or prob=)", part)
		}
		if r.Kind == "" {
			return nil, errors.New("fault: rule " + strconv.Quote(part) + " needs a behavior (error=, torn=, panic= or delay=)")
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(seed, rules...), nil
}

// Fire records one hit of the point and returns the fault scheduled for it,
// or nil. Seams that only understand a subset of behaviors should use the
// typed helpers (Err, Panic, Delay) instead; write seams handle KindError
// and KindTorn from Fire directly.
func (i *Injector) Fire(point string) *Fault {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.hits[point]++
	hit := i.hits[point]
	for _, r := range i.rules[point] {
		if r.matches(hit, i.rng) {
			i.fired[point]++
			return &Fault{Point: point, Kind: r.Kind, Msg: r.Msg, Delay: r.Delay, Keep: r.Keep}
		}
	}
	return nil
}

// Err records a hit and returns the scheduled error, or nil. Only KindError
// faults surface here; other kinds scheduled on the same point are ignored
// by this seam.
func (i *Injector) Err(point string) error {
	if i == nil {
		return nil
	}
	if f := i.Fire(point); f != nil && f.Kind == KindError {
		return f.Err()
	}
	return nil
}

// Panic records a hit and panics when a KindPanic fault is scheduled for it.
func (i *Injector) Panic(point string) {
	if i == nil {
		return
	}
	if f := i.Fire(point); f != nil && f.Kind == KindPanic {
		panic("fault: " + point + ": " + f.Msg)
	}
}

// Delay records a hit and sleeps when a KindDelay fault is scheduled for it.
func (i *Injector) Delay(point string) {
	if i == nil {
		return
	}
	if f := i.Fire(point); f != nil && f.Kind == KindDelay {
		time.Sleep(f.Delay)
	}
}

// Fired reports how many times each point's rules fired, for tests and the
// serve log.
func (i *Injector) Fired() map[string]int {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]int, len(i.fired))
	for p, n := range i.fired {
		out[p] = n
	}
	return out
}

// String renders the schedule's points for logging.
func (i *Injector) String() string {
	if i == nil {
		return "<none>"
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	points := make([]string, 0, len(i.rules))
	for p, rs := range i.rules {
		points = append(points, fmt.Sprintf("%s(%d)", p, len(rs)))
	}
	sort.Strings(points)
	return strings.Join(points, " ")
}
