// Package docscheck is the repository's documentation link checker: a test
// that walks every Markdown file at the repo root and under docs/ and
// verifies that relative links resolve to files that exist (including
// heading anchors within this repository's own files). CI runs it as the
// docs job; locally it is part of the ordinary test suite, so a moved or
// renamed document breaks the build instead of the docs.
package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot locates the repository root relative to this package.
const repoRoot = "../.."

// markdownFiles returns the Markdown files the checker covers: the README
// plus everything under docs/, recursively. Generated reference artifacts
// at the root (SNIPPETS.md, PAPERS.md, ...) quote links from external
// repositories verbatim and are deliberately out of scope.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	files := []string{filepath.Join(repoRoot, "README.md")}
	docsDir := filepath.Join(repoRoot, "docs")
	if _, err := os.Stat(docsDir); err == nil {
		err := filepath.WalkDir(docsDir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking docs/: %v", err)
		}
	}
	if len(files) == 0 {
		t.Fatal("no Markdown files found; is repoRoot wrong?")
	}
	return files
}

// linkPattern matches inline Markdown links [text](target). Images and
// reference-style links are out of scope; the repo uses inline links.
var linkPattern = regexp.MustCompile(`\]\(([^()\s]+)\)`)

// headingAnchors returns the GitHub-style anchors of a Markdown file's
// headings.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		// GitHub anchor rule: lowercase, drop everything but letters,
		// digits, underscores, spaces and hyphens, then hyphenate spaces.
		var b strings.Builder
		for _, r := range strings.ToLower(text) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
				b.WriteRune(r)
			case r == ' ':
				b.WriteByte('-')
			}
		}
		anchors["#"+b.String()] = true
	}
	return anchors, nil
}

// TestMarkdownLinksResolve fails on any relative link whose target file (or
// in-repo heading anchor) does not exist. External links are shape-checked
// only — no network in tests.
func TestMarkdownLinksResolve(t *testing.T) {
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		for _, m := range linkPattern.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			rel, frag := target, ""
			if i := strings.IndexByte(target, '#'); i >= 0 {
				rel, frag = target[:i], target[i:]
			}
			resolved := file
			if rel != "" {
				resolved = filepath.Join(filepath.Dir(file), rel)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", displayPath(file), target, err)
					continue
				}
			}
			if frag != "" && frag != "#" && strings.HasSuffix(resolved, ".md") {
				anchors, err := headingAnchors(resolved)
				if err != nil {
					t.Errorf("%s: reading anchor target %q: %v", displayPath(file), target, err)
					continue
				}
				if !anchors[frag] {
					t.Errorf("%s: link %q points to a heading %q that does not exist in %s",
						displayPath(file), target, frag, displayPath(resolved))
				}
			}
		}
	}
}

// TestArchitectureDocIsLinked pins the README ↔ docs contract: the
// architecture document must stay reachable from the README.
func TestArchitectureDocIsLinked(t *testing.T) {
	readme, err := os.ReadFile(filepath.Join(repoRoot, "README.md"))
	if err != nil {
		t.Fatalf("reading README: %v", err)
	}
	if !strings.Contains(string(readme), "docs/ARCHITECTURE.md") {
		t.Error("README.md does not link docs/ARCHITECTURE.md")
	}
}

// displayPath renders a checked file relative to the repo root for readable
// failure messages.
func displayPath(path string) string {
	rel, err := filepath.Rel(repoRoot, path)
	if err != nil {
		return path
	}
	return rel
}
