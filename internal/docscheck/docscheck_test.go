// Package docscheck is the repository's documentation checker: tests that
// walk every Markdown file at the repo root and under docs/ and verify that
// (a) relative links resolve to files that exist (including heading anchors
// within this repository's own files) and (b) references to Go identifiers
// of the public dlearn package — `dlearn.Foo` mentions and option functions
// like `WithThreads(n)` — name identifiers that still exist, so an API
// rename breaks the build instead of silently stranding the README. CI runs
// it as the docs job; locally it is part of the ordinary test suite.
package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot locates the repository root relative to this package.
const repoRoot = "../.."

// markdownFiles returns the Markdown files the checker covers: the README
// plus everything under docs/, recursively. Generated reference artifacts
// at the root (SNIPPETS.md, PAPERS.md, ...) quote links from external
// repositories verbatim and are deliberately out of scope.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	files := []string{filepath.Join(repoRoot, "README.md")}
	docsDir := filepath.Join(repoRoot, "docs")
	if _, err := os.Stat(docsDir); err == nil {
		err := filepath.WalkDir(docsDir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking docs/: %v", err)
		}
	}
	if len(files) == 0 {
		t.Fatal("no Markdown files found; is repoRoot wrong?")
	}
	return files
}

// linkPattern matches inline Markdown links [text](target). Images and
// reference-style links are out of scope; the repo uses inline links.
var linkPattern = regexp.MustCompile(`\]\(([^()\s]+)\)`)

// headingAnchors returns the GitHub-style anchors of a Markdown file's
// headings.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		// GitHub anchor rule: lowercase, drop everything but letters,
		// digits, underscores, spaces and hyphens, then hyphenate spaces.
		var b strings.Builder
		for _, r := range strings.ToLower(text) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
				b.WriteRune(r)
			case r == ' ':
				b.WriteByte('-')
			}
		}
		anchors["#"+b.String()] = true
	}
	return anchors, nil
}

// TestMarkdownLinksResolve fails on any relative link whose target file (or
// in-repo heading anchor) does not exist. External links are shape-checked
// only — no network in tests.
func TestMarkdownLinksResolve(t *testing.T) {
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		for _, m := range linkPattern.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			rel, frag := target, ""
			if i := strings.IndexByte(target, '#'); i >= 0 {
				rel, frag = target[:i], target[i:]
			}
			resolved := file
			if rel != "" {
				resolved = filepath.Join(filepath.Dir(file), rel)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", displayPath(file), target, err)
					continue
				}
			}
			if frag != "" && frag != "#" && strings.HasSuffix(resolved, ".md") {
				anchors, err := headingAnchors(resolved)
				if err != nil {
					t.Errorf("%s: reading anchor target %q: %v", displayPath(file), target, err)
					continue
				}
				if !anchors[frag] {
					t.Errorf("%s: link %q points to a heading %q that does not exist in %s",
						displayPath(file), target, frag, displayPath(resolved))
				}
			}
		}
	}
}

// TestArchitectureDocIsLinked pins the README ↔ docs contract: the
// architecture document must stay reachable from the README.
func TestArchitectureDocIsLinked(t *testing.T) {
	readme, err := os.ReadFile(filepath.Join(repoRoot, "README.md"))
	if err != nil {
		t.Fatalf("reading README: %v", err)
	}
	if !strings.Contains(string(readme), "docs/ARCHITECTURE.md") {
		t.Error("README.md does not link docs/ARCHITECTURE.md")
	}
}

// publicIdentifiers parses the non-test Go files of the root dlearn package
// and returns every top-level declared name: functions, types (including
// aliases), consts and vars. Methods are excluded — docs reference them
// through a value, not as dlearn.X.
func publicIdentifiers(t *testing.T) map[string]bool {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(repoRoot, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	fset := token.NewFileSet()
	for _, path := range paths {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					names[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						names[s.Name.Name] = true
					case *ast.ValueSpec:
						for _, n := range s.Names {
							names[n.Name] = true
						}
					}
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("no public identifiers found; is repoRoot wrong?")
	}
	return names
}

// qualifiedRefPattern matches dlearn.Identifier references anywhere in a
// Markdown file (code spans and fenced blocks included — both document the
// public API).
var qualifiedRefPattern = regexp.MustCompile(`\bdlearn\.([A-Z][A-Za-z0-9_]*)`)

// optionRefPattern matches option-function references in code spans, e.g.
// `WithThreads(n)` or `WithSnapshotStore(s)`. The With prefix is the public
// API's option naming convention, so a code span leading with it is an API
// reference, not prose.
var optionRefPattern = regexp.MustCompile("`(With[A-Z][A-Za-z0-9_]*)")

// TestMarkdownAPIReferencesExist fails on any Markdown reference to a public
// dlearn identifier that is no longer declared — the docs-drift guard for
// the sections that document engine options, observer events and
// persistence types.
func TestMarkdownAPIReferencesExist(t *testing.T) {
	names := publicIdentifiers(t)
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		text := string(data)
		for _, m := range qualifiedRefPattern.FindAllStringSubmatch(text, -1) {
			if !names[m[1]] {
				t.Errorf("%s: references dlearn.%s, which is not declared in the public API", displayPath(file), m[1])
			}
		}
		for _, m := range optionRefPattern.FindAllStringSubmatch(text, -1) {
			if !names[m[1]] {
				t.Errorf("%s: references option %s, which is not declared in the public API", displayPath(file), m[1])
			}
		}
	}
}

// displayPath renders a checked file relative to the repo root for readable
// failure messages.
func displayPath(path string) string {
	rel, err := filepath.Rel(repoRoot, path)
	if err != nil {
		return path
	}
	return rel
}
