// Package constraints implements the declarative data-quality constraints
// DLearn learns with: matching dependencies (MDs, Section 2.2 of the paper)
// and conditional functional dependencies (CFDs, Section 2.3). It provides
// their normalized representations, validation against a schema, violation
// detection over instances and over groups of clause literals, and the
// consistency check for CFD sets.
package constraints

import (
	"fmt"
	"strings"

	"dlearn/internal/relation"
)

// AttrPair is one similarity comparison R1[A] ≈ R2[B] on the left-hand side
// of an MD.
type AttrPair struct {
	Left  string
	Right string
}

// MD is a matching dependency in the normalized form
//
//	R1[A1..An] ≈ R2[B1..Bn] → R1[C] ⇌ R2[D]
//
// i.e. with a single matched attribute pair on the right-hand side
// (Section 2.2 shows any MD is equivalent to a set of such MDs).
type MD struct {
	// Name identifies the MD in clauses, logs and benchmarks.
	Name string
	// LeftRel and RightRel are the two (distinct) relations the MD relates.
	LeftRel, RightRel string
	// Similar are the attribute pairs compared with ≈ on the left-hand side.
	Similar []AttrPair
	// MatchLeft and MatchRight are the attributes identified (⇌) when the
	// left-hand side holds.
	MatchLeft, MatchRight string
}

// NewMD builds a normalized MD. The common case — the matched pair is also
// the compared pair — is obtained by passing the same attribute names in
// Similar and Match*.
func NewMD(name, leftRel, rightRel string, similar []AttrPair, matchLeft, matchRight string) MD {
	return MD{
		Name:       name,
		LeftRel:    leftRel,
		RightRel:   rightRel,
		Similar:    similar,
		MatchLeft:  matchLeft,
		MatchRight: matchRight,
	}
}

// SimpleMD builds the common single-attribute MD
// leftRel[attr] ≈ rightRel[attr'] → leftRel[attr] ⇌ rightRel[attr'].
func SimpleMD(name, leftRel, leftAttr, rightRel, rightAttr string) MD {
	return NewMD(name, leftRel, rightRel,
		[]AttrPair{{Left: leftAttr, Right: rightAttr}}, leftAttr, rightAttr)
}

// Validate checks that the MD refers to existing relations and attributes
// and that compared/matched attributes are comparable (same domain).
func (m MD) Validate(schema *relation.Schema) error {
	lr := schema.Relation(m.LeftRel)
	rr := schema.Relation(m.RightRel)
	if lr == nil {
		return fmt.Errorf("constraints: MD %s: unknown relation %q", m.Name, m.LeftRel)
	}
	if rr == nil {
		return fmt.Errorf("constraints: MD %s: unknown relation %q", m.Name, m.RightRel)
	}
	if m.LeftRel == m.RightRel {
		return fmt.Errorf("constraints: MD %s: MDs are defined over distinct relations", m.Name)
	}
	if len(m.Similar) == 0 {
		return fmt.Errorf("constraints: MD %s: empty left-hand side", m.Name)
	}
	// Note: an MD itself declares that its compared attributes are
	// comparable, so attributes from different domains (e.g. imdb_title and
	// omdb_title) may legitimately appear on its left-hand side. Validation
	// therefore only checks that the referenced attributes exist.
	check := func(rel *relation.Relation, attr string) (relation.Attribute, error) {
		i := rel.AttrIndex(attr)
		if i < 0 {
			return relation.Attribute{}, fmt.Errorf("constraints: MD %s: relation %s has no attribute %q", m.Name, rel.Name, attr)
		}
		return rel.Attribute(i), nil
	}
	for _, p := range m.Similar {
		if _, err := check(lr, p.Left); err != nil {
			return err
		}
		if _, err := check(rr, p.Right); err != nil {
			return err
		}
	}
	if _, err := check(lr, m.MatchLeft); err != nil {
		return err
	}
	if _, err := check(rr, m.MatchRight); err != nil {
		return err
	}
	return nil
}

// LeftAttrIndexes resolves the compared attributes of the left relation to
// positions.
func (m MD) LeftAttrIndexes(schema *relation.Schema) []int {
	r := schema.Relation(m.LeftRel)
	out := make([]int, len(m.Similar))
	for i, p := range m.Similar {
		out[i] = r.AttrIndex(p.Left)
	}
	return out
}

// RightAttrIndexes resolves the compared attributes of the right relation to
// positions.
func (m MD) RightAttrIndexes(schema *relation.Schema) []int {
	r := schema.Relation(m.RightRel)
	out := make([]int, len(m.Similar))
	for i, p := range m.Similar {
		out[i] = r.AttrIndex(p.Right)
	}
	return out
}

// MatchIndexes resolves the matched (⇌) attributes to positions.
func (m MD) MatchIndexes(schema *relation.Schema) (left, right int) {
	return schema.Relation(m.LeftRel).AttrIndex(m.MatchLeft),
		schema.Relation(m.RightRel).AttrIndex(m.MatchRight)
}

// Involves reports whether the MD's left-hand side compares attributes of
// the given relation.
func (m MD) Involves(rel string) bool { return m.LeftRel == rel || m.RightRel == rel }

// Reverse returns the MD with its two sides swapped. MDs are symmetric for
// the purposes of similarity search during bottom-clause construction.
func (m MD) Reverse() MD {
	sim := make([]AttrPair, len(m.Similar))
	for i, p := range m.Similar {
		sim[i] = AttrPair{Left: p.Right, Right: p.Left}
	}
	return MD{
		Name:       m.Name,
		LeftRel:    m.RightRel,
		RightRel:   m.LeftRel,
		Similar:    sim,
		MatchLeft:  m.MatchRight,
		MatchRight: m.MatchLeft,
	}
}

// String renders the MD in the paper's notation.
func (m MD) String() string {
	lhs := make([]string, len(m.Similar))
	for i, p := range m.Similar {
		lhs[i] = fmt.Sprintf("%s[%s] ~ %s[%s]", m.LeftRel, p.Left, m.RightRel, p.Right)
	}
	return fmt.Sprintf("%s: %s -> %s[%s] <=> %s[%s]",
		m.Name, strings.Join(lhs, ", "), m.LeftRel, m.MatchLeft, m.RightRel, m.MatchRight)
}

// ValidateMDs validates a set of MDs and checks their names are unique.
func ValidateMDs(schema *relation.Schema, mds []MD) error {
	seen := make(map[string]bool, len(mds))
	for _, m := range mds {
		if m.Name == "" {
			return fmt.Errorf("constraints: MD with empty name")
		}
		if seen[m.Name] {
			return fmt.Errorf("constraints: duplicate MD name %q", m.Name)
		}
		seen[m.Name] = true
		if err := m.Validate(schema); err != nil {
			return err
		}
	}
	return nil
}
