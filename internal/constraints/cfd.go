package constraints

import (
	"fmt"
	"strings"

	"dlearn/internal/relation"
)

// Wildcard is the unnamed variable '-' of a CFD pattern tuple: it matches
// any value.
const Wildcard = "-"

// CFD is a conditional functional dependency (X → A, tp) over a single
// relation, with a single attribute on the right-hand side (Section 2.3
// shows any CFD set is equivalent to one in this form). Pattern maps each
// attribute of X ∪ {A} to a constant or to Wildcard.
type CFD struct {
	// Name identifies the CFD in clauses, logs and benchmarks.
	Name string
	// Relation is the relation the CFD constrains.
	Relation string
	// LHS is the attribute list X.
	LHS []string
	// RHS is the single attribute A.
	RHS string
	// Pattern is the pattern tuple tp over X ∪ {A}; missing entries default
	// to Wildcard.
	Pattern map[string]string
}

// NewCFD builds a CFD. A nil pattern means all-wildcard (a plain FD).
func NewCFD(name, rel string, lhs []string, rhs string, pattern map[string]string) CFD {
	if pattern == nil {
		pattern = map[string]string{}
	}
	return CFD{Name: name, Relation: rel, LHS: lhs, RHS: rhs, Pattern: pattern}
}

// FD builds an unconditional functional dependency X → A (all-wildcard
// pattern).
func FD(name, rel string, lhs []string, rhs string) CFD {
	return NewCFD(name, rel, lhs, rhs, nil)
}

// PatternOf returns the pattern entry for an attribute (Wildcard when
// absent).
func (c CFD) PatternOf(attr string) string {
	if v, ok := c.Pattern[attr]; ok {
		return v
	}
	return Wildcard
}

// MatchesPattern reports whether value ≍ pattern entry for attr, i.e. the
// pattern is a wildcard or equals the value.
func (c CFD) MatchesPattern(attr, value string) bool {
	p := c.PatternOf(attr)
	return p == Wildcard || p == value
}

// Validate checks that the CFD refers to existing relations/attributes and
// that its pattern only mentions attributes in X ∪ {A}.
func (c CFD) Validate(schema *relation.Schema) error {
	r := schema.Relation(c.Relation)
	if r == nil {
		return fmt.Errorf("constraints: CFD %s: unknown relation %q", c.Name, c.Relation)
	}
	if len(c.LHS) == 0 {
		return fmt.Errorf("constraints: CFD %s: empty left-hand side", c.Name)
	}
	if c.RHS == "" {
		return fmt.Errorf("constraints: CFD %s: empty right-hand side", c.Name)
	}
	all := map[string]bool{c.RHS: true}
	for _, a := range c.LHS {
		if a == c.RHS {
			return fmt.Errorf("constraints: CFD %s: attribute %q appears on both sides", c.Name, a)
		}
		all[a] = true
	}
	for _, a := range append(append([]string{}, c.LHS...), c.RHS) {
		if r.AttrIndex(a) < 0 {
			return fmt.Errorf("constraints: CFD %s: relation %s has no attribute %q", c.Name, c.Relation, a)
		}
	}
	for a := range c.Pattern {
		if !all[a] {
			return fmt.Errorf("constraints: CFD %s: pattern mentions attribute %q outside X ∪ {A}", c.Name, a)
		}
	}
	return nil
}

// LHSIndexes resolves the left-hand-side attributes to positions.
func (c CFD) LHSIndexes(schema *relation.Schema) []int {
	r := schema.Relation(c.Relation)
	out := make([]int, len(c.LHS))
	for i, a := range c.LHS {
		out[i] = r.AttrIndex(a)
	}
	return out
}

// RHSIndex resolves the right-hand-side attribute to a position.
func (c CFD) RHSIndex(schema *relation.Schema) int {
	return schema.Relation(c.Relation).AttrIndex(c.RHS)
}

// String renders the CFD in the paper's (X → A, tp) notation.
func (c CFD) String() string {
	lhs := make([]string, len(c.LHS))
	for i, a := range c.LHS {
		lhs[i] = c.PatternOf(a)
	}
	return fmt.Sprintf("%s: (%s -> %s, (%s || %s)) on %s",
		c.Name, strings.Join(c.LHS, ","), c.RHS, strings.Join(lhs, ","), c.PatternOf(c.RHS), c.Relation)
}

// Violation is a pair of tuples of a relation that violate a CFD: they agree
// on X, match the pattern on X, and either disagree on A or fail to match
// the pattern on A.
type Violation struct {
	CFD  CFD
	Rel  string
	PosA int
	PosB int
}

// TupleViolates reports whether the ordered tuple pair (t1, t2) violates the
// CFD: t1[X] = t2[X] ≍ tp[X] but not (t1[A] = t2[A] ≍ tp[A]).
func (c CFD) TupleViolates(schema *relation.Schema, t1, t2 relation.Tuple) bool {
	if t1.Relation != c.Relation || t2.Relation != c.Relation {
		return false
	}
	lhs := c.LHSIndexes(schema)
	for i, idx := range lhs {
		if idx < 0 {
			return false
		}
		if t1.Values[idx] != t2.Values[idx] {
			return false
		}
		if !c.MatchesPattern(c.LHS[i], t1.Values[idx]) {
			return false
		}
	}
	rhs := c.RHSIndex(schema)
	if rhs < 0 {
		return false
	}
	if t1.Values[rhs] != t2.Values[rhs] {
		return true
	}
	return !c.MatchesPattern(c.RHS, t1.Values[rhs])
}

// FindViolations scans an instance and returns every violating tuple pair
// (i < j) of the CFD's relation. Pairs are grouped by the left-hand-side key
// so the scan is linear in the relation size plus the number of violations.
func (c CFD) FindViolations(in *relation.Instance) []Violation {
	schema := in.Schema()
	r := schema.Relation(c.Relation)
	if r == nil {
		return nil
	}
	lhs := c.LHSIndexes(schema)
	rhs := c.RHSIndex(schema)
	if rhs < 0 {
		return nil
	}
	for _, i := range lhs {
		if i < 0 {
			return nil
		}
	}
	tuples := in.Tuples(c.Relation)
	groups := make(map[string][]int)
	for pos, t := range tuples {
		matches := true
		keyParts := make([]string, len(lhs))
		for i, idx := range lhs {
			v := t.Values[idx]
			keyParts[i] = v
			if !c.MatchesPattern(c.LHS[i], v) {
				matches = false
				break
			}
		}
		if !matches {
			continue
		}
		key := strings.Join(keyParts, "\x1f")
		groups[key] = append(groups[key], pos)
	}
	var out []Violation
	for _, positions := range groups {
		if len(positions) < 2 {
			// A single tuple can still violate a constant pattern on A.
			p := positions[0]
			if !c.MatchesPattern(c.RHS, tuples[p].Values[rhs]) {
				out = append(out, Violation{CFD: c, Rel: c.Relation, PosA: p, PosB: p})
			}
			continue
		}
		for i := 0; i < len(positions); i++ {
			for j := i + 1; j < len(positions); j++ {
				a, b := positions[i], positions[j]
				if tuples[a].Values[rhs] != tuples[b].Values[rhs] ||
					!c.MatchesPattern(c.RHS, tuples[a].Values[rhs]) {
					out = append(out, Violation{CFD: c, Rel: c.Relation, PosA: a, PosB: b})
				}
			}
		}
	}
	return out
}

// Satisfied reports whether the instance satisfies the CFD.
func (c CFD) Satisfied(in *relation.Instance) bool { return len(c.FindViolations(in)) == 0 }

// ValidateCFDs validates a set of CFDs and checks their names are unique.
func ValidateCFDs(schema *relation.Schema, cfds []CFD) error {
	seen := make(map[string]bool, len(cfds))
	for _, c := range cfds {
		if c.Name == "" {
			return fmt.Errorf("constraints: CFD with empty name")
		}
		if seen[c.Name] {
			return fmt.Errorf("constraints: duplicate CFD name %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.Validate(schema); err != nil {
			return err
		}
	}
	return nil
}

// ConsistentCFDs reports whether a set of CFDs is consistent, i.e. admits a
// non-empty instance (Section 2.3). The implementation uses the classic
// pairwise chase on single-tuple witnesses: it is exact for the
// constant-pattern conflicts described in the paper (e.g. (A→B, a1||b1) and
// (B→A, b1||a2) with a1 ≠ a2) and conservative otherwise.
func ConsistentCFDs(schema *relation.Schema, cfds []CFD) bool {
	byRel := make(map[string][]CFD)
	for _, c := range cfds {
		byRel[c.Relation] = append(byRel[c.Relation], c)
	}
	for rel, group := range byRel {
		r := schema.Relation(rel)
		if r == nil {
			continue
		}
		if !consistentGroup(r, group) {
			return false
		}
	}
	return true
}

// consistentGroup chases a single symbolic tuple: attributes forced to
// constants by CFD right-hand sides whose left-hand sides are implied by the
// accumulated constants. An inconsistency arises when two different
// constants are forced onto the same attribute, or a forced constant
// contradicts a pattern the chase already relied upon.
func consistentGroup(rel *relation.Relation, group []CFD) bool {
	forced := make(map[string]string)
	// Seed with CFDs whose LHS patterns are all constants: any tuple whose X
	// equals those constants must have A equal to the RHS pattern constant
	// (if the RHS pattern is a constant). Build a witness tuple that matches
	// all constant LHS patterns simultaneously when they do not conflict.
	for iter := 0; iter < len(group)+1; iter++ {
		changed := false
		for _, c := range group {
			applies := true
			for _, a := range c.LHS {
				p := c.PatternOf(a)
				if p == Wildcard {
					continue
				}
				if v, ok := forced[a]; ok && v != p {
					applies = false
					break
				}
			}
			if !applies {
				continue
			}
			// Tentatively assume the witness tuple matches the constant LHS
			// pattern entries.
			lhsAllConstOrForced := true
			for _, a := range c.LHS {
				if c.PatternOf(a) == Wildcard {
					if _, ok := forced[a]; !ok {
						lhsAllConstOrForced = false
						break
					}
				}
			}
			if !lhsAllConstOrForced {
				continue
			}
			for _, a := range c.LHS {
				if p := c.PatternOf(a); p != Wildcard {
					if _, ok := forced[a]; !ok {
						forced[a] = p
						changed = true
					}
				}
			}
			rp := c.PatternOf(c.RHS)
			if rp == Wildcard {
				continue
			}
			if v, ok := forced[c.RHS]; ok {
				if v != rp {
					return false
				}
			} else {
				forced[c.RHS] = rp
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return true
}
