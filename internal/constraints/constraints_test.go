package constraints

import (
	"strings"
	"testing"

	"dlearn/internal/relation"
)

func testSchema() *relation.Schema {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("movies",
		relation.Attr("id", "imdb_id"), relation.Attr("title", "title"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("highBudgetMovies",
		relation.Attr("title", "title")))
	s.MustAdd(relation.NewRelation("mov2locale",
		relation.Attr("title", "title"), relation.Attr("language", "language"), relation.Attr("country", "country")))
	return s
}

func TestMDValidate(t *testing.T) {
	s := testSchema()
	md := SimpleMD("md1", "movies", "title", "highBudgetMovies", "title")
	if err := md.Validate(s); err != nil {
		t.Fatalf("valid MD rejected: %v", err)
	}
	// Attributes of different domains may appear in an MD (the MD itself
	// declares them comparable), so that case is valid.
	if err := SimpleMD("m", "movies", "id", "highBudgetMovies", "title").Validate(s); err != nil {
		t.Errorf("cross-domain MD should validate: %v", err)
	}
	bad := []MD{
		SimpleMD("m", "nope", "title", "highBudgetMovies", "title"),
		SimpleMD("m", "movies", "title", "nope", "title"),
		SimpleMD("m", "movies", "nope", "highBudgetMovies", "title"),
		SimpleMD("m", "movies", "title", "highBudgetMovies", "nope"),
		SimpleMD("m", "movies", "title", "movies", "title"),             // same relation
		NewMD("m", "movies", "highBudgetMovies", nil, "title", "title"), // empty LHS
	}
	for i, m := range bad {
		if err := m.Validate(s); err == nil {
			t.Errorf("bad MD %d accepted: %s", i, m)
		}
	}
}

func TestMDIndexResolution(t *testing.T) {
	s := testSchema()
	md := SimpleMD("md1", "movies", "title", "highBudgetMovies", "title")
	if got := md.LeftAttrIndexes(s); len(got) != 1 || got[0] != 1 {
		t.Errorf("LeftAttrIndexes = %v", got)
	}
	if got := md.RightAttrIndexes(s); len(got) != 1 || got[0] != 0 {
		t.Errorf("RightAttrIndexes = %v", got)
	}
	l, r := md.MatchIndexes(s)
	if l != 1 || r != 0 {
		t.Errorf("MatchIndexes = %d, %d", l, r)
	}
	if !md.Involves("movies") || !md.Involves("highBudgetMovies") || md.Involves("mov2locale") {
		t.Error("Involves misbehaves")
	}
}

func TestMDReverse(t *testing.T) {
	md := SimpleMD("md1", "movies", "title", "highBudgetMovies", "title")
	rev := md.Reverse()
	if rev.LeftRel != "highBudgetMovies" || rev.RightRel != "movies" {
		t.Errorf("Reverse got %+v", rev)
	}
	if rev.Reverse().LeftRel != md.LeftRel {
		t.Error("double reverse should restore the original orientation")
	}
}

func TestMDStringAndValidateSet(t *testing.T) {
	s := testSchema()
	md := SimpleMD("md1", "movies", "title", "highBudgetMovies", "title")
	if got := md.String(); !strings.Contains(got, "movies[title] ~ highBudgetMovies[title]") {
		t.Errorf("String = %q", got)
	}
	if err := ValidateMDs(s, []MD{md}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMDs(s, []MD{md, md}); err == nil {
		t.Error("duplicate MD names must be rejected")
	}
	anon := md
	anon.Name = ""
	if err := ValidateMDs(s, []MD{anon}); err == nil {
		t.Error("empty MD name must be rejected")
	}
}

func TestCFDValidate(t *testing.T) {
	s := testSchema()
	cfd := NewCFD("cfd1", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	if err := cfd.Validate(s); err != nil {
		t.Fatalf("valid CFD rejected: %v", err)
	}
	bad := []CFD{
		NewCFD("c", "nope", []string{"title"}, "country", nil),
		NewCFD("c", "mov2locale", nil, "country", nil),
		NewCFD("c", "mov2locale", []string{"title"}, "", nil),
		NewCFD("c", "mov2locale", []string{"title"}, "nope", nil),
		NewCFD("c", "mov2locale", []string{"nope"}, "country", nil),
		NewCFD("c", "mov2locale", []string{"country"}, "country", nil),
		NewCFD("c", "mov2locale", []string{"title"}, "country", map[string]string{"language": "English"}),
	}
	for i, c := range bad {
		if err := c.Validate(s); err == nil {
			t.Errorf("bad CFD %d accepted: %s", i, c)
		}
	}
}

func TestCFDPatternMatching(t *testing.T) {
	cfd := NewCFD("cfd1", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	if !cfd.MatchesPattern("title", "Bait") {
		t.Error("wildcard pattern should match anything")
	}
	if !cfd.MatchesPattern("language", "English") || cfd.MatchesPattern("language", "Spanish") {
		t.Error("constant pattern should match only its constant")
	}
	if cfd.PatternOf("country") != Wildcard {
		t.Error("missing pattern entries default to wildcard")
	}
}

func TestCFDTupleViolates(t *testing.T) {
	s := testSchema()
	cfd := NewCFD("cfd1", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	r1 := relation.NewTuple("mov2locale", "Bait", "English", "USA")
	r2 := relation.NewTuple("mov2locale", "Bait", "English", "Ireland")
	r3 := relation.NewTuple("mov2locale", "Bait", "Spanish", "Spain")
	r4 := relation.NewTuple("mov2locale", "Bait", "English", "USA")
	if !cfd.TupleViolates(s, r1, r2) {
		t.Error("r1, r2 should violate the paper's CFD φ1")
	}
	if cfd.TupleViolates(s, r1, r3) {
		t.Error("different language should not violate (pattern mismatch)")
	}
	if cfd.TupleViolates(s, r1, r4) {
		t.Error("identical country should not violate")
	}
	other := relation.NewTuple("movies", "m1", "Bait", "2007")
	if cfd.TupleViolates(s, r1, other) {
		t.Error("tuples of other relations never violate")
	}
}

func TestCFDFindViolations(t *testing.T) {
	s := testSchema()
	in := relation.NewInstance(s)
	in.MustInsert("mov2locale", "Bait", "English", "USA")
	in.MustInsert("mov2locale", "Bait", "English", "Ireland")
	in.MustInsert("mov2locale", "Bait", "Spanish", "Spain")
	in.MustInsert("mov2locale", "Rec", "Spanish", "Spain")
	cfd := NewCFD("cfd1", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	viols := cfd.FindViolations(in)
	if len(viols) != 1 {
		t.Fatalf("expected exactly one violating pair, got %d", len(viols))
	}
	if viols[0].PosA == viols[0].PosB {
		t.Error("violation should involve two distinct tuples")
	}
	if cfd.Satisfied(in) {
		t.Error("instance with violations reported as satisfied")
	}
	in2 := relation.NewInstance(s)
	in2.MustInsert("mov2locale", "Bait", "English", "USA")
	in2.MustInsert("mov2locale", "Rec", "Spanish", "Spain")
	if !cfd.Satisfied(in2) {
		t.Error("clean instance reported as violating")
	}
}

func TestCFDFindViolationsConstantRHSPattern(t *testing.T) {
	s := testSchema()
	in := relation.NewInstance(s)
	in.MustInsert("mov2locale", "Bait", "English", "Ireland")
	cfd := NewCFD("cfdUSA", "mov2locale", []string{"language"}, "country",
		map[string]string{"language": "English", "country": "USA"})
	viols := cfd.FindViolations(in)
	if len(viols) != 1 {
		t.Fatalf("single tuple breaking a constant RHS pattern should violate, got %d", len(viols))
	}
	if viols[0].PosA != viols[0].PosB {
		t.Error("single-tuple violation should reference the same position twice")
	}
}

func TestFDHelper(t *testing.T) {
	s := testSchema()
	fd := FD("fd1", "movies", []string{"id"}, "title")
	if err := fd.Validate(s); err != nil {
		t.Fatal(err)
	}
	in := relation.NewInstance(s)
	in.MustInsert("movies", "m1", "Superbad", "2007")
	in.MustInsert("movies", "m1", "Superbad!", "2007")
	if fd.Satisfied(in) {
		t.Error("duplicate id with different titles should violate the FD")
	}
}

func TestValidateCFDSet(t *testing.T) {
	s := testSchema()
	a := FD("a", "movies", []string{"id"}, "title")
	b := FD("b", "movies", []string{"id"}, "year")
	if err := ValidateCFDs(s, []CFD{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateCFDs(s, []CFD{a, a}); err == nil {
		t.Error("duplicate CFD names must be rejected")
	}
	c := a
	c.Name = ""
	if err := ValidateCFDs(s, []CFD{c}); err == nil {
		t.Error("empty CFD name must be rejected")
	}
}

func TestConsistentCFDs(t *testing.T) {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("r", relation.Attr("A", "a"), relation.Attr("B", "b")))
	// The paper's example of an inconsistent pair:
	// (A → B, a1 || b1) and (B → A, b1 || a2).
	c1 := NewCFD("c1", "r", []string{"A"}, "B", map[string]string{"A": "a1", "B": "b1"})
	c2 := NewCFD("c2", "r", []string{"B"}, "A", map[string]string{"B": "b1", "A": "a2"})
	if ConsistentCFDs(s, []CFD{c1, c2}) {
		t.Error("the paper's inconsistent CFD pair should be detected")
	}
	// Compatible constants are fine.
	c3 := NewCFD("c3", "r", []string{"B"}, "A", map[string]string{"B": "b1", "A": "a1"})
	if !ConsistentCFDs(s, []CFD{c1, c3}) {
		t.Error("compatible CFDs reported inconsistent")
	}
	// Plain FDs are always consistent.
	if !ConsistentCFDs(s, []CFD{FD("f1", "r", []string{"A"}, "B"), FD("f2", "r", []string{"B"}, "A")}) {
		t.Error("plain FDs reported inconsistent")
	}
	// CFDs over unknown relations are ignored by the check.
	if !ConsistentCFDs(s, []CFD{NewCFD("x", "unknown", []string{"A"}, "B", nil)}) {
		t.Error("unknown relation should not make the set inconsistent")
	}
}

func TestCFDString(t *testing.T) {
	cfd := NewCFD("cfd1", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	s := cfd.String()
	if !strings.Contains(s, "title,language -> country") || !strings.Contains(s, "English") {
		t.Errorf("String = %q", s)
	}
}
