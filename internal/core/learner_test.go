package core

import (
	"testing"

	"dlearn/internal/bottomclause"
	"dlearn/internal/constraints"
	"dlearn/internal/coverage"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
)

// smallMovieProblem is a compact, fully controlled learning task: high
// grossing movies are exactly the comedies; titles in the target examples
// are reformatted relative to the database so the MD is required.
func smallMovieProblem() Problem {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("movies",
		relation.Attr("id", "imdb_id"), relation.Attr("title", "imdb_title"), relation.ConstAttr("year", "year")))
	s.MustAdd(relation.NewRelation("mov2genres",
		relation.Attr("id", "imdb_id"), relation.ConstAttr("genre", "genre")))
	s.MustAdd(relation.NewRelation("mov2countries",
		relation.Attr("id", "imdb_id"), relation.ConstAttr("country", "country")))

	in := relation.NewInstance(s)
	titles := []struct {
		id, title, genre, country string
	}{
		{"m1", "Silent Harbor", "comedy", "USA"},
		{"m2", "Crimson Station", "comedy", "UK"},
		{"m3", "Golden Orchard", "comedy", "USA"},
		{"m4", "Broken Mirror", "drama", "USA"},
		{"m5", "Hidden Canyon", "drama", "Spain"},
		{"m6", "Distant Signal", "thriller", "UK"},
		{"m7", "Electric Parade", "comedy", "USA"},
		{"m8", "Midnight Archive", "drama", "France"},
	}
	for i, m := range titles {
		in.MustInsert("movies", m.id, m.title+" (2007)", "2007")
		in.MustInsert("mov2genres", m.id, m.genre)
		in.MustInsert("mov2countries", m.id, m.country)
		_ = i
	}

	target := relation.NewRelation("highGrossing", relation.Attr("title", "bom_title"))
	md := constraints.SimpleMD("md_title", "highGrossing", "title", "movies", "title")

	var pos, neg []relation.Tuple
	for _, m := range titles {
		e := relation.NewTuple("highGrossing", m.title) // heterogeneous: no " (2007)" suffix
		if m.genre == "comedy" {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	return Problem{
		Instance: in,
		Target:   target,
		MDs:      []constraints.MD{md},
		Pos:      pos,
		Neg:      neg,
	}
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Threads = 2
	cfg.BottomClause.Iterations = 2
	cfg.BottomClause.SampleSize = 8
	cfg.BottomClause.KM = 2
	cfg.GeneralizationSample = 4
	cfg.MaxClauses = 4
	return cfg
}

func TestProblemValidate(t *testing.T) {
	p := smallMovieProblem()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := p
	bad.Pos = nil
	if err := bad.Validate(); err == nil {
		t.Error("problem without positives must be rejected")
	}
	bad2 := p
	bad2.Pos = []relation.Tuple{relation.NewTuple("wrongTarget", "x")}
	if err := bad2.Validate(); err == nil {
		t.Error("examples of the wrong relation must be rejected")
	}
	bad3 := p
	bad3.Pos = []relation.Tuple{relation.NewTuple("highGrossing", "a", "b")}
	if err := bad3.Validate(); err == nil {
		t.Error("examples with wrong arity must be rejected")
	}
	bad4 := p
	bad4.CFDs = []constraints.CFD{constraints.FD("x", "unknown_rel", []string{"a"}, "b")}
	if err := bad4.Validate(); err == nil {
		t.Error("CFDs over unknown relations must be rejected")
	}
	bad5 := p
	bad5.Instance = nil
	if err := bad5.Validate(); err == nil {
		t.Error("nil instance must be rejected")
	}
}

func TestLearnComedyConcept(t *testing.T) {
	p := smallMovieProblem()
	learner := NewLearner(fastConfig())
	def, report, err := learner.Learn(p)
	if err != nil {
		t.Fatal(err)
	}
	if def.Len() == 0 {
		t.Fatal("no clauses learned")
	}
	if report.Duration <= 0 || report.ClausesConsidered == 0 || report.SeedsTried == 0 {
		t.Errorf("report not filled in: %+v", report)
	}
	// The learned definition must reference the comedy genre.
	foundComedy := false
	for _, c := range def.Clauses {
		for _, l := range c.Body {
			for _, a := range l.Args {
				if a == logic.Const("comedy") {
					foundComedy = true
				}
			}
		}
	}
	if !foundComedy {
		t.Errorf("learned definition does not mention the comedy genre:\n%s", def)
	}
	// Training-set predictions: every positive covered, no negative covered.
	model := NewModel(def, p, learner.Config())
	for _, e := range p.Pos {
		got, err := model.Predict(e)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("positive example %v not covered by the learned definition", e)
		}
	}
	wrong := 0
	for _, e := range p.Neg {
		got, err := model.Predict(e)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			wrong++
		}
	}
	if wrong > 1 {
		t.Errorf("learned definition covers %d of %d negative examples", wrong, len(p.Neg))
	}
}

func TestLearnWithoutMDsFailsToGeneralize(t *testing.T) {
	// The same problem without MD information cannot connect the examples
	// to the database, so the learned definition covers nothing beyond
	// over-general clauses, which the acceptance test rejects.
	p := smallMovieProblem()
	cfg := fastConfig()
	cfg.BottomClause.MDMode = bottomclause.MDIgnore
	def, _, err := NewLearner(cfg).Learn(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range def.Clauses {
		if c.Length() > 0 {
			t.Errorf("Castor-NoMD should not find any informative clause, got %v", c)
		}
	}
}

func TestLearnModelConvenience(t *testing.T) {
	p := smallMovieProblem()
	model, report, err := LearnModel(p, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model.Definition.Len() == 0 || report == nil {
		t.Fatal("LearnModel did not produce a model and report")
	}
	preds, err := model.PredictAll(p.Pos)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(p.Pos) {
		t.Fatalf("PredictAll returned %d predictions", len(preds))
	}
}

func TestLearnerConfigDefaults(t *testing.T) {
	l := NewLearner(Config{})
	cfg := l.Config()
	if cfg.GeneralizationSample <= 0 || cfg.MaxClauses <= 0 || cfg.Threads <= 0 ||
		cfg.MinPositiveCoverage <= 0 || cfg.MaxNegativeFraction <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestUncoveredBitmapSubtract(t *testing.T) {
	unc := coverage.FullBits(5)
	covered := coverage.NewBits(5)
	covered.Set(1)
	covered.Set(3)
	unc.AndNot(covered)
	if got := unc.Indices(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Errorf("uncovered after AndNot = %v, want [0 2 4]", got)
	}
	unc.Clear(0)
	if unc.Count() != 2 || unc.Next(0) != 2 {
		t.Errorf("after Clear(0): count=%d first=%d", unc.Count(), unc.Next(0))
	}
}
