// Package core implements DLearn's top-level learning algorithm: the
// covering loop of Algorithm 1 with the bottom-clause construction of
// Section 4.1, the generalization of Section 4.2 and the coverage semantics
// of Section 4.3. It also defines the learning problem and configuration
// shared by the baselines.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dlearn/internal/bottomclause"
	"dlearn/internal/constraints"
	"dlearn/internal/coverage"
	"dlearn/internal/generalize"
	"dlearn/internal/logic"
	"dlearn/internal/observe"
	"dlearn/internal/persist"
	"dlearn/internal/relation"
	"dlearn/internal/repair"
	"dlearn/internal/subsumption"
)

// Problem is one relational learning task: a database instance with its
// declarative constraints, a target relation, and labelled training
// examples (tuples of the target relation).
type Problem struct {
	Instance *relation.Instance
	Target   *relation.Relation
	MDs      []constraints.MD
	CFDs     []constraints.CFD
	Pos      []relation.Tuple
	Neg      []relation.Tuple
}

// Validate checks the problem is well formed.
func (p *Problem) Validate() error {
	if p.Instance == nil || p.Target == nil {
		return fmt.Errorf("core: problem needs an instance and a target relation")
	}
	if len(p.Pos) == 0 {
		return fmt.Errorf("core: problem has no positive examples")
	}
	schema := p.Instance.Schema()
	// MDs may reference the target relation; validate against a schema that
	// includes it.
	extended := relation.NewSchema()
	for _, r := range schema.Relations() {
		extended.MustAdd(r)
	}
	if !extended.Has(p.Target.Name) {
		extended.MustAdd(p.Target)
	}
	if err := constraints.ValidateMDs(extended, p.MDs); err != nil {
		return err
	}
	if err := constraints.ValidateCFDs(schema, p.CFDs); err != nil {
		return err
	}
	if !constraints.ConsistentCFDs(schema, p.CFDs) {
		return fmt.Errorf("core: the CFD set is inconsistent")
	}
	for _, e := range append(append([]relation.Tuple{}, p.Pos...), p.Neg...) {
		if e.Relation != p.Target.Name {
			return fmt.Errorf("core: example %s is not a tuple of the target relation %s", e, p.Target.Name)
		}
		if len(e.Values) != p.Target.Arity() {
			return fmt.Errorf("core: example %s has wrong arity for target %s", e, p.Target)
		}
	}
	return nil
}

// Config controls the learner.
type Config struct {
	// BottomClause configures bottom-clause construction (d, sample size,
	// k_m, MD mode, CFD usage).
	BottomClause bottomclause.Config
	// GeneralizationSample is |E+_s|: how many uncovered positive examples
	// are used to produce candidate generalizations in each step.
	GeneralizationSample int
	// NegativeSearchSample caps how many negative examples are used to score
	// candidate clauses during the hill-climbing search (the acceptance test
	// always uses all of them). Zero means all negatives.
	NegativeSearchSample int
	// MinPositiveCoverage is the minimum number of positive training
	// examples a clause must cover to be added to the definition.
	MinPositiveCoverage int
	// MaxNegativeFraction is the maximum fraction of covered examples that
	// may be negative for a clause to be accepted (noise tolerance).
	MaxNegativeFraction float64
	// MaxClauses bounds the number of clauses in the learned definition.
	MaxClauses int
	// Threads is the worker-pool size for coverage testing.
	Threads int
	// CandidateParallelism is the outer tier of the two-tier coverage
	// scheduler: how many independent candidate clauses of a refinement
	// sample are scored concurrently, each batch running on the inner
	// Threads pool. Zero means coverage.DefaultCandidateParallelism. The
	// learned definition is identical for every value (the scheduler's
	// shared floor only prunes candidates that provably lose).
	CandidateParallelism int
	// EvalCacheShards is the number of lock stripes in the coverage
	// evaluator's memo tables. Zero means coverage.DefaultCacheShards.
	EvalCacheShards int
	// Seed drives every random choice (seed selection, candidate sampling,
	// and — unless BottomClause.Seed is set explicitly — bottom-clause
	// tuple sampling). There is no fallback to wall-clock seeding: two runs
	// with the same Seed over the same problem produce identical
	// definitions.
	Seed int64
	// Subsumption bounds each θ-subsumption search.
	Subsumption subsumption.Options
	// Repair bounds repaired-clause expansion during coverage testing.
	Repair repair.Options
	// Observer receives progress events during learning; nil discards them.
	Observer observe.Observer
	// SnapshotStore, when non-nil, persists prepared training examples
	// across runs: preparation is served from the store when a snapshot
	// exists for this problem-and-configuration fingerprint and written
	// back after a fresh preparation otherwise. Nil disables persistence.
	SnapshotStore persist.Store
}

// DefaultConfig mirrors the paper's experimental setup (sample size 10,
// 16-thread coverage testing) with conservative defaults elsewhere.
func DefaultConfig() Config {
	return Config{
		BottomClause:         bottomclause.DefaultConfig(),
		GeneralizationSample: 10,
		NegativeSearchSample: 32,
		MinPositiveCoverage:  2,
		MaxNegativeFraction:  0.3,
		MaxClauses:           12,
		Threads:              16,
		CandidateParallelism: coverage.DefaultCandidateParallelism,
		Seed:                 1,
		Subsumption:          subsumption.Options{MaxNodes: 20000},
		Repair:               repair.Options{MaxClauses: 16, MaxStates: 512},
	}
}

// SnapshotFingerprint assembles the snapshot-store fingerprint of a problem
// under a configuration. It is the single source of truth for what keys a
// prepared-example snapshot: every tool that writes or reads snapshots for
// the same effective run (the learner, the bench harness) must build its
// key through this function, or identical inputs hash to different keys.
// It applies the same normalization NewLearner does (BottomClause.Seed
// inherits Seed when unset), so a caller passing a raw Config and the
// learner running its normalized copy agree.
func SnapshotFingerprint(p Problem, cfg Config) persist.FingerprintInputs {
	if cfg.BottomClause.Seed == 0 {
		cfg.BottomClause.Seed = cfg.Seed
	}
	return persist.FingerprintInputs{
		Instance:     p.Instance,
		Target:       p.Target,
		MDs:          p.MDs,
		CFDs:         p.CFDs,
		Pos:          p.Pos,
		Neg:          p.Neg,
		BottomClause: cfg.BottomClause,
		Subsumption:  cfg.Subsumption,
		Repair:       cfg.Repair,
		Noise:        cfg.MaxNegativeFraction,
	}
}

// ResultKey is the content address of a completed learning run: the
// snapshot fingerprint (problem plus preparation options) extended with the
// remaining configuration fields that influence which definition the
// covering search returns — the run seed, the generalization and
// negative-search samples, the minimum positive coverage and the clause cap.
// Two (problem, config) pairs share a result key exactly when Engine.Learn
// is guaranteed to return byte-identical definitions; parallelism settings
// (Threads, CandidateParallelism, EvalCacheShards) are deliberately excluded
// because the two-tier scheduler pins definitions identical across them, as
// are Observer and SnapshotStore, which never influence the result.
// dlearn-serve keys its result cache with this.
func ResultKey(p Problem, cfg Config) persist.Key {
	cfg = normalizeConfig(cfg)
	return persist.ResultFingerprintInputs{
		Snapshot:             SnapshotFingerprint(p, cfg).Key(),
		Seed:                 cfg.Seed,
		GeneralizationSample: cfg.GeneralizationSample,
		NegativeSearchSample: cfg.NegativeSearchSample,
		MinPositiveCoverage:  cfg.MinPositiveCoverage,
		MaxClauses:           cfg.MaxClauses,
	}.Key()
}

// Report summarizes a learning run.
type Report struct {
	// Duration is the wall-clock learning time.
	Duration time.Duration
	// BottomClauseTime is the time spent constructing ground bottom clauses
	// for the training examples and preparing them for coverage testing
	// (loading them from the snapshot store on a warm start).
	BottomClauseTime time.Duration
	// SnapshotHit reports whether the prepared examples were served from
	// the configured snapshot store; always false without a store.
	SnapshotHit bool
	// PrepareTime is the time spent preparing examples fresh (zero on a
	// snapshot hit).
	PrepareTime time.Duration
	// SnapshotLoadTime is the time spent loading and restoring the
	// prepared examples from the snapshot store (zero without a store).
	SnapshotLoadTime time.Duration
	// ClausesConsidered counts candidate clauses scored during the search.
	ClausesConsidered int
	// SeedsTried counts how many positive examples served as seeds.
	SeedsTried int
	// UncoveredPositives is the number of positive examples the final
	// definition does not cover.
	UncoveredPositives int
}

// Learner runs DLearn (or, with the appropriate configuration, one of the
// Castor-style baselines) on a Problem. A Learner holds no per-run state:
// the same Learner may run many problems, concurrently or in sequence, and
// every run is deterministic given the problem and the configured Seed.
type Learner struct {
	cfg Config
	obs observe.Observer
}

// normalizeConfig applies the zero-value defaulting NewLearner performs, so
// every consumer of a Config — the learner itself, SnapshotFingerprint,
// ResultKey — agrees on the effective values. A caller passing a raw Config
// and the learner running its normalized copy must hash identically.
func normalizeConfig(cfg Config) Config {
	if cfg.GeneralizationSample <= 0 {
		cfg.GeneralizationSample = DefaultConfig().GeneralizationSample
	}
	if cfg.MinPositiveCoverage <= 0 {
		cfg.MinPositiveCoverage = 1
	}
	if cfg.MaxClauses <= 0 {
		cfg.MaxClauses = DefaultConfig().MaxClauses
	}
	if cfg.Threads <= 0 {
		cfg.Threads = DefaultConfig().Threads
	}
	if cfg.CandidateParallelism <= 0 {
		cfg.CandidateParallelism = coverage.DefaultCandidateParallelism
	}
	if cfg.MaxNegativeFraction <= 0 {
		cfg.MaxNegativeFraction = DefaultConfig().MaxNegativeFraction
	}
	if cfg.BottomClause.Seed == 0 {
		// Keep the whole run on one seed unless the caller pinned the
		// bottom-clause sampling seed separately.
		cfg.BottomClause.Seed = cfg.Seed
	}
	return cfg
}

// NewLearner builds a learner with the given configuration.
func NewLearner(cfg Config) *Learner {
	cfg = normalizeConfig(cfg)
	obs := cfg.Observer
	if obs == nil {
		obs = observe.Discard
	}
	return &Learner{cfg: cfg, obs: obs}
}

// Config returns the learner configuration.
func (l *Learner) Config() Config { return l.cfg }

// Learn runs the covering algorithm without cancellation.
//
// Deprecated: use LearnContext, which honours deadlines and cancellation.
func (l *Learner) Learn(p Problem) (*logic.Definition, *Report, error) {
	return l.LearnContext(context.Background(), p)
}

// LearnContext runs the covering algorithm and returns the learned
// definition. The context is checked between covering iterations, between
// hill-climbing steps, inside the parallel coverage worker pool and inside
// each θ-subsumption search, so cancellation interrupts even a single
// long-running coverage test; a cancelled run returns ctx.Err().
func (l *Learner) LearnContext(ctx context.Context, p Problem) (*logic.Definition, *Report, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	report := &Report{}
	l.obs.Observe(observe.RunStarted{Target: p.Target.Name, Positives: len(p.Pos), Negatives: len(p.Neg)})

	builder := bottomclause.NewBuilder(p.Instance, p.Target, p.MDs, p.CFDs, l.cfg.BottomClause)
	eval := coverage.NewEvaluator(coverage.Options{
		Subsumption:          l.cfg.Subsumption,
		Repair:               l.cfg.Repair,
		Threads:              l.cfg.Threads,
		CandidateParallelism: l.cfg.CandidateParallelism,
		CacheShards:          l.cfg.EvalCacheShards,
	})
	rng := rand.New(rand.NewSource(l.cfg.Seed))

	// Precompute ground bottom clauses for every training example and
	// prepare them for repeated coverage tests (Section 4.3).
	bcStart := time.Now()
	posGround, err := l.groundAll(ctx, builder, p.Pos)
	if err != nil {
		return nil, nil, err
	}
	negGround, err := l.groundAll(ctx, builder, p.Neg)
	if err != nil {
		return nil, nil, err
	}
	var key persist.Key
	if l.cfg.SnapshotStore != nil {
		key = SnapshotFingerprint(p, l.cfg).Key()
	}
	posEx, negEx, snap, err := eval.LoadOrPrepareExamples(ctx, l.cfg.SnapshotStore, key, posGround, negGround)
	if err != nil {
		return nil, nil, err
	}
	report.SnapshotHit = snap.Hit
	report.PrepareTime = snap.PrepareTime
	report.SnapshotLoadTime = snap.LoadTime
	if l.cfg.SnapshotStore != nil {
		if snap.Hit {
			l.obs.Observe(observe.SnapshotHit{
				Key:      key.String(),
				Examples: len(posEx) + len(negEx),
				Bytes:    snap.Bytes,
				Duration: snap.LoadTime,
			})
		} else {
			l.obs.Observe(observe.SnapshotMiss{Key: key.String(), Reason: snap.Reason, Duration: snap.PrepareTime})
			if snap.WriteErr != nil {
				l.obs.Observe(observe.SnapshotWriteFailed{Key: key.String(), Error: snap.WriteErr.Error()})
			} else {
				l.obs.Observe(observe.SnapshotWritten{
					Key:      key.String(),
					Examples: len(posEx) + len(negEx),
					Bytes:    snap.Bytes,
					Duration: snap.WriteTime,
				})
			}
		}
	}
	report.BottomClauseTime = time.Since(bcStart)
	l.obs.Observe(observe.PhaseDone{Phase: observe.PhaseBottomClauses, Duration: report.BottomClauseTime})

	coveringStart := time.Now()
	def := &logic.Definition{Target: p.Target.Name}
	// uncovered is the coverage frontier as a bitmap: bit i set while
	// positive example i is not yet covered by an accepted clause. Accepted
	// clauses subtract their coverage bitmap (computed once, during the
	// acceptance test) instead of being rescored in later iterations.
	uncovered := coverage.FullBits(len(p.Pos))

	iteration := 0
	for uncovered.Any() && def.Len() < l.cfg.MaxClauses {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		// Pick the seed: the first uncovered positive example (deterministic
		// given the example order and the seed-driven shuffles below).
		seedIdx := uncovered.Next(0)
		iteration++
		report.SeedsTried++
		l.obs.Observe(observe.IterationStarted{Iteration: iteration, SeedIndex: seedIdx, Uncovered: uncovered.Count()})

		bottom, err := builder.BottomClause(p.Pos[seedIdx])
		if err != nil {
			return nil, nil, err
		}
		current := bottom
		// The bottom clause covers (at least) its seed and no negatives by
		// construction; scoring it in full would be wasted work.
		currentScore := coverage.Score{PositivesCovered: 1}
		report.ClausesConsidered++

		// During the search, score candidates against a bounded sample of
		// negative examples; the acceptance test below uses all of them.
		searchNeg := negEx
		if l.cfg.NegativeSearchSample > 0 && len(searchNeg) > l.cfg.NegativeSearchSample {
			searchNeg = searchNeg[:l.cfg.NegativeSearchSample]
		}

		// The progress measure of the hill-climb counts only still-uncovered
		// positives; the pool is stable within an iteration (the frontier
		// only changes on acceptance), so it is materialized once.
		pool := l.uncoveredPool(posEx, uncovered)

		// Hill-climb: in each step, generalize the current clause toward a
		// sample of uncovered positive examples, score the resulting
		// candidates concurrently through the two-tier scheduler, and keep
		// the best-scoring candidate, until the score stops improving
		// (Section 4.2).
		for {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			sample := l.sampleUncovered(rng, uncovered, seedIdx)
			if len(sample) == 0 {
				break
			}
			// Generalization is sequential — each candidate derives from the
			// same incumbent — and cheap next to scoring; the candidates it
			// produces are independent and scored concurrently below.
			var cands []logic.Clause
			for _, ei := range sample {
				if err := ctx.Err(); err != nil {
					return nil, nil, err
				}
				// Generalize against the prepared example so the blocking-
				// literal scan reuses its precompiled ground clause.
				ex := posEx[ei]
				genEx := generalize.New(func(cand, _ logic.Clause) bool {
					return eval.CoversPositiveExample(ctx, cand, ex)
				})
				cand, ok := genEx.Generalize(current, posGround[ei])
				if !ok {
					continue
				}
				cands = append(cands, cand)
			}
			report.ClausesConsidered += len(cands)
			// Score the independent candidates concurrently with the
			// incumbent's value as the shared floor: each batch stops as soon
			// as its candidate provably cannot beat the best lower-indexed
			// score seen so far, and a non-exact result means exactly that,
			// so BestCandidate discards it. The selection is identical to
			// scoring the candidates one by one.
			plansBefore := eval.PlanSnapshot()
			results := eval.ScoreCandidates(ctx, cands, pool, searchNeg, currentScore.Value(), 0)
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			plansAfter := eval.PlanSnapshot()
			bestIdx, bestScore, improved := coverage.BestCandidate(results, currentScore.Value())
			earlyExited := 0
			for _, r := range results {
				if !r.Exact {
					earlyExited++
				}
			}
			l.obs.Observe(observe.CandidateBatchScored{
				Iteration:     iteration,
				Candidates:    len(cands),
				Parallelism:   eval.CandidateWorkers(len(cands), 0),
				EarlyExited:   earlyExited,
				Improved:      improved,
				Probes:        plansAfter.Probes - plansBefore.Probes,
				SearchNodes:   plansAfter.Nodes - plansBefore.Nodes,
				PlannedProbes: plansAfter.Planned - plansBefore.Planned,
			})
			if !improved {
				break
			}
			current, currentScore = cands[bestIdx], bestScore
			l.obs.Observe(observe.CoverageProgress{
				Iteration:         iteration,
				ClausesConsidered: report.ClausesConsidered,
				BestPositives:     currentScore.PositivesCovered,
				BestNegatives:     currentScore.NegativesCovered,
			})
		}

		// Acceptance test over the full training set. The positive side is
		// computed as a coverage bitmap, so the accepted clause's coverage is
		// known the moment it is accepted — the clause is never rescored: the
		// bitmap's count is the acceptance statistic and its subtraction from
		// the frontier replaces the old per-acceptance rescoring pass.
		posBits := eval.CoverageBits(ctx, current, posEx)
		full := coverage.Score{
			PositivesCovered: posBits.Count(),
			NegativesCovered: eval.CountNegativeExamples(ctx, current, negEx),
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		accept := full.PositivesCovered >= l.cfg.MinPositiveCoverage &&
			float64(full.NegativesCovered) <= l.cfg.MaxNegativeFraction*float64(full.PositivesCovered+full.NegativesCovered)
		if accept {
			def.Add(current, logic.ClauseStats{
				PositivesCovered: full.PositivesCovered,
				NegativesCovered: full.NegativesCovered,
				Score:            full.PositivesCovered - full.NegativesCovered,
			})
			uncovered.AndNot(posBits)
			// The seed must leave the pool even if the accepted clause
			// somehow fails to cover it (conservative coverage testing),
			// otherwise the loop would not terminate.
			uncovered.Clear(seedIdx)
			l.obs.Observe(observe.ClauseAccepted{
				Iteration: iteration,
				Clause:    current.String(),
				Positives: full.PositivesCovered,
				Negatives: full.NegativesCovered,
				Uncovered: uncovered.Count(),
			})
		} else {
			uncovered.Clear(seedIdx)
			l.obs.Observe(observe.ClauseRejected{
				Iteration: iteration,
				Clause:    current.String(),
				Positives: full.PositivesCovered,
				Negatives: full.NegativesCovered,
			})
		}
	}

	report.UncoveredPositives = uncovered.Count()
	report.Duration = time.Since(start)
	l.obs.Observe(observe.PhaseDone{Phase: observe.PhaseCovering, Duration: time.Since(coveringStart)})
	l.obs.Observe(observe.RunFinished{
		Clauses:            def.Len(),
		ClausesConsidered:  report.ClausesConsidered,
		UncoveredPositives: report.UncoveredPositives,
		Duration:           report.Duration,
	})
	return def, report, nil
}

// groundAll builds ground bottom clauses for a slice of examples.
func (l *Learner) groundAll(ctx context.Context, builder *bottomclause.Builder, examples []relation.Tuple) ([]logic.Clause, error) {
	out := make([]logic.Clause, len(examples))
	for i, e := range examples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g, err := builder.GroundBottomClause(e)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}

// uncoveredPool materializes the prepared examples of the still-uncovered
// positives (the covering algorithm's progress measure) in index order.
func (l *Learner) uncoveredPool(posEx []*coverage.Example, uncovered *coverage.Bits) []*coverage.Example {
	pool := make([]*coverage.Example, 0, uncovered.Count())
	for i := uncovered.Next(0); i >= 0; i = uncovered.Next(i + 1) {
		pool = append(pool, posEx[i])
	}
	return pool
}

// sampleUncovered picks up to GeneralizationSample uncovered positive
// example indices, excluding the seed. The pool is assembled in ascending
// index order — the same order the pre-bitmap uncovered slice had — so the
// seed-driven shuffle consumes the RNG identically and learned definitions
// stay byte-identical across representations.
func (l *Learner) sampleUncovered(rng *rand.Rand, uncovered *coverage.Bits, seed int) []int {
	var pool []int
	for i := uncovered.Next(0); i >= 0; i = uncovered.Next(i + 1) {
		if i != seed {
			pool = append(pool, i)
		}
	}
	if len(pool) <= l.cfg.GeneralizationSample {
		return pool
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	out := append([]int(nil), pool[:l.cfg.GeneralizationSample]...)
	sort.Ints(out)
	return out
}
