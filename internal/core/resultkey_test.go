package core

import "testing"

// TestResultKeyNormalizesConfig pins the property the serving layer's result
// cache depends on: a raw config and the normalized copy the learner actually
// runs must hash to the same key, because the server fingerprints the config
// it assembled while the engine runs NewLearner's defaulted version.
func TestResultKeyNormalizesConfig(t *testing.T) {
	p := smallMovieProblem()
	raw := Config{Seed: 7, MaxClauses: 3} // everything else left to defaulting
	if got, want := ResultKey(p, raw), ResultKey(p, NewLearner(raw).Config()); got != want {
		t.Errorf("raw config key %s != learner-normalized config key %s", got, want)
	}
}

// TestResultKeyCoversDefinitionAffectingOptions verifies the key changes with
// every option that can change the learned definition, and only with those:
// parallelism knobs are excluded because the candidate scheduler pins
// definitions byte-identical across thread counts.
func TestResultKeyCoversDefinitionAffectingOptions(t *testing.T) {
	p := smallMovieProblem()
	base := fastConfig()
	baseKey := ResultKey(p, base)

	mutations := map[string]func(*Config){
		"seed":                   func(c *Config) { c.Seed += 100 },
		"generalization sample":  func(c *Config) { c.GeneralizationSample++ },
		"negative search sample": func(c *Config) { c.NegativeSearchSample = 99 },
		"min positive coverage":  func(c *Config) { c.MinPositiveCoverage++ },
		"max clauses":            func(c *Config) { c.MaxClauses++ },
		"top matches":            func(c *Config) { c.BottomClause.KM++ },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if ResultKey(p, cfg) == baseKey {
			t.Errorf("changing %s did not change the result key", name)
		}
	}

	threads := base
	threads.Threads = base.Threads + 6
	if ResultKey(p, threads) != baseKey {
		t.Error("changing Threads changed the result key; definitions are thread-count invariant")
	}

	// The literal planner permutes search order inside one probe, never the
	// learned definition, so — like Threads — the toggle must be excluded from
	// the key or planner-on and planner-off runs would miss each other's
	// cached results.
	planner := base
	planner.Subsumption.DisablePlanner = true
	if ResultKey(p, planner) != baseKey {
		t.Error("disabling the literal planner changed the result key; definitions are planner invariant")
	}
}

// TestResultKeyDiffersByProblem guards against a degenerate fingerprint that
// ignores its inputs.
func TestResultKeyDiffersByProblem(t *testing.T) {
	p := smallMovieProblem()
	q := smallMovieProblem()
	q.Pos = q.Pos[:len(q.Pos)-1]
	if ResultKey(p, fastConfig()) == ResultKey(q, fastConfig()) {
		t.Error("problems with different examples share a result key")
	}
}
