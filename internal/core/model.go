package core

import (
	"context"

	"dlearn/internal/bottomclause"
	"dlearn/internal/coverage"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
)

// Model packages a learned definition with everything needed to classify new
// examples: the bottom-clause builder over the (dirty) database and the
// coverage evaluator. A test example is predicted positive when some clause
// of the definition covers it under Definition 3.4.
type Model struct {
	Definition *logic.Definition
	builder    *bottomclause.Builder
	eval       *coverage.Evaluator
}

// NewModel builds a model for a learned definition over the given problem
// database using the learner's configuration.
func NewModel(def *logic.Definition, p Problem, cfg Config) *Model {
	return &Model{
		Definition: def,
		builder:    bottomclause.NewBuilder(p.Instance, p.Target, p.MDs, p.CFDs, cfg.BottomClause),
		eval: coverage.NewEvaluator(coverage.Options{
			Subsumption: cfg.Subsumption,
			Repair:      cfg.Repair,
			Threads:     cfg.Threads,
		}),
	}
}

// Predict reports whether the model classifies the example as positive.
func (m *Model) Predict(example relation.Tuple) (bool, error) {
	return m.PredictContext(context.Background(), example)
}

// PredictContext is Predict with cancellation: a cancelled prediction
// returns ctx.Err().
func (m *Model) PredictContext(ctx context.Context, example relation.Tuple) (bool, error) {
	g, err := m.builder.GroundBottomClause(example)
	if err != nil {
		return false, err
	}
	covered := m.eval.DefinitionCoversContext(ctx, m.Definition, g)
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return covered, nil
}

// PredictAll classifies a batch of examples.
func (m *Model) PredictAll(examples []relation.Tuple) ([]bool, error) {
	return m.PredictAllContext(context.Background(), examples)
}

// PredictAllContext classifies a batch of examples, stopping early when the
// context is cancelled.
func (m *Model) PredictAllContext(ctx context.Context, examples []relation.Tuple) ([]bool, error) {
	out := make([]bool, len(examples))
	for i, e := range examples {
		p, err := m.PredictContext(ctx, e)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// LearnModel is a convenience wrapper: learn a definition for the problem
// and wrap it in a Model for prediction.
//
// Deprecated: use LearnModelContext, which honours cancellation.
func LearnModel(p Problem, cfg Config) (*Model, *Report, error) {
	return LearnModelContext(context.Background(), p, cfg)
}

// LearnModelContext learns a definition under the context and wraps it in a
// Model for prediction.
func LearnModelContext(ctx context.Context, p Problem, cfg Config) (*Model, *Report, error) {
	learner := NewLearner(cfg)
	def, report, err := learner.LearnContext(ctx, p)
	if err != nil {
		return nil, nil, err
	}
	return NewModel(def, p, learner.Config()), report, nil
}
