package core

import (
	"dlearn/internal/bottomclause"
	"dlearn/internal/coverage"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
)

// Model packages a learned definition with everything needed to classify new
// examples: the bottom-clause builder over the (dirty) database and the
// coverage evaluator. A test example is predicted positive when some clause
// of the definition covers it under Definition 3.4.
type Model struct {
	Definition *logic.Definition
	builder    *bottomclause.Builder
	eval       *coverage.Evaluator
}

// NewModel builds a model for a learned definition over the given problem
// database using the learner's configuration.
func NewModel(def *logic.Definition, p Problem, cfg Config) *Model {
	return &Model{
		Definition: def,
		builder:    bottomclause.NewBuilder(p.Instance, p.Target, p.MDs, p.CFDs, cfg.BottomClause),
		eval: coverage.NewEvaluator(coverage.Options{
			Subsumption: cfg.Subsumption,
			Repair:      cfg.Repair,
			Threads:     cfg.Threads,
		}),
	}
}

// Predict reports whether the model classifies the example as positive.
func (m *Model) Predict(example relation.Tuple) (bool, error) {
	g, err := m.builder.GroundBottomClause(example)
	if err != nil {
		return false, err
	}
	return m.eval.DefinitionCovers(m.Definition, g), nil
}

// PredictAll classifies a batch of examples.
func (m *Model) PredictAll(examples []relation.Tuple) ([]bool, error) {
	out := make([]bool, len(examples))
	for i, e := range examples {
		p, err := m.Predict(e)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// LearnModel is a convenience wrapper: learn a definition for the problem
// and wrap it in a Model for prediction.
func LearnModel(p Problem, cfg Config) (*Model, *Report, error) {
	learner := NewLearner(cfg)
	def, report, err := learner.Learn(p)
	if err != nil {
		return nil, nil, err
	}
	return NewModel(def, p, learner.Config()), report, nil
}
