package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"dlearn"
	"dlearn/internal/observe"
	"dlearn/internal/server/wire"
)

// errCancelledByClient is the cancellation cause a DELETE /v1/jobs/{id}
// installs; it distinguishes a client cancel from a deadline or a server
// shutdown when the engine returns context.Canceled.
var errCancelledByClient = errors.New("cancelled by client")

// streamEvent is one server-sent event of a job's stream: the SSE event
// name plus its JSON data payload.
type streamEvent struct {
	name string
	data []byte
}

// Job is one submitted learning problem moving through the queue. All
// mutable state is guarded by mu; the event log is append-only, so readers
// hold the lock only long enough to slice it.
type Job struct {
	ID      string
	Tenant  string
	problem *dlearn.Problem
	opts    wire.Options
	timeout time.Duration
	// wireProblem is the job's wire encoding (problem plus options), kept for
	// journal rewrites at the terminal transition. Only set when the server
	// journals jobs; immutable after submission.
	wireProblem wire.Problem

	// ctx governs the job's whole life, created at submission from the
	// server's base context so a queued job can be cancelled before it ever
	// runs and a server shutdown reaches running jobs.
	ctx    context.Context
	cancel context.CancelCauseFunc

	mu        sync.Mutex
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *wire.Result
	events    []streamEvent
	// degraded marks a job whose persistence failed mid-flight: the job keeps
	// running in memory (best effort) but would not survive a restart the way
	// a fully journalled job does.
	degraded bool
	// changed is closed and replaced whenever events or state change;
	// stream readers wait on it instead of polling.
	changed chan struct{}
}

// newJobID returns a fresh 128-bit random hex job ID.
func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a panic beats
		// handing out colliding IDs.
		panic("server: generating job ID: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

func newJob(base context.Context, tenant string, p *dlearn.Problem, opts wire.Options, timeout time.Duration) *Job {
	ctx, cancel := context.WithCancelCause(base)
	return &Job{
		ID:        newJobID(),
		Tenant:    tenant,
		problem:   p,
		opts:      opts,
		timeout:   timeout,
		ctx:       ctx,
		cancel:    cancel,
		state:     wire.StateQueued,
		submitted: time.Now(),
		changed:   make(chan struct{}),
	}
}

// signal wakes every stream reader; callers must hold mu.
func (j *Job) signal() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendEvent adds one SSE event to the job's stream.
func (j *Job) appendEvent(name string, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, streamEvent{name: name, data: data})
	j.signal()
}

// start transitions queued → running. It reports false when the job was
// cancelled while queued, in which case the worker must skip it.
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != wire.StateQueued {
		return false
	}
	j.state = wire.StateRunning
	j.started = time.Now()
	j.signal()
	return true
}

// complete records a successful run: the terminal "result" event and the
// done state land atomically, so a stream reader that sees the terminal
// state has the full event log. It reports whether this call performed the
// transition: a job that is already terminal (cancelled during shutdown,
// failed by a panic recovery) is left untouched, so two racing terminators
// can never both append a terminal event or both bump an outcome counter.
func (j *Job) complete(res wire.Result) bool {
	data, err := json.Marshal(res)
	if err != nil {
		return j.fail(wire.StateFailed, "encoding result: "+err.Error())
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return false
	}
	j.state = wire.StateDone
	j.finished = time.Now()
	j.result = &res
	j.events = append(j.events, streamEvent{name: wire.EventResult, data: data})
	j.signal()
	return true
}

// fail records a failed or cancelled run with its terminal "error" event.
// Like complete, it reports whether this call performed the transition and
// no-ops on an already-terminal job.
func (j *Job) fail(state, msg string) bool {
	data, _ := json.Marshal(wire.JobError{State: state, Error: msg})
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failLocked(state, msg, data)
}

func (j *Job) failLocked(state, msg string, data []byte) bool {
	if terminal(j.state) {
		return false
	}
	j.state = state
	j.finished = time.Now()
	j.errMsg = msg
	j.events = append(j.events, streamEvent{name: wire.EventError, data: data})
	j.signal()
	return true
}

// degrade marks the job's persistence as best-effort after a failed write,
// appending a persistence_degraded event to the stream while the job is
// still live (a post-terminal degradation only flips the flag — the stream
// has already delivered its terminal event). It reports whether the job was
// newly degraded, so callers can count degraded jobs exactly once.
func (j *Job) degrade(component, detail string) bool {
	data, err := observe.MarshalEvent(observe.PersistenceDegraded{Component: component, Detail: detail})
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return false
	}
	j.degraded = true
	if err == nil && !terminal(j.state) {
		j.events = append(j.events, streamEvent{name: observe.TypePersistenceDegraded, data: data})
		j.signal()
	}
	return true
}

// cancelQueued atomically moves a still-queued job to cancelled, so the
// transition can never race a worker's start(): exactly one of the two wins.
// It reports whether this call performed the transition.
func (j *Job) cancelQueued(msg string) bool {
	data, _ := json.Marshal(wire.JobError{State: wire.StateCancelled, Error: msg})
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != wire.StateQueued {
		return false
	}
	j.failLocked(wire.StateCancelled, msg, data)
	return true
}

// terminal reports whether a state is final.
func terminal(state string) bool {
	switch state {
	case wire.StateDone, wire.StateFailed, wire.StateCancelled:
		return true
	}
	return false
}

// eventsFrom returns the stream events at index ≥ from, whether the stream
// has terminated, and a channel that is closed on the next change (for
// readers that caught up). The index is clamped to [0, len(events)]: a
// negative index (a hostile or garbage Last-Event-ID upstream) replays from
// the start instead of panicking on a negative slice bound, and an index
// past the end simply has nothing to replay yet.
func (j *Job) eventsFrom(from int) (evs []streamEvent, done bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(j.events) {
		evs = j.events[from:len(j.events):len(j.events)]
	}
	return evs, terminal(j.state), j.changed
}

// recoverJob rebuilds a job from its journal record. A terminal record is
// restored complete — state, timestamps, result or error, and the full event
// log, so status and event replay behave exactly as before the restart. A
// non-terminal record (queued at the crash, or running and never finished)
// comes back as a queued job ready to be re-enqueued; problem and opts must
// then be the decoded wire problem so the re-run learns the original
// submission.
func recoverJob(base context.Context, rec journalRecord, p *dlearn.Problem, timeout time.Duration) *Job {
	ctx, cancel := context.WithCancelCause(base)
	j := &Job{
		ID:          rec.ID,
		Tenant:      rec.Tenant,
		problem:     p,
		opts:        rec.Problem.Options,
		timeout:     timeout,
		wireProblem: rec.Problem,
		ctx:         ctx,
		cancel:      cancel,
		state:       wire.StateQueued,
		submitted:   rec.SubmittedAt,
		changed:     make(chan struct{}),
	}
	if terminal(rec.State) {
		j.state = rec.State
		j.started = rec.StartedAt
		j.finished = rec.FinishedAt
		j.errMsg = rec.Error
		j.result = rec.Result
		j.degraded = rec.Degraded
		for _, ev := range rec.Events {
			j.events = append(j.events, streamEvent{name: ev.Name, data: ev.Data})
		}
	}
	return j
}

// journalView snapshots the fields the job journal persists at a terminal
// transition, under the job lock.
func (j *Job) journalView() (state string, started, finished time.Time, errMsg string, result *wire.Result, events []journalEvent, degraded bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	events = make([]journalEvent, len(j.events))
	for i, ev := range j.events {
		events[i] = journalEvent{Name: ev.name, Data: ev.data}
	}
	return j.state, j.started, j.finished, j.errMsg, j.result, events, j.degraded
}

// Status snapshots the job for GET /v1/jobs/{id}.
func (j *Job) Status() wire.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return wire.JobStatus{
		ID:          j.ID,
		Tenant:      j.Tenant,
		State:       j.state,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Events:      len(j.events),
		Error:       j.errMsg,
		Result:      j.result,
		Degraded:    j.degraded,
	}
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
