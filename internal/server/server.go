// Package server implements dlearn-serve: a long-lived, multi-tenant HTTP
// service in front of the Engine. Clients POST a complete learning problem
// (relations, tuples, MDs/CFDs, examples, budgets) to /v1/jobs and get a job
// ID back; the job runs through a bounded queue with admission control and a
// per-job deadline, streams its Observer events as server-sent events from
// /v1/jobs/{id}/events (terminating with the learned definition), and can be
// cancelled mid-search with DELETE. All jobs share one content-addressed
// snapshot store, so identical preparations dedupe across tenants — the
// second tenant to submit a problem over the same database warm-starts off
// the first tenant's preparation.
//
// The server adds no learning semantics of its own: a job's definition is
// byte-identical to running Engine.Learn in process with the same options,
// which the end-to-end tests pin.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlearn"
	"dlearn/internal/observe"
	"dlearn/internal/server/wire"
)

// Admission errors; the HTTP layer maps them to 429/503 responses.
var (
	// ErrQueueFull means the bounded job queue is at capacity.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrTenantBusy means the submitting tenant is at its in-flight cap.
	ErrTenantBusy = errors.New("server: tenant at in-flight job cap")
	// ErrDraining means the server is shutting down and rejects new jobs.
	ErrDraining = errors.New("server: draining, not accepting new jobs")
)

// Config configures a Server. The zero value serves with sensible defaults
// and no snapshot persistence.
type Config struct {
	// MaxQueued bounds the number of accepted-but-not-yet-running jobs;
	// submissions beyond it are rejected with 429. Zero means 64.
	MaxQueued int
	// MaxConcurrent is the number of jobs learning at once (the worker
	// count). Zero means 2.
	MaxConcurrent int
	// MaxPerTenant caps one tenant's in-flight (queued plus running) jobs,
	// keyed by the X-Tenant header. Zero means 8; negative disables the cap.
	MaxPerTenant int
	// DefaultTimeout is the per-job deadline applied when a job requests
	// none. Zero means 5 minutes.
	DefaultTimeout time.Duration
	// MaxTimeout clamps the deadline a job may request. Zero means 30
	// minutes.
	MaxTimeout time.Duration
	// MaxRetainedJobs bounds the finished jobs kept for status and event
	// replay; the oldest finished jobs are evicted first. Zero means 256.
	MaxRetainedJobs int
	// EngineOptions is the server-side base configuration every job starts
	// from (threads, budgets, ...); per-job wire options are applied on top.
	EngineOptions []dlearn.Option
	// Store, when non-nil, is the snapshot store shared by every job.
	// Content-addressed keys make cross-tenant sharing safe: a key is a
	// fingerprint over the whole problem and preparation options, so one
	// tenant can never be served another tenant's preparation unless they
	// submitted bit-identical inputs — in which case the dedup is the point.
	Store dlearn.SnapshotStore
}

func (c Config) withDefaults() Config {
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxPerTenant == 0 {
		c.MaxPerTenant = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 256
	}
	return c
}

// Server is the dlearn-serve core: queue, workers, job registry and
// counters. Create one with New, serve its Handler, and stop it with
// Shutdown.
type Server struct {
	cfg Config

	// baseCtx parents every job context; baseCancel is the hard-stop used
	// when a graceful drain exceeds its deadline.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	finished []string // finished job IDs, oldest first, for retention eviction
	tenants  map[string]int

	running atomic.Int64

	// Admission and outcome counters (see wire.Stats).
	submitted         atomic.Int64
	completed         atomic.Int64
	failed            atomic.Int64
	cancelled         atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedTenantCap atomic.Int64
	rejectedDraining  atomic.Int64

	snapHits   atomic.Int64
	snapMisses atomic.Int64
	sched      *observe.SchedulerStats
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.MaxQueued),
		jobs:       make(map[string]*Job),
		tenants:    make(map[string]int),
		sched:      observe.NewSchedulerStats(),
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit admits a job: per-tenant cap first, then a non-blocking reservation
// of a queue slot. The returned job is already registered and will
// eventually run, fail or be cancelled.
func (s *Server) Submit(tenant string, p *dlearn.Problem, opts wire.Options) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	timeout := opts.Timeout()
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	j := newJob(s.baseCtx, tenant, p, opts, timeout)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	if s.cfg.MaxPerTenant > 0 && s.tenants[tenant] >= s.cfg.MaxPerTenant {
		s.rejectedTenantCap.Add(1)
		return nil, fmt.Errorf("%w (%d in flight)", ErrTenantBusy, s.tenants[tenant])
	}
	select {
	case s.queue <- j:
	default:
		s.rejectedQueueFull.Add(1)
		return nil, ErrQueueFull
	}
	s.tenants[tenant]++
	s.jobs[j.ID] = j
	s.submitted.Add(1)
	return j, nil
}

// Job returns a registered job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job by ID. A queued job is marked cancelled immediately;
// a running job's context is cancelled and the worker records the terminal
// state as soon as the engine unwinds (cancellation is plumbed into the
// covering loop and every θ-subsumption search, so that is prompt).
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	j.cancel(errCancelledByClient)
	// If the job is still queued, record the terminal state now so status
	// and streams resolve immediately; the worker that eventually drains it
	// will see the transition and skip it. If a worker won the race and
	// started the job, the cancelled context unwinds the engine instead.
	if j.cancelQueued(errCancelledByClient.Error()) {
		s.cancelled.Add(1)
	}
	return j, true
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
		s.release(j)
	}
}

// release returns the job's tenant slot and applies finished-job retention.
func (s *Server) release(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.tenants[j.Tenant]; n <= 1 {
		delete(s.tenants, j.Tenant)
	} else {
		s.tenants[j.Tenant] = n - 1
	}
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.MaxRetainedJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// runJob executes one job end to end.
func (s *Server) runJob(j *Job) {
	if !j.start() {
		// Cancelled while queued; the terminal event is already recorded.
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	ctx, cancelTimeout := context.WithTimeout(j.ctx, j.timeout)
	defer cancelTimeout()

	obs := observe.Func(func(e observe.Event) {
		s.countSnapshotEvents(e)
		if data, err := observe.MarshalEvent(e); err == nil {
			j.appendEvent(observe.TypeName(e), data)
		}
	})
	jobOpts, err := j.opts.EngineOptions()
	if err != nil {
		// Options were validated at admission; a failure here is a bug.
		j.fail(wire.StateFailed, err.Error())
		s.failed.Add(1)
		return
	}
	opts := append(append([]dlearn.Option{}, s.cfg.EngineOptions...), jobOpts...)
	if s.cfg.Store != nil {
		opts = append(opts, dlearn.WithSnapshotStore(s.cfg.Store))
	}
	opts = append(opts, dlearn.WithObserver(obs, s.sched))

	def, report, err := dlearn.New(opts...).Learn(ctx, j.problem)
	switch {
	case err == nil:
		j.complete(wire.EncodeResult(def, report))
		s.completed.Add(1)
	case context.Cause(j.ctx) == errCancelledByClient:
		j.fail(wire.StateCancelled, errCancelledByClient.Error())
		s.cancelled.Add(1)
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		j.fail(wire.StateFailed, fmt.Sprintf("deadline exceeded after %s", j.timeout))
		s.failed.Add(1)
	default:
		j.fail(wire.StateFailed, err.Error())
		s.failed.Add(1)
	}
}

func (s *Server) countSnapshotEvents(e observe.Event) {
	switch e.(type) {
	case observe.SnapshotHit:
		s.snapHits.Add(1)
	case observe.SnapshotMiss:
		s.snapMisses.Add(1)
	}
}

// Shutdown drains the server: new submissions are rejected immediately,
// queued and running jobs are allowed to finish. If ctx expires first,
// every remaining job is cancelled hard and Shutdown returns ctx.Err()
// after the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the server counters for /v1/stats.
func (s *Server) Stats() wire.Stats {
	s.mu.Lock()
	tenants := len(s.tenants)
	jobsHeld := len(s.jobs)
	s.mu.Unlock()

	st := wire.Stats{
		QueueDepth:  len(s.queue),
		QueueCap:    s.cfg.MaxQueued,
		Running:     int(s.running.Load()),
		MaxRunning:  s.cfg.MaxConcurrent,
		JobsHeld:    jobsHeld,
		TenantsBusy: tenants,

		Submitted:         s.submitted.Load(),
		Completed:         s.completed.Load(),
		Failed:            s.failed.Load(),
		Cancelled:         s.cancelled.Load(),
		RejectedQueueFull: s.rejectedQueueFull.Load(),
		RejectedTenantCap: s.rejectedTenantCap.Load(),
		RejectedDraining:  s.rejectedDraining.Load(),

		SnapshotHits:       s.snapHits.Load(),
		SnapshotMisses:     s.snapMisses.Load(),
		SnapshotStoreBytes: -1,
		SnapshotStoreFiles: -1,
	}
	if total := st.SnapshotHits + st.SnapshotMisses; total > 0 {
		st.SnapshotHitRate = float64(st.SnapshotHits) / float64(total)
	}
	if dir, ok := s.cfg.Store.(*dlearn.DirSnapshotStore); ok && dir != nil {
		if bytes, files, err := dir.Size(); err == nil {
			st.SnapshotStoreBytes, st.SnapshotStoreFiles = bytes, files
		}
	}
	sched := s.sched.Snapshot()
	st.SchedulerBatches = sched.Batches
	st.SchedulerCandidates = sched.Candidates
	st.SchedulerEarlyExits = sched.EarlyExited
	st.SchedulerEarlyExitRate = sched.EarlyExitRate
	return st
}
