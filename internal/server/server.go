// Package server implements dlearn-serve: a long-lived, multi-tenant HTTP
// service in front of the Engine. Clients POST a complete learning problem
// (relations, tuples, MDs/CFDs, examples, budgets) to /v1/jobs and get a job
// ID back; the job runs through a bounded queue with admission control and a
// per-job deadline, streams its Observer events as server-sent events from
// /v1/jobs/{id}/events (terminating with the learned definition), and can be
// cancelled mid-search with DELETE. All jobs share one content-addressed
// snapshot store, so identical preparations dedupe across tenants — the
// second tenant to submit a problem over the same database warm-starts off
// the first tenant's preparation.
//
// Two further layers extend the dedup from preparations to whole runs. A job
// journal (Config.JobDir) makes accepted jobs durable: every admitted job
// and its terminal outcome is persisted, and a restarted server re-enqueues
// interrupted jobs and restores finished ones — status, result, event replay
// and stats outcomes all survive. A result cache keys completed results by
// the result fingerprint (the snapshot fingerprint extended with every
// definition-affecting option), so a resubmitted bit-identical job completes
// instantly with the cached definition.
//
// The server adds no learning semantics of its own: a job's definition is
// byte-identical to running Engine.Learn in process with the same options —
// including one served from the result cache, whose key guarantees it was
// produced by exactly that run — which the end-to-end tests pin.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dlearn"
	"dlearn/internal/core"
	"dlearn/internal/fault"
	"dlearn/internal/observe"
	"dlearn/internal/persist"
	"dlearn/internal/server/wire"
)

// Admission errors; the HTTP layer maps them to 429/503 responses.
var (
	// ErrQueueFull means the bounded job queue is at capacity.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrTenantBusy means the submitting tenant is at its in-flight job cap.
	ErrTenantBusy = errors.New("server: tenant at in-flight job cap")
	// ErrDraining means the server is shutting down and rejects new jobs.
	ErrDraining = errors.New("server: draining, not accepting new jobs")
)

// errServerShutdown is the cancellation cause a hard shutdown (the drain
// deadline expiring) installs on the base context. It distinguishes a
// server-initiated cancellation from a client cancel or a per-job deadline,
// so jobs killed by the shutdown terminate as cancelled rather than failed.
var errServerShutdown = errors.New("cancelled by server shutdown")

// Config configures a Server. The zero value serves with sensible defaults
// and no snapshot persistence.
type Config struct {
	// MaxQueued bounds the number of accepted-but-not-yet-running jobs;
	// submissions beyond it are rejected with 429. Zero means 64. Jobs
	// recovered from the journal are always re-enqueued, even past the cap.
	MaxQueued int
	// MaxConcurrent is the number of jobs learning at once (the worker
	// count). Zero means 2.
	MaxConcurrent int
	// MaxPerTenant caps one tenant's in-flight (queued plus running) jobs,
	// keyed by the X-Tenant header. Zero means 8; negative disables the cap.
	MaxPerTenant int
	// DefaultTimeout is the per-job deadline applied when a job requests
	// none. Zero means 5 minutes.
	DefaultTimeout time.Duration
	// MaxTimeout clamps the deadline a job may request. Zero means 30
	// minutes.
	MaxTimeout time.Duration
	// MaxRetainedJobs bounds the finished jobs kept for status and event
	// replay; the oldest finished jobs are evicted first. Zero means 256.
	MaxRetainedJobs int
	// JobDir, when non-empty, makes jobs durable: every accepted job and its
	// terminal outcome is journalled there, and New recovers the journal —
	// interrupted jobs are re-enqueued and re-run, finished jobs are restored
	// into the registry (status, result, event replay, stats outcomes).
	// Empty disables durability.
	JobDir string
	// ResultCacheMaxBytes caps the in-memory result cache, which serves a
	// resubmitted bit-identical job its completed result instantly. Entries
	// are evicted least recently used past the cap. Zero means 64 MiB;
	// negative disables the cache.
	ResultCacheMaxBytes int64
	// EngineOptions is the server-side base configuration every job starts
	// from (threads, budgets, ...); per-job wire options are applied on top.
	EngineOptions []dlearn.Option
	// Store, when non-nil, is the snapshot store shared by every job.
	// Content-addressed keys make cross-tenant sharing safe: a key is a
	// fingerprint over the whole problem and preparation options, so one
	// tenant can never be served another tenant's preparation unless they
	// submitted bit-identical inputs — in which case the dedup is the point.
	Store dlearn.SnapshotStore
	// MaxEventLogBytes caps the serialized event log a terminal journal
	// rewrite persists; past it the oldest events are dropped and the
	// replayed stream starts with a log_truncated marker event. Zero means
	// 1 MiB; negative disables the cap. Live streams are never truncated —
	// only what a restarted server can replay.
	MaxEventLogBytes int
	// SSEBufferEvents bounds the per-subscriber event buffer between the
	// feeder following a job's log and the connection writing it out. A
	// subscriber whose buffer stays full past SSEWriteTimeout is dropped (it
	// reconnects with Last-Event-ID and replays what it missed) so one stalled
	// consumer can never pin the stream's memory. Zero means 64.
	SSEBufferEvents int
	// SSEWriteTimeout bounds both a single SSE write and the grace a
	// subscriber with a full buffer gets before being dropped. Zero means 10
	// seconds.
	SSEWriteTimeout time.Duration
	// Faults, when non-nil, injects scheduled faults at the server's I/O
	// seams (journal writes, the SSE writer, the job worker). Test hook; nil
	// in production costs one nil check per seam.
	Faults *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxPerTenant == 0 {
		c.MaxPerTenant = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 256
	}
	if c.MaxEventLogBytes == 0 {
		c.MaxEventLogBytes = 1 << 20
	}
	if c.SSEBufferEvents <= 0 {
		c.SSEBufferEvents = 64
	}
	if c.SSEWriteTimeout <= 0 {
		c.SSEWriteTimeout = 10 * time.Second
	}
	return c
}

// Server is the dlearn-serve core: queue, workers, job registry and
// counters. Create one with New, serve its Handler, and stop it with
// Shutdown.
type Server struct {
	cfg Config

	// baseCtx parents every job context; baseCancel is the hard-stop used
	// when a graceful drain exceeds its deadline, installing
	// errServerShutdown as the cancellation cause.
	baseCtx    context.Context
	baseCancel func()

	// journal persists accepted jobs and their outcomes (nil without JobDir);
	// results caches completed results by fingerprint (nil when disabled).
	journal *journal
	results *resultCache

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	finished []string // finished job IDs, oldest first, for retention eviction
	tenants  map[string]int

	running atomic.Int64

	// recovered counts jobs restored from the journal at boot;
	// journalCorrupt counts records set aside as .corrupt at the same boot.
	// Both are written once in New, before any reader exists.
	recovered      int
	journalCorrupt int

	// Admission and outcome counters (see wire.Stats).
	submitted         atomic.Int64
	completed         atomic.Int64
	failed            atomic.Int64
	cancelled         atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedTenantCap atomic.Int64
	rejectedDraining  atomic.Int64

	resultCacheHits atomic.Int64

	snapHits   atomic.Int64
	snapMisses atomic.Int64
	sched      *observe.SchedulerStats

	// Failure-hardening counters (see wire.Stats). The server keeps serving
	// through every one of these conditions; the counters make them visible.
	degradedJobs          atomic.Int64
	journalWriteFailures  atomic.Int64
	snapshotWriteFailures atomic.Int64
	sseSlowDrops          atomic.Int64
	workerPanics          atomic.Int64
}

// New builds a server, recovers the job journal when one is configured, and
// starts the worker pool. It fails only when the journal directory cannot be
// prepared or read — individual corrupt records are set aside, never fatal.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: func() { cancel(errServerShutdown) },
		jobs:       make(map[string]*Job),
		tenants:    make(map[string]int),
		sched:      observe.NewSchedulerStats(),
	}
	if cfg.ResultCacheMaxBytes >= 0 {
		s.results = newResultCache(cfg.ResultCacheMaxBytes)
	}

	var pending []*Job
	if cfg.JobDir != "" {
		jl, err := openJournal(cfg.JobDir)
		if err != nil {
			return nil, err
		}
		jl.faults = cfg.Faults
		s.journal = jl
		recs, corrupt, err := jl.load()
		if err != nil {
			return nil, err
		}
		s.journalCorrupt = corrupt
		pending = s.recover(recs)
	}

	// Recovered jobs are re-enqueued unconditionally: widen the queue beyond
	// MaxQueued if the backlog demands it (admission still enforces the
	// configured cap for new submissions).
	queueCap := cfg.MaxQueued
	if len(pending) > queueCap {
		queueCap = len(pending)
	}
	s.queue = make(chan *Job, queueCap)
	for _, j := range pending {
		s.queue <- j
	}

	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover replays journal records into a not-yet-serving server: terminal
// records return to the registry (completed results also warm the result
// cache), and non-terminal records — queued at the crash, or running and
// never finished — are rebuilt as queued jobs for New to re-enqueue.
// Outcome counters are restored so /v1/stats survives the restart.
func (s *Server) recover(recs []journalRecord) []*Job {
	var pending []*Job
	type finishedAt struct {
		id string
		at time.Time
	}
	var finished []finishedAt
	for _, rec := range recs {
		s.submitted.Add(1)
		s.recovered++
		if terminal(rec.State) {
			j := recoverJob(s.baseCtx, rec, nil, 0)
			s.jobs[j.ID] = j
			finished = append(finished, finishedAt{rec.ID, rec.FinishedAt})
			switch rec.State {
			case wire.StateDone:
				s.completed.Add(1)
				if key, ok := persist.ParseKey(rec.ResultKey); ok && s.results != nil && rec.Result != nil {
					s.results.put(key, *rec.Result)
				}
			case wire.StateFailed:
				s.failed.Add(1)
			case wire.StateCancelled:
				s.cancelled.Add(1)
			}
			continue
		}
		p, err := rec.Problem.Decode()
		if err != nil {
			// The record's problem no longer decodes (wire drift across
			// versions, or a hand-edited file): surface it as a failed job
			// rather than silently dropping it.
			j := recoverJob(s.baseCtx, rec, nil, 0)
			j.fail(wire.StateFailed, fmt.Sprintf("recovering job from journal: %v", err))
			s.jobs[j.ID] = j
			finished = append(finished, finishedAt{rec.ID, time.Now()})
			s.failed.Add(1)
			s.journalFinish(j, "")
			continue
		}
		j := recoverJob(s.baseCtx, rec, p, s.jobTimeout(rec.Problem.Options))
		s.jobs[j.ID] = j
		s.tenants[j.Tenant]++
		pending = append(pending, j)
	}

	// Rebuild the retention order by finish time (load sorts by submission,
	// which is the right order for the queue but not for eviction).
	sort.Slice(finished, func(i, k int) bool {
		if !finished[i].at.Equal(finished[k].at) {
			return finished[i].at.Before(finished[k].at)
		}
		return finished[i].id < finished[k].id
	})
	for _, f := range finished {
		s.finished = append(s.finished, f.id)
	}
	for len(s.finished) > s.cfg.MaxRetainedJobs {
		delete(s.jobs, s.finished[0])
		if s.journal != nil {
			s.journal.remove(s.finished[0])
		}
		s.finished = s.finished[1:]
	}
	return pending
}

// jobTimeout resolves a job's effective deadline from its requested timeout
// and the server's default and maximum.
func (s *Server) jobTimeout(opts wire.Options) time.Duration {
	timeout := opts.Timeout()
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// Submit admits a job: per-tenant cap first, then a non-blocking reservation
// of a queue slot. With a journal configured the job is persisted before the
// submission is acknowledged, so an accepted job survives a crash. The
// returned job is already registered and will eventually run, fail or be
// cancelled.
func (s *Server) Submit(tenant string, p *dlearn.Problem, opts wire.Options) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	j := newJob(s.baseCtx, tenant, p, opts, s.jobTimeout(opts))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	if s.cfg.MaxPerTenant > 0 && s.tenants[tenant] >= s.cfg.MaxPerTenant {
		s.rejectedTenantCap.Add(1)
		return nil, fmt.Errorf("%w (%d in flight)", ErrTenantBusy, s.tenants[tenant])
	}
	// The queue channel may be wider than MaxQueued after a recovery with a
	// large backlog; the explicit occupancy check keeps admission at the
	// configured cap regardless.
	if len(s.queue) >= s.cfg.MaxQueued {
		s.rejectedQueueFull.Add(1)
		return nil, ErrQueueFull
	}
	if s.journal != nil {
		wp := wire.EncodeProblem(p)
		wp.Options = opts
		j.wireProblem = wp
		if err := s.journal.save(journalRecord{
			ID:          j.ID,
			Tenant:      j.Tenant,
			State:       wire.StateQueued,
			SubmittedAt: j.submitted,
			Problem:     wp,
		}); err != nil {
			// Degraded-mode admission: a failing journal must not turn away
			// work the server can still do. The job is accepted and runs in
			// memory as best effort — it just would not survive a restart —
			// flagged on its status, counted in /v1/stats and announced on
			// its event stream so the degradation is observable everywhere.
			s.journalWriteFailures.Add(1)
			if j.degrade("journal", err.Error()) {
				s.degradedJobs.Add(1)
			}
		}
	}
	select {
	case s.queue <- j:
	default:
		if s.journal != nil {
			s.journal.remove(j.ID)
		}
		s.rejectedQueueFull.Add(1)
		return nil, ErrQueueFull
	}
	s.tenants[tenant]++
	s.jobs[j.ID] = j
	s.submitted.Add(1)
	return j, nil
}

// Job returns a registered job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job by ID. A queued job is marked cancelled immediately;
// a running job's context is cancelled and the worker records the terminal
// state as soon as the engine unwinds (cancellation is plumbed into the
// covering loop and every θ-subsumption search, so that is prompt).
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	j.cancel(errCancelledByClient)
	// If the job is still queued, record the terminal state now so status
	// and streams resolve immediately; the worker that eventually drains it
	// will see the transition and skip it. If a worker won the race and
	// started the job, the cancelled context unwinds the engine instead.
	if j.cancelQueued(errCancelledByClient.Error()) {
		s.cancelled.Add(1)
		s.journalFinish(j, "")
	}
	return j, true
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
		s.release(j)
	}
}

// release returns the job's tenant slot and applies finished-job retention.
func (s *Server) release(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.tenants[j.Tenant]; n <= 1 {
		delete(s.tenants, j.Tenant)
	} else {
		s.tenants[j.Tenant] = n - 1
	}
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.MaxRetainedJobs {
		delete(s.jobs, s.finished[0])
		if s.journal != nil {
			// An evicted job is gone from the registry; keeping its record
			// would resurrect it at the next boot.
			s.journal.remove(s.finished[0])
		}
		s.finished = s.finished[1:]
	}
}

// journalFinish rewrites a finished job's journal record with its terminal
// state, result or error, and its event log (size-capped, oldest events
// dropped behind a log_truncated marker). Best effort: the in-memory state
// is already terminal, and a failed rewrite only means the job re-runs after
// a restart — safe, because re-running a deterministic job reproduces the
// same result — but the failure is counted and the job flagged degraded so
// the weakened durability is visible.
func (s *Server) journalFinish(j *Job, resultKey string) {
	if s.journal == nil {
		return
	}
	state, started, finished, errMsg, result, events, degraded := j.journalView()
	err := s.journal.save(journalRecord{
		ID:          j.ID,
		Tenant:      j.Tenant,
		State:       state,
		SubmittedAt: j.submitted,
		StartedAt:   started,
		FinishedAt:  finished,
		Problem:     j.wireProblem,
		Error:       errMsg,
		Result:      result,
		ResultKey:   resultKey,
		Events:      truncateEvents(events, s.cfg.MaxEventLogBytes),
		Degraded:    degraded,
	})
	if err != nil {
		s.journalWriteFailures.Add(1)
		if j.degrade("journal", err.Error()) {
			s.degradedJobs.Add(1)
		}
	}
}

// runJob executes one job end to end. A panic anywhere in the job — the
// learner, an observer, injected by the chaos suite — is confined to the
// job: it terminates as failed with the recovered value and stack in its
// error (and journal record), and the worker goroutine survives to serve the
// next job. Without the recover a single panicking job would crash the whole
// process and every other tenant's jobs with it.
func (s *Server) runJob(j *Job) {
	if !j.start() {
		// Cancelled while queued; the terminal event is already recorded.
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			s.workerPanics.Add(1)
			if j.fail(wire.StateFailed, fmt.Sprintf("job panicked: %v\n%s", r, debug.Stack())) {
				s.failed.Add(1)
				s.journalFinish(j, "")
			}
		}
	}()
	s.cfg.Faults.Panic("worker.run")

	jobOpts, err := j.opts.EngineOptions()
	if err != nil {
		// Options were validated at admission; a failure here is a bug.
		if j.fail(wire.StateFailed, err.Error()) {
			s.failed.Add(1)
			s.journalFinish(j, "")
		}
		return
	}
	opts := append(append([]dlearn.Option{}, s.cfg.EngineOptions...), jobOpts...)
	if s.cfg.Store != nil {
		opts = append(opts, dlearn.WithSnapshotStore(s.cfg.Store))
	}

	// Consult the result cache before the engine ever runs. The key is the
	// result fingerprint of the problem under the job's effective engine
	// configuration (server base options plus the job's own), so a hit is by
	// construction the result of exactly the run this job would perform.
	var key persist.Key
	if s.results != nil {
		key = core.ResultKey(*j.problem, dlearn.New(opts...).Config())
		if !j.opts.NoCache {
			if res, size, ok := s.results.get(key); ok {
				s.resultCacheHits.Add(1)
				if data, err := observe.MarshalEvent(observe.ResultCacheHit{Key: key.String(), Bytes: size}); err == nil {
					j.appendEvent(observe.TypeResultCacheHit, data)
				}
				if j.complete(res) {
					s.completed.Add(1)
					s.journalFinish(j, key.String())
				}
				return
			}
		}
	}

	ctx, cancelTimeout := context.WithTimeout(j.ctx, j.timeout)
	defer cancelTimeout()

	obs := observe.Func(func(e observe.Event) {
		s.cfg.Faults.Panic("worker.observe")
		s.countSnapshotEvents(j, e)
		if data, err := observe.MarshalEvent(e); err == nil {
			j.appendEvent(observe.TypeName(e), data)
		}
	})
	opts = append(opts, dlearn.WithObserver(obs, s.sched))

	def, report, err := dlearn.New(opts...).Learn(ctx, j.problem)
	switch {
	case err == nil:
		res := wire.EncodeResult(def, report)
		resultKey := ""
		if s.results != nil {
			s.results.put(key, res)
			resultKey = key.String()
		}
		if j.complete(res) {
			s.completed.Add(1)
			s.journalFinish(j, resultKey)
		}
	case context.Cause(j.ctx) == errCancelledByClient:
		if j.fail(wire.StateCancelled, errCancelledByClient.Error()) {
			s.cancelled.Add(1)
			s.journalFinish(j, "")
		}
	case context.Cause(j.ctx) == errServerShutdown:
		// A hard shutdown (drain deadline expired, base context cancelled)
		// is a server-initiated cancellation, not a job failure.
		if j.fail(wire.StateCancelled, errServerShutdown.Error()) {
			s.cancelled.Add(1)
			s.journalFinish(j, "")
		}
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		if j.fail(wire.StateFailed, fmt.Sprintf("deadline exceeded after %s", j.timeout)) {
			s.failed.Add(1)
			s.journalFinish(j, "")
		}
	default:
		if j.fail(wire.StateFailed, err.Error()) {
			s.failed.Add(1)
			s.journalFinish(j, "")
		}
	}
}

// countSnapshotEvents aggregates the snapshot events of a run into server
// counters; a failed snapshot write additionally degrades the job, because
// its preparation will not be served warm to anyone until the store heals.
func (s *Server) countSnapshotEvents(j *Job, e observe.Event) {
	switch ev := e.(type) {
	case observe.SnapshotHit:
		s.snapHits.Add(1)
	case observe.SnapshotMiss:
		s.snapMisses.Add(1)
	case observe.SnapshotWriteFailed:
		s.snapshotWriteFailures.Add(1)
		if j.degrade("snapshot", ev.Error) {
			s.degradedJobs.Add(1)
		}
	}
}

// Shutdown drains the server: new submissions are rejected immediately,
// queued and running jobs are allowed to finish. If ctx expires first,
// every remaining job is cancelled hard — those jobs terminate as cancelled
// (errServerShutdown), not failed — and Shutdown returns ctx.Err() after
// the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Ready reports whether the server accepts new submissions, plus the
// degradation signals /readyz exposes alongside the verdict.
func (s *Server) Ready() wire.Ready {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return wire.Ready{
		Ready:                 !draining,
		Draining:              draining,
		DegradedJobs:          s.degradedJobs.Load(),
		JournalCorruptRecords: s.journalCorrupt,
	}
}

// Stats snapshots the server counters for /v1/stats.
func (s *Server) Stats() wire.Stats {
	s.mu.Lock()
	tenants := len(s.tenants)
	jobsHeld := len(s.jobs)
	s.mu.Unlock()

	st := wire.Stats{
		QueueDepth:  len(s.queue),
		QueueCap:    s.cfg.MaxQueued,
		Running:     int(s.running.Load()),
		MaxRunning:  s.cfg.MaxConcurrent,
		JobsHeld:    jobsHeld,
		TenantsBusy: tenants,

		Submitted:         s.submitted.Load(),
		Completed:         s.completed.Load(),
		Failed:            s.failed.Load(),
		Cancelled:         s.cancelled.Load(),
		RejectedQueueFull: s.rejectedQueueFull.Load(),
		RejectedTenantCap: s.rejectedTenantCap.Load(),
		RejectedDraining:  s.rejectedDraining.Load(),

		ResultCacheHits: s.resultCacheHits.Load(),
		RecoveredJobs:   s.recovered,

		DegradedJobs:          s.degradedJobs.Load(),
		JournalWriteFailures:  s.journalWriteFailures.Load(),
		SnapshotWriteFailures: s.snapshotWriteFailures.Load(),
		JournalCorruptRecords: s.journalCorrupt,
		SSESlowDrops:          s.sseSlowDrops.Load(),
		WorkerPanics:          s.workerPanics.Load(),

		SnapshotHits:       s.snapHits.Load(),
		SnapshotMisses:     s.snapMisses.Load(),
		SnapshotStoreBytes: -1,
		SnapshotStoreFiles: -1,
	}
	if s.results != nil {
		st.ResultCacheBytes, st.ResultCacheEntries = s.results.stats()
	}
	if total := st.SnapshotHits + st.SnapshotMisses; total > 0 {
		st.SnapshotHitRate = float64(st.SnapshotHits) / float64(total)
	}
	if dir, ok := s.cfg.Store.(*dlearn.DirSnapshotStore); ok && dir != nil {
		if bytes, files, err := dir.Size(); err == nil {
			st.SnapshotStoreBytes, st.SnapshotStoreFiles = bytes, files
		}
	}
	sched := s.sched.Snapshot()
	st.SchedulerBatches = sched.Batches
	st.SchedulerCandidates = sched.Candidates
	st.SchedulerEarlyExits = sched.EarlyExited
	st.SchedulerEarlyExitRate = sched.EarlyExitRate
	return st
}
