// Package wire is the JSON wire format of the dlearn-serve API: learning
// problems as clients POST them, learned results, job status and server
// statistics. The encoder and decoder are exact inverses over everything
// that influences learning — relation order, tuple order, constraint sets,
// example order and the engine options — so a problem learned remotely
// yields a definition byte-identical to learning it in process. Both
// dlearn-serve and the dlearn-learn -remote client build their messages
// through this package, which is what keeps the two formats from drifting.
package wire

import (
	"fmt"
	"time"

	"dlearn"
	"dlearn/internal/relation"
)

// Attribute is the wire form of one relation column.
type Attribute struct {
	Name string `json:"name"`
	// Type is "string" (the default when empty), "int" or "float".
	Type   string `json:"type,omitempty"`
	Domain string `json:"domain"`
	// Constant marks attributes whose values stay constants in learned
	// clauses (an ILP "#" mode).
	Constant bool `json:"constant,omitempty"`
}

// Relation is the wire form of a relation descriptor.
type Relation struct {
	Name  string      `json:"name"`
	Attrs []Attribute `json:"attrs"`
}

// AttrPair is one compared attribute pair of an MD's left-hand side.
type AttrPair struct {
	Left  string `json:"left"`
	Right string `json:"right"`
}

// MD is the wire form of a matching dependency.
type MD struct {
	Name       string     `json:"name"`
	LeftRel    string     `json:"left_rel"`
	RightRel   string     `json:"right_rel"`
	Similar    []AttrPair `json:"similar"`
	MatchLeft  string     `json:"match_left"`
	MatchRight string     `json:"match_right"`
}

// CFD is the wire form of a conditional functional dependency.
type CFD struct {
	Name     string            `json:"name"`
	Relation string            `json:"relation"`
	LHS      []string          `json:"lhs"`
	RHS      string            `json:"rhs"`
	Pattern  map[string]string `json:"pattern,omitempty"`
}

// Options carries the engine knobs a job may set. Zero values mean "use the
// server's default" throughout, so a minimal job body configures nothing.
// Seed defaults to 1 (the engine default) rather than anything time-derived:
// remote learning is as deterministic as local learning.
type Options struct {
	Seed                 int64   `json:"seed,omitempty"`
	Threads              int     `json:"threads,omitempty"`
	CandidateParallelism int     `json:"candidate_parallelism,omitempty"`
	Iterations           int     `json:"iterations,omitempty"`
	SampleSize           int     `json:"sample_size,omitempty"`
	TopMatches           int     `json:"top_matches,omitempty"`
	SimilarityThreshold  float64 `json:"similarity_threshold,omitempty"`
	// MDMode is "similarity" (DLearn, the default), "exact" (Castor-Exact)
	// or "ignore" (Castor-NoMD).
	MDMode               string  `json:"md_mode,omitempty"`
	CFDRepairs           bool    `json:"cfd_repairs,omitempty"`
	NoiseTolerance       float64 `json:"noise_tolerance,omitempty"`
	MaxClauses           int     `json:"max_clauses,omitempty"`
	MinPositiveCoverage  int     `json:"min_positive_coverage,omitempty"`
	GeneralizationSample int     `json:"generalization_sample,omitempty"`
	NegativeSearchSample int     `json:"negative_search_sample,omitempty"`
	SubsumptionMaxNodes  int     `json:"subsumption_max_nodes,omitempty"`
	// NoLiteralPlanner disables the θ-subsumption literal planner for the
	// job. Plans are permutations, so the learned definition is identical
	// either way; like NoCache, the flag is excluded from every fingerprint.
	NoLiteralPlanner bool `json:"no_literal_planner,omitempty"`
	RepairMaxClauses int  `json:"repair_max_clauses,omitempty"`
	RepairMaxStates  int  `json:"repair_max_states,omitempty"`
	// TimeoutSeconds is the job's deadline. The server clamps it to its
	// configured maximum and applies its default when zero.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// NoCache bypasses the server's result cache for this job: the engine
	// runs even when an identical completed result is cached. The fresh
	// result still refreshes the cache afterwards, like an HTTP no-cache
	// revalidation. It never influences the learned definition, so it is not
	// part of any fingerprint.
	NoCache bool `json:"no_cache,omitempty"`
}

// Problem is the body of POST /v1/jobs: a complete learning task.
type Problem struct {
	// Target is the relation being defined.
	Target Relation `json:"target"`
	// Relations is the database schema in insertion order. Order is part of
	// the contract: it determines iteration order inside the engine and so
	// the learned definition's exact rendering.
	Relations []Relation `json:"relations"`
	// Tuples maps relation name to rows, each row in attribute order.
	Tuples map[string][][]string `json:"tuples"`
	MDs    []MD                  `json:"mds,omitempty"`
	CFDs   []CFD                 `json:"cfds,omitempty"`
	// Pos and Neg are training examples as raw attribute values of the
	// target relation.
	Pos     [][]string `json:"pos"`
	Neg     [][]string `json:"neg,omitempty"`
	Options Options    `json:"options,omitempty"`
}

// EncodeProblem converts a validated in-process problem to its wire form.
// Schema relations, tuples and examples keep their order, so decoding the
// result reproduces the problem exactly.
func EncodeProblem(p *dlearn.Problem) Problem {
	w := Problem{
		Target: encodeRelation(p.Target),
		Tuples: map[string][][]string{},
	}
	schema := p.Instance.Schema()
	for _, rel := range schema.Relations() {
		w.Relations = append(w.Relations, encodeRelation(rel))
		for _, t := range p.Instance.Tuples(rel.Name) {
			w.Tuples[rel.Name] = append(w.Tuples[rel.Name], t.Values)
		}
	}
	for _, md := range p.MDs {
		pairs := make([]AttrPair, len(md.Similar))
		for i, pr := range md.Similar {
			pairs[i] = AttrPair{Left: pr.Left, Right: pr.Right}
		}
		w.MDs = append(w.MDs, MD{
			Name: md.Name, LeftRel: md.LeftRel, RightRel: md.RightRel,
			Similar: pairs, MatchLeft: md.MatchLeft, MatchRight: md.MatchRight,
		})
	}
	for _, cfd := range p.CFDs {
		w.CFDs = append(w.CFDs, CFD{
			Name: cfd.Name, Relation: cfd.Relation,
			LHS: append([]string(nil), cfd.LHS...), RHS: cfd.RHS, Pattern: cfd.Pattern,
		})
	}
	for _, t := range p.Pos {
		w.Pos = append(w.Pos, t.Values)
	}
	for _, t := range p.Neg {
		w.Neg = append(w.Neg, t.Values)
	}
	return w
}

func encodeRelation(r *dlearn.Relation) Relation {
	out := Relation{Name: r.Name}
	for _, a := range r.Attrs {
		wa := Attribute{Name: a.Name, Domain: a.Domain, Constant: a.Constant}
		if s := a.Type.String(); s != "string" {
			wa.Type = s
		}
		out.Attrs = append(out.Attrs, wa)
	}
	return out
}

// Decode rebuilds the in-process problem: schema relations in listed order,
// tuples in listed order, then the usual ProblemBuilder validation. The
// returned problem passed the same checks Engine.Learn performs.
func (w Problem) Decode() (*dlearn.Problem, error) {
	target, err := decodeRelation(w.Target)
	if err != nil {
		return nil, fmt.Errorf("wire: target: %w", err)
	}
	schema := dlearn.NewSchema()
	for _, r := range w.Relations {
		rel, err := decodeRelation(r)
		if err != nil {
			return nil, fmt.Errorf("wire: relation %q: %w", r.Name, err)
		}
		if err := schema.Add(rel); err != nil {
			return nil, fmt.Errorf("wire: %w", err)
		}
	}
	db := dlearn.NewInstance(schema)
	for _, r := range w.Relations {
		for i, row := range w.Tuples[r.Name] {
			if err := db.Insert(r.Name, row...); err != nil {
				return nil, fmt.Errorf("wire: tuple %d of %s: %w", i, r.Name, err)
			}
		}
	}
	for rel := range w.Tuples {
		if !schema.Has(rel) {
			return nil, fmt.Errorf("wire: tuples for undeclared relation %q", rel)
		}
	}
	b := dlearn.NewProblem(target).OnInstance(db)
	for _, md := range w.MDs {
		pairs := make([]dlearn.AttrPair, len(md.Similar))
		for i, pr := range md.Similar {
			pairs[i] = dlearn.AttrPair{Left: pr.Left, Right: pr.Right}
		}
		b.WithMDs(dlearn.NewMD(md.Name, md.LeftRel, md.RightRel, pairs, md.MatchLeft, md.MatchRight))
	}
	for _, cfd := range w.CFDs {
		b.WithCFDs(dlearn.NewCFD(cfd.Name, cfd.Relation, cfd.LHS, cfd.RHS, cfd.Pattern))
	}
	for _, row := range w.Pos {
		b.PosValues(row...)
	}
	for _, row := range w.Neg {
		b.NegValues(row...)
	}
	return b.Build()
}

func decodeRelation(r Relation) (*dlearn.Relation, error) {
	if r.Name == "" {
		return nil, fmt.Errorf("relation needs a name")
	}
	if len(r.Attrs) == 0 {
		return nil, fmt.Errorf("relation needs attributes")
	}
	attrs := make([]dlearn.Attribute, len(r.Attrs))
	for i, a := range r.Attrs {
		attr := dlearn.Attribute{Name: a.Name, Domain: a.Domain, Constant: a.Constant}
		switch a.Type {
		case "", "string":
			attr.Type = relation.String
		case "int":
			attr.Type = relation.Int
		case "float":
			attr.Type = relation.Float
		default:
			return nil, fmt.Errorf("attribute %q has unknown type %q", a.Name, a.Type)
		}
		attrs[i] = attr
	}
	return dlearn.NewRelation(r.Name, attrs...), nil
}

// EngineOptions converts the set wire options to engine options; zero-valued
// fields contribute nothing, so the server's base configuration shows
// through.
func (o Options) EngineOptions() ([]dlearn.Option, error) {
	var opts []dlearn.Option
	if o.Seed != 0 {
		opts = append(opts, dlearn.WithSeed(o.Seed))
	}
	if o.Threads > 0 {
		opts = append(opts, dlearn.WithThreads(o.Threads))
	}
	if o.CandidateParallelism > 0 {
		opts = append(opts, dlearn.WithCandidateParallelism(o.CandidateParallelism))
	}
	if o.Iterations > 0 {
		opts = append(opts, dlearn.WithIterations(o.Iterations))
	}
	if o.SampleSize > 0 {
		opts = append(opts, dlearn.WithSampleSize(o.SampleSize))
	}
	if o.TopMatches > 0 {
		opts = append(opts, dlearn.WithTopMatches(o.TopMatches))
	}
	if o.SimilarityThreshold > 0 {
		opts = append(opts, dlearn.WithSimilarityThreshold(o.SimilarityThreshold))
	}
	switch o.MDMode {
	case "":
	case "similarity":
		opts = append(opts, dlearn.WithMDMode(dlearn.MDSimilarity))
	case "exact":
		opts = append(opts, dlearn.WithMDMode(dlearn.MDExact))
	case "ignore":
		opts = append(opts, dlearn.WithMDMode(dlearn.MDIgnore))
	default:
		return nil, fmt.Errorf("wire: unknown md_mode %q (want similarity, exact or ignore)", o.MDMode)
	}
	if o.CFDRepairs {
		opts = append(opts, dlearn.WithCFDRepairs(true))
	}
	if o.NoiseTolerance > 0 {
		opts = append(opts, dlearn.WithNoiseTolerance(o.NoiseTolerance))
	}
	if o.MaxClauses > 0 {
		opts = append(opts, dlearn.WithMaxClauses(o.MaxClauses))
	}
	if o.MinPositiveCoverage > 0 {
		opts = append(opts, dlearn.WithMinPositiveCoverage(o.MinPositiveCoverage))
	}
	if o.GeneralizationSample > 0 {
		opts = append(opts, dlearn.WithGeneralizationSample(o.GeneralizationSample))
	}
	if o.NegativeSearchSample > 0 {
		opts = append(opts, dlearn.WithNegativeSearchSample(o.NegativeSearchSample))
	}
	if o.SubsumptionMaxNodes > 0 {
		opts = append(opts, dlearn.WithSubsumptionBudget(o.SubsumptionMaxNodes))
	}
	if o.NoLiteralPlanner {
		opts = append(opts, dlearn.WithLiteralPlanner(false))
	}
	if o.RepairMaxClauses > 0 || o.RepairMaxStates > 0 {
		opts = append(opts, dlearn.WithRepairBudget(o.RepairMaxClauses, o.RepairMaxStates))
	}
	return opts, nil
}

// Timeout returns the requested job deadline, zero when unset.
func (o Options) Timeout() time.Duration {
	if o.TimeoutSeconds <= 0 {
		return 0
	}
	return time.Duration(o.TimeoutSeconds * float64(time.Second))
}
