package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
)

// TestQuickstartJobDecodesAndLearns pins the committed quickstart payload
// (docs/examples/quickstart-job.json, the body README's curl example and the
// CI serve-smoke job submit): it must decode through the wire codec, carry
// valid options, and actually learn a definition.
func TestQuickstartJobDecodesAndLearns(t *testing.T) {
	data, err := os.ReadFile("../../../docs/examples/quickstart-job.json")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var wp Problem
	if err := dec.Decode(&wp); err != nil {
		t.Fatalf("quickstart payload does not decode strictly: %v", err)
	}
	p, err := wp.Decode()
	if err != nil {
		t.Fatalf("quickstart problem invalid: %v", err)
	}
	if wp.Options.Timeout() <= 0 {
		t.Error("quickstart job should carry an explicit timeout")
	}
	def, _, err := engineFromWire(t, wp.Options).Learn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if def.Len() == 0 {
		t.Error("quickstart job learned an empty definition")
	}
}
