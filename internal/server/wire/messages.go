package wire

import (
	"time"

	"dlearn"
)

// Job states reported by JobStatus.State.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// SSE event names the job stream uses beyond the observer event types
// (which stream under their observe wire names, e.g. "iteration_started").
const (
	// EventResult is the terminal event of a successful job; its data is a
	// Result.
	EventResult = "result"
	// EventError is the terminal event of a failed or cancelled job; its
	// data is a JobError.
	EventError = "error"
	// EventLogTruncated is the marker event prepended to a replayed stream
	// whose journalled event log was size-capped: the oldest events were
	// dropped, and its data carries {"dropped": N}. Live streams never emit
	// it — only replays of restored jobs can be partial.
	EventLogTruncated = "log_truncated"
)

// JobAccepted is the body of a successful POST /v1/jobs response.
type JobAccepted struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// EventsURL and StatusURL are the job's other endpoints, so clients
	// need not assemble paths themselves.
	EventsURL string `json:"events_url"`
	StatusURL string `json:"status_url"`
}

// ClauseStats is one learned clause with its training-set coverage.
type ClauseStats struct {
	Clause    string `json:"clause"`
	Positives int    `json:"positives"`
	Negatives int    `json:"negatives"`
	Score     int    `json:"score"`
}

// Report is the wire form of a run report.
type Report struct {
	DurationSeconds     float64 `json:"duration_seconds"`
	BottomClauseSeconds float64 `json:"bottom_clause_seconds"`
	SnapshotHit         bool    `json:"snapshot_hit"`
	PrepareSeconds      float64 `json:"prepare_seconds"`
	SnapshotLoadSeconds float64 `json:"snapshot_load_seconds"`
	ClausesConsidered   int     `json:"clauses_considered"`
	SeedsTried          int     `json:"seeds_tried"`
	UncoveredPositives  int     `json:"uncovered_positives"`
}

// Result is a completed job's learned definition. Definition is the
// engine's exact rendering (Definition.String), so a remote result can be
// compared byte-for-byte against an in-process run; Clauses carries the
// same clauses structurally.
type Result struct {
	Target     string        `json:"target"`
	Definition string        `json:"definition"`
	Clauses    []ClauseStats `json:"clauses"`
	Report     Report        `json:"report"`
}

// JobError is the data of a terminal "error" SSE event.
type JobError struct {
	State string `json:"state"`
	Error string `json:"error"`
}

// EncodeResult converts a learned definition and its report to wire form.
func EncodeResult(def *dlearn.Definition, report *dlearn.Report) Result {
	r := Result{Target: def.Target, Definition: def.String()}
	for i, c := range def.Clauses {
		cs := ClauseStats{Clause: c.String()}
		if i < len(def.Stats) {
			cs.Positives = def.Stats[i].PositivesCovered
			cs.Negatives = def.Stats[i].NegativesCovered
			cs.Score = def.Stats[i].Score
		}
		r.Clauses = append(r.Clauses, cs)
	}
	if report != nil {
		r.Report = Report{
			DurationSeconds:     report.Duration.Seconds(),
			BottomClauseSeconds: report.BottomClauseTime.Seconds(),
			SnapshotHit:         report.SnapshotHit,
			PrepareSeconds:      report.PrepareTime.Seconds(),
			SnapshotLoadSeconds: report.SnapshotLoadTime.Seconds(),
			ClausesConsidered:   report.ClausesConsidered,
			SeedsTried:          report.SeedsTried,
			UncoveredPositives:  report.UncoveredPositives,
		}
	}
	return r
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID          string    `json:"id"`
	Tenant      string    `json:"tenant"`
	State       string    `json:"state"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// Events is the number of stream events emitted so far (including the
	// terminal one once the job has finished).
	Events int     `json:"events"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
	// Degraded marks a job whose persistence write failed mid-flight: the
	// job ran (or is running) in memory as best effort, but would not survive
	// a server restart the way a fully journalled job does.
	Degraded bool `json:"degraded,omitempty"`
}

// Ready is the body of GET /readyz: whether the server accepts new jobs, and
// the degradation signals an orchestrator should alarm on even while ready.
type Ready struct {
	Ready bool `json:"ready"`
	// Draining means the server is shutting down and rejects submissions.
	Draining bool `json:"draining"`
	// DegradedJobs counts jobs downgraded to best-effort in-memory operation
	// after a persistence write failure.
	DegradedJobs int64 `json:"degraded_jobs"`
	// JournalCorruptRecords counts journal records set aside as .corrupt at
	// the last boot.
	JournalCorruptRecords int `json:"journal_corrupt_records"`
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	// Queue occupancy at the time of the request.
	QueueDepth  int `json:"queue_depth"`
	QueueCap    int `json:"queue_cap"`
	Running     int `json:"running"`
	MaxRunning  int `json:"max_running"`
	JobsHeld    int `json:"jobs_held"`
	TenantsBusy int `json:"tenants_busy"`

	// Admission counters since process start.
	Submitted         int64 `json:"submitted"`
	Completed         int64 `json:"completed"`
	Failed            int64 `json:"failed"`
	Cancelled         int64 `json:"cancelled"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedTenantCap int64 `json:"rejected_tenant_cap"`
	RejectedDraining  int64 `json:"rejected_draining"`

	// Shared snapshot store: cross-tenant preparation dedup.
	SnapshotHits    int64   `json:"snapshot_hits"`
	SnapshotMisses  int64   `json:"snapshot_misses"`
	SnapshotHitRate float64 `json:"snapshot_hit_rate"`
	// SnapshotStoreBytes/Files describe the shared store directory, -1 when
	// sizing failed or no directory-backed store is configured.
	SnapshotStoreBytes int64 `json:"snapshot_store_bytes"`
	SnapshotStoreFiles int   `json:"snapshot_store_files"`

	// Result cache: completed results keyed by the result fingerprint
	// (problem + every definition-affecting option), so a resubmitted
	// identical job completes instantly with a byte-identical definition.
	ResultCacheHits    int64 `json:"result_cache_hits"`
	ResultCacheBytes   int64 `json:"result_cache_bytes"`
	ResultCacheEntries int   `json:"result_cache_entries"`

	// RecoveredJobs counts jobs restored from the job journal at boot —
	// finished jobs returned to the registry plus interrupted jobs re-queued.
	RecoveredJobs int `json:"recovered_jobs"`

	// Failure-hardening counters. A healthy server holds all of these at
	// zero; any of them moving is a signal worth alarming on even though the
	// server keeps serving through all of the underlying conditions.
	//
	// DegradedJobs counts jobs downgraded to best-effort in-memory operation
	// after a journal or snapshot write failed on their behalf.
	DegradedJobs int64 `json:"degraded_jobs"`
	// JournalWriteFailures and SnapshotWriteFailures count failed
	// persistence writes (each may degrade at most one job, but a job with
	// many snapshot writes can fail several times).
	JournalWriteFailures  int64 `json:"journal_write_failures"`
	SnapshotWriteFailures int64 `json:"snapshot_write_failures"`
	// JournalCorruptRecords counts journal records set aside as .corrupt at
	// the last boot instead of being recovered.
	JournalCorruptRecords int `json:"journal_corrupt_records"`
	// SSESlowDrops counts event-stream subscribers dropped for falling too
	// far behind; a dropped client reconnects with Last-Event-ID and replays
	// what it missed.
	SSESlowDrops int64 `json:"sse_slow_drops"`
	// WorkerPanics counts jobs that panicked inside the learner; each one
	// terminates as a failed job with the stack in its error, and the worker
	// keeps serving.
	WorkerPanics int64 `json:"worker_panics"`

	// Candidate-scheduler telemetry aggregated across every job served.
	SchedulerBatches       int64   `json:"scheduler_batches"`
	SchedulerCandidates    int64   `json:"scheduler_candidates"`
	SchedulerEarlyExits    int64   `json:"scheduler_early_exits"`
	SchedulerEarlyExitRate float64 `json:"scheduler_early_exit_rate"`
}
