package wire

import (
	"context"
	"encoding/json"
	"testing"

	"dlearn"
	"dlearn/internal/core"
)

// testProblem builds a small problem exercising every wire feature:
// several relations, constant attributes, MDs, a CFD with a pattern, and
// both example polarities.
func testProblem(t *testing.T) *dlearn.Problem {
	t.Helper()
	schema := dlearn.NewSchema()
	schema.MustAdd(dlearn.NewRelation("movies",
		dlearn.Attr("id", "imdb_id"), dlearn.Attr("title", "imdb_title"), dlearn.ConstAttr("year", "year")))
	schema.MustAdd(dlearn.NewRelation("mov2genres",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("genre", "genre")))

	db := dlearn.NewInstance(schema)
	rows := []struct{ id, title, genre string }{
		{"m1", "Silent Harbor", "comedy"},
		{"m2", "Crimson Station", "comedy"},
		{"m3", "Broken Mirror", "drama"},
		{"m4", "Hidden Canyon", "drama"},
		{"m5", "Electric Parade", "comedy"},
		{"m6", "Midnight Archive", "thriller"},
	}
	for _, r := range rows {
		db.MustInsert("movies", r.id, r.title+" (2007)", "2007")
		db.MustInsert("mov2genres", r.id, r.genre)
	}

	target := dlearn.NewRelation("highGrossing", dlearn.Attr("title", "bom_title"))
	b := dlearn.NewProblem(target).
		OnInstance(db).
		WithMDs(dlearn.SimpleMD("md_title", "highGrossing", "title", "movies", "title")).
		WithCFDs(dlearn.NewCFD("cfd_year", "movies", []string{"id"}, "year", map[string]string{"year": "2007"}))
	for _, r := range rows {
		if r.genre == "comedy" {
			b.PosValues(r.title)
		} else {
			b.NegValues(r.title)
		}
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testEngineOptions() Options {
	return Options{
		Seed:                 7,
		Threads:              2,
		Iterations:           2,
		TopMatches:           2,
		GeneralizationSample: 3,
		MaxClauses:           3,
	}
}

func engineFromWire(t *testing.T, o Options) *dlearn.Engine {
	t.Helper()
	opts, err := o.EngineOptions()
	if err != nil {
		t.Fatal(err)
	}
	return dlearn.New(opts...)
}

// TestProblemRoundTripFingerprint is the codec's core contract: encoding a
// problem to JSON and decoding it back must reproduce every learning-
// relevant bit. The snapshot fingerprint hashes exactly those bits (the
// instance, constraints, examples and preparation options), so key equality
// is the strongest practical equality check.
func TestProblemRoundTripFingerprint(t *testing.T) {
	p := testProblem(t)
	data, err := json.Marshal(EncodeProblem(p))
	if err != nil {
		t.Fatal(err)
	}
	var w Problem
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}

	cfg := engineFromWire(t, testEngineOptions()).Config()
	want := core.SnapshotFingerprint(*p, cfg).Key()
	got := core.SnapshotFingerprint(*back, cfg).Key()
	if want != got {
		t.Fatalf("round trip changed the snapshot fingerprint:\n  want %s\n  got  %s", want, got)
	}
}

// TestProblemRoundTripLearnsIdentically learns over the original and the
// round-tripped problem and requires byte-identical definitions — the
// end-to-end property dlearn-serve's remote path relies on.
func TestProblemRoundTripLearnsIdentically(t *testing.T) {
	p := testProblem(t)
	data, err := json.Marshal(EncodeProblem(p))
	if err != nil {
		t.Fatal(err)
	}
	var w Problem
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	defA, _, err := engineFromWire(t, testEngineOptions()).Learn(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	defB, _, err := engineFromWire(t, testEngineOptions()).Learn(ctx, back)
	if err != nil {
		t.Fatal(err)
	}
	if defA.String() != defB.String() {
		t.Fatalf("definitions differ:\n--- original ---\n%s\n--- round-tripped ---\n%s", defA, defB)
	}
}

func TestDecodeRejectsMalformedProblems(t *testing.T) {
	base := func() Problem { return EncodeProblem(testProblem(t)) }

	cases := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"missing target name", func(w *Problem) { w.Target.Name = "" }},
		{"relation without attrs", func(w *Problem) { w.Relations[0].Attrs = nil }},
		{"unknown attribute type", func(w *Problem) { w.Relations[0].Attrs[0].Type = "decimal" }},
		{"duplicate relation", func(w *Problem) { w.Relations = append(w.Relations, w.Relations[0]) }},
		{"tuples for undeclared relation", func(w *Problem) { w.Tuples["ghost"] = [][]string{{"x"}} }},
		{"tuple arity mismatch", func(w *Problem) { w.Tuples["movies"][0] = []string{"only-one"} }},
		{"bad MD", func(w *Problem) { w.MDs[0].LeftRel = "nope" }},
		{"bad CFD", func(w *Problem) { w.CFDs[0].RHS = "nope" }},
		{"no positives", func(w *Problem) { w.Pos = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := base()
			tc.mutate(&w)
			if _, err := w.Decode(); err == nil {
				t.Error("Decode accepted a malformed problem")
			}
		})
	}
}

func TestEngineOptionsApplied(t *testing.T) {
	o := Options{
		Seed: 42, Threads: 3, CandidateParallelism: 2, Iterations: 4, SampleSize: 6,
		TopMatches: 5, SimilarityThreshold: 0.7, MDMode: "exact", CFDRepairs: true,
		NoiseTolerance: 0.125, MaxClauses: 9, MinPositiveCoverage: 3,
		GeneralizationSample: 7, NegativeSearchSample: 11,
		SubsumptionMaxNodes: 1234, NoLiteralPlanner: true, RepairMaxClauses: 8, RepairMaxStates: 99,
	}
	cfg := engineFromWire(t, o).Config()
	if cfg.Seed != 42 || cfg.Threads != 3 || cfg.CandidateParallelism != 2 ||
		cfg.MaxNegativeFraction != 0.125 || cfg.MaxClauses != 9 || cfg.MinPositiveCoverage != 3 ||
		cfg.GeneralizationSample != 7 || cfg.NegativeSearchSample != 11 {
		t.Errorf("learner options not applied: %+v", cfg)
	}
	bc := cfg.BottomClause
	if bc.Iterations != 4 || bc.SampleSize != 6 || bc.KM != 5 || bc.SimilarityThreshold != 0.7 ||
		bc.MDMode != dlearn.MDExact || !bc.UseCFDs || bc.Seed != 42 {
		t.Errorf("bottom-clause options not applied: %+v", bc)
	}
	if cfg.Subsumption.MaxNodes != 1234 || cfg.Repair.MaxClauses != 8 || cfg.Repair.MaxStates != 99 {
		t.Errorf("budget options not applied: %+v", cfg)
	}
	if !cfg.Subsumption.DisablePlanner {
		t.Errorf("no_literal_planner not applied: %+v", cfg.Subsumption)
	}
	// WithSubsumptionBudget must not clobber the planner toggle (it once
	// replaced the whole subsumption.Options struct).
	if engineFromWire(t, Options{NoLiteralPlanner: true, SubsumptionMaxNodes: 7}).Config().Subsumption.MaxNodes != 7 {
		t.Error("budget lost when planner toggle set")
	}

	if _, err := (Options{MDMode: "telepathy"}).EngineOptions(); err == nil {
		t.Error("unknown md_mode must be rejected")
	}
	if (Options{}).Timeout() != 0 {
		t.Error("unset timeout must be zero")
	}
	if (Options{TimeoutSeconds: 1.5}).Timeout().Milliseconds() != 1500 {
		t.Error("timeout seconds not converted")
	}
}
