package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dlearn"
	"dlearn/internal/persist"
	"dlearn/internal/server/wire"
)

// bootServer starts a server without registering shutdown cleanup, for tests
// that restart on the same journal directory.
func bootServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	stop := func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}
	return s, &Client{BaseURL: ts.URL, Tenant: "test"}, stop
}

// TestJournalRestoresFinishedJobs runs a job to completion, shuts the server
// down, and boots a fresh one on the same journal directory: job status, the
// result, the full event replay and the outcome counters must all survive.
func TestJournalRestoresFinishedJobs(t *testing.T) {
	dir := t.TempDir()

	s1, client1, stop1 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir})
	p := serveProblem(t)
	first, err := client1.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	jobID := findOnlyJobID(t, s1)
	before := streamFrom(t, client1.BaseURL, jobID, "")
	stop1()

	_, client2, stop2 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir})
	defer stop2()

	st, err := client2.Status(context.Background(), jobID)
	if err != nil {
		t.Fatalf("job %s lost across restart: %v", jobID, err)
	}
	if st.State != wire.StateDone {
		t.Fatalf("recovered job state = %q, want done", st.State)
	}
	if st.Result == nil || st.Result.Definition != first.Definition {
		t.Errorf("recovered result differs from the original")
	}
	after := streamFrom(t, client2.BaseURL, jobID, "")
	if len(after) != len(before) {
		t.Fatalf("recovered event replay has %d events, original had %d", len(after), len(before))
	}
	for i := range before {
		if after[i].Name != before[i].Name || string(after[i].Data) != string(before[i].Data) {
			t.Errorf("recovered event %d = {%s %s}, original {%s %s}",
				i, after[i].Name, after[i].Data, before[i].Name, before[i].Data)
		}
	}

	stats, err := client2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecoveredJobs != 1 || stats.Completed != 1 || stats.Submitted != 1 {
		t.Errorf("recovered stats = %+v, want 1 recovered/completed/submitted", stats)
	}
}

// TestJournalRerunsInterruptedJobs simulates a crash with work in flight: one
// job blocked mid-run on a gate (journalled as queued, never finished) and
// one behind it in the queue. The abandoned server is never shut down; a new
// server on the same directory must re-enqueue and re-run both to completion.
func TestJournalRerunsInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	g := newGate()

	s1, err := New(Config{
		MaxConcurrent: 1,
		JobDir:        dir,
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unblock the abandoned worker at exit and wait for it, so its late
	// journal writes cannot race the TempDir cleanup.
	defer func() {
		close(g.release)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s1.Shutdown(ctx)
	}()
	p := serveProblem(t)
	running, err := s1.Submit("t", p, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	g.waitEntered(t)
	queued, err := s1.Submit("t", p, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Crash: abandon s1 without Shutdown. Both journal records still say
	// queued — the running job never reached a terminal state.

	s2, client2, stop2 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir})
	defer stop2()
	if st := s2.Stats(); st.RecoveredJobs != 2 {
		t.Fatalf("recovered %d jobs, want 2", st.RecoveredJobs)
	}
	for _, id := range []string{running.ID, queued.ID} {
		var st wire.JobStatus
		waitFor(t, "recovered job "+id+" to finish", func() bool {
			var err error
			st, err = client2.Status(context.Background(), id)
			return err == nil && terminal(st.State)
		})
		if st.State != wire.StateDone {
			t.Errorf("re-run job %s finished %q (%s), want done", id, st.State, st.Error)
		}
		if st.Result == nil || st.Result.Definition == "" {
			t.Errorf("re-run job %s has no result", id)
		}
	}
}

// TestJournalSetsAsideCorruptRecords writes garbage into the journal
// directory: boot must succeed, rename the damaged files aside, recover
// nothing from them — and count every one in /v1/stats and /readyz, so
// set-aside records are never silently dropped.
func TestJournalSetsAsideCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.job"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A structurally valid record whose ID does not match its filename is
	// just as corrupt as garbage bytes.
	if err := os.WriteFile(filepath.Join(dir, "cafef00d.job"), []byte(`{"id":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{JobDir: dir})
	if err != nil {
		t.Fatalf("boot failed on a corrupt record: %v", err)
	}
	defer s.Shutdown(context.Background())
	if st := s.Stats(); st.RecoveredJobs != 0 {
		t.Errorf("recovered %d jobs from corrupt records", st.RecoveredJobs)
	}
	for _, name := range []string{"deadbeef.job.corrupt", "cafef00d.job.corrupt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("corrupt record was not set aside: %v", err)
		}
	}
	if st := s.Stats(); st.JournalCorruptRecords != 2 {
		t.Errorf("stats count %d corrupt records, want 2", st.JournalCorruptRecords)
	}
	if rd := s.Ready(); rd.JournalCorruptRecords != 2 {
		t.Errorf("readyz reports %d corrupt records, want 2", rd.JournalCorruptRecords)
	}
}

// TestTruncateEvents pins the compaction helper: under the cap the log is
// untouched; over it the oldest events are dropped behind a log_truncated
// marker carrying the drop count, and the terminal event always survives.
func TestTruncateEvents(t *testing.T) {
	mkEvents := func(n int) []journalEvent {
		evs := make([]journalEvent, n)
		for i := range evs {
			evs[i] = journalEvent{Name: "progress", Data: []byte(`{"i":` + string(rune('0'+i%10)) + `}`)}
		}
		evs[n-1] = journalEvent{Name: wire.EventResult, Data: []byte(`{"definition":"d"}`)}
		return evs
	}

	if got := truncateEvents(mkEvents(4), 0); len(got) != 4 {
		t.Errorf("cap 0 (unbounded) truncated to %d events", len(got))
	}
	if got := truncateEvents(mkEvents(4), 1<<20); len(got) != 4 {
		t.Errorf("roomy cap truncated to %d events", len(got))
	}

	evs := mkEvents(50)
	got := truncateEvents(evs, 400)
	if len(got) >= len(evs) {
		t.Fatalf("tight cap kept all %d events", len(got))
	}
	if got[0].Name != wire.EventLogTruncated {
		t.Fatalf("first event = %q, want the %s marker", got[0].Name, wire.EventLogTruncated)
	}
	var marker struct {
		Dropped int `json:"dropped"`
	}
	if err := json.Unmarshal(got[0].Data, &marker); err != nil || marker.Dropped == 0 {
		t.Errorf("marker data = %s (%v), want a positive dropped count", got[0].Data, err)
	}
	if marker.Dropped+len(got)-1 != len(evs) {
		t.Errorf("dropped %d + kept %d != original %d", marker.Dropped, len(got)-1, len(evs))
	}
	if got[len(got)-1].Name != wire.EventResult {
		t.Errorf("terminal event did not survive truncation")
	}

	// Even a cap smaller than any single event keeps the terminal event.
	got = truncateEvents(mkEvents(3), 1)
	if got[len(got)-1].Name != wire.EventResult {
		t.Errorf("pathological cap lost the terminal event")
	}
}

// TestJournalTruncatesEventLogAcrossRestart runs a job under a tight event
// cap: the live stream stays complete, but the journalled replay a restarted
// server serves opens with a log_truncated marker and still ends with the
// full terminal result.
func TestJournalTruncatesEventLogAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, client1, stop1 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir, MaxEventLogBytes: 300})
	first, err := client1.Learn(context.Background(), serveProblem(t), serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	jobID := findOnlyJobID(t, s1)
	live := streamFrom(t, client1.BaseURL, jobID, "")
	if live[0].Name == wire.EventLogTruncated {
		t.Fatal("live stream was truncated; only restart replays may be")
	}
	stop1()

	_, client2, stop2 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir})
	defer stop2()
	replay := streamFrom(t, client2.BaseURL, jobID, "")
	if len(replay) == 0 || replay[0].Name != wire.EventLogTruncated {
		t.Fatalf("restart replay does not open with the %s marker (got %d events)",
			wire.EventLogTruncated, len(replay))
	}
	if len(replay) >= len(live) {
		t.Errorf("replay kept %d events of a %d-event log despite the cap", len(replay), len(live))
	}
	var marker struct {
		Dropped int `json:"dropped"`
	}
	if err := json.Unmarshal(replay[0].Data, &marker); err != nil || marker.Dropped == 0 {
		t.Errorf("marker data = %s (%v)", replay[0].Data, err)
	}
	if marker.Dropped+len(replay)-1 != len(live) {
		t.Errorf("dropped %d + replayed %d != live log %d", marker.Dropped, len(replay)-1, len(live))
	}
	last := replay[len(replay)-1]
	if last.Name != wire.EventResult {
		t.Fatalf("truncated replay ends with %q, want the terminal result", last.Name)
	}
	var res wire.Result
	if err := json.Unmarshal(last.Data, &res); err != nil || res.Definition != first.Definition {
		t.Errorf("truncated replay's terminal result differs from the original (%v)", err)
	}
}

// TestResultCacheServesIdenticalResubmission pins the result cache contract:
// a resubmitted bit-identical job completes with a byte-identical definition
// without running the engine, the hit is counted and surfaced as a stream
// event, and no-cache forces a fresh run.
func TestResultCacheServesIdenticalResubmission(t *testing.T) {
	s, client := newTestServer(t, Config{MaxConcurrent: 1})
	p := serveProblem(t)

	first, err := client.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}

	var sawHit bool
	second, err := client.Learn(context.Background(), p, serveOptions(), func(e dlearn.Event) {
		if _, ok := e.(dlearn.ResultCacheHit); ok {
			sawHit = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Definition != first.Definition {
		t.Errorf("cached definition differs:\n%s\nvs\n%s", second.Definition, first.Definition)
	}
	if !sawHit {
		t.Error("second run's stream carried no result_cache_hit event")
	}
	st := s.Stats()
	if st.ResultCacheHits != 1 || st.ResultCacheEntries != 1 || st.ResultCacheBytes <= 0 {
		t.Errorf("cache stats after hit = %+v", st)
	}

	// Different options must miss: a changed seed is a different run.
	opts := serveOptions()
	opts.Seed = 99
	if _, err := client.Learn(context.Background(), p, opts, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ResultCacheHits; got != 1 {
		t.Errorf("different-seed job hit the cache (hits = %d)", got)
	}

	// no-cache bypasses the read path entirely.
	opts = serveOptions()
	opts.NoCache = true
	third, err := client.Learn(context.Background(), p, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ResultCacheHits; got != 1 {
		t.Errorf("no-cache job hit the cache (hits = %d)", got)
	}
	if third.Definition != first.Definition {
		t.Errorf("no-cache rerun learned a different definition")
	}
	if third.Report.DurationSeconds <= 0 {
		t.Errorf("no-cache rerun reports no engine time; it was served from cache")
	}
}

// TestResultCacheSurvivesRestart completes a job on a journalled server, then
// resubmits the identical problem to a restarted server: the cache must be
// repopulated from the journal and serve the hit.
func TestResultCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	_, client1, stop1 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir})
	p := serveProblem(t)
	first, err := client1.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stop1()

	s2, client2, stop2 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir})
	defer stop2()
	second, err := client2.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Definition != first.Definition {
		t.Errorf("post-restart cached definition differs")
	}
	if st := s2.Stats(); st.ResultCacheHits != 1 {
		t.Errorf("post-restart stats = %+v, want 1 result cache hit", st)
	}
}

// TestResultCacheLRUEviction exercises the byte-cap sweep directly: oldest
// entries fall out first, recency is refreshed by get, and the most recently
// used entry survives even when it alone exceeds the cap.
func TestResultCacheLRUEviction(t *testing.T) {
	res := func(pad int) wire.Result {
		return wire.Result{Target: "t", Definition: strings.Repeat("x", pad)}
	}
	data, err := json.Marshal(res(0))
	if err != nil {
		t.Fatal(err)
	}
	// Cap the cache at three bare results; each put below is one unit.
	c := newResultCache(3 * int64(len(data)))
	keys := make([]persist.Key, 4)
	for i := range keys {
		keys[i][0] = byte(i + 1)
	}
	c.put(keys[0], res(0))
	c.put(keys[1], res(0))
	c.put(keys[2], res(0))
	if _, _, ok := c.get(keys[0]); !ok {
		t.Fatal("entry 0 evicted below the cap")
	}
	// get refreshed key 0, so key 1 is now the oldest and must go first.
	c.put(keys[3], res(0))
	if _, _, ok := c.get(keys[1]); ok {
		t.Error("LRU entry survived the sweep")
	}
	for _, i := range []int{0, 2, 3} {
		if _, _, ok := c.get(keys[i]); !ok {
			t.Errorf("entry %d evicted, want retained", i)
		}
	}

	// One oversized entry still caches: the most recent entry always survives.
	c.put(keys[1], res(64<<10))
	if _, _, ok := c.get(keys[1]); !ok {
		t.Error("oversized entry did not cache; the most recent entry must always survive")
	}
	if bytes, entries := c.stats(); entries < 1 || bytes <= 0 {
		t.Errorf("stats after oversized put = %d bytes, %d entries", bytes, entries)
	}
}

// TestResultCacheDisabled verifies a negative cap turns the cache off end to
// end rather than defaulting.
func TestResultCacheDisabled(t *testing.T) {
	s, client := newTestServer(t, Config{MaxConcurrent: 1, ResultCacheMaxBytes: -1})
	p := serveProblem(t)
	for i := 0; i < 2; i++ {
		if _, err := client.Learn(context.Background(), p, serveOptions(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.ResultCacheHits != 0 || st.ResultCacheEntries != 0 {
		t.Errorf("disabled cache still served hits: %+v", st)
	}
}
