package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dlearn"
	"dlearn/internal/observe"
	"dlearn/internal/server/wire"
)

// serveProblem builds a small but non-trivial problem: two relations, an MD,
// a CFD with a pattern, both example polarities.
func serveProblem(t *testing.T) *dlearn.Problem {
	t.Helper()
	schema := dlearn.NewSchema()
	schema.MustAdd(dlearn.NewRelation("movies",
		dlearn.Attr("id", "imdb_id"), dlearn.Attr("title", "imdb_title"), dlearn.ConstAttr("year", "year")))
	schema.MustAdd(dlearn.NewRelation("mov2genres",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("genre", "genre")))

	db := dlearn.NewInstance(schema)
	rows := []struct{ id, title, genre string }{
		{"m1", "Silent Harbor", "comedy"},
		{"m2", "Crimson Station", "comedy"},
		{"m3", "Broken Mirror", "drama"},
		{"m4", "Hidden Canyon", "drama"},
		{"m5", "Electric Parade", "comedy"},
		{"m6", "Midnight Archive", "thriller"},
	}
	for _, r := range rows {
		db.MustInsert("movies", r.id, r.title+" (2007)", "2007")
		db.MustInsert("mov2genres", r.id, r.genre)
	}

	target := dlearn.NewRelation("highGrossing", dlearn.Attr("title", "bom_title"))
	b := dlearn.NewProblem(target).
		OnInstance(db).
		WithMDs(dlearn.SimpleMD("md_title", "highGrossing", "title", "movies", "title")).
		WithCFDs(dlearn.NewCFD("cfd_year", "movies", []string{"id"}, "year", map[string]string{"year": "2007"}))
	for _, r := range rows {
		if r.genre == "comedy" {
			b.PosValues(r.title)
		} else {
			b.NegValues(r.title)
		}
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func serveOptions() wire.Options {
	return wire.Options{
		Seed:                 7,
		Threads:              2,
		Iterations:           2,
		TopMatches:           2,
		GeneralizationSample: 3,
		MaxClauses:           3,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, &Client{BaseURL: ts.URL, Tenant: "test"}
}

// gate blocks every engine run at its first observer event until released,
// making in-flight jobs deterministic for admission and cancel tests.
type gate struct {
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) Observe(observe.Event) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
}

func (g *gate) waitEntered(t *testing.T) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("no job reached the gate")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEndByteIdentical is the tentpole acceptance test: a job submitted
// over HTTP must stream at least one progress event before its terminal
// event and learn a definition byte-identical to a direct Engine.Learn with
// the same options.
func TestEndToEndByteIdentical(t *testing.T) {
	_, client := newTestServer(t, Config{MaxConcurrent: 2})

	p := serveProblem(t)
	var progress int
	res, err := client.Learn(context.Background(), p, serveOptions(), func(dlearn.Event) {
		progress++
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress < 1 {
		t.Error("no progress events streamed before the terminal event")
	}

	engOpts, err := serveOptions().EngineOptions()
	if err != nil {
		t.Fatal(err)
	}
	def, _, err := dlearn.New(engOpts...).Learn(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Definition != def.String() {
		t.Fatalf("remote definition differs from direct Engine.Learn:\n--- remote ---\n%s\n--- direct ---\n%s",
			res.Definition, def)
	}
	if res.Target != def.Target {
		t.Errorf("target = %q, want %q", res.Target, def.Target)
	}
	if len(res.Clauses) != len(def.Clauses) {
		t.Errorf("clauses = %d, want %d", len(res.Clauses), len(def.Clauses))
	}
	if res.Report.DurationSeconds <= 0 {
		t.Error("report carries no duration")
	}
}

// TestSSEStreamReplaysAndTerminates checks that a subscriber attaching after
// completion still replays the full event log, ending with the terminal
// result event, and that event payloads decode via the observe codec.
func TestSSEStreamReplaysAndTerminates(t *testing.T) {
	s, client := newTestServer(t, Config{})

	acc, err := client.Submit(context.Background(), func() wire.Problem {
		wp := wire.EncodeProblem(serveProblem(t))
		wp.Options = serveOptions()
		return wp
	}())
	if err != nil {
		t.Fatal(err)
	}
	j, ok := s.Job(acc.ID)
	if !ok {
		t.Fatal("job not registered")
	}
	waitFor(t, "job completion", func() bool { return terminal(j.State()) })

	var names []string
	var last SSEEvent
	if err := client.Stream(context.Background(), acc.ID, func(ev SSEEvent) error {
		names = append(names, ev.Name)
		last = ev
		if ev.Name != wire.EventResult && ev.Name != wire.EventError {
			if _, err := observe.UnmarshalEvent(ev.Data); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Fatalf("replay produced %d events, want at least a progress and a terminal event", len(names))
	}
	if last.Name != wire.EventResult {
		t.Fatalf("stream terminated with %q, want %q (events: %s)", last.Name, wire.EventResult, strings.Join(names, ", "))
	}
	var res wire.Result
	if err := json.Unmarshal(last.Data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Definition == "" {
		t.Error("terminal result has no definition")
	}

	st, err := client.Status(context.Background(), acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != wire.StateDone || st.Result == nil || st.Events != len(names) {
		t.Errorf("status = %+v, want done with %d events and a result", st, len(names))
	}
}

// TestAdmissionQueueFull pins the 429 path: with one worker held at the gate
// and a single queue slot taken, the next submission is rejected with 429
// and a Retry-After header.
func TestAdmissionQueueFull(t *testing.T) {
	g := newGate()
	defer close(g.release)
	_, client := newTestServer(t, Config{
		MaxQueued:     1,
		MaxConcurrent: 1,
		MaxPerTenant:  -1,
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})

	wp := wire.EncodeProblem(serveProblem(t))
	wp.Options = serveOptions()

	if _, err := client.Submit(context.Background(), wp); err != nil {
		t.Fatal(err)
	}
	g.waitEntered(t) // first job is running, holding the only worker
	if _, err := client.Submit(context.Background(), wp); err != nil {
		t.Fatal(err) // second job occupies the single queue slot
	}

	data, _ := json.Marshal(wp)
	req, _ := http.NewRequest(http.MethodPost, client.BaseURL+"/v1/jobs", strings.NewReader(string(data)))
	req.Header.Set("X-Tenant", "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestAdmissionTenantCap pins the per-tenant in-flight cap: one tenant at
// its cap is rejected while another tenant is still admitted.
func TestAdmissionTenantCap(t *testing.T) {
	g := newGate()
	defer close(g.release)
	_, client := newTestServer(t, Config{
		MaxQueued:     8,
		MaxConcurrent: 1,
		MaxPerTenant:  1,
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})

	wp := wire.EncodeProblem(serveProblem(t))
	wp.Options = serveOptions()

	if _, err := client.Submit(context.Background(), wp); err != nil {
		t.Fatal(err)
	}
	g.waitEntered(t)

	_, err := client.Submit(context.Background(), wp)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same-tenant submission got %v, want 429", err)
	}

	other := &Client{BaseURL: client.BaseURL, Tenant: "other"}
	if _, err := other.Submit(context.Background(), wp); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestCancelRunningJob holds a job at the gate mid-run, cancels it over
// HTTP, and requires the stream to terminate with a cancelled error event.
func TestCancelRunningJob(t *testing.T) {
	g := newGate()
	s, client := newTestServer(t, Config{
		MaxConcurrent: 1,
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})

	wp := wire.EncodeProblem(serveProblem(t))
	wp.Options = serveOptions()
	acc, err := client.Submit(context.Background(), wp)
	if err != nil {
		t.Fatal(err)
	}
	g.waitEntered(t)

	st, err := client.Cancel(context.Background(), acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != wire.StateRunning && st.State != wire.StateCancelled {
		t.Fatalf("state right after cancel = %q", st.State)
	}
	close(g.release) // unblock the observer; the engine must now unwind

	j, _ := s.Job(acc.ID)
	waitFor(t, "cancellation", func() bool { return j.State() == wire.StateCancelled })

	var last SSEEvent
	if err := client.Stream(context.Background(), acc.ID, func(ev SSEEvent) error {
		last = ev
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if last.Name != wire.EventError {
		t.Fatalf("terminal event = %q, want %q", last.Name, wire.EventError)
	}
	var je wire.JobError
	if err := json.Unmarshal(last.Data, &je); err != nil {
		t.Fatal(err)
	}
	if je.State != wire.StateCancelled {
		t.Errorf("terminal state = %q, want cancelled", je.State)
	}
}

// TestCancelQueuedJob cancels a job that never started; it must resolve to
// cancelled immediately, without waiting for a worker.
func TestCancelQueuedJob(t *testing.T) {
	g := newGate()
	defer close(g.release)
	_, client := newTestServer(t, Config{
		MaxQueued:     4,
		MaxConcurrent: 1,
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})

	wp := wire.EncodeProblem(serveProblem(t))
	wp.Options = serveOptions()
	if _, err := client.Submit(context.Background(), wp); err != nil {
		t.Fatal(err)
	}
	g.waitEntered(t)
	queued, err := client.Submit(context.Background(), wp)
	if err != nil {
		t.Fatal(err)
	}

	st, err := client.Cancel(context.Background(), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != wire.StateCancelled {
		t.Fatalf("queued job state after cancel = %q, want cancelled immediately", st.State)
	}
}

// TestGracefulShutdownDrains verifies that Shutdown rejects new work at once
// but lets the in-flight job finish.
func TestGracefulShutdownDrains(t *testing.T) {
	g := newGate()
	s, err := New(Config{
		MaxConcurrent: 1,
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := serveProblem(t)

	j, err := s.Submit("t", p, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	g.waitEntered(t)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitFor(t, "draining to start", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})
	if _, err := s.Submit("t", p, serveOptions()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission while draining got %v, want ErrDraining", err)
	}

	close(g.release)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if j.State() != wire.StateDone {
		t.Fatalf("in-flight job drained to %q, want done", j.State())
	}
	if st := s.Stats(); st.RejectedDraining < 1 || st.Completed != 1 {
		t.Errorf("stats after drain = %+v", st)
	}
}

// TestHardShutdownCancelsJobs verifies the other half of the shutdown
// contract: when the drain deadline expires, in-flight jobs are cancelled by
// the server and must terminate as cancelled — not as failed with a bare
// "context canceled", which would misreport a server decision as a job error.
func TestHardShutdownCancelsJobs(t *testing.T) {
	g := newGate()
	s, err := New(Config{
		MaxConcurrent: 1,
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := serveProblem(t)
	j, err := s.Submit("t", p, serveOptions())
	if err != nil {
		t.Fatal(err)
	}
	g.waitEntered(t)

	// An already-expired drain deadline forces the hard path at once; the
	// engine is still blocked on the gate, so the job cannot drain in time.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	// Shutdown only returns after its workers exit, so the gate must be
	// released while it waits; the unblocked engine then observes the
	// cancelled base context.
	close(g.release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("hard shutdown returned %v, want context.Canceled", err)
	}

	if got := j.State(); got != wire.StateCancelled {
		t.Fatalf("hard-shutdown job terminated %q (%s), want cancelled", got, j.Status().Error)
	}
	if msg := j.Status().Error; !strings.Contains(msg, "shutdown") {
		t.Errorf("hard-shutdown job error = %q, want it to name the shutdown", msg)
	}
	if st := s.Stats(); st.Cancelled != 1 || st.Failed != 0 {
		t.Errorf("hard-shutdown stats = %+v, want 1 cancelled / 0 failed", st)
	}
}

// TestSharedSnapshotStoreDedupes submits the same problem from two tenants
// against one shared store: the second job must warm-start from the first
// tenant's preparation and still learn the identical definition. The result
// cache is disabled so the second job actually reaches the engine — with the
// cache on, an identical resubmission never runs at all (covered by the
// result-cache tests).
func TestSharedSnapshotStoreDedupes(t *testing.T) {
	store := dlearn.NewDirSnapshotStore(t.TempDir())
	_, client := newTestServer(t, Config{MaxConcurrent: 1, Store: store, ResultCacheMaxBytes: -1})

	p := serveProblem(t)
	first, err := client.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Report.SnapshotHit {
		t.Fatal("first run cannot be a snapshot hit")
	}

	other := &Client{BaseURL: client.BaseURL, Tenant: "other"}
	second, err := other.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Report.SnapshotHit {
		t.Error("second tenant's identical job missed the shared snapshot store")
	}
	if second.Definition != first.Definition {
		t.Errorf("warm-started definition differs:\n%s\nvs\n%s", second.Definition, first.Definition)
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotHits < 1 || st.SnapshotHitRate <= 0 {
		t.Errorf("stats do not reflect the snapshot hit: %+v", st)
	}
	if st.SnapshotStoreFiles < 1 || st.SnapshotStoreBytes <= 0 {
		t.Errorf("stats do not size the shared store: %+v", st)
	}
	if st.SchedulerBatches < 1 || st.SchedulerCandidates < 1 {
		t.Errorf("stats carry no scheduler telemetry: %+v", st)
	}
}

// TestSubmitRejectsMalformed covers the 400 paths.
func TestSubmitRejectsMalformed(t *testing.T) {
	_, client := newTestServer(t, Config{})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(client.BaseURL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("syntactically invalid body: %d, want 400", code)
	}
	if code := post(`{"target":{"name":""},"relations":[],"pos":[]}`); code != http.StatusBadRequest {
		t.Errorf("semantically invalid problem: %d, want 400", code)
	}
	wp := wire.EncodeProblem(serveProblem(t))
	wp.Options = wire.Options{MDMode: "telepathy"}
	data, _ := json.Marshal(wp)
	if code := post(string(data)); code != http.StatusBadRequest {
		t.Errorf("invalid options: %d, want 400", code)
	}

	resp, err := http.Get(client.BaseURL + "/v1/jobs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}
