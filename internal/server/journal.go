package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dlearn/internal/fault"
	"dlearn/internal/server/wire"
)

// The job journal makes accepted jobs durable across server restarts. Every
// admitted job is written as one JSON record file under the journal
// directory (mirroring persist.DirStore's one-file-per-entry, atomic
// temp-plus-rename idiom); the record is rewritten once with the terminal
// state, result or error and the full event log when the job finishes. On
// boot the server replays the directory: terminal records are restored into
// the registry — status, result, event replay and /v1/stats outcomes survive
// the restart — and records still in a non-terminal state (queued at the
// crash, or running and never finished) are re-enqueued and re-run from
// scratch. The wire codec serializes the whole problem, so a recovered job
// learns exactly what the original submission would have.

// jobFileExt is the extension of journal record files.
const jobFileExt = ".job"

// journalEvent is one persisted stream event: the SSE event name plus its
// JSON payload.
type journalEvent struct {
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

// journalRecord is the persisted form of one job. Problem embeds the per-job
// wire options (including the requested timeout), so the record alone is
// enough to re-run the job.
type journalRecord struct {
	ID          string       `json:"id"`
	Tenant      string       `json:"tenant"`
	State       string       `json:"state"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   time.Time    `json:"started_at,omitzero"`
	FinishedAt  time.Time    `json:"finished_at,omitzero"`
	Problem     wire.Problem `json:"problem"`
	Error       string       `json:"error,omitempty"`
	Result      *wire.Result `json:"result,omitempty"`
	// ResultKey is the hex result-cache key of a completed job, stored so a
	// restart can repopulate the result cache without recomputing the
	// fingerprint.
	ResultKey string         `json:"result_key,omitempty"`
	Events    []journalEvent `json:"events,omitempty"`
	// Degraded marks a job whose persistence degraded mid-flight (a journal
	// or snapshot write failed and the server carried on in memory), so the
	// flag survives a restart along with the rest of the record.
	Degraded bool `json:"degraded,omitempty"`
}

// journal persists job records in one directory, one file per job ID.
type journal struct {
	dir string
	// faults, when non-nil, injects write failures at the "journal.admit"
	// (queued record) and "journal.finish" (terminal rewrite) seams.
	faults *fault.Injector
}

// openJournal prepares a journal rooted at dir, creating the directory so an
// unwritable location fails at boot rather than at the first submission.
func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating job journal dir: %w", err)
	}
	return &journal{dir: dir}, nil
}

func (jl *journal) path(id string) string {
	return filepath.Join(jl.dir, id+jobFileExt)
}

// save writes a record atomically: temp file in the same directory, then
// rename over the final name, so a crash can leave at worst a stale temp
// file, never a torn record.
func (jl *journal) save(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: encoding journal record %s: %w", rec.ID, err)
	}
	point := "journal.finish"
	if rec.State == wire.StateQueued {
		point = "journal.admit"
	}
	if f := jl.faults.Fire(point); f != nil {
		if f.Kind == fault.KindTorn {
			// A torn record under the final name — what a crash mid-write can
			// leave on a non-atomic filesystem. load sets it aside as .corrupt.
			_ = os.WriteFile(jl.path(rec.ID), f.Torn(data), 0o644)
		}
		return f.Err()
	}
	tmp, err := os.CreateTemp(jl.dir, rec.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("server: creating journal temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("server: writing journal record %s: %w", rec.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: writing journal record %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmpName, jl.path(rec.ID)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: committing journal record %s: %w", rec.ID, err)
	}
	return nil
}

// remove deletes a job's record (best effort — retention eviction must not
// fail on a journal hiccup; the stale record is simply re-evicted next boot).
func (jl *journal) remove(id string) {
	os.Remove(jl.path(id))
}

// load reads every record in the journal. Corrupt or unreadable records are
// renamed aside with a .corrupt suffix, skipped and counted — one damaged
// file must not take down recovery of the rest, and the count surfaces in
// /v1/stats so set-aside records are never silently dropped. Records are
// returned sorted by submission time (ties broken by ID) so re-enqueued jobs
// keep their original admission order.
func (jl *journal) load() (recs []journalRecord, corrupt int, err error) {
	entries, err := os.ReadDir(jl.dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("server: reading job journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, jobFileExt) {
			continue
		}
		path := filepath.Join(jl.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(data, &rec) != nil || rec.ID == "" ||
			rec.ID+jobFileExt != name {
			os.Rename(path, path+".corrupt")
			corrupt++
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].SubmittedAt.Equal(recs[j].SubmittedAt) {
			return recs[i].SubmittedAt.Before(recs[j].SubmittedAt)
		}
		return recs[i].ID < recs[j].ID
	})
	return recs, corrupt, nil
}

// truncateEvents caps a record's serialized event log at maxBytes, dropping
// the oldest events first and prepending a wire.EventLogTruncated marker so a
// replaying client can tell the log is partial. The terminal event always
// survives (the cap is applied to the front of the log). maxBytes <= 0 means
// unbounded.
func truncateEvents(events []journalEvent, maxBytes int) []journalEvent {
	if maxBytes <= 0 {
		return events
	}
	total := 0
	sizes := make([]int, len(events))
	for i, ev := range events {
		sizes[i] = len(ev.Name) + len(ev.Data) + 32 // field names, quoting, commas
		total += sizes[i]
	}
	if total <= maxBytes {
		return events
	}
	drop := 0
	for drop < len(events)-1 && total > maxBytes {
		total -= sizes[drop]
		drop++
	}
	marker, _ := json.Marshal(map[string]int{"dropped": drop})
	out := make([]journalEvent, 0, len(events)-drop+1)
	out = append(out, journalEvent{Name: wire.EventLogTruncated, Data: marker})
	return append(out, events[drop:]...)
}
