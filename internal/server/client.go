package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"dlearn"
	"dlearn/internal/observe"
	"dlearn/internal/server/wire"
)

// Client talks to a dlearn-serve instance over its HTTP API. It is what
// dlearn-learn's -remote flag and the end-to-end tests use, so client and
// server always share the same wire codec.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant, when non-empty, is sent as the X-Tenant header.
	Tenant string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

func decodeAPIError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(raw, &body) != nil || body.Error == "" {
		body.Error = string(bytes.TrimSpace(raw))
	}
	return &APIError{StatusCode: resp.StatusCode, Message: body.Error}
}

// Submit posts a problem and returns the accepted job.
func (c *Client) Submit(ctx context.Context, p wire.Problem) (wire.JobAccepted, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return wire.JobAccepted{}, err
	}
	var acc wire.JobAccepted
	err = c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(data), &acc)
	return acc, err
}

// Status fetches a job's status.
func (c *Client) Status(ctx context.Context, id string) (wire.JobStatus, error) {
	var st wire.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (wire.JobStatus, error) {
	var st wire.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Stats fetches the server counters.
func (c *Client) Stats(ctx context.Context) (wire.Stats, error) {
	var st wire.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Stream follows a job's SSE stream, invoking fn per event until the stream
// ends (the server closes it after the terminal event) or fn errors.
func (c *Client) Stream(ctx context.Context, id string, fn func(SSEEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return ReadSSE(resp.Body, fn)
}

// Learn runs a problem remotely end to end: submit, follow the stream
// (forwarding decoded observer events to onEvent, which may be nil), and
// return the terminal result. A terminal "error" event — including a
// cancellation — is returned as a *RemoteJobError.
func (c *Client) Learn(ctx context.Context, p *dlearn.Problem, opts wire.Options, onEvent func(dlearn.Event)) (wire.Result, error) {
	wp := wire.EncodeProblem(p)
	wp.Options = opts
	acc, err := c.Submit(ctx, wp)
	if err != nil {
		return wire.Result{}, err
	}
	var (
		result   wire.Result
		terminal bool
	)
	err = c.Stream(ctx, acc.ID, func(ev SSEEvent) error {
		switch ev.Name {
		case wire.EventResult:
			if err := json.Unmarshal(ev.Data, &result); err != nil {
				return fmt.Errorf("decoding result event: %w", err)
			}
			terminal = true
		case wire.EventError:
			var je wire.JobError
			if err := json.Unmarshal(ev.Data, &je); err != nil {
				return fmt.Errorf("decoding error event: %w", err)
			}
			return &RemoteJobError{State: je.State, Message: je.Error}
		default:
			if onEvent != nil {
				if oe, err := observe.UnmarshalEvent(ev.Data); err == nil {
					onEvent(oe)
				}
			}
		}
		return nil
	})
	if err != nil {
		return wire.Result{}, err
	}
	if !terminal {
		return wire.Result{}, fmt.Errorf("job %s: event stream ended without a terminal event", acc.ID)
	}
	return result, nil
}

// RemoteJobError reports a job that finished in a failed or cancelled state.
type RemoteJobError struct {
	State   string
	Message string
}

func (e *RemoteJobError) Error() string {
	return fmt.Sprintf("remote job %s: %s", e.State, e.Message)
}
