package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dlearn"
	"dlearn/internal/observe"
	"dlearn/internal/server/wire"
)

// Backoff configures the client's retry policy: capped exponential backoff
// with seeded jitter. The zero value disables retries entirely.
type Backoff struct {
	// Retries is how many retry attempts follow the first try; zero disables
	// retrying.
	Retries int
	// Base is the first retry's delay, doubling per attempt. Zero means
	// 200ms when Retries is positive.
	Base time.Duration
	// Max caps the delay an attempt may wait (after the server's Retry-After,
	// which is always honored in full). Zero means 5 seconds.
	Max time.Duration
	// Seed drives the jitter deterministically, so a scripted run retries at
	// reproducible instants. Zero means 1.
	Seed int64
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 200 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 5 * time.Second
	}
	return b.Max
}

// Client talks to a dlearn-serve instance over its HTTP API. It is what
// dlearn-learn's -remote flag and the end-to-end tests use, so client and
// server always share the same wire codec.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant, when non-empty, is sent as the X-Tenant header.
	Tenant string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry enables retrying: Submit retries admission rejections (429/503,
	// honoring Retry-After), and Learn reconnects a dropped event stream with
	// Last-Event-ID, resuming where it left off. The zero value disables
	// both.
	Retry Backoff

	// sleep waits between attempts; tests stub it to run instantly. Nil
	// means a real timer wait that respects ctx.
	sleep func(context.Context, time.Duration) error

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// delay computes the wait before retry attempt (1-based): capped exponential
// backoff from the policy with ±25% seeded jitter, never less than the
// server's Retry-After hint.
func (c *Client) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := c.Retry.base() << (attempt - 1)
	if max := c.Retry.max(); d > max || d <= 0 { // <<-overflow guard
		d = max
	}
	c.jitterMu.Lock()
	if c.jitter == nil {
		seed := c.Retry.Seed
		if seed == 0 {
			seed = 1
		}
		c.jitter = rand.New(rand.NewSource(seed))
	}
	d += time.Duration((c.jitter.Float64() - 0.5) * 0.5 * float64(d))
	c.jitterMu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// wait sleeps for d or until ctx is cancelled.
func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the parsed Retry-After header of a 429/503 response,
	// zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// retryable reports whether the rejection is transient: the server said
// "not now" (queue full, tenant cap, draining), not "never".
func (e *APIError) retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests ||
		e.StatusCode == http.StatusServiceUnavailable
}

func decodeAPIError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(raw, &body) != nil || body.Error == "" {
		body.Error = string(bytes.TrimSpace(raw))
	}
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: body.Error}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	return apiErr
}

// Submit posts a problem and returns the accepted job. With retries enabled
// (Client.Retry), transient admission rejections — 429 queue-full or
// tenant-cap, 503 draining — are retried with capped exponential backoff,
// honoring the server's Retry-After hint. Transport errors are NOT retried:
// a POST that died mid-flight may have been admitted, and resubmitting it
// blind could run the job twice.
func (c *Client) Submit(ctx context.Context, p wire.Problem) (wire.JobAccepted, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return wire.JobAccepted{}, err
	}
	var acc wire.JobAccepted
	for attempt := 0; ; attempt++ {
		err = c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(data), &acc)
		var apiErr *APIError
		if err == nil || attempt >= c.Retry.Retries ||
			!errors.As(err, &apiErr) || !apiErr.retryable() {
			return acc, err
		}
		if werr := c.wait(ctx, c.delay(attempt+1, apiErr.RetryAfter)); werr != nil {
			return acc, err
		}
	}
}

// Status fetches a job's status.
func (c *Client) Status(ctx context.Context, id string) (wire.JobStatus, error) {
	var st wire.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (wire.JobStatus, error) {
	var st wire.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Stats fetches the server counters.
func (c *Client) Stats(ctx context.Context) (wire.Stats, error) {
	var st wire.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Stream follows a job's SSE stream from the beginning, invoking fn per
// event until the stream ends (the server closes it after the terminal
// event) or fn errors.
func (c *Client) Stream(ctx context.Context, id string, fn func(SSEEvent) error) error {
	return c.StreamFrom(ctx, id, "", fn)
}

// StreamFrom follows a job's SSE stream, resuming after lastEventID when
// non-empty (sent as the Last-Event-ID header, so the server replays only
// what this client has not yet seen).
func (c *Client) StreamFrom(ctx context.Context, id, lastEventID string, fn func(SSEEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return ReadSSE(resp.Body, fn)
}

// Learn runs a problem remotely end to end: submit, follow the stream
// (forwarding decoded observer events to onEvent, which may be nil), and
// return the terminal result. A terminal "error" event — including a
// cancellation — is returned as a *RemoteJobError.
//
// With retries enabled (Client.Retry), a stream that drops before its
// terminal event — the connection broke, or the server shed this client as
// too slow — is reconnected with Last-Event-ID, so the replay resumes after
// the last event already seen and no event is delivered twice. The retry
// budget resets whenever a reconnect makes progress; only consecutive
// fruitless reconnects exhaust it. Safe because GET is idempotent and the
// job keeps running server-side regardless of who is watching.
func (c *Client) Learn(ctx context.Context, p *dlearn.Problem, opts wire.Options, onEvent func(dlearn.Event)) (wire.Result, error) {
	wp := wire.EncodeProblem(p)
	wp.Options = opts
	acc, err := c.Submit(ctx, wp)
	if err != nil {
		return wire.Result{}, err
	}
	var (
		result   wire.Result
		terminal bool
		lastID   string
	)
	handle := func(ev SSEEvent) error {
		if ev.ID != "" {
			lastID = ev.ID
		}
		switch ev.Name {
		case wire.EventResult:
			if err := json.Unmarshal(ev.Data, &result); err != nil {
				return &streamDecodeError{event: wire.EventResult, err: err}
			}
			terminal = true
		case wire.EventError:
			var je wire.JobError
			if err := json.Unmarshal(ev.Data, &je); err != nil {
				return &streamDecodeError{event: wire.EventError, err: err}
			}
			return &RemoteJobError{State: je.State, Message: je.Error}
		default:
			if onEvent != nil {
				if oe, err := observe.UnmarshalEvent(ev.Data); err == nil {
					onEvent(oe)
				}
			}
		}
		return nil
	}
	for attempt := 0; ; attempt++ {
		before := lastID
		err = c.StreamFrom(ctx, acc.ID, lastID, handle)
		if terminal && err == nil {
			return result, nil
		}
		if err != nil && !streamRetryable(err) {
			return wire.Result{}, err
		}
		// The stream ended (or broke) without a terminal event: the server
		// dropped us, or the connection did. Progress resets the budget.
		if lastID != before {
			attempt = 0
		}
		if attempt >= c.Retry.Retries {
			if err == nil {
				err = fmt.Errorf("job %s: event stream ended without a terminal event", acc.ID)
			}
			return wire.Result{}, err
		}
		if werr := c.wait(ctx, c.delay(attempt+1, 0)); werr != nil {
			return wire.Result{}, werr
		}
	}
}

// streamRetryable classifies a stream error for the reconnect loop.
// Transport-level failures are retryable: the job keeps running server-side,
// so watching it again can only help. A *RemoteJobError is the job's real
// outcome and a decode error is a protocol bug — neither is cured by
// reconnecting — and an API rejection other than a transient 429/503 (say, a
// 404 after the server lost the job) will never succeed.
func streamRetryable(err error) bool {
	var remoteErr *RemoteJobError
	if errors.As(err, &remoteErr) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.retryable()
	}
	var decodeErr *streamDecodeError
	return !errors.As(err, &decodeErr)
}

// RemoteJobError reports a job that finished in a failed or cancelled state.
type RemoteJobError struct {
	State   string
	Message string
}

func (e *RemoteJobError) Error() string {
	return fmt.Sprintf("remote job %s: %s", e.State, e.Message)
}

// streamDecodeError reports a terminal event whose payload did not decode —
// a protocol-level failure the reconnect loop must not retry.
type streamDecodeError struct {
	event string
	err   error
}

func (e *streamDecodeError) Error() string {
	return fmt.Sprintf("decoding %s event: %v", e.event, e.err)
}

func (e *streamDecodeError) Unwrap() error { return e.err }
