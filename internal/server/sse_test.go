package server

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestReadSSEFieldSyntax pins ReadSSE to the SSE spec's field grammar: the
// space after the colon is optional, a line without a colon is a field with
// an empty value, comment lines are skipped, and multiple data lines join
// with a newline.
func TestReadSSEFieldSyntax(t *testing.T) {
	stream := strings.Join([]string{
		": keep-alive comment",
		"id:0",           // no space after the colon
		"event:progress", // no space
		"data:{\"a\":1}", // no space; value itself contains colons
		"",
		"id: 1", // single space, stripped
		"event: result",
		"data: line1",
		"data:line2", // mixed spacing within one event
		"",
		"event",             // no colon at all: field with empty value
		"data:  two spaces", // only the first space is stripped
		"",
	}, "\n")

	var got []SSEEvent
	if err := ReadSSE(strings.NewReader(stream), func(ev SSEEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []SSEEvent{
		{ID: "0", Name: "progress", Data: []byte(`{"a":1}`)},
		{ID: "1", Name: "result", Data: []byte("line1\nline2")},
		{ID: "", Name: "", Data: []byte(" two spaces")},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Name != want[i].Name || string(got[i].Data) != string(want[i].Data) {
			t.Errorf("event %d = {%q %q %q}, want {%q %q %q}",
				i, got[i].ID, got[i].Name, got[i].Data, want[i].ID, want[i].Name, want[i].Data)
		}
	}
}

// TestWriteSSERoundTripsThroughReadSSE keeps the writer and the stricter
// parser in agreement.
func TestWriteSSERoundTrips(t *testing.T) {
	var sb strings.Builder
	if err := writeSSE(&sb, 42, "result", []byte(`{"x":"y"}`)); err != nil {
		t.Fatal(err)
	}
	var got []SSEEvent
	if err := ReadSSE(strings.NewReader(sb.String()), func(ev SSEEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "42" || got[0].Name != "result" || string(got[0].Data) != `{"x":"y"}` {
		t.Fatalf("round trip produced %+v", got)
	}
}

// streamFrom reads a finished job's event stream with a Last-Event-ID header
// and returns the events received.
func streamFrom(t *testing.T, baseURL, jobID, lastEventID string) []SSEEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events with Last-Event-ID %q: status %d", lastEventID, resp.StatusCode)
	}
	var got []SSEEvent
	if err := ReadSSE(resp.Body, func(ev SSEEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestEventsResumeAfterLastEventID pins the reconnect contract: a client that
// saw event N and resumes with Last-Event-ID: N receives event N+1 first —
// no duplicates, no gap.
func TestEventsResumeAfterLastEventID(t *testing.T) {
	s, client := newTestServer(t, Config{MaxConcurrent: 1})
	p := serveProblem(t)
	if _, err := client.Learn(context.Background(), p, serveOptions(), nil); err != nil {
		t.Fatal(err)
	}

	// Recover the job ID, then take a full replay as the baseline.
	jobID := findOnlyJobID(t, s)
	all := streamFrom(t, client.BaseURL, jobID, "")
	if len(all) < 2 {
		t.Fatalf("job emitted only %d events; need at least 2 to test resume", len(all))
	}
	for i, ev := range all {
		if ev.ID != strconv.Itoa(i) {
			t.Fatalf("full replay event %d has id %q", i, ev.ID)
		}
	}

	// Resume from the middle: the first event received must be lastSeen+1.
	lastSeen := len(all) - 2
	resumed := streamFrom(t, client.BaseURL, jobID, strconv.Itoa(lastSeen))
	if len(resumed) != len(all)-lastSeen-1 {
		t.Fatalf("resume after id %d returned %d events, want %d", lastSeen, len(resumed), len(all)-lastSeen-1)
	}
	if resumed[0].ID != strconv.Itoa(lastSeen+1) {
		t.Errorf("resume after id %d started at id %q, want %d (duplicate of the last-seen event)",
			lastSeen, resumed[0].ID, lastSeen+1)
	}

	// A client that saw the terminal event has nothing left to replay.
	if tail := streamFrom(t, client.BaseURL, jobID, strconv.Itoa(len(all)-1)); len(tail) != 0 {
		t.Errorf("resume after the terminal event replayed %d events, want 0", len(tail))
	}
}

// TestEventsHostileLastEventID sends garbage and out-of-range Last-Event-ID
// headers; the server must never panic, and unparsable or negative values
// fall back to a full replay.
func TestEventsHostileLastEventID(t *testing.T) {
	s, client := newTestServer(t, Config{MaxConcurrent: 1})
	p := serveProblem(t)
	if _, err := client.Learn(context.Background(), p, serveOptions(), nil); err != nil {
		t.Fatal(err)
	}
	jobID := findOnlyJobID(t, s)
	full := streamFrom(t, client.BaseURL, jobID, "")

	// (A value like " 2" is absent: the HTTP layer trims optional whitespace,
	// so it arrives as a legitimate "2" and resumes.)
	for _, hostile := range []string{"-1", "-999999", "garbage", "1e3", "2.5", "0x10"} {
		got := streamFrom(t, client.BaseURL, jobID, hostile)
		if len(got) != len(full) {
			t.Errorf("Last-Event-ID %q replayed %d events, want full replay of %d", hostile, len(got), len(full))
		}
	}
	// A far-future index has nothing to replay but must still terminate.
	if got := streamFrom(t, client.BaseURL, jobID, "1000000"); len(got) != 0 {
		t.Errorf("Last-Event-ID 1000000 replayed %d events, want 0", len(got))
	}
}

// findOnlyJobID returns the ID of the single job a test server holds (the
// API has no job listing, and Client.Learn does not surface the ID).
func findOnlyJobID(t *testing.T, s *Server) string {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) != 1 {
		t.Fatalf("server holds %d jobs, want exactly 1", len(s.jobs))
	}
	for id := range s.jobs {
		return id
	}
	return ""
}
