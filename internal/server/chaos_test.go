package server

// The chaos suite replays seeded fault schedules against a live server and
// asserts the hardening invariants: the server never crashes, every submitted
// job reaches a terminal state, degradation is visible (status flags, stats
// counters, stream events) rather than silent, and completed definitions are
// byte-identical to a fault-free run. Each test is one schedule, written in
// the fault package's grammar so the -fault-schedule flag path is exercised
// end to end. CI runs the whole suite under -race as the chaos-smoke job
// (every test here matches -run 'TestChaos').

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dlearn"
	"dlearn/internal/fault"
	"dlearn/internal/server/wire"
)

// chaosBaseline learns the suite's problem directly, with no server and no
// faults: the definition every chaotic run must still produce byte-for-byte.
func chaosBaseline(t *testing.T) string {
	t.Helper()
	engOpts, err := serveOptions().EngineOptions()
	if err != nil {
		t.Fatal(err)
	}
	def, _, err := dlearn.New(engOpts...).Learn(context.Background(), serveProblem(t))
	if err != nil {
		t.Fatal(err)
	}
	return def.String()
}

// chaosSchedule parses a schedule in the -fault-schedule grammar.
func chaosSchedule(t *testing.T, spec string, seed int64) *fault.Injector {
	t.Helper()
	inj, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil {
		t.Fatalf("schedule %q parsed to no injector", spec)
	}
	return inj
}

// TestChaosSnapshotWriteFailure injects a disk-write failure into the shared
// snapshot store: the job must complete anyway (degraded, counted, identical
// definition) and the next identical job re-prepares from scratch because
// nothing was persisted.
func TestChaosSnapshotWriteFailure(t *testing.T) {
	faults := chaosSchedule(t, "persist.save:hit=1:error=disk full", 1)
	store := dlearn.NewDirSnapshotStore(t.TempDir()).SetFaults(faults)
	s, client := newTestServer(t, Config{
		MaxConcurrent:       1,
		Store:               store,
		ResultCacheMaxBytes: -1, // every submission must reach the engine
		Faults:              faults,
	})

	p := serveProblem(t)
	first, err := client.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatalf("job failed on a snapshot write fault: %v", err)
	}
	want := chaosBaseline(t)
	if first.Definition != want {
		t.Errorf("definition under snapshot fault differs from fault-free run")
	}
	st := s.Stats()
	if st.SnapshotWriteFailures != 1 || st.DegradedJobs != 1 {
		t.Errorf("stats = %d write failures / %d degraded jobs, want 1/1",
			st.SnapshotWriteFailures, st.DegradedJobs)
	}
	jobID := findOnlyJobID(t, s)
	if jst, err := client.Status(context.Background(), jobID); err != nil || !jst.Degraded {
		t.Errorf("job status not flagged degraded after snapshot write failure (err=%v)", err)
	}

	// The failed save persisted nothing: the identical resubmission misses
	// the store, re-prepares, and still lands on the same bytes.
	second, err := client.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.SnapshotHit {
		t.Error("second job warm-started from a snapshot whose write failed")
	}
	if second.Definition != want {
		t.Errorf("post-fault definition differs from fault-free run")
	}
}

// TestChaosTornSnapshotWrite tears the snapshot write so a truncated payload
// lands under the final name — what a crash between write and fsync leaves
// behind. The codec's checksum must catch it on the next load as a graceful
// miss, never as a failed job.
func TestChaosTornSnapshotWrite(t *testing.T) {
	faults := chaosSchedule(t, "persist.save:hit=1:torn=crash at fsync:keep=64", 1)
	store := dlearn.NewDirSnapshotStore(t.TempDir()).SetFaults(faults)
	s, client := newTestServer(t, Config{
		MaxConcurrent:       1,
		Store:               store,
		ResultCacheMaxBytes: -1,
		Faults:              faults,
	})

	p := serveProblem(t)
	want := chaosBaseline(t)
	first, err := client.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatalf("job failed on a torn snapshot write: %v", err)
	}
	second, err := client.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatalf("job failed loading a torn snapshot: %v", err)
	}
	if second.Report.SnapshotHit {
		t.Error("torn snapshot served as a hit; the checksum should reject it")
	}
	if first.Definition != want || second.Definition != want {
		t.Errorf("definitions under torn snapshot differ from fault-free run")
	}
	if st := s.Stats(); st.SnapshotMisses != 2 {
		t.Errorf("snapshot misses = %d, want 2 (torn file must read as a miss)", st.SnapshotMisses)
	}
}

// TestChaosDegradedJournalAdmission fails the admission-time journal write:
// the job must be accepted and run to completion anyway — flagged degraded on
// its status, counted in stats and /readyz, and announced on its own event
// stream — instead of being turned away with a 500.
func TestChaosDegradedJournalAdmission(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxConcurrent: 1,
		JobDir:        t.TempDir(),
		Faults:        chaosSchedule(t, "journal.admit:hit=1:error=disk full", 1),
	})

	var degradedEvents int
	res, err := client.Learn(context.Background(), serveProblem(t), serveOptions(), func(e dlearn.Event) {
		if _, ok := e.(dlearn.PersistenceDegraded); ok {
			degradedEvents++
		}
	})
	if err != nil {
		t.Fatalf("job rejected or failed on a journal admission fault: %v", err)
	}
	if res.Definition != chaosBaseline(t) {
		t.Errorf("degraded job's definition differs from fault-free run")
	}
	if degradedEvents != 1 {
		t.Errorf("stream carried %d persistence_degraded events, want 1", degradedEvents)
	}
	st := s.Stats()
	if st.JournalWriteFailures != 1 || st.DegradedJobs != 1 {
		t.Errorf("stats = %d journal write failures / %d degraded jobs, want 1/1",
			st.JournalWriteFailures, st.DegradedJobs)
	}
	jst, err := client.Status(context.Background(), findOnlyJobID(t, s))
	if err != nil || !jst.Degraded {
		t.Errorf("job status not flagged degraded (err=%v)", err)
	}
	if rd := s.Ready(); !rd.Ready || rd.DegradedJobs != 1 {
		t.Errorf("Ready() = %+v, want ready with 1 degraded job", rd)
	}
}

// TestChaosTornJournalWrite tears the terminal journal rewrite mid-write, as
// a crash at fsync time would: the job still completes (degraded), and the
// restarted server sets the damaged record aside as .corrupt and counts it —
// a job may be lost to a torn disk, but never silently.
func TestChaosTornJournalWrite(t *testing.T) {
	dir := t.TempDir()
	s1, client1, stop1 := bootServer(t, Config{
		MaxConcurrent: 1,
		JobDir:        dir,
		Faults:        chaosSchedule(t, "journal.finish:hit=1:torn=crash at fsync", 1),
	})

	res, err := client1.Learn(context.Background(), serveProblem(t), serveOptions(), nil)
	if err != nil {
		t.Fatalf("job failed on a torn journal rewrite: %v", err)
	}
	if res.Definition != chaosBaseline(t) {
		t.Errorf("definition under torn journal write differs from fault-free run")
	}
	if st := s1.Stats(); st.JournalWriteFailures != 1 || st.DegradedJobs != 1 {
		t.Errorf("stats after torn rewrite = %d journal write failures / %d degraded, want 1/1",
			st.JournalWriteFailures, st.DegradedJobs)
	}
	stop1()

	s2, _, stop2 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir})
	defer stop2()
	st := s2.Stats()
	if st.JournalCorruptRecords != 1 {
		t.Errorf("restart counted %d corrupt records, want 1", st.JournalCorruptRecords)
	}
	if st.RecoveredJobs != 0 {
		t.Errorf("restart recovered %d jobs from a torn record, want 0", st.RecoveredJobs)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if err != nil || len(entries) != 1 {
		t.Errorf("torn record not set aside: %v files (%v)", entries, err)
	}
}

// TestChaosWorkerPanic is the panic-isolation pin: a panic injected into the
// learner's observer path terminates exactly that job as failed — recovered
// value and stack in both its status and its journal record — while the
// server keeps accepting and completing subsequent jobs byte-identically.
func TestChaosWorkerPanic(t *testing.T) {
	dir := t.TempDir()
	s, client := newTestServer(t, Config{
		MaxConcurrent:       1,
		JobDir:              dir,
		ResultCacheMaxBytes: -1,
		Faults:              chaosSchedule(t, "worker.observe:hit=2:panic=chaos monkey unleashed", 1),
	})

	p := serveProblem(t)
	_, err := client.Learn(context.Background(), p, serveOptions(), nil)
	var remoteErr *RemoteJobError
	if !errors.As(err, &remoteErr) || remoteErr.State != wire.StateFailed {
		t.Fatalf("panicked job returned %v, want a failed RemoteJobError", err)
	}
	if !strings.Contains(remoteErr.Message, "job panicked") ||
		!strings.Contains(remoteErr.Message, "chaos monkey unleashed") ||
		!strings.Contains(remoteErr.Message, "goroutine") {
		t.Errorf("panic error carries no recovered value + stack: %q", truncateForLog(remoteErr.Message))
	}
	panickedID := findOnlyJobID(t, s)

	// The journal record persisted the stack with the failure.
	data, err := os.ReadFile(filepath.Join(dir, panickedID+jobFileExt))
	if err != nil {
		t.Fatalf("no journal record for the panicked job: %v", err)
	}
	var rec journalRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != wire.StateFailed || !strings.Contains(rec.Error, "goroutine") {
		t.Errorf("journal record state=%q with stack=%v, want failed with the stack",
			rec.State, strings.Contains(rec.Error, "goroutine"))
	}

	// The server survived: the next job completes, byte-identical.
	res, err := client.Learn(context.Background(), p, serveOptions(), nil)
	if err != nil {
		t.Fatalf("server stopped serving after a worker panic: %v", err)
	}
	if res.Definition != chaosBaseline(t) {
		t.Errorf("post-panic definition differs from fault-free run")
	}
	st := s.Stats()
	if st.WorkerPanics != 1 || st.Failed != 1 || st.Completed != 1 {
		t.Errorf("stats = %d panics / %d failed / %d completed, want 1/1/1",
			st.WorkerPanics, st.Failed, st.Completed)
	}
}

// TestChaosWorkerRunPanic covers the other injection point: a panic at the
// very top of the worker's run, before the engine starts.
func TestChaosWorkerRunPanic(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxConcurrent: 1,
		Faults:        chaosSchedule(t, "worker.run:hit=1:panic=boom", 1),
	})
	p := serveProblem(t)
	_, err := client.Learn(context.Background(), p, serveOptions(), nil)
	var remoteErr *RemoteJobError
	if !errors.As(err, &remoteErr) || remoteErr.State != wire.StateFailed {
		t.Fatalf("panicked job returned %v, want a failed RemoteJobError", err)
	}
	if res, err := client.Learn(context.Background(), p, serveOptions(), nil); err != nil {
		t.Fatalf("server stopped serving after a worker panic: %v", err)
	} else if res.Definition != chaosBaseline(t) {
		t.Errorf("post-panic definition differs from fault-free run")
	}
	if st := s.Stats(); st.WorkerPanics != 1 {
		t.Errorf("worker panics = %d, want 1", st.WorkerPanics)
	}
}

// TestChaosSlowSSEConsumer pins the backpressure contract with a delay fault
// on every SSE write: a one-slot buffer behind a writer slower than the grace
// forces repeated slow-consumer drops, yet the live job never blocks and the
// retrying client — reconnecting with Last-Event-ID, its budget reset by each
// connection's progress — still assembles the full run and the exact result.
func TestChaosSlowSSEConsumer(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxConcurrent:   1,
		SSEBufferEvents: 1,
		SSEWriteTimeout: 25 * time.Millisecond,
		Faults:          chaosSchedule(t, "sse.write:every=1:delay=60ms", 1),
	})
	client.Retry = Backoff{Retries: 8, Base: time.Millisecond, Seed: 7}

	res, err := client.Learn(context.Background(), serveProblem(t), serveOptions(), nil)
	if err != nil {
		t.Fatalf("slow consumer never completed: %v", err)
	}
	if res.Definition != chaosBaseline(t) {
		t.Errorf("definition streamed through drops differs from fault-free run")
	}
	if st := s.Stats(); st.SSESlowDrops < 1 {
		t.Errorf("no slow-consumer drop was counted (drops = %d)", st.SSESlowDrops)
	}
	if jst, err := client.Status(context.Background(), findOnlyJobID(t, s)); err != nil || jst.State != wire.StateDone {
		t.Errorf("job behind a slow consumer did not complete: %+v (%v)", jst, err)
	}
}

// TestChaosCrashRestartMidRun emulates kill -9 between a job's completion
// and its terminal journal rewrite: the rewrite is lost to a fault, the
// server is abandoned without shutdown, and the restarted server must
// re-enqueue the still-queued record, re-run it from scratch, and land on
// the byte-identical definition. No job lost, none stuck.
func TestChaosCrashRestartMidRun(t *testing.T) {
	dir := t.TempDir()
	s1, client1, _ := bootServer(t, Config{
		MaxConcurrent: 1,
		JobDir:        dir,
		Faults:        chaosSchedule(t, "journal.finish:hit=1:error=power cut before rewrite", 1),
	})

	first, err := client1.Learn(context.Background(), serveProblem(t), serveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	jobID := findOnlyJobID(t, s1)
	// Crash: abandon s1 without Shutdown. Its journal record still says
	// queued — the terminal rewrite was lost to the fault.

	s2, client2, stop2 := bootServer(t, Config{MaxConcurrent: 1, JobDir: dir})
	defer stop2()
	if st := s2.Stats(); st.RecoveredJobs != 1 {
		t.Fatalf("recovered %d jobs, want 1", st.RecoveredJobs)
	}
	var jst wire.JobStatus
	waitFor(t, "re-run of the crashed job", func() bool {
		var err error
		jst, err = client2.Status(context.Background(), jobID)
		return err == nil && terminal(jst.State)
	})
	if jst.State != wire.StateDone {
		t.Fatalf("re-run job finished %q (%s), want done", jst.State, truncateForLog(jst.Error))
	}
	if jst.Result == nil || jst.Result.Definition != first.Definition {
		t.Errorf("re-run definition differs from the pre-crash run")
	}
	if first.Definition != chaosBaseline(t) {
		t.Errorf("definition differs from fault-free run")
	}
}

// TestChaosShutdownCancelRace drives the terminal-transition guard: many
// jobs, two concurrent DELETEs each, racing a hard shutdown. Whoever wins,
// every job must end in exactly one terminal state with exactly one terminal
// event in its log, and the outcome counters must partition the submissions.
func TestChaosShutdownCancelRace(t *testing.T) {
	g := newGate()
	s, err := New(Config{
		MaxConcurrent: 2,
		MaxQueued:     32,
		MaxPerTenant:  -1,
		JobDir:        t.TempDir(),
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := serveProblem(t)
	const n = 8
	jobs := make([]*Job, n)
	for i := range jobs {
		if jobs[i], err = s.Submit("t", p, serveOptions()); err != nil {
			t.Fatal(err)
		}
	}
	g.waitEntered(t) // at least one job is mid-run

	// An already-expired drain deadline forces the hard shutdown path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, j := range jobs {
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				<-start
				s.Cancel(id)
			}(j.ID)
		}
	}
	done := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		done <- s.Shutdown(ctx)
	}()
	close(start)
	close(g.release)
	<-done
	wg.Wait()

	terminals := 0
	for _, j := range jobs {
		if !terminal(j.State()) {
			t.Errorf("job %s stuck in state %q after shutdown", j.ID, j.State())
		}
		evs, _, _ := j.eventsFrom(0)
		count := 0
		for _, ev := range evs {
			if ev.name == wire.EventResult || ev.name == wire.EventError {
				count++
			}
		}
		if count != 1 {
			t.Errorf("job %s log carries %d terminal events, want exactly 1", j.ID, count)
		}
		terminals += count
	}
	st := s.Stats()
	if got := st.Completed + st.Failed + st.Cancelled; got != n {
		t.Errorf("outcome counters sum to %d (completed=%d failed=%d cancelled=%d), want %d",
			got, st.Completed, st.Failed, st.Cancelled, n)
	}
	if terminals != n {
		t.Errorf("%d terminal events across %d jobs", terminals, n)
	}
}

// truncateForLog keeps failure output readable when an error embeds a stack.
func truncateForLog(s string) string {
	if len(s) > 300 {
		return s[:300] + "…"
	}
	return s
}
