package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// writeSSE emits one server-sent event with an id, an event name and a
// single-line JSON data payload (the marshalled payloads never contain raw
// newlines, but split defensively anyway per the SSE spec).
func writeSSE(w io.Writer, id int, name string, data []byte) error {
	if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\n", id, name); err != nil {
		return err
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if _, err := fmt.Fprintf(w, "data: %s\n", line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// SSEEvent is one parsed server-sent event.
type SSEEvent struct {
	ID   string
	Name string
	Data []byte
}

// ReadSSE parses a server-sent event stream, invoking fn for each event
// until the stream ends or fn returns a non-nil error. A nil error from the
// stream's natural end (io.EOF) is not reported.
func ReadSSE(r io.Reader, fn func(SSEEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var ev SSEEvent
	var data [][]byte
	flush := func() error {
		if ev.Name == "" && len(data) == 0 {
			ev, data = SSEEvent{}, nil
			return nil
		}
		ev.Data = bytes.Join(data, []byte("\n"))
		err := fn(ev)
		ev, data = SSEEvent{}, nil
		return err
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			if err := flush(); err != nil {
				return err
			}
			continue
		}
		if line[0] == ':' {
			continue // comment; keep-alive
		}
		// Per the SSE spec a field line is "name:value" where a single space
		// after the colon is optional and stripped; a line with no colon is a
		// field name with an empty value.
		field, value := line, []byte(nil)
		if i := bytes.IndexByte(line, ':'); i >= 0 {
			field, value = line[:i], line[i+1:]
			if len(value) > 0 && value[0] == ' ' {
				value = value[1:]
			}
		}
		switch string(field) {
		case "id":
			ev.ID = string(value)
		case "event":
			ev.Name = string(value)
		case "data":
			data = append(data, append([]byte(nil), value...))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}
