package server

// Tests for the client's retry policy: capped exponential backoff with
// seeded jitter on transient admission rejections (429/503, honoring
// Retry-After) and automatic SSE reconnect-and-resume via Last-Event-ID.
// Handlers are stubbed so every retryable and non-retryable path is pinned
// without timing dependence (the sleep hook records delays instead of
// waiting them out).

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"dlearn"
	"dlearn/internal/server/wire"
)

// stubClient wires a client to a handler with an instant, recording sleep.
func stubClient(t *testing.T, h http.Handler, retry Backoff) (*Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	slept := &[]time.Duration{}
	return &Client{
		BaseURL: ts.URL,
		Retry:   retry,
		sleep: func(_ context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return nil
		},
	}, slept
}

func acceptJob(w http.ResponseWriter) {
	writeJSON(w, http.StatusAccepted, wire.JobAccepted{ID: "j1", State: wire.StateQueued})
}

// TestClientSubmitRetriesAdmission rejects the first two submissions with
// 429 + Retry-After and accepts the third: the client must retry through
// both rejections, waiting at least the server's hint each time.
func TestClientSubmitRetriesAdmission(t *testing.T) {
	var attempts atomic.Int64
	client, slept := stubClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "queue full"})
			return
		}
		acceptJob(w)
	}), Backoff{Retries: 3, Base: 10 * time.Millisecond, Seed: 42})

	acc, err := client.Submit(context.Background(), wire.Problem{})
	if err != nil {
		t.Fatal(err)
	}
	if acc.ID != "j1" {
		t.Errorf("accepted job = %+v", acc)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("client slept %d times, want 2", len(*slept))
	}
	for i, d := range *slept {
		if d < time.Second {
			t.Errorf("sleep %d = %v, want >= the 1s Retry-After hint", i, d)
		}
	}
}

// TestClientSubmitDoesNotRetryPermanentRejection pins that only 429/503 are
// retried: a 400 is a definitive no.
func TestClientSubmitDoesNotRetryPermanentRejection(t *testing.T) {
	var attempts atomic.Int64
	client, slept := stubClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed"})
	}), Backoff{Retries: 5})

	_, err := client.Submit(context.Background(), wire.Problem{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("got %v, want a 400 APIError", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (no retry on 400)", got)
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %d times, want 0", len(*slept))
	}
}

// TestClientSubmitExhaustsRetryBudget keeps rejecting: the client must give
// up after Retries+1 attempts and surface the rejection.
func TestClientSubmitExhaustsRetryBudget(t *testing.T) {
	var attempts atomic.Int64
	client, _ := stubClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
	}), Backoff{Retries: 2, Base: time.Millisecond, Seed: 1})

	_, err := client.Submit(context.Background(), wire.Problem{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want the 503 APIError", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (1 try + 2 retries)", got)
	}
}

// learnMux serves a fixed job and delegates the events endpoint.
func learnMux(events http.HandlerFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) { acceptJob(w) })
	mux.HandleFunc("GET /v1/jobs/j1/events", events)
	return mux
}

// TestClientLearnReconnectsWithLastEventID drops the stream after one
// non-terminal event: the client must reconnect carrying Last-Event-ID for
// exactly the event it saw, and complete from the resumed stream.
func TestClientLearnReconnectsWithLastEventID(t *testing.T) {
	var gets atomic.Int64
	var badResume atomic.Int64
	resData, _ := json.Marshal(wire.Result{Target: "t", Definition: "t() :- true."})
	client, slept := stubClient(t, learnMux(func(w http.ResponseWriter, r *http.Request) {
		switch gets.Add(1) {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				badResume.Add(1)
			}
			writeSSE(w, 0, "run_started", []byte(`{"type":"run_started","event":{}}`))
			// The stream ends here, before any terminal event: a drop.
		default:
			if r.Header.Get("Last-Event-ID") != "0" {
				badResume.Add(1)
			}
			writeSSE(w, 1, wire.EventResult, resData)
		}
	}), Backoff{Retries: 2, Base: time.Millisecond, Seed: 1})

	res, err := client.Learn(context.Background(), serveProblem(t), wire.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Definition != "t() :- true." {
		t.Errorf("result = %+v", res)
	}
	if got := gets.Load(); got != 2 {
		t.Errorf("events endpoint saw %d requests, want 2", got)
	}
	if badResume.Load() != 0 {
		t.Error("a reconnect carried the wrong Last-Event-ID")
	}
	if len(*slept) != 1 {
		t.Errorf("client slept %d times, want 1 (one reconnect)", len(*slept))
	}
}

// TestClientLearnBudgetResetsOnProgress drops the stream after every single
// event, more times than the retry budget allows consecutively: because each
// reconnect makes progress, the budget keeps resetting and the run completes.
func TestClientLearnBudgetResetsOnProgress(t *testing.T) {
	var gets atomic.Int64
	resData, _ := json.Marshal(wire.Result{Target: "t", Definition: "t() :- true."})
	client, _ := stubClient(t, learnMux(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		next := 0
		if last := r.Header.Get("Last-Event-ID"); last != "" {
			n, err := strconv.Atoi(last)
			if err != nil {
				t.Errorf("unparsable Last-Event-ID %q", last)
			}
			next = n + 1
		}
		if next >= 3 {
			writeSSE(w, next, wire.EventResult, resData)
			return
		}
		writeSSE(w, next, "run_started", []byte(`{"type":"run_started","event":{}}`))
	}), Backoff{Retries: 1, Base: time.Millisecond, Seed: 1})

	if _, err := client.Learn(context.Background(), serveProblem(t), wire.Options{}, nil); err != nil {
		t.Fatal(err)
	}
	if got := gets.Load(); got != 4 {
		t.Errorf("events endpoint saw %d requests, want 4 (3 drops with progress + final)", got)
	}
}

// TestClientLearnGivesUpWithoutProgress never sends an event: consecutive
// fruitless reconnects must exhaust the budget.
func TestClientLearnGivesUpWithoutProgress(t *testing.T) {
	var gets atomic.Int64
	client, _ := stubClient(t, learnMux(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		// Open, say nothing, close: a dropped stream with zero progress.
	}), Backoff{Retries: 2, Base: time.Millisecond, Seed: 1})

	if _, err := client.Learn(context.Background(), serveProblem(t), wire.Options{}, nil); err == nil {
		t.Fatal("a stream that never progresses must eventually error")
	}
	if got := gets.Load(); got != 3 {
		t.Errorf("events endpoint saw %d requests, want 3 (1 try + 2 retries)", got)
	}
}

// TestClientLearnDoesNotRetryTerminalError pins that a job's real outcome is
// never retried: the error event is the answer, not a transient.
func TestClientLearnDoesNotRetryTerminalError(t *testing.T) {
	var gets atomic.Int64
	errData, _ := json.Marshal(wire.JobError{State: wire.StateCancelled, Error: "cancelled by client"})
	client, _ := stubClient(t, learnMux(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		writeSSE(w, 0, wire.EventError, errData)
	}), Backoff{Retries: 5, Base: time.Millisecond, Seed: 1})

	_, err := client.Learn(context.Background(), serveProblem(t), wire.Options{}, nil)
	var remoteErr *RemoteJobError
	if !errors.As(err, &remoteErr) || remoteErr.State != wire.StateCancelled {
		t.Fatalf("got %v, want the cancelled RemoteJobError", err)
	}
	if got := gets.Load(); got != 1 {
		t.Errorf("events endpoint saw %d requests, want 1 (no retry on a terminal outcome)", got)
	}
}

// TestClientLearnDoesNotRetryDecodeError pins that a malformed terminal
// payload — a protocol bug — is surfaced, not retried into a loop.
func TestClientLearnDoesNotRetryDecodeError(t *testing.T) {
	var gets atomic.Int64
	client, _ := stubClient(t, learnMux(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		writeSSE(w, 0, wire.EventResult, []byte("{not json"))
	}), Backoff{Retries: 5, Base: time.Millisecond, Seed: 1})

	_, err := client.Learn(context.Background(), serveProblem(t), wire.Options{}, nil)
	if err == nil {
		t.Fatal("malformed result event did not error")
	}
	if got := gets.Load(); got != 1 {
		t.Errorf("events endpoint saw %d requests, want 1 (no retry on a decode error)", got)
	}
}

// TestClientZeroBackoffDisablesRetry keeps the old contract for clients that
// never opt in: one attempt, the plain error.
func TestClientZeroBackoffDisablesRetry(t *testing.T) {
	var attempts atomic.Int64
	client, _ := stubClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "queue full"})
	}), Backoff{})

	if _, err := client.Submit(context.Background(), wire.Problem{}); err == nil {
		t.Fatal("zero backoff still retried into success?")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
}

// TestClientDelayJitterDeterministic pins the backoff arithmetic: doubling
// from Base with ±25% jitter, capped at Max, deterministic per seed, and
// never below the server's Retry-After hint.
func TestClientDelayJitterDeterministic(t *testing.T) {
	mk := func(seed int64) *Client {
		return &Client{Retry: Backoff{Retries: 3, Base: 100 * time.Millisecond, Max: time.Second, Seed: seed}}
	}
	a, b, c := mk(5), mk(5), mk(6)
	var aSeq, bSeq, cSeq []time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		aSeq = append(aSeq, a.delay(attempt, 0))
		bSeq = append(bSeq, b.delay(attempt, 0))
		cSeq = append(cSeq, c.delay(attempt, 0))
	}
	differ := false
	for i := range aSeq {
		if aSeq[i] != bSeq[i] {
			t.Errorf("same-seed delay %d differs: %v vs %v", i, aSeq[i], bSeq[i])
		}
		if aSeq[i] != cSeq[i] {
			differ = true
		}
		// Attempt n doubles from Base, capped at Max, then jitters ±25%.
		base := 100 * time.Millisecond << (i)
		if base > time.Second || base <= 0 {
			base = time.Second
		}
		lo, hi := base*3/4, base*5/4
		if aSeq[i] < lo || aSeq[i] > hi {
			t.Errorf("delay(%d) = %v, want within [%v, %v]", i+1, aSeq[i], lo, hi)
		}
	}
	if !differ {
		t.Error("different seeds produced identical jitter sequences")
	}

	// Retry-After dominates a smaller computed delay.
	if d := mk(5).delay(1, 3*time.Second); d != 3*time.Second {
		t.Errorf("delay with Retry-After 3s = %v, want exactly 3s", d)
	}
	// A huge attempt number must not overflow into a negative shift.
	if d := mk(5).delay(40, 0); d <= 0 || d > time.Second*5/4 {
		t.Errorf("delay(40) = %v, want capped at Max with jitter", d)
	}
}

// TestReadyzFlipsWhileDraining probes /healthz and /readyz around a drain:
// ready while serving, 503 with draining reported once Shutdown begins —
// liveness stays green throughout, so orchestrators stop routing without
// killing the process mid-drain.
func TestReadyzFlipsWhileDraining(t *testing.T) {
	g := newGate()
	s, client := newTestServer(t, Config{
		MaxConcurrent: 1,
		EngineOptions: []dlearn.Option{dlearn.WithObserver(g)},
	})

	getReady := func() (int, wire.Ready) {
		t.Helper()
		resp, err := http.Get(client.BaseURL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rd wire.Ready
		if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rd
	}

	if code, rd := getReady(); code != http.StatusOK || !rd.Ready || rd.Draining {
		t.Fatalf("serving readyz = %d %+v, want 200 ready", code, rd)
	}

	// Hold a job mid-run so the drain stays observable, then shut down.
	wp := wire.EncodeProblem(serveProblem(t))
	wp.Options = serveOptions()
	if _, err := client.Submit(context.Background(), wp); err != nil {
		t.Fatal(err)
	}
	g.waitEntered(t)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitFor(t, "draining to start", func() bool {
		code, _ := getReady()
		return code == http.StatusServiceUnavailable
	})
	if code, rd := getReady(); code != http.StatusServiceUnavailable || rd.Ready || !rd.Draining {
		t.Fatalf("draining readyz = %d %+v, want 503 draining", code, rd)
	}
	// Liveness must not flip with readiness.
	resp, err := http.Get(client.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", resp.StatusCode)
	}

	close(g.release)
	if err := <-done; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
}
