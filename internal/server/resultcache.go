package server

import (
	"container/list"
	"encoding/json"
	"sync"

	"dlearn/internal/persist"
	"dlearn/internal/server/wire"
)

// resultCache holds completed results keyed by their result fingerprint
// (core.ResultKey: the snapshot fingerprint extended with every remaining
// definition-affecting option). Content addressing makes cross-tenant
// sharing safe for the same reason the snapshot store is: two jobs share a
// key only when they submitted bit-identical problems under options that
// guarantee byte-identical definitions. Entries are evicted least recently
// used once the cache exceeds its byte cap; like persist.DirStore, the most
// recently used entry survives even when it alone exceeds the cap, so an
// oversized cap never degenerates into a cache that can hold nothing.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[persist.Key]*list.Element
	lru      *list.List // front = most recently used
}

type resultEntry struct {
	key  persist.Key
	res  wire.Result
	size int64
}

// defaultResultCacheBytes is the cap applied when the server config leaves
// it zero. Results are a few KB each, so this holds thousands of entries.
const defaultResultCacheBytes = 64 << 20

func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		maxBytes = defaultResultCacheBytes
	}
	return &resultCache{
		maxBytes: maxBytes,
		entries:  map[persist.Key]*list.Element{},
		lru:      list.New(),
	}
}

// get returns the cached result for the key and refreshes its recency. The
// returned size is the entry's encoded byte count (for observability).
func (c *resultCache) get(key persist.Key) (wire.Result, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return wire.Result{}, 0, false
	}
	c.lru.MoveToFront(el)
	ent := el.Value.(*resultEntry)
	return ent.res, int(ent.size), true
}

// put stores (or refreshes) a result under its key and sweeps the least
// recently used entries until the cache fits the byte cap again.
func (c *resultCache) put(key persist.Key, res wire.Result) {
	data, err := json.Marshal(res)
	if err != nil {
		return // an unmarshallable result could never be served anyway
	}
	size := int64(len(data))

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*resultEntry)
		c.bytes += size - ent.size
		ent.res, ent.size = res, size
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&resultEntry{key: key, res: res, size: size})
		c.bytes += size
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		ent := oldest.Value.(*resultEntry)
		c.lru.Remove(oldest)
		delete(c.entries, ent.key)
		c.bytes -= ent.size
	}
}

// stats reports the cache's current occupancy.
func (c *resultCache) stats() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, c.lru.Len()
}
