package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dlearn/internal/server/wire"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs             submit a problem, 202 + JobAccepted
//	GET    /v1/jobs/{id}        job status, result once done
//	DELETE /v1/jobs/{id}        cancel (idempotent)
//	GET    /v1/jobs/{id}/events SSE stream, terminal "result"/"error" event
//	GET    /v1/stats            queue/outcome/snapshot/scheduler counters
//	GET    /healthz             liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit decodes and validates the problem before admission, so a
// malformed submission never consumes a queue slot.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var wp wire.Problem
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wp); err != nil {
		writeError(w, http.StatusBadRequest, "decoding problem: %v", err)
		return
	}
	p, err := wp.Decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid problem: %v", err)
		return
	}
	if _, err := wp.Options.EngineOptions(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}

	j, err := s.Submit(r.Header.Get("X-Tenant"), p, wp.Options)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, wire.JobAccepted{
		ID:        j.ID,
		State:     j.State(),
		EventsURL: "/v1/jobs/" + j.ID + "/events",
		StatusURL: "/v1/jobs/" + j.ID,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's event log as server-sent events, replaying
// from the start so late subscribers see the whole run, then following live
// until the terminal event. The SSE id field carries the event index, so a
// reconnecting client can resume with Last-Event-ID.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Resume after the last event the client saw: the id field carries the
	// event index, so the next event is id+1. Anything unparsable or negative
	// (a hostile or corrupted header) falls back to a full replay from 0.
	next := 0
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		if n, err := strconv.Atoi(id); err == nil && n >= 0 {
			next = n + 1
		}
	}
	for {
		evs, done, changed := j.eventsFrom(next)
		for _, ev := range evs {
			if err := writeSSE(w, next, ev.name, ev.data); err != nil {
				return
			}
			next++
		}
		flusher.Flush()
		if done {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
