package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"dlearn/internal/server/wire"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs             submit a problem, 202 + JobAccepted
//	GET    /v1/jobs/{id}        job status, result once done
//	DELETE /v1/jobs/{id}        cancel (idempotent)
//	GET    /v1/jobs/{id}/events SSE stream, terminal "result"/"error" event
//	GET    /v1/stats            queue/outcome/snapshot/scheduler counters
//	GET    /healthz             liveness (200 while the process serves)
//	GET    /readyz              readiness (503 while draining; reports degraded persistence)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// handleReady is the readiness probe: 200 while the server accepts new jobs,
// 503 once it is draining, so a load balancer stops routing submissions
// before shutdown interrupts them. The body reports degraded-persistence
// signals either way — a ready server running degraded is still worth an
// alarm, just not worth pulling from rotation.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	rd := s.Ready()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit decodes and validates the problem before admission, so a
// malformed submission never consumes a queue slot.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var wp wire.Problem
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wp); err != nil {
		writeError(w, http.StatusBadRequest, "decoding problem: %v", err)
		return
	}
	p, err := wp.Decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid problem: %v", err)
		return
	}
	if _, err := wp.Options.EngineOptions(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}

	j, err := s.Submit(r.Header.Get("X-Tenant"), p, wp.Options)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, wire.JobAccepted{
		ID:        j.ID,
		State:     j.State(),
		EventsURL: "/v1/jobs/" + j.ID + "/events",
		StatusURL: "/v1/jobs/" + j.ID,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's event log as server-sent events, replaying
// from the start so late subscribers see the whole run, then following live
// until the terminal event. The SSE id field carries the event index, so a
// reconnecting client can resume with Last-Event-ID.
//
// Delivery is backpressure-aware: a feeder goroutine follows the job log
// into a bounded per-subscriber buffer, and the connection goroutine writes
// it out under a per-write deadline. A subscriber that stalls — its buffer
// full past the grace, or a single write blocked past the deadline — is
// dropped and counted, not waited on: the job log it fell behind on is
// retained in full, so the client reconnects with Last-Event-ID and replays
// exactly what it missed. One slow consumer therefore costs one bounded
// buffer and one connection, never unbounded memory or a wedged handler.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Resume after the last event the client saw: the id field carries the
	// event index, so the next event is id+1. Anything unparsable or negative
	// (a hostile or corrupted header) falls back to a full replay from 0.
	next := 0
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		if n, err := strconv.Atoi(id); err == nil && n >= 0 {
			next = n + 1
		}
	}

	feedCtx, stopFeed := context.WithCancel(r.Context())
	defer stopFeed()
	buf := make(chan streamEvent, s.cfg.SSEBufferEvents)
	lagged := make(chan struct{})
	go func() {
		// The feeder owns buf and closes it when the stream is complete, the
		// client is gone, or the subscriber has been declared too slow.
		defer close(buf)
		idx := next
		grace := time.NewTimer(s.cfg.SSEWriteTimeout)
		defer grace.Stop()
		for {
			evs, done, changed := j.eventsFrom(idx)
			for _, ev := range evs {
				if !grace.Stop() {
					<-grace.C
				}
				grace.Reset(s.cfg.SSEWriteTimeout)
				select {
				case buf <- ev:
					idx++
				case <-feedCtx.Done():
					return
				case <-grace.C:
					// Buffer full for a whole grace period: the consumer is
					// not keeping up. Drop it rather than buffer unboundedly.
					close(lagged)
					return
				}
			}
			if done {
				return
			}
			select {
			case <-changed:
			case <-feedCtx.Done():
				return
			}
		}
	}()

	// SetWriteDeadline is best effort: real net/http connections support it,
	// recorders in unit tests do not (ErrNotSupported), and either way a
	// stalled write on a supported connection fails rather than wedging the
	// handler forever.
	rc := http.NewResponseController(w)
	for ev := range buf {
		s.cfg.Faults.Delay("sse.write")
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.SSEWriteTimeout))
		if err := writeSSE(w, next, ev.name, ev.data); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.sseSlowDrops.Add(1)
			}
			return
		}
		next++
		if len(buf) == 0 {
			flusher.Flush()
		}
	}
	select {
	case <-lagged:
		// Dropped for falling behind. Tell the client why on a best-effort
		// comment line; its Last-Event-ID machinery takes it from here.
		s.sseSlowDrops.Add(1)
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.SSEWriteTimeout))
		io.WriteString(w, ": dropped: subscriber too slow, reconnect with Last-Event-ID to resume\n\n")
	default:
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
