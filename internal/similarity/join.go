package similarity

import (
	"sort"
)

// Match is one similar value found for a probe value.
type Match struct {
	Value string
	Score float64
}

// Index precomputes, for a fixed set of candidate values, the data needed to
// answer top-k similarity probes efficiently: a token inverted index used for
// blocking plus the similarity function itself. It corresponds to the
// paper's precomputation of pairs of similar values (Section 5).
type Index struct {
	sim       Func
	threshold float64
	values    []string
	tokens    map[string][]int // token -> positions into values
	// exact maps a value to its positions, so exact matches are always
	// found even when tokenization yields nothing.
	exact map[string][]int
}

// NewIndex builds an index over the candidate values. threshold is the
// minimum combined similarity for a pair to be considered similar (the ≈
// operator holds iff score >= threshold).
func NewIndex(values []string, sim Func, threshold float64) *Index {
	idx := &Index{
		sim:       sim,
		threshold: threshold,
		values:    make([]string, len(values)),
		tokens:    make(map[string][]int),
		exact:     make(map[string][]int),
	}
	copy(idx.values, values)
	for i, v := range idx.values {
		idx.exact[v] = append(idx.exact[v], i)
		for t := range TokenSet(v) {
			idx.tokens[t] = append(idx.tokens[t], i)
		}
	}
	return idx
}

// Len returns the number of indexed values.
func (idx *Index) Len() int { return len(idx.values) }

// Threshold returns the similarity threshold of the index.
func (idx *Index) Threshold() float64 { return idx.threshold }

// TopK returns the k most similar indexed values to the probe (score >=
// threshold), best first. Ties are broken lexicographically so results are
// deterministic. k <= 0 means no limit.
func (idx *Index) TopK(probe string, k int) []Match {
	candidates := idx.candidates(probe)
	scored := make([]Match, 0, len(candidates))
	seen := make(map[string]bool, len(candidates))
	for _, pos := range candidates {
		v := idx.values[pos]
		if seen[v] {
			continue
		}
		seen[v] = true
		s := idx.sim(probe, v)
		if s >= idx.threshold {
			scored = append(scored, Match{Value: v, Score: s})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].Value < scored[j].Value
	})
	if k > 0 && len(scored) > k {
		scored = scored[:k]
	}
	return scored
}

// Similar reports whether the probe is similar (>= threshold) to the given
// indexed value. Values that were not indexed are still compared directly.
func (idx *Index) Similar(probe, value string) bool {
	return idx.sim(probe, value) >= idx.threshold
}

// candidates returns the positions sharing at least one token with the probe
// (plus exact matches). When the probe produces no tokens the full value set
// is scanned, preserving correctness at the cost of speed.
func (idx *Index) candidates(probe string) []int {
	set := make(map[int]bool)
	for _, p := range idx.exact[probe] {
		set[p] = true
	}
	toks := TokenSet(probe)
	if len(toks) == 0 {
		out := make([]int, len(idx.values))
		for i := range idx.values {
			out[i] = i
		}
		return out
	}
	for t := range toks {
		for _, p := range idx.tokens[t] {
			set[p] = true
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// BruteForceTopK computes the same result as Index.TopK without blocking.
// It exists to validate the blocked index in tests and to serve as the
// baseline of the similarity-blocking ablation benchmark.
func BruteForceTopK(probe string, values []string, sim Func, threshold float64, k int) []Match {
	scored := make([]Match, 0, len(values))
	seen := make(map[string]bool, len(values))
	for _, v := range values {
		if seen[v] {
			continue
		}
		seen[v] = true
		s := sim(probe, v)
		if s >= threshold {
			scored = append(scored, Match{Value: v, Score: s})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].Value < scored[j].Value
	})
	if k > 0 && len(scored) > k {
		scored = scored[:k]
	}
	return scored
}

// PairCache memoizes similarity decisions between values so repeated
// coverage tests do not recompute alignments. It is not safe for concurrent
// writers; the coverage engine builds per-worker caches.
type PairCache struct {
	sim       Func
	threshold float64
	cache     map[[2]string]float64
}

// NewPairCache returns an empty cache around the given similarity function.
func NewPairCache(sim Func, threshold float64) *PairCache {
	return &PairCache{sim: sim, threshold: threshold, cache: make(map[[2]string]float64)}
}

// Score returns the (possibly cached) similarity of a and b. The cache is
// symmetric.
func (c *PairCache) Score(a, b string) float64 {
	if a == b {
		return 1
	}
	key := [2]string{a, b}
	if a > b {
		key = [2]string{b, a}
	}
	if s, ok := c.cache[key]; ok {
		return s
	}
	s := c.sim(a, b)
	c.cache[key] = s
	return s
}

// Similar reports whether a and b meet the threshold.
func (c *PairCache) Similar(a, b string) bool { return c.Score(a, b) >= c.threshold }

// Size returns the number of cached pairs.
func (c *PairCache) Size() int { return len(c.cache) }
