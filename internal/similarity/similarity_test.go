package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmithWatermanGotohIdentical(t *testing.T) {
	opts := DefaultOptions()
	if got := SmithWatermanGotoh("Superbad", "Superbad", opts); got != 1 {
		t.Errorf("identical strings should score 1, got %f", got)
	}
	if got := SmithWatermanGotoh("", "", opts); got != 1 {
		t.Errorf("two empty strings should score 1, got %f", got)
	}
	if got := SmithWatermanGotoh("abc", "", opts); got != 0 {
		t.Errorf("empty vs non-empty should score 0, got %f", got)
	}
}

func TestSmithWatermanGotohSubstring(t *testing.T) {
	opts := DefaultOptions()
	// "Superbad" aligns perfectly inside "Superbad (2007)".
	if got := SmithWatermanGotoh("Superbad", "Superbad (2007)", opts); got != 1 {
		t.Errorf("substring should score 1, got %f", got)
	}
	// Unrelated strings should score low.
	if got := SmithWatermanGotoh("Superbad", "Orphanage", opts); got > 0.6 {
		t.Errorf("unrelated strings scored too high: %f", got)
	}
}

func TestSmithWatermanGotohCaseInsensitive(t *testing.T) {
	opts := DefaultOptions()
	if got := SmithWatermanGotoh("SUPERBAD", "superbad", opts); got != 1 {
		t.Errorf("case-insensitive comparison should score 1, got %f", got)
	}
	opts.CaseInsensitive = false
	if got := SmithWatermanGotoh("SUPERBAD", "superbad", opts); got == 1 {
		t.Error("case-sensitive comparison should not score 1")
	}
}

func TestLength(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abcd", "ab", 0.5},
		{"ab", "abcd", 0.5},
		{"abc", "abc", 1},
		{"", "", 1},
		{"", "abc", 0},
	}
	for _, c := range cases {
		if got := Length(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Length(%q, %q) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestCombinedOrdersTitlesSensibly(t *testing.T) {
	sim := Default()
	right := sim("Star Wars", "Star Wars: Episode IV - 1977")
	wrong := sim("Star Wars", "The Orphanage (2007)")
	if right <= wrong {
		t.Errorf("related title (%f) should score above unrelated (%f)", right, wrong)
	}
	if sim("Superbad", "Superbad") != 1 {
		t.Error("identical values must score 1 under the combined operator")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Star Wars: Episode IV - 1977")
	want := []string{"star", "wars", "episode", "iv", "1977"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
	if len(Tokenize("!!!")) != 0 {
		t.Error("punctuation-only string should yield no tokens")
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard("star wars", "wars star"); got != 1 {
		t.Errorf("same token sets should give 1, got %f", got)
	}
	if got := Jaccard("star wars", "jurassic park"); got != 0 {
		t.Errorf("disjoint token sets should give 0, got %f", got)
	}
	if got := Jaccard("", ""); got != 1 {
		t.Errorf("two empty strings should give 1, got %f", got)
	}
}

func TestIndexTopK(t *testing.T) {
	values := []string{
		"Star Wars: Episode IV - 1977",
		"Star Wars: Episode III - 2005",
		"Superbad (2007)",
		"Zoolander (2001)",
	}
	idx := NewIndex(values, Default(), 0.5)
	matches := idx.TopK("Star Wars", 2)
	if len(matches) != 2 {
		t.Fatalf("expected 2 matches, got %v", matches)
	}
	for _, m := range matches {
		if m.Value != values[0] && m.Value != values[1] {
			t.Errorf("unexpected match %v", m)
		}
		if m.Score < 0.5 {
			t.Errorf("match below threshold returned: %v", m)
		}
	}
	if len(idx.TopK("Completely Unrelated XYZ", 5)) != 0 {
		t.Error("unrelated probe should produce no matches")
	}
	if idx.Len() != 4 {
		t.Errorf("Len = %d", idx.Len())
	}
	if idx.Threshold() != 0.5 {
		t.Errorf("Threshold = %f", idx.Threshold())
	}
}

func TestIndexTopKLimit(t *testing.T) {
	values := []string{"aaa 1", "aaa 2", "aaa 3", "aaa 4"}
	idx := NewIndex(values, Default(), 0.1)
	if got := len(idx.TopK("aaa", 2)); got != 2 {
		t.Errorf("k=2 should cap results, got %d", got)
	}
	if got := len(idx.TopK("aaa", 0)); got != 4 {
		t.Errorf("k=0 should mean unlimited, got %d", got)
	}
}

func TestIndexExactMatchWithoutTokens(t *testing.T) {
	// Values that tokenize to nothing are still found by exact probes.
	idx := NewIndex([]string{"###", "abc"}, Default(), 0.9)
	got := idx.TopK("###", 5)
	if len(got) != 1 || got[0].Value != "###" {
		t.Fatalf("exact match on token-less value failed: %v", got)
	}
}

func TestIndexSimilar(t *testing.T) {
	idx := NewIndex([]string{"Superbad (2007)"}, Default(), 0.6)
	if !idx.Similar("Superbad", "Superbad (2007)") {
		t.Error("Superbad should be similar to Superbad (2007)")
	}
	if idx.Similar("Zoolander", "Superbad (2007)") {
		t.Error("Zoolander should not be similar to Superbad (2007)")
	}
}

func TestIndexAgainstBruteForce(t *testing.T) {
	// Blocking is a sound approximation: every match it returns must also be
	// a brute-force match with the same score, and every brute-force match
	// that shares a token with the probe must be found by the index.
	values := []string{
		"Star Wars: Episode IV - 1977", "Star Wars: Episode III - 2005",
		"Superbad (2007)", "Zoolander (2001)", "The Orphanage (2007)",
		"star wars", "Jurassic Park", "Park Jurassic III",
	}
	sim := Default()
	idx := NewIndex(values, sim, 0.45)
	probes := []string{"Star Wars", "Superbad", "Jurassic Park III", "Orphanage"}
	for _, p := range probes {
		blocked := idx.TopK(p, 0)
		brute := BruteForceTopK(p, values, sim, 0.45, 0)
		bruteScores := make(map[string]float64, len(brute))
		for _, m := range brute {
			bruteScores[m.Value] = m.Score
		}
		blockedSet := make(map[string]bool, len(blocked))
		for _, m := range blocked {
			blockedSet[m.Value] = true
			want, ok := bruteScores[m.Value]
			if !ok || math.Abs(want-m.Score) > 1e-9 {
				t.Errorf("probe %q: blocked match %v not confirmed by brute force", p, m)
			}
		}
		probeTokens := TokenSet(p)
		for _, m := range brute {
			shares := false
			for tok := range TokenSet(m.Value) {
				if probeTokens[tok] {
					shares = true
					break
				}
			}
			if shares && !blockedSet[m.Value] {
				t.Errorf("probe %q: token-sharing match %v missed by blocked index", p, m)
			}
		}
	}
}

func TestPairCache(t *testing.T) {
	calls := 0
	counting := func(a, b string) float64 {
		calls++
		return Default()(a, b)
	}
	c := NewPairCache(counting, 0.6)
	if !c.Similar("Superbad", "Superbad (2007)") {
		t.Fatal("expected similar")
	}
	_ = c.Similar("Superbad (2007)", "Superbad") // symmetric: should hit cache
	if calls != 1 {
		t.Errorf("expected 1 underlying call, got %d", calls)
	}
	if c.Score("same", "same") != 1 {
		t.Error("identical values should score 1 without calling the function")
	}
	if c.Size() != 1 {
		t.Errorf("cache size = %d, want 1", c.Size())
	}
}

// Property: both component similarities and the combined operator stay in
// [0, 1] and are symmetric.
func TestPropertySimilarityRangeAndSymmetry(t *testing.T) {
	sim := Default()
	opts := DefaultOptions()
	f := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		s1, s2 := sim(a, b), sim(b, a)
		swg := SmithWatermanGotoh(a, b, opts)
		l := Length(a, b)
		inRange := func(x float64) bool { return x >= 0 && x <= 1 && !math.IsNaN(x) }
		return inRange(s1) && inRange(swg) && inRange(l) && math.Abs(s1-s2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: identity always scores 1 under the combined operator.
func TestPropertyIdentityScoresOne(t *testing.T) {
	sim := Default()
	f := func(a string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		return sim(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the blocked index never returns a match below its threshold.
func TestPropertyIndexRespectsThreshold(t *testing.T) {
	values := []string{"alpha beta", "beta gamma", "gamma delta", "delta alpha"}
	idx := NewIndex(values, Default(), 0.5)
	f := func(probe string) bool {
		if len(probe) > 32 {
			probe = probe[:32]
		}
		for _, m := range idx.TopK(probe, 10) {
			if m.Score < 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
