// Package similarity implements the string-similarity operator DLearn uses
// to evaluate the ≈ predicate of matching dependencies. Following Section 5
// of the paper, the operator is the average of the Smith-Waterman-Gotoh local
// alignment similarity and the Length similarity, and similar value pairs are
// precomputed (with token blocking) before learning starts.
package similarity

import (
	"strings"
	"unicode"
)

// Options configures the combined similarity operator.
type Options struct {
	// MatchScore is the alignment score for matching characters.
	MatchScore float64
	// MismatchScore is the alignment score for mismatching characters
	// (should be negative).
	MismatchScore float64
	// GapOpen is the penalty for opening a gap (should be negative).
	GapOpen float64
	// GapExtend is the penalty for extending a gap (should be negative and
	// not smaller in magnitude than GapOpen).
	GapExtend float64
	// CaseInsensitive lowercases both inputs before comparing.
	CaseInsensitive bool
}

// DefaultOptions returns the scoring scheme used throughout the repository.
func DefaultOptions() Options {
	return Options{
		MatchScore:      1.0,
		MismatchScore:   -0.5,
		GapOpen:         -1.0,
		GapExtend:       -0.25,
		CaseInsensitive: true,
	}
}

// Func is a normalized string similarity function returning a score in
// [0, 1], with 1 meaning identical.
type Func func(a, b string) float64

// SmithWatermanGotoh computes the Smith-Waterman local alignment score with
// Gotoh's affine gap penalties, normalized by the best achievable score of
// the shorter string so the result lies in [0, 1].
func SmithWatermanGotoh(a, b string, opts Options) float64 {
	if opts.CaseInsensitive {
		a, b = strings.ToLower(a), strings.ToLower(b)
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		if len(ra) == 0 && len(rb) == 0 {
			return 1
		}
		return 0
	}
	n, m := len(ra), len(rb)
	// h[j]: best score of an alignment ending at (i, j).
	// e[j]: best score of an alignment ending at (i, j) with a gap in a.
	// f:     best score of an alignment ending at (i, j) with a gap in b.
	h := make([]float64, m+1)
	e := make([]float64, m+1)
	prevH := make([]float64, m+1)
	best := 0.0
	for i := 1; i <= n; i++ {
		copy(prevH, h)
		h[0] = 0
		f := 0.0
		for j := 1; j <= m; j++ {
			sub := opts.MismatchScore
			if ra[i-1] == rb[j-1] {
				sub = opts.MatchScore
			}
			e[j] = max2(e[j]+opts.GapExtend, prevH[j]+opts.GapOpen)
			f = max2(f+opts.GapExtend, h[j-1]+opts.GapOpen)
			score := max2(0, prevH[j-1]+sub)
			score = max2(score, e[j])
			score = max2(score, f)
			h[j] = score
			if score > best {
				best = score
			}
		}
	}
	minLen := n
	if m < minLen {
		minLen = m
	}
	denom := float64(minLen) * opts.MatchScore
	if denom <= 0 {
		return 0
	}
	s := best / denom
	if s > 1 {
		s = 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// Length computes the length similarity: the length of the shorter string
// divided by the length of the longer one.
func Length(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	if la > lb {
		la, lb = lb, la
	}
	return float64(la) / float64(lb)
}

// Combined returns the similarity operator used by DLearn: the average of
// SmithWatermanGotoh and Length.
func Combined(opts Options) Func {
	return func(a, b string) float64 {
		return (SmithWatermanGotoh(a, b, opts) + Length(a, b)) / 2
	}
}

// Default is the combined operator with DefaultOptions.
func Default() Func { return Combined(DefaultOptions()) }

// Tokenize splits a string into lowercase alphanumeric tokens. It is used
// for blocking in the similarity join: two values are only compared when
// they share at least one token.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	return strings.FieldsFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// TokenSet returns the set of tokens of a string.
func TokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// Jaccard computes the Jaccard similarity of the token sets of two strings.
// It is not part of the paper's operator but is exposed for the Castor-Clean
// baseline's blocking heuristics and for tests.
func Jaccard(a, b string) float64 {
	sa, sb := TokenSet(a), TokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
