// Package baseline implements the systems DLearn is compared against in the
// paper's evaluation (Section 6.1.3):
//
//   - Castor-NoMD   — the covering learner without any MD information,
//   - Castor-Exact  — MDs used only as exact joins,
//   - Castor-Clean  — entity names pre-resolved to their best match, then
//     learning over the unified database,
//   - DLearn        — MD similarity search with repair literals,
//   - DLearn-CFD    — DLearn plus CFD repair literals,
//   - DLearn-Repaired — CFD violations repaired up front (minimal repair),
//     then DLearn with MD support only.
//
// All of them share the covering learner of internal/core; they differ only
// in how the database and the constraints are presented to it, which mirrors
// how the paper configures Castor.
package baseline

import (
	"context"
	"fmt"

	"dlearn/internal/bottomclause"
	"dlearn/internal/core"
	"dlearn/internal/logic"
	"dlearn/internal/repair"
	"dlearn/internal/similarity"
)

// System identifies one of the compared learners.
type System string

// The systems of Tables 4 and 5.
const (
	CastorNoMD     System = "Castor-NoMD"
	CastorExact    System = "Castor-Exact"
	CastorClean    System = "Castor-Clean"
	DLearn         System = "DLearn"
	DLearnCFD      System = "DLearn-CFD"
	DLearnRepaired System = "DLearn-Repaired"
)

// AllTable4Systems are the systems compared in Table 4.
func AllTable4Systems() []System {
	return []System{CastorNoMD, CastorExact, CastorClean, DLearn}
}

// Result is the outcome of running one system on one problem.
type Result struct {
	System     System
	Definition *logic.Definition
	Model      *core.Model
	Report     *core.Report
}

// Run learns with the given system over the problem without cancellation.
//
// Deprecated: use RunContext, which honours deadlines and cancellation.
func Run(system System, p core.Problem, cfg core.Config) (*Result, error) {
	return RunContext(context.Background(), system, p, cfg)
}

// RunContext learns with the given system over the problem. The
// configuration is adjusted per system; cfg.BottomClause.KM, Iterations,
// SampleSize and the thresholds are honoured for all of them.
func RunContext(ctx context.Context, system System, p core.Problem, cfg core.Config) (*Result, error) {
	problem := p
	switch system {
	case CastorNoMD:
		cfg.BottomClause.MDMode = bottomclause.MDIgnore
		cfg.BottomClause.UseCFDs = false
	case CastorExact:
		cfg.BottomClause.MDMode = bottomclause.MDExact
		cfg.BottomClause.UseCFDs = false
	case CastorClean:
		// Resolve each entity to its single most similar counterpart, then
		// learn with exact joins over the unified values.
		threshold := cfg.BottomClause.SimilarityThreshold
		if threshold <= 0 {
			threshold = bottomclause.DefaultConfig().SimilarityThreshold
		}
		problem.Instance = repair.ResolveBestMatch(p.Instance, p.MDs, similarity.Default(), threshold)
		cfg.BottomClause.MDMode = bottomclause.MDExact
		cfg.BottomClause.UseCFDs = false
	case DLearn:
		cfg.BottomClause.MDMode = bottomclause.MDSimilarity
		cfg.BottomClause.UseCFDs = false
	case DLearnCFD:
		cfg.BottomClause.MDMode = bottomclause.MDSimilarity
		cfg.BottomClause.UseCFDs = true
	case DLearnRepaired:
		repaired, _, err := repair.MinimalCFDRepair(p.Instance, p.CFDs)
		if err != nil {
			return nil, fmt.Errorf("baseline: %s: %w", system, err)
		}
		problem.Instance = repaired
		problem.CFDs = nil
		cfg.BottomClause.MDMode = bottomclause.MDSimilarity
		cfg.BottomClause.UseCFDs = false
	default:
		return nil, fmt.Errorf("baseline: unknown system %q", system)
	}

	learner := core.NewLearner(cfg)
	def, report, err := learner.LearnContext(ctx, problem)
	if err != nil {
		return nil, fmt.Errorf("baseline: %s: %w", system, err)
	}
	model := core.NewModel(def, problem, learner.Config())
	return &Result{System: system, Definition: def, Model: model, Report: report}, nil
}
