package baseline

import (
	"testing"

	"dlearn/internal/core"
	"dlearn/internal/datagen"
	"dlearn/internal/eval"
)

// movieDataset generates a small IMDB+OMDB task shared by the tests.
func movieDataset(t *testing.T, violationRate float64) *datagen.Dataset {
	t.Helper()
	cfg := datagen.DefaultMoviesConfig()
	cfg.Movies = 100
	cfg.Positives = 12
	cfg.Negatives = 24
	cfg.ViolationRate = violationRate
	ds, err := datagen.Movies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Threads = 4
	cfg.BottomClause.Iterations = 3
	cfg.BottomClause.SampleSize = 4
	cfg.BottomClause.KM = 2
	cfg.GeneralizationSample = 4
	cfg.NegativeSearchSample = 16
	cfg.MaxClauses = 6
	cfg.Subsumption.MaxNodes = 10000
	return cfg
}

// trainF1 learns with the system on the dataset and evaluates on the
// training examples (enough to compare the systems' ability to express the
// concept at all).
func trainF1(t *testing.T, system System, ds *datagen.Dataset) float64 {
	t.Helper()
	res, err := Run(system, ds.Problem, testConfig())
	if err != nil {
		t.Fatalf("%s: %v", system, err)
	}
	split := eval.Split{TestPos: ds.Problem.Pos, TestNeg: ds.Problem.Neg}
	m, err := eval.EvaluateSplit(res.Model, split)
	if err != nil {
		t.Fatalf("%s: %v", system, err)
	}
	t.Logf("%s: %s (clauses=%d, time=%s)", system, m, res.Definition.Len(), res.Report.Duration)
	return m.F1()
}

func TestDLearnBeatsNoMDAndExact(t *testing.T) {
	if testing.Short() {
		t.Skip("learning integration test skipped in -short mode")
	}
	ds := movieDataset(t, 0)
	dlearn := trainF1(t, DLearn, ds)
	noMD := trainF1(t, CastorNoMD, ds)
	exact := trainF1(t, CastorExact, ds)
	// On this small a dataset the gap between the systems fluctuates (the
	// Castor baselines can overfit IMDB-side constants with perfect
	// precision), so the regression test only asserts the paper's ordering
	// cannot invert: DLearn is never worse than the MD-blind baselines and
	// retains a usable F1. The full-shape comparison lives in the Table 4
	// experiment (cmd/dlearn-bench, bench_test.go).
	if dlearn < noMD {
		t.Errorf("DLearn F1 (%.2f) should not be below Castor-NoMD F1 (%.2f)", dlearn, noMD)
	}
	if dlearn < exact {
		t.Errorf("DLearn F1 (%.2f) should not be below Castor-Exact F1 (%.2f)", dlearn, exact)
	}
	if dlearn < 0.4 {
		t.Errorf("DLearn F1 (%.2f) unexpectedly low on the clean MD-only dataset", dlearn)
	}
}

func TestCastorCleanRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("learning integration test skipped in -short mode")
	}
	ds := movieDataset(t, 0)
	f1 := trainF1(t, CastorClean, ds)
	if f1 < 0.25 {
		t.Errorf("Castor-Clean F1 (%.2f) unexpectedly low", f1)
	}
}

func TestDLearnCFDAndRepairedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("learning integration test skipped in -short mode")
	}
	ds := movieDataset(t, 0.10)
	cfd := trainF1(t, DLearnCFD, ds)
	repaired := trainF1(t, DLearnRepaired, ds)
	if cfd == 0 {
		t.Error("DLearn-CFD learned nothing on the violating dataset")
	}
	if repaired == 0 {
		t.Error("DLearn-Repaired learned nothing on the violating dataset")
	}
}

func TestRunUnknownSystem(t *testing.T) {
	ds := movieDataset(t, 0)
	if _, err := Run(System("bogus"), ds.Problem, testConfig()); err == nil {
		t.Fatal("unknown system must be rejected")
	}
}

func TestAllTable4Systems(t *testing.T) {
	systems := AllTable4Systems()
	if len(systems) != 4 || systems[3] != DLearn {
		t.Fatalf("unexpected Table 4 system list: %v", systems)
	}
}
