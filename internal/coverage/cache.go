package coverage

import "sync"

// DefaultCacheShards is the default number of lock stripes per memo table.
// Sixteen matches the paper's 16-way parallel coverage testing: with one
// stripe per worker on average, cache lookups almost never contend.
const DefaultCacheShards = 16

// shardedCache is a lock-striped memo table keyed by clause canonical keys.
// The single-mutex caches it replaces serialized all 16 coverage workers
// behind one lock; striping makes lookups of distinct clauses proceed in
// parallel. Values must be safe to share once stored (the evaluator caches
// immutable clauses and compiled candidates).
type shardedCache[V any] struct {
	shards []cacheShard[V]
	mask   uint32
}

type cacheShard[V any] struct {
	mu sync.Mutex
	m  map[string]V
	// Pad the shard (8-byte mutex + 8-byte map header + 48) to a full
	// 64-byte cache line so adjacent locks don't false-share.
	_ [48]byte
}

// newShardedCache builds a cache with n stripes, rounded up to a power of
// two; n <= 0 selects DefaultCacheShards.
func newShardedCache[V any](n int) *shardedCache[V] {
	if n <= 0 {
		n = DefaultCacheShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	c := &shardedCache[V]{shards: make([]cacheShard[V], size), mask: uint32(size - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]V)
	}
	return c
}

// shardFor hashes the key (FNV-1a) onto a stripe.
func (c *shardedCache[V]) shardFor(key string) *cacheShard[V] {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h&c.mask]
}

// get returns the cached value for key.
func (c *shardedCache[V]) get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	return v, ok
}

// set stores the value for key.
func (c *shardedCache[V]) set(key string, v V) {
	s := c.shardFor(key)
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// getOrCompute returns the cached value for key, computing and storing it on
// a miss. The compute function runs outside the shard lock, so two
// goroutines racing on the same key may both compute; the first store wins
// and both observe an equivalent value (compute must be deterministic).
func (c *shardedCache[V]) getOrCompute(key string, compute func() V) V {
	s := c.shardFor(key)
	s.mu.Lock()
	if v, ok := s.m[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := compute()
	s.mu.Lock()
	if prev, ok := s.m[key]; ok {
		// A racing goroutine stored first; keep its value so every caller
		// shares one instance.
		s.mu.Unlock()
		return prev
	}
	s.m[key] = v
	s.mu.Unlock()
	return v
}
