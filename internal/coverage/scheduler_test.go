package coverage

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dlearn/internal/logic"
)

// schedulerWorkload builds a candidate set with deliberate score ties (each
// genre clause duplicated) so the lowest-index tie-break is actually
// exercised, plus the no-coverage western clause that always early-exits.
func schedulerWorkload(t testing.TB) ([]logic.Clause, []*Example, []*Example, *Evaluator) {
	t.Helper()
	_, posG, negG := benchExamples(t, 40, 6, 6)
	cands := benchCandidates()
	cands = append(cands, cands[0], cands[1], westernCandidate())
	e := NewEvaluator(Options{Threads: 4, CandidateParallelism: 4})
	posEx := mustExamples(t, e, posG)
	negEx := mustExamples(t, e, negG)
	return cands, posEx, negEx, e
}

// TestScoreCandidatesDeterministicAcrossParallelism is the scheduler's core
// contract: BestCandidate over a ScoreCandidates result must select the same
// candidate (index AND score) for every parallelism level, matching the
// serial reference in which candidates are scored one at a time with the
// incumbent floor rising exactly as the hill-climb raises it.
func TestScoreCandidatesDeterministicAcrossParallelism(t *testing.T) {
	cands, posEx, negEx, e := schedulerWorkload(t)
	ctx := context.Background()

	for _, floor := range []int{-1 << 30, 0, 2} {
		// Serial reference: the pre-scheduler hill-climb loop.
		refIdx, refScore, refOK := -1, Score{}, false
		refFloor := floor
		for i, c := range cands {
			s, exact := e.ScoreBatch(ctx, c, posEx, negEx, refFloor)
			if exact && s.Value() > refFloor {
				refIdx, refScore, refOK = i, s, true
				refFloor = s.Value()
			}
		}

		for _, par := range []int{1, 2, 3, 8} {
			for rep := 0; rep < 3; rep++ {
				results := e.ScoreCandidates(ctx, cands, posEx, negEx, floor, par)
				idx, score, ok := BestCandidate(results, floor)
				if ok != refOK || idx != refIdx || (ok && score != refScore) {
					t.Fatalf("floor=%d parallelism=%d rep=%d: BestCandidate = (%d, %+v, %v), serial reference (%d, %+v, %v)",
						floor, par, rep, idx, score, ok, refIdx, refScore, refOK)
				}
				// Every exact result must carry the true score.
				for i, r := range results {
					if r.Exact {
						if full := e.ScoreClauseExamples(ctx, cands[i], posEx, negEx); r.Score != full {
							t.Fatalf("candidate %d: exact scheduler score %+v, full score %+v", i, r.Score, full)
						}
					}
				}
			}
		}
	}
}

// TestScoreCandidatesSharedFloorStress is the -race stress test for
// concurrent candidate scoring with a shared floor: many goroutines run the
// scheduler simultaneously on one evaluator (colliding in the value table
// of their own run and in the evaluator's caches and heat counters across
// runs) while others mutate the heat ordering via plain batches. Every
// scheduler run must still select the serial winner.
func TestScoreCandidatesSharedFloorStress(t *testing.T) {
	cands, posEx, negEx, e := schedulerWorkload(t)
	ctx := context.Background()

	refIdx, refScore, refOK := -1, Score{}, false
	floor := -1 << 30
	refFloor := floor
	for i, c := range cands {
		s, exact := e.ScoreBatch(ctx, c, posEx, negEx, refFloor)
		if exact && s.Value() > refFloor {
			refIdx, refScore, refOK = i, s, true
			refFloor = s.Value()
		}
	}
	if !refOK {
		t.Fatal("workload has no winning candidate; the stress would be vacuous")
	}

	const workers = 8
	const iters = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch w % 3 {
				case 2:
					// Heat churn: reorder adaptive scheduling under the
					// other workers' feet.
					e.ScoreBatch(ctx, cands[(w+it)%len(cands)], posEx, negEx, refScore.Value())
				default:
					par := 1 + (w+it)%4
					results := e.ScoreCandidates(ctx, cands, posEx, negEx, floor, par)
					idx, score, ok := BestCandidate(results, floor)
					if !ok || idx != refIdx || score != refScore {
						t.Errorf("worker %d iter %d (par %d): BestCandidate = (%d, %+v, %v), want (%d, %+v, true)",
							w, it, par, idx, score, ok, refIdx, refScore)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestAdaptiveOrderPrefersHotExamples checks the ScoreBatch scheduling
// heuristic directly: after batches in which some examples closed the bound,
// those examples move to the front of the processing order.
func TestAdaptiveOrderPrefersHotExamples(t *testing.T) {
	_, posG, negG := benchExamples(t, 40, 4, 4)
	e := NewEvaluator(Options{Threads: 1})
	posEx := mustExamples(t, e, posG)
	negEx := mustExamples(t, e, negG)

	// Cold: the order must be the identity (positives then negatives).
	order := adaptiveOrder(posEx, negEx)
	for k, i := range order {
		if k != i {
			t.Fatalf("cold order[%d] = %d, want identity", k, i)
		}
	}

	// Heat up negative 2 and positive 3: each must lead its own tier, with
	// positives still ahead of every negative (positive misses are the
	// dominant bound-closers) and stable index order elsewhere.
	negEx[2].heat.Add(5)
	posEx[3].heat.Add(3)
	order = adaptiveOrder(posEx, negEx)
	want := []int{3, 0, 1, 2, len(posEx) + 2, len(posEx), len(posEx) + 1, len(posEx) + 3}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("adaptive order = %v, want %v", order, want)
		}
	}
}

// TestScoreBatchHeatAccumulates checks the evaluator maintains the per-
// example hit counters: a candidate that misses positives and covers
// negatives heats exactly those examples.
func TestScoreBatchHeatAccumulates(t *testing.T) {
	_, posG, negG := benchExamples(t, 40, 4, 4)
	e := NewEvaluator(Options{Threads: 1})
	posEx := mustExamples(t, e, posG)
	negEx := mustExamples(t, e, negG)
	ctx := context.Background()

	// The western candidate covers nothing: every positive misses (all heat
	// up) and no negative covers (no heat).
	if _, exact := e.ScoreBatch(ctx, westernCandidate(), posEx, negEx, -1<<30); !exact {
		t.Fatal("unfloored batch must be exact")
	}
	for i, ex := range posEx {
		if ex.Heat() != 1 {
			t.Errorf("positive %d heat = %d, want 1 (missed once)", i, ex.Heat())
		}
	}
	for i, ex := range negEx {
		if ex.Heat() != 0 {
			t.Errorf("negative %d heat = %d, want 0 (never covered)", i, ex.Heat())
		}
	}
}

// BenchmarkScoreCandidates is the small-example-pool benchmark: the pool is
// far smaller than a 16-thread inner pool, so serial candidate scoring
// leaves most workers idle; the two-tier scheduler overlaps candidates and
// must beat it. Tracked via candidate_parallel_speedup in
// BENCH_coverage.json.
func BenchmarkScoreCandidates(b *testing.B) {
	_, posG, negG := benchExamples(b, 120, 6, 6)
	cands := benchCandidates()
	cands = append(cands, cands...) // 12 candidates per refinement sample
	e := NewEvaluator(Options{Threads: 16})
	posEx := mustExamples(b, e, posG)
	negEx := mustExamples(b, e, negG)
	ctx := context.Background()
	// Warm the candidate/repair caches so the modes compare scheduling, not
	// cache state.
	e.ScoreCandidates(ctx, cands, posEx, negEx, -1<<30, 1)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.ScoreCandidates(ctx, cands, posEx, negEx, -1<<30, par)
			}
		})
	}
}
