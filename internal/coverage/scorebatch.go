package coverage

import (
	"context"
	"sort"
	"sync/atomic"

	"dlearn/internal/logic"
)

// ScoreBatch scores one candidate clause over prepared positive and negative
// examples on the evaluator's worker pool, stopping early once the score can
// no longer exceed the caller-supplied floor. The bound is
//
//	PositivesCovered + positives-still-pending - NegativesCovered,
//
// which only shrinks as positives miss and negatives hit; as soon as it drops
// to the floor the candidate provably cannot beat the incumbent and the rest
// of the batch is skipped. The candidate is compiled once before the workers
// start and shared (read-only) by all of them.
//
// Examples are scheduled adaptively: within each tier (positives first,
// then negatives) the batch processes the examples with the highest heat —
// positives that recent candidates missed, negatives that covered recent
// candidates — first, because those are the examples whose outcomes shrink
// the bound. A candidate destined to lose therefore exits after a few hot
// examples instead of wading through the easy ones.
// The ordering never changes an exact result (the tally runs over the whole
// batch) and a non-exact result is discarded by selection either way, so
// adaptivity affects speed only, never what the learner selects.
//
// The boolean result reports whether the batch was scored exactly: true means
// every example was evaluated and the Score is the same value
// ScoreClauseExamples would return; false means the batch stopped early
// (bound proven ≤ floor, or the context was cancelled) and the Score is a
// partial tally whose exact fields depend on scheduling. Selection loops that
// only keep candidates strictly above the floor can therefore discard
// non-exact results without losing determinism.
func (e *Evaluator) ScoreBatch(ctx context.Context, c logic.Clause, pos, neg []*Example, floor int) (Score, bool) {
	return e.scoreBatchDynamic(ctx, c, pos, neg, func() int { return floor })
}

// scoreBatchDynamic is ScoreBatch against a floor that may rise while the
// batch runs: floorFn is re-read at every bound check, so a batch whose
// candidate is overtaken mid-flight (the candidate scheduler raises the
// shared floor when a lower-indexed candidate completes) exits early instead
// of finishing against the stale floor it started with. floorFn must be
// monotone non-decreasing; exactness semantics are unchanged because an
// exact result means every example was evaluated, independent of any floor.
func (e *Evaluator) scoreBatchDynamic(ctx context.Context, c logic.Clause, pos, neg []*Example, floorFn func() int) (Score, bool) {
	nPos, nNeg := len(pos), len(neg)
	if nPos <= floorFn() {
		// Even covering every positive and no negative cannot exceed the
		// floor; skip the whole batch.
		return Score{}, false
	}
	p := e.newProbe(c, true)

	var posCov, posMiss, negCov, done atomic.Int64
	var stopped atomic.Bool
	checkBound := func() {
		if int64(nPos)-posMiss.Load()-negCov.Load() <= int64(floorFn()) {
			stopped.Store(true)
		}
	}
	process := func(i int) {
		if i < nPos {
			if p.coversPositive(ctx, pos[i]) {
				posCov.Add(1)
			} else {
				pos[i].heat.Add(1)
				posMiss.Add(1)
				checkBound()
			}
		} else if p.coversNegative(ctx, neg[i-nPos]) {
			neg[i-nPos].heat.Add(1)
			negCov.Add(1)
			checkBound()
		}
		done.Add(1)
	}

	n := nPos + nNeg
	order := adaptiveOrder(pos, neg)
	e.forEachParallel(ctx, n, func(k int) {
		// Items drained after the bound closes are O(1) no-ops. The bound is
		// also re-checked before each item so a floor that rose since the
		// last bound-closing event (another candidate finished) stops the
		// batch without waiting for one of this batch's own misses.
		if stopped.Load() {
			return
		}
		checkBound()
		if stopped.Load() {
			return
		}
		process(order[k])
	})

	score := Score{PositivesCovered: int(posCov.Load()), NegativesCovered: int(negCov.Load())}
	exact := done.Load() == int64(n) && ctx.Err() == nil
	e.decayHeat(pos, neg)
	return score, exact
}

// decayHeat ages the adaptive-ordering heat counters: every heatDecay-th
// completed batch halves the heat of the examples that batch scored. Without
// decay the counters are monotone, so an example that was hot a million
// batches ago outranks one that is hot now — exactly wrong for a long-lived
// process (a dlearn-serve worker) whose candidate stream drifts. Halving the
// just-scored examples suffices: an example no batch touches anymore cannot
// influence any future order, so its stale heat is harmless. Heat orders
// work only — it never changes an exact score — so the racy read-modify-
// write halving (concurrent batches may add between the load and the store)
// costs at most a lost increment, never correctness.
func (e *Evaluator) decayHeat(pos, neg []*Example) {
	if e.heatDecay <= 0 {
		return
	}
	if e.batches.Add(1)%int64(e.heatDecay) != 0 {
		return
	}
	for _, ex := range pos {
		ex.heat.Store(ex.heat.Load() / 2)
	}
	for _, ex := range neg {
		ex.heat.Store(ex.heat.Load() / 2)
	}
}

// adaptiveOrder returns the processing order of a batch: positives first,
// each tier sorted by heat descending, ties broken by index so a cold batch
// degenerates to the plain positives-then-negatives sweep. The ordering is
// per-tier on purpose: positive misses are the dominant bound-closers (the
// bound starts at len(pos) and a losing candidate must shed most of it), so
// positives always lead; interleaving hot negatives ahead of them was
// measured slower on the coverage bench — a hot negative the current
// candidate does not cover is an expensive probe that shrinks nothing.
// Within the tiers, scheduling recently-missed positives and recently-
// covered negatives first closes the bound sooner. Heat values are
// snapshotted once so concurrent batches updating the counters cannot
// destabilize the sort.
func adaptiveOrder(pos, neg []*Example) []int {
	n := len(pos) + len(neg)
	order := make([]int, n)
	heat := make([]int64, n)
	hotPos, hotNeg := false, false
	for i := range pos {
		order[i] = i
		heat[i] = pos[i].heat.Load()
		hotPos = hotPos || heat[i] != 0
	}
	for i := range neg {
		order[len(pos)+i] = len(pos) + i
		heat[len(pos)+i] = neg[i].heat.Load()
		hotNeg = hotNeg || heat[len(pos)+i] != 0
	}
	byHeatDesc := func(tier []int) {
		sort.SliceStable(tier, func(a, b int) bool {
			return heat[tier[a]] > heat[tier[b]]
		})
	}
	if hotPos {
		byHeatDesc(order[:len(pos)])
	}
	if hotNeg {
		byHeatDesc(order[len(pos):])
	}
	return order
}

// ScoreBatchGrounds is ScoreBatch over raw ground bottom clauses, preparing
// them first. It exists for callers that have not prepared examples; inside
// the learner the prepared-example form is always used. A preparation
// abandoned by cancellation reports a non-exact zero score, the same
// conservative answer a cancelled ScoreBatch produces.
func (e *Evaluator) ScoreBatchGrounds(ctx context.Context, c logic.Clause, pos, neg []logic.Clause, floor int) (Score, bool) {
	posEx, err := e.NewExamples(ctx, pos)
	if err != nil {
		return Score{}, false
	}
	negEx, err := e.NewExamples(ctx, neg)
	if err != nil {
		return Score{}, false
	}
	return e.ScoreBatch(ctx, c, posEx, negEx, floor)
}
