package coverage

import (
	"context"
	"sync/atomic"

	"dlearn/internal/logic"
)

// ScoreBatch scores one candidate clause over prepared positive and negative
// examples on the evaluator's worker pool, stopping early once the score can
// no longer exceed the caller-supplied floor. The bound is
//
//	PositivesCovered + positives-still-pending - NegativesCovered,
//
// which only shrinks as positives miss and negatives hit; as soon as it drops
// to the floor the candidate provably cannot beat the incumbent and the rest
// of the batch is skipped. The candidate is compiled once before the workers
// start and shared (read-only) by all of them.
//
// The boolean result reports whether the batch was scored exactly: true means
// every example was evaluated and the Score is the same value
// ScoreClauseExamples would return; false means the batch stopped early
// (bound proven ≤ floor, or the context was cancelled) and the Score is a
// partial tally whose exact fields depend on scheduling. Selection loops that
// only keep candidates strictly above the floor can therefore discard
// non-exact results without losing determinism.
func (e *Evaluator) ScoreBatch(ctx context.Context, c logic.Clause, pos, neg []*Example, floor int) (Score, bool) {
	nPos, nNeg := len(pos), len(neg)
	if nPos <= floor {
		// Even covering every positive and no negative cannot exceed the
		// floor; skip the whole batch.
		return Score{}, false
	}
	p := e.newProbe(c, true)

	var posCov, posMiss, negCov, done atomic.Int64
	var stopped atomic.Bool
	checkBound := func() {
		if int64(nPos)-posMiss.Load()-negCov.Load() <= int64(floor) {
			stopped.Store(true)
		}
	}
	process := func(i int) {
		if i < nPos {
			if p.coversPositive(ctx, pos[i]) {
				posCov.Add(1)
			} else {
				posMiss.Add(1)
				checkBound()
			}
		} else if p.coversNegative(ctx, neg[i-nPos]) {
			negCov.Add(1)
			checkBound()
		}
		done.Add(1)
	}

	n := nPos + nNeg
	e.forEachParallel(ctx, n, func(i int) {
		// Items drained after the bound closes are O(1) no-ops.
		if stopped.Load() {
			return
		}
		process(i)
	})

	score := Score{PositivesCovered: int(posCov.Load()), NegativesCovered: int(negCov.Load())}
	exact := done.Load() == int64(n) && ctx.Err() == nil
	return score, exact
}

// ScoreBatchGrounds is ScoreBatch over raw ground bottom clauses, preparing
// them first. It exists for callers that have not prepared examples; inside
// the learner the prepared-example form is always used. A preparation
// abandoned by cancellation reports a non-exact zero score, the same
// conservative answer a cancelled ScoreBatch produces.
func (e *Evaluator) ScoreBatchGrounds(ctx context.Context, c logic.Clause, pos, neg []logic.Clause, floor int) (Score, bool) {
	posEx, err := e.NewExamples(ctx, pos)
	if err != nil {
		return Score{}, false
	}
	negEx, err := e.NewExamples(ctx, neg)
	if err != nil {
		return Score{}, false
	}
	return e.ScoreBatch(ctx, c, posEx, negEx, floor)
}
