package coverage

import (
	"context"
	"math/rand"
	"testing"

	"dlearn/internal/logic"
)

// TestBitsMatchesReference is the property test for the bitmap: a long
// random op sequence applied to a Bits and to a map-based reference set must
// agree on every observation, across sizes that cover the word-boundary
// edge cases.
func TestBitsMatchesReference(t *testing.T) {
	for _, n := range []int{0, 1, 7, 63, 64, 65, 130, 200} {
		rng := rand.New(rand.NewSource(int64(n) + 42))
		b := NewBits(n)
		ref := make(map[int]bool)
		check := func(step int) {
			if got, want := b.Count(), len(ref); got != want {
				t.Fatalf("n=%d step %d: Count = %d, want %d", n, step, got, want)
			}
			if got, want := b.Any(), len(ref) > 0; got != want {
				t.Fatalf("n=%d step %d: Any = %v, want %v", n, step, got, want)
			}
			for i := 0; i < n; i++ {
				if b.Get(i) != ref[i] {
					t.Fatalf("n=%d step %d: Get(%d) = %v, want %v", n, step, i, b.Get(i), ref[i])
				}
			}
			// Indices and Next must walk exactly the reference set in order.
			want := make([]int, 0, len(ref))
			for i := 0; i < n; i++ {
				if ref[i] {
					want = append(want, i)
				}
			}
			got := b.Indices()
			if len(got) != len(want) {
				t.Fatalf("n=%d step %d: Indices = %v, want %v", n, step, got, want)
			}
			next := 0
			for k, w := range want {
				if got[k] != w {
					t.Fatalf("n=%d step %d: Indices[%d] = %d, want %d", n, step, k, got[k], w)
				}
				if i := b.Next(next); i != w {
					t.Fatalf("n=%d step %d: Next(%d) = %d, want %d", n, step, next, i, w)
				}
				next = w + 1
			}
			if i := b.Next(next); i != -1 {
				t.Fatalf("n=%d step %d: Next past the last set bit = %d, want -1", n, step, i)
			}
		}
		for step := 0; step < 300; step++ {
			if n == 0 {
				break
			}
			switch rng.Intn(5) {
			case 0:
				i := rng.Intn(n)
				b.Set(i)
				ref[i] = true
			case 1:
				i := rng.Intn(n)
				b.Clear(i)
				delete(ref, i)
			case 2: // AndNot with a random bitmap
				o := NewBits(n)
				for i := 0; i < n; i++ {
					if rng.Intn(3) == 0 {
						o.Set(i)
						delete(ref, i)
					}
				}
				b.AndNot(o)
			case 3: // And with a random bitmap
				o := NewBits(n)
				keep := make(map[int]bool)
				for i := 0; i < n; i++ {
					if rng.Intn(2) == 0 {
						o.Set(i)
						if ref[i] {
							keep[i] = true
						}
					}
				}
				b.And(o)
				ref = keep
			case 4: // Or with a random bitmap
				o := NewBits(n)
				for i := 0; i < n; i++ {
					if rng.Intn(4) == 0 {
						o.Set(i)
						ref[i] = true
					}
				}
				b.Or(o)
			}
			check(step)
		}
	}
}

// TestFullBits checks the all-set constructor across word boundaries.
func TestFullBits(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		b := FullBits(n)
		if b.Count() != n {
			t.Errorf("FullBits(%d).Count = %d", n, b.Count())
		}
		if n > 0 && (!b.Get(0) || !b.Get(n-1)) {
			t.Errorf("FullBits(%d) endpoints not set", n)
		}
		// No bit beyond n may leak into Count after an AndNot with itself.
		c := b.Clone()
		c.AndNot(b)
		if c.Any() {
			t.Errorf("FullBits(%d) AndNot itself leaves bits: %v", n, c.Indices())
		}
	}
}

// TestCloneIsIndependent guards against aliased words.
func TestCloneIsIndependent(t *testing.T) {
	b := NewBits(10)
	b.Set(3)
	c := b.Clone()
	c.Set(7)
	if b.Get(7) || !c.Get(3) {
		t.Error("Clone shares storage with the original")
	}
}

// TestCoverageBitsMatchesCoveredExamples checks the bitmap against the
// index-slice API it replaces in the learner: same clause, same examples,
// same coverage.
func TestCoverageBitsMatchesCoveredExamples(t *testing.T) {
	_, posG, _ := benchExamples(t, 40, 6, 1)
	ctx := context.Background()
	e := NewEvaluator(Options{Threads: 4})
	posEx := mustExamples(t, e, posG)
	for ci, c := range append(benchCandidates(), westernCandidate()) {
		bits := e.CoverageBits(ctx, c, posEx)
		want := e.CoveredPositiveExamples(ctx, c, posEx)
		got := bits.Indices()
		if len(got) != len(want) {
			t.Fatalf("candidate %d: CoverageBits = %v, CoveredPositiveExamples = %v", ci, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("candidate %d: CoverageBits = %v, CoveredPositiveExamples = %v", ci, got, want)
			}
		}
		if bits.Count() != e.CountPositiveExamples(ctx, c, posEx) {
			t.Fatalf("candidate %d: bitmap count disagrees with CountPositiveExamples", ci)
		}
	}
}

// TestUncoveredBitmapMatchesRecount is the cross-iteration property test of
// the covering loop's frontier maintenance: simulate the loop's accept
// iterations with real clauses, maintaining uncovered incrementally via
// AndNot, and after every step compare against a from-scratch recount that
// rescores every accepted clause over every example. The two must agree
// bit for bit — this is the invariant that lets the learner never rescore
// an accepted clause.
func TestUncoveredBitmapMatchesRecount(t *testing.T) {
	_, posG, _ := benchExamples(t, 60, 8, 1)
	ctx := context.Background()
	e := NewEvaluator(Options{Threads: 4})
	posEx := mustExamples(t, e, posG)

	var accepted []logic.Clause
	uncovered := FullBits(len(posEx))
	for _, c := range benchCandidates() {
		bits := e.CoverageBits(ctx, c, posEx)
		uncovered.AndNot(bits)
		accepted = append(accepted, c)

		// From-scratch recount: example i is uncovered iff no accepted
		// clause covers it.
		for i, ex := range posEx {
			coveredByAny := false
			for _, a := range accepted {
				if e.CoversPositiveExample(ctx, a, ex) {
					coveredByAny = true
					break
				}
			}
			if uncovered.Get(i) == coveredByAny {
				t.Fatalf("after %d accepted clauses: bitmap says uncovered(%d)=%v, recount says covered=%v",
					len(accepted), i, uncovered.Get(i), coveredByAny)
			}
		}
	}
	if !uncovered.Any() && len(posEx) > 0 {
		// The bench candidates cover only the comedy positives plus the
		// over-general clause which covers everything; if everything ended
		// covered the property above was vacuous for the tail. Not an error,
		// but make sure at least one step had a non-trivial frontier.
		t.Log("frontier emptied; property held on every prefix")
	}
}
