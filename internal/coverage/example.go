package coverage

import (
	"dlearn/internal/logic"
	"dlearn/internal/repair"
	"dlearn/internal/subsumption"
)

// Example is a training or test example prepared for repeated coverage
// testing: its ground bottom clause with the subsumed side precompiled, its
// CFD-only repair expansion (Section 4.3), its full repaired-clause
// expansion (used for negative coverage, Definition 3.6), and the MD-only
// projection G_md^e. Preparing an example once and probing it with thousands
// of candidate clauses is what makes the covering search practical.
type Example struct {
	// Ground is the ground bottom clause of the example.
	Ground logic.Clause

	hasCFD   bool
	prep     *subsumption.Prepared
	stripped *subsumption.Prepared
	cfdExp   []*subsumption.Prepared
	repaired []*subsumption.Prepared
}

// NewExample prepares a ground bottom clause for repeated coverage tests.
func (e *Evaluator) NewExample(ground logic.Clause) *Example {
	ex := &Example{
		Ground: ground,
		hasCFD: clauseHasCFDRepairs(ground),
		prep:   e.checker.Prepare(ground),
	}
	ex.stripped = e.checker.Prepare(StripCFDConnected(ground))
	cfdOpts := e.repOpts
	cfdOpts.Origin = logic.OriginCFD
	for _, c := range repair.RepairedClauses(ground, cfdOpts) {
		ex.cfdExp = append(ex.cfdExp, e.checker.Prepare(c))
	}
	for _, c := range repair.RepairedClauses(ground, e.repOpts) {
		ex.repaired = append(ex.repaired, e.checker.Prepare(c))
	}
	return ex
}

// NewExamples prepares a batch of ground bottom clauses in parallel.
func (e *Evaluator) NewExamples(grounds []logic.Clause) []*Example {
	out := make([]*Example, len(grounds))
	if len(grounds) == 0 {
		return out
	}
	jobs := make(chan int, len(grounds))
	for i := range grounds {
		jobs <- i
	}
	close(jobs)
	done := make(chan struct{})
	workers := e.threads
	if workers > len(grounds) {
		workers = len(grounds)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				out[i] = e.NewExample(grounds[i])
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	return out
}

// CoversPositiveExample is CoversPositive against a prepared example.
func (e *Evaluator) CoversPositiveExample(c logic.Clause, ex *Example) bool {
	if ok, _ := ex.prep.Subsumes(c); ok {
		return true
	}
	if !clauseHasCFDRepairs(c) && !ex.hasCFD {
		return false
	}
	cmd := e.stripCached(c)
	if ok, _ := ex.stripped.Subsumes(cmd); !ok {
		return false
	}
	cExp := e.expandCFD(c)
	if len(cExp) == 0 || len(ex.cfdExp) == 0 {
		return false
	}
	for _, ce := range cExp {
		matched := false
		for _, g := range ex.cfdExp {
			if ok, _ := g.Subsumes(ce); ok {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// CoversNegativeExample is CoversNegative against a prepared example.
func (e *Evaluator) CoversNegativeExample(c logic.Clause, ex *Example) bool {
	cReps := e.repairedCached(c)
	for _, cr := range cReps {
		for _, gr := range ex.repaired {
			if ok, _ := gr.SubsumesPlain(cr); ok {
				return true
			}
		}
	}
	return false
}

// CountPositiveExamples counts the prepared examples covered as positives,
// in parallel.
func (e *Evaluator) CountPositiveExamples(c logic.Clause, exs []*Example) int {
	return e.countParallelExamples(exs, func(ex *Example) bool { return e.CoversPositiveExample(c, ex) })
}

// CountNegativeExamples counts the prepared examples covered as negatives,
// in parallel.
func (e *Evaluator) CountNegativeExamples(c logic.Clause, exs []*Example) int {
	return e.countParallelExamples(exs, func(ex *Example) bool { return e.CoversNegativeExample(c, ex) })
}

// ScoreClauseExamples computes a clause's score over prepared examples.
func (e *Evaluator) ScoreClauseExamples(c logic.Clause, pos, neg []*Example) Score {
	return Score{
		PositivesCovered: e.CountPositiveExamples(c, pos),
		NegativesCovered: e.CountNegativeExamples(c, neg),
	}
}

// CoveredPositiveExamples returns the indices of the prepared positive
// examples covered by the clause.
func (e *Evaluator) CoveredPositiveExamples(c logic.Clause, exs []*Example) []int {
	mask := e.maskParallelExamples(exs, func(ex *Example) bool { return e.CoversPositiveExample(c, ex) })
	var out []int
	for i, b := range mask {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// DefinitionCoversExample reports whether any clause of the definition
// covers the prepared example.
func (e *Evaluator) DefinitionCoversExample(d *logic.Definition, ex *Example) bool {
	for _, c := range d.Clauses {
		if e.CoversPositiveExample(c, ex) {
			return true
		}
	}
	return false
}

func (e *Evaluator) countParallelExamples(exs []*Example, pred func(*Example) bool) int {
	mask := e.maskParallelExamples(exs, pred)
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

func (e *Evaluator) maskParallelExamples(exs []*Example, pred func(*Example) bool) []bool {
	grounds := make([]logic.Clause, len(exs))
	for i, ex := range exs {
		grounds[i] = ex.Ground
	}
	// Reuse the generic worker pool, dispatching on index.
	mask := make([]bool, len(exs))
	if len(exs) == 0 {
		return mask
	}
	workers := e.threads
	if workers > len(exs) {
		workers = len(exs)
	}
	if workers <= 1 {
		for i, ex := range exs {
			mask[i] = pred(ex)
		}
		return mask
	}
	jobs := make(chan int, len(exs))
	for i := range exs {
		jobs <- i
	}
	close(jobs)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				mask[i] = pred(exs[i])
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	return mask
}
