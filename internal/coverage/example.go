package coverage

import (
	"context"
	"sync/atomic"

	"dlearn/internal/logic"
	"dlearn/internal/repair"
	"dlearn/internal/subsumption"
)

// Example is a training or test example prepared for repeated coverage
// testing: its ground bottom clause with the subsumed side precompiled, its
// CFD-only repair expansion (Section 4.3), its full repaired-clause
// expansion (used for negative coverage, Definition 3.6), and the MD-only
// projection G_md^e. Preparing an example once and probing it with thousands
// of candidate clauses is what makes the covering search practical.
type Example struct {
	// Ground is the ground bottom clause of the example.
	Ground logic.Clause

	hasCFD   bool
	prep     *subsumption.Prepared
	stripped *subsumption.Prepared
	cfdExp   []*subsumption.Prepared
	repaired []*subsumption.Prepared

	// heat counts the bound-closing events this example produced across the
	// batches that scored it: misses when used as a positive, covers when
	// used as a negative. ScoreBatch schedules the hottest examples first so
	// the early-exit bound closes as soon as possible (see adaptiveOrder).
	// Maintained atomically by the evaluator's workers.
	heat atomic.Int64
}

// Heat returns the example's accumulated bound-closing event count.
func (ex *Example) Heat() int64 { return ex.heat.Load() }

// NewExample prepares a ground bottom clause for repeated coverage tests.
func (e *Evaluator) NewExample(ctx context.Context, ground logic.Clause) *Example {
	ex := &Example{
		Ground: ground,
		hasCFD: clauseHasCFDRepairs(ground),
		prep:   e.checker.Prepare(ground),
	}
	ex.stripped = e.checker.Prepare(StripCFDConnected(ground))
	cfdOpts := e.repOpts
	cfdOpts.Origin = logic.OriginCFD
	for _, c := range repair.RepairedClausesContext(ctx, ground, cfdOpts) {
		ex.cfdExp = append(ex.cfdExp, e.checker.Prepare(c))
	}
	for _, c := range repair.RepairedClausesContext(ctx, ground, e.repOpts) {
		ex.repaired = append(ex.repaired, e.checker.Prepare(c))
	}
	return ex
}

// NewExamples prepares a batch of ground bottom clauses in parallel. A
// cancelled context returns ctx.Err() alongside the partial batch: the
// result still has one non-nil entry per ground clause (unprocessed entries
// are filled with conservative empty-clause stubs), but a batch returned
// with an error was abandoned mid-preparation and must not be scored.
// Earlier versions swallowed the cancellation and handed the stub-filled
// batch back silently, leaving callers that forgot the ctx.Err() check
// scoring stubs; the explicit error closes that hole.
func (e *Evaluator) NewExamples(ctx context.Context, grounds []logic.Clause) ([]*Example, error) {
	out := make([]*Example, len(grounds))
	e.forEachParallel(ctx, len(grounds), func(i int) {
		out[i] = e.NewExample(ctx, grounds[i])
	})
	// A cancelled pool leaves entries unprocessed. Fill them with stubs so
	// the no-nil-entries invariant holds even for callers that inspect the
	// batch despite the error; the batch is being abandoned, so the stubs
	// only have to answer conservatively (no coverage), never correctly,
	// which keeps the fill O(1) per entry instead of preparing the real
	// clause.
	var empty *subsumption.Prepared
	for i := range out {
		if out[i] == nil {
			if empty == nil {
				empty = e.checker.Prepare(logic.Clause{})
			}
			out[i] = &Example{Ground: grounds[i], prep: empty, stripped: empty}
		}
	}
	return out, ctx.Err()
}

// CoversPositiveExample is CoversPositive against a prepared example. For
// one-shot tests the candidate is compiled directly; batch APIs resolve a
// shared probe once and reuse its compilation across examples and workers.
func (e *Evaluator) CoversPositiveExample(ctx context.Context, c logic.Clause, ex *Example) bool {
	return e.newProbe(c, false).coversPositive(ctx, ex)
}

// CoversNegativeExample is CoversNegative against a prepared example.
func (e *Evaluator) CoversNegativeExample(ctx context.Context, c logic.Clause, ex *Example) bool {
	return e.newProbe(c, false).coversNegative(ctx, ex)
}

// CountPositiveExamples counts the prepared examples covered as positives,
// in parallel.
func (e *Evaluator) CountPositiveExamples(ctx context.Context, c logic.Clause, exs []*Example) int {
	p := e.newProbe(c, true)
	return e.countParallelExamples(ctx, exs, func(ex *Example) bool { return p.coversPositive(ctx, ex) })
}

// CountNegativeExamples counts the prepared examples covered as negatives,
// in parallel.
func (e *Evaluator) CountNegativeExamples(ctx context.Context, c logic.Clause, exs []*Example) int {
	p := e.newProbe(c, true)
	return e.countParallelExamples(ctx, exs, func(ex *Example) bool { return p.coversNegative(ctx, ex) })
}

// ScoreClauseExamples computes a clause's score over prepared examples.
func (e *Evaluator) ScoreClauseExamples(ctx context.Context, c logic.Clause, pos, neg []*Example) Score {
	return Score{
		PositivesCovered: e.CountPositiveExamples(ctx, c, pos),
		NegativesCovered: e.CountNegativeExamples(ctx, c, neg),
	}
}

// CoveredPositiveExamples returns the indices of the prepared positive
// examples covered by the clause.
func (e *Evaluator) CoveredPositiveExamples(ctx context.Context, c logic.Clause, exs []*Example) []int {
	p := e.newProbe(c, true)
	mask := e.maskParallelExamples(ctx, exs, func(ex *Example) bool { return p.coversPositive(ctx, ex) })
	var out []int
	for i, b := range mask {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// DefinitionCoversExample reports whether any clause of the definition
// covers the prepared example.
func (e *Evaluator) DefinitionCoversExample(ctx context.Context, d *logic.Definition, ex *Example) bool {
	for _, c := range d.Clauses {
		if e.CoversPositiveExample(ctx, c, ex) {
			return true
		}
	}
	return false
}

func (e *Evaluator) countParallelExamples(ctx context.Context, exs []*Example, pred func(*Example) bool) int {
	mask := e.maskParallelExamples(ctx, exs, pred)
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

func (e *Evaluator) maskParallelExamples(ctx context.Context, exs []*Example, pred func(*Example) bool) []bool {
	mask := make([]bool, len(exs))
	e.forEachParallel(ctx, len(exs), func(i int) {
		mask[i] = pred(exs[i])
	})
	return mask
}

// forEachParallel runs fn(i) for i in [0, n) on the evaluator's worker pool.
// Workers poll ctx between items and skip the remaining work once it is
// cancelled, so a cancelled batch drains promptly instead of finishing every
// queued coverage test.
func (e *Evaluator) forEachParallel(ctx context.Context, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	workers := e.threads
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				if ctx.Err() != nil {
					break
				}
				fn(i)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
