package coverage

import (
	"context"
	"testing"
)

// TestHeatDecayBoundsCounters pins the heat-decay satellite: with decay
// disabled the hit counters grow monotonically with every batch (the
// pre-decay behavior), while a decaying evaluator halves them periodically
// so they track recent batches instead of the whole process history.
func TestHeatDecayBoundsCounters(t *testing.T) {
	ctx := context.Background()
	_, posG, negG := benchExamples(t, 40, 4, 4)
	const rounds = 10

	// Disabled decay: the western candidate misses every positive in every
	// batch, so heat is exactly the batch count.
	e := NewEvaluator(Options{Threads: 1, HeatDecayInterval: -1})
	posEx := mustExamples(t, e, posG)
	negEx := mustExamples(t, e, negG)
	for r := 0; r < rounds; r++ {
		e.ScoreBatch(ctx, westernCandidate(), posEx, negEx, -1<<30)
	}
	for i, ex := range posEx {
		if ex.Heat() != rounds {
			t.Errorf("decay disabled: positive %d heat = %d, want %d", i, ex.Heat(), rounds)
		}
	}

	// Decay every batch: each round adds one miss and then halves, so the
	// counter can never exceed one — the long-lived process stays responsive
	// to recent behavior instead of accumulating forever.
	e = NewEvaluator(Options{Threads: 1, HeatDecayInterval: 1})
	posEx = mustExamples(t, e, posG)
	negEx = mustExamples(t, e, negG)
	for r := 0; r < rounds; r++ {
		e.ScoreBatch(ctx, westernCandidate(), posEx, negEx, -1<<30)
	}
	for i, ex := range posEx {
		if ex.Heat() > 1 {
			t.Errorf("decay interval 1: positive %d heat = %d, want <= 1", i, ex.Heat())
		}
	}
}

// TestHeatDecayDefaultInterval checks the zero value selects the default
// period rather than disabling decay.
func TestHeatDecayDefaultInterval(t *testing.T) {
	e := NewEvaluator(Options{})
	if e.heatDecay != DefaultHeatDecayInterval {
		t.Fatalf("heatDecay = %d, want default %d", e.heatDecay, DefaultHeatDecayInterval)
	}
	if NewEvaluator(Options{HeatDecayInterval: -1}).heatDecay != -1 {
		t.Fatal("negative interval must disable decay, not reset to default")
	}
}

// TestHeatDecayKeepsScoresExact verifies decay is a scheduling-only
// mechanism: scores from a decaying evaluator match the non-decaying one.
func TestHeatDecayKeepsScoresExact(t *testing.T) {
	ctx := context.Background()
	_, posG, negG := benchExamples(t, 40, 6, 6)
	cands := benchCandidates()
	plain := NewEvaluator(Options{Threads: 2, HeatDecayInterval: -1})
	decaying := NewEvaluator(Options{Threads: 2, HeatDecayInterval: 1})
	posA := mustExamples(t, plain, posG)
	negA := mustExamples(t, plain, negG)
	posB := mustExamples(t, decaying, posG)
	negB := mustExamples(t, decaying, negG)
	for r := 0; r < 3; r++ {
		for _, c := range cands {
			sa, ea := plain.ScoreBatch(ctx, c, posA, negA, -1<<30)
			sb, eb := decaying.ScoreBatch(ctx, c, posB, negB, -1<<30)
			if !ea || !eb || sa != sb {
				t.Fatalf("round %d: decay changed scoring: (%+v,%v) vs (%+v,%v)", r, sa, ea, sb, eb)
			}
		}
	}
}
