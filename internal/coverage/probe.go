package coverage

import (
	"context"
	"sync"

	"dlearn/internal/logic"
	"dlearn/internal/subsumption"
)

// probe is the per-candidate state for coverage tests against prepared
// examples: the candidate compiled once (the dominant cost of a fast-path
// θ-subsumption test used to be recompiling it per example), plus lazily
// resolved compilations of its CFD-stripped projection, CFD expansion and
// full repair expansion. A probe is resolved once per batch and shared
// read-mostly by all workers; the clause's canonical key is therefore
// computed a constant number of times per batch instead of once per example.
type probe struct {
	e      *Evaluator
	c      logic.Clause
	hasCFD bool
	// cached selects whether compilations go through the evaluator's
	// lock-striped caches (batch scoring, where candidates repeat across
	// batches) or are compiled directly (one-shot tests of clauses that will
	// never be seen again, e.g. the generalization blocking scan).
	cached bool
	cand   *subsumption.CompiledCandidate
	// plans memoizes θ-subsumption literal plans for the probes this batch
	// issues, keyed by (compiled candidate, prepared example); batch-scoped
	// like the probe itself, so its size is bounded by one batch's probes.
	plans *subsumption.PlanCache

	mu          sync.Mutex
	stripped    *subsumption.CompiledCandidate
	cfdExp      []*subsumption.CompiledCandidate
	cfdResolved bool
	repaired    []*subsumption.CompiledCandidate
	repResolved bool
}

// newProbe compiles the candidate side of a clause. cached selects
// evaluator-cache reuse (see probe.cached).
func (e *Evaluator) newProbe(c logic.Clause, cached bool) *probe {
	var cand *subsumption.CompiledCandidate
	if cached {
		cand = e.candidateCached(c)
	} else {
		cand = subsumption.CompileCandidate(c)
	}
	return &probe{
		e: e, c: c,
		hasCFD: clauseHasCFDRepairs(c),
		cached: cached,
		cand:   cand,
		plans:  subsumption.NewPlanCache(),
	}
}

// subsumes issues one instrumented θ-subsumption probe: the evaluator's
// planner setting and the probe's batch-scoped plan cache are applied, and
// the probe's work feeds the plan telemetry counters.
func (p *probe) subsumes(ctx context.Context, cc *subsumption.CompiledCandidate, prep *subsumption.Prepared, plain bool) bool {
	ok, _, st := cc.Probe(ctx, prep, subsumption.ProbeOptions{
		Plain:     plain,
		NoPlanner: p.e.noPlanner,
		Cache:     p.plans,
	})
	p.e.addProbeStats(st)
	return ok
}

// compile compiles a derived clause (stripped projection, repair expansion)
// honouring the probe's caching mode.
func (p *probe) compile(c logic.Clause) *subsumption.CompiledCandidate {
	if p.cached {
		return p.e.candidateCached(c)
	}
	return subsumption.CompileCandidate(c)
}

// strippedCand returns the compiled CFD-stripped projection of the
// candidate, resolving it on first use.
func (p *probe) strippedCand() *subsumption.CompiledCandidate {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stripped == nil {
		p.stripped = p.compile(p.e.stripCached(p.c))
	}
	return p.stripped
}

// cfdCands returns the compiled CFD expansion of the candidate. An
// expansion truncated by cancellation is returned but not memoized, matching
// the evaluator cache semantics.
func (p *probe) cfdCands(ctx context.Context) []*subsumption.CompiledCandidate {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfdResolved {
		return p.cfdExp
	}
	clauses := p.e.expandCFD(ctx, p.c)
	out := make([]*subsumption.CompiledCandidate, len(clauses))
	for i, ce := range clauses {
		out[i] = p.compile(ce)
	}
	if ctx.Err() == nil {
		p.cfdExp, p.cfdResolved = out, true
	}
	return out
}

// repairedCands returns the compiled full repair expansion of the candidate,
// with the same truncation semantics as cfdCands.
func (p *probe) repairedCands(ctx context.Context) []*subsumption.CompiledCandidate {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.repResolved {
		return p.repaired
	}
	clauses := p.e.repairedCached(ctx, p.c)
	out := make([]*subsumption.CompiledCandidate, len(clauses))
	for i, cr := range clauses {
		out[i] = p.compile(cr)
	}
	if ctx.Err() == nil {
		p.repaired, p.repResolved = out, true
	}
	return out
}

// coversPositive is CoversPositiveExample with the candidate side resolved
// through the probe (Section 4.3 procedure).
func (p *probe) coversPositive(ctx context.Context, ex *Example) bool {
	if p.subsumes(ctx, p.cand, ex.prep, false) {
		return true
	}
	if !p.hasCFD && !ex.hasCFD {
		// MD-only clauses: θ-subsumption is necessary as well as sufficient
		// (Theorem 4.9), so the failed check is conclusive.
		return false
	}
	if !p.subsumes(ctx, p.strippedCand(), ex.stripped, false) {
		return false
	}
	cExp := p.cfdCands(ctx)
	if len(cExp) == 0 || len(ex.cfdExp) == 0 {
		return false
	}
	for _, ce := range cExp {
		matched := false
		for _, g := range ex.cfdExp {
			if p.subsumes(ctx, ce, g, false) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// coversNegative is CoversNegativeExample through the probe (Definition 3.6
// via Proposition 4.10).
func (p *probe) coversNegative(ctx context.Context, ex *Example) bool {
	for _, cr := range p.repairedCands(ctx) {
		for _, gr := range ex.repaired {
			if p.subsumes(ctx, cr, gr, true) {
				return true
			}
		}
	}
	return false
}
