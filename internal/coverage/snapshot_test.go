package coverage

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"dlearn/internal/logic"
	"dlearn/internal/persist"
)

func snapshotTestKey() persist.Key {
	var k persist.Key
	k[0] = 0xAB
	return k
}

func snapshotGrounds(n int) []logic.Clause {
	out := make([]logic.Clause, n)
	for i := range out {
		genre := "comedy"
		if i%2 == 1 {
			genre = "drama"
		}
		out[i] = simpleGround(genre)
	}
	return out
}

// TestLoadOrPrepareMissThenHit drives the full store round trip: the first
// call misses and writes the snapshot, the second is served from it, and
// the restored examples score exactly like the fresh ones.
func TestLoadOrPrepareMissThenHit(t *testing.T) {
	ctx := context.Background()
	store := persist.NewDirStore(t.TempDir())
	key := snapshotTestKey()
	posG, negG := snapshotGrounds(6), snapshotGrounds(4)

	e1 := NewEvaluator(Options{Threads: 2})
	pos1, neg1, out1, err := e1.LoadOrPrepareExamples(ctx, store, key, posG, negG)
	if err != nil {
		t.Fatalf("first LoadOrPrepare: %v", err)
	}
	if out1.Hit {
		t.Fatal("first call hit an empty store")
	}
	if out1.Reason != "not found" {
		t.Fatalf("first miss reason = %q, want %q", out1.Reason, "not found")
	}
	if out1.WriteErr != nil {
		t.Fatalf("write-back failed: %v", out1.WriteErr)
	}
	if out1.Bytes == 0 {
		t.Fatal("write-back reported zero bytes")
	}

	e2 := NewEvaluator(Options{Threads: 2})
	pos2, neg2, out2, err := e2.LoadOrPrepareExamples(ctx, store, key, posG, negG)
	if err != nil {
		t.Fatalf("second LoadOrPrepare: %v", err)
	}
	if !out2.Hit {
		t.Fatalf("second call missed (%s)", out2.Reason)
	}
	if len(pos2) != len(pos1) || len(neg2) != len(neg1) {
		t.Fatalf("restored %d/%d examples, want %d/%d", len(pos2), len(neg2), len(pos1), len(neg1))
	}

	c := simpleClause()
	s1 := e1.ScoreClauseExamples(ctx, c, pos1, neg1)
	s2 := e2.ScoreClauseExamples(ctx, c, pos2, neg2)
	if s1 != s2 {
		t.Fatalf("restored examples score %+v, fresh score %+v", s2, s1)
	}
}

// TestLoadOrPrepareStaleExamples asserts the defense in depth behind the
// fingerprint: even when a snapshot exists under the requested key, stored
// ground clauses that do not match the requested ones force a re-prepare.
func TestLoadOrPrepareStaleExamples(t *testing.T) {
	ctx := context.Background()
	store := persist.NewDirStore(t.TempDir())
	key := snapshotTestKey()
	e := NewEvaluator(Options{Threads: 2})
	if _, _, _, err := e.LoadOrPrepareExamples(ctx, store, key, snapshotGrounds(4), nil); err != nil {
		t.Fatalf("seeding store: %v", err)
	}

	// Same key, different ground clauses (as a mis-keyed caller would do).
	changed := snapshotGrounds(4)
	changed[2] = simpleGround("western")
	_, _, out, err := e.LoadOrPrepareExamples(ctx, store, key, changed, nil)
	if err != nil {
		t.Fatalf("LoadOrPrepare with changed grounds: %v", err)
	}
	if out.Hit {
		t.Fatal("changed ground clauses served from the snapshot")
	}
	if out.Reason != "stale examples" {
		t.Fatalf("miss reason = %q, want %q", out.Reason, "stale examples")
	}
	if out.PrepareTime == 0 {
		t.Fatal("stale snapshot did not trigger a re-prepare")
	}

	// A different example count is also stale.
	_, _, out, err = e.LoadOrPrepareExamples(ctx, store, key, snapshotGrounds(3), nil)
	if err != nil {
		t.Fatalf("LoadOrPrepare with fewer grounds: %v", err)
	}
	if out.Hit || out.Reason != "stale examples" {
		t.Fatalf("count mismatch: hit=%v reason=%q", out.Hit, out.Reason)
	}
}

// TestLoadOrPrepareCorruptSnapshot proves graceful fallback: a truncated or
// corrupted snapshot file is rejected by the codec and preparation runs
// fresh, repairing the store for the next run.
func TestLoadOrPrepareCorruptSnapshot(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store := persist.NewDirStore(dir)
	key := snapshotTestKey()
	posG := snapshotGrounds(4)
	e := NewEvaluator(Options{Threads: 2})
	if _, _, _, err := e.LoadOrPrepareExamples(ctx, store, key, posG, nil); err != nil {
		t.Fatalf("seeding store: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("snapshot dir: entries=%d err=%v", len(entries), err)
	}
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	// Truncate the file mid-payload.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncating snapshot: %v", err)
	}

	pos, _, out, err := e.LoadOrPrepareExamples(ctx, store, key, posG, nil)
	if err != nil {
		t.Fatalf("LoadOrPrepare over corrupt snapshot: %v", err)
	}
	if out.Hit {
		t.Fatal("corrupt snapshot reported as a hit")
	}
	if len(pos) != len(posG) {
		t.Fatalf("fallback prepared %d examples, want %d", len(pos), len(posG))
	}
	// The write-back replaced the corrupt file; the next call hits again.
	_, _, out, err = e.LoadOrPrepareExamples(ctx, store, key, posG, nil)
	if err != nil {
		t.Fatalf("LoadOrPrepare after repair: %v", err)
	}
	if !out.Hit {
		t.Fatalf("store not repaired after corrupt-snapshot fallback (%s)", out.Reason)
	}
}

// TestLoadOrPrepareNilStore pins the no-store path: plain preparation, no
// hit, no write.
func TestLoadOrPrepareNilStore(t *testing.T) {
	e := NewEvaluator(Options{Threads: 2})
	pos, neg, out, err := e.LoadOrPrepareExamples(context.Background(), nil, persist.Key{}, snapshotGrounds(2), snapshotGrounds(1))
	if err != nil {
		t.Fatalf("LoadOrPrepare: %v", err)
	}
	if out.Hit || out.Reason != "no store" || out.Bytes != 0 {
		t.Fatalf("nil store outcome = %+v", out)
	}
	if len(pos) != 2 || len(neg) != 1 {
		t.Fatalf("prepared %d/%d examples, want 2/1", len(pos), len(neg))
	}
}

// TestLoadOrPrepareCancelled propagates the preparation error.
func TestLoadOrPrepareCancelled(t *testing.T) {
	e := NewEvaluator(Options{Threads: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := e.LoadOrPrepareExamples(ctx, nil, persist.Key{}, snapshotGrounds(2), nil)
	if err != context.Canceled {
		t.Fatalf("cancelled LoadOrPrepare error = %v, want context.Canceled", err)
	}
}

// TestLoadOrPrepareOldVersionSnapshot proves the codec-version upgrade path
// end to end: a snapshot in the previous format version under the right key
// is cleanly rejected, preparation runs fresh, and the write-back upgrades
// the stored snapshot so the next call hits.
func TestLoadOrPrepareOldVersionSnapshot(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store := persist.NewDirStore(dir)
	key := snapshotTestKey()
	posG := snapshotGrounds(4)
	e := NewEvaluator(Options{Threads: 2})
	if _, _, _, err := e.LoadOrPrepareExamples(ctx, store, key, posG, nil); err != nil {
		t.Fatalf("seeding store: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("snapshot dir: entries=%d err=%v", len(entries), err)
	}
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	// Rewrite the header to the previous format version with a valid
	// checksum, as a file written by an older binary would carry.
	old := data[: len(data)-4 : len(data)-4]
	old[6], old[7] = 0, 1
	old = binary.BigEndian.AppendUint32(old, crc32.ChecksumIEEE(old))
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatalf("writing old-version snapshot: %v", err)
	}

	pos, _, out, err := e.LoadOrPrepareExamples(ctx, store, key, posG, nil)
	if err != nil {
		t.Fatalf("LoadOrPrepare over old-version snapshot: %v", err)
	}
	if out.Hit {
		t.Fatal("old-version snapshot reported as a hit")
	}
	if len(pos) != len(posG) {
		t.Fatalf("fallback prepared %d examples, want %d", len(pos), len(posG))
	}
	// The write-back upgraded the file in place; the next call hits.
	_, _, out, err = e.LoadOrPrepareExamples(ctx, store, key, posG, nil)
	if err != nil {
		t.Fatalf("LoadOrPrepare after upgrade: %v", err)
	}
	if !out.Hit {
		t.Fatalf("store not upgraded after old-version fallback (%s)", out.Reason)
	}
}
