package coverage

import (
	"testing"

	"dlearn/internal/bottomclause"
	"dlearn/internal/constraints"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
)

// movieDB builds a small IMDB+BOM-style database with heterogeneous titles,
// a CFD-violating locale relation, and a highGrossing target.
func movieDB() (*relation.Instance, *relation.Relation, []constraints.MD, []constraints.CFD) {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("movies",
		relation.Attr("id", "imdb_id"), relation.Attr("title", "imdb_title"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("mov2genres",
		relation.Attr("id", "imdb_id"), relation.Attr("genre", "genre")))
	s.MustAdd(relation.NewRelation("mov2locale",
		relation.Attr("title", "imdb_title"), relation.Attr("language", "language"), relation.Attr("country", "country")))

	in := relation.NewInstance(s)
	in.MustInsert("movies", "m1", "Superbad (2007)", "2007")
	in.MustInsert("movies", "m2", "Zoolander (2001)", "2001")
	in.MustInsert("movies", "m3", "Orphanage (2007)", "2007")
	in.MustInsert("mov2genres", "m1", "comedy")
	in.MustInsert("mov2genres", "m2", "comedy")
	in.MustInsert("mov2genres", "m3", "drama")
	in.MustInsert("mov2locale", "Superbad (2007)", "English", "USA")
	in.MustInsert("mov2locale", "Superbad (2007)", "English", "Ireland")

	target := relation.NewRelation("highGrossing", relation.Attr("title", "bom_title"))
	md := constraints.SimpleMD("md_title", "highGrossing", "title", "movies", "title")
	cfd := constraints.NewCFD("cfd_locale", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	return in, target, []constraints.MD{md}, []constraints.CFD{cfd}
}

func builderFor(useCFDs bool) *bottomclause.Builder {
	in, target, mds, cfds := movieDB()
	cfg := bottomclause.DefaultConfig()
	cfg.UseCFDs = useCFDs
	cfg.SampleSize = 20
	return bottomclause.NewBuilder(in, target, mds, cfds, cfg)
}

// comedyClause is a learned-style clause: high grossing movies are comedies,
// joining the BOM title to the IMDB title through the MD repair literals.
func comedyClause() logic.Clause {
	x, tt, y, z := logic.Var("x"), logic.Var("t"), logic.Var("y"), logic.Var("z")
	vx, vt := logic.Var("vx"), logic.Var("vt")
	cond := logic.Condition{Op: logic.CondSim, L: x, R: tt}
	return logic.NewClause(
		logic.Rel("highGrossing", x),
		logic.Rel("movies", y, tt, z),
		logic.Rel("mov2genres", y, logic.Const("comedy")),
		logic.Sim(x, tt),
		logic.RepairInGroup("md_title", "md_title#c", logic.OriginMD, x, vx, cond),
		logic.RepairInGroup("md_title", "md_title#c", logic.OriginMD, tt, vt, cond),
		logic.Eq(vx, vt),
	)
}

func dramaClause() logic.Clause {
	c := comedyClause()
	for i, l := range c.Body {
		if l.Pred == "mov2genres" {
			c.Body[i].Args[1] = logic.Const("drama")
		}
	}
	return c
}

func eval() *Evaluator { return NewEvaluator(Options{Threads: 2}) }

func TestCoversPositiveMDOnly(t *testing.T) {
	b := builderFor(false)
	e := eval()
	gSuperbad, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	gOrphanage, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Orphanage"))
	if err != nil {
		t.Fatal(err)
	}
	if !e.CoversPositive(comedyClause(), gSuperbad) {
		t.Error("comedy clause should cover the Superbad example via the MD match")
	}
	if e.CoversPositive(comedyClause(), gOrphanage) {
		t.Error("comedy clause should not cover the drama movie Orphanage")
	}
	if !e.CoversPositive(dramaClause(), gOrphanage) {
		t.Error("drama clause should cover the Orphanage example")
	}
}

func TestCoversPositiveWithCFDRepairs(t *testing.T) {
	b := builderFor(true)
	e := eval()
	g, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	// The full bottom clause of the same example must cover it
	// (Proposition 4.3) even when CFD repair literals are present.
	c, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	if !e.CoversPositive(c, g) {
		t.Error("bottom clause with CFD repair literals should cover its own example")
	}
	// A plain comedy clause (no CFD literals) still covers it.
	if !e.CoversPositive(comedyClause(), g) {
		t.Error("comedy clause should cover the Superbad example with CFD-annotated ground clause")
	}
}

func TestCoversNegative(t *testing.T) {
	b := builderFor(false)
	e := eval()
	gZoolander, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Zoolander"))
	if err != nil {
		t.Fatal(err)
	}
	gOrphanage, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Orphanage"))
	if err != nil {
		t.Fatal(err)
	}
	// Zoolander is a comedy, so the comedy clause covers it as a negative
	// example (some repair supports it); Orphanage is not.
	if !e.CoversNegative(comedyClause(), gZoolander) {
		t.Error("comedy clause should cover the Zoolander negative example")
	}
	if e.CoversNegative(comedyClause(), gOrphanage) {
		t.Error("comedy clause should not cover the Orphanage negative example")
	}
}

func TestStripCFDConnected(t *testing.T) {
	b := builderFor(true)
	c, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	stripped := StripCFDConnected(c)
	for _, l := range stripped.Body {
		if l.IsRepair() && l.Origin == logic.OriginCFD {
			t.Fatal("StripCFDConnected left a CFD repair literal")
		}
		if l.Pred == "mov2locale" {
			t.Fatal("StripCFDConnected left a literal connected to a CFD repair literal")
		}
	}
	// The MD machinery must survive.
	var mdRepairs int
	for _, l := range stripped.Body {
		if l.IsRepair() && l.Origin == logic.OriginMD {
			mdRepairs++
		}
	}
	if mdRepairs == 0 {
		t.Fatal("StripCFDConnected removed MD repair literals")
	}
}

func TestScoreAndCounts(t *testing.T) {
	b := builderFor(false)
	e := eval()
	var pos, neg []logic.Clause
	for _, title := range []string{"Superbad", "Zoolander"} {
		g, err := b.GroundBottomClause(relation.NewTuple("highGrossing", title))
		if err != nil {
			t.Fatal(err)
		}
		pos = append(pos, g)
	}
	gOrphanage, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Orphanage"))
	if err != nil {
		t.Fatal(err)
	}
	neg = append(neg, gOrphanage)

	score := e.ScoreClause(comedyClause(), pos, neg)
	if score.PositivesCovered != 2 || score.NegativesCovered != 0 {
		t.Errorf("score = %+v, want 2 positives and 0 negatives", score)
	}
	if score.Value() != 2 {
		t.Errorf("score value = %d", score.Value())
	}
	covered := e.CoveredPositives(comedyClause(), pos)
	if len(covered) != 2 {
		t.Errorf("CoveredPositives = %v", covered)
	}
	if e.CountNegatives(dramaClause(), neg) != 1 {
		t.Error("drama clause should cover the Orphanage negative example")
	}
}

func TestDefinitionCovers(t *testing.T) {
	b := builderFor(false)
	e := eval()
	def := &logic.Definition{Target: "highGrossing"}
	def.Add(comedyClause(), logic.ClauseStats{})
	gSuperbad, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	gOrphanage, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Orphanage"))
	if err != nil {
		t.Fatal(err)
	}
	if !e.DefinitionCovers(def, gSuperbad) {
		t.Error("definition should cover Superbad")
	}
	if e.DefinitionCovers(def, gOrphanage) {
		t.Error("definition should not cover Orphanage")
	}
	def.Add(dramaClause(), logic.ClauseStats{})
	if !e.DefinitionCovers(def, gOrphanage) {
		t.Error("after adding the drama clause the definition should cover Orphanage")
	}
}

func TestEvaluatorThreadsDefault(t *testing.T) {
	if NewEvaluator(Options{}).Threads() <= 0 {
		t.Fatal("default thread count must be positive")
	}
	if NewEvaluator(Options{Threads: 3}).Threads() != 3 {
		t.Fatal("explicit thread count not honoured")
	}
}

func TestEmptyGroundSets(t *testing.T) {
	e := eval()
	if e.CountPositives(comedyClause(), nil) != 0 || e.CountNegatives(comedyClause(), nil) != 0 {
		t.Fatal("empty ground sets must count zero")
	}
}
