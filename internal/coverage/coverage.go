// Package coverage implements DLearn's coverage semantics: whether a clause
// (possibly containing repair literals) covers a positive example under
// Definition 3.4 or a negative example under Definition 3.6, evaluated
// efficiently against ground bottom clauses with the procedure of
// Section 4.3. Batch scoring over many examples runs on a worker pool, which
// is the parallel coverage testing the paper's experiments enable with 16
// threads.
package coverage

import (
	"context"
	"runtime"
	"sync/atomic"

	"dlearn/internal/logic"
	"dlearn/internal/repair"
	"dlearn/internal/subsumption"
)

// Options configures an Evaluator.
type Options struct {
	// Subsumption bounds each θ-subsumption search.
	Subsumption subsumption.Options
	// Repair bounds repaired-clause expansion.
	Repair repair.Options
	// Threads is the worker-pool size for batch scoring. Zero means
	// runtime.NumCPU().
	Threads int
	// CandidateParallelism is the outer-tier worker count of the candidate
	// scheduler: how many independent candidates ScoreCandidates keeps in
	// flight at once (each running its batch on the inner Threads pool).
	// Zero means DefaultCandidateParallelism.
	CandidateParallelism int
	// CacheShards is the number of lock stripes per memo table (rounded up
	// to a power of two). Zero means DefaultCacheShards.
	CacheShards int
	// HeatDecayInterval is the period, in scored batches, of the adaptive
	// ordering's heat decay: every HeatDecayInterval batches ScoreBatch
	// halves the heat counters of the examples it just scored, so the
	// hottest-first schedule tracks the recent candidates of a long-lived
	// process instead of its whole history. Zero means
	// DefaultHeatDecayInterval; negative disables decay (counters grow
	// monotonically, the pre-decay behavior).
	HeatDecayInterval int
}

// DefaultHeatDecayInterval is the default heat-decay period in batches: long
// enough that the hottest-first ordering has stable signal within one
// hill-climb, short enough that a server process scoring many runs forgets
// examples that stopped closing bounds.
const DefaultHeatDecayInterval = 64

// Evaluator answers coverage questions. It is safe for concurrent use.
// Repair-literal expansions, CFD-stripped projections and compiled
// candidates are memoized in lock-striped caches (keyed by the clause's
// canonical key), because the same ground bottom clauses are tested against
// thousands of candidate clauses during a learning run and 16+ workers probe
// the caches at once.
type Evaluator struct {
	checker   *subsumption.Checker
	repOpts   repair.Options
	threads   int
	candPar   int
	heatDecay int
	// noPlanner disables the θ-subsumption literal planner on every probe
	// the evaluator issues (Options.Subsumption.DisablePlanner).
	noPlanner bool

	// batches counts completed ScoreBatch calls; every heatDecay-th batch
	// halves the heat of the examples it scored (see adaptiveOrder).
	batches atomic.Int64

	// Plan telemetry: probes issued, probes the planner ordered, and search
	// nodes explored, accumulated across every probe-based coverage test.
	// The learner reads deltas around each candidate batch and reports them
	// on CandidateBatchScored events.
	planProbes  atomic.Int64
	planPlanned atomic.Int64
	planNodes   atomic.Int64

	repCache   *shardedCache[[]logic.Clause]
	cfdCache   *shardedCache[[]logic.Clause]
	stripCache *shardedCache[logic.Clause]
	candCache  *shardedCache[*subsumption.CompiledCandidate]
}

// NewEvaluator builds an evaluator.
func NewEvaluator(opts Options) *Evaluator {
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	candPar := opts.CandidateParallelism
	if candPar <= 0 {
		candPar = DefaultCandidateParallelism
	}
	heatDecay := opts.HeatDecayInterval
	if heatDecay == 0 {
		heatDecay = DefaultHeatDecayInterval
	}
	return &Evaluator{
		checker:    subsumption.New(opts.Subsumption),
		repOpts:    opts.Repair,
		threads:    threads,
		candPar:    candPar,
		heatDecay:  heatDecay,
		noPlanner:  opts.Subsumption.DisablePlanner,
		repCache:   newShardedCache[[]logic.Clause](opts.CacheShards),
		cfdCache:   newShardedCache[[]logic.Clause](opts.CacheShards),
		stripCache: newShardedCache[logic.Clause](opts.CacheShards),
		candCache:  newShardedCache[*subsumption.CompiledCandidate](opts.CacheShards),
	}
}

// Threads returns the worker-pool size used for batch scoring.
func (e *Evaluator) Threads() int { return e.threads }

// CandidateParallelism returns the outer-tier worker count of the candidate
// scheduler.
func (e *Evaluator) CandidateParallelism() int { return e.candPar }

// CacheShards returns the number of lock stripes per memo table.
func (e *Evaluator) CacheShards() int { return len(e.repCache.shards) }

// candidateCached returns the compiled (subsuming-side) form of a clause,
// compiling it on first use. Compiled candidates are immutable and shared by
// all workers probing prepared examples.
func (e *Evaluator) candidateCached(c logic.Clause) *subsumption.CompiledCandidate {
	return e.candCache.getOrCompute(c.Key(), func() *subsumption.CompiledCandidate {
		return subsumption.CompileCandidate(c)
	})
}

// CoversPositive reports whether clause c covers the positive example whose
// ground bottom clause is ge, following Section 4.3:
//
//  1. If c θ-subsumes ge (Definition 4.4), it covers the example
//     (Theorem 4.6).
//  2. Otherwise the MD-only parts c_md and ge_md are compared; if c_md does
//     not subsume ge_md the example is not covered (Theorem 4.9 makes this
//     exact for MD-only repair literals).
//  3. Otherwise the CFD repair literals of both clauses are applied and the
//     example is covered iff every resulting clause of c subsumes at least
//     one resulting clause of ge.
func (e *Evaluator) CoversPositive(c, ge logic.Clause) bool {
	return e.CoversPositiveContext(context.Background(), c, ge)
}

// CoversPositiveContext is CoversPositive with cancellation; a cancelled
// test conservatively reports no coverage (callers check ctx.Err()).
func (e *Evaluator) CoversPositiveContext(ctx context.Context, c, ge logic.Clause) bool {
	if ok, _ := e.checker.SubsumesContext(ctx, c, ge); ok {
		return true
	}
	if !clauseHasCFDRepairs(c) && !clauseHasCFDRepairs(ge) {
		// MD-only clauses: θ-subsumption is necessary as well as sufficient
		// (Theorem 4.9), so the failed check is conclusive.
		return false
	}
	cmd := e.stripCached(c)
	gmd := e.stripCached(ge)
	if ok, _ := e.checker.SubsumesContext(ctx, cmd, gmd); !ok {
		return false
	}
	cExp := e.expandCFD(ctx, c)
	geExp := e.expandCFD(ctx, ge)
	if len(cExp) == 0 || len(geExp) == 0 {
		return false
	}
	for _, ce := range cExp {
		matched := false
		for _, g := range geExp {
			if ok, _ := e.checker.SubsumesContext(ctx, ce, g); ok {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// CoversNegative reports whether clause c covers the negative example whose
// ground bottom clause is ge, following Definition 3.6 and Proposition 4.10:
// c covers the example iff some repaired clause of c θ-subsumes some
// repaired clause of ge.
func (e *Evaluator) CoversNegative(c, ge logic.Clause) bool {
	return e.CoversNegativeContext(context.Background(), c, ge)
}

// CoversNegativeContext is CoversNegative with cancellation.
func (e *Evaluator) CoversNegativeContext(ctx context.Context, c, ge logic.Clause) bool {
	cReps := e.repairedCached(ctx, c)
	geReps := e.repairedCached(ctx, ge)
	for _, cr := range cReps {
		for _, gr := range geReps {
			if ok, _ := e.checker.SubsumesPlainContext(ctx, cr, gr); ok {
				return true
			}
		}
	}
	return false
}

// expandCFD applies only the CFD repair groups of a clause, leaving MD
// repair literals in place. Results are memoized; an expansion truncated by
// cancellation is returned but never cached.
func (e *Evaluator) expandCFD(ctx context.Context, c logic.Clause) []logic.Clause {
	key := c.Key()
	if cached, ok := e.cfdCache.get(key); ok {
		return cached
	}
	opts := e.repOpts
	opts.Origin = logic.OriginCFD
	out := repair.RepairedClausesContext(ctx, c, opts)
	if ctx.Err() != nil {
		return out
	}
	e.cfdCache.set(key, out)
	return out
}

// repairedCached memoizes full repaired-clause expansion. An expansion
// truncated by cancellation is returned but never cached.
func (e *Evaluator) repairedCached(ctx context.Context, c logic.Clause) []logic.Clause {
	key := c.Key()
	if cached, ok := e.repCache.get(key); ok {
		return cached
	}
	out := repair.RepairedClausesContext(ctx, c, e.repOpts)
	if ctx.Err() != nil {
		return out
	}
	e.repCache.set(key, out)
	return out
}

// stripCached memoizes StripCFDConnected.
func (e *Evaluator) stripCached(c logic.Clause) logic.Clause {
	return e.stripCache.getOrCompute(c.Key(), func() logic.Clause {
		return StripCFDConnected(c)
	})
}

// clauseHasCFDRepairs reports whether any repair literal of the clause comes
// from a CFD.
func clauseHasCFDRepairs(c logic.Clause) bool {
	for _, l := range c.Body {
		if l.IsRepair() && l.Origin == logic.OriginCFD {
			return true
		}
	}
	return false
}

// StripCFDConnected returns the clause obtained by removing every CFD repair
// literal and every body literal connected to one (the clause C_md /
// G_md^e of Section 4.3), followed by the standard clean-up of dangling
// auxiliary literals.
func StripCFDConnected(c logic.Clause) logic.Clause {
	dropLit := make(map[int]bool)
	for i, l := range c.Body {
		if l.IsRepair() && l.Origin == logic.OriginCFD {
			dropLit[i] = true
		}
	}
	for i, l := range c.Body {
		if !l.IsRelation() {
			continue
		}
		for _, ri := range c.ConnectedRepairLiterals(i) {
			if c.Body[ri].Origin == logic.OriginCFD {
				dropLit[i] = true
				break
			}
		}
	}
	out := logic.Clause{Head: c.Head.Clone()}
	for i, l := range c.Body {
		if dropLit[i] {
			continue
		}
		out.Body = append(out.Body, l.Clone())
	}
	return out.DropDanglingAuxiliaries()
}

// Score is the coverage statistics of a clause over a labelled example set.
type Score struct {
	PositivesCovered int
	NegativesCovered int
}

// Value is the search score used by the learner: positives minus negatives
// covered (Section 4.2).
func (s Score) Value() int { return s.PositivesCovered - s.NegativesCovered }

// CountPositives returns how many of the ground bottom clauses are covered
// as positive examples, evaluating in parallel.
func (e *Evaluator) CountPositives(c logic.Clause, grounds []logic.Clause) int {
	return e.countParallel(grounds, func(g logic.Clause) bool { return e.CoversPositive(c, g) })
}

// CountNegatives returns how many of the ground bottom clauses are covered
// as negative examples, evaluating in parallel.
func (e *Evaluator) CountNegatives(c logic.Clause, grounds []logic.Clause) int {
	return e.countParallel(grounds, func(g logic.Clause) bool { return e.CoversNegative(c, g) })
}

// ScoreClause computes the full score of a clause against positive and
// negative ground bottom clauses.
func (e *Evaluator) ScoreClause(c logic.Clause, pos, neg []logic.Clause) Score {
	return Score{
		PositivesCovered: e.CountPositives(c, pos),
		NegativesCovered: e.CountNegatives(c, neg),
	}
}

// CoveredPositives returns the indices of the positive ground bottom clauses
// covered by the clause.
func (e *Evaluator) CoveredPositives(c logic.Clause, grounds []logic.Clause) []int {
	mask := e.maskParallel(grounds, func(g logic.Clause) bool { return e.CoversPositive(c, g) })
	var out []int
	for i, b := range mask {
		if b {
			out = append(out, i)
		}
	}
	return out
}

func (e *Evaluator) countParallel(grounds []logic.Clause, pred func(logic.Clause) bool) int {
	mask := e.maskParallel(grounds, pred)
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

func (e *Evaluator) maskParallel(grounds []logic.Clause, pred func(logic.Clause) bool) []bool {
	mask := make([]bool, len(grounds))
	e.forEachParallel(context.Background(), len(grounds), func(i int) {
		mask[i] = pred(grounds[i])
	})
	return mask
}

// DefinitionCovers reports whether any clause of the definition covers the
// (positive-style) example with ground bottom clause ge. It is the
// prediction rule used when evaluating a learned definition on test data.
func (e *Evaluator) DefinitionCovers(d *logic.Definition, ge logic.Clause) bool {
	return e.DefinitionCoversContext(context.Background(), d, ge)
}

// DefinitionCoversContext is DefinitionCovers with cancellation; a cancelled
// test conservatively reports no coverage (callers check ctx.Err()).
func (e *Evaluator) DefinitionCoversContext(ctx context.Context, d *logic.Definition, ge logic.Clause) bool {
	for _, c := range d.Clauses {
		if e.CoversPositiveContext(ctx, c, ge) {
			return true
		}
	}
	return false
}
