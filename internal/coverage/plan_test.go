package coverage

import (
	"context"
	"reflect"
	"testing"

	"dlearn/internal/logic"
	"dlearn/internal/relation"
	"dlearn/internal/subsumption"
)

// planTestExamples prepares the movie examples (positives: all three
// highGrossing candidates; negatives reuse the same grounds) on the given
// evaluator.
func planTestExamples(t *testing.T, e *Evaluator) []*Example {
	t.Helper()
	b := builderFor(false)
	var grounds []logic.Clause
	for _, title := range []string{"Superbad", "Zoolander", "Orphanage"} {
		g, err := b.GroundBottomClause(relation.NewTuple("highGrossing", title))
		if err != nil {
			t.Fatal(err)
		}
		grounds = append(grounds, g)
	}
	exs, err := e.NewExamples(context.Background(), grounds)
	if err != nil {
		t.Fatal(err)
	}
	return exs
}

// TestScoringPlannerInvariance pins the planner's permutation property at
// the scoring layer: every score computed through the probe-based paths is
// identical with the planner on and off.
func TestScoringPlannerInvariance(t *testing.T) {
	ctx := context.Background()
	on := NewEvaluator(Options{Threads: 2})
	off := NewEvaluator(Options{Threads: 2, Subsumption: subsumption.Options{DisablePlanner: true}})
	exsOn := planTestExamples(t, on)
	exsOff := planTestExamples(t, off)
	cands := []logic.Clause{comedyClause(), dramaClause()}

	for i, c := range cands {
		sOn := on.ScoreClauseExamples(ctx, c, exsOn, exsOn)
		sOff := off.ScoreClauseExamples(ctx, c, exsOff, exsOff)
		if sOn != sOff {
			t.Errorf("candidate %d: planner-on score %+v != planner-off %+v", i, sOn, sOff)
		}
		bOn, exOn := on.ScoreBatch(ctx, c, exsOn, exsOn, -1<<30)
		bOff, exOff := off.ScoreBatch(ctx, c, exsOff, exsOff, -1<<30)
		if bOn != bOff || exOn != exOff {
			t.Errorf("candidate %d: planner-on batch (%+v,%v) != planner-off (%+v,%v)", i, bOn, exOn, bOff, exOff)
		}
	}
	rOn := on.ScoreCandidates(ctx, cands, exsOn, nil, -1<<30, 2)
	rOff := off.ScoreCandidates(ctx, cands, exsOff, nil, -1<<30, 2)
	if !reflect.DeepEqual(rOn, rOff) {
		t.Errorf("ScoreCandidates diverged: planner-on %+v, planner-off %+v", rOn, rOff)
	}
}

// TestPlanCountersAccumulate pins the plan telemetry: probe-based scoring
// advances the evaluator's counters, planned probes only when the planner is
// enabled.
func TestPlanCountersAccumulate(t *testing.T) {
	ctx := context.Background()
	on := NewEvaluator(Options{Threads: 2})
	exs := planTestExamples(t, on)
	if snap := on.PlanSnapshot(); snap.Probes != 0 || snap.Planned != 0 || snap.Nodes != 0 {
		t.Fatalf("fresh evaluator has nonzero plan counters: %+v", snap)
	}
	on.ScoreClauseExamples(ctx, comedyClause(), exs, exs)
	snap := on.PlanSnapshot()
	if snap.Probes == 0 || snap.Planned == 0 || snap.Nodes == 0 {
		t.Fatalf("planner-on scoring left counters empty: %+v", snap)
	}
	if snap.Planned > snap.Probes {
		t.Fatalf("planned %d exceeds probes %d", snap.Planned, snap.Probes)
	}

	off := NewEvaluator(Options{Threads: 2, Subsumption: subsumption.Options{DisablePlanner: true}})
	exsOff := planTestExamples(t, off)
	off.ScoreClauseExamples(ctx, comedyClause(), exsOff, exsOff)
	snapOff := off.PlanSnapshot()
	if snapOff.Probes == 0 || snapOff.Nodes == 0 {
		t.Fatalf("planner-off scoring left counters empty: %+v", snapOff)
	}
	if snapOff.Planned != 0 {
		t.Fatalf("planner-off scoring planned %d probes", snapOff.Planned)
	}
}

// TestComparePlannerOrder sanity-checks the differential measurement: every
// (candidate, example) pair is probed, the tallies partition the probes, and
// outcomes never diverge on these budget-free workloads.
func TestComparePlannerOrder(t *testing.T) {
	e := NewEvaluator(Options{Threads: 2})
	exs := planTestExamples(t, e)
	cands := []logic.Clause{comedyClause(), dramaClause()}
	cmp := e.ComparePlannerOrder(context.Background(), cands, exs)
	if want := len(cands) * len(exs); cmp.Probes != want {
		t.Fatalf("compared %d probes, want %d", cmp.Probes, want)
	}
	if cmp.Wins+cmp.Losses+cmp.Ties != cmp.Probes {
		t.Fatalf("tallies do not partition the probes: %+v", cmp)
	}
	if cmp.Divergences != 0 {
		t.Fatalf("planner changed probe outcomes: %+v", cmp)
	}
	if cmp.BudgetHits != 0 {
		t.Fatalf("default budget exhausted on the tiny movie probes: %+v", cmp)
	}
	if cmp.PlannedNodes <= 0 || cmp.FixedNodes <= 0 {
		t.Fatalf("node totals empty: %+v", cmp)
	}
	if cmp.NodesSaved() != cmp.FixedNodes-cmp.PlannedNodes {
		t.Fatalf("NodesSaved inconsistent: %+v", cmp)
	}
	if rate := cmp.WinRate(); rate < 0 || rate > 1 {
		t.Fatalf("win rate %v out of range", rate)
	}
	if (PlanComparison{}).WinRate() != 0 {
		t.Fatal("empty comparison must report win rate 0")
	}
}
