package coverage

import (
	"context"
	"math/bits"

	"dlearn/internal/logic"
)

// Bits is a compact bitmap over example indices: one bit per example of a
// fixed-size example set. The covering loop keeps the set of still-uncovered
// positive examples as a Bits and subtracts each accepted clause's coverage
// bitmap from it, so coverage computed once (during the acceptance test) is
// never recomputed from scratch in a later iteration.
//
// A Bits is not safe for concurrent mutation; the parallel coverage APIs
// build the bitmap from a per-index mask after the workers finish.
type Bits struct {
	n     int
	words []uint64
}

// NewBits returns an empty bitmap over n example indices.
func NewBits(n int) *Bits {
	return &Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// FullBits returns a bitmap over n example indices with every bit set — the
// initial "all positives uncovered" state of the covering loop.
func FullBits(n int) *Bits {
	b := NewBits(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (uint64(1) << r) - 1
	}
	return b
}

// bitsFromMask packs a per-index boolean mask into a bitmap.
func bitsFromMask(mask []bool) *Bits {
	b := NewBits(len(mask))
	for i, set := range mask {
		if set {
			b.words[i/64] |= uint64(1) << (i % 64)
		}
	}
	return b
}

// Len returns the size of the index space the bitmap covers.
func (b *Bits) Len() int { return b.n }

// Set marks index i.
func (b *Bits) Set(i int) { b.words[i/64] |= uint64(1) << (i % 64) }

// Clear unmarks index i.
func (b *Bits) Clear(i int) { b.words[i/64] &^= uint64(1) << (i % 64) }

// Get reports whether index i is marked.
func (b *Bits) Get(i int) bool { return b.words[i/64]&(uint64(1)<<(i%64)) != 0 }

// Count returns the number of marked indices.
func (b *Bits) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether at least one index is marked.
func (b *Bits) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AndNot removes every index marked in o (b &^= o). The bitmaps must cover
// the same example set.
func (b *Bits) AndNot(o *Bits) {
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// And intersects with o (b &= o). The bitmaps must cover the same example
// set.
func (b *Bits) And(o *Bits) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions with o (b |= o). The bitmaps must cover the same example set.
func (b *Bits) Or(o *Bits) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// Next returns the first marked index ≥ from, or -1 if there is none.
func (b *Bits) Next(from int) int {
	if from < 0 {
		from = 0
	}
	for from < b.n {
		w := b.words[from/64] >> (from % 64)
		if w != 0 {
			i := from + bits.TrailingZeros64(w)
			if i >= b.n {
				return -1
			}
			return i
		}
		from = (from/64 + 1) * 64
	}
	return -1
}

// Indices returns the marked indices in ascending order.
func (b *Bits) Indices() []int {
	out := make([]int, 0, b.Count())
	for i := b.Next(0); i >= 0; i = b.Next(i + 1) {
		out = append(out, i)
	}
	return out
}

// Clone returns an independent copy.
func (b *Bits) Clone() *Bits {
	out := &Bits{n: b.n, words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// CoverageBits returns the positive-coverage bitmap of a clause over a
// prepared example set, evaluating on the worker pool: bit i is set iff the
// clause covers exs[i] as a positive example. The covering loop calls this
// once per accepted clause — the acceptance test's positive count is the
// bitmap's Count, and subtracting the bitmap from the uncovered set replaces
// re-scoring the clause in later iterations. A cancelled context returns a
// partial bitmap; callers check ctx.Err() before trusting it.
func (e *Evaluator) CoverageBits(ctx context.Context, c logic.Clause, exs []*Example) *Bits {
	p := e.newProbe(c, true)
	mask := e.maskParallelExamples(ctx, exs, func(ex *Example) bool { return p.coversPositive(ctx, ex) })
	return bitsFromMask(mask)
}
