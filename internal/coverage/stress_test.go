package coverage

import (
	"context"
	"sync"
	"testing"

	"dlearn/internal/logic"
)

// westernCandidate requires a genre absent from the bench database, so it
// covers no example at all: every positive misses, which closes the
// early-exit bound with the whole negative batch still pending.
func westernCandidate() logic.Clause {
	x, tt, y, z := logic.Var("x"), logic.Var("t"), logic.Var("y"), logic.Var("z")
	vx, vt := logic.Var("vx"), logic.Var("vt")
	cond := logic.Condition{Op: logic.CondSim, L: x, R: tt}
	return logic.NewClause(
		logic.Rel("highGrossing", x),
		logic.Rel("movies", y, tt, z),
		logic.Rel("mov2genres", y, logic.Const("western")),
		logic.Sim(x, tt),
		logic.RepairInGroup("md_title", "md_title#c", logic.OriginMD, x, vx, cond),
		logic.RepairInGroup("md_title", "md_title#c", logic.OriginMD, tt, vt, cond),
		logic.Eq(vx, vt),
	)
}

// TestEvaluatorConcurrentStress hammers one shared Evaluator from many
// goroutines with a mix of batch scoring (with and without early-exit
// floors), example preparation and cancelled batches. Run under -race it
// checks the lock-striped caches and shared compiled candidates; the
// assertions check that exact results are deterministic: every exact score
// must equal the score a single-threaded evaluator computes for the same
// fixed-seed workload.
func TestEvaluatorConcurrentStress(t *testing.T) {
	_, posG, negG := benchExamples(t, 40, 6, 6)
	cands := append(benchCandidates(), westernCandidate())
	ctx := context.Background()

	// Reference scores from a serial evaluator.
	ref := NewEvaluator(Options{Threads: 1})
	refPos := mustExamples(t, ref, posG)
	refNeg := mustExamples(t, ref, negG)
	want := make([]Score, len(cands))
	for i, c := range cands {
		want[i] = ref.ScoreClauseExamples(ctx, c, refPos, refNeg)
	}

	// Few stripes on purpose: more goroutines collide on each lock.
	e := NewEvaluator(Options{Threads: 4, CacheShards: 2})
	posEx := mustExamples(t, e, posG)
	negEx := mustExamples(t, e, negG)

	const workers = 8
	const iters = 4
	noFloor := -1 << 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for ci, c := range cands {
					switch (w + it + ci) % 4 {
					case 0:
						// Unfloored batch: always exact and deterministic.
						s, exact := e.ScoreBatch(ctx, c, posEx, negEx, noFloor)
						if !exact {
							t.Errorf("unfloored ScoreBatch reported non-exact for candidate %d", ci)
						} else if s != want[ci] {
							t.Errorf("candidate %d: concurrent score %+v, serial %+v", ci, s, want[ci])
						}
					case 1:
						// Floor at the candidate's own value: the batch may
						// early-exit, but an exact result must still match.
						s, exact := e.ScoreBatch(ctx, c, posEx, negEx, want[ci].Value())
						if exact && s != want[ci] {
							t.Errorf("candidate %d: floored exact score %+v, serial %+v", ci, s, want[ci])
						}
					case 2:
						// Concurrent example preparation against the shared
						// caches, probed immediately.
						ex := e.NewExample(ctx, posG[(w+it)%len(posG)])
						e.CoversPositiveExample(ctx, c, ex)
						e.CoversNegativeExample(ctx, c, ex)
					default:
						// Cancelled batches must stay conservative (non-exact)
						// and must not poison the caches for other workers.
						cctx, cancel := context.WithCancel(ctx)
						cancel()
						if _, exact := e.ScoreBatch(cctx, c, posEx, negEx, noFloor); exact {
							t.Errorf("cancelled ScoreBatch reported an exact score")
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// After the stress, the shared evaluator must still score exactly.
	for ci, c := range cands {
		if got := e.ScoreClauseExamples(ctx, c, posEx, negEx); got != want[ci] {
			t.Errorf("candidate %d after stress: score %+v, want %+v", ci, got, want[ci])
		}
	}
}

// TestScoreBatchEarlyExit checks the early-exit contract on a serial
// evaluator: a floor the candidate cannot exceed yields a non-exact result,
// and a batch that runs to completion matches ScoreClauseExamples.
func TestScoreBatchEarlyExit(t *testing.T) {
	_, posG, negG := benchExamples(t, 40, 6, 6)
	cands := append(benchCandidates(), westernCandidate())
	ctx := context.Background()
	e := NewEvaluator(Options{Threads: 1})
	posEx := mustExamples(t, e, posG)
	negEx := mustExamples(t, e, negG)

	earlyExits := 0
	for ci, c := range cands {
		full := e.ScoreClauseExamples(ctx, c, posEx, negEx)
		if s, exact := e.ScoreBatch(ctx, c, posEx, negEx, -1<<30); !exact || s != full {
			t.Errorf("candidate %d: unfloored batch %+v (exact=%v), want %+v", ci, s, exact, full)
		}
		// A floor of len(pos) can never be exceeded: the batch must refuse
		// without scoring anything.
		if s, exact := e.ScoreBatch(ctx, c, posEx, negEx, len(posEx)); exact || s != (Score{}) {
			t.Errorf("candidate %d: impossible floor scored %+v (exact=%v)", ci, s, exact)
		}
		if full.Value() < len(posEx) {
			// Flooring at the candidate's own value closes the bound; unless
			// the closing test happens to be the batch's final item this is
			// an early exit. An exact result must still match the full score.
			s, exact := e.ScoreBatch(ctx, c, posEx, negEx, full.Value())
			if exact && s != full {
				t.Errorf("candidate %d: floored exact score %+v, want %+v", ci, s, full)
			}
			if !exact {
				earlyExits++
			}
		}
	}
	if earlyExits == 0 {
		t.Error("no candidate triggered a mid-batch early exit; the bound is not being applied")
	}
}
