package coverage

import (
	"context"
	"time"

	"dlearn/internal/logic"
	"dlearn/internal/persist"
	"dlearn/internal/subsumption"
)

// Snapshot extracts the persistable form of a prepared example: the ground
// bottom clause plus every preparation NewExample derived from it. Restoring
// the snapshot skips the ground-clause repair expansions and subsumption
// preprocessing entirely, which is what turns a ~30s cold start into a
// sub-second warm one.
func (ex *Example) Snapshot() persist.ExampleSnapshot {
	s := persist.ExampleSnapshot{
		Ground:   ex.Ground,
		Prep:     ex.prep.Snapshot(),
		Stripped: ex.stripped.Snapshot(),
	}
	for _, p := range ex.cfdExp {
		s.CFDExp = append(s.CFDExp, p.Snapshot())
	}
	for _, p := range ex.repaired {
		s.Repaired = append(s.Repaired, p.Snapshot())
	}
	return s
}

// RestoreExample rebuilds a prepared example from its snapshot. The restored
// example is behaviorally identical to the one NewExample would produce from
// the same ground clause under the same options; only the work of producing
// it is skipped.
func (e *Evaluator) RestoreExample(s persist.ExampleSnapshot) *Example {
	ex := &Example{
		Ground:   s.Ground,
		hasCFD:   clauseHasCFDRepairs(s.Ground),
		prep:     subsumption.RestorePrepared(s.Prep),
		stripped: subsumption.RestorePrepared(s.Stripped),
	}
	for _, p := range s.CFDExp {
		ex.cfdExp = append(ex.cfdExp, subsumption.RestorePrepared(p))
	}
	for _, p := range s.Repaired {
		ex.repaired = append(ex.repaired, subsumption.RestorePrepared(p))
	}
	return ex
}

// SnapshotExamples packages prepared positive and negative examples as an
// encodable set.
func SnapshotExamples(pos, neg []*Example) persist.ExampleSet {
	set := persist.ExampleSet{}
	for _, ex := range pos {
		set.Pos = append(set.Pos, ex.Snapshot())
	}
	for _, ex := range neg {
		set.Neg = append(set.Neg, ex.Snapshot())
	}
	return set
}

// SnapshotOutcome reports what LoadOrPrepareExamples did and how long each
// step took, so callers (the learner's observer events, the bench harness)
// can surface the cold-vs-warm difference instead of claiming it.
type SnapshotOutcome struct {
	// Hit reports whether the examples were served from the store.
	Hit bool
	// Reason explains a miss: "no store", "not found", a decode error, or
	// "stale examples" when the stored set no longer matches the requested
	// ground clauses.
	Reason string
	// Bytes is the snapshot size read (on a hit) or written (after a miss).
	Bytes int
	// LoadTime is the time spent loading, decoding and restoring on a hit
	// (including a failed attempt before a miss).
	LoadTime time.Duration
	// PrepareTime is the time spent preparing fresh examples on a miss.
	PrepareTime time.Duration
	// WriteTime is the time spent encoding and saving after a miss.
	WriteTime time.Duration
	// WriteErr records a failed write-back; the prepared examples are still
	// returned, so a read-only store degrades to a cache that never hits.
	WriteErr error
}

// LoadOrPrepareExamples returns prepared examples for the given ground
// bottom clauses, serving them from the snapshot store when a valid snapshot
// exists under the key and preparing them fresh (then writing the snapshot
// back) otherwise.
//
// The key must be a content hash over everything that determines the
// preparations — ground clauses AND preparation options (see
// persist.FingerprintInputs, which covers both). As defense in depth the
// stored ground clauses are re-verified against the requested ones, so a
// key that under-hashes the clause inputs degrades to a miss; the
// preparation options baked into a snapshot (search budgets, expansion
// caps) are NOT re-verified and are trusted from the key alone. Every
// detected failure mode — missing snapshot, corrupted or truncated file,
// version mismatch, stale contents — falls back to fresh preparation.
//
// A nil store always prepares fresh. The only error returned is a cancelled
// context during preparation.
func (e *Evaluator) LoadOrPrepareExamples(ctx context.Context, store persist.Store, key persist.Key, posG, negG []logic.Clause) (pos, neg []*Example, out SnapshotOutcome, err error) {
	if store == nil {
		out.Reason = "no store"
	} else {
		loadStart := time.Now()
		pos, neg, out.Bytes, out.Reason = e.loadExamples(store, key, posG, negG)
		out.LoadTime = time.Since(loadStart)
		if out.Reason == "" {
			out.Hit = true
			return pos, neg, out, nil
		}
	}

	prepStart := time.Now()
	pos, err = e.NewExamples(ctx, posG)
	if err != nil {
		return nil, nil, out, err
	}
	neg, err = e.NewExamples(ctx, negG)
	if err != nil {
		return nil, nil, out, err
	}
	out.PrepareTime = time.Since(prepStart)

	if store != nil {
		writeStart := time.Now()
		data := persist.EncodeExampleSet(SnapshotExamples(pos, neg))
		out.Bytes = len(data)
		out.WriteErr = store.Save(key, data)
		out.WriteTime = time.Since(writeStart)
	}
	return pos, neg, out, nil
}

// loadExamples attempts the snapshot fast path. It returns a non-empty
// reason when the attempt failed and fresh preparation should run.
func (e *Evaluator) loadExamples(store persist.Store, key persist.Key, posG, negG []logic.Clause) (pos, neg []*Example, bytes int, reason string) {
	data, err := store.Load(key)
	if err == persist.ErrNotFound {
		return nil, nil, 0, "not found"
	}
	if err != nil {
		return nil, nil, 0, err.Error()
	}
	set, err := persist.DecodeExampleSet(data)
	if err != nil {
		return nil, nil, 0, err.Error()
	}
	if len(set.Pos) != len(posG) || len(set.Neg) != len(negG) {
		return nil, nil, 0, "stale examples"
	}
	for i := range set.Pos {
		if !set.Pos[i].Ground.Equal(posG[i]) {
			return nil, nil, 0, "stale examples"
		}
	}
	for i := range set.Neg {
		if !set.Neg[i].Ground.Equal(negG[i]) {
			return nil, nil, 0, "stale examples"
		}
	}
	pos = make([]*Example, len(set.Pos))
	for i := range set.Pos {
		pos[i] = e.RestoreExample(set.Pos[i])
	}
	neg = make([]*Example, len(set.Neg))
	for i := range set.Neg {
		neg[i] = e.RestoreExample(set.Neg[i])
	}
	return pos, neg, len(data), ""
}
