package coverage

import (
	"context"
	"testing"

	"dlearn/internal/logic"
)

// simpleGround builds a small ground bottom clause for the worker-pool
// cancellation tests.
func simpleGround(genre string) logic.Clause {
	id := logic.Const("m1")
	title := logic.Const("Superbad")
	return logic.NewClause(
		logic.Rel("highGrossing", title),
		logic.Rel("movies", id, title),
		logic.Rel("mov2genres", id, logic.Const(genre)),
	)
}

func simpleClause() logic.Clause {
	x, y := logic.Var("x"), logic.Var("y")
	return logic.NewClause(
		logic.Rel("highGrossing", x),
		logic.Rel("movies", y, x),
		logic.Rel("mov2genres", y, logic.Const("comedy")),
	)
}

func TestWorkerPoolHonorsCancellation(t *testing.T) {
	e := NewEvaluator(Options{Threads: 4})
	grounds := make([]logic.Clause, 32)
	for i := range grounds {
		grounds[i] = simpleGround("comedy")
	}
	exs := e.NewExamples(context.Background(), grounds)

	if got := e.CountPositiveExamples(context.Background(), simpleClause(), exs); got != len(exs) {
		t.Fatalf("uncancelled count = %d, want %d", got, len(exs))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A cancelled batch must drain without scoring: every worker skips its
	// items, so nothing is counted.
	if got := e.CountPositiveExamples(ctx, simpleClause(), exs); got != 0 {
		t.Errorf("cancelled count = %d, want 0", got)
	}
	if got := e.CountNegativeExamples(ctx, simpleClause(), exs); got != 0 {
		t.Errorf("cancelled negative count = %d, want 0", got)
	}
	if got := e.CoveredPositiveExamples(ctx, simpleClause(), exs); len(got) != 0 {
		t.Errorf("cancelled covered-set = %v, want empty", got)
	}
}

func TestNewExamplesCancelledHasNoNilEntries(t *testing.T) {
	e := NewEvaluator(Options{Threads: 4})
	grounds := make([]logic.Clause, 16)
	for i := range grounds {
		grounds[i] = simpleGround("drama")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exs := e.NewExamples(ctx, grounds)
	if len(exs) != len(grounds) {
		t.Fatalf("NewExamples returned %d entries for %d grounds", len(exs), len(grounds))
	}
	for i, ex := range exs {
		if ex == nil {
			t.Fatalf("entry %d is nil after cancellation", i)
		}
	}
}
