package coverage

import (
	"context"
	"testing"

	"dlearn/internal/logic"
)

// simpleGround builds a small ground bottom clause for the worker-pool
// cancellation tests.
func simpleGround(genre string) logic.Clause {
	id := logic.Const("m1")
	title := logic.Const("Superbad")
	return logic.NewClause(
		logic.Rel("highGrossing", title),
		logic.Rel("movies", id, title),
		logic.Rel("mov2genres", id, logic.Const(genre)),
	)
}

func simpleClause() logic.Clause {
	x, y := logic.Var("x"), logic.Var("y")
	return logic.NewClause(
		logic.Rel("highGrossing", x),
		logic.Rel("movies", y, x),
		logic.Rel("mov2genres", y, logic.Const("comedy")),
	)
}

// mustExamples prepares examples with a live context, failing the test on
// the (impossible) preparation error.
func mustExamples(tb testing.TB, e *Evaluator, grounds []logic.Clause) []*Example {
	tb.Helper()
	exs, err := e.NewExamples(context.Background(), grounds)
	if err != nil {
		tb.Fatalf("NewExamples: %v", err)
	}
	return exs
}

func TestWorkerPoolHonorsCancellation(t *testing.T) {
	e := NewEvaluator(Options{Threads: 4})
	grounds := make([]logic.Clause, 32)
	for i := range grounds {
		grounds[i] = simpleGround("comedy")
	}
	exs := mustExamples(t, e, grounds)

	if got := e.CountPositiveExamples(context.Background(), simpleClause(), exs); got != len(exs) {
		t.Fatalf("uncancelled count = %d, want %d", got, len(exs))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A cancelled batch must drain without scoring: every worker skips its
	// items, so nothing is counted.
	if got := e.CountPositiveExamples(ctx, simpleClause(), exs); got != 0 {
		t.Errorf("cancelled count = %d, want 0", got)
	}
	if got := e.CountNegativeExamples(ctx, simpleClause(), exs); got != 0 {
		t.Errorf("cancelled negative count = %d, want 0", got)
	}
	if got := e.CoveredPositiveExamples(ctx, simpleClause(), exs); len(got) != 0 {
		t.Errorf("cancelled covered-set = %v, want empty", got)
	}
}

// TestNewExamplesCancelledReturnsError is the regression test for the
// silently-dropped cancellation error: a batch abandoned mid-preparation
// must report ctx.Err() instead of handing back stub examples as if the
// preparation had succeeded. The stub-filled batch is still returned with
// no nil entries for callers that inspect it despite the error.
func TestNewExamplesCancelledReturnsError(t *testing.T) {
	e := NewEvaluator(Options{Threads: 4})
	grounds := make([]logic.Clause, 16)
	for i := range grounds {
		grounds[i] = simpleGround("drama")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exs, err := e.NewExamples(ctx, grounds)
	if err == nil {
		t.Fatal("NewExamples on a cancelled context returned nil error")
	}
	if err != context.Canceled {
		t.Fatalf("NewExamples error = %v, want context.Canceled", err)
	}
	if len(exs) != len(grounds) {
		t.Fatalf("NewExamples returned %d entries for %d grounds", len(exs), len(grounds))
	}
	for i, ex := range exs {
		if ex == nil {
			t.Fatalf("entry %d is nil after cancellation", i)
		}
	}
}

// TestNewExamplesUncancelledNoError pins the happy path: a live context
// prepares every example and reports no error.
func TestNewExamplesUncancelledNoError(t *testing.T) {
	e := NewEvaluator(Options{Threads: 2})
	grounds := []logic.Clause{simpleGround("comedy"), simpleGround("drama")}
	exs, err := e.NewExamples(context.Background(), grounds)
	if err != nil {
		t.Fatalf("NewExamples: %v", err)
	}
	if len(exs) != len(grounds) {
		t.Fatalf("got %d examples, want %d", len(exs), len(grounds))
	}
}
