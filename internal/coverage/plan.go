package coverage

import (
	"context"
	"time"

	"dlearn/internal/logic"
	"dlearn/internal/subsumption"
)

// PlanCounters is the evaluator's cumulative θ-subsumption plan telemetry.
// Counters only grow; callers interested in one batch's work snapshot before
// and after and subtract.
type PlanCounters struct {
	// Probes is the number of θ-subsumption probes issued through the
	// probe-based coverage paths (batch scoring, coverage bitmaps, example
	// counts).
	Probes int64
	// Planned is how many of those probes the literal planner ordered
	// (probes rejected before the search — infeasible literals, head
	// mismatches — carry no plan, and none are planned when the planner is
	// disabled).
	Planned int64
	// Nodes is the total number of backtracking-search nodes explored.
	Nodes int64
}

// PlanSnapshot returns the evaluator's cumulative plan telemetry.
func (e *Evaluator) PlanSnapshot() PlanCounters {
	return PlanCounters{
		Probes:  e.planProbes.Load(),
		Planned: e.planPlanned.Load(),
		Nodes:   e.planNodes.Load(),
	}
}

// addProbeStats accumulates one probe's work into the plan telemetry.
func (e *Evaluator) addProbeStats(st subsumption.ProbeStats) {
	e.planProbes.Add(1)
	if st.Planned {
		e.planPlanned.Add(1)
	}
	e.planNodes.Add(int64(st.Nodes))
}

// PlanComparison is the planner-vs-fixed-order differential tally over a set
// of probes: every (candidate, example) pair probed with the literal planner
// and again in fixed clause order, comparing outcomes (which must agree) and
// search node counts (which the planner exists to shrink).
type PlanComparison struct {
	// Probes is the number of (candidate, example) pairs compared.
	Probes int
	// Wins, Losses and Ties partition the probes by node count: the planner
	// won when its search explored strictly fewer nodes than the fixed
	// order, lost when strictly more, tied otherwise.
	Wins, Losses, Ties int
	// PlannedNodes and FixedNodes are the total search nodes under each
	// order; their difference is the planner's saving.
	PlannedNodes, FixedNodes int64
	// PlanTime is the total time spent computing literal plans.
	PlanTime time.Duration
	// BudgetHits counts probes where at least one of the two searches
	// exhausted its node budget. Such probes still contribute to the node
	// tallies but are excluded from the divergence check: an exhausted
	// search's "no" is conservative, so the two orders may legitimately
	// answer differently.
	BudgetHits int
	// Divergences counts probes whose planner-on and planner-off outcomes
	// disagreed with neither search exhausting its budget. Plans are
	// permutations, so any nonzero value is a bug; the bench harness fails
	// on it.
	Divergences int
}

// WinRate is Wins over the decided probes (wins plus losses), zero when no
// probe was decided. Ties — probes too easy for the order to matter — are
// excluded so the rate measures the probes the planner could influence.
func (pc PlanComparison) WinRate() float64 {
	decided := pc.Wins + pc.Losses
	if decided == 0 {
		return 0
	}
	return float64(pc.Wins) / float64(decided)
}

// NodesSaved is the planner's total node saving versus the fixed order
// (negative if the planner explored more).
func (pc PlanComparison) NodesSaved() int64 { return pc.FixedNodes - pc.PlannedNodes }

// ComparePlannerOrder probes every candidate against every example's
// prepared ground bottom clause twice — literal planner on and off — and
// tallies the differential. It is the measurement behind the plan_* fields
// of BENCH_coverage.json and doubles as an integrity check: outcomes must be
// identical under both orders.
func (e *Evaluator) ComparePlannerOrder(ctx context.Context, cands []logic.Clause, exs []*Example) PlanComparison {
	var out PlanComparison
	for _, c := range cands {
		cc := e.candidateCached(c)
		for _, ex := range exs {
			if ctx.Err() != nil {
				return out
			}
			okPlan, _, stPlan := cc.Probe(ctx, ex.prep, subsumption.ProbeOptions{TimePlan: true})
			okFixed, _, stFixed := cc.Probe(ctx, ex.prep, subsumption.ProbeOptions{NoPlanner: true})
			out.Probes++
			out.PlannedNodes += int64(stPlan.Nodes)
			out.FixedNodes += int64(stFixed.Nodes)
			out.PlanTime += time.Duration(stPlan.PlanNanos)
			switch {
			case stPlan.Nodes < stFixed.Nodes:
				out.Wins++
			case stPlan.Nodes > stFixed.Nodes:
				out.Losses++
			default:
				out.Ties++
			}
			if stPlan.Exhausted || stFixed.Exhausted {
				out.BudgetHits++
			} else if okPlan != okFixed {
				out.Divergences++
			}
		}
	}
	return out
}
