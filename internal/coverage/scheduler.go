package coverage

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"dlearn/internal/logic"
)

// DefaultCandidateParallelism is the default outer-tier worker count of the
// candidate scheduler: how many independent candidate clauses are scored
// concurrently. Each in-flight candidate runs its batch on the evaluator's
// inner worker pool, so the two tiers together keep Threads × parallelism
// coverage tests in flight — the configuration that keeps 16+ threads busy
// when the example pool is smaller than the thread count.
const DefaultCandidateParallelism = 4

// CandidateResult is the scheduler's verdict on one candidate clause.
type CandidateResult struct {
	// Score is the candidate's coverage score; a partial tally when Exact is
	// false.
	Score Score
	// Exact reports whether the batch ran to completion (see ScoreBatch).
	Exact bool
}

// incomplete marks a candidate whose exact value is not (yet) known in the
// scheduler's shared value table.
const incomplete = math.MinInt64

// ScoreCandidates scores the independent candidate clauses of one refinement
// sample concurrently — the outer tier of the two-tier scheduler. Each
// candidate's batch still runs on the evaluator's inner worker pool
// (ScoreBatch), and candidates share the incumbent floor through an atomic
// value table: a candidate early-exits against the best exact score already
// known for a LOWER-indexed candidate.
//
// Restricting the shared floor to lower indices is what makes the result
// independent of scheduling: the serial hill-climb keeps candidate i only if
// its value strictly exceeds every earlier candidate's, so a floor taken
// from any completed j < i prunes only candidates the serial loop would have
// discarded anyway, while a floor from j > i could prune a tie that the
// serial loop (and BestCandidate's lowest-index tie-break) would have
// selected. Selecting the winner with BestCandidate therefore yields the
// same clause for any parallelism and any interleaving, which is what keeps
// learned definitions byte-identical across thread counts.
//
// parallelism ≤ 0 selects the evaluator's configured candidate parallelism.
// The floor is the incumbent's score value; candidates that cannot strictly
// exceed it come back non-exact and are never selected.
func (e *Evaluator) ScoreCandidates(ctx context.Context, cands []logic.Clause, pos, neg []*Example, floor int, parallelism int) []CandidateResult {
	n := len(cands)
	results := make([]CandidateResult, n)
	if n == 0 {
		return results
	}
	parallelism = e.CandidateWorkers(n, parallelism)

	// vals[i] holds candidate i's exact score value once known; incomplete
	// until then. Workers read it lock-free to assemble prefix floors.
	vals := make([]atomic.Int64, n)
	for i := range vals {
		vals[i].Store(incomplete)
	}
	// prefixFloor is the best exact value among completed candidates j < i,
	// never below the incumbent floor. Missing (still-running) predecessors
	// only make the floor lower, i.e. the pruning conservative.
	prefixFloor := func(i int) int {
		f := int64(floor)
		for j := 0; j < i; j++ {
			if v := vals[j].Load(); v != incomplete && v > f {
				f = v
			}
		}
		return int(f)
	}
	score := func(i int) {
		// The floor is re-read live as the batch runs: a candidate started
		// against a low floor exits as soon as a lower-indexed candidate
		// completes with a value its bound cannot beat, instead of finishing
		// against the stale floor it was scheduled with.
		s, exact := e.scoreBatchDynamic(ctx, cands[i], pos, neg, func() int { return prefixFloor(i) })
		results[i] = CandidateResult{Score: s, Exact: exact}
		if exact {
			vals[i].Store(int64(s.Value()))
		}
	}

	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			score(i)
		}
		return results
	}
	// Workers drain candidates in index order so low-indexed candidates —
	// the ones whose values raise everyone else's floor — finish first.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				score(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// CandidateWorkers returns the outer-tier worker count ScoreCandidates
// actually uses for an n-candidate batch under the requested parallelism
// (≤ 0 selects the evaluator's configured value): never more workers than
// candidates, never fewer than one. Exposed so callers reporting scheduler
// activity (observer events) describe the concurrency that really ran, not
// the configured ceiling.
func (e *Evaluator) CandidateWorkers(n, parallelism int) int {
	if parallelism <= 0 {
		parallelism = e.candPar
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// BestCandidate selects the winning candidate from a scheduler result: the
// lowest-indexed exact result whose value strictly exceeds both the floor
// and every other exact value. This is exactly the clause the serial
// hill-climb keeps (its incumbent is replaced only on strict improvement, so
// the first candidate to attain the maximum wins ties); returning ok=false
// means no candidate improved on the floor.
func BestCandidate(results []CandidateResult, floor int) (idx int, best Score, ok bool) {
	idx = -1
	for i, r := range results {
		if r.Exact && r.Score.Value() > floor {
			floor = r.Score.Value()
			idx, best, ok = i, r.Score, true
		}
	}
	return idx, best, ok
}
