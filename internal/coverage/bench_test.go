package coverage

import (
	"context"
	"fmt"
	"testing"

	"dlearn/internal/bottomclause"
	"dlearn/internal/constraints"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
	"dlearn/internal/subsumption"
)

// benchDB builds a movies database large enough that candidate scoring, not
// setup, dominates: nMovies movies cycling through genres, each with locale
// rows that exercise the CFD machinery on a fraction of the examples.
func benchDB(nMovies int) (*relation.Instance, *relation.Relation, []constraints.MD, []constraints.CFD) {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("movies",
		relation.Attr("id", "imdb_id"), relation.Attr("title", "imdb_title"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("mov2genres",
		relation.Attr("id", "imdb_id"), relation.Attr("genre", "genre")))
	s.MustAdd(relation.NewRelation("mov2locale",
		relation.Attr("title", "imdb_title"), relation.Attr("language", "language"), relation.Attr("country", "country")))

	genres := []string{"comedy", "drama", "action", "horror"}
	in := relation.NewInstance(s)
	for i := 0; i < nMovies; i++ {
		id := fmt.Sprintf("m%03d", i)
		title := fmt.Sprintf("%s (%d)", benchTitle(i), 2000+i%20)
		in.MustInsert("movies", id, title, fmt.Sprintf("%d", 2000+i%20))
		in.MustInsert("mov2genres", id, genres[i%len(genres)])
		in.MustInsert("mov2locale", title, "English", "USA")
		if i%5 == 0 {
			// A second country for the same (title, language) violates the CFD.
			in.MustInsert("mov2locale", title, "English", "Ireland")
		}
	}
	target := relation.NewRelation("highGrossing", relation.Attr("title", "bom_title"))
	md := constraints.SimpleMD("md_title", "highGrossing", "title", "movies", "title")
	cfd := constraints.NewCFD("cfd_locale", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	return in, target, []constraints.MD{md}, []constraints.CFD{cfd}
}

// benchTitle is the clean (BOM-side) title of movie i; the movies relation
// stores the dirty variant with a year suffix, so coverage always goes
// through the MD repair machinery.
func benchTitle(i int) string {
	return fmt.Sprintf("Benchmark Film %03d", i)
}

// benchCandidates are learned-style clauses of varying selectivity: genre
// variants that cover disjoint example subsets, an over-general clause
// without the genre test, and a clause with an extra locale join.
func benchCandidates() []logic.Clause {
	base := func(genre string) logic.Clause {
		x, tt, y, z := logic.Var("x"), logic.Var("t"), logic.Var("y"), logic.Var("z")
		vx, vt := logic.Var("vx"), logic.Var("vt")
		cond := logic.Condition{Op: logic.CondSim, L: x, R: tt}
		return logic.NewClause(
			logic.Rel("highGrossing", x),
			logic.Rel("movies", y, tt, z),
			logic.Rel("mov2genres", y, logic.Const(genre)),
			logic.Sim(x, tt),
			logic.RepairInGroup("md_title", "md_title#c", logic.OriginMD, x, vx, cond),
			logic.RepairInGroup("md_title", "md_title#c", logic.OriginMD, tt, vt, cond),
			logic.Eq(vx, vt),
		)
	}
	noGenre := base("comedy")
	noGenre = noGenre.RemoveBodyAt(1) // drop mov2genres: covers everything
	withLocale := base("comedy")
	withLocale.Body = append(withLocale.Body,
		logic.Rel("mov2locale", logic.Var("t"), logic.Const("English"), logic.Var("c")))
	return []logic.Clause{
		base("comedy"), base("drama"), base("action"), base("horror"),
		noGenre, withLocale,
	}
}

// benchExamples grounds nPos positive (comedy) and nNeg negative (other
// genre) examples against the bench database.
func benchExamples(tb testing.TB, nMovies, nPos, nNeg int) (*bottomclause.Builder, []logic.Clause, []logic.Clause) {
	tb.Helper()
	in, target, mds, cfds := benchDB(nMovies)
	cfg := bottomclause.DefaultConfig()
	cfg.UseCFDs = true
	cfg.SampleSize = 20
	b := bottomclause.NewBuilder(in, target, mds, cfds, cfg)
	var pos, neg []logic.Clause
	for i := 0; len(pos) < nPos && i < nMovies; i++ {
		if i%4 == 0 { // comedies
			g, err := b.GroundBottomClause(relation.NewTuple("highGrossing", benchTitle(i)))
			if err != nil {
				tb.Fatal(err)
			}
			pos = append(pos, g)
		}
	}
	for i := 0; len(neg) < nNeg && i < nMovies; i++ {
		if i%4 == 1 { // dramas
			g, err := b.GroundBottomClause(relation.NewTuple("highGrossing", benchTitle(i)))
			if err != nil {
				tb.Fatal(err)
			}
			neg = append(neg, g)
		}
	}
	if len(pos) < nPos || len(neg) < nNeg {
		tb.Fatalf("bench dataset too small: got %d/%d positives, %d/%d negatives", len(pos), nPos, len(neg), nNeg)
	}
	return b, pos, neg
}

// BenchmarkScoreClauseExamples is the regression benchmark for the hot path
// of the covering search: scoring a set of candidate clauses over prepared
// examples. Its throughput is tracked in BENCH_coverage.json.
func BenchmarkScoreClauseExamples(b *testing.B) {
	_, posG, negG := benchExamples(b, 120, 16, 16)
	cands := benchCandidates()
	for _, threads := range []int{1, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			e := NewEvaluator(Options{Threads: threads})
			ctx := context.Background()
			posEx := mustExamples(b, e, posG)
			negEx := mustExamples(b, e, negG)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range cands {
					e.ScoreClauseExamples(ctx, c, posEx, negEx)
				}
			}
			scores := float64(b.N) * float64(len(cands)) * float64(len(posEx)+len(negEx))
			b.ReportMetric(scores/b.Elapsed().Seconds(), "covertests/s")
		})
	}
}

// BenchmarkSubsumesPrepared measures repeated θ-subsumption of candidate
// clauses against one prepared ground bottom clause — the innermost loop of
// every coverage test — in its two modes: recompiling the candidate per
// probe (one-shot tests) and probing through a reusable CompiledCandidate
// (batch scoring).
func BenchmarkSubsumesPrepared(b *testing.B) {
	e := NewEvaluator(Options{Threads: 1})
	_, posG, _ := benchExamples(b, 60, 4, 1)
	prep := e.checker.Prepare(posG[0])
	cands := benchCandidates()
	ctx := context.Background()
	b.Run("recompile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				prep.SubsumesContext(ctx, c)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		compiled := make([]*subsumption.CompiledCandidate, len(cands))
		for i, c := range cands {
			compiled[i] = subsumption.CompileCandidate(c)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, cc := range compiled {
				cc.Subsumes(ctx, prep)
			}
		}
	})
}
