package observe

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// allEvents returns one populated instance of every event type; the reflect
// check in TestMarshalEventCoversAllTypes keeps it in sync with the package.
func allEvents() []Event {
	return []Event{
		RunStarted{Target: "highGrossing", Positives: 3, Negatives: 2},
		PhaseDone{Phase: PhaseBottomClauses, Duration: 1500 * time.Millisecond},
		IterationStarted{Iteration: 2, SeedIndex: 1, Uncovered: 5},
		CoverageProgress{Iteration: 2, ClausesConsidered: 17, BestPositives: 4, BestNegatives: 1},
		CandidateBatchScored{Iteration: 2, Candidates: 8, Parallelism: 4, EarlyExited: 3, Improved: true, Probes: 96, SearchNodes: 4200, PlannedProbes: 90},
		ClauseAccepted{Iteration: 2, Clause: "h(X) :- b(X)", Positives: 4, Negatives: 0, Uncovered: 1},
		ClauseRejected{Iteration: 3, Clause: "h(X) :- c(X)", Positives: 1, Negatives: 2},
		SnapshotHit{Key: "ab12", Examples: 5, Bytes: 4096, Duration: 240 * time.Millisecond},
		SnapshotMiss{Key: "ab12", Reason: "not found", Duration: 22 * time.Second},
		SnapshotWritten{Key: "ab12", Examples: 5, Bytes: 4096, Duration: 90 * time.Millisecond},
		SnapshotWriteFailed{Key: "ab12", Error: "disk full"},
		ResultCacheHit{Key: "cd34", Bytes: 512},
		PersistenceDegraded{Component: "journal", Detail: "disk full"},
		RunFinished{Clauses: 2, ClausesConsidered: 120, UncoveredPositives: 0, Duration: 3 * time.Second},
	}
}

func TestMarshalEventRoundTrip(t *testing.T) {
	for _, e := range allEvents() {
		data, err := MarshalEvent(e)
		if err != nil {
			t.Fatalf("MarshalEvent(%T): %v", e, err)
		}
		back, err := UnmarshalEvent(data)
		if err != nil {
			t.Fatalf("UnmarshalEvent(%T): %v\npayload: %s", e, err, data)
		}
		if !reflect.DeepEqual(e, back) {
			t.Errorf("round trip changed %T:\n  sent %+v\n  got  %+v", e, e, back)
		}
	}
}

// TestMarshalEventCoversAllTypes fails when a new event type is added to the
// package without wire support: every concrete Event implementation must
// have a type name.
func TestMarshalEventCoversAllTypes(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range allEvents() {
		name := TypeName(e)
		if name == "" {
			t.Errorf("event %T has no wire type name", e)
		}
		if seen[name] {
			t.Errorf("wire type name %q used twice", name)
		}
		seen[name] = true
	}
	// The isEvent() method set is the closed world of event types; compare
	// its size against the sample list so a newly added event type must be
	// added to allEvents (and therefore to the codec) before tests pass.
	eventType := reflect.TypeOf((*Event)(nil)).Elem()
	pkgTypes := 0
	for _, probe := range allEvents() {
		if reflect.TypeOf(probe).Implements(eventType) {
			pkgTypes++
		}
	}
	if pkgTypes != len(allEvents()) {
		t.Fatalf("event sample list inconsistent: %d of %d implement Event", pkgTypes, len(allEvents()))
	}
}

func TestUnmarshalEventUnknownType(t *testing.T) {
	_, err := UnmarshalEvent([]byte(`{"type":"no_such_event","data":{}}`))
	var unknown *UnknownEventError
	if !errors.As(err, &unknown) {
		t.Fatalf("want UnknownEventError, got %v", err)
	}
	if unknown.Type != "no_such_event" {
		t.Errorf("UnknownEventError.Type = %q", unknown.Type)
	}
}

func TestUnmarshalEventMalformed(t *testing.T) {
	if _, err := UnmarshalEvent([]byte(`{`)); err == nil {
		t.Error("truncated envelope must error")
	}
	if _, err := UnmarshalEvent([]byte(`{"type":"run_started","data":[1,2]}`)); err == nil {
		t.Error("mistyped payload must error")
	}
}

func TestSchedulerStatsAggregation(t *testing.T) {
	s := NewSchedulerStats()
	s.Observe(RunStarted{}) // ignored
	s.Observe(CandidateBatchScored{Candidates: 10, EarlyExited: 4, Improved: true})
	s.Observe(CandidateBatchScored{Candidates: 6, EarlyExited: 0, Improved: false})
	snap := s.Snapshot()
	if snap.Batches != 2 || snap.Candidates != 16 || snap.EarlyExited != 4 || snap.Improved != 1 {
		t.Fatalf("bad totals: %+v", snap)
	}
	if want := 4.0 / 16.0; snap.EarlyExitRate != want {
		t.Errorf("EarlyExitRate = %v, want %v", snap.EarlyExitRate, want)
	}
	if NewSchedulerStats().Snapshot().EarlyExitRate != 0 {
		t.Error("empty aggregator must report rate 0")
	}
}

func TestPlanStatsAggregation(t *testing.T) {
	s := NewPlanStats()
	s.Observe(RunStarted{}) // ignored
	s.Observe(CandidateBatchScored{Probes: 10, PlannedProbes: 8, SearchNodes: 500})
	s.Observe(CandidateBatchScored{Probes: 6, PlannedProbes: 6, SearchNodes: 120})
	snap := s.Snapshot()
	if snap.Batches != 2 || snap.Probes != 16 || snap.Planned != 14 || snap.Nodes != 620 {
		t.Fatalf("bad totals: %+v", snap)
	}
	if want := 14.0 / 16.0; snap.PlannedRate != want {
		t.Errorf("PlannedRate = %v, want %v", snap.PlannedRate, want)
	}
	if NewPlanStats().Snapshot().PlannedRate != 0 {
		t.Error("empty aggregator must report rate 0")
	}
}

func TestPlanStatsConcurrent(t *testing.T) {
	s := NewPlanStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Observe(CandidateBatchScored{Probes: 3, PlannedProbes: 2, SearchNodes: 7})
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Batches != 800 || snap.Probes != 2400 || snap.Planned != 1600 || snap.Nodes != 5600 {
		t.Fatalf("lost updates: %+v", snap)
	}
}

func TestSchedulerStatsConcurrent(t *testing.T) {
	s := NewSchedulerStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Observe(CandidateBatchScored{Candidates: 2, EarlyExited: 1})
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Batches != 800 || snap.Candidates != 1600 || snap.EarlyExited != 800 {
		t.Fatalf("lost updates: %+v", snap)
	}
}
