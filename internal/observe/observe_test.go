package observe

import (
	"testing"
	"time"
)

func TestFuncAdapter(t *testing.T) {
	var got Event
	Func(func(e Event) { got = e }).Observe(RunStarted{Target: "t", Positives: 3})
	rs, ok := got.(RunStarted)
	if !ok || rs.Target != "t" || rs.Positives != 3 {
		t.Errorf("Func adapter delivered %+v", got)
	}
}

func TestMultiSkipsNilAndPreservesOrder(t *testing.T) {
	var order []int
	obs := Multi(
		nil,
		Func(func(Event) { order = append(order, 1) }),
		Func(func(Event) { order = append(order, 2) }),
	)
	obs.Observe(PhaseDone{Phase: PhaseCovering, Duration: time.Second})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("fan-out order = %v", order)
	}
}

func TestMultiEmptyIsDiscard(t *testing.T) {
	// Multi() collapses to a discard observer that accepts every event
	// without panicking, as must Discard itself.
	Multi().Observe(RunStarted{})
	for _, e := range []Event{
		RunStarted{}, PhaseDone{}, IterationStarted{}, CoverageProgress{},
		ClauseAccepted{}, ClauseRejected{}, RunFinished{},
	} {
		Discard.Observe(e)
	}
}
