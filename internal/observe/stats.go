package observe

import "sync/atomic"

// SchedulerStats aggregates CandidateBatchScored events into the candidate
// scheduler's cross-run telemetry: how many batches ran, how many candidates
// they scored and how many of those the shared incumbent floor pruned
// mid-batch. The early-exit rate is the fraction of scored candidates that
// exited early — the measure of how much work the floor saves on real
// learning runs rather than micro-benchmarks.
//
// A SchedulerStats is an Observer; it is safe for concurrent use and may be
// shared across many concurrent learning runs (dlearn-serve registers one
// aggregator on every job's engine and exposes the totals in /v1/stats).
type SchedulerStats struct {
	batches     atomic.Int64
	candidates  atomic.Int64
	earlyExited atomic.Int64
	improved    atomic.Int64
}

// NewSchedulerStats returns an empty aggregator.
func NewSchedulerStats() *SchedulerStats { return &SchedulerStats{} }

// Observe accumulates one event; events other than CandidateBatchScored are
// ignored.
func (s *SchedulerStats) Observe(e Event) {
	ev, ok := e.(CandidateBatchScored)
	if !ok {
		return
	}
	s.batches.Add(1)
	s.candidates.Add(int64(ev.Candidates))
	s.earlyExited.Add(int64(ev.EarlyExited))
	if ev.Improved {
		s.improved.Add(1)
	}
}

// SchedulerSnapshot is a point-in-time copy of the aggregated counters.
type SchedulerSnapshot struct {
	// Batches is the number of candidate batches the scheduler ran.
	Batches int64
	// Candidates is the total number of candidate clauses scored.
	Candidates int64
	// EarlyExited is how many of those candidates the shared floor pruned
	// mid-batch.
	EarlyExited int64
	// Improved is the number of batches whose best candidate beat the
	// incumbent.
	Improved int64
	// EarlyExitRate is EarlyExited / Candidates, zero when no candidates
	// were scored yet.
	EarlyExitRate float64
}

// PlanStats aggregates the θ-subsumption plan telemetry carried by
// CandidateBatchScored events: how many probes the batches issued, how many
// of those the literal planner ordered, and how many backtracking-search
// nodes the probes explored. Comparing the node total between a planner-on
// and a planner-off run of the same problem is how the coverage benchmark
// measures the planner's saving on a real learning workload.
//
// A PlanStats is an Observer; it is safe for concurrent use and may be
// shared across many concurrent learning runs.
type PlanStats struct {
	batches atomic.Int64
	probes  atomic.Int64
	planned atomic.Int64
	nodes   atomic.Int64
}

// NewPlanStats returns an empty aggregator.
func NewPlanStats() *PlanStats { return &PlanStats{} }

// Observe accumulates one event; events other than CandidateBatchScored are
// ignored.
func (s *PlanStats) Observe(e Event) {
	ev, ok := e.(CandidateBatchScored)
	if !ok {
		return
	}
	s.batches.Add(1)
	s.probes.Add(ev.Probes)
	s.planned.Add(ev.PlannedProbes)
	s.nodes.Add(ev.SearchNodes)
}

// PlanSnapshot is a point-in-time copy of the aggregated plan telemetry.
type PlanSnapshot struct {
	// Batches is the number of candidate batches observed.
	Batches int64
	// Probes is the total number of θ-subsumption probes those batches
	// issued, and Planned how many of them the literal planner ordered.
	Probes, Planned int64
	// Nodes is the total number of backtracking-search nodes explored.
	Nodes int64
	// PlannedRate is Planned / Probes, zero when no probes ran yet.
	PlannedRate float64
}

// Snapshot returns the current totals, with the same telemetry-view (not
// transactional) semantics as SchedulerStats.Snapshot.
func (s *PlanStats) Snapshot() PlanSnapshot {
	snap := PlanSnapshot{
		Batches: s.batches.Load(),
		Probes:  s.probes.Load(),
		Planned: s.planned.Load(),
		Nodes:   s.nodes.Load(),
	}
	if snap.Probes > 0 {
		snap.PlannedRate = float64(snap.Planned) / float64(snap.Probes)
	}
	return snap
}

// Snapshot returns the current totals. Concurrent Observe calls may land
// between the individual counter reads; the snapshot is a telemetry view,
// not a transactional one.
func (s *SchedulerStats) Snapshot() SchedulerSnapshot {
	snap := SchedulerSnapshot{
		Batches:     s.batches.Load(),
		Candidates:  s.candidates.Load(),
		EarlyExited: s.earlyExited.Load(),
		Improved:    s.improved.Load(),
	}
	if snap.Candidates > 0 {
		snap.EarlyExitRate = float64(snap.EarlyExited) / float64(snap.Candidates)
	}
	return snap
}
