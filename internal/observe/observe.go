// Package observe defines the event stream a learning run emits and the
// Observer interface consumers implement to watch it. The covering learner
// publishes one event per phase transition, covering-loop iteration,
// hill-climbing step and clause decision, so CLI tools, benchmarks and
// services can report progress without the learner printing anything itself.
//
// Observers are invoked synchronously from the learner goroutine; they must
// be fast and must not block. Implementations that aggregate across
// concurrent runs must be safe for concurrent use.
package observe

import "time"

// Phase names reported by PhaseDone events.
const (
	// PhaseBottomClauses is the construction of ground bottom clauses for
	// every training example (Section 4.1 of the paper).
	PhaseBottomClauses = "bottom-clauses"
	// PhaseCovering is the covering loop: seed selection, hill-climbing
	// generalization and acceptance testing (Algorithm 1).
	PhaseCovering = "covering"
)

// Event is one observation from a learning run. The concrete types below are
// the only implementations.
type Event interface{ isEvent() }

// RunStarted is emitted once, after the problem has been validated.
type RunStarted struct {
	// Target is the target relation name.
	Target string
	// Positives and Negatives are the training-set sizes.
	Positives, Negatives int
}

// PhaseDone is emitted when a named phase of the run completes.
type PhaseDone struct {
	// Phase is one of the Phase* constants.
	Phase string
	// Duration is the phase's wall-clock time.
	Duration time.Duration
}

// IterationStarted is emitted at the top of each covering-loop iteration.
type IterationStarted struct {
	// Iteration counts covering-loop iterations from 1.
	Iteration int
	// SeedIndex is the positive-example index used as the seed.
	SeedIndex int
	// Uncovered is the number of positive examples not yet covered.
	Uncovered int
}

// CoverageProgress is emitted after each hill-climbing step with the running
// candidate count and the best score found so far in this iteration.
type CoverageProgress struct {
	Iteration int
	// ClausesConsidered is the cumulative number of candidates scored.
	ClausesConsidered int
	// BestPositives and BestNegatives are the coverage counts of the current
	// best candidate of this iteration.
	BestPositives, BestNegatives int
}

// CandidateBatchScored is emitted after the candidate scheduler scores one
// hill-climbing step's refinement sample: the independent candidate clauses
// were scored concurrently (the outer tier), each batch running on the
// evaluator's example worker pool (the inner tier), sharing the incumbent
// floor so losing candidates exit early.
type CandidateBatchScored struct {
	Iteration int
	// Candidates is the number of candidate clauses in the batch.
	Candidates int
	// Parallelism is the outer-tier worker count the scheduler used.
	Parallelism int
	// EarlyExited is how many candidates were pruned mid-batch by the shared
	// floor (non-exact results).
	EarlyExited int
	// Improved reports whether some candidate beat the incumbent.
	Improved bool
	// Probes is the number of θ-subsumption probes the batch issued, and
	// SearchNodes the backtracking-search nodes they explored; PlannedProbes
	// is how many of the probes the literal planner ordered (zero when the
	// planner is disabled). Together they are the per-batch view of the
	// evaluator's plan telemetry; PlanStats aggregates them across a run.
	Probes        int64
	SearchNodes   int64
	PlannedProbes int64
}

// ClauseAccepted is emitted when an iteration's best clause passes the
// acceptance test and joins the definition.
type ClauseAccepted struct {
	Iteration int
	// Clause is the accepted clause, rendered.
	Clause string
	// Positives and Negatives are the clause's coverage over the full
	// training set.
	Positives, Negatives int
	// Uncovered is the number of positive examples still uncovered after
	// accepting the clause.
	Uncovered int
}

// ClauseRejected is emitted when an iteration's best clause fails the
// acceptance test; its seed example is abandoned.
type ClauseRejected struct {
	Iteration int
	// Clause is the rejected clause, rendered.
	Clause string
	// Positives and Negatives are the clause's coverage over the full
	// training set.
	Positives, Negatives int
}

// SnapshotHit is emitted when the prepared training examples were served
// from the configured snapshot store instead of being prepared fresh.
type SnapshotHit struct {
	// Key is the snapshot's content address in hex.
	Key string
	// Examples is the number of prepared examples restored (positives plus
	// negatives).
	Examples int
	// Bytes is the snapshot size on disk.
	Bytes int
	// Duration is the time spent loading, decoding and restoring.
	Duration time.Duration
}

// SnapshotMiss is emitted when a configured snapshot store could not serve
// the prepared examples and they were prepared fresh.
type SnapshotMiss struct {
	// Key is the snapshot's content address in hex.
	Key string
	// Reason explains the miss: "not found" on a cold start, a decode error
	// for a corrupted or incompatible snapshot, or "stale examples" when
	// the stored set does not match the requested ground clauses.
	Reason string
	// Duration is the time spent preparing the examples fresh.
	Duration time.Duration
}

// SnapshotWriteFailed is emitted after a miss when writing the freshly
// prepared examples back to the store failed. The run itself proceeds on
// the fresh preparation, but every later run will miss too — surfacing the
// error is what makes an unwritable snapshot directory diagnosable instead
// of a silent permanent cold start.
type SnapshotWriteFailed struct {
	// Key is the snapshot's content address in hex.
	Key string
	// Error is the rendered write error.
	Error string
}

// SnapshotWritten is emitted after a miss once the freshly prepared
// examples have been written back to the store.
type SnapshotWritten struct {
	// Key is the snapshot's content address in hex.
	Key string
	// Examples is the number of prepared examples written.
	Examples int
	// Bytes is the encoded snapshot size.
	Bytes int
	// Duration is the time spent encoding and saving.
	Duration time.Duration
}

// ResultCacheHit is emitted by dlearn-serve when a job's completed result
// was served from the server's result cache instead of running the engine:
// an identical problem with identical definition-affecting options has
// already been learned, so the cached definition is returned byte-identical
// and instantly. The engine itself never emits this event.
type ResultCacheHit struct {
	// Key is the result's content address in hex (the snapshot fingerprint
	// extended with the remaining definition-affecting options).
	Key string
	// Bytes is the cached result's encoded size.
	Bytes int
}

// PersistenceDegraded is emitted by dlearn-serve when a persistence write
// on a job's behalf failed and the server downgraded to best-effort
// in-memory operation instead of failing the job: the job keeps running
// (or stays completed) but would not survive a restart the way a fully
// journalled job does. The engine itself never emits this event.
type PersistenceDegraded struct {
	// Component names what degraded: "journal" (the job's durability
	// record) or "snapshot" (the shared prepared-example store).
	Component string
	// Detail is the rendered write error.
	Detail string
}

// RunFinished is emitted once, just before Learn returns successfully.
type RunFinished struct {
	// Clauses is the size of the learned definition.
	Clauses int
	// ClausesConsidered is the total number of candidates scored.
	ClausesConsidered int
	// UncoveredPositives is the number of positive examples the definition
	// does not cover.
	UncoveredPositives int
	// Duration is the whole run's wall-clock time.
	Duration time.Duration
}

func (RunStarted) isEvent()           {}
func (PhaseDone) isEvent()            {}
func (IterationStarted) isEvent()     {}
func (CoverageProgress) isEvent()     {}
func (CandidateBatchScored) isEvent() {}
func (ClauseAccepted) isEvent()       {}
func (ClauseRejected) isEvent()       {}
func (SnapshotHit) isEvent()          {}
func (SnapshotMiss) isEvent()         {}
func (SnapshotWritten) isEvent()      {}
func (SnapshotWriteFailed) isEvent()  {}
func (ResultCacheHit) isEvent()       {}
func (PersistenceDegraded) isEvent()  {}
func (RunFinished) isEvent()          {}

// Observer receives the events of a learning run.
type Observer interface {
	Observe(Event)
}

// Func adapts a function to the Observer interface.
type Func func(Event)

// Observe calls f.
func (f Func) Observe(e Event) { f(e) }

// Discard is an Observer that drops every event.
var Discard Observer = Func(func(Event) {})

// multi fans one event stream out to several observers in order.
type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi combines observers into one that forwards every event to each of
// them in order. Nil observers are skipped; Multi() returns Discard.
func Multi(obs ...Observer) Observer {
	var out multi
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		return Discard
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}
