package observe

import (
	"encoding/json"
	"fmt"
)

// Wire type names of the event stream. Events cross process boundaries in
// dlearn-serve's server-sent event stream as {"type": ..., "data": ...}
// envelopes; the names below are the stable wire contract, decoupled from
// the Go type names so a type rename cannot silently break remote clients.
const (
	TypeRunStarted           = "run_started"
	TypePhaseDone            = "phase_done"
	TypeIterationStarted     = "iteration_started"
	TypeCoverageProgress     = "coverage_progress"
	TypeCandidateBatchScored = "candidate_batch_scored"
	TypeClauseAccepted       = "clause_accepted"
	TypeClauseRejected       = "clause_rejected"
	TypeSnapshotHit          = "snapshot_hit"
	TypeSnapshotMiss         = "snapshot_miss"
	TypeSnapshotWritten      = "snapshot_written"
	TypeSnapshotWriteFailed  = "snapshot_write_failed"
	TypeResultCacheHit       = "result_cache_hit"
	TypePersistenceDegraded  = "persistence_degraded"
	TypeRunFinished          = "run_finished"
)

// envelope is the wire form of one event: a stable type tag plus the event
// struct's own JSON encoding. Durations inside the payload marshal as
// int64 nanoseconds (encoding/json's default for time.Duration), which
// round-trips exactly.
type envelope struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// TypeName returns the wire type name of an event, or "" for an unknown
// event type.
func TypeName(e Event) string {
	switch e.(type) {
	case RunStarted:
		return TypeRunStarted
	case PhaseDone:
		return TypePhaseDone
	case IterationStarted:
		return TypeIterationStarted
	case CoverageProgress:
		return TypeCoverageProgress
	case CandidateBatchScored:
		return TypeCandidateBatchScored
	case ClauseAccepted:
		return TypeClauseAccepted
	case ClauseRejected:
		return TypeClauseRejected
	case SnapshotHit:
		return TypeSnapshotHit
	case SnapshotMiss:
		return TypeSnapshotMiss
	case SnapshotWritten:
		return TypeSnapshotWritten
	case SnapshotWriteFailed:
		return TypeSnapshotWriteFailed
	case ResultCacheHit:
		return TypeResultCacheHit
	case PersistenceDegraded:
		return TypePersistenceDegraded
	case RunFinished:
		return TypeRunFinished
	default:
		return ""
	}
}

// MarshalEvent encodes an event as its wire envelope.
func MarshalEvent(e Event) ([]byte, error) {
	name := TypeName(e)
	if name == "" {
		return nil, fmt.Errorf("observe: cannot marshal event of type %T", e)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("observe: marshalling %s event: %w", name, err)
	}
	return json.Marshal(envelope{Type: name, Data: data})
}

// UnmarshalEvent decodes a wire envelope back into the concrete event type.
// Unknown type names are an error, so a client talking to a newer server
// fails loudly instead of dropping events it does not understand; callers
// that want to skip unknown events can test the error with errors.As against
// *UnknownEventError.
func UnmarshalEvent(b []byte) (Event, error) {
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("observe: decoding event envelope: %w", err)
	}
	var e Event
	switch env.Type {
	case TypeRunStarted:
		e = &RunStarted{}
	case TypePhaseDone:
		e = &PhaseDone{}
	case TypeIterationStarted:
		e = &IterationStarted{}
	case TypeCoverageProgress:
		e = &CoverageProgress{}
	case TypeCandidateBatchScored:
		e = &CandidateBatchScored{}
	case TypeClauseAccepted:
		e = &ClauseAccepted{}
	case TypeClauseRejected:
		e = &ClauseRejected{}
	case TypeSnapshotHit:
		e = &SnapshotHit{}
	case TypeSnapshotMiss:
		e = &SnapshotMiss{}
	case TypeSnapshotWritten:
		e = &SnapshotWritten{}
	case TypeSnapshotWriteFailed:
		e = &SnapshotWriteFailed{}
	case TypeResultCacheHit:
		e = &ResultCacheHit{}
	case TypePersistenceDegraded:
		e = &PersistenceDegraded{}
	case TypeRunFinished:
		e = &RunFinished{}
	default:
		return nil, &UnknownEventError{Type: env.Type}
	}
	if err := json.Unmarshal(env.Data, e); err != nil {
		return nil, fmt.Errorf("observe: decoding %s event: %w", env.Type, err)
	}
	return deref(e), nil
}

// UnknownEventError reports an envelope whose type name this build does not
// know.
type UnknownEventError struct{ Type string }

func (e *UnknownEventError) Error() string {
	return fmt.Sprintf("observe: unknown event type %q", e.Type)
}

// deref returns the value form of a decoded event pointer, so UnmarshalEvent
// hands back the same value types observers receive from a local run.
func deref(e Event) Event {
	switch ev := e.(type) {
	case *RunStarted:
		return *ev
	case *PhaseDone:
		return *ev
	case *IterationStarted:
		return *ev
	case *CoverageProgress:
		return *ev
	case *CandidateBatchScored:
		return *ev
	case *ClauseAccepted:
		return *ev
	case *ClauseRejected:
		return *ev
	case *SnapshotHit:
		return *ev
	case *SnapshotMiss:
		return *ev
	case *SnapshotWritten:
		return *ev
	case *SnapshotWriteFailed:
		return *ev
	case *ResultCacheHit:
		return *ev
	case *PersistenceDegraded:
		return *ev
	case *RunFinished:
		return *ev
	default:
		return e
	}
}
