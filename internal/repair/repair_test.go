package repair

import (
	"strings"
	"testing"
	"testing/quick"

	"dlearn/internal/constraints"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
	"dlearn/internal/similarity"
)

// --- clause-level repairs -------------------------------------------------

// paperMDClause reproduces the clause of Example 3.2.
func paperMDClause() logic.Clause {
	x, t, y, z, vx, vt := logic.Var("x"), logic.Var("t"), logic.Var("y"), logic.Var("z"), logic.Var("vx"), logic.Var("vt")
	cond := logic.Condition{Op: logic.CondSim, L: x, R: t}
	return logic.NewClause(
		logic.Rel("highGrossing", x),
		logic.Rel("movies", y, t, z),
		logic.Rel("mov2genres", y, logic.Const("comedy")),
		logic.Rel("highBudgetMovies", x),
		logic.Sim(x, t),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, x, vx, cond),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, t, vt, cond),
		logic.Eq(vx, vt),
	)
}

func TestRepairedClausesExample32(t *testing.T) {
	got := RepairedClauses(paperMDClause(), Options{})
	if len(got) != 1 {
		t.Fatalf("Example 3.2 should yield exactly one repaired clause, got %d:\n%v", len(got), got)
	}
	rc := got[0]
	if !rc.IsRepaired() {
		t.Fatal("repaired clause still contains repair literals")
	}
	if rc.Head.Args[0] != logic.Var("vx") {
		t.Errorf("head should use the replacement variable vx, got %v", rc.Head.Args[0])
	}
	var sawMovies, sawEq, sawSim bool
	for _, l := range rc.Body {
		switch {
		case l.Pred == "movies":
			sawMovies = true
			if l.Args[1] != logic.Var("vt") {
				t.Errorf("movies title argument should be vt, got %v", l.Args[1])
			}
		case l.Kind == logic.EqualityLit:
			sawEq = true
		case l.Kind == logic.SimilarityLit:
			sawSim = true
		}
	}
	if !sawMovies || !sawEq {
		t.Errorf("repaired clause missing expected literals: %v", rc)
	}
	if sawSim {
		t.Errorf("similarity literal should be dropped after the MD repair: %v", rc)
	}
}

// example33Clause reproduces the clause of Example 3.3: two MDs both match
// the head variable x, so the two repair orders give two repaired clauses.
func example33Clause() logic.Clause {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	vx, vy := logic.Var("vx"), logic.Var("vy")
	ux, vz := logic.Var("ux"), logic.Var("vz")
	condXY := logic.Condition{Op: logic.CondSim, L: x, R: y}
	condXZ := logic.Condition{Op: logic.CondSim, L: x, R: z}
	return logic.NewClause(
		logic.Rel("T", x),
		logic.Rel("R", y),
		logic.Sim(x, y),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, x, vx, condXY),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, y, vy, condXY),
		logic.Eq(vx, vy),
		logic.Rel("S", z),
		logic.Sim(x, z),
		logic.RepairInGroup("md2", "md2#0", logic.OriginMD, x, ux, condXZ),
		logic.RepairInGroup("md2", "md2#0", logic.OriginMD, z, vz, condXZ),
		logic.Eq(ux, vz),
	)
}

func TestRepairedClausesExample33TwoRepairs(t *testing.T) {
	got := RepairedClauses(example33Clause(), Options{})
	if len(got) != 2 {
		t.Fatalf("Example 3.3 should yield two repaired clauses, got %d:\n%v", len(got), got)
	}
	heads := map[string]bool{}
	for _, rc := range got {
		if !rc.IsRepaired() {
			t.Fatal("unrepaired clause returned")
		}
		heads[rc.Head.Args[0].String()] = true
	}
	if !heads["vx"] || !heads["ux"] {
		t.Errorf("expected one repair via vx and one via ux, got heads %v", heads)
	}
	// In the vx-repair, S(z) must keep its original variable; in the
	// ux-repair, R(y) must keep its original variable (H'1 and H'2).
	for _, rc := range got {
		for _, l := range rc.Body {
			if rc.Head.Args[0] == logic.Var("vx") && l.Pred == "S" && l.Args[0] != logic.Var("z") {
				t.Errorf("H'1 should keep S(z): %v", rc)
			}
			if rc.Head.Args[0] == logic.Var("ux") && l.Pred == "R" && l.Args[0] != logic.Var("y") {
				t.Errorf("H'2 should keep R(y): %v", rc)
			}
		}
	}
}

// cfdViolationClause reproduces Example 3.1: a CFD violation inside a clause
// with the four alternative repair groups (two LHS modifications with fresh
// variables, two RHS unifications).
func cfdViolationClause() logic.Clause {
	x1, x2, z, tt := logic.Var("x1"), logic.Var("x2"), logic.Var("z"), logic.Var("t")
	vx1, vx2 := logic.Var("vx1"), logic.Var("vx2")
	eng := logic.Const("English")
	cond := []logic.Condition{
		{Op: logic.CondEq, L: x1, R: x2},
		{Op: logic.CondNeq, L: z, R: tt},
	}
	return logic.NewClause(
		logic.Rel("highGrossing", x1),
		logic.Rel("mov2locale", x1, eng, z),
		logic.Rel("mov2locale", x2, eng, tt),
		logic.InducedEq(x1, x2),
		logic.RepairInGroup("cfd1", "cfd1#lhs1", logic.OriginCFD, x1, vx1, cond...),
		logic.Neq(vx1, x2),
		logic.RepairInGroup("cfd1", "cfd1#lhs2", logic.OriginCFD, x2, vx2, cond...),
		logic.Neq(vx2, x1),
		logic.RepairInGroup("cfd1", "cfd1#rhs1", logic.OriginCFD, z, tt, cond...),
		logic.RepairInGroup("cfd1", "cfd1#rhs2", logic.OriginCFD, tt, z, cond...),
	)
}

func TestRepairedClausesCFDViolationAlternatives(t *testing.T) {
	got := RepairedClauses(cfdViolationClause(), Options{})
	if len(got) < 3 {
		t.Fatalf("CFD violation should yield at least 3 distinct repairs, got %d:\n%v", len(got), got)
	}
	sawUnifiedCountry := false
	sawBrokenLHS := false
	for _, rc := range got {
		if !rc.IsRepaired() {
			t.Fatal("unrepaired clause returned")
		}
		// Count how many mov2locale literals mention z vs t after repair.
		countryVars := map[string]bool{}
		for _, l := range rc.Body {
			if l.Pred == "mov2locale" {
				countryVars[l.Args[2].String()] = true
			}
		}
		if len(countryVars) == 1 {
			sawUnifiedCountry = true
		}
		for _, l := range rc.Body {
			if l.Kind == logic.InequalityLit {
				sawBrokenLHS = true
			}
		}
	}
	if !sawUnifiedCountry {
		t.Error("expected a repair that unifies the two country variables")
	}
	if !sawBrokenLHS {
		t.Error("expected a repair that breaks the LHS agreement with an inequality restriction")
	}
	// No repaired clause may still contain the violation pattern: two
	// mov2locale literals that share the same title variable but different
	// country variables.
	for _, rc := range got {
		var titles, countries []string
		for _, l := range rc.Body {
			if l.Pred == "mov2locale" {
				titles = append(titles, l.Args[0].String())
				countries = append(countries, l.Args[2].String())
			}
		}
		if len(titles) == 2 && titles[0] == titles[1] && countries[0] != countries[1] {
			// Only a violation if no inequality was introduced on the titles
			// and the countries remain distinct — i.e. nothing was repaired.
			t.Errorf("repaired clause still violates the CFD: %v", rc)
		}
	}
}

func TestRepairedClausesNoRepairLiterals(t *testing.T) {
	c := logic.NewClause(logic.Rel("p", logic.Var("x")), logic.Rel("q", logic.Var("x")))
	got := RepairedClauses(c, Options{})
	if len(got) != 1 || !got[0].Equal(c) {
		t.Fatalf("clause without repair literals should repair to itself: %v", got)
	}
}

func TestRepairedClausesFalseConditionDropsGroup(t *testing.T) {
	// Condition requires x ~ t but there is no similarity literal, so the
	// repair group is dropped without being applied.
	x, tt, vx := logic.Var("x"), logic.Var("t"), logic.Var("vx")
	c := logic.NewClause(
		logic.Rel("p", x),
		logic.Rel("q", x, tt),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, x, vx,
			logic.Condition{Op: logic.CondSim, L: x, R: tt}),
	)
	got := RepairedClauses(c, Options{})
	if len(got) != 1 {
		t.Fatalf("expected a single repaired clause, got %d", len(got))
	}
	if got[0].Head.Args[0] != logic.Var("x") {
		t.Errorf("head variable should be unchanged when the condition fails: %v", got[0])
	}
}

func TestRepairedDefinitionsAndCount(t *testing.T) {
	def := &logic.Definition{Target: "T"}
	def.Add(example33Clause(), logic.ClauseStats{})
	def.Add(logic.NewClause(logic.Rel("T", logic.Var("x")), logic.Rel("R", logic.Var("x"))), logic.ClauseStats{})
	groups := RepairedDefinitions(def, Options{})
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Fatalf("unexpected repaired definition shape: %d, %d, %d", len(groups), len(groups[0]), len(groups[1]))
	}
	if got := CountRepairedDefinitions(def, Options{}); got != 2 {
		t.Errorf("CountRepairedDefinitions = %d, want 2", got)
	}
	empty := &logic.Definition{Target: "T"}
	if CountRepairedDefinitions(empty, Options{}) != 0 {
		t.Error("empty definition should have 0 repaired definitions")
	}
}

func TestRepairedClausesRespectsCap(t *testing.T) {
	got := RepairedClauses(example33Clause(), Options{MaxClauses: 1})
	if len(got) != 1 {
		t.Fatalf("MaxClauses=1 should cap the result, got %d", len(got))
	}
}

// Property: repaired clauses never contain repair literals and never exceed
// the input clause's relation-literal count.
func TestPropertyRepairedClausesAreRepaired(t *testing.T) {
	inputs := []logic.Clause{paperMDClause(), example33Clause(), cfdViolationClause()}
	for _, c := range inputs {
		for _, rc := range RepairedClauses(c, Options{}) {
			if rc.HasRepairLiterals() {
				t.Fatalf("repaired clause contains repair literals: %v", rc)
			}
			if len(rc.RelationLiterals()) > len(c.RelationLiterals()) {
				t.Fatalf("repair increased the number of relation literals: %v", rc)
			}
		}
	}
}

// --- instance-level repairs -----------------------------------------------

func moviesSchema() *relation.Schema {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("movies",
		relation.Attr("id", "imdb_id"), relation.Attr("title", "title"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("highBudgetMovies", relation.Attr("title", "title")))
	return s
}

func titleMD() constraints.MD {
	return constraints.SimpleMD("md1", "movies", "title", "highBudgetMovies", "title")
}

func newSim() *similarity.PairCache {
	return similarity.NewPairCache(similarity.Default(), 0.55)
}

func TestFreshValue(t *testing.T) {
	if FreshValue("a", "a") != "a" {
		t.Error("matching a value with itself should not create a fresh value")
	}
	if FreshValue("a", "b") != FreshValue("b", "a") {
		t.Error("FreshValue must be symmetric")
	}
	if !isFresh(FreshValue("a", "b")) {
		t.Error("fresh values must be recognizable")
	}
}

func TestStableInstanceSingleMatch(t *testing.T) {
	in := relation.NewInstance(moviesSchema())
	in.MustInsert("movies", "m1", "Superbad (2007)", "2007")
	in.MustInsert("highBudgetMovies", "Superbad")
	stable, err := StableInstance(in, []constraints.MD{titleMD()}, newSim(), 0)
	if err != nil {
		t.Fatal(err)
	}
	lt := stable.Tuples("movies")[0].Values[1]
	rt := stable.Tuples("highBudgetMovies")[0].Values[0]
	if lt != rt {
		t.Errorf("matched titles should be unified: %q vs %q", lt, rt)
	}
	if !IsStable(stable, []constraints.MD{titleMD()}, newSim()) {
		t.Error("result of StableInstance must be stable")
	}
	if IsStable(in, []constraints.MD{titleMD()}, newSim()) {
		t.Error("original instance should not be stable")
	}
	// The original instance is untouched.
	if in.Tuples("movies")[0].Values[1] != "Superbad (2007)" {
		t.Error("StableInstance must not modify its input")
	}
}

func TestEnumerateStableInstancesExample23(t *testing.T) {
	// Example 2.3: 'Star Wars' matches two different movies, so there are two
	// stable instances.
	in := relation.NewInstance(moviesSchema())
	in.MustInsert("movies", "10", "Star Wars: Episode IV - 1977", "1977")
	in.MustInsert("movies", "40", "Star Wars: Episode III - 2005", "2005")
	in.MustInsert("highBudgetMovies", "Star Wars")
	stables := EnumerateStableInstances(in, []constraints.MD{titleMD()}, newSim(), 8)
	if len(stables) != 2 {
		for _, s := range stables {
			t.Logf("stable instance:\n%v%v", s.Tuples("movies"), s.Tuples("highBudgetMovies"))
		}
		t.Fatalf("Example 2.3 should have exactly 2 stable instances, got %d", len(stables))
	}
	for _, s := range stables {
		if !IsStable(s, []constraints.MD{titleMD()}, newSim()) {
			t.Error("enumerated instance is not stable")
		}
		// Exactly one of the two movie titles is unified with the BOM title.
		hb := s.Tuples("highBudgetMovies")[0].Values[0]
		unified := 0
		for _, mt := range s.Tuples("movies") {
			if mt.Values[1] == hb {
				unified++
			}
		}
		if unified != 1 {
			t.Errorf("the BOM title should be unified with exactly one movie, got %d", unified)
		}
	}
}

func TestMinimalCFDRepair(t *testing.T) {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("mov2locale",
		relation.Attr("title", "title"), relation.Attr("language", "language"), relation.Attr("country", "country")))
	in := relation.NewInstance(s)
	in.MustInsert("mov2locale", "Bait", "English", "USA")
	in.MustInsert("mov2locale", "Bait", "English", "Ireland")
	in.MustInsert("mov2locale", "Bait", "English", "USA")
	in.MustInsert("mov2locale", "Rec", "Spanish", "Spain")
	cfd := constraints.NewCFD("cfd1", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	repaired, mods, err := MinimalCFDRepair(in, []constraints.CFD{cfd})
	if err != nil {
		t.Fatal(err)
	}
	if mods != 1 {
		t.Errorf("minimal repair should modify exactly 1 field (the minority value), modified %d", mods)
	}
	if !cfd.Satisfied(repaired) {
		t.Error("repaired instance still violates the CFD")
	}
	// Majority value USA should win.
	for _, tp := range repaired.Tuples("mov2locale") {
		if tp.Values[0] == "Bait" && tp.Values[2] != "USA" {
			t.Errorf("expected country USA after repair, got %s", tp.Values[2])
		}
	}
	// Original untouched.
	if in.Tuples("mov2locale")[1].Values[2] != "Ireland" {
		t.Error("MinimalCFDRepair must not modify its input")
	}
}

func TestMinimalCFDRepairConstantPattern(t *testing.T) {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("r", relation.Attr("A", "a"), relation.Attr("B", "b")))
	in := relation.NewInstance(s)
	in.MustInsert("r", "a1", "wrong")
	cfd := constraints.NewCFD("c", "r", []string{"A"}, "B", map[string]string{"A": "a1", "B": "b1"})
	repaired, mods, err := MinimalCFDRepair(in, []constraints.CFD{cfd})
	if err != nil {
		t.Fatal(err)
	}
	if mods != 1 || repaired.Tuples("r")[0].Values[1] != "b1" {
		t.Errorf("constant RHS pattern should force the value b1, got %v (mods %d)", repaired.Tuples("r")[0], mods)
	}
}

func TestMinimalCFDRepairCascade(t *testing.T) {
	// Repairing B can introduce a violation of B -> C, which must also be
	// repaired (Section 4.1's cascading example).
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("r",
		relation.Attr("A", "a"), relation.Attr("B", "b"), relation.Attr("C", "c")))
	in := relation.NewInstance(s)
	in.MustInsert("r", "a1", "b1", "c1")
	in.MustInsert("r", "a1", "b2", "c2")
	fd1 := constraints.FD("fd1", "r", []string{"A"}, "B")
	fd2 := constraints.FD("fd2", "r", []string{"B"}, "C")
	repaired, _, err := MinimalCFDRepair(in, []constraints.CFD{fd1, fd2})
	if err != nil {
		t.Fatal(err)
	}
	if !fd1.Satisfied(repaired) || !fd2.Satisfied(repaired) {
		t.Error("cascading repair left violations")
	}
}

func TestResolveBestMatch(t *testing.T) {
	in := relation.NewInstance(moviesSchema())
	in.MustInsert("movies", "m1", "Superbad (2007)", "2007")
	in.MustInsert("movies", "m2", "Zoolander (2001)", "2001")
	in.MustInsert("highBudgetMovies", "Superbad")
	in.MustInsert("highBudgetMovies", "Unrelated Thing")
	out := ResolveBestMatch(in, []constraints.MD{titleMD()}, similarity.Default(), 0.55)
	var resolved bool
	for _, tp := range out.Tuples("highBudgetMovies") {
		if tp.Values[0] == "Superbad (2007)" {
			resolved = true
		}
		if tp.Values[0] == "Superbad" {
			t.Error("similar title should have been rewritten to its best match")
		}
	}
	if !resolved {
		t.Error("best-match resolution did not unify the similar titles")
	}
	// The unrelated title must remain untouched.
	found := false
	for _, tp := range out.Tuples("highBudgetMovies") {
		if tp.Values[0] == "Unrelated Thing" {
			found = true
		}
	}
	if !found {
		t.Error("unrelated value should not be rewritten")
	}
}

// Property: stable instances produced from random small inputs are stable
// and preserve the tuple count.
func TestPropertyStableInstancePreservesTuples(t *testing.T) {
	md := titleMD()
	f := func(titles []uint8) bool {
		if len(titles) > 6 {
			titles = titles[:6]
		}
		in := relation.NewInstance(moviesSchema())
		base := []string{"Star Wars IV", "Star Wars III", "Superbad", "Zoolander"}
		for i, b := range titles {
			in.MustInsert("movies", "m"+string(rune('0'+i)), base[int(b)%len(base)]+" (extended)", "2000")
		}
		in.MustInsert("highBudgetMovies", "Star Wars")
		stable, err := StableInstance(in, []constraints.MD{md}, newSim(), 0)
		if err != nil {
			return false
		}
		return stable.TotalTuples() == in.TotalTuples() &&
			IsStable(stable, []constraints.MD{md}, newSim())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: minimal CFD repair always yields an instance satisfying every
// CFD it was given, without changing the tuple count.
func TestPropertyMinimalCFDRepairSatisfies(t *testing.T) {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("r", relation.Attr("A", "a"), relation.Attr("B", "b")))
	fd := constraints.FD("fd", "r", []string{"A"}, "B")
	f := func(pairs []uint8) bool {
		in := relation.NewInstance(s)
		for i, p := range pairs {
			in.MustInsert("r", "a"+string(rune('0'+int(p)%3)), "b"+string(rune('0'+i%5)))
		}
		repaired, _, err := MinimalCFDRepair(in, []constraints.CFD{fd})
		if err != nil {
			return false
		}
		return fd.Satisfied(repaired) && repaired.TotalTuples() == in.TotalTuples()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRepairedClauseStringIsReadable(t *testing.T) {
	// Guard against regressions in rendering that would make EXPERIMENTS.md
	// output unreadable: the repaired clause of Example 3.2 mentions vx.
	got := RepairedClauses(paperMDClause(), Options{})[0].String()
	if !strings.Contains(got, "highGrossing(vx)") {
		t.Errorf("unexpected rendering: %s", got)
	}
}
