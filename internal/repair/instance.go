package repair

import (
	"fmt"
	"sort"

	"dlearn/internal/constraints"
	"dlearn/internal/relation"
	"dlearn/internal/similarity"
)

// FreshValue returns the fresh value v_{a,b} created by matching values a
// and b (Section 2.2). The construction is deterministic and order
// insensitive so repeated enforcement converges.
func FreshValue(a, b string) string {
	if a == b {
		return a
	}
	if b < a {
		a, b = b, a
	}
	return "<" + a + "|" + b + ">"
}

// mdMatch is a pending MD enforcement: tuple positions in the left and right
// relations whose matched attribute values differ but whose compared
// attributes are similar.
type mdMatch struct {
	md           constraints.MD
	leftPos      int
	rightPos     int
	leftVal      string
	rightVal     string
	leftMatchAt  int
	rightMatchAt int
}

// findMDMatches returns every pending MD enforcement in the instance, in a
// deterministic order. sim decides the ≈ operator. Fresh values (created by
// earlier enforcements) are only similar to themselves, mirroring the
// clause-level semantics where the similarity of a fresh value to other
// values is unknown.
func findMDMatches(in *relation.Instance, mds []constraints.MD, sim *similarity.PairCache) []mdMatch {
	var out []mdMatch
	schema := in.Schema()
	for _, md := range mds {
		leftIdx := md.LeftAttrIndexes(schema)
		rightIdx := md.RightAttrIndexes(schema)
		lm, rm := md.MatchIndexes(schema)
		if lm < 0 || rm < 0 {
			continue
		}
		left := in.Tuples(md.LeftRel)
		right := in.Tuples(md.RightRel)
		for i, lt := range left {
			for j, rt := range right {
				if lt.Values[lm] == rt.Values[rm] {
					continue
				}
				matched := true
				for k := range leftIdx {
					a, b := lt.Values[leftIdx[k]], rt.Values[rightIdx[k]]
					if isFresh(a) || isFresh(b) {
						if a != b {
							matched = false
							break
						}
						continue
					}
					if !sim.Similar(a, b) {
						matched = false
						break
					}
				}
				if matched {
					out = append(out, mdMatch{
						md: md, leftPos: i, rightPos: j,
						leftVal: lt.Values[lm], rightVal: rt.Values[rm],
						leftMatchAt: lm, rightMatchAt: rm,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.md.Name != b.md.Name {
			return a.md.Name < b.md.Name
		}
		if a.leftPos != b.leftPos {
			return a.leftPos < b.leftPos
		}
		return a.rightPos < b.rightPos
	})
	return out
}

func isFresh(v string) bool {
	return len(v) >= 2 && v[0] == '<' && v[len(v)-1] == '>'
}

// enforce applies one MD enforcement step (Definition 2.2) on a clone-free
// basis: it mutates the given instance.
func enforce(in *relation.Instance, m mdMatch) {
	fresh := FreshValue(m.leftVal, m.rightVal)
	_ = in.SetValueAt(m.md.LeftRel, m.leftPos, m.leftMatchAt, fresh)
	_ = in.SetValueAt(m.md.RightRel, m.rightPos, m.rightMatchAt, fresh)
}

// StableInstance produces one stable instance of the input (Section 2.2) by
// repeatedly enforcing pending MD matches in deterministic order until no
// match remains. The input instance is not modified. maxSteps bounds the
// number of enforcement steps (0 means a generous default proportional to
// the instance size).
func StableInstance(in *relation.Instance, mds []constraints.MD, sim *similarity.PairCache, maxSteps int) (*relation.Instance, error) {
	out := in.Clone()
	if maxSteps <= 0 {
		maxSteps = 10 * (in.TotalTuples() + 1)
	}
	for step := 0; ; step++ {
		matches := findMDMatches(out, mds, sim)
		if len(matches) == 0 {
			return out, nil
		}
		if step >= maxSteps {
			return nil, fmt.Errorf("repair: StableInstance did not converge within %d steps", maxSteps)
		}
		enforce(out, matches[0])
	}
}

// EnumerateStableInstances returns up to limit distinct stable instances of
// the input, exploring different orders of MD enforcement. It is intended
// for small instances (tests of Theorems 4.11/4.12 and the semantics
// examples); the number of stable instances grows exponentially in general.
func EnumerateStableInstances(in *relation.Instance, mds []constraints.MD, sim *similarity.PairCache, limit int) []*relation.Instance {
	if limit <= 0 {
		limit = 16
	}
	results := make(map[string]*relation.Instance)
	visited := make(map[string]bool)
	var explore func(cur *relation.Instance, depth int)
	explore = func(cur *relation.Instance, depth int) {
		if len(results) >= limit || depth > 12 {
			return
		}
		key := instanceKey(cur)
		if visited[key] {
			return
		}
		visited[key] = true
		matches := findMDMatches(cur, mds, sim)
		if len(matches) == 0 {
			results[key] = cur
			return
		}
		for _, m := range matches {
			next := cur.Clone()
			enforce(next, m)
			explore(next, depth+1)
			if len(results) >= limit {
				return
			}
		}
	}
	explore(in.Clone(), 0)
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*relation.Instance, 0, len(keys))
	for _, k := range keys {
		out = append(out, results[k])
	}
	return out
}

func instanceKey(in *relation.Instance) string {
	var keys []string
	for _, rel := range in.Schema().Names() {
		for _, t := range in.Tuples(rel) {
			keys = append(keys, t.Key())
		}
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}

// IsStable reports whether the instance has no pending MD enforcement.
func IsStable(in *relation.Instance, mds []constraints.MD, sim *similarity.PairCache) bool {
	return len(findMDMatches(in, mds, sim)) == 0
}

// MinimalCFDRepair repairs every CFD violation in the instance by value
// modification, choosing for each violating group the most frequent
// right-hand-side value (ties broken lexicographically) — the minimal-repair
// heuristic the paper uses for the DLearn-Repaired baseline. The input is
// not modified; the repaired clone is returned along with the number of
// field modifications performed.
func MinimalCFDRepair(in *relation.Instance, cfds []constraints.CFD) (*relation.Instance, int, error) {
	out := in.Clone()
	schema := out.Schema()
	modifications := 0
	// Repairing one CFD can introduce violations of another (Section 4.1),
	// so iterate to a fixed point with a safety cap.
	for round := 0; round < len(cfds)+4; round++ {
		changed := false
		for _, cfd := range cfds {
			rhs := cfd.RHSIndex(schema)
			if rhs < 0 {
				continue
			}
			viols := cfd.FindViolations(out)
			if len(viols) == 0 {
				continue
			}
			// Group violating tuples by their left-hand-side key and rewrite
			// the RHS of every tuple in the group to the majority value that
			// matches the pattern (or to the pattern constant).
			groups := make(map[string][]int)
			lhs := cfd.LHSIndexes(schema)
			tuples := out.Tuples(cfd.Relation)
			seen := make(map[int]bool)
			for _, v := range viols {
				for _, p := range []int{v.PosA, v.PosB} {
					if seen[p] {
						continue
					}
					seen[p] = true
					key := ""
					for _, li := range lhs {
						key += tuples[p].Values[li] + "\x1f"
					}
					groups[key] = append(groups[key], p)
				}
			}
			for _, positions := range groups {
				target := pickRepairValue(cfd, tuples, positions, rhs)
				for _, p := range positions {
					if tuples[p].Values[rhs] != target {
						if err := out.SetValueAt(cfd.Relation, p, rhs, target); err != nil {
							return nil, modifications, err
						}
						modifications++
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, cfd := range cfds {
		if !cfd.Satisfied(out) {
			return nil, modifications, fmt.Errorf("repair: MinimalCFDRepair left violations of %s", cfd.Name)
		}
	}
	return out, modifications, nil
}

// pickRepairValue chooses the value all RHS fields of a violating group are
// set to: the pattern constant when the CFD requires one, otherwise the most
// frequent existing value (ties broken lexicographically).
func pickRepairValue(cfd constraints.CFD, tuples []relation.Tuple, positions []int, rhs int) string {
	if p := cfd.PatternOf(cfd.RHS); p != constraints.Wildcard {
		return p
	}
	counts := make(map[string]int)
	for _, p := range positions {
		counts[tuples[p].Values[rhs]]++
	}
	best, bestCount := "", -1
	vals := make([]string, 0, len(counts))
	for v := range counts {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	for _, v := range vals {
		if counts[v] > bestCount {
			best, bestCount = v, counts[v]
		}
	}
	return best
}

// ResolveBestMatch implements the Castor-Clean preprocessing baseline: for
// every MD, each value of the right matched attribute is unified with the
// single most similar value of the left matched attribute (when it reaches
// the threshold), by rewriting the right value to the left one. The result
// joins exactly on the formerly heterogeneous attributes.
func ResolveBestMatch(in *relation.Instance, mds []constraints.MD, sim similarity.Func, threshold float64) *relation.Instance {
	out := in.Clone()
	schema := out.Schema()
	for _, md := range mds {
		lm, rm := md.MatchIndexes(schema)
		if lm < 0 || rm < 0 {
			continue
		}
		leftValues := out.DistinctValues(md.LeftRel, lm)
		idx := similarity.NewIndex(leftValues, sim, threshold)
		for _, rv := range out.DistinctValues(md.RightRel, rm) {
			matches := idx.TopK(rv, 1)
			if len(matches) == 0 || matches[0].Value == rv {
				continue
			}
			out.ReplaceValue(md.RightRel, rm, rv, matches[0].Value)
		}
	}
	return out
}
