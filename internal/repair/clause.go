// Package repair implements the two repair mechanisms of the paper:
//
//   - instance-level repairs — enforcing matching dependencies to produce
//     stable instances (Definition 2.2) and repairing CFD violations by
//     minimal value modification (Section 2.3); and
//   - clause-level repairs — converting a clause with repair literals into
//     its set of repaired clauses by iteratively applying repair groups
//     (Section 3.2).
//
// Repair literals are grouped into repair operations (logic.Literal.Group):
// the two literals V(x,vx), V(t,vt) of one MD match form a single group and
// are applied together (enforcing the MD sets both values to one fresh
// value), while the alternative fixes of one CFD violation (modify either
// left-hand-side occurrence, or unify the right-hand side in either
// direction) are separate groups, at most one of which fires per violation
// in any application order.
package repair

import (
	"context"
	"sort"

	"dlearn/internal/logic"
)

// Options controls repaired-clause enumeration.
type Options struct {
	// MaxClauses caps the number of distinct repaired clauses generated for
	// one input clause. Zero means DefaultMaxClauses.
	MaxClauses int
	// MaxStates caps the number of intermediate states explored. Zero means
	// DefaultMaxStates.
	MaxStates int
	// Origin restricts which repair literals are applied: OriginNone (the
	// zero value) applies all of them; OriginMD or OriginCFD applies only
	// the groups of that origin and leaves the others in place. Section 4.3
	// uses the CFD-only expansion during positive coverage testing.
	Origin logic.RepairOrigin
}

// DefaultMaxClauses is the default cap on repaired clauses per clause.
const DefaultMaxClauses = 64

// DefaultMaxStates is the default cap on explored intermediate states.
const DefaultMaxStates = 4096

func (o Options) maxClauses() int {
	if o.MaxClauses > 0 {
		return o.MaxClauses
	}
	return DefaultMaxClauses
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return DefaultMaxStates
}

// group is one repair operation: the repair literals sharing a Group tag.
type group struct {
	name     string
	literals []logic.Literal
}

// collectGroups extracts the repair groups of a clause in deterministic
// order, restricted to the given origin (OriginNone means all).
func collectGroups(c logic.Clause, origin logic.RepairOrigin) []group {
	byName := make(map[string][]logic.Literal)
	var order []string
	for _, l := range c.Body {
		if !l.IsRepair() {
			continue
		}
		if origin != logic.OriginNone && l.Origin != origin {
			continue
		}
		g := l.Group
		if g == "" {
			g = l.Pred
		}
		if _, ok := byName[g]; !ok {
			order = append(order, g)
		}
		byName[g] = append(byName[g], l)
	}
	sort.Strings(order)
	out := make([]group, 0, len(order))
	for _, name := range order {
		out = append(out, group{name: name, literals: byName[name]})
	}
	return out
}

// clauseFacts indexes the restriction literals of a clause so repair-group
// conditions can be evaluated. Induced equality literals support equality of
// the original variables but are never rewritten by substitutions, which is
// what prevents two alternative fixes of the same CFD violation from both
// firing (see the package comment).
type clauseFacts struct {
	eq  map[[2]string]bool
	sim map[[2]string]bool
}

func factsOf(c logic.Clause) clauseFacts {
	f := clauseFacts{eq: make(map[[2]string]bool), sim: make(map[[2]string]bool)}
	add := func(m map[[2]string]bool, a, b logic.Term) {
		m[[2]string{a.String(), b.String()}] = true
		m[[2]string{b.String(), a.String()}] = true
	}
	for _, l := range c.Body {
		switch l.Kind {
		case logic.EqualityLit:
			add(f.eq, l.Args[0], l.Args[1])
		case logic.SimilarityLit:
			add(f.sim, l.Args[0], l.Args[1])
		}
	}
	return f
}

// holds evaluates one condition conjunct against the clause facts.
func (f clauseFacts) holds(c logic.Condition) bool {
	l, r := c.L, c.R
	switch c.Op {
	case logic.CondEq:
		if l == r {
			return true
		}
		return f.eq[[2]string{l.String(), r.String()}]
	case logic.CondSim:
		if l == r {
			return true
		}
		return f.sim[[2]string{l.String(), r.String()}]
	case logic.CondNeq:
		// Distinct terms with no equality literal between them (Section 4.1).
		if l == r {
			return false
		}
		return !f.eq[[2]string{l.String(), r.String()}]
	default:
		return false
	}
}

// conditionHolds evaluates the conjunction of conditions of a repair group.
// All literals of a group share the same condition; the first literal's
// condition is used.
func conditionHolds(g group, facts clauseFacts) bool {
	if len(g.literals) == 0 {
		return false
	}
	for _, cond := range g.literals[0].Cond {
		if !facts.holds(cond) {
			return false
		}
	}
	return true
}

// applyGroup applies one repair group to the clause: every literal V(x, vx)
// of the group substitutes x := vx in the head, in relation literals, in
// non-induced restriction literals, and in the arguments and conditions of
// the remaining repair literals. Similarity literals mentioning a replaced
// term are removed (the fresh value's similarity to other values is
// unknown). Induced equality literals are left untouched; they are cleaned
// up at the end if they dangle. The group's own literals are removed.
func applyGroup(c logic.Clause, g group) logic.Clause {
	replaced := make(map[logic.Term]logic.Term, len(g.literals))
	inGroup := make(map[string]bool, len(g.literals))
	for _, l := range g.literals {
		replaced[l.Target()] = l.Replacement()
		inGroup[l.Key()] = true
	}
	subst := func(t logic.Term) logic.Term {
		if r, ok := replaced[t]; ok {
			return r
		}
		return t
	}
	out := logic.Clause{Head: substituteLiteral(c.Head, subst)}
	for _, l := range c.Body {
		if l.IsRepair() && inGroup[l.Key()] {
			continue
		}
		switch {
		case l.Kind == logic.SimilarityLit:
			// Drop similarity literals that mention a replaced term.
			if _, ok := replaced[l.Args[0]]; ok {
				continue
			}
			if _, ok := replaced[l.Args[1]]; ok {
				continue
			}
			out.Body = append(out.Body, l.Clone())
		case l.Kind == logic.EqualityLit && l.Induced:
			out.Body = append(out.Body, l.Clone())
		default:
			out.Body = append(out.Body, substituteLiteral(l, subst))
		}
	}
	return out
}

// dropGroup removes the literals of a group without applying it.
func dropGroup(c logic.Clause, g group) logic.Clause {
	inGroup := make(map[string]bool, len(g.literals))
	for _, l := range g.literals {
		inGroup[l.Key()] = true
	}
	out := logic.Clause{Head: c.Head.Clone()}
	for _, l := range c.Body {
		if l.IsRepair() && inGroup[l.Key()] {
			continue
		}
		out.Body = append(out.Body, l.Clone())
	}
	return out
}

func substituteLiteral(l logic.Literal, subst func(logic.Term) logic.Term) logic.Literal {
	out := l.Clone()
	for i, a := range out.Args {
		out.Args[i] = subst(a)
	}
	for i, c := range out.Cond {
		out.Cond[i] = logic.Condition{Op: c.Op, L: subst(c.L), R: subst(c.R)}
	}
	return out
}

// cleanupRepaired normalizes a repaired clause (Section 3.2's final
// clean-up step): equality classes are collapsed onto a single
// representative (the class constant when there is exactly one), restriction
// and induced-equality literals whose variables no longer appear in any
// schema literal are removed, similarity literals between terms already
// asserted equal are removed, and body literals are de-duplicated.
func cleanupRepaired(c logic.Clause) logic.Clause {
	c = normalizeEqualities(c)
	c = c.DropDanglingAuxiliaries()
	eq := make(map[[2]string]bool)
	for _, l := range c.Body {
		if l.Kind == logic.EqualityLit {
			eq[[2]string{l.Args[0].String(), l.Args[1].String()}] = true
			eq[[2]string{l.Args[1].String(), l.Args[0].String()}] = true
		}
	}
	out := logic.Clause{Head: c.Head}
	seen := make(map[string]bool, len(c.Body))
	for _, l := range c.Body {
		if l.Kind == logic.SimilarityLit {
			if l.Args[0] == l.Args[1] || eq[[2]string{l.Args[0].String(), l.Args[1].String()}] {
				continue
			}
		}
		// Trivial equalities carry no information in a repaired clause.
		if l.Kind == logic.EqualityLit && l.Args[0] == l.Args[1] {
			continue
		}
		k := l.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Body = append(out.Body, l)
	}
	return out
}

// normalizeEqualities inlines equality-to-constant information: every
// variable whose equality class contains exactly one distinct constant is
// replaced by that constant (the equality literals introduced when ground
// bottom clauses split constant occurrences are resolved this way, so
// repaired ground clauses join on constants again). Classes without a
// constant are left untouched — the paper's repaired clauses keep
// variable-to-variable restriction equalities such as vx = vt. Classes with
// two or more distinct constants are contradictory and are left untouched.
func normalizeEqualities(c logic.Clause) logic.Clause {
	classes := make(map[string][]logic.Term)
	parent := make(map[string]string)
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	terms := make(map[string]logic.Term)
	for _, l := range c.Body {
		if l.Kind != logic.EqualityLit {
			continue
		}
		a, b := l.Args[0], l.Args[1]
		terms[a.String()] = a
		terms[b.String()] = b
		union(a.String(), b.String())
	}
	if len(terms) == 0 {
		return c
	}
	for key, t := range terms {
		root := find(key)
		classes[root] = append(classes[root], t)
	}
	// Inline classes that resolve to exactly one constant.
	repr := make(map[logic.Term]logic.Term)
	for _, members := range classes {
		var consts []logic.Term
		for _, m := range members {
			if m.IsConst() {
				consts = append(consts, m)
			}
		}
		if len(consts) != 1 {
			continue // no constant, or contradictory class: leave untouched
		}
		for _, m := range members {
			if m != consts[0] {
				repr[m] = consts[0]
			}
		}
	}
	if len(repr) == 0 {
		return c
	}
	subst := func(t logic.Term) logic.Term {
		if r, ok := repr[t]; ok {
			return r
		}
		return t
	}
	out := logic.Clause{Head: substituteLiteral(c.Head, subst)}
	for _, l := range c.Body {
		nl := substituteLiteral(l, subst)
		if nl.Kind == logic.EqualityLit && nl.Args[0] == nl.Args[1] {
			continue
		}
		out.Body = append(out.Body, nl)
	}
	return out
}

// RepairedClauses converts a clause with repair literals into its set of
// repaired clauses (Section 3.2). Each element is free of repair literals.
// Different application orders of the repair groups can yield different
// repaired clauses; all distinct outcomes are returned (subject to the
// Options caps). A clause without repair literals repairs to itself (after
// the standard clean-up).
func RepairedClauses(c logic.Clause, opts Options) []logic.Clause {
	return RepairedClausesContext(context.Background(), c, opts)
}

// RepairedClausesContext is RepairedClauses with cancellation: when ctx is
// cancelled the expansion stops exploring and returns the (possibly
// incomplete) set found so far. Callers that must distinguish a complete
// expansion from a truncated one check ctx.Err() afterwards.
func RepairedClausesContext(ctx context.Context, c logic.Clause, opts Options) []logic.Clause {
	type state struct {
		clause logic.Clause
	}
	maxClauses, maxStates := opts.maxClauses(), opts.maxStates()
	results := make(map[string]logic.Clause)
	visited := make(map[string]bool)
	statesExplored := 0

	var explore func(s state)
	explore = func(s state) {
		if len(results) >= maxClauses || statesExplored >= maxStates {
			return
		}
		if statesExplored%64 == 0 && ctx.Err() != nil {
			statesExplored = maxStates
			return
		}
		statesExplored++
		key := s.clause.Key()
		if visited[key] {
			return
		}
		visited[key] = true

		groups := collectGroups(s.clause, opts.Origin)
		if len(groups) == 0 {
			final := cleanupRepaired(s.clause)
			results[final.Key()] = final
			return
		}
		facts := factsOf(s.clause)
		applicable := make([]group, 0, len(groups))
		for _, g := range groups {
			if conditionHolds(g, facts) {
				applicable = append(applicable, g)
			}
		}
		if len(applicable) == 0 {
			// No group can fire: drop them all and finish.
			next := s.clause
			for _, g := range groups {
				next = dropGroup(next, g)
			}
			final := cleanupRepaired(next)
			results[final.Key()] = final
			return
		}
		// Branch on which applicable group fires first.
		for _, g := range applicable {
			explore(state{clause: applyGroup(s.clause, g)})
			if len(results) >= maxClauses || statesExplored >= maxStates {
				return
			}
		}
	}
	explore(state{clause: c})

	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]logic.Clause, 0, len(keys))
	for _, k := range keys {
		out = append(out, results[k])
	}
	return out
}

// RepairedDefinitions expands every clause of a definition into its repaired
// clauses. The result groups the repaired clauses per original clause; a
// repaired definition (Section 3.2) picks exactly one element from each
// group.
func RepairedDefinitions(d *logic.Definition, opts Options) [][]logic.Clause {
	out := make([][]logic.Clause, 0, len(d.Clauses))
	for _, c := range d.Clauses {
		out = append(out, RepairedClauses(c, opts))
	}
	return out
}

// CountRepairedDefinitions returns the number of repaired definitions the
// definition represents (the product of per-clause repaired-clause counts).
func CountRepairedDefinitions(d *logic.Definition, opts Options) int {
	if len(d.Clauses) == 0 {
		return 0
	}
	total := 1
	for _, rc := range RepairedDefinitions(d, opts) {
		total *= len(rc)
	}
	return total
}
