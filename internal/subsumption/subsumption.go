// Package subsumption implements θ-subsumption between clauses of the
// extended hypothesis language, including the repair-literal condition of
// Definition 4.4 of the paper. θ-subsumption is the generality order used by
// DLearn's generalization step and the workhorse of its coverage tests
// (Theorems 4.6 and 4.9 establish that it is sound, and for MD-only repair
// literals also complete, for logical entailment).
//
// The implementation compiles the subsuming clause into an integer-indexed
// constraint-satisfaction problem (dense variable ids, per-literal candidate
// lists filtered by constants) and runs a bounded backtracking search whose
// literal order is chosen per probe by a statistics-free selectivity planner
// (see planner.go); plans are permutations, so the planner changes node
// counts, never outcomes.
package subsumption

import (
	"context"

	"dlearn/internal/logic"
)

// Options bounds the backtracking search. θ-subsumption is NP-complete; the
// learner treats a search that exceeds its budget as "does not subsume",
// which only makes coverage estimates conservative.
type Options struct {
	// MaxNodes caps the number of search nodes explored. Zero means
	// DefaultMaxNodes.
	MaxNodes int
	// DisablePlanner turns off the per-probe literal planner, so the
	// backtracking search tries the candidate's body literals in clause
	// order instead of selectivity order. The planner never changes a
	// probe's outcome — plans are permutations — so this switch exists for
	// differential testing and A/B measurement, is off (planner on) by
	// default, and is deliberately excluded from snapshot and result
	// fingerprints.
	DisablePlanner bool
}

// DefaultMaxNodes is the default search budget.
const DefaultMaxNodes = 100000

func (o Options) maxNodes() int {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return DefaultMaxNodes
}

// Checker performs θ-subsumption tests. The zero value is usable. A Checker
// is stateless apart from its options and is safe for concurrent use.
type Checker struct {
	Opts Options
}

// New returns a checker with the given options.
func New(opts Options) *Checker { return &Checker{Opts: opts} }

// Subsumes reports whether c θ-subsumes d (c ⊆θ d) in the sense of
// Definition 4.4: there is a substitution θ with cθ ⊆ d, where repair
// literals are matched like ordinary literals, and every repair literal of d
// connected to a mapped literal of d is itself mapped. The substitution is
// returned when subsumption holds.
func (ch *Checker) Subsumes(c, d logic.Clause) (bool, logic.Substitution) {
	return ch.SubsumesContext(context.Background(), c, d)
}

// SubsumesContext is Subsumes with cancellation: a cancelled search stops at
// its next poll and reports no subsumption (the same conservative answer an
// exhausted node budget produces).
func (ch *Checker) SubsumesContext(ctx context.Context, c, d logic.Clause) (bool, logic.Substitution) {
	if c.Head.Pred != d.Head.Pred || len(c.Head.Args) != len(d.Head.Args) {
		return false, nil
	}
	return ch.compile(ctx, c, d, false).run()
}

// SubsumesPlain reports whether c θ-subsumes d ignoring the repair-literal
// connectivity requirement of Definition 4.4. It is the classical
// θ-subsumption used between repaired clauses.
func (ch *Checker) SubsumesPlain(c, d logic.Clause) (bool, logic.Substitution) {
	return ch.SubsumesPlainContext(context.Background(), c, d)
}

// SubsumesPlainContext is SubsumesPlain with cancellation.
func (ch *Checker) SubsumesPlainContext(ctx context.Context, c, d logic.Clause) (bool, logic.Substitution) {
	if c.Head.Pred != d.Head.Pred || len(c.Head.Args) != len(d.Head.Args) {
		return false, nil
	}
	return ch.compile(ctx, c, d, true).run()
}

// Equivalent reports whether two clauses are θ-equivalent (each subsumes the
// other). It is used by the minimal-generalization tests (Proposition 4.8).
func (ch *Checker) Equivalent(a, b logic.Clause) bool {
	ab, _ := ch.Subsumes(a, b)
	if !ab {
		return false
	}
	ba, _ := ch.Subsumes(b, a)
	return ba
}

// predKey distinguishes relation literals by predicate and repair literals by
// their kind, origin and dependency name, so MD repair literals only map to
// MD repair literals of the same dependency.
func predKey(l logic.Literal) string {
	if l.IsRepair() {
		return "V#" + l.Origin.String() + "#" + l.Pred
	}
	return "R#" + l.Pred
}

// unionFind is a minimal union-find over terms used to build the equality
// closure of the subsumed clause. Keying by logic.Term (a comparable struct)
// instead of rendered strings keeps the constraint checks of the search
// allocation-free.
type unionFind struct {
	parent map[logic.Term]logic.Term
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[logic.Term]logic.Term)} }

func (u *unionFind) find(x logic.Term) logic.Term {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b logic.Term) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// freeze resolves every element to its final root, producing a read-only
// closure. The union-find itself mutates on reads (path compression), so a
// Prepared stores the frozen form to stay safe under concurrent probes.
func (u *unionFind) freeze() eqClosure {
	root := make(map[logic.Term]logic.Term, len(u.parent))
	for x := range u.parent {
		root[x] = u.find(x)
	}
	return eqClosure{root: root}
}

// eqClosure is an immutable equality closure: a term maps to the
// representative of its equivalence class. Terms never mentioned in an
// equality literal are only equal to themselves.
type eqClosure struct {
	root map[logic.Term]logic.Term
}

func (e eqClosure) same(a, b logic.Term) bool {
	if a == b {
		return true
	}
	ra, ok := e.root[a]
	if !ok {
		return false
	}
	rb, ok := e.root[b]
	if !ok {
		return false
	}
	return ra == rb
}
