package subsumption

import "sync"

// This file implements the per-probe literal planner: before the
// backtracking search starts, the candidate's body literals are greedily
// ordered by estimated selectivity over the connected frontier — at every
// step, among the literals sharing a variable with the already-bound set,
// the one with the smallest candidate image in the prepared example goes
// next. Connectivity gates the frontier because a literal disconnected from
// every binding cannot be filtered by them: placing it early multiplies the
// search space by its full image size without pruning anything, the join-
// order equivalent of a Cartesian product. The exception is a literal with
// at most one image — a pure filter with branching factor ≤ 1 — which is
// always eligible, so cheap fail-fast checks run as early as possible.
//
// θ-subsumption is conjunctive-query evaluation, and this is a statistics-
// free greedy join order: the plan costs O(n²) over the body literals, needs
// no catalogue (the per-probe image sizes ARE the statistics, computed from
// the Prepared example's predicate index), and never changes the search's
// outcome — only how many nodes it explores before finding a match or
// exhausting the alternatives.
//
// Plans are pure permutations: the search still visits exactly the same
// literal set under exactly the same semantics, which is what the
// differential test battery (fuzz, property and engine-matrix tests) pins.

// planOrder returns the search order over the per-probe literals as a
// permutation of their indices. At every step the frontier is the set of
// unplanned literals connected to the covered variable set (seed variables
// plus the variables of every literal planned so far) or with at most one
// candidate image; the smallest-image frontier literal is picked, falling
// back to the globally smallest-image literal when the frontier is empty
// (the start of a new clause-graph component). Ties keep the lowest index,
// so the plan is deterministic for a fixed probe. O(n²) in the number of
// body literals.
func planOrder(lits []compiledLit, numVars int, seedVars []int) []int {
	covered := make([]bool, numVars)
	for _, v := range seedVars {
		covered[v] = true
	}
	connectedTo := func(cl compiledLit) bool {
		for _, a := range cl.args {
			if a.varID >= 0 && covered[a.varID] {
				return true
			}
		}
		return false
	}
	used := make([]bool, len(lits))
	out := make([]int, 0, len(lits))
	for len(out) < len(lits) {
		best, bestConn := -1, false
		for i, cl := range lits {
			if used[i] {
				continue
			}
			conn := connectedTo(cl) || len(cl.candidates) <= 1
			switch {
			case best < 0:
				best, bestConn = i, conn
			case conn != bestConn:
				if conn {
					best, bestConn = i, true
				}
			case len(cl.candidates) < len(lits[best].candidates):
				best = i
			}
		}
		used[best] = true
		out = append(out, best)
		for _, a := range lits[best].args {
			if a.varID >= 0 {
				covered[a.varID] = true
			}
		}
	}
	return out
}

// applyPlan permutes the per-probe literals into plan order: the k-th literal
// searched is lits[plan[k]].
func applyPlan(lits []compiledLit, plan []int) []compiledLit {
	out := make([]compiledLit, len(lits))
	for k, i := range plan {
		out[k] = lits[i]
	}
	return out
}

// planKey identifies one (candidate, example) probe. Both sides are
// immutable and interned for the life of a batch (the evaluator memoizes
// CompiledCandidates by clause key; Prepared examples are stable), so
// pointer identity is a sound cache key.
type planKey struct {
	cand *CompiledCandidate
	prep *Prepared
}

// PlanCache memoizes literal plans per (candidate, example) probe. A probe's
// plan depends only on the candidate's compilation and the prepared
// example's predicate index, so a repeated probe of the same pair — the
// plain and Definition 4.4 modes of one coverage test, or a re-probe in a
// later hill-climbing step of the same batch — reuses the stored permutation
// instead of re-running the O(n²) greedy. The cache is scoped by its owner
// (the coverage layer attaches one to each batch-scoped probe state), which
// bounds its size to the probes of one batch. Safe for concurrent use.
type PlanCache struct {
	mu sync.Mutex
	m  map[planKey][]int
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache { return &PlanCache{m: make(map[planKey][]int)} }

// get returns the cached plan for the probe, or nil.
func (pc *PlanCache) get(k planKey) []int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.m[k]
}

// put stores the plan for the probe. Plans are deterministic per key, so a
// racing duplicate store is harmless.
func (pc *PlanCache) put(k planKey, plan []int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.m[k] = plan
}

// Len returns the number of cached plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.m)
}
