package subsumption

import (
	"context"
	"testing"

	"dlearn/internal/logic"
)

// bigSubsumptionProblem builds a subsumption instance whose search explores
// far more than one ctx poll interval of nodes: n same-predicate literals
// over shared variables against a d-side designed to force backtracking.
func bigSubsumptionProblem(n int) (logic.Clause, logic.Clause) {
	var cBody, dBody []logic.Literal
	vars := make([]logic.Term, n+1)
	for i := range vars {
		vars[i] = logic.Var(string(rune('A'+i%26)) + string(rune('0'+i/26)))
	}
	for i := 0; i < n; i++ {
		cBody = append(cBody, logic.Rel("edge", vars[i], vars[i+1]))
	}
	// d: a dense graph of constants so every c literal has many candidates.
	consts := make([]logic.Term, 8)
	for i := range consts {
		consts[i] = logic.Const(string(rune('a' + i)))
	}
	for _, x := range consts {
		for _, y := range consts {
			if x != y {
				dBody = append(dBody, logic.Rel("edge", x, y))
			}
		}
	}
	c := logic.NewClause(logic.Rel("t", vars[0]), cBody...)
	d := logic.NewClause(logic.Rel("t", consts[0]), dBody...)
	return c, d
}

func TestSubsumesContextCancelled(t *testing.T) {
	c, d := bigSubsumptionProblem(12)
	ch := New(Options{MaxNodes: 10_000_000})

	// Sanity: the uncancelled search finds the mapping.
	if ok, _ := ch.Subsumes(c, d); !ok {
		t.Fatal("uncancelled search should subsume")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if ok, _ := ch.SubsumesContext(ctx, c, d); ok {
		t.Error("cancelled search must conservatively report no subsumption")
	}
	if ok, _ := ch.SubsumesPlainContext(ctx, c, d); ok {
		t.Error("cancelled plain search must conservatively report no subsumption")
	}
}

func TestPreparedSubsumesContextCancelled(t *testing.T) {
	c, d := bigSubsumptionProblem(12)
	ch := New(Options{MaxNodes: 10_000_000})
	prep := ch.Prepare(d)
	if ok, _ := prep.Subsumes(c); !ok {
		t.Fatal("uncancelled prepared search should subsume")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if ok, _ := prep.SubsumesContext(ctx, c); ok {
		t.Error("cancelled prepared search must conservatively report no subsumption")
	}
}
