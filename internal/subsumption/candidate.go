package subsumption

import (
	"context"

	"dlearn/internal/logic"
)

// CompiledCandidate is the reusable compilation of the subsuming (c) side of
// a θ-subsumption problem: dense variable numbering, compiled literal
// arguments and restriction constraints. The covering search probes one
// candidate clause against hundreds of prepared ground bottom clauses, so
// compiling the candidate once and reusing it across probes removes the
// per-example recompilation that used to dominate each test.
//
// A CompiledCandidate is immutable after CompileCandidate returns and is safe
// for concurrent probing from many goroutines: every probe allocates its own
// search state (candidate images depend on the prepared example, so they are
// computed per probe; the variable numbering and constraints are shared).
type CompiledCandidate struct {
	c logic.Clause

	varIndex map[string]int // c variable name -> dense id
	varNames []string

	// lits are the mappable (relation and repair) literals of c, without
	// per-example candidate images.
	lits []candLit

	// constraints are the restriction literals of c; varConstraints[v] lists
	// the constraint indices mentioning variable v.
	constraints    []compiledConstraint
	varConstraints [][]int

	headVars []int
}

// candLit is one mappable literal of the candidate: its body index, its
// predicate key (used to look up images in a Prepared) and compiled
// arguments.
type candLit struct {
	cIndex int
	key    string
	args   []compiledTerm
}

// CompileCandidate compiles the subsuming side of a clause for repeated
// probes against prepared examples.
func CompileCandidate(c logic.Clause) *CompiledCandidate {
	cc := &CompiledCandidate{c: c, varIndex: make(map[string]int)}
	termOf := func(t logic.Term) compiledTerm {
		if t.IsConst() {
			return compiledTerm{varID: -1, value: t.Name}
		}
		id, ok := cc.varIndex[t.Name]
		if !ok {
			id = len(cc.varNames)
			cc.varIndex[t.Name] = id
			cc.varNames = append(cc.varNames, t.Name)
		}
		return compiledTerm{varID: id}
	}

	// Head variables first so they are bound before the search starts.
	for _, a := range c.Head.Args {
		termOf(a)
	}

	for i, l := range c.Body {
		switch {
		case l.IsRelation() || l.IsRepair():
			cl := candLit{cIndex: i, key: predKey(l)}
			for _, a := range l.Args {
				cl.args = append(cl.args, termOf(a))
			}
			cc.lits = append(cc.lits, cl)
		default:
			ci := compiledConstraint{kind: l.Kind, l: termOf(l.Args[0]), r: termOf(l.Args[1])}
			cc.constraints = append(cc.constraints, ci)
		}
	}
	cc.varConstraints = make([][]int, len(cc.varNames))
	for idx, con := range cc.constraints {
		if con.l.varID >= 0 {
			cc.varConstraints[con.l.varID] = append(cc.varConstraints[con.l.varID], idx)
		}
		if con.r.varID >= 0 && con.r.varID != con.l.varID {
			cc.varConstraints[con.r.varID] = append(cc.varConstraints[con.r.varID], idx)
		}
	}
	cc.headVars = headVarIDs(c, cc.varIndex)
	return cc
}

// Clause returns the clause the candidate was compiled from.
func (cc *CompiledCandidate) Clause() logic.Clause { return cc.c }

// Subsumes reports whether the candidate θ-subsumes the prepared clause
// under Definition 4.4.
func (cc *CompiledCandidate) Subsumes(ctx context.Context, p *Prepared) (bool, logic.Substitution) {
	if cc.c.Head.Pred != p.d.Head.Pred || len(cc.c.Head.Args) != len(p.d.Head.Args) {
		return false, nil
	}
	return cc.against(ctx, p, false).run()
}

// SubsumesPlain reports whether the candidate θ-subsumes the prepared
// clause, ignoring the repair-literal closure requirement.
func (cc *CompiledCandidate) SubsumesPlain(ctx context.Context, p *Prepared) (bool, logic.Substitution) {
	if cc.c.Head.Pred != p.d.Head.Pred || len(cc.c.Head.Args) != len(p.d.Head.Args) {
		return false, nil
	}
	return cc.against(ctx, p, true).run()
}

// against instantiates the per-probe search state: candidate images of every
// literal in the prepared clause (filtered by predicate key, arity and
// constant positions) and the search order over them.
func (cc *CompiledCandidate) against(ctx context.Context, prep *Prepared, skipClosure bool) *compiled {
	e := &compiled{
		c: cc.c, d: prep.d,
		varIndex:          cc.varIndex,
		varNames:          cc.varNames,
		constraints:       cc.constraints,
		varConstraints:    cc.varConstraints,
		prep:              prep,
		skipRepairClosure: skipClosure,
		maxNodes:          prep.maxNodes,
		ctx:               ctx,
	}
	lits := make([]compiledLit, 0, len(cc.lits))
	for _, l := range cc.lits {
		cl := compiledLit{cIndex: l.cIndex, args: l.args}
		for _, di := range prep.byPred[l.key] {
			dl := prep.d.Body[di]
			if len(dl.Args) != len(l.args) {
				continue
			}
			ok := true
			for k, a := range l.args {
				if a.varID < 0 {
					da := dl.Args[k]
					if da.IsVar() || da.Name != a.value {
						ok = false
						break
					}
				}
			}
			if ok {
				cl.candidates = append(cl.candidates, di)
			}
		}
		if len(cl.candidates) == 0 {
			// A mappable literal with no image: the search cannot succeed, so
			// skip ordering and search-state setup entirely. Failing probes
			// are the common case when scoring selective candidates.
			e.infeasible = true
			return e
		}
		lits = append(lits, cl)
	}
	e.lits = orderLits(lits, len(cc.varNames), cc.headVars)
	return e
}
