package subsumption

import (
	"context"
	"time"

	"dlearn/internal/logic"
)

// CompiledCandidate is the reusable compilation of the subsuming (c) side of
// a θ-subsumption problem: dense variable numbering, compiled literal
// arguments and restriction constraints. The covering search probes one
// candidate clause against hundreds of prepared ground bottom clauses, so
// compiling the candidate once and reusing it across probes removes the
// per-example recompilation that used to dominate each test.
//
// A CompiledCandidate is immutable after CompileCandidate returns and is safe
// for concurrent probing from many goroutines: every probe allocates its own
// search state (candidate images depend on the prepared example, so they are
// computed per probe; the variable numbering and constraints are shared).
type CompiledCandidate struct {
	c logic.Clause

	varIndex map[string]int // c variable name -> dense id
	varNames []string

	// lits are the mappable (relation and repair) literals of c, without
	// per-example candidate images.
	lits []candLit

	// constraints are the restriction literals of c; varConstraints[v] lists
	// the constraint indices mentioning variable v.
	constraints    []compiledConstraint
	varConstraints [][]int

	headVars []int
}

// candLit is one mappable literal of the candidate: its body index, its
// interned predicate-key ID (used to look up images in a Prepared) and
// compiled arguments.
type candLit struct {
	cIndex int
	key    uint32
	args   []compiledTerm
}

// CompileCandidate compiles the subsuming side of a clause for repeated
// probes against prepared examples.
func CompileCandidate(c logic.Clause) *CompiledCandidate {
	cc := &CompiledCandidate{c: c, varIndex: make(map[string]int)}
	termOf := func(t logic.Term) compiledTerm {
		if t.IsConst() {
			return compiledTerm{varID: -1, value: t.Name}
		}
		id, ok := cc.varIndex[t.Name]
		if !ok {
			id = len(cc.varNames)
			cc.varIndex[t.Name] = id
			cc.varNames = append(cc.varNames, t.Name)
		}
		return compiledTerm{varID: id}
	}

	// Head variables first so they are bound before the search starts.
	for _, a := range c.Head.Args {
		termOf(a)
	}

	for i, l := range c.Body {
		switch {
		case l.IsRelation() || l.IsRepair():
			cl := candLit{cIndex: i, key: predID(l)}
			for _, a := range l.Args {
				cl.args = append(cl.args, termOf(a))
			}
			cc.lits = append(cc.lits, cl)
		default:
			ci := compiledConstraint{kind: l.Kind, l: termOf(l.Args[0]), r: termOf(l.Args[1])}
			cc.constraints = append(cc.constraints, ci)
		}
	}
	cc.varConstraints = make([][]int, len(cc.varNames))
	for idx, con := range cc.constraints {
		if con.l.varID >= 0 {
			cc.varConstraints[con.l.varID] = append(cc.varConstraints[con.l.varID], idx)
		}
		if con.r.varID >= 0 && con.r.varID != con.l.varID {
			cc.varConstraints[con.r.varID] = append(cc.varConstraints[con.r.varID], idx)
		}
	}
	cc.headVars = headVarIDs(c, cc.varIndex)
	return cc
}

// Clause returns the clause the candidate was compiled from.
func (cc *CompiledCandidate) Clause() logic.Clause { return cc.c }

// ProbeOptions configures one instrumented probe of a candidate against a
// prepared example. The zero value is the default probe: Definition 4.4
// semantics with the literal planner enabled.
type ProbeOptions struct {
	// Plain ignores the repair-literal closure requirement (SubsumesPlain
	// semantics).
	Plain bool
	// NoPlanner disables the literal planner: the search tries literals in
	// the candidate's fixed compilation (clause) order. The outcome is
	// identical either way — plans are permutations — so this is the
	// off-switch differential testing and A/B measurement probe against.
	NoPlanner bool
	// Cache, when non-nil, memoizes the probe's literal plan keyed by the
	// (candidate, example) pair so repeated probes skip the O(n²) greedy.
	Cache *PlanCache
	// TimePlan measures the planning time into ProbeStats.PlanNanos. Off by
	// default: the clock calls would tax the hot path for telemetry only
	// the bench harness reads.
	TimePlan bool
}

// ProbeStats reports how much work one probe did, for plan telemetry and the
// planner-vs-fixed-order differential measurements.
type ProbeStats struct {
	// Nodes is the number of backtracking-search nodes the probe explored
	// (zero for probes rejected before the search: head mismatch or an
	// infeasible literal).
	Nodes int
	// Planned reports whether the literal planner ordered this probe's
	// search.
	Planned bool
	// Infeasible reports a probe that bailed before searching because some
	// literal of the candidate has no image in the example.
	Infeasible bool
	// Exhausted reports a search that hit its node budget (or was cancelled,
	// which abandons the search the same way). An exhausted probe's "does not
	// subsume" answer is conservative, not definitive, so differential
	// comparisons must not treat it as an outcome.
	Exhausted bool
	// PlanNanos is the time spent computing the literal plan; measured only
	// when ProbeOptions.TimePlan is set.
	PlanNanos int64
}

// Subsumes reports whether the candidate θ-subsumes the prepared clause
// under Definition 4.4.
func (cc *CompiledCandidate) Subsumes(ctx context.Context, p *Prepared) (bool, logic.Substitution) {
	ok, theta, _ := cc.Probe(ctx, p, ProbeOptions{})
	return ok, theta
}

// SubsumesPlain reports whether the candidate θ-subsumes the prepared
// clause, ignoring the repair-literal closure requirement.
func (cc *CompiledCandidate) SubsumesPlain(ctx context.Context, p *Prepared) (bool, logic.Substitution) {
	ok, theta, _ := cc.Probe(ctx, p, ProbeOptions{Plain: true})
	return ok, theta
}

// Probe is the instrumented θ-subsumption test: Subsumes/SubsumesPlain with
// explicit probe options and per-probe work statistics.
func (cc *CompiledCandidate) Probe(ctx context.Context, p *Prepared, o ProbeOptions) (bool, logic.Substitution, ProbeStats) {
	if cc.c.Head.Pred != p.d.Head.Pred || len(cc.c.Head.Args) != len(p.d.Head.Args) {
		return false, nil, ProbeStats{}
	}
	e := cc.against(ctx, p, o)
	ok, theta := e.run()
	return ok, theta, ProbeStats{
		Nodes:      e.nodes,
		Planned:    e.planned,
		Infeasible: e.infeasible,
		Exhausted:  e.nodes >= e.maxNodes,
		PlanNanos:  e.planNanos,
	}
}

// against instantiates the per-probe search state: candidate images of every
// literal in the prepared clause (filtered by predicate key, arity and
// constant positions) and the search order over them.
func (cc *CompiledCandidate) against(ctx context.Context, prep *Prepared, o ProbeOptions) *compiled {
	e := &compiled{
		c: cc.c, d: prep.d,
		varIndex:          cc.varIndex,
		varNames:          cc.varNames,
		constraints:       cc.constraints,
		varConstraints:    cc.varConstraints,
		prep:              prep,
		skipRepairClosure: o.Plain,
		maxNodes:          prep.maxNodes,
		ctx:               ctx,
	}
	lits := make([]compiledLit, 0, len(cc.lits))
	for _, l := range cc.lits {
		cl := compiledLit{cIndex: l.cIndex, args: l.args}
		for _, di := range prep.byPred[l.key] {
			dl := prep.d.Body[di]
			if len(dl.Args) != len(l.args) {
				continue
			}
			ok := true
			for k, a := range l.args {
				if a.varID < 0 {
					da := dl.Args[k]
					if da.IsVar() || da.Name != a.value {
						ok = false
						break
					}
				}
			}
			if ok {
				cl.candidates = append(cl.candidates, di)
			}
		}
		if len(cl.candidates) == 0 {
			// A mappable literal with no image: the search cannot succeed, so
			// skip ordering and search-state setup entirely. Failing probes
			// are the common case when scoring selective candidates.
			e.infeasible = true
			return e
		}
		lits = append(lits, cl)
	}
	if o.NoPlanner {
		// Fixed order: the candidate's compilation (clause) order, the
		// baseline the planner's differential battery measures against.
		e.lits = lits
		return e
	}
	// Plan the search order: selectivity-greedy over the per-probe candidate
	// images, reusing a cached plan for a repeated (candidate, example)
	// probe. The plan is a permutation of lits, so it can change only the
	// node count of the search, never its outcome.
	key := planKey{cand: cc, prep: prep}
	var plan []int
	if o.Cache != nil {
		plan = o.Cache.get(key)
	}
	if plan == nil {
		var start time.Time
		if o.TimePlan {
			start = time.Now()
		}
		plan = planOrder(lits, len(cc.varNames), cc.headVars)
		if o.TimePlan {
			e.planNanos = time.Since(start).Nanoseconds()
		}
		if o.Cache != nil {
			o.Cache.put(key, plan)
		}
	}
	e.lits = applyPlan(lits, plan)
	e.planned = true
	return e
}
