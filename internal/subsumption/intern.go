package subsumption

import (
	"sync"

	"dlearn/internal/logic"
)

// predInterner maps predicate keys (see predKey) to dense uint32 IDs so the
// per-probe image computation of the search — prep.byPred lookups issued for
// every candidate literal — compares integers instead of hashing composed
// strings. The interner is shared process-wide: prepared examples and
// compiled candidates from different engines agree on IDs, and the space of
// keys is bounded by the schema's predicates plus one key per repair-literal
// dependency, so the table stays small for the life of the process.
type predInterner struct {
	mu  sync.RWMutex
	ids map[string]uint32
}

var predKeys = predInterner{ids: make(map[string]uint32)}

// id interns a predicate key, assigning the next dense ID when it is new.
func (pi *predInterner) id(key string) uint32 {
	pi.mu.RLock()
	id, ok := pi.ids[key]
	pi.mu.RUnlock()
	if ok {
		return id
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	if id, ok := pi.ids[key]; ok {
		return id
	}
	id = uint32(len(pi.ids))
	pi.ids[key] = id
	return id
}

// predID returns the interned predicate-key ID of a literal.
func predID(l logic.Literal) uint32 {
	return predKeys.id(predKey(l))
}
