package subsumption

import (
	"testing"
	"testing/quick"

	"dlearn/internal/logic"
	"dlearn/internal/repair"
)

func checker() *Checker { return New(Options{}) }

func TestSubsumesPaperExample(t *testing.T) {
	// C1: highGrossing(x) <- movies(x, y, z)
	// C2: highGrossing(a) <- movies(a, b, c), mov2genres(b, comedy)
	c1 := logic.NewClause(
		logic.Rel("highGrossing", logic.Var("x")),
		logic.Rel("movies", logic.Var("x"), logic.Var("y"), logic.Var("z")),
	)
	c2 := logic.NewClause(
		logic.Rel("highGrossing", logic.Var("a")),
		logic.Rel("movies", logic.Var("a"), logic.Var("b"), logic.Var("c")),
		logic.Rel("mov2genres", logic.Var("b"), logic.Const("comedy")),
	)
	ok, theta := checker().Subsumes(c1, c2)
	if !ok {
		t.Fatal("C1 should θ-subsume C2 (Section 4.2 example)")
	}
	if theta["x"] != logic.Var("a") {
		t.Errorf("expected x/a in substitution, got %v", theta)
	}
	if ok, _ := checker().Subsumes(c2, c1); ok {
		t.Fatal("C2 must not θ-subsume C1")
	}
}

func TestSubsumesGroundClause(t *testing.T) {
	c := logic.NewClause(
		logic.Rel("highGrossing", logic.Var("x")),
		logic.Rel("movies", logic.Var("y"), logic.Var("x"), logic.Var("z")),
		logic.Rel("mov2genres", logic.Var("y"), logic.Const("comedy")),
	)
	ground := logic.NewClause(
		logic.Rel("highGrossing", logic.Const("Superbad (2007)")),
		logic.Rel("movies", logic.Const("m1"), logic.Const("Superbad (2007)"), logic.Const("2007")),
		logic.Rel("mov2genres", logic.Const("m1"), logic.Const("comedy")),
		logic.Rel("mov2countries", logic.Const("m1"), logic.Const("c1")),
	)
	if ok, _ := checker().Subsumes(c, ground); !ok {
		t.Fatal("clause should subsume the ground bottom clause of its covered example")
	}
	groundDrama := logic.NewClause(
		logic.Rel("highGrossing", logic.Const("Orphanage (2007)")),
		logic.Rel("movies", logic.Const("m3"), logic.Const("Orphanage (2007)"), logic.Const("2007")),
		logic.Rel("mov2genres", logic.Const("m3"), logic.Const("drama")),
	)
	if ok, _ := checker().Subsumes(c, groundDrama); ok {
		t.Fatal("comedy clause must not subsume a drama-only ground clause")
	}
}

func TestSubsumesConstantMismatch(t *testing.T) {
	c := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("q", logic.Var("x"), logic.Const("a")),
	)
	d := logic.NewClause(
		logic.Rel("p", logic.Const("1")),
		logic.Rel("q", logic.Const("1"), logic.Const("b")),
	)
	if ok, _ := checker().Subsumes(c, d); ok {
		t.Fatal("constant a cannot map to constant b")
	}
}

func TestSubsumesHeadMismatch(t *testing.T) {
	c := logic.NewClause(logic.Rel("p", logic.Var("x")))
	d := logic.NewClause(logic.Rel("q", logic.Var("x")))
	if ok, _ := checker().Subsumes(c, d); ok {
		t.Fatal("different head predicates cannot subsume")
	}
	d2 := logic.NewClause(logic.Rel("p", logic.Var("x"), logic.Var("y")))
	if ok, _ := checker().Subsumes(c, d2); ok {
		t.Fatal("different head arities cannot subsume")
	}
}

func TestSubsumesRequiresConsistentBinding(t *testing.T) {
	// p(x) <- q(x, x) requires both argument positions to be equal in d.
	c := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("q", logic.Var("x"), logic.Var("x")),
	)
	dGood := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("q", logic.Const("a"), logic.Const("a")),
	)
	dBad := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("q", logic.Const("a"), logic.Const("b")),
	)
	if ok, _ := checker().Subsumes(c, dGood); !ok {
		t.Fatal("repeated variable should map onto repeated constant")
	}
	if ok, _ := checker().Subsumes(c, dBad); ok {
		t.Fatal("repeated variable must not map onto distinct constants")
	}
}

func TestSubsumesEqualityAndSimilarityConstraints(t *testing.T) {
	// c requires x ~ t; d provides the similarity literal between the images.
	c := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("r", logic.Var("t")),
		logic.Sim(logic.Var("x"), logic.Var("t")),
	)
	dWith := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("r", logic.Const("b")),
		logic.Sim(logic.Const("a"), logic.Const("b")),
	)
	dWithout := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("r", logic.Const("b")),
	)
	if ok, _ := checker().Subsumes(c, dWith); !ok {
		t.Fatal("similarity constraint satisfied by d's similarity literal should subsume")
	}
	if ok, _ := checker().Subsumes(c, dWithout); ok {
		t.Fatal("similarity constraint with no support in d must fail")
	}
	// Equality constraint satisfied via d's equality literal.
	ceq := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("r", logic.Var("t")),
		logic.Eq(logic.Var("x"), logic.Var("t")),
	)
	deq := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("r", logic.Const("b")),
		logic.Eq(logic.Const("a"), logic.Const("b")),
	)
	if ok, _ := checker().Subsumes(ceq, deq); !ok {
		t.Fatal("equality constraint supported by d should subsume")
	}
	if ok, _ := checker().Subsumes(ceq, dWithout); ok {
		t.Fatal("equality constraint with distinct unrelated images must fail")
	}
}

func TestSubsumesInequalityConstraint(t *testing.T) {
	c := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("r", logic.Var("x"), logic.Var("y")),
		logic.Neq(logic.Var("x"), logic.Var("y")),
	)
	dDistinct := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("r", logic.Const("a"), logic.Const("b")),
	)
	dSame := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("r", logic.Const("a"), logic.Const("a")),
	)
	if ok, _ := checker().Subsumes(c, dDistinct); !ok {
		t.Fatal("inequality over distinct constants should hold")
	}
	if ok, _ := checker().Subsumes(c, dSame); ok {
		t.Fatal("inequality over identical constants must fail")
	}
}

// mdClause builds a clause with an MD repair-literal pair, as produced by
// bottom-clause construction.
func mdClause() logic.Clause {
	x, tt, y, z := logic.Var("x"), logic.Var("t"), logic.Var("y"), logic.Var("z")
	vx, vt := logic.Var("vx"), logic.Var("vt")
	cond := logic.Condition{Op: logic.CondSim, L: x, R: tt}
	return logic.NewClause(
		logic.Rel("highGrossing", x),
		logic.Rel("movies", y, tt, z),
		logic.Sim(x, tt),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, x, vx, cond),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, tt, vt, cond),
		logic.Eq(vx, vt),
	)
}

// groundMDClause is the ground bottom clause counterpart of mdClause for a
// specific example.
func groundMDClause() logic.Clause {
	x, tt := logic.Const("Superbad"), logic.Const("Superbad (2007)")
	w1, w2 := logic.Var("w1"), logic.Var("w2")
	cond := logic.Condition{Op: logic.CondSim, L: x, R: tt}
	return logic.NewClause(
		logic.Rel("highGrossing", x),
		logic.Rel("movies", logic.Const("m1"), tt, logic.Const("2007")),
		logic.Sim(x, tt),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, x, w1, cond),
		logic.RepairInGroup("md1", "md1#0", logic.OriginMD, tt, w2, cond),
		logic.Eq(w1, w2),
	)
}

func TestSubsumesWithRepairLiterals(t *testing.T) {
	if ok, _ := checker().Subsumes(mdClause(), groundMDClause()); !ok {
		t.Fatal("clause with MD repair literals should subsume the matching ground bottom clause")
	}
}

func TestDefinition44ClosureRequirement(t *testing.T) {
	// c maps movies(...) but has no repair literal; the ground clause's
	// movies literal has connected repair literals, so Definition 4.4
	// rejects the mapping while plain subsumption accepts it.
	c := logic.NewClause(
		logic.Rel("highGrossing", logic.Var("x")),
		logic.Rel("movies", logic.Var("y"), logic.Var("t"), logic.Var("z")),
	)
	d := groundMDClause()
	if ok, _ := checker().Subsumes(c, d); ok {
		t.Fatal("Definition 4.4 requires connected repair literals of d to be mapped")
	}
	if ok, _ := checker().SubsumesPlain(c, d); !ok {
		t.Fatal("plain θ-subsumption should ignore the closure requirement")
	}
}

func TestSubsumptionSoundnessTheorem46(t *testing.T) {
	// Theorem 4.6: if C θ-subsumes D (with repair literals), then every
	// repaired clause of C subsumes some repaired clause of D.
	c := mdClause()
	d := groundMDClause()
	if ok, _ := checker().Subsumes(c, d); !ok {
		t.Fatal("precondition: c subsumes d")
	}
	cReps := repair.RepairedClauses(c, repair.Options{})
	dReps := repair.RepairedClauses(d, repair.Options{})
	for _, cr := range cReps {
		found := false
		for _, dr := range dReps {
			if ok, _ := checker().SubsumesPlain(cr, dr); ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("repaired clause %v subsumes no repaired clause of d — soundness violated", cr)
		}
	}
}

func TestEquivalent(t *testing.T) {
	a := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("q", logic.Var("x"), logic.Var("y")),
	)
	b := logic.NewClause(
		logic.Rel("p", logic.Var("u")),
		logic.Rel("q", logic.Var("u"), logic.Var("w")),
		logic.Rel("q", logic.Var("u"), logic.Var("v")),
	)
	if !checker().Equivalent(a, b) {
		t.Fatal("a and b are θ-equivalent (b's extra literal maps onto the same image)")
	}
	c := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("q", logic.Var("x"), logic.Const("k")),
	)
	if checker().Equivalent(a, c) {
		t.Fatal("a is strictly more general than c")
	}
}

func TestSearchBudgetExhaustion(t *testing.T) {
	// A tiny node budget must make the checker give up (conservatively
	// reporting no subsumption) rather than hang.
	c := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("q", logic.Var("x"), logic.Var("a")),
		logic.Rel("q", logic.Var("a"), logic.Var("b")),
		logic.Rel("q", logic.Var("b"), logic.Var("c")),
		logic.Rel("q", logic.Var("c"), logic.Var("d")),
	)
	var body []logic.Literal
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			body = append(body, logic.Rel("q", logic.Const(string(rune('a'+i))), logic.Const(string(rune('a'+j)))))
		}
	}
	d := logic.NewClause(logic.Rel("p", logic.Const("a")), body...)
	tiny := New(Options{MaxNodes: 3})
	if ok, _ := tiny.Subsumes(c, d); ok {
		t.Fatal("budget of 3 nodes cannot complete this search")
	}
	full := New(Options{})
	if ok, _ := full.Subsumes(c, d); !ok {
		t.Fatal("full budget should find the chain mapping")
	}
}

// Property: every clause subsumes itself (reflexivity).
func TestPropertySubsumptionReflexive(t *testing.T) {
	ch := checker()
	clauses := []logic.Clause{
		mdClause(), groundMDClause(),
		logic.NewClause(logic.Rel("p", logic.Var("x")), logic.Rel("q", logic.Var("x"), logic.Const("c"))),
	}
	for _, c := range clauses {
		if ok, _ := ch.Subsumes(c, c); !ok {
			t.Errorf("clause does not subsume itself: %v", c)
		}
	}
}

// Property: dropping body literals from a clause yields a generalization —
// the shorter clause subsumes the original (monotonicity used by ARMG).
func TestPropertyDroppingLiteralsGeneralizes(t *testing.T) {
	ch := checker()
	base := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("q", logic.Var("x"), logic.Var("y")),
		logic.Rel("r", logic.Var("y"), logic.Const("c")),
		logic.Rel("s", logic.Var("y"), logic.Var("z")),
	)
	f := func(dropRaw uint8) bool {
		drop := int(dropRaw) % base.Length()
		shorter := base.RemoveBodyAt(drop).PruneUnconnected()
		ok, _ := ch.Subsumes(shorter, base)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
