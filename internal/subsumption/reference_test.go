package subsumption

import (
	"context"
	"testing"

	"dlearn/internal/logic"
)

// bruteForceSubsumes is a reference θ-subsumption checker: it enumerates
// every mapping of c's mappable literals onto d's literals, binding
// variables by exhaustive search with copy-on-write substitutions. It shares
// no code with the optimized backtracking search (no compilation, no
// candidate filtering, no ordering) so the two can cross-check each other.
// Exponential; only usable on the small clauses of tests and fuzzing.
func bruteForceSubsumes(c, d logic.Clause, skipClosure bool) bool {
	if c.Head.Pred != d.Head.Pred || len(c.Head.Args) != len(d.Head.Args) {
		return false
	}
	theta := make(map[string]logic.Term)
	if !bruteBind(theta, c.Head.Args, d.Head.Args) {
		return false
	}
	var lits []int
	for i, l := range c.Body {
		if l.IsRelation() || l.IsRepair() {
			lits = append(lits, i)
		}
	}
	eq := newUnionFind()
	sim := make(map[[2]logic.Term]bool)
	for _, l := range d.Body {
		switch l.Kind {
		case logic.EqualityLit:
			eq.union(l.Args[0], l.Args[1])
		case logic.SimilarityLit:
			sim[[2]logic.Term{l.Args[0], l.Args[1]}] = true
			sim[[2]logic.Term{l.Args[1], l.Args[0]}] = true
		}
	}
	eqc := eq.freeze()

	var rec func(k int, theta map[string]logic.Term, mapped map[int]bool) bool
	rec = func(k int, theta map[string]logic.Term, mapped map[int]bool) bool {
		if k == len(lits) {
			if !bruteConstraintsOK(c, theta, eqc, sim) {
				return false
			}
			return skipClosure || bruteClosureOK(d, mapped)
		}
		cl := c.Body[lits[k]]
		for di, dl := range d.Body {
			if !dl.IsRelation() && !dl.IsRepair() {
				continue
			}
			if predKey(cl) != predKey(dl) || len(cl.Args) != len(dl.Args) {
				continue
			}
			th2 := make(map[string]logic.Term, len(theta))
			for k, v := range theta {
				th2[k] = v
			}
			if !bruteBind(th2, cl.Args, dl.Args) {
				continue
			}
			m2 := make(map[int]bool, len(mapped)+1)
			for k := range mapped {
				m2[k] = true
			}
			m2[di] = true
			if rec(k+1, th2, m2) {
				return true
			}
		}
		return false
	}
	return rec(0, theta, make(map[int]bool))
}

// bruteBind extends theta with the bindings making cArgs map onto dArgs,
// failing on constant mismatches and inconsistent variable images.
func bruteBind(theta map[string]logic.Term, cArgs, dArgs []logic.Term) bool {
	for i, a := range cArgs {
		da := dArgs[i]
		if a.IsConst() {
			if da.IsVar() || da.Name != a.Name {
				return false
			}
			continue
		}
		if prev, ok := theta[a.Name]; ok {
			if prev != da {
				return false
			}
			continue
		}
		theta[a.Name] = da
	}
	return true
}

// bruteConstraintsOK checks c's restriction literals under theta against d's
// equality closure and similarity pairs; a constraint with an unbound side
// is satisfiable.
func bruteConstraintsOK(c logic.Clause, theta map[string]logic.Term, eqc eqClosure, sim map[[2]logic.Term]bool) bool {
	image := func(t logic.Term) (logic.Term, bool) {
		if t.IsConst() {
			return t, true
		}
		v, ok := theta[t.Name]
		return v, ok
	}
	for _, l := range c.Body {
		switch l.Kind {
		case logic.EqualityLit, logic.SimilarityLit, logic.InequalityLit:
			a, aok := image(l.Args[0])
			b, bok := image(l.Args[1])
			if !aok || !bok {
				continue
			}
			equal := a == b || eqc.same(a, b)
			switch l.Kind {
			case logic.EqualityLit:
				if !equal {
					return false
				}
			case logic.SimilarityLit:
				if !equal && !sim[[2]logic.Term{a, b}] {
					return false
				}
			case logic.InequalityLit:
				if equal {
					return false
				}
			}
		}
	}
	return true
}

// bruteClosureOK checks the second condition of Definition 4.4: every repair
// literal of d connected to a mapped relation literal of d is itself mapped.
func bruteClosureOK(d logic.Clause, mapped map[int]bool) bool {
	for di := range mapped {
		if !d.Body[di].IsRelation() {
			continue
		}
		for _, ri := range d.ConnectedRepairLiterals(di) {
			if !mapped[ri] {
				return false
			}
		}
	}
	return true
}

// checkAgainstReference is the differential battery: the optimized search —
// through the Checker and through a reusable CompiledCandidate, with the
// literal planner on, off, and plan-cached — must agree with the brute-force
// reference on the pair (c, d), in both Definition 4.4 and plain modes.
// Plans are permutations, so every leg must produce the same outcome; any
// divergence is a planner or search bug.
func checkAgainstReference(t *testing.T, ch *Checker, c, d logic.Clause) {
	t.Helper()
	ctx := context.Background()
	prep := ch.Prepare(d)
	cc := CompileCandidate(c)
	cache := NewPlanCache()
	chOff := New(Options{MaxNodes: ch.Opts.MaxNodes, DisablePlanner: true})
	for _, plain := range []bool{false, true} {
		want := bruteForceSubsumes(c, d, plain)
		var got, gotOff bool
		if plain {
			got, _ = ch.SubsumesPlain(c, d)
			gotOff, _ = chOff.SubsumesPlain(c, d)
		} else {
			got, _ = ch.Subsumes(c, d)
			gotOff, _ = chOff.Subsumes(c, d)
		}
		if got != want || gotOff != want {
			t.Fatalf("disagreement (plain=%v): brute=%v planner-on=%v planner-off=%v\nc = %v\nd = %v",
				plain, want, got, gotOff, c, d)
		}
		for _, leg := range []struct {
			name string
			o    ProbeOptions
		}{
			{"planned", ProbeOptions{Plain: plain}},
			{"fixed", ProbeOptions{Plain: plain, NoPlanner: true}},
			{"cached-plan", ProbeOptions{Plain: plain, Cache: cache}},
		} {
			gotProbe, _, _ := cc.Probe(ctx, prep, leg.o)
			if gotProbe != want {
				t.Fatalf("disagreement (plain=%v, %s probe): brute=%v probe=%v\nc = %v\nd = %v",
					plain, leg.name, want, gotProbe, c, d)
			}
		}
	}
}

// fuzzChecker uses a node budget generous enough that the bounded search is
// exhaustive on fuzz-sized clauses, so disagreements are real bugs rather
// than budget exhaustion.
func fuzzChecker() *Checker { return New(Options{MaxNodes: 1 << 22}) }

// TestReferenceAgreesOnKnownCases sanity-checks the reference itself on the
// curated pairs used elsewhere in the package tests.
func TestReferenceAgreesOnKnownCases(t *testing.T) {
	ch := fuzzChecker()
	pairs := [][2]logic.Clause{
		{mdClause(), groundMDClause()},
		{groundMDClause(), groundMDClause()},
		{
			logic.NewClause(logic.Rel("p", logic.Var("x")), logic.Rel("q", logic.Var("x"), logic.Var("x"))),
			logic.NewClause(logic.Rel("p", logic.Const("a")), logic.Rel("q", logic.Const("a"), logic.Const("b"))),
		},
		{
			logic.NewClause(logic.Rel("highGrossing", logic.Var("x")), logic.Rel("movies", logic.Var("y"), logic.Var("t"), logic.Var("z"))),
			groundMDClause(),
		},
	}
	for _, p := range pairs {
		checkAgainstReference(t, ch, p[0], p[1])
	}
}

// TestPlannerAdversarialCases runs the differential battery on crafted
// planner-adversarial clause pairs: disconnected bodies (the frontier is
// empty mid-plan), repeated predicates (many literals share one image set),
// and all-equal image sizes (selectivity cannot discriminate, ties decide
// the whole plan).
func TestPlannerAdversarialCases(t *testing.T) {
	ch := fuzzChecker()
	x, y, z, w := logic.Var("x"), logic.Var("y"), logic.Var("z"), logic.Var("w")
	a, b, cst := logic.Const("a"), logic.Const("b"), logic.Const("c")
	cases := []struct {
		name string
		c, d logic.Clause
	}{
		{
			"disconnected body",
			logic.NewClause(logic.Rel("p", x), logic.Rel("q", x, y), logic.Rel("s", z, w), logic.Rel("r", w)),
			logic.NewClause(logic.Rel("p", a),
				logic.Rel("q", a, b), logic.Rel("q", a, cst),
				logic.Rel("s", b, cst), logic.Rel("s", cst, a), logic.Rel("r", a)),
		},
		{
			"repeated predicates",
			logic.NewClause(logic.Rel("p", x), logic.Rel("q", x, y), logic.Rel("q", y, z), logic.Rel("q", z, x)),
			logic.NewClause(logic.Rel("p", a),
				logic.Rel("q", a, b), logic.Rel("q", b, cst), logic.Rel("q", cst, a), logic.Rel("q", b, a)),
		},
		{
			"all-equal image sizes",
			logic.NewClause(logic.Rel("p", x), logic.Rel("q", x, y), logic.Rel("s", y, z), logic.Rel("r", z)),
			logic.NewClause(logic.Rel("p", a),
				logic.Rel("q", a, b), logic.Rel("q", a, cst),
				logic.Rel("s", b, cst), logic.Rel("s", cst, b),
				logic.Rel("r", cst), logic.Rel("r", b)),
		},
		{
			"disconnected and unsatisfiable half",
			logic.NewClause(logic.Rel("p", x), logic.Rel("q", x, x), logic.Rel("s", z, z)),
			logic.NewClause(logic.Rel("p", a),
				logic.Rel("q", a, a), logic.Rel("s", b, cst), logic.Rel("s", cst, b)),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstReference(t, ch, tc.c, tc.d)
		})
	}
}

// --- fuzzing ----------------------------------------------------------------

// byteSrc deals decision bytes to the clause generator; exhausted input
// yields zeros so every prefix is a valid generation script.
type byteSrc struct {
	data []byte
	i    int
}

func (s *byteSrc) next() byte {
	if s.i >= len(s.data) {
		return 0
	}
	b := s.data[s.i]
	s.i++
	return b
}

var (
	fuzzPreds = []struct {
		name  string
		arity int
	}{{"q", 2}, {"r", 1}, {"s", 2}, {"q", 2}}
	fuzzVars   = []string{"x", "y", "z", "w"}
	fuzzConsts = []string{"a", "b", "c"}
)

func fuzzTerm(s *byteSrc, groundBias bool) logic.Term {
	b := s.next()
	if groundBias {
		if b%4 != 0 {
			return logic.Const(fuzzConsts[int(b/4)%len(fuzzConsts)])
		}
		return logic.Var(fuzzVars[int(b/4)%len(fuzzVars)])
	}
	if b%2 == 0 {
		return logic.Var(fuzzVars[int(b/2)%len(fuzzVars)])
	}
	return logic.Const(fuzzConsts[int(b/2)%len(fuzzConsts)])
}

// fuzzClause generates a small clause: head p/1, up to maxLits relation
// literals, up to two restriction literals, and optionally an MD repair
// pair. groundBias skews terms toward constants (the subsumed side).
func fuzzClause(s *byteSrc, maxLits int, groundBias bool) logic.Clause {
	head := logic.Rel("p", fuzzTerm(s, groundBias))
	var body []logic.Literal
	n := 1 + int(s.next())%maxLits
	for i := 0; i < n; i++ {
		p := fuzzPreds[int(s.next())%len(fuzzPreds)]
		args := make([]logic.Term, p.arity)
		for j := range args {
			args[j] = fuzzTerm(s, groundBias)
		}
		body = append(body, logic.Rel(p.name, args...))
	}
	for i := int(s.next()) % 3; i > 0; i-- {
		a, b := fuzzTerm(s, groundBias), fuzzTerm(s, groundBias)
		switch s.next() % 3 {
		case 0:
			body = append(body, logic.Eq(a, b))
		case 1:
			body = append(body, logic.Sim(a, b))
		default:
			body = append(body, logic.Neq(a, b))
		}
	}
	if s.next()%3 == 0 {
		x, v := fuzzTerm(s, groundBias), logic.Var("v"+fuzzVars[int(s.next())%len(fuzzVars)])
		cond := logic.Condition{Op: logic.CondSim, L: x, R: v}
		body = append(body, logic.RepairInGroup("md1", "md1#0", logic.OriginMD, x, v, cond))
	}
	return logic.NewClause(head, body...)
}

// FuzzSubsumes cross-checks the optimized θ-subsumption search (direct and
// through a CompiledCandidate, plain and Definition 4.4 modes) against the
// brute-force reference on generated clause pairs.
func FuzzSubsumes(f *testing.F) {
	f.Add([]byte("dlearn"))
	f.Add([]byte("subsumption-fuzz-seed"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{255, 254, 3, 9, 27, 81, 243, 7, 21, 63, 189, 55})
	// Planner-adversarial scripts: disconnected bodies (terms drawn from
	// non-overlapping variable halves), repeated predicates (the generator's
	// predicate table already doubles q/2; bytes below pin long q-runs), and
	// all-equal image sizes (uniform repetition on the ground side).
	f.Add([]byte{7, 0, 0, 2, 4, 0, 6, 0, 0, 0, 3, 1, 1, 5, 1, 1, 7, 3, 3, 9, 3, 3})
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{11, 3, 2, 4, 3, 6, 8, 3, 10, 12, 3, 14, 16, 3, 18, 20, 3, 22, 24, 3, 26})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &byteSrc{data: data}
		c := fuzzClause(s, 3, false)
		d := fuzzClause(s, 5, true)
		checkAgainstReference(t, fuzzChecker(), c, d)
	})
}
