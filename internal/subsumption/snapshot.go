package subsumption

import (
	"sort"

	"dlearn/internal/logic"
)

// PreparedSnapshot is the persistable form of a Prepared: the clause it was
// built from plus the derived state that is expensive to recompute — the
// frozen equality closure and the repair-literal connectivity. The
// predicate index and the repair flag are cheap linear scans and are rebuilt
// on restore instead of being stored.
//
// Snapshots exist so internal/persist can serialize prepared examples
// without reaching into this package's unexported state; they are plain data
// with deterministic field ordering, making their binary encoding stable
// across runs of the same preparation.
type PreparedSnapshot struct {
	// Clause is the subsumed-side clause the preparation was built from.
	Clause logic.Clause
	// MaxNodes is the search budget the preparation was built with.
	MaxNodes int
	// EqRoots is the frozen equality closure as (term, representative)
	// pairs, sorted by term.
	EqRoots [][2]logic.Term
	// SimPairs are the similarity pairs of the clause (both directions),
	// sorted.
	SimPairs [][2]logic.Term
	// Connected is the repair-literal connectivity: for each relation
	// literal (by body index, ascending) the sorted indices of its connected
	// repair literals. Entries with no connected repair literals are
	// omitted.
	Connected []ConnectedEntry
}

// ConnectedEntry records the repair literals connected to one body literal.
type ConnectedEntry struct {
	// Literal is the body index of a relation literal.
	Literal int
	// Repairs are the body indices of its connected repair literals.
	Repairs []int
}

// termLess orders terms deterministically: variables before constants, then
// by name.
func termLess(a, b logic.Term) bool {
	if a.Var != b.Var {
		return a.Var
	}
	return a.Name < b.Name
}

func termPairLess(a, b [2]logic.Term) bool {
	if a[0] != b[0] {
		return termLess(a[0], b[0])
	}
	return termLess(a[1], b[1])
}

// Snapshot extracts the persistable state of the preparation. The result
// shares no mutable state with the receiver and is deterministic: two
// snapshots of equal preparations are deeply equal.
func (p *Prepared) Snapshot() PreparedSnapshot {
	s := PreparedSnapshot{Clause: p.d, MaxNodes: p.maxNodes}
	for t, r := range p.eq.root {
		s.EqRoots = append(s.EqRoots, [2]logic.Term{t, r})
	}
	sortPairs(s.EqRoots)
	for pr := range p.simPairs {
		s.SimPairs = append(s.SimPairs, pr)
	}
	sortPairs(s.SimPairs)
	for li, reps := range p.connected {
		if len(reps) == 0 {
			continue
		}
		rs := make([]int, len(reps))
		copy(rs, reps)
		s.Connected = append(s.Connected, ConnectedEntry{Literal: li, Repairs: rs})
	}
	sortConnected(s.Connected)
	return s
}

// RestorePrepared rebuilds a Prepared from its snapshot without re-running
// the quadratic parts of Prepare (equality-closure freezing and repair
// connectivity). The predicate index and repair flag are recomputed from the
// clause in one linear pass. The restored value is immutable and behaves
// identically to the Prepared the snapshot was taken from.
func RestorePrepared(s PreparedSnapshot) *Prepared {
	maxNodes := s.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	p := &Prepared{
		d:         s.Clause,
		byPred:    make(map[uint32][]int),
		eq:        eqClosure{root: make(map[logic.Term]logic.Term, len(s.EqRoots))},
		simPairs:  make(map[[2]logic.Term]bool, len(s.SimPairs)),
		connected: make(map[int][]int, len(s.Connected)),
		maxNodes:  maxNodes,
	}
	for i, l := range s.Clause.Body {
		if l.IsRelation() || l.IsRepair() {
			k := predID(l)
			p.byPred[k] = append(p.byPred[k], i)
		}
		if l.IsRepair() {
			p.hasRepair = true
		}
	}
	for _, pr := range s.EqRoots {
		p.eq.root[pr[0]] = pr[1]
	}
	for _, pr := range s.SimPairs {
		p.simPairs[pr] = true
	}
	for _, e := range s.Connected {
		p.connected[e.Literal] = e.Repairs
	}
	return p
}

func sortPairs(ps [][2]logic.Term) {
	sort.Slice(ps, func(i, j int) bool { return termPairLess(ps[i], ps[j]) })
}

func sortConnected(es []ConnectedEntry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Literal < es[j].Literal })
}
