package subsumption

import (
	"fmt"
	"sync"
	"testing"

	"dlearn/internal/logic"
)

// TestPredInternerConcurrent hammers the process-global predicate-key
// interner from many goroutines interning overlapping fresh keys, then checks
// every goroutine observed the same ID for the same key. Run under -race this
// is the regression test for the interner's double-checked locking.
func TestPredInternerConcurrent(t *testing.T) {
	const workers = 8
	const keys = 200
	results := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, keys)
			for k := 0; k < keys; k++ {
				// Rotate the visit order per worker so first-intern races happen.
				i := (k + w*17) % keys
				ids[i] = predKeys.id(fmt.Sprintf("concurrent-intern-test/%d", i))
			}
			results[w] = ids
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for k := 0; k < keys; k++ {
			if results[w][k] != results[0][k] {
				t.Fatalf("worker %d interned key %d as %d, worker 0 as %d", w, k, results[w][k], results[0][k])
			}
		}
	}
	seen := make(map[uint32]bool, keys)
	for _, id := range results[0] {
		if seen[id] {
			t.Fatalf("duplicate ID %d assigned to distinct keys", id)
		}
		seen[id] = true
	}
}

// TestSharedInternerAcrossPrepareAndCompile prepares examples and compiles
// candidates concurrently — the covering loop's real access pattern to the
// shared interner — and checks probes against freshly prepared clauses keep
// answering correctly while new predicate keys are being interned.
func TestSharedInternerAcrossPrepareAndCompile(t *testing.T) {
	ch := New(Options{})
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				// Each worker mixes a shared relation with one unique to the
				// (worker, iteration) pair, so some predID calls hit the read
				// path and some race to extend the table.
				rel := fmt.Sprintf("intern_rel_%d_%d", w, i)
				d := logic.NewClause(
					logic.Rel("head", logic.Const("a")),
					logic.Rel("shared_rel", logic.Const("a"), logic.Const("b")),
					logic.Rel(rel, logic.Const("a")),
				)
				c := logic.NewClause(
					logic.Rel("head", logic.Var("x")),
					logic.Rel("shared_rel", logic.Var("x"), logic.Var("y")),
				)
				prep := ch.Prepare(d)
				cc := CompileCandidate(c)
				if ok, _ := cc.Subsumes(t.Context(), prep); !ok {
					t.Errorf("worker %d iter %d: candidate must subsume its prepared clause", w, i)
					return
				}
				miss := logic.NewClause(
					logic.Rel("head", logic.Var("x")),
					logic.Rel(fmt.Sprintf("intern_missing_%d_%d", w, i), logic.Var("x")),
				)
				if ok, _ := CompileCandidate(miss).Subsumes(t.Context(), prep); ok {
					t.Errorf("worker %d iter %d: literal absent from d must not subsume", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
