package subsumption

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"dlearn/internal/logic"
)

// plit builds a handcrafted per-probe literal for planner unit tests: varIDs
// are the literal's variables, images its candidate-image size.
func plit(images int, varIDs ...int) compiledLit {
	cl := compiledLit{candidates: make([]int, images)}
	for _, v := range varIDs {
		cl.args = append(cl.args, compiledTerm{varID: v})
	}
	return cl
}

// maxVar returns one past the largest variable id mentioned.
func maxVar(lits []compiledLit, seed []int) int {
	n := 0
	for _, cl := range lits {
		for _, a := range cl.args {
			if a.varID >= n {
				n = a.varID + 1
			}
		}
	}
	for _, v := range seed {
		if v >= n {
			n = v + 1
		}
	}
	return n
}

// assertPermutation fails unless plan is a permutation of 0..n-1.
func assertPermutation(t *testing.T, plan []int, n int) {
	t.Helper()
	if len(plan) != n {
		t.Fatalf("plan has %d entries, want %d: %v", len(plan), n, plan)
	}
	seen := make([]bool, n)
	for _, i := range plan {
		if i < 0 || i >= n || seen[i] {
			t.Fatalf("plan is not a permutation of 0..%d: %v", n-1, plan)
		}
		seen[i] = true
	}
}

func TestPlanOrderIsPermutation(t *testing.T) {
	cases := [][]compiledLit{
		{plit(3, 0)},
		{plit(3, 0, 1), plit(1, 1, 2), plit(7, 2)},
		// Disconnected components.
		{plit(4, 0), plit(4, 1), plit(4, 2), plit(2, 3)},
		// Repeated shapes, all-equal image sizes.
		{plit(5, 0, 1), plit(5, 1, 2), plit(5, 2, 0), plit(5, 3, 4)},
		// Ground literals only (no variables).
		{plit(2), plit(9), plit(1)},
	}
	for i, lits := range cases {
		for _, seed := range [][]int{nil, {0}} {
			plan := planOrder(lits, maxVar(lits, seed), seed)
			assertPermutation(t, plan, len(lits))
			_ = i
		}
	}
}

// TestPlanOrderSelectivityFirst pins the greedy estimate: among literals on
// the connected frontier, the smallest candidate image is searched first.
func TestPlanOrderSelectivityFirst(t *testing.T) {
	// All connected to the seed variable 0; images 5, 2, 9.
	lits := []compiledLit{plit(5, 0, 1), plit(2, 0, 2), plit(9, 0, 3)}
	plan := planOrder(lits, maxVar(lits, []int{0}), []int{0})
	if want := []int{1, 0, 2}; !reflect.DeepEqual(plan, want) {
		t.Fatalf("plan = %v, want %v (smallest image first)", plan, want)
	}
}

// TestPlanOrderConnectedPrefix pins the frontier rule: when the clause graph
// is connected to the seed variables, every prefix of the plan stays
// connected — a planned literal always shares a variable with the covered
// set (or is a ≤1-image filter, which is always eligible).
func TestPlanOrderConnectedPrefix(t *testing.T) {
	// A chain 0-1-2-3-4 deliberately listed so clause order is NOT connected,
	// with image sizes rewarding a selectivity-only planner for jumping to
	// the disconnected tail.
	lits := []compiledLit{
		plit(9, 0, 1),
		plit(2, 3, 4), // smallest image, but disconnected until 3 or 4 is covered
		plit(5, 1, 2),
		plit(4, 2, 3),
	}
	plan := planOrder(lits, maxVar(lits, []int{0}), []int{0})
	assertPermutation(t, plan, len(lits))
	covered := map[int]bool{0: true}
	for step, i := range plan {
		cl := lits[i]
		if len(cl.candidates) > 1 {
			conn := false
			for _, a := range cl.args {
				if covered[a.varID] {
					conn = true
				}
			}
			if !conn {
				t.Fatalf("step %d of plan %v searches literal %d before any of its variables is covered", step, plan, i)
			}
		}
		for _, a := range cl.args {
			covered[a.varID] = true
		}
	}
}

// TestPlanOrderSingleImageFirst pins the filter exception: a literal with at
// most one candidate image has branching factor ≤ 1, so it runs early even
// when disconnected.
func TestPlanOrderSingleImageFirst(t *testing.T) {
	lits := []compiledLit{plit(5, 0, 1), plit(1, 2, 3), plit(3, 0)}
	plan := planOrder(lits, maxVar(lits, []int{0}), []int{0})
	if plan[0] != 1 {
		t.Fatalf("plan = %v: the single-image literal must be searched first", plan)
	}
}

func TestPlanOrderDeterministic(t *testing.T) {
	lits := []compiledLit{
		plit(5, 0, 1), plit(5, 1, 2), plit(5, 2, 0), plit(5, 3, 4), plit(2, 4),
	}
	n := maxVar(lits, []int{0})
	want := planOrder(lits, n, []int{0})
	assertPermutation(t, want, len(lits))
	for i := 0; i < 16; i++ {
		if got := planOrder(lits, n, []int{0}); !reflect.DeepEqual(got, want) {
			t.Fatalf("planOrder is not deterministic: %v vs %v", got, want)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := planOrder(lits, n, []int{0}); !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent planOrder diverged: %v vs %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPlanCacheReusesPlans checks the batch-scoped memoization: a repeated
// probe of the same (candidate, example) pair stores exactly one plan, and
// the cached plan is the one a fresh greedy would produce.
func TestPlanCacheReusesPlans(t *testing.T) {
	ctx := context.Background()
	c := logic.NewClause(
		logic.Rel("p", logic.Var("x")),
		logic.Rel("q", logic.Var("x"), logic.Var("y")),
		logic.Rel("r", logic.Var("y")),
	)
	d := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("q", logic.Const("a"), logic.Const("b")),
		logic.Rel("q", logic.Const("a"), logic.Const("c")),
		logic.Rel("r", logic.Const("b")),
	)
	ch := New(Options{})
	prep := ch.Prepare(d)
	cc := CompileCandidate(c)
	cache := NewPlanCache()
	for i := 0; i < 3; i++ {
		ok, _, st := cc.Probe(ctx, prep, ProbeOptions{Cache: cache})
		if !ok {
			t.Fatal("probe must subsume")
		}
		if !st.Planned {
			t.Fatal("probe must be planned")
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d plans, want 1", cache.Len())
	}
	cached := cache.get(planKey{cand: cc, prep: prep})
	if cached == nil {
		t.Fatal("plan not cached under the (candidate, example) key")
	}
	assertPermutation(t, cached, 2)

	// A second example gets its own cache entry, not a stale reuse.
	d2 := logic.NewClause(
		logic.Rel("p", logic.Const("a")),
		logic.Rel("q", logic.Const("a"), logic.Const("b")),
		logic.Rel("r", logic.Const("b")),
	)
	prep2 := ch.Prepare(d2)
	if ok, _, _ := cc.Probe(ctx, prep2, ProbeOptions{Cache: cache}); !ok {
		t.Fatal("probe of second example must subsume")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d plans, want 2 after a second example", cache.Len())
	}
}

// TestProbeStatsModes pins the ProbeStats flags: planned on the default
// path, not planned with NoPlanner or on an infeasible bail, exhausted only
// when the node budget is hit.
func TestProbeStatsModes(t *testing.T) {
	ctx := context.Background()
	c := logic.NewClause(logic.Rel("p", logic.Var("x")), logic.Rel("q", logic.Var("x"), logic.Var("y")))
	d := logic.NewClause(logic.Rel("p", logic.Const("a")), logic.Rel("q", logic.Const("a"), logic.Const("b")))
	prep := New(Options{}).Prepare(d)
	cc := CompileCandidate(c)

	if _, _, st := cc.Probe(ctx, prep, ProbeOptions{}); !st.Planned || st.Infeasible || st.Exhausted || st.Nodes == 0 {
		t.Fatalf("default probe stats: %+v", st)
	}
	if _, _, st := cc.Probe(ctx, prep, ProbeOptions{NoPlanner: true}); st.Planned {
		t.Fatalf("NoPlanner probe must not be planned: %+v", st)
	}

	// Infeasible: a candidate literal with no image bails before planning.
	cMiss := logic.NewClause(logic.Rel("p", logic.Var("x")), logic.Rel("nope", logic.Var("x")))
	if ok, _, st := CompileCandidate(cMiss).Probe(ctx, prep, ProbeOptions{}); ok || !st.Infeasible || st.Planned || st.Nodes != 0 {
		t.Fatalf("infeasible probe stats: ok=%v %+v", ok, st)
	}

	// Exhausted: a one-node budget cannot finish any real search.
	tiny := New(Options{MaxNodes: 1}).Prepare(d)
	if ok, _, st := cc.Probe(ctx, tiny, ProbeOptions{}); ok || !st.Exhausted {
		t.Fatalf("budget-capped probe stats: ok=%v %+v", ok, st)
	}
}
