package subsumption

import (
	"math/rand"
	"reflect"
	"testing"

	"dlearn/internal/logic"
)

// randBytes feeds the fuzz-clause generator from a seeded PRNG so the
// property tests below run over many clause shapes deterministically.
func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestSnapshotRestoreBehavesIdentically checks the core property of the
// persistence layer at this package's level: a Prepared restored from its
// snapshot answers every subsumption query exactly like the original.
func TestSnapshotRestoreBehavesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ch := New(Options{MaxNodes: 1 << 20})
	for i := 0; i < 300; i++ {
		s := &byteSrc{data: randBytes(rng, 64)}
		d := fuzzClause(s, 5, true)
		c := fuzzClause(s, 3, false)

		orig := ch.Prepare(d)
		restored := RestorePrepared(orig.Snapshot())

		gotFull, _ := restored.Subsumes(c)
		wantFull, _ := orig.Subsumes(c)
		if gotFull != wantFull {
			t.Fatalf("case %d: restored.Subsumes=%v, original=%v\nc=%s\nd=%s", i, gotFull, wantFull, c, d)
		}
		gotPlain, _ := restored.SubsumesPlain(c)
		wantPlain, _ := orig.SubsumesPlain(c)
		if gotPlain != wantPlain {
			t.Fatalf("case %d: restored.SubsumesPlain=%v, original=%v\nc=%s\nd=%s", i, gotPlain, wantPlain, c, d)
		}
	}
}

// TestSnapshotDeterministic checks that snapshots of equal preparations are
// deeply equal — the property the codec's byte-stable encoding builds on.
func TestSnapshotDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ch := New(Options{})
	for i := 0; i < 100; i++ {
		d := fuzzClause(&byteSrc{data: randBytes(rng, 48)}, 5, true)
		a := ch.Prepare(d).Snapshot()
		b := ch.Prepare(d).Snapshot()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("case %d: snapshots of equal preparations differ\nd=%s\na=%+v\nb=%+v", i, d, a, b)
		}
	}
}

// TestRestoreClampsMaxNodes guards the defensive clamp: a snapshot with a
// non-positive budget restores to the default instead of a search that can
// never run.
func TestRestoreClampsMaxNodes(t *testing.T) {
	d := logic.NewClause(logic.Rel("p", logic.Const("a")), logic.Rel("q", logic.Const("a")))
	s := New(Options{}).Prepare(d).Snapshot()
	s.MaxNodes = 0
	p := RestorePrepared(s)
	c := logic.NewClause(logic.Rel("p", logic.Var("x")), logic.Rel("q", logic.Var("x")))
	if ok, _ := p.Subsumes(c); !ok {
		t.Fatal("restored Prepared with zero MaxNodes cannot search")
	}
}
