package subsumption

import (
	"context"

	"dlearn/internal/logic"
)

// compiled is the preprocessed form of a subsumption problem c ⊆θ d. The
// variables of c are numbered densely so bindings live in a slice rather
// than a map, candidate images are precomputed per literal (filtered by
// predicate and constant positions), and restriction literals are attached
// to the variables they mention so they are checked as soon as both sides
// are bound.
type compiled struct {
	c, d logic.Clause

	varIndex map[string]int // c variable name -> dense id
	varNames []string

	// mappable literals of c in search order.
	lits []compiledLit

	// constraints of c (restriction literals).
	constraints []compiledConstraint
	// varConstraints[v] lists constraint indices mentioning variable v.
	varConstraints [][]int

	// prep is the preprocessed d-side (shared across many c's).
	prep *Prepared

	skipRepairClosure bool
	// infeasible marks a probe where some literal of c has no candidate
	// image in d; the search is skipped entirely.
	infeasible bool
	// planned reports whether the literal planner ordered lits (false when
	// the planner is disabled or the probe bailed as infeasible).
	planned bool
	// planNanos is the time spent computing the literal plan, measured only
	// when the probe asked for it (ProbeOptions.TimePlan).
	planNanos int64
	maxNodes  int
	nodes     int

	// ctx cancels the search: the node loop polls it periodically and a
	// cancelled search reports "does not subsume", exactly like an exhausted
	// node budget.
	ctx context.Context
}

// ctxPollInterval is how many search nodes are explored between context
// polls; polling every node would dominate small searches.
const ctxPollInterval = 256

// Prepared is the preprocessed subsumed-clause side of θ-subsumption: its
// literals indexed by predicate, its equality closure and similarity pairs,
// and its repair-literal connectivity. Preparing a ground bottom clause once
// and testing many candidate clauses against it is the dominant usage in the
// learner, so this saves recompiling the large side on every test.
//
// A Prepared is immutable after Prepare returns (the equality closure is
// frozen and the repair connectivity fully precomputed), so any number of
// goroutines may probe the same Prepared concurrently.
type Prepared struct {
	d         logic.Clause
	byPred    map[uint32][]int
	eq        eqClosure
	simPairs  map[[2]logic.Term]bool
	connected map[int][]int
	hasRepair bool
	maxNodes  int
}

// Clause returns the clause the preparation was built from.
func (p *Prepared) Clause() logic.Clause { return p.d }

// Prepare preprocesses the subsumed side d for repeated subsumption tests.
func (ch *Checker) Prepare(d logic.Clause) *Prepared {
	p := &Prepared{
		d:         d,
		byPred:    make(map[uint32][]int),
		simPairs:  make(map[[2]logic.Term]bool),
		connected: make(map[int][]int),
		maxNodes:  ch.Opts.maxNodes(),
	}
	eq := newUnionFind()
	for i, l := range d.Body {
		if l.IsRelation() || l.IsRepair() {
			k := predID(l)
			p.byPred[k] = append(p.byPred[k], i)
		}
		if l.IsRepair() {
			p.hasRepair = true
		}
		switch l.Kind {
		case logic.EqualityLit:
			eq.union(l.Args[0], l.Args[1])
		case logic.SimilarityLit:
			a, b := l.Args[0], l.Args[1]
			p.simPairs[[2]logic.Term{a, b}] = true
			p.simPairs[[2]logic.Term{b, a}] = true
		}
	}
	p.eq = eq.freeze()
	// Only relation literals are consulted by the closure check (mapped
	// repair literals are skipped), so precomputing these makes the check
	// read-only and the Prepared safely shareable.
	for i, l := range d.Body {
		if l.IsRelation() {
			p.connected[i] = d.ConnectedRepairLiterals(i)
		}
	}
	return p
}

// Subsumes reports whether c θ-subsumes the prepared clause under
// Definition 4.4.
func (p *Prepared) Subsumes(c logic.Clause) (bool, logic.Substitution) {
	return p.SubsumesContext(context.Background(), c)
}

// SubsumesContext is Subsumes with cancellation: when ctx is cancelled the
// search stops at the next poll and reports no subsumption.
func (p *Prepared) SubsumesContext(ctx context.Context, c logic.Clause) (bool, logic.Substitution) {
	if c.Head.Pred != p.d.Head.Pred || len(c.Head.Args) != len(p.d.Head.Args) {
		return false, nil
	}
	return compileAgainst(ctx, c, p, false, false).run()
}

// SubsumesPlain reports whether c θ-subsumes the prepared clause, ignoring
// the repair-literal closure requirement.
func (p *Prepared) SubsumesPlain(c logic.Clause) (bool, logic.Substitution) {
	return p.SubsumesPlainContext(context.Background(), c)
}

// SubsumesPlainContext is SubsumesPlain with cancellation.
func (p *Prepared) SubsumesPlainContext(ctx context.Context, c logic.Clause) (bool, logic.Substitution) {
	if c.Head.Pred != p.d.Head.Pred || len(c.Head.Args) != len(p.d.Head.Args) {
		return false, nil
	}
	return compileAgainst(ctx, c, p, true, false).run()
}

// compiledLit is one relation or repair literal of c with its candidate
// images in d.
type compiledLit struct {
	cIndex     int
	args       []compiledTerm
	candidates []int // indices into d.Body
}

// compiledTerm is a term of c: either a variable id or a constant.
type compiledTerm struct {
	varID int    // >= 0 when variable
	value string // constant value when varID < 0
}

// compiledConstraint is a restriction literal of c over compiled terms.
type compiledConstraint struct {
	kind logic.Kind
	l, r compiledTerm
}

// binding is the search state: the image of each c variable (valid only when
// bound is true).
type binding struct {
	terms []logic.Term
	bound []bool
}

func (ch *Checker) compile(ctx context.Context, c, d logic.Clause, skipClosure bool) *compiled {
	return compileAgainst(ctx, c, ch.Prepare(d), skipClosure, ch.Opts.DisablePlanner)
}

// compileAgainst compiles the c-side of a subsumption problem against an
// already prepared d-side. One-shot entry point; repeated probes of the same
// candidate should go through CompileCandidate.
func compileAgainst(ctx context.Context, c logic.Clause, prep *Prepared, skipClosure, noPlanner bool) *compiled {
	return CompileCandidate(c).against(ctx, prep, ProbeOptions{Plain: skipClosure, NoPlanner: noPlanner})
}

func headVarIDs(c logic.Clause, varIndex map[string]int) []int {
	var out []int
	for _, a := range c.Head.Args {
		if a.IsVar() {
			out = append(out, varIndex[a.Name])
		}
	}
	return out
}

// run performs the backtracking search. It returns the substitution when c
// subsumes d.
func (e *compiled) run() (bool, logic.Substitution) {
	if e.infeasible {
		return false, nil
	}
	b := binding{terms: make([]logic.Term, len(e.varNames)), bound: make([]bool, len(e.varNames))}
	// Bind head variables.
	for i, a := range e.c.Head.Args {
		da := e.d.Head.Args[i]
		if a.IsConst() {
			if da.IsVar() || da.Name != a.Name {
				return false, nil
			}
			continue
		}
		id := e.varIndex[a.Name]
		if b.bound[id] && b.terms[id] != da {
			return false, nil
		}
		b.terms[id], b.bound[id] = da, true
	}
	for id := range b.bound {
		if b.bound[id] && !e.constraintsOKFor(b, id) {
			return false, nil
		}
	}
	// The mapped-literal bookkeeping only feeds the repair-closure check of
	// Definition 4.4; skip it (nil map) in plain mode and when d has no
	// repair literals, where the check is vacuous.
	var mapped map[int]int
	if !e.skipRepairClosure && e.prep.hasRepair {
		mapped = make(map[int]int)
	}
	if !e.search(b, 0, mapped) {
		return false, nil
	}
	theta := logic.NewSubstitution()
	for id, name := range e.varNames {
		if b.bound[id] {
			theta[name] = b.terms[id]
		}
	}
	return true, theta
}

func (e *compiled) search(b binding, k int, mapped map[int]int) bool {
	if e.nodes >= e.maxNodes {
		return false
	}
	if e.nodes%ctxPollInterval == 0 && e.ctx.Err() != nil {
		// Cancelled: abandon the search by exhausting the node budget so
		// every ancestor frame unwinds without finding a match.
		e.nodes = e.maxNodes
		return false
	}
	e.nodes++
	if k == len(e.lits) {
		if !e.finalConstraintsOK(b) {
			return false
		}
		if mapped != nil && !e.repairClosureOK(mapped) {
			return false
		}
		return true
	}
	cl := e.lits[k]
	for _, di := range cl.candidates {
		dl := e.d.Body[di]
		trail, ok := e.bindLit(&b, cl, dl)
		if ok {
			prev, hadPrev := 0, false
			if mapped != nil {
				prev, hadPrev = mapped[di]
				mapped[di] = cl.cIndex
			}
			if e.search(b, k+1, mapped) {
				return true
			}
			if mapped != nil {
				if hadPrev {
					mapped[di] = prev
				} else {
					delete(mapped, di)
				}
			}
		}
		for _, v := range trail {
			b.bound[v] = false
		}
		if e.nodes >= e.maxNodes {
			return false
		}
	}
	return false
}

// bindLit binds the variables of cl to the arguments of dl, checking
// constants and the constraints of every newly bound variable. It returns
// the trail of newly bound variable ids; on failure the caller must undo the
// trail.
func (e *compiled) bindLit(b *binding, cl compiledLit, dl logic.Literal) ([]int, bool) {
	var trail []int
	for i, a := range cl.args {
		da := dl.Args[i]
		if a.varID < 0 {
			if da.IsVar() || da.Name != a.value {
				return trail, false
			}
			continue
		}
		if b.bound[a.varID] {
			if b.terms[a.varID] != da {
				return trail, false
			}
			continue
		}
		b.terms[a.varID] = da
		b.bound[a.varID] = true
		trail = append(trail, a.varID)
		if !e.constraintsOKFor(*b, a.varID) {
			return trail, false
		}
	}
	return trail, true
}

// constraintsOKFor checks the constraints mentioning variable v whose two
// sides are both determined.
func (e *compiled) constraintsOKFor(b binding, v int) bool {
	for _, ci := range e.varConstraints[v] {
		con := e.constraints[ci]
		lt, lok := e.image(b, con.l)
		rt, rok := e.image(b, con.r)
		if !lok || !rok {
			continue
		}
		if !e.constraintHolds(con.kind, lt, rt) {
			return false
		}
	}
	return true
}

// finalConstraintsOK re-checks every constraint at the end; constraints with
// an unbound side are considered satisfiable (a free variable can always be
// bound to a value making them true).
func (e *compiled) finalConstraintsOK(b binding) bool {
	for _, con := range e.constraints {
		lt, lok := e.image(b, con.l)
		rt, rok := e.image(b, con.r)
		if !lok || !rok {
			continue
		}
		if !e.constraintHolds(con.kind, lt, rt) {
			return false
		}
	}
	return true
}

func (e *compiled) image(b binding, t compiledTerm) (logic.Term, bool) {
	if t.varID < 0 {
		return logic.Const(t.value), true
	}
	if !b.bound[t.varID] {
		return logic.Term{}, false
	}
	return b.terms[t.varID], true
}

func (e *compiled) constraintHolds(kind logic.Kind, a, b logic.Term) bool {
	switch kind {
	case logic.EqualityLit:
		return a == b || e.prep.eq.same(a, b)
	case logic.SimilarityLit:
		return a == b || e.prep.eq.same(a, b) || e.prep.simPairs[[2]logic.Term{a, b}]
	case logic.InequalityLit:
		return a != b && !e.prep.eq.same(a, b)
	default:
		return true
	}
}

// repairClosureOK enforces the second condition of Definition 4.4: every
// repair literal of d connected to a mapped (non-repair) literal of d must
// itself be mapped.
func (e *compiled) repairClosureOK(mapped map[int]int) bool {
	for di := range mapped {
		dl := e.d.Body[di]
		if dl.IsRepair() {
			continue
		}
		// Connectivity was precomputed for every relation literal in Prepare,
		// so this is a pure read and the Prepared stays shareable.
		for _, ri := range e.prep.connected[di] {
			if _, ok := mapped[ri]; !ok {
				return false
			}
		}
	}
	return true
}
