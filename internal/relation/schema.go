// Package relation implements the in-memory relational substrate DLearn
// learns over. The paper runs on top of VoltDB; this package provides the
// same access paths DLearn needs — indexed selections by attribute value,
// whole-relation scans, and cheap snapshots for generating repaired
// instances — using a column-typed, hash-indexed in-memory store.
package relation

import (
	"fmt"
	"sort"
)

// Type is the data type of an attribute.
type Type int

const (
	// String attributes hold arbitrary text (titles, names, categories).
	String Type = iota
	// Int attributes hold integer-valued data (years, counts).
	Int
	// Float attributes hold real-valued data (prices, weights).
	Float
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Attribute describes one column of a relation. Domain names which values
// are comparable across relations: two attributes are comparable (joinable
// during bottom-clause construction, and usable in an MD) iff they share the
// same Domain (Section 2.2 of the paper).
//
// Constant plays the role of an ILP mode declaration: values of a Constant
// attribute are kept as constants when a bottom clause is variabilized
// (e.g. genres, categories, months), so learned clauses can select on them —
// the paper's example definitions contain such constants
// (mov2genres(y, 'comedy'), amazon_category(x, 'ComputersAccessories')).
// Non-constant attributes (keys, titles) are turned into variables and act
// as join points.
type Attribute struct {
	Name     string
	Type     Type
	Domain   string
	Constant bool
}

// Attr is shorthand for a string attribute in the given domain.
func Attr(name, domain string) Attribute {
	return Attribute{Name: name, Type: String, Domain: domain}
}

// ConstAttr is shorthand for a string attribute whose values stay constants
// in learned clauses (an ILP "#" mode).
func ConstAttr(name, domain string) Attribute {
	return Attribute{Name: name, Type: String, Domain: domain, Constant: true}
}

// Relation describes a relation symbol: its name and attributes.
type Relation struct {
	Name  string
	Attrs []Attribute

	attrIdx map[string]int
}

// NewRelation builds a relation descriptor.
func NewRelation(name string, attrs ...Attribute) *Relation {
	r := &Relation{Name: name, Attrs: attrs, attrIdx: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		r.attrIdx[a.Name] = i
	}
	return r
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the named attribute, or -1 when absent.
func (r *Relation) AttrIndex(name string) int {
	if r.attrIdx == nil {
		r.attrIdx = make(map[string]int, len(r.Attrs))
		for i, a := range r.Attrs {
			r.attrIdx[a.Name] = i
		}
	}
	if i, ok := r.attrIdx[name]; ok {
		return i
	}
	return -1
}

// Attribute returns the attribute descriptor at position i.
func (r *Relation) Attribute(i int) Attribute { return r.Attrs[i] }

// String renders the relation schema.
func (r *Relation) String() string {
	s := r.Name + "("
	for i, a := range r.Attrs {
		if i > 0 {
			s += ", "
		}
		s += a.Name
	}
	return s + ")"
}

// Schema is a finite set of relation symbols.
type Schema struct {
	rels  map[string]*Relation
	order []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{rels: make(map[string]*Relation)}
}

// Add registers a relation. It returns an error if a relation with the same
// name already exists.
func (s *Schema) Add(r *Relation) error {
	if _, ok := s.rels[r.Name]; ok {
		return fmt.Errorf("relation: duplicate relation %q", r.Name)
	}
	s.rels[r.Name] = r
	s.order = append(s.order, r.Name)
	return nil
}

// MustAdd registers a relation and panics on duplicates; it is intended for
// static schema construction in tests and generators.
func (s *Schema) MustAdd(r *Relation) {
	if err := s.Add(r); err != nil {
		panic(err)
	}
}

// Relation returns the relation descriptor with the given name, or nil.
func (s *Schema) Relation(name string) *Relation { return s.rels[name] }

// Has reports whether a relation with the given name exists.
func (s *Schema) Has(name string) bool { _, ok := s.rels[name]; return ok }

// Names returns the relation names in insertion order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Relations returns the relation descriptors in insertion order.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// Len returns the number of relations in the schema.
func (s *Schema) Len() int { return len(s.order) }

// ComparableAttributes returns, for a given domain, every (relation,
// attribute index) pair whose attribute belongs to that domain, sorted by
// relation name for determinism.
func (s *Schema) ComparableAttributes(domain string) []AttrRef {
	var out []AttrRef
	for _, name := range s.order {
		r := s.rels[name]
		for i, a := range r.Attrs {
			if a.Domain == domain {
				out = append(out, AttrRef{Relation: name, Attr: i})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// AttrRef identifies an attribute by relation name and position.
type AttrRef struct {
	Relation string
	Attr     int
}

// String renders the reference as relation[attrIndex].
func (a AttrRef) String() string { return fmt.Sprintf("%s[%d]", a.Relation, a.Attr) }
