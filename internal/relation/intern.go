package relation

// Interner maps string values to dense uint32 IDs and back. IDs are assigned
// in first-intern order starting at 0, so an instance built deterministically
// assigns deterministic IDs. The zero value is not usable; call NewInterner.
//
// An Interner is not safe for concurrent mutation. Instances follow a
// single-writer model: once an instance stops being mutated (e.g. after
// preparation) it may be read from any number of goroutines.
type Interner struct {
	ids  map[string]uint32
	vals []string
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns the ID of v, assigning the next dense ID if v is new.
func (in *Interner) Intern(v string) uint32 {
	if id, ok := in.ids[v]; ok {
		return id
	}
	id := uint32(len(in.vals))
	in.ids[v] = id
	in.vals = append(in.vals, v)
	return id
}

// Lookup returns the ID of v without interning it, and whether v is known.
func (in *Interner) Lookup(v string) (uint32, bool) {
	id, ok := in.ids[v]
	return id, ok
}

// Value returns the string for an ID. It panics when the ID was never
// assigned, mirroring slice bounds checks.
func (in *Interner) Value(id uint32) string { return in.vals[id] }

// Len returns the number of distinct interned values.
func (in *Interner) Len() int { return len(in.vals) }

// Clone returns a deep copy of the interner. Cloned instances share no
// mutable state, so IDs keep their meaning independently on both sides.
func (in *Interner) Clone() *Interner {
	out := &Interner{
		ids:  make(map[string]uint32, len(in.ids)),
		vals: make([]string, len(in.vals)),
	}
	for v, id := range in.ids {
		out.ids[v] = id
	}
	copy(out.vals, in.vals)
	return out
}
