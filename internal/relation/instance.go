package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tuple is one row of a relation. Values are stored as strings regardless of
// the declared attribute type; the learning algorithms treat them as opaque
// constants and only the similarity operator interprets their content.
type Tuple struct {
	Relation string
	Values   []string
}

// NewTuple constructs a tuple.
func NewTuple(rel string, values ...string) Tuple {
	return Tuple{Relation: rel, Values: values}
}

// Key returns a canonical identity for the tuple (relation plus values).
// Each value is length-prefixed, so no choice of value bytes — including
// separator-looking characters — can make two distinct tuples share a key.
func (t Tuple) Key() string {
	n := len(t.Relation) + 2
	for _, v := range t.Values {
		n += len(v) + 6
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(t.Relation)
	b.WriteByte('(')
	for _, v := range t.Values {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	v := make([]string, len(t.Values))
	copy(v, t.Values)
	return Tuple{Relation: t.Relation, Values: v}
}

// Equal reports whether two tuples are identical.
func (t Tuple) Equal(o Tuple) bool {
	if t.Relation != o.Relation || len(t.Values) != len(o.Values) {
		return false
	}
	for i := range t.Values {
		if t.Values[i] != o.Values[i] {
			return false
		}
	}
	return true
}

// String renders the tuple.
func (t Tuple) String() string {
	return fmt.Sprintf("%s(%s)", t.Relation, strings.Join(t.Values, ", "))
}

// relData is the columnar storage of one relation: one []uint32 column per
// attribute (interned value IDs, indexed by row position) plus a per-attribute
// hash index from value ID to row positions.
type relData struct {
	rows  int
	cols  [][]uint32
	index []map[uint32][]int
}

// Instance is an in-memory database instance of a schema. Values are interned
// to dense uint32 IDs through a per-instance Interner and tuples are stored
// as columnar per-attribute ID arrays. A per-relation, per-attribute hash
// index from value ID to row positions answers the selections σ_{A∈M}(R)
// issued by bottom-clause construction (Algorithm 2) without scanning, and
// duplicate probes and selections compare integers instead of hashing
// strings. The public API stays string-based; ID-level accessors
// (SelectPositions, RowIDs, TupleAt) expose the interned layer to hot paths.
type Instance struct {
	schema *Schema
	intern *Interner
	rels   map[string]*relData
}

// NewInstance creates an empty instance of the given schema.
func NewInstance(schema *Schema) *Instance {
	return &Instance{
		schema: schema,
		intern: NewInterner(),
		rels:   make(map[string]*relData),
	}
}

// Schema returns the schema the instance conforms to.
func (in *Instance) Schema() *Schema { return in.schema }

// Interner returns the instance's value interner. Callers must not mutate it
// concurrently with instance writes.
func (in *Instance) Interner() *Interner { return in.intern }

// DistinctValueCount returns the number of distinct values interned by the
// instance across all relations and attributes.
func (in *Instance) DistinctValueCount() int { return in.intern.Len() }

// validateInsert checks that the relation exists and the value count matches
// its arity.
func (in *Instance) validateInsert(rel string, values []string) (*Relation, error) {
	r := in.schema.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("relation: insert into unknown relation %q", rel)
	}
	if len(values) != r.Arity() {
		return nil, fmt.Errorf("relation: insert into %q: got %d values, want %d", rel, len(values), r.Arity())
	}
	return r, nil
}

// data returns the columnar storage of rel, creating it on first insert.
func (in *Instance) data(rel string, arity int) *relData {
	rd := in.rels[rel]
	if rd == nil {
		rd = &relData{
			cols:  make([][]uint32, arity),
			index: make([]map[uint32][]int, arity),
		}
		for a := 0; a < arity; a++ {
			rd.index[a] = make(map[uint32][]int)
		}
		in.rels[rel] = rd
	}
	return rd
}

// Insert adds a tuple to the named relation. It returns an error when the
// relation is unknown or the arity does not match the schema.
func (in *Instance) Insert(rel string, values ...string) error {
	r, err := in.validateInsert(rel, values)
	if err != nil {
		return err
	}
	rd := in.data(rel, r.Arity())
	pos := rd.rows
	for a, v := range values {
		id := in.intern.Intern(v)
		rd.cols[a] = append(rd.cols[a], id)
		rd.index[a][id] = append(rd.index[a][id], pos)
	}
	rd.rows++
	return nil
}

// MustInsert inserts and panics on error; intended for generators and tests.
func (in *Instance) MustInsert(rel string, values ...string) {
	if err := in.Insert(rel, values...); err != nil {
		panic(err)
	}
}

// InsertUnique inserts the tuple only if an identical tuple is not already
// present. It reports whether an insertion happened. The duplicate check
// probes the per-attribute hash index (smallest candidate bucket) comparing
// value IDs, so it stays fast even after value rewrites and never scans the
// whole relation.
func (in *Instance) InsertUnique(rel string, values ...string) (bool, error) {
	// Validate before the duplicate probe: contains assumes the arity
	// matches the index layout.
	if _, err := in.validateInsert(rel, values); err != nil {
		return false, err
	}
	if in.contains(rel, values) {
		return false, nil
	}
	if err := in.Insert(rel, values...); err != nil {
		return false, err
	}
	return true, nil
}

// contains reports whether an identical tuple exists, comparing only the
// rows in the smallest per-attribute index bucket of the probe values.
func (in *Instance) contains(rel string, values []string) bool {
	rd := in.rels[rel]
	if rd == nil {
		return false
	}
	if len(values) == 0 {
		// A zero-arity relation holds at most the empty tuple.
		return rd.rows > 0
	}
	ids := make([]uint32, len(values))
	var bucket []int
	for a, v := range values {
		id, ok := in.intern.Lookup(v)
		if !ok {
			return false
		}
		ids[a] = id
		positions := rd.index[a][id]
		if len(positions) == 0 {
			return false
		}
		if bucket == nil || len(positions) < len(bucket) {
			bucket = positions
		}
	}
outer:
	for _, p := range bucket {
		for a, id := range ids {
			if rd.cols[a][p] != id {
				continue outer
			}
		}
		return true
	}
	return false
}

// TupleAt materializes the tuple at a row position of a relation. The
// returned tuple owns its Values slice.
func (in *Instance) TupleAt(rel string, pos int) Tuple {
	rd := in.rels[rel]
	values := make([]string, len(rd.cols))
	for a := range rd.cols {
		values[a] = in.intern.Value(rd.cols[a][pos])
	}
	return Tuple{Relation: rel, Values: values}
}

// RowIDs appends the interned value IDs of the row at pos to dst and returns
// the extended slice. It is the allocation-free way to key or compare rows.
func (in *Instance) RowIDs(dst []uint32, rel string, pos int) []uint32 {
	rd := in.rels[rel]
	for a := range rd.cols {
		dst = append(dst, rd.cols[a][pos])
	}
	return dst
}

// Tuples returns the tuples of a relation, materialized from the columnar
// storage in row order. The returned slice is a snapshot: it does not observe
// later mutations of the instance.
func (in *Instance) Tuples(rel string) []Tuple {
	rd := in.rels[rel]
	if rd == nil || rd.rows == 0 {
		return nil
	}
	out := make([]Tuple, rd.rows)
	for p := 0; p < rd.rows; p++ {
		out[p] = in.TupleAt(rel, p)
	}
	return out
}

// Count returns the number of tuples in a relation.
func (in *Instance) Count(rel string) int {
	rd := in.rels[rel]
	if rd == nil {
		return 0
	}
	return rd.rows
}

// TotalTuples returns the number of tuples across all relations.
func (in *Instance) TotalTuples() int {
	total := 0
	for _, rd := range in.rels {
		total += rd.rows
	}
	return total
}

// SelectPositions returns the row positions of rel whose attribute at
// position attr equals value, using the ID-keyed hash index. The returned
// slice is owned by the instance and must not be modified.
func (in *Instance) SelectPositions(rel string, attr int, value string) []int {
	rd := in.rels[rel]
	if rd == nil || attr < 0 || attr >= len(rd.index) {
		return nil
	}
	id, ok := in.intern.Lookup(value)
	if !ok {
		return nil
	}
	return rd.index[attr][id]
}

// Select returns the tuples of rel whose attribute at position attr equals
// value, using the hash index.
func (in *Instance) Select(rel string, attr int, value string) []Tuple {
	positions := in.SelectPositions(rel, attr, value)
	if len(positions) == 0 {
		return nil
	}
	out := make([]Tuple, 0, len(positions))
	for _, p := range positions {
		out = append(out, in.TupleAt(rel, p))
	}
	return out
}

// SelectAny returns the tuples of rel that contain value in any attribute
// whose domain is listed in domains (nil means any attribute).
func (in *Instance) SelectAny(rel string, value string, domains map[string]bool) []Tuple {
	r := in.schema.Relation(rel)
	if r == nil {
		return nil
	}
	rd := in.rels[rel]
	if rd == nil {
		return nil
	}
	id, ok := in.intern.Lookup(value)
	if !ok {
		return nil
	}
	seen := make(map[int]bool)
	var out []Tuple
	for a := 0; a < r.Arity(); a++ {
		if domains != nil && !domains[r.Attrs[a].Domain] {
			continue
		}
		for _, p := range rd.index[a][id] {
			if !seen[p] {
				seen[p] = true
				out = append(out, in.TupleAt(rel, p))
			}
		}
	}
	return out
}

// DistinctValues returns the distinct values of an attribute, sorted.
func (in *Instance) DistinctValues(rel string, attr int) []string {
	rd := in.rels[rel]
	if rd == nil || attr < 0 || attr >= len(rd.index) {
		return nil
	}
	out := make([]string, 0, len(rd.index[attr]))
	for id := range rd.index[attr] {
		out = append(out, in.intern.Value(id))
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the instance (interner, columns and indexes).
// Repairs and baselines that modify data operate on clones so the original
// dirty instance is preserved.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		schema: in.schema,
		intern: in.intern.Clone(),
		rels:   make(map[string]*relData, len(in.rels)),
	}
	for rel, rd := range in.rels {
		nrd := &relData{
			rows:  rd.rows,
			cols:  make([][]uint32, len(rd.cols)),
			index: make([]map[uint32][]int, len(rd.index)),
		}
		for a := range rd.cols {
			nrd.cols[a] = append([]uint32(nil), rd.cols[a]...)
			nrd.index[a] = make(map[uint32][]int, len(rd.index[a]))
			for id, positions := range rd.index[a] {
				nrd.index[a][id] = append([]int(nil), positions...)
			}
		}
		out.rels[rel] = nrd
	}
	return out
}

// ReplaceValue rewrites every occurrence of old with new in the given
// attribute of the given relation, rebuilding the affected index entry. It
// returns the number of tuple fields rewritten. It is used when enforcing
// MDs and repairing CFD violations on materialized instances.
func (in *Instance) ReplaceValue(rel string, attr int, old, new string) int {
	rd := in.rels[rel]
	if rd == nil || attr < 0 || attr >= len(rd.index) || old == new {
		return 0
	}
	oldID, ok := in.intern.Lookup(old)
	if !ok {
		return 0
	}
	positions := rd.index[attr][oldID]
	if len(positions) == 0 {
		return 0
	}
	newID := in.intern.Intern(new)
	for _, p := range positions {
		rd.cols[attr][p] = newID
	}
	delete(rd.index[attr], oldID)
	rd.index[attr][newID] = append(rd.index[attr][newID], positions...)
	return len(positions)
}

// SetValueAt rewrites a single tuple field, keeping the index consistent.
// The tuple is identified by its position in the relation's row order.
func (in *Instance) SetValueAt(rel string, pos, attr int, value string) error {
	rd := in.rels[rel]
	if rd == nil || pos < 0 || pos >= rd.rows {
		return fmt.Errorf("relation: SetValueAt %s: position %d out of range", rel, pos)
	}
	r := in.schema.Relation(rel)
	if attr < 0 || attr >= r.Arity() {
		return fmt.Errorf("relation: SetValueAt %s: attribute %d out of range", rel, attr)
	}
	oldID := rd.cols[attr][pos]
	newID := in.intern.Intern(value)
	if oldID == newID {
		return nil
	}
	rd.cols[attr][pos] = newID
	// Remove pos from the old index entry, preserving the order of the rest.
	entry := rd.index[attr][oldID]
	for i, p := range entry {
		if p == pos {
			entry = append(entry[:i], entry[i+1:]...)
			break
		}
	}
	if len(entry) == 0 {
		delete(rd.index[attr], oldID)
	} else {
		rd.index[attr][oldID] = entry
	}
	rd.index[attr][newID] = append(rd.index[attr][newID], pos)
	return nil
}

// Stats summarizes the instance: number of relations and tuples.
func (in *Instance) Stats() (relations, tuples int) {
	return in.schema.Len(), in.TotalTuples()
}

// String renders a compact summary of the instance.
func (in *Instance) String() string {
	var b strings.Builder
	for _, rel := range in.schema.Names() {
		fmt.Fprintf(&b, "%s: %d tuples\n", rel, in.Count(rel))
	}
	return b.String()
}
