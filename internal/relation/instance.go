package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of a relation. Values are stored as strings regardless of
// the declared attribute type; the learning algorithms treat them as opaque
// constants and only the similarity operator interprets their content.
type Tuple struct {
	Relation string
	Values   []string
}

// NewTuple constructs a tuple.
func NewTuple(rel string, values ...string) Tuple {
	return Tuple{Relation: rel, Values: values}
}

// Key returns a canonical identity for the tuple (relation plus values).
func (t Tuple) Key() string {
	return t.Relation + "(" + strings.Join(t.Values, "\x1f") + ")"
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	v := make([]string, len(t.Values))
	copy(v, t.Values)
	return Tuple{Relation: t.Relation, Values: v}
}

// Equal reports whether two tuples are identical.
func (t Tuple) Equal(o Tuple) bool {
	if t.Relation != o.Relation || len(t.Values) != len(o.Values) {
		return false
	}
	for i := range t.Values {
		if t.Values[i] != o.Values[i] {
			return false
		}
	}
	return true
}

// String renders the tuple.
func (t Tuple) String() string {
	return fmt.Sprintf("%s(%s)", t.Relation, strings.Join(t.Values, ", "))
}

// Instance is an in-memory database instance of a schema. It maintains a
// per-relation, per-attribute hash index from value to tuple positions so
// that the selections σ_{A∈M}(R) issued by bottom-clause construction
// (Algorithm 2) are answered without scanning.
type Instance struct {
	schema *Schema
	tuples map[string][]Tuple
	// index[rel][attr][value] -> positions into tuples[rel]
	index map[string][]map[string][]int
}

// NewInstance creates an empty instance of the given schema.
func NewInstance(schema *Schema) *Instance {
	return &Instance{
		schema: schema,
		tuples: make(map[string][]Tuple),
		index:  make(map[string][]map[string][]int),
	}
}

// Schema returns the schema the instance conforms to.
func (in *Instance) Schema() *Schema { return in.schema }

// validateInsert checks that the relation exists and the value count matches
// its arity.
func (in *Instance) validateInsert(rel string, values []string) (*Relation, error) {
	r := in.schema.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("relation: insert into unknown relation %q", rel)
	}
	if len(values) != r.Arity() {
		return nil, fmt.Errorf("relation: insert into %q: got %d values, want %d", rel, len(values), r.Arity())
	}
	return r, nil
}

// Insert adds a tuple to the named relation. It returns an error when the
// relation is unknown or the arity does not match the schema.
func (in *Instance) Insert(rel string, values ...string) error {
	if _, err := in.validateInsert(rel, values); err != nil {
		return err
	}
	v := make([]string, len(values))
	copy(v, values)
	t := Tuple{Relation: rel, Values: v}
	pos := len(in.tuples[rel])
	in.tuples[rel] = append(in.tuples[rel], t)
	in.indexTuple(rel, pos, t)
	return nil
}

// MustInsert inserts and panics on error; intended for generators and tests.
func (in *Instance) MustInsert(rel string, values ...string) {
	if err := in.Insert(rel, values...); err != nil {
		panic(err)
	}
}

// InsertUnique inserts the tuple only if an identical tuple is not already
// present. It reports whether an insertion happened. The duplicate check
// probes the per-attribute hash index (smallest candidate bucket), so it
// stays fast even after value rewrites and never scans the whole relation.
func (in *Instance) InsertUnique(rel string, values ...string) (bool, error) {
	// Validate before the duplicate probe: contains assumes the arity
	// matches the index layout.
	if _, err := in.validateInsert(rel, values); err != nil {
		return false, err
	}
	if in.contains(rel, values) {
		return false, nil
	}
	if err := in.Insert(rel, values...); err != nil {
		return false, err
	}
	return true, nil
}

// contains reports whether an identical tuple exists, comparing only the
// tuples in the smallest per-attribute index bucket of the probe values.
func (in *Instance) contains(rel string, values []string) bool {
	if len(values) == 0 {
		// A zero-arity relation holds at most the empty tuple.
		return len(in.tuples[rel]) > 0
	}
	idx := in.index[rel]
	if idx == nil {
		return false
	}
	var bucket []int
	for a := range idx {
		positions := idx[a][values[a]]
		if len(positions) == 0 {
			return false
		}
		if bucket == nil || len(positions) < len(bucket) {
			bucket = positions
		}
	}
	ts := in.tuples[rel]
outer:
	for _, p := range bucket {
		for i, v := range ts[p].Values {
			if v != values[i] {
				continue outer
			}
		}
		return true
	}
	return false
}

func (in *Instance) indexTuple(rel string, pos int, t Tuple) {
	idx := in.index[rel]
	if idx == nil {
		idx = make([]map[string][]int, in.schema.Relation(rel).Arity())
		for i := range idx {
			idx[i] = make(map[string][]int)
		}
		in.index[rel] = idx
	}
	for i, v := range t.Values {
		idx[i][v] = append(idx[i][v], pos)
	}
}

// Tuples returns the tuples of a relation. The returned slice is owned by
// the instance and must not be modified.
func (in *Instance) Tuples(rel string) []Tuple { return in.tuples[rel] }

// Count returns the number of tuples in a relation.
func (in *Instance) Count(rel string) int { return len(in.tuples[rel]) }

// TotalTuples returns the number of tuples across all relations.
func (in *Instance) TotalTuples() int {
	total := 0
	for _, ts := range in.tuples {
		total += len(ts)
	}
	return total
}

// Select returns the tuples of rel whose attribute at position attr equals
// value, using the hash index.
func (in *Instance) Select(rel string, attr int, value string) []Tuple {
	idx := in.index[rel]
	if idx == nil || attr < 0 || attr >= len(idx) {
		return nil
	}
	positions := idx[attr][value]
	if len(positions) == 0 {
		return nil
	}
	out := make([]Tuple, 0, len(positions))
	for _, p := range positions {
		out = append(out, in.tuples[rel][p])
	}
	return out
}

// SelectAny returns the tuples of rel that contain value in any attribute
// whose domain is listed in domains (nil means any attribute).
func (in *Instance) SelectAny(rel string, value string, domains map[string]bool) []Tuple {
	r := in.schema.Relation(rel)
	if r == nil {
		return nil
	}
	seen := make(map[int]bool)
	var out []Tuple
	idx := in.index[rel]
	if idx == nil {
		return nil
	}
	for a := 0; a < r.Arity(); a++ {
		if domains != nil && !domains[r.Attrs[a].Domain] {
			continue
		}
		for _, p := range idx[a][value] {
			if !seen[p] {
				seen[p] = true
				out = append(out, in.tuples[rel][p])
			}
		}
	}
	return out
}

// DistinctValues returns the distinct values of an attribute, sorted.
func (in *Instance) DistinctValues(rel string, attr int) []string {
	idx := in.index[rel]
	if idx == nil || attr < 0 || attr >= len(idx) {
		return nil
	}
	out := make([]string, 0, len(idx[attr]))
	for v := range idx[attr] {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the instance (tuples and indexes). Repairs and
// baselines that modify data operate on clones so the original dirty
// instance is preserved.
func (in *Instance) Clone() *Instance {
	out := NewInstance(in.schema)
	for _, rel := range in.schema.Names() {
		for _, t := range in.tuples[rel] {
			out.MustInsert(rel, t.Values...)
		}
	}
	return out
}

// ReplaceValue rewrites every occurrence of old with new in the given
// attribute of the given relation, rebuilding the affected index entries. It
// returns the number of tuple fields rewritten. It is used when enforcing
// MDs and repairing CFD violations on materialized instances.
func (in *Instance) ReplaceValue(rel string, attr int, old, new string) int {
	idx := in.index[rel]
	if idx == nil || attr < 0 || attr >= len(idx) || old == new {
		return 0
	}
	positions := idx[attr][old]
	if len(positions) == 0 {
		return 0
	}
	for _, p := range positions {
		in.tuples[rel][p].Values[attr] = new
	}
	delete(idx[attr], old)
	idx[attr][new] = append(idx[attr][new], positions...)
	return len(positions)
}

// SetValueAt rewrites a single tuple field, keeping the index consistent.
// The tuple is identified by its position in the relation's tuple slice.
func (in *Instance) SetValueAt(rel string, pos, attr int, value string) error {
	ts := in.tuples[rel]
	if pos < 0 || pos >= len(ts) {
		return fmt.Errorf("relation: SetValueAt %s: position %d out of range", rel, pos)
	}
	r := in.schema.Relation(rel)
	if attr < 0 || attr >= r.Arity() {
		return fmt.Errorf("relation: SetValueAt %s: attribute %d out of range", rel, attr)
	}
	old := ts[pos].Values[attr]
	if old == value {
		return nil
	}
	ts[pos].Values[attr] = value
	// Remove pos from the old index entry.
	entry := in.index[rel][attr][old]
	for i, p := range entry {
		if p == pos {
			entry = append(entry[:i], entry[i+1:]...)
			break
		}
	}
	if len(entry) == 0 {
		delete(in.index[rel][attr], old)
	} else {
		in.index[rel][attr][old] = entry
	}
	in.index[rel][attr][value] = append(in.index[rel][attr][value], pos)
	return nil
}

// Stats summarizes the instance: number of relations and tuples.
func (in *Instance) Stats() (relations, tuples int) {
	return in.schema.Len(), in.TotalTuples()
}

// String renders a compact summary of the instance.
func (in *Instance) String() string {
	var b strings.Builder
	for _, rel := range in.schema.Names() {
		fmt.Fprintf(&b, "%s: %d tuples\n", rel, len(in.tuples[rel]))
	}
	return b.String()
}
