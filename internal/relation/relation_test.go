package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func movieSchema() *Schema {
	s := NewSchema()
	s.MustAdd(NewRelation("movies",
		Attr("id", "imdb_id"), Attr("title", "title"), Attr("year", "year")))
	s.MustAdd(NewRelation("mov2genres",
		Attr("id", "imdb_id"), Attr("genre", "genre")))
	return s
}

func TestSchemaAddAndLookup(t *testing.T) {
	s := movieSchema()
	if s.Len() != 2 {
		t.Fatalf("schema should have 2 relations, got %d", s.Len())
	}
	if !s.Has("movies") || s.Has("unknown") {
		t.Fatal("Has misbehaves")
	}
	r := s.Relation("movies")
	if r.Arity() != 3 {
		t.Fatalf("movies arity = %d", r.Arity())
	}
	if r.AttrIndex("title") != 1 || r.AttrIndex("missing") != -1 {
		t.Fatal("AttrIndex misbehaves")
	}
	if err := s.Add(NewRelation("movies")); err == nil {
		t.Fatal("duplicate relation must be rejected")
	}
	if got := s.Names(); got[0] != "movies" || got[1] != "mov2genres" {
		t.Fatalf("Names order wrong: %v", got)
	}
}

func TestSchemaComparableAttributes(t *testing.T) {
	s := movieSchema()
	refs := s.ComparableAttributes("imdb_id")
	if len(refs) != 2 {
		t.Fatalf("expected 2 comparable attrs in domain imdb_id, got %v", refs)
	}
	if refs[0].Relation != "mov2genres" || refs[1].Relation != "movies" {
		t.Fatalf("refs should be sorted by relation: %v", refs)
	}
	if len(s.ComparableAttributes("nope")) != 0 {
		t.Fatal("unknown domain should yield nothing")
	}
}

func TestRelationString(t *testing.T) {
	r := NewRelation("movies", Attr("id", "d"), Attr("title", "d2"))
	if got := r.String(); got != "movies(id, title)" {
		t.Errorf("String = %q", got)
	}
}

func TestInstanceInsertAndSelect(t *testing.T) {
	in := NewInstance(movieSchema())
	in.MustInsert("movies", "m1", "Superbad (2007)", "2007")
	in.MustInsert("movies", "m2", "Zoolander (2001)", "2001")
	in.MustInsert("mov2genres", "m1", "comedy")
	in.MustInsert("mov2genres", "m2", "comedy")

	if in.Count("movies") != 2 || in.TotalTuples() != 4 {
		t.Fatalf("counts wrong: %d %d", in.Count("movies"), in.TotalTuples())
	}
	got := in.Select("mov2genres", 1, "comedy")
	if len(got) != 2 {
		t.Fatalf("Select comedy should return 2 tuples, got %d", len(got))
	}
	if len(in.Select("movies", 0, "m3")) != 0 {
		t.Fatal("Select miss should return nothing")
	}
	if len(in.Select("movies", 9, "m1")) != 0 {
		t.Fatal("Select with bad attribute index should return nothing")
	}
}

func TestInstanceInsertErrors(t *testing.T) {
	in := NewInstance(movieSchema())
	if err := in.Insert("nope", "a"); err == nil {
		t.Fatal("insert into unknown relation must fail")
	}
	if err := in.Insert("movies", "only-one"); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestInstanceInsertUnique(t *testing.T) {
	in := NewInstance(movieSchema())
	ok, err := in.InsertUnique("mov2genres", "m1", "comedy")
	if err != nil || !ok {
		t.Fatalf("first InsertUnique failed: %v %v", ok, err)
	}
	ok, err = in.InsertUnique("mov2genres", "m1", "comedy")
	if err != nil || ok {
		t.Fatalf("duplicate InsertUnique should be a no-op: %v %v", ok, err)
	}
	if in.Count("mov2genres") != 1 {
		t.Fatalf("count = %d, want 1", in.Count("mov2genres"))
	}
}

func TestInstanceInsertUniqueNearDuplicates(t *testing.T) {
	in := NewInstance(movieSchema())
	// Near-duplicates: tuples sharing every attribute but one must all be
	// inserted (the index probe must compare whole tuples, not one column).
	base := []string{"m1", "Superbad (2007)", "2007"}
	variants := [][]string{
		{"m2", "Superbad (2007)", "2007"}, // same title and year
		{"m1", "Superbad", "2007"},        // same id and year
		{"m1", "Superbad (2007)", "2008"}, // same id and title
	}
	if ok, err := in.InsertUnique("movies", base...); err != nil || !ok {
		t.Fatalf("base insert failed: %v %v", ok, err)
	}
	for _, v := range variants {
		if ok, err := in.InsertUnique("movies", v...); err != nil || !ok {
			t.Fatalf("near-duplicate %v should insert: %v %v", v, ok, err)
		}
	}
	if in.Count("movies") != 4 {
		t.Fatalf("count = %d, want 4", in.Count("movies"))
	}
	for _, v := range append([][]string{base}, variants...) {
		if ok, err := in.InsertUnique("movies", v...); err != nil || ok {
			t.Fatalf("exact duplicate %v should be a no-op: %v %v", v, ok, err)
		}
	}
	if in.Count("movies") != 4 {
		t.Fatalf("count after duplicate inserts = %d, want 4", in.Count("movies"))
	}
}

func TestInstanceInsertUniqueErrorsAndRewrites(t *testing.T) {
	in := NewInstance(movieSchema())
	if _, err := in.InsertUnique("nope", "a"); err == nil {
		t.Fatal("InsertUnique into unknown relation must fail")
	}
	if _, err := in.InsertUnique("movies", "only-one"); err == nil {
		t.Fatal("InsertUnique arity mismatch must fail")
	}
	// After a value rewrite the index-backed duplicate check must see the
	// new values, not the originals.
	in.MustInsert("movies", "m1", "Superbad (2007)", "2007")
	in.ReplaceValue("movies", 1, "Superbad (2007)", "Superbad")
	if ok, _ := in.InsertUnique("movies", "m1", "Superbad", "2007"); ok {
		t.Fatal("rewritten tuple should be detected as a duplicate")
	}
	if ok, _ := in.InsertUnique("movies", "m1", "Superbad (2007)", "2007"); !ok {
		t.Fatal("the pre-rewrite tuple no longer exists and should insert")
	}
}

func TestInstanceSelectAnyWithDomains(t *testing.T) {
	in := NewInstance(movieSchema())
	in.MustInsert("movies", "m1", "m1", "2007") // title equals an id on purpose
	got := in.SelectAny("movies", "m1", map[string]bool{"imdb_id": true})
	if len(got) != 1 {
		t.Fatalf("SelectAny restricted to imdb_id should find the tuple once, got %d", len(got))
	}
	got = in.SelectAny("movies", "m1", nil)
	if len(got) != 1 {
		t.Fatalf("SelectAny with nil domains should dedup to 1 tuple, got %d", len(got))
	}
	if len(in.SelectAny("unknown", "x", nil)) != 0 {
		t.Fatal("SelectAny on unknown relation should return nothing")
	}
}

func TestInstanceDistinctValues(t *testing.T) {
	in := NewInstance(movieSchema())
	in.MustInsert("mov2genres", "m1", "comedy")
	in.MustInsert("mov2genres", "m2", "comedy")
	in.MustInsert("mov2genres", "m3", "drama")
	got := in.DistinctValues("mov2genres", 1)
	if len(got) != 2 || got[0] != "comedy" || got[1] != "drama" {
		t.Fatalf("DistinctValues = %v", got)
	}
}

func TestInstanceCloneIndependence(t *testing.T) {
	in := NewInstance(movieSchema())
	in.MustInsert("movies", "m1", "Superbad", "2007")
	clone := in.Clone()
	clone.MustInsert("movies", "m2", "Zoolander", "2001")
	clone.ReplaceValue("movies", 1, "Superbad", "Changed")
	if in.Count("movies") != 1 {
		t.Fatal("clone insert leaked into original")
	}
	if in.Tuples("movies")[0].Values[1] != "Superbad" {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestInstanceReplaceValue(t *testing.T) {
	in := NewInstance(movieSchema())
	in.MustInsert("movies", "m1", "Bait", "2007")
	in.MustInsert("movies", "m2", "Bait", "2012")
	n := in.ReplaceValue("movies", 1, "Bait", "Bait (fixed)")
	if n != 2 {
		t.Fatalf("ReplaceValue should rewrite 2 fields, got %d", n)
	}
	if len(in.Select("movies", 1, "Bait")) != 0 {
		t.Fatal("old value still indexed")
	}
	if len(in.Select("movies", 1, "Bait (fixed)")) != 2 {
		t.Fatal("new value not indexed")
	}
	if in.ReplaceValue("movies", 1, "missing", "x") != 0 {
		t.Fatal("replacing a missing value should do nothing")
	}
	if in.ReplaceValue("movies", 1, "same", "same") != 0 {
		t.Fatal("no-op replacement should do nothing")
	}
}

func TestInstanceSetValueAt(t *testing.T) {
	in := NewInstance(movieSchema())
	in.MustInsert("movies", "m1", "Bait", "2007")
	if err := in.SetValueAt("movies", 0, 2, "2008"); err != nil {
		t.Fatal(err)
	}
	if in.Tuples("movies")[0].Values[2] != "2008" {
		t.Fatal("SetValueAt did not update the tuple")
	}
	if len(in.Select("movies", 2, "2007")) != 0 || len(in.Select("movies", 2, "2008")) != 1 {
		t.Fatal("SetValueAt did not maintain the index")
	}
	if err := in.SetValueAt("movies", 5, 0, "x"); err == nil {
		t.Fatal("out-of-range position must error")
	}
	if err := in.SetValueAt("movies", 0, 9, "x"); err == nil {
		t.Fatal("out-of-range attribute must error")
	}
	if err := in.SetValueAt("movies", 0, 2, "2008"); err != nil {
		t.Fatal("same-value SetValueAt should be a no-op without error")
	}
}

func TestTupleHelpers(t *testing.T) {
	a := NewTuple("movies", "m1", "Superbad", "2007")
	b := a.Clone()
	b.Values[1] = "changed"
	if a.Values[1] != "Superbad" {
		t.Fatal("Clone must deep copy")
	}
	if !a.Equal(NewTuple("movies", "m1", "Superbad", "2007")) {
		t.Fatal("Equal should hold for identical tuples")
	}
	if a.Equal(b) || a.Equal(NewTuple("other", "m1", "Superbad", "2007")) {
		t.Fatal("Equal should reject differing tuples")
	}
	if !strings.Contains(a.String(), "Superbad") {
		t.Fatal("String should include values")
	}
	if a.Key() == b.Key() {
		t.Fatal("Key must distinguish different tuples")
	}
}

func TestInstanceStatsAndString(t *testing.T) {
	in := NewInstance(movieSchema())
	in.MustInsert("movies", "m1", "Superbad", "2007")
	rels, tuples := in.Stats()
	if rels != 2 || tuples != 1 {
		t.Fatalf("Stats = %d %d", rels, tuples)
	}
	if !strings.Contains(in.String(), "movies: 1 tuples") {
		t.Errorf("String = %q", in.String())
	}
}

// Property: after inserting any set of genre rows, Select by value returns
// exactly the tuples whose attribute equals the value.
func TestPropertySelectMatchesLinearScan(t *testing.T) {
	f := func(vals []uint8) bool {
		in := NewInstance(movieSchema())
		genres := []string{"comedy", "drama", "action"}
		for i, v := range vals {
			in.MustInsert("mov2genres", ids(i), genres[int(v)%len(genres)])
		}
		for _, g := range genres {
			want := 0
			for _, tp := range in.Tuples("mov2genres") {
				if tp.Values[1] == g {
					want++
				}
			}
			if len(in.Select("mov2genres", 1, g)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Clone always yields an instance with identical contents.
func TestPropertyCloneEqualContents(t *testing.T) {
	f := func(vals []uint8) bool {
		in := NewInstance(movieSchema())
		for i, v := range vals {
			in.MustInsert("movies", ids(i), "t"+ids(int(v)), "2000")
		}
		clone := in.Clone()
		if clone.TotalTuples() != in.TotalTuples() {
			return false
		}
		for i, tp := range in.Tuples("movies") {
			if !tp.Equal(clone.Tuples("movies")[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func ids(i int) string {
	return "m" + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26))
}
