package relation

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// boxedInstance is the pre-interning reference implementation of Instance:
// tuples boxed as []string rows with string-keyed per-attribute indexes. It
// is kept test-only (like subsumption's brute-force reference checker) as
// the oracle FuzzInstanceParity drives the interned columnar implementation
// against: every mutation and query must answer identically, including
// iteration and index-entry order.
type boxedInstance struct {
	schema *Schema
	tuples map[string][]Tuple
	index  map[string][]map[string][]int
}

func newBoxedInstance(schema *Schema) *boxedInstance {
	return &boxedInstance{
		schema: schema,
		tuples: make(map[string][]Tuple),
		index:  make(map[string][]map[string][]int),
	}
}

func (in *boxedInstance) insert(rel string, values ...string) error {
	r := in.schema.Relation(rel)
	if r == nil {
		return fmt.Errorf("relation: insert into unknown relation %q", rel)
	}
	if len(values) != r.Arity() {
		return fmt.Errorf("relation: insert into %q: got %d values, want %d", rel, len(values), r.Arity())
	}
	v := make([]string, len(values))
	copy(v, values)
	t := Tuple{Relation: rel, Values: v}
	pos := len(in.tuples[rel])
	in.tuples[rel] = append(in.tuples[rel], t)
	idx := in.index[rel]
	if idx == nil {
		idx = make([]map[string][]int, r.Arity())
		for i := range idx {
			idx[i] = make(map[string][]int)
		}
		in.index[rel] = idx
	}
	for i, val := range t.Values {
		idx[i][val] = append(idx[i][val], pos)
	}
	return nil
}

func (in *boxedInstance) insertUnique(rel string, values ...string) (bool, error) {
	r := in.schema.Relation(rel)
	if r == nil || len(values) != r.Arity() {
		_, err := NewInstance(in.schema).validateInsert(rel, values)
		return false, err
	}
	if in.contains(rel, values) {
		return false, nil
	}
	return true, in.insert(rel, values...)
}

func (in *boxedInstance) contains(rel string, values []string) bool {
	if len(values) == 0 {
		return len(in.tuples[rel]) > 0
	}
	idx := in.index[rel]
	if idx == nil {
		return false
	}
	var bucket []int
	for a := range idx {
		positions := idx[a][values[a]]
		if len(positions) == 0 {
			return false
		}
		if bucket == nil || len(positions) < len(bucket) {
			bucket = positions
		}
	}
	ts := in.tuples[rel]
outer:
	for _, p := range bucket {
		for i, v := range ts[p].Values {
			if v != values[i] {
				continue outer
			}
		}
		return true
	}
	return false
}

func (in *boxedInstance) selectEq(rel string, attr int, value string) []Tuple {
	idx := in.index[rel]
	if idx == nil || attr < 0 || attr >= len(idx) {
		return nil
	}
	positions := idx[attr][value]
	if len(positions) == 0 {
		return nil
	}
	out := make([]Tuple, 0, len(positions))
	for _, p := range positions {
		out = append(out, in.tuples[rel][p])
	}
	return out
}

func (in *boxedInstance) selectAny(rel string, value string, domains map[string]bool) []Tuple {
	r := in.schema.Relation(rel)
	if r == nil {
		return nil
	}
	idx := in.index[rel]
	if idx == nil {
		return nil
	}
	seen := make(map[int]bool)
	var out []Tuple
	for a := 0; a < r.Arity(); a++ {
		if domains != nil && !domains[r.Attrs[a].Domain] {
			continue
		}
		for _, p := range idx[a][value] {
			if !seen[p] {
				seen[p] = true
				out = append(out, in.tuples[rel][p])
			}
		}
	}
	return out
}

func (in *boxedInstance) distinctValues(rel string, attr int) []string {
	idx := in.index[rel]
	if idx == nil || attr < 0 || attr >= len(idx) {
		return nil
	}
	out := make([]string, 0, len(idx[attr]))
	for v := range idx[attr] {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (in *boxedInstance) replaceValue(rel string, attr int, old, new string) int {
	idx := in.index[rel]
	if idx == nil || attr < 0 || attr >= len(idx) || old == new {
		return 0
	}
	positions := idx[attr][old]
	if len(positions) == 0 {
		return 0
	}
	for _, p := range positions {
		in.tuples[rel][p].Values[attr] = new
	}
	delete(idx[attr], old)
	idx[attr][new] = append(idx[attr][new], positions...)
	return len(positions)
}

func (in *boxedInstance) setValueAt(rel string, pos, attr int, value string) error {
	ts := in.tuples[rel]
	if pos < 0 || pos >= len(ts) {
		return fmt.Errorf("relation: SetValueAt %s: position %d out of range", rel, pos)
	}
	r := in.schema.Relation(rel)
	if attr < 0 || attr >= r.Arity() {
		return fmt.Errorf("relation: SetValueAt %s: attribute %d out of range", rel, attr)
	}
	old := ts[pos].Values[attr]
	if old == value {
		return nil
	}
	ts[pos].Values[attr] = value
	entry := in.index[rel][attr][old]
	for i, p := range entry {
		if p == pos {
			entry = append(entry[:i], entry[i+1:]...)
			break
		}
	}
	if len(entry) == 0 {
		delete(in.index[rel][attr], old)
	} else {
		in.index[rel][attr][old] = entry
	}
	in.index[rel][attr][value] = append(in.index[rel][attr][value], pos)
	return nil
}

// TestTupleKeyAdversarialSeparators is the regression test for the historic
// Key collision: joining values with "\x1f" let values containing the
// separator alias distinct tuples. The length-prefixed encoding must keep
// every pair of distinct tuples distinct, whatever bytes the values hold.
func TestTupleKeyAdversarialSeparators(t *testing.T) {
	tuples := []Tuple{
		NewTuple("r", "a\x1fb", "c"),
		NewTuple("r", "a", "b\x1fc"),
		NewTuple("r", "a", "b", "c"),
		NewTuple("r", "a\x1fb\x1fc"),
		NewTuple("r", "a\x1f", "b", "c"),
		NewTuple("r", "", "a\x1fb\x1fc"),
		NewTuple("r", "1:a", "b"),
		NewTuple("r", "1", ":ab"),
		NewTuple("r", "", ""),
		NewTuple("r", ""),
		NewTuple("r"),
		NewTuple("r", "2:a)b", ""),
		NewTuple("r", "2", ":a)b\x1f"),
	}
	keys := make(map[string]Tuple)
	for _, tp := range tuples {
		k := tp.Key()
		if prev, dup := keys[k]; dup {
			t.Fatalf("distinct tuples alias key %q: %#v vs %#v", k, prev, tp)
		}
		keys[k] = tp
	}
	// And equal tuples still share a key.
	if NewTuple("r", "a\x1fb", "c").Key() != NewTuple("r", "a\x1fb", "c").Key() {
		t.Fatal("identical tuples must share a key")
	}
}

// fuzzSchema is the differential-testing schema: a binary and a unary
// relation over overlapping domains, so SelectAny domain filters matter.
func fuzzSchema() *Schema {
	s := NewSchema()
	s.MustAdd(NewRelation("r", Attr("a", "d1"), Attr("b", "d2")))
	s.MustAdd(NewRelation("s", Attr("x", "d1")))
	return s
}

// fuzzValues is the value pool the fuzzer indexes into. It deliberately
// includes empty strings and separator bytes so the differential test
// exercises the adversarial cases the old string-keyed code mishandled.
var fuzzValues = []string{
	"", "a", "b", "c", "aa", "a\x1fb", "b\x1fc", "a\x1f", "\x1f", "1:a", ":", "<a|b>",
}

func fuzzVal(b byte) string { return fuzzValues[int(b)%len(fuzzValues)] }

// assertParity compares the complete observable state of the interned
// instance against the boxed reference: tuple lists (content and order),
// per-attribute index answers for every pool value (content and order),
// distinct values, duplicate probes, and counts.
func assertParity(t *testing.T, in *Instance, ref *boxedInstance) {
	t.Helper()
	for _, rel := range []string{"r", "s"} {
		got, want := in.Tuples(rel), ref.tuples[rel]
		if len(got) != len(want) {
			t.Fatalf("%s: %d tuples, reference has %d", rel, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s[%d] = %v, reference has %v", rel, i, got[i], want[i])
			}
		}
		if in.Count(rel) != len(want) {
			t.Fatalf("%s: Count = %d, want %d", rel, in.Count(rel), len(want))
		}
		arity := in.Schema().Relation(rel).Arity()
		for attr := 0; attr < arity; attr++ {
			for _, v := range fuzzValues {
				g, w := in.Select(rel, attr, v), ref.selectEq(rel, attr, v)
				if len(g) != len(w) {
					t.Fatalf("%s.Select(%d, %q): %d vs %d tuples", rel, attr, v, len(g), len(w))
				}
				for i := range w {
					if !g[i].Equal(w[i]) {
						t.Fatalf("%s.Select(%d, %q)[%d] = %v, want %v", rel, attr, v, i, g[i], w[i])
					}
				}
			}
			gd, wd := in.DistinctValues(rel, attr), ref.distinctValues(rel, attr)
			if len(gd) != len(wd) {
				t.Fatalf("%s.DistinctValues(%d): %v vs %v", rel, attr, gd, wd)
			}
			for i := range wd {
				if gd[i] != wd[i] {
					t.Fatalf("%s.DistinctValues(%d): %v vs %v", rel, attr, gd, wd)
				}
			}
		}
		for _, v := range fuzzValues {
			for _, domains := range []map[string]bool{nil, {"d1": true}, {"d2": true}} {
				g, w := in.SelectAny(rel, v, domains), ref.selectAny(rel, v, domains)
				if len(g) != len(w) {
					t.Fatalf("%s.SelectAny(%q, %v): %d vs %d tuples", rel, v, domains, len(g), len(w))
				}
				for i := range w {
					if !g[i].Equal(w[i]) {
						t.Fatalf("%s.SelectAny(%q, %v)[%d] = %v, want %v", rel, v, domains, i, g[i], w[i])
					}
				}
			}
		}
	}
	if in.TotalTuples() != len(ref.tuples["r"])+len(ref.tuples["s"]) {
		t.Fatalf("TotalTuples = %d, reference has %d", in.TotalTuples(), len(ref.tuples["r"])+len(ref.tuples["s"]))
	}
}

// FuzzInstanceParity drives random insert/insert-unique/rewrite sequences
// through the interned columnar Instance and the boxed reference in
// lockstep, asserting identical answers after every step and identical full
// state at the end. Every mutation result (insert errors, unique-probe
// outcomes, rewrite counts) must match too.
func FuzzInstanceParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{1, 5, 9, 2, 250, 13}, 20))
	f.Add([]byte("\x00\x05\x1f\x05\x1f\x02\x03\x04\x01\x02\x03\x04\x05\x06\x07"))
	f.Fuzz(func(t *testing.T, program []byte) {
		in := NewInstance(fuzzSchema())
		ref := newBoxedInstance(fuzzSchema())
		for i := 0; i+3 < len(program); i += 4 {
			op, x, y, z := program[i], program[i+1], program[i+2], program[i+3]
			switch op % 6 {
			case 0: // insert into r
				err1 := in.Insert("r", fuzzVal(x), fuzzVal(y))
				err2 := ref.insert("r", fuzzVal(x), fuzzVal(y))
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("Insert r: err %v vs %v", err1, err2)
				}
			case 1: // insert into s
				err1 := in.Insert("s", fuzzVal(x))
				err2 := ref.insert("s", fuzzVal(x))
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("Insert s: err %v vs %v", err1, err2)
				}
			case 2: // unique insert into r
				ok1, err1 := in.InsertUnique("r", fuzzVal(x), fuzzVal(y))
				ok2, err2 := ref.insertUnique("r", fuzzVal(x), fuzzVal(y))
				if ok1 != ok2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("InsertUnique r: (%v, %v) vs (%v, %v)", ok1, err1, ok2, err2)
				}
			case 3: // replace a value in r
				attr := int(z) % 2
				n1 := in.ReplaceValue("r", attr, fuzzVal(x), fuzzVal(y))
				n2 := ref.replaceValue("r", attr, fuzzVal(x), fuzzVal(y))
				if n1 != n2 {
					t.Fatalf("ReplaceValue r attr %d %q->%q: %d vs %d", attr, fuzzVal(x), fuzzVal(y), n1, n2)
				}
			case 4: // point rewrite in r (positions may be out of range)
				pos, attr := int(x)%8, int(z)%3-1
				err1 := in.SetValueAt("r", pos, attr, fuzzVal(y))
				err2 := ref.setValueAt("r", pos, attr, fuzzVal(y))
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("SetValueAt r %d/%d: err %v vs %v", pos, attr, err1, err2)
				}
			case 5: // clone and keep using the clone
				in = in.Clone()
			}
			assertParity(t, in, ref)
		}
		// Cloning at the end must preserve parity too.
		assertParity(t, in.Clone(), ref)
	})
}

// TestInstanceParityReplay runs the fuzz body over fixed adversarial
// programs so the differential check always executes under plain `go test`
// (fuzz corpora only run when fuzzing is requested explicitly).
func TestInstanceParityReplay(t *testing.T) {
	programs := [][]byte{
		bytes.Repeat([]byte{0, 5, 9, 1, 2, 5, 9, 0, 3, 5, 11, 0, 4, 1, 6, 1, 5, 0, 0, 0}, 6),
		[]byte("\x00\x05\x1f\x05\x1f\x02\x03\x04\x01\x02\x03\x04\x05\x06\x07\x08"),
		bytes.Repeat([]byte{2, 4, 4, 0, 3, 4, 7, 1, 0, 4, 4, 0}, 10),
	}
	for i, program := range programs {
		in := NewInstance(fuzzSchema())
		ref := newBoxedInstance(fuzzSchema())
		for j := 0; j+3 < len(program); j += 4 {
			op, x, y, z := program[j], program[j+1], program[j+2], program[j+3]
			switch op % 6 {
			case 0:
				_ = in.Insert("r", fuzzVal(x), fuzzVal(y))
				_ = ref.insert("r", fuzzVal(x), fuzzVal(y))
			case 1:
				_ = in.Insert("s", fuzzVal(x))
				_ = ref.insert("s", fuzzVal(x))
			case 2:
				_, _ = in.InsertUnique("r", fuzzVal(x), fuzzVal(y))
				_, _ = ref.insertUnique("r", fuzzVal(x), fuzzVal(y))
			case 3:
				attr := int(z) % 2
				if in.ReplaceValue("r", attr, fuzzVal(x), fuzzVal(y)) != ref.replaceValue("r", attr, fuzzVal(x), fuzzVal(y)) {
					t.Fatalf("program %d step %d: ReplaceValue diverged", i, j)
				}
			case 4:
				pos, attr := int(x)%8, int(z)%3-1
				_ = in.SetValueAt("r", pos, attr, fuzzVal(y))
				_ = ref.setValueAt("r", pos, attr, fuzzVal(y))
			case 5:
				in = in.Clone()
			}
			assertParity(t, in, ref)
		}
	}
}
