// Package bottomclause implements DLearn's bottom-clause construction
// (Algorithm 2 of the paper): starting from a training example, it collects
// the tuples connected to it through exact matches (over comparable
// attributes) and through similarity matches (guided by matching
// dependencies), and turns them into the most specific clause in the
// hypothesis space that covers the example. Similarity matches contribute
// similarity literals and MD repair literals; CFD violations among the
// collected tuples contribute CFD repair literals (Section 4.1).
package bottomclause

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dlearn/internal/constraints"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
	"dlearn/internal/similarity"
)

// MDMode selects how matching dependencies are used while collecting
// relevant tuples.
type MDMode int

const (
	// MDIgnore ignores MDs entirely (the Castor-NoMD baseline).
	MDIgnore MDMode = iota
	// MDExact uses MDs only to join their compared attributes with exact
	// matches (the Castor-Exact baseline).
	MDExact
	// MDSimilarity performs top-k_m similarity search along MDs and adds
	// similarity and repair literals (DLearn).
	MDSimilarity
)

// Config controls bottom-clause construction.
type Config struct {
	// Iterations is d, the number of expansion rounds of Algorithm 2.
	Iterations int
	// SampleSize caps the number of tuples (hence relation literals) added
	// to a bottom clause per relation. Zero means no cap.
	SampleSize int
	// KM is the number of top similar matches considered per probe value.
	KM int
	// SimilarityThreshold is the minimum combined similarity for ≈ to hold.
	SimilarityThreshold float64
	// MDMode selects how MDs are used.
	MDMode MDMode
	// UseCFDs adds repair literals for CFD violations among the collected
	// tuples.
	UseCFDs bool
	// Seed drives the deterministic sampling of tuples when SampleSize is
	// exceeded.
	Seed int64
}

// DefaultConfig mirrors the paper's experimental defaults (d per dataset,
// sample size 10, k_m provided per experiment).
func DefaultConfig() Config {
	return Config{
		Iterations:          3,
		SampleSize:          10,
		KM:                  5,
		SimilarityThreshold: 0.55,
		MDMode:              MDSimilarity,
		UseCFDs:             true,
	}
}

// Builder constructs (ground) bottom clauses for examples of a target
// relation over a fixed database instance.
type Builder struct {
	inst   *relation.Instance
	target *relation.Relation
	mds    []constraints.MD
	cfds   []constraints.CFD
	cfg    Config

	// simIndexes caches a similarity index per probed relation attribute.
	simIndexes map[relation.AttrRef]*similarity.Index
	simFunc    similarity.Func
}

// NewBuilder creates a builder. target describes the target relation (its
// attribute domains determine which database attributes the example's
// constants may join with); it does not need to be part of the instance
// schema. MDs may reference the target relation as well as database
// relations.
func NewBuilder(inst *relation.Instance, target *relation.Relation, mds []constraints.MD, cfds []constraints.CFD, cfg Config) *Builder {
	if cfg.Iterations <= 0 {
		cfg.Iterations = DefaultConfig().Iterations
	}
	if cfg.KM <= 0 {
		cfg.KM = DefaultConfig().KM
	}
	if cfg.SimilarityThreshold <= 0 {
		cfg.SimilarityThreshold = DefaultConfig().SimilarityThreshold
	}
	return &Builder{
		inst:       inst,
		target:     target,
		mds:        mds,
		cfds:       cfds,
		cfg:        cfg,
		simIndexes: make(map[relation.AttrRef]*similarity.Index),
		simFunc:    similarity.Default(),
	}
}

// Config returns the builder configuration.
func (b *Builder) Config() Config { return b.cfg }

// simMatch records one approximate match found through an MD: probe value c
// (from the MD's left side) matched value v in the right relation.
type simMatch struct {
	MD    constraints.MD
	Probe string
	Value string
	Score float64
}

// collection is the result of the relevant-tuple search for one example.
type collection struct {
	tuples     []relation.Tuple
	simMatches []simMatch
}

// BottomClause builds the variabilized bottom clause for the example: the
// most specific clause in the hypothesis space covering it (Section 4.1).
func (b *Builder) BottomClause(example relation.Tuple) (logic.Clause, error) {
	col, err := b.collect(example)
	if err != nil {
		return logic.Clause{}, err
	}
	return b.buildClause(example, col, false), nil
}

// GroundBottomClause builds the ground bottom clause used by coverage
// testing (Section 4.3): same structure, but database constants are kept.
func (b *Builder) GroundBottomClause(example relation.Tuple) (logic.Clause, error) {
	col, err := b.collect(example)
	if err != nil {
		return logic.Clause{}, err
	}
	return b.buildClause(example, col, true), nil
}

// collect implements the relevant-tuple search of Algorithm 2.
func (b *Builder) collect(example relation.Tuple) (collection, error) {
	if len(example.Values) != b.target.Arity() {
		return collection{}, fmt.Errorf("bottomclause: example arity %d does not match target %s", len(example.Values), b.target)
	}
	rng := rand.New(rand.NewSource(b.cfg.Seed ^ int64(hashString(seedKey(example)))))

	// M: known constants annotated with the domains they were seen in.
	m := make(map[string]map[string]bool)
	addConst := func(v, domain string) bool {
		if m[v] == nil {
			m[v] = make(map[string]bool)
		}
		if m[v][domain] {
			return false
		}
		m[v][domain] = true
		return true
	}
	for i, v := range example.Values {
		addConst(v, b.target.Attrs[i].Domain)
	}

	var col collection
	seenTuples := make(map[string]bool)
	seenMatches := make(map[string]bool)
	perRel := make(map[string]int)
	schema := b.inst.Schema()

	// Tuples are identified by their interned row IDs while collecting;
	// IDs are canonical per value within the instance, so ID-row equality
	// is exactly value equality. Rows are only materialized to strings
	// once they are actually added to the clause.
	var idScratch []uint32
	var keyScratch []byte
	addTuple := func(rel string, pos int) (relation.Tuple, bool) {
		idScratch = b.inst.RowIDs(idScratch[:0], rel, pos)
		keyScratch = append(keyScratch[:0], rel...)
		keyScratch = append(keyScratch, 0)
		keyScratch = appendIDKey(keyScratch, idScratch)
		key := string(keyScratch)
		if seenTuples[key] {
			return relation.Tuple{}, false
		}
		if b.cfg.SampleSize > 0 && perRel[rel] >= b.cfg.SampleSize {
			return relation.Tuple{}, false
		}
		seenTuples[key] = true
		perRel[rel]++
		t := b.inst.TupleAt(rel, pos)
		col.tuples = append(col.tuples, t)
		return t, true
	}

	mds := b.activeMDs()

	for iter := 0; iter < b.cfg.Iterations; iter++ {
		frontier := snapshotConstants(m)
		var added []relation.Tuple

		for _, relName := range schema.Names() {
			rel := schema.Relation(relName)
			var candidates []int

			// Exact selection over comparable attributes: σ_{A∈M}(R).
			for a := 0; a < rel.Arity(); a++ {
				domain := rel.Attrs[a].Domain
				for _, c := range frontier {
					if !m[c][domain] {
						continue
					}
					candidates = append(candidates, b.inst.SelectPositions(relName, a, c)...)
				}
			}

			// MD-guided search: ψ_{B≈M}(R) (similarity) or exact joins over
			// the MD's compared attributes, depending on the mode.
			for _, md := range mds {
				if md.RightRel != relName {
					continue
				}
				rIdx := md.RightAttrIndexes(schema)
				for k, pair := range md.Similar {
					leftDomain := b.attrDomain(md.LeftRel, pair.Left)
					ra := rIdx[k]
					if ra < 0 {
						continue
					}
					for _, c := range frontier {
						if !m[c][leftDomain] {
							continue
						}
						switch b.cfg.MDMode {
						case MDExact:
							candidates = append(candidates, b.inst.SelectPositions(relName, ra, c)...)
						case MDSimilarity:
							for _, match := range b.similar(relName, ra, c) {
								candidates = append(candidates, b.inst.SelectPositions(relName, ra, match.Value)...)
								if match.Value != c {
									key := md.Name + "\x1f" + c + "\x1f" + match.Value
									if !seenMatches[key] {
										seenMatches[key] = true
										col.simMatches = append(col.simMatches, simMatch{
											MD: md, Probe: c, Value: match.Value, Score: match.Score,
										})
									}
								}
							}
						}
					}
				}
			}

			candidates = b.dedupPositions(relName, candidates)
			// Respect the per-relation sample size by sampling the
			// candidates deterministically.
			if b.cfg.SampleSize > 0 {
				budget := b.cfg.SampleSize - perRel[relName]
				if budget <= 0 {
					continue
				}
				if len(candidates) > budget {
					rng.Shuffle(len(candidates), func(i, j int) {
						candidates[i], candidates[j] = candidates[j], candidates[i]
					})
					candidates = candidates[:budget]
				}
			}
			for _, p := range candidates {
				if t, ok := addTuple(relName, p); ok {
					added = append(added, t)
				}
			}
		}

		// Extract new constants from the tuples added this round.
		grew := false
		for _, t := range added {
			rel := schema.Relation(t.Relation)
			for a, v := range t.Values {
				if addConst(v, rel.Attrs[a].Domain) {
					grew = true
				}
			}
		}
		if !grew && len(added) == 0 {
			break
		}
	}
	// Keep matches only for probe/value pairs that actually appear in the
	// clause, and order everything deterministically.
	sort.SliceStable(col.simMatches, func(i, j int) bool {
		a, b := col.simMatches[i], col.simMatches[j]
		if a.MD.Name != b.MD.Name {
			return a.MD.Name < b.MD.Name
		}
		if a.Probe != b.Probe {
			return a.Probe < b.Probe
		}
		return a.Value < b.Value
	})
	return col, nil
}

// activeMDs returns the MDs in both orientations (similarity search may have
// to walk an MD from either side), excluding them entirely in MDIgnore mode.
func (b *Builder) activeMDs() []constraints.MD {
	if b.cfg.MDMode == MDIgnore {
		return nil
	}
	out := make([]constraints.MD, 0, 2*len(b.mds))
	for _, md := range b.mds {
		out = append(out, md, md.Reverse())
	}
	return out
}

// attrDomain returns the domain of an attribute of a database relation or of
// the target relation.
func (b *Builder) attrDomain(rel, attr string) string {
	if rel == b.target.Name {
		if i := b.target.AttrIndex(attr); i >= 0 {
			return b.target.Attrs[i].Domain
		}
		return ""
	}
	r := b.inst.Schema().Relation(rel)
	if r == nil {
		return ""
	}
	if i := r.AttrIndex(attr); i >= 0 {
		return r.Attrs[i].Domain
	}
	return ""
}

// similar returns the top-k_m values of the given relation attribute similar
// to the probe, using a cached blocked index.
func (b *Builder) similar(rel string, attr int, probe string) []similarity.Match {
	ref := relation.AttrRef{Relation: rel, Attr: attr}
	idx, ok := b.simIndexes[ref]
	if !ok {
		idx = similarity.NewIndex(b.inst.DistinctValues(rel, attr), b.simFunc, b.cfg.SimilarityThreshold)
		b.simIndexes[ref] = idx
	}
	return idx.TopK(probe, b.cfg.KM)
}

func snapshotConstants(m map[string]map[string]bool) []string {
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// dedupPositions removes rows with identical values (not merely identical
// positions) from a candidate position list of one relation, keeping the
// first occurrence. Rows are compared by their interned ID vectors.
func (b *Builder) dedupPositions(rel string, ps []int) []int {
	seen := make(map[string]bool, len(ps))
	var ids []uint32
	var key []byte
	out := ps[:0]
	for _, p := range ps {
		ids = b.inst.RowIDs(ids[:0], rel, p)
		key = appendIDKey(key[:0], ids)
		k := string(key)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

// appendIDKey appends the little-endian bytes of the IDs to dst, forming a
// collision-free map key for a row of interned values.
func appendIDKey(dst []byte, ids []uint32) []byte {
	for _, id := range ids {
		dst = append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return dst
}

// seedKey renders the example in the historical tuple-key format the
// sampling rng has always been seeded from. relation.Tuple.Key moved to a
// collision-free length-prefixed encoding; the seed string stays on the old
// rendering so sampled bottom clauses — and hence learned definitions — are
// reproducible across releases. A seed needs determinism, not injectivity.
func seedKey(t relation.Tuple) string {
	return t.Relation + "(" + strings.Join(t.Values, "\x1f") + ")"
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
