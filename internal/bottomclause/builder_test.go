package bottomclause

import (
	"testing"

	"dlearn/internal/constraints"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
	"dlearn/internal/repair"
	"dlearn/internal/subsumption"
)

// paperDatabase builds the example movie database of Table 2 plus a BOM-style
// relation so the MD of Example 4.1 applies.
func paperDatabase() (*relation.Instance, *relation.Relation, []constraints.MD, []constraints.CFD) {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("movies",
		relation.Attr("id", "imdb_id"), relation.Attr("title", "imdb_title"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("mov2genres",
		relation.Attr("id", "imdb_id"), relation.Attr("genre", "genre")))
	s.MustAdd(relation.NewRelation("mov2countries",
		relation.Attr("id", "imdb_id"), relation.Attr("cid", "country_id")))
	s.MustAdd(relation.NewRelation("countries",
		relation.Attr("cid", "country_id"), relation.Attr("name", "country")))
	s.MustAdd(relation.NewRelation("englishMovies",
		relation.Attr("id", "imdb_id")))
	s.MustAdd(relation.NewRelation("mov2releasedate",
		relation.Attr("id", "imdb_id"), relation.Attr("month", "month"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("mov2locale",
		relation.Attr("title", "imdb_title"), relation.Attr("language", "language"), relation.Attr("country", "country")))

	in := relation.NewInstance(s)
	in.MustInsert("movies", "m1", "Superbad (2007)", "2007")
	in.MustInsert("movies", "m2", "Zoolander (2001)", "2001")
	in.MustInsert("movies", "m3", "Orphanage (2007)", "2007")
	in.MustInsert("mov2genres", "m1", "comedy")
	in.MustInsert("mov2genres", "m2", "comedy")
	in.MustInsert("mov2genres", "m3", "drama")
	in.MustInsert("mov2countries", "m1", "c1")
	in.MustInsert("mov2countries", "m2", "c1")
	in.MustInsert("mov2countries", "m3", "c2")
	in.MustInsert("countries", "c1", "USA")
	in.MustInsert("countries", "c2", "Spain")
	in.MustInsert("englishMovies", "m1")
	in.MustInsert("englishMovies", "m2")
	in.MustInsert("mov2releasedate", "m1", "August", "2007")
	in.MustInsert("mov2releasedate", "m2", "September", "2001")
	// CFD violation material: same title + English, two countries.
	in.MustInsert("mov2locale", "Superbad (2007)", "English", "USA")
	in.MustInsert("mov2locale", "Superbad (2007)", "English", "Ireland")

	// Target relation: highGrossing(title) with BOM-style titles.
	target := relation.NewRelation("highGrossing", relation.Attr("title", "bom_title"))

	md := constraints.SimpleMD("md_title", "highGrossing", "title", "movies", "title")
	cfd := constraints.NewCFD("cfd_locale", "mov2locale", []string{"title", "language"}, "country",
		map[string]string{"language": "English"})
	return in, target, []constraints.MD{md}, []constraints.CFD{cfd}
}

func defaultBuilder(mode MDMode, useCFDs bool) (*Builder, relation.Tuple) {
	in, target, mds, cfds := paperDatabase()
	cfg := DefaultConfig()
	cfg.MDMode = mode
	cfg.UseCFDs = useCFDs
	cfg.Iterations = 3
	cfg.SampleSize = 20
	b := NewBuilder(in, target, mds, cfds, cfg)
	return b, relation.NewTuple("highGrossing", "Superbad")
}

func bodyPreds(c logic.Clause) map[string]int {
	out := make(map[string]int)
	for _, l := range c.Body {
		if l.IsRelation() {
			out[l.Pred]++
		}
	}
	return out
}

func TestBottomClauseExample41(t *testing.T) {
	b, e := defaultBuilder(MDSimilarity, false)
	c, err := b.BottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	preds := bodyPreds(c)
	// The relevant tuples of Example 4.1: movies, mov2genres, mov2countries,
	// countries, englishMovies, mov2releasedate for m1 must all be reached.
	for _, want := range []string{"movies", "mov2genres", "mov2countries", "countries", "englishMovies", "mov2releasedate"} {
		if preds[want] == 0 {
			t.Errorf("bottom clause misses relation %s: %v", want, c)
		}
	}
	if c.Head.Pred != "highGrossing" || len(c.Head.Args) != 1 || !c.Head.Args[0].IsVar() {
		t.Errorf("head should be highGrossing(var): %v", c.Head)
	}
	// The approximate title match must contribute a similarity literal and
	// an MD repair group.
	simCount, repairCount := 0, 0
	for _, l := range c.Body {
		if l.Kind == logic.SimilarityLit {
			simCount++
		}
		if l.IsRepair() && l.Origin == logic.OriginMD {
			repairCount++
		}
	}
	if simCount == 0 || repairCount < 2 {
		t.Errorf("expected similarity and MD repair literals, got sim=%d repair=%d", simCount, repairCount)
	}
}

func TestBottomClauseCoversItsExample(t *testing.T) {
	// Proposition 4.3: the bottom clause covers the example it was built
	// for, i.e. it θ-subsumes its own ground bottom clause — both in the
	// MD-only configuration and with CFD repair literals.
	for _, useCFDs := range []bool{false, true} {
		b, e := defaultBuilder(MDSimilarity, useCFDs)
		c, err := b.BottomClause(e)
		if err != nil {
			t.Fatal(err)
		}
		g, err := b.GroundBottomClause(e)
		if err != nil {
			t.Fatal(err)
		}
		ch := subsumption.New(subsumption.Options{})
		if ok, _ := ch.Subsumes(c, g); !ok {
			t.Fatalf("bottom clause (useCFDs=%v) does not cover its own example:\nC = %v\nG = %v", useCFDs, c, g)
		}
	}
}

func TestBottomClauseNoMDMode(t *testing.T) {
	b, e := defaultBuilder(MDIgnore, false)
	c, err := b.BottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	// Without MDs the BOM-style title cannot reach the IMDB-side relations.
	preds := bodyPreds(c)
	if len(preds) != 0 {
		t.Errorf("Castor-NoMD should find no connected tuples for a heterogeneous title, got %v", preds)
	}
	for _, l := range c.Body {
		if l.Kind == logic.SimilarityLit || l.IsRepair() {
			t.Errorf("MDIgnore must not add similarity or repair literals: %v", l)
		}
	}
}

func TestBottomClauseExactMDMode(t *testing.T) {
	in, target, mds, cfds := paperDatabase()
	cfg := DefaultConfig()
	cfg.MDMode = MDExact
	cfg.UseCFDs = false
	cfg.SampleSize = 20
	b := NewBuilder(in, target, mds, cfds, cfg)

	// A heterogeneous title finds nothing through exact joins...
	c, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	if got := bodyPreds(c); len(got) != 0 {
		t.Errorf("exact-join mode should not reach reformatted titles, got %v", got)
	}
	// ...but an exactly matching title does.
	c2, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad (2007)"))
	if err != nil {
		t.Fatal(err)
	}
	if got := bodyPreds(c2); got["movies"] == 0 {
		t.Errorf("exact-join mode should reach exactly matching titles, got %v", got)
	}
	// Exact mode never introduces similarity or repair literals.
	for _, l := range c2.Body {
		if l.Kind == logic.SimilarityLit || l.IsRepair() {
			t.Errorf("MDExact must not add similarity or repair literals: %v", l)
		}
	}
}

func TestGroundBottomClauseKeepsConstants(t *testing.T) {
	// Without CFDs the ground bottom clause is fully ground. (With CFDs the
	// occurrences split for a violation become variables tied to their
	// constant with equality literals, per Section 3.2.)
	b, e := defaultBuilder(MDSimilarity, false)
	g, err := b.GroundBottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	if g.Head.Args[0] != logic.Const("Superbad") {
		t.Errorf("ground head should keep the example constant, got %v", g.Head)
	}
	for _, l := range g.Body {
		if !l.IsRelation() {
			continue
		}
		for _, a := range l.Args {
			if a.IsVar() {
				t.Fatalf("ground bottom clause contains a variable in a relation literal: %v", l)
			}
		}
	}
	// With CFDs, split occurrences must be anchored to their constant.
	b2, _ := defaultBuilder(MDSimilarity, true)
	g2, err := b2.GroundBottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	anchored := 0
	for _, l := range g2.Body {
		if l.Kind == logic.EqualityLit && l.Args[0].IsVar() != l.Args[1].IsVar() {
			anchored++
		}
	}
	if anchored < 2 {
		t.Errorf("split occurrences should be anchored to constants with equality literals, found %d", anchored)
	}
}

func TestBottomClauseCFDRepairLiterals(t *testing.T) {
	b, e := defaultBuilder(MDSimilarity, true)
	c, err := b.BottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	var cfdRepairs, inducedEq int
	for _, l := range c.Body {
		if l.IsRepair() && l.Origin == logic.OriginCFD {
			cfdRepairs++
		}
		if l.Kind == logic.EqualityLit && l.Induced {
			inducedEq++
		}
	}
	if cfdRepairs != 4 {
		t.Errorf("one CFD violation should add 4 alternative repair literals, got %d", cfdRepairs)
	}
	if inducedEq != 3 {
		t.Errorf("splitting both LHS occurrences should add 3 induced equalities, got %d", inducedEq)
	}
	// Expanding the bottom clause must produce only CFD-repaired variants:
	// no repaired clause may keep two mov2locale literals that agree on the
	// (unsplit) title variable but disagree on country.
	for _, rc := range repair.RepairedClauses(c, repair.Options{}) {
		if rc.HasRepairLiterals() {
			t.Fatalf("unrepaired clause returned: %v", rc)
		}
	}
	// Without CFDs, no CFD repair literals are added.
	b2, _ := defaultBuilder(MDSimilarity, false)
	c2, err := b2.BottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range c2.Body {
		if l.IsRepair() && l.Origin == logic.OriginCFD {
			t.Fatalf("UseCFDs=false must not add CFD repair literals")
		}
	}
}

func TestBottomClauseSampleSizeCap(t *testing.T) {
	in, target, mds, cfds := paperDatabase()
	cfg := DefaultConfig()
	cfg.SampleSize = 1
	cfg.MDMode = MDSimilarity
	b := NewBuilder(in, target, mds, cfds, cfg)
	c, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	for pred, n := range bodyPreds(c) {
		if n > 1 {
			t.Errorf("sample size 1 exceeded for relation %s: %d literals", pred, n)
		}
	}
}

func TestBottomClauseDeterministic(t *testing.T) {
	b1, e := defaultBuilder(MDSimilarity, true)
	b2, _ := defaultBuilder(MDSimilarity, true)
	c1, err := b1.BottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := b2.BottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Key() != c2.Key() {
		t.Errorf("bottom-clause construction should be deterministic:\n%v\n%v", c1, c2)
	}
}

func TestBottomClauseIterationDepth(t *testing.T) {
	// With d=1 only directly connected tuples (via the MD similarity match)
	// are reached; countries(c1, USA) needs a second hop via mov2countries.
	in, target, mds, cfds := paperDatabase()
	cfg := DefaultConfig()
	cfg.Iterations = 1
	cfg.SampleSize = 20
	b := NewBuilder(in, target, mds, cfds, cfg)
	c, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	preds := bodyPreds(c)
	if preds["countries"] != 0 {
		t.Errorf("countries should not be reachable with d=1, got %v", preds)
	}
	cfg.Iterations = 3
	b3 := NewBuilder(in, target, mds, cfds, cfg)
	c3, err := b3.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	if bodyPreds(c3)["countries"] == 0 {
		t.Errorf("countries should be reachable with d=3, got %v", bodyPreds(c3))
	}
}

func TestBottomClauseArityMismatch(t *testing.T) {
	b, _ := defaultBuilder(MDSimilarity, false)
	if _, err := b.BottomClause(relation.NewTuple("highGrossing", "a", "b")); err == nil {
		t.Fatal("example arity mismatch must be rejected")
	}
}

func TestBottomClauseHeadConnectedAfterPruning(t *testing.T) {
	// Every literal of the bottom clause must be head-connected once pruned;
	// construction should not produce unreachable islands.
	b, e := defaultBuilder(MDSimilarity, true)
	c, err := b.BottomClause(e)
	if err != nil {
		t.Fatal(err)
	}
	pruned := c.PruneUnconnected()
	if got, want := len(pruned.Body), len(c.Body); got != want {
		t.Errorf("bottom clause contains %d unconnected literals", want-got)
	}
}
