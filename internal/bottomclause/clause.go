package bottomclause

import (
	"fmt"

	"dlearn/internal/constraints"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
)

// buildClause turns the collected tuples and similarity matches into the
// (ground) bottom clause of the example.
func (b *Builder) buildClause(example relation.Tuple, col collection, ground bool) logic.Clause {
	vc := logic.NewVarCounter("v")
	fresh := logic.NewVarCounter("f")

	// term maps a database constant to its clause term: the constant itself
	// for ground clauses and for values of Constant attributes (the ILP
	// mode-declaration analogue), a clause variable otherwise (one variable
	// per constant, as in Section 4.1).
	varOf := make(map[string]logic.Term)
	term := func(c string, constant bool) logic.Term {
		if ground || constant {
			return logic.Const(c)
		}
		if t, ok := varOf[c]; ok {
			return t
		}
		t := vc.Fresh()
		varOf[c] = t
		return t
	}

	// Head literal.
	headArgs := make([]logic.Term, len(example.Values))
	for i, v := range example.Values {
		headArgs[i] = term(v, b.target.Attrs[i].Constant)
	}
	clause := logic.Clause{Head: logic.Rel(b.target.Name, headArgs...)}

	// Similarity literals and MD repair groups (Section 3.2): for each
	// approximate match probe ≈ value, add probe ≈ value, V(probe, f1),
	// V(value, f2) and f1 = f2 under the condition probe ≈ value. These are
	// emitted before the relation literals so that, during generalization,
	// clause prefixes already carry the similarity join constraints when the
	// relation literals are considered (the blocking-literal test of
	// Section 4.2 examines prefixes in body order).
	if b.cfg.MDMode == MDSimilarity {
		for i, sm := range col.simMatches {
			pt, vt := term(sm.Probe, false), term(sm.Value, false)
			cond := logic.Condition{Op: logic.CondSim, L: pt, R: vt}
			group := fmt.Sprintf("%s#%d", sm.MD.Name, i)
			f1, f2 := fresh.Fresh(), fresh.Fresh()
			clause.Body = append(clause.Body,
				logic.Sim(pt, vt),
				logic.RepairInGroup(sm.MD.Name, group, logic.OriginMD, pt, f1, cond),
				logic.RepairInGroup(sm.MD.Name, group, logic.OriginMD, vt, f2, cond),
				logic.Eq(f1, f2),
			)
		}
	}

	// Relation literals, one per collected tuple. Remember, per relation,
	// the body index and term list of each literal so CFD violations can be
	// located afterwards.
	schema := b.inst.Schema()
	type bodyLit struct {
		index int
		tuple relation.Tuple
	}
	byRel := make(map[string][]bodyLit)
	for _, t := range col.tuples {
		rel := schema.Relation(t.Relation)
		args := make([]logic.Term, len(t.Values))
		for i, v := range t.Values {
			args[i] = term(v, rel.Attrs[i].Constant)
		}
		clause.Body = append(clause.Body, logic.Rel(t.Relation, args...))
		byRel[t.Relation] = append(byRel[t.Relation], bodyLit{index: len(clause.Body) - 1, tuple: t})
	}

	// CFD repair groups (Section 4.1): for every pair of collected tuples of
	// one relation that violate a CFD, add the four alternative repair
	// groups — break either left-hand-side occurrence with a fresh variable,
	// or unify the right-hand side in either direction (the minimal-repair
	// form that reuses existing variables).
	if b.cfg.UseCFDs {
		violationID := 0
		for _, cfd := range b.cfds {
			lits := byRel[cfd.Relation]
			if len(lits) < 2 {
				continue
			}
			lhs := cfd.LHSIndexes(schema)
			rhs := cfd.RHSIndex(schema)
			if rhs < 0 || len(lhs) == 0 {
				continue
			}
			valid := true
			for _, i := range lhs {
				if i < 0 {
					valid = false
				}
			}
			if !valid {
				continue
			}
			for i := 0; i < len(lits); i++ {
				for j := i + 1; j < len(lits); j++ {
					t1, t2 := lits[i].tuple, lits[j].tuple
					if !cfd.TupleViolates(schema, t1, t2) {
						continue
					}
					if t1.Values[rhs] == t2.Values[rhs] {
						// Constant-pattern-only violation; value modification
						// to the pattern constant is handled at the instance
						// level, not with clause repair literals.
						continue
					}
					b.addCFDViolation(&clause, cfd, lits[i].index, lits[j].index, lhs[0], rhs, ground, fresh, violationID)
					violationID++
				}
			}
		}
	}

	return clause
}

// addCFDViolation appends the repair machinery for one CFD violation between
// the body literals at indices li and lj. Following Section 3.2, the
// occurrence of the shared left-hand-side term in each violating literal is
// first replaced by a fresh variable linked back with induced equality
// literals, so that a repair can modify one occurrence without touching the
// others. Four alternative repair groups are then added: break either LHS
// occurrence with a fresh value, or unify the RHS values in either
// direction (the minimal-repair form that reuses existing variables).
func (b *Builder) addCFDViolation(clause *logic.Clause, cfd constraints.CFD, li, lj, lhsPos, rhsPos int, ground bool, fresh *logic.VarCounter, violationID int) {
	l1, l2 := clause.Body[li], clause.Body[lj]
	orig1 := l1.Args[lhsPos]
	orig2 := l2.Args[lhsPos]
	z := l1.Args[rhsPos]
	t := l2.Args[rhsPos]

	// Split the LHS occurrences: each violating literal gets its own fresh
	// variable for the shared value, tied to the original term (a variable
	// in variabilized clauses, the constant itself in ground clauses) with
	// induced equality literals.
	x1 := fresh.Fresh()
	x2 := fresh.Fresh()
	l1.Args[lhsPos] = x1
	l2.Args[lhsPos] = x2
	clause.Body[li] = l1
	clause.Body[lj] = l2
	clause.Body = append(clause.Body,
		logic.InducedEq(x1, orig1),
		logic.InducedEq(x2, orig2),
		logic.InducedEq(x1, x2),
	)

	cond := []logic.Condition{
		{Op: logic.CondEq, L: x1, R: x2},
		{Op: logic.CondNeq, L: z, R: t},
	}
	mk := func(kind string) string {
		return fmt.Sprintf("%s#%d#%s", cfd.Name, violationID, kind)
	}

	// Alternative 1 and 2: modify one of the LHS occurrences to a fresh
	// value, breaking the agreement.
	f1 := fresh.Fresh()
	clause.Body = append(clause.Body,
		logic.RepairInGroup(cfd.Name, mk("lhs1"), logic.OriginCFD, x1, f1, cond...),
		logic.Neq(f1, x2),
	)
	f2 := fresh.Fresh()
	clause.Body = append(clause.Body,
		logic.RepairInGroup(cfd.Name, mk("lhs2"), logic.OriginCFD, x2, f2, cond...),
		logic.Neq(f2, x1),
	)
	// Alternative 3 and 4: unify the RHS values (minimal repair reusing the
	// existing terms, Section 4.1).
	clause.Body = append(clause.Body,
		logic.RepairInGroup(cfd.Name, mk("rhs1"), logic.OriginCFD, z, t, cond...),
		logic.RepairInGroup(cfd.Name, mk("rhs2"), logic.OriginCFD, t, z, cond...),
	)
	_ = ground
}
