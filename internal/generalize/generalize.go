// Package generalize implements DLearn's generalization step (Section 4.2):
// the asymmetric relative minimal generalization of ProGolem adapted to
// clauses with repair literals. A clause is generalized to cover an
// additional positive example by removing its blocking literals with respect
// to that example's ground bottom clause; head-connectivity is restored and
// repair literals whose only connection to the head ran through a removed
// literal are dropped together with it.
package generalize

import (
	"dlearn/internal/logic"
)

// CoverFunc decides whether a clause covers the example represented by a
// ground bottom clause. The learner supplies the Section 4.3 positive
// coverage test.
type CoverFunc func(c, ground logic.Clause) bool

// Generalizer produces minimal generalizations of clauses.
type Generalizer struct {
	covers CoverFunc
	// MaxRemovals caps the number of literals removed in a single
	// generalization call, as a safety valve on malformed inputs. Zero
	// means the clause length.
	MaxRemovals int
}

// New returns a generalizer that uses the given coverage test.
func New(covers CoverFunc) *Generalizer { return &Generalizer{covers: covers} }

// Generalize returns a clause that θ-subsumes c and covers the example whose
// ground bottom clause is ge, by removing the blocking literals of c with
// respect to ge: scanning the body in order, a literal is kept only if the
// clause prefix including it still covers the example; blocking literals are
// dropped (Section 4.2). Because dropping a literal never invalidates the
// coverage of the prefix before it, a single left-to-right pass removes
// exactly the blocking literals. If even the bare head cannot cover the
// example the input clause is returned unchanged along with false.
func (g *Generalizer) Generalize(c, ge logic.Clause) (logic.Clause, bool) {
	if c.Head.Pred != ge.Head.Pred || len(c.Head.Args) != len(ge.Head.Args) {
		return c, false
	}
	// The empty-bodied clause must cover the example; otherwise dropping
	// body literals can never help.
	if !g.covers(logic.Clause{Head: c.Head.Clone()}, ge) {
		return c, false
	}
	if g.covers(c, ge) {
		return c.Clone(), true
	}
	limit := g.MaxRemovals
	removed := 0
	kept := logic.Clause{Head: c.Head.Clone()}
	for i := range c.Body {
		if limit > 0 && removed >= limit {
			// Safety valve: keep the remaining literals untested.
			kept.Body = append(kept.Body, c.Body[i].Clone())
			continue
		}
		kept.Body = append(kept.Body, c.Body[i].Clone())
		// Only head-connected prefixes are meaningful hypotheses; prune the
		// unconnected tail when testing.
		if !g.covers(kept.PruneUnconnected(), ge) {
			kept.Body = kept.Body[:len(kept.Body)-1]
			removed++
		}
	}
	// Removing literals can disconnect others from the head (including
	// repair literals whose only connection ran through a removed literal);
	// prune them so the clause stays head-connected (Section 4.2).
	out := kept.PruneUnconnected()
	return out, g.covers(out, ge)
}

// GeneralizeAll applies Generalize for each ground bottom clause in turn,
// producing one candidate per example. Candidates that could not be made to
// cover their example are skipped.
func (g *Generalizer) GeneralizeAll(c logic.Clause, grounds []logic.Clause) []logic.Clause {
	var out []logic.Clause
	for _, ge := range grounds {
		if cand, ok := g.Generalize(c, ge); ok {
			out = append(out, cand)
		}
	}
	return out
}
