package generalize

import (
	"testing"

	"dlearn/internal/bottomclause"
	"dlearn/internal/constraints"
	"dlearn/internal/coverage"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
	"dlearn/internal/subsumption"
)

// paperDB is the movie database of Table 2 with a BOM-style target.
func paperDB() (*bottomclause.Builder, *coverage.Evaluator) {
	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("movies",
		relation.Attr("id", "imdb_id"), relation.Attr("title", "imdb_title"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("mov2genres",
		relation.Attr("id", "imdb_id"), relation.ConstAttr("genre", "genre")))
	s.MustAdd(relation.NewRelation("mov2releasedate",
		relation.Attr("id", "imdb_id"), relation.ConstAttr("month", "month"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("englishMovies", relation.Attr("id", "imdb_id")))

	in := relation.NewInstance(s)
	in.MustInsert("movies", "m1", "Superbad (2007)", "2007")
	in.MustInsert("movies", "m2", "Zoolander (2001)", "2001")
	in.MustInsert("movies", "m3", "Orphanage (2007)", "2007")
	in.MustInsert("mov2genres", "m1", "comedy")
	in.MustInsert("mov2genres", "m2", "comedy")
	in.MustInsert("mov2genres", "m3", "drama")
	in.MustInsert("mov2releasedate", "m1", "August", "2007")
	in.MustInsert("mov2releasedate", "m2", "September", "2001")
	in.MustInsert("englishMovies", "m1")
	in.MustInsert("englishMovies", "m2")

	target := relation.NewRelation("highGrossing", relation.Attr("title", "bom_title"))
	md := constraints.SimpleMD("md_title", "highGrossing", "title", "movies", "title")
	cfg := bottomclause.DefaultConfig()
	cfg.SampleSize = 20
	cfg.UseCFDs = false
	b := bottomclause.NewBuilder(in, target, []constraints.MD{md}, nil, cfg)
	ev := coverage.NewEvaluator(coverage.Options{Threads: 1})
	return b, ev
}

func TestGeneralizeExample47(t *testing.T) {
	// Example 4.7: generalizing the Superbad bottom clause to cover
	// Zoolander drops the August release-date literal (Zoolander was
	// released in September), while the comedy literal survives.
	b, ev := paperDB()
	g := New(ev.CoversPositive)

	bottom, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	gz, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Zoolander"))
	if err != nil {
		t.Fatal(err)
	}
	out, ok := g.Generalize(bottom, gz)
	if !ok {
		t.Fatalf("generalization failed: %v", out)
	}
	if !ev.CoversPositive(out, gz) {
		t.Fatal("generalized clause does not cover the new example")
	}
	var hasAugust, hasComedy bool
	for _, l := range out.Body {
		for _, a := range l.Args {
			if a == logic.Const("August") {
				hasAugust = true
			}
			if a == logic.Const("comedy") {
				hasComedy = true
			}
		}
	}
	if hasAugust {
		t.Error("blocking literal mov2releasedate(…, August, …) should have been removed")
	}
	if !hasComedy {
		t.Error("the shared comedy literal should survive generalization")
	}
	// The original example must still be covered (generalization only
	// drops literals, Theorem 4.6 soundness).
	gs, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.CoversPositive(out, gs) {
		t.Error("generalized clause no longer covers the seed example")
	}
}

func TestGeneralizeProducesSubsumingClause(t *testing.T) {
	// The generalization must θ-subsume the original clause (it is obtained
	// by dropping literals), giving the soundness direction of Prop. 4.8.
	b, ev := paperDB()
	g := New(ev.CoversPositive)
	ch := subsumption.New(subsumption.Options{})

	bottom, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	gz, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Zoolander"))
	if err != nil {
		t.Fatal(err)
	}
	out, ok := g.Generalize(bottom, gz)
	if !ok {
		t.Fatal("generalization failed")
	}
	if sub, _ := ch.Subsumes(out, bottom); !sub {
		t.Error("generalization must θ-subsume the clause it was derived from")
	}
	if out.Length() >= bottom.Length() {
		t.Error("generalization should have removed at least one literal")
	}
}

func TestGeneralizeUncoverableExample(t *testing.T) {
	// An example whose title matches nothing cannot be covered; the
	// generalizer reports failure and leaves the clause intact when even
	// the head cannot cover, or returns the maximally generalized clause.
	b, ev := paperDB()
	g := New(ev.CoversPositive)
	bottom, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	// Head-arity mismatch is rejected outright.
	bad := logic.NewClause(logic.Rel("otherTarget", logic.Var("x")))
	if _, ok := g.Generalize(bottom, bad); ok {
		t.Error("mismatched heads must not generalize")
	}
	// A completely unrelated example: the bare head covers it (it has no
	// body), so generalization succeeds by dropping everything relevant.
	gUnknown, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Completely Unknown"))
	if err != nil {
		t.Fatal(err)
	}
	out, ok := g.Generalize(bottom, gUnknown)
	if !ok {
		t.Fatal("generalizing toward an empty ground clause should succeed (empty body covers it)")
	}
	if !ev.CoversPositive(out, gUnknown) {
		t.Error("result does not cover the new example")
	}
}

func TestGeneralizeAll(t *testing.T) {
	b, ev := paperDB()
	g := New(ev.CoversPositive)
	bottom, err := b.BottomClause(relation.NewTuple("highGrossing", "Superbad"))
	if err != nil {
		t.Fatal(err)
	}
	var grounds []logic.Clause
	for _, title := range []string{"Zoolander", "Orphanage"} {
		ge, err := b.GroundBottomClause(relation.NewTuple("highGrossing", title))
		if err != nil {
			t.Fatal(err)
		}
		grounds = append(grounds, ge)
	}
	cands := g.GeneralizeAll(bottom, grounds)
	if len(cands) != 2 {
		t.Fatalf("expected 2 candidates, got %d", len(cands))
	}
	for i, c := range cands {
		if !ev.CoversPositive(c, grounds[i]) {
			t.Errorf("candidate %d does not cover its example", i)
		}
	}
}

func TestGeneralizeAlreadyCovering(t *testing.T) {
	// A clause that already covers the example is returned unchanged.
	b, ev := paperDB()
	g := New(ev.CoversPositive)
	c := logic.NewClause(
		logic.Rel("highGrossing", logic.Var("x")),
	)
	gz, err := b.GroundBottomClause(relation.NewTuple("highGrossing", "Zoolander"))
	if err != nil {
		t.Fatal(err)
	}
	out, ok := g.Generalize(c, gz)
	if !ok || out.Length() != 0 {
		t.Fatalf("covering clause should be returned unchanged, got %v (%v)", out, ok)
	}
}
