package datagen

import "math/rand"

// newTestRand returns a deterministic rand source for helper tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
