package datagen

import (
	"fmt"
	"math/rand"

	"dlearn/internal/constraints"
	"dlearn/internal/core"
	"dlearn/internal/relation"
)

// MoviesConfig configures the IMDB+OMDB generator.
type MoviesConfig struct {
	// Movies is the number of distinct movies shared by the two sources.
	Movies int
	// MDCount selects how many MDs relate the sources: 1 (titles only) or 3
	// (titles, cast members, writers), matching the paper's two variants.
	MDCount int
	// ViolationRate is p, the fraction of entities whose tuples violate a
	// CFD (injected as duplicated tuples with conflicting values).
	ViolationRate float64
	// ExactTitleRate is the fraction of movies whose titles are represented
	// identically in both sources (gives Castor-Exact partial signal).
	ExactTitleRate float64
	// ExactNameRate is the fraction of cast/writer names represented
	// identically (the paper notes these MDs contain many exact matches).
	ExactNameRate float64
	// Positives / Negatives are the numbers of labelled examples to emit.
	Positives, Negatives int
	// Scale multiplies the entity count (0 or 1 = base scale). It exists for
	// the scale-up benchmark: -scale 10 generates 10x the movies (and so
	// roughly 10x the tuples) under the same seed, deterministically.
	Scale int
	// Seed drives all random choices.
	Seed int64
}

// DefaultMoviesConfig returns a laptop-scale configuration of the
// IMDB+OMDB dataset with the paper's example counts (100 positive / 200
// negative).
func DefaultMoviesConfig() MoviesConfig {
	return MoviesConfig{
		Movies:         600,
		MDCount:        1,
		ViolationRate:  0,
		ExactTitleRate: 0.25,
		ExactNameRate:  0.7,
		Positives:      100,
		Negatives:      200,
		Seed:           7,
	}
}

// Movies generates the IMDB+OMDB dataset: the target relation
// dramaRestrictedMovies(imdbId) holds for movies whose IMDB genre list
// contains Drama and whose OMDB rating is R. The rating lives only in OMDB,
// so the concept is learnable only by joining the sources through the title
// (or cast/writer) MDs.
func Movies(cfg MoviesConfig) (*Dataset, error) {
	if cfg.Movies <= 0 {
		return nil, fmt.Errorf("datagen: Movies requires a positive movie count")
	}
	if cfg.MDCount != 1 && cfg.MDCount != 3 {
		return nil, fmt.Errorf("datagen: MDCount must be 1 or 3, got %d", cfg.MDCount)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inj := violationInjector{rng: rng, rate: cfg.ViolationRate}

	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("imdb_movies",
		relation.Attr("id", "imdb_id"), relation.Attr("title", "imdb_title"), relation.ConstAttr("year", "year")))
	s.MustAdd(relation.NewRelation("imdb_mov2genres",
		relation.Attr("id", "imdb_id"), relation.ConstAttr("genre", "genre")))
	s.MustAdd(relation.NewRelation("imdb_mov2countries",
		relation.Attr("id", "imdb_id"), relation.ConstAttr("country", "country")))
	s.MustAdd(relation.NewRelation("imdb_mov2cast",
		relation.Attr("id", "imdb_id"), relation.Attr("name", "imdb_person")))
	s.MustAdd(relation.NewRelation("imdb_mov2writers",
		relation.Attr("id", "imdb_id"), relation.Attr("name", "imdb_person")))
	s.MustAdd(relation.NewRelation("imdb_mov2releasedate",
		relation.Attr("id", "imdb_id"), relation.ConstAttr("month", "month"), relation.ConstAttr("year", "year")))
	s.MustAdd(relation.NewRelation("omdb_movies",
		relation.Attr("id", "omdb_id"), relation.Attr("title", "omdb_title"), relation.ConstAttr("year", "year")))
	s.MustAdd(relation.NewRelation("omdb_ratings",
		relation.Attr("id", "omdb_id"), relation.ConstAttr("rating", "rating")))
	s.MustAdd(relation.NewRelation("omdb_mov2genres",
		relation.Attr("id", "omdb_id"), relation.ConstAttr("genre", "genre")))
	s.MustAdd(relation.NewRelation("omdb_mov2languages",
		relation.Attr("id", "omdb_id"), relation.ConstAttr("language", "language")))
	s.MustAdd(relation.NewRelation("omdb_mov2cast",
		relation.Attr("id", "omdb_id"), relation.Attr("name", "omdb_person")))
	s.MustAdd(relation.NewRelation("omdb_mov2writers",
		relation.Attr("id", "omdb_id"), relation.Attr("name", "omdb_person")))

	in := relation.NewInstance(s)
	truth := make(map[string]bool)
	var posIDs, negIDs []string

	for i := 0; i < cfg.Movies*scaleFactor(cfg.Scale); i++ {
		imdbID := fmt.Sprintf("tt%05d", i)
		omdbID := fmt.Sprintf("om%05d", i)
		year := 1980 + rng.Intn(45)
		title := baseTitle(rng, i)
		omdbTitle := reformatTitle(rng, title, year, cfg.ExactTitleRate)

		// Bias the label-relevant attributes so that roughly a fifth of the
		// movies satisfy the target concept (Drama and rated R), keeping the
		// positive class large enough to sample the paper's example counts.
		genre1 := pick(rng, genres)
		if rng.Float64() < 0.45 {
			genre1 = "Drama"
		}
		genre2 := pick(rng, genres)
		rating := pick(rng, ratings)
		if rng.Float64() < 0.4 {
			rating = "R"
		}
		country := pick(rng, countries)
		language := pick(rng, languages)
		month := pick(rng, months)
		cast1, cast2 := personName(rng), personName(rng)
		writer := personName(rng)

		in.MustInsert("imdb_movies", imdbID, title, fmt.Sprint(year))
		in.MustInsert("imdb_mov2genres", imdbID, genre1)
		if genre2 != genre1 {
			in.MustInsert("imdb_mov2genres", imdbID, genre2)
		}
		in.MustInsert("imdb_mov2countries", imdbID, country)
		in.MustInsert("imdb_mov2cast", imdbID, cast1)
		in.MustInsert("imdb_mov2cast", imdbID, cast2)
		in.MustInsert("imdb_mov2writers", imdbID, writer)
		in.MustInsert("imdb_mov2releasedate", imdbID, month, fmt.Sprint(year))

		in.MustInsert("omdb_movies", omdbID, omdbTitle, fmt.Sprint(year))
		in.MustInsert("omdb_ratings", omdbID, rating)
		in.MustInsert("omdb_mov2genres", omdbID, genre1)
		in.MustInsert("omdb_mov2languages", omdbID, language)
		in.MustInsert("omdb_mov2cast", omdbID, flipName(rng, cast1, cfg.ExactNameRate))
		in.MustInsert("omdb_mov2cast", omdbID, flipName(rng, cast2, cfg.ExactNameRate))
		in.MustInsert("omdb_mov2writers", omdbID, flipName(rng, writer, cfg.ExactNameRate))

		// CFD violations: conflicting rating, country, language or year for
		// a fraction p of the movies.
		if inj.shouldInject() {
			switch rng.Intn(4) {
			case 0:
				in.MustInsert("omdb_ratings", omdbID, alternative(rng, ratings, rating))
			case 1:
				in.MustInsert("imdb_mov2countries", imdbID, alternative(rng, countries, country))
			case 2:
				in.MustInsert("omdb_mov2languages", omdbID, alternative(rng, languages, language))
			case 3:
				in.MustInsert("omdb_movies", omdbID, omdbTitle, fmt.Sprint(year+1))
			}
		}

		isPositive := (genre1 == "Drama" || genre2 == "Drama") && rating == "R"
		truth[imdbID] = isPositive
		if isPositive {
			posIDs = append(posIDs, imdbID)
		} else {
			negIDs = append(negIDs, imdbID)
		}
	}

	target := relation.NewRelation("dramaRestrictedMovies", relation.Attr("imdbId", "imdb_id"))

	mds := []constraints.MD{
		constraints.SimpleMD("md_title", "imdb_movies", "title", "omdb_movies", "title"),
	}
	if cfg.MDCount == 3 {
		mds = append(mds,
			constraints.SimpleMD("md_cast", "imdb_mov2cast", "name", "omdb_mov2cast", "name"),
			constraints.SimpleMD("md_writer", "imdb_mov2writers", "name", "omdb_mov2writers", "name"),
		)
	}
	cfds := []constraints.CFD{
		constraints.FD("cfd_rating", "omdb_ratings", []string{"id"}, "rating"),
		constraints.FD("cfd_country", "imdb_mov2countries", []string{"id"}, "country"),
		constraints.FD("cfd_language", "omdb_mov2languages", []string{"id"}, "language"),
		constraints.FD("cfd_year", "omdb_movies", []string{"id"}, "year"),
	}

	pos, neg := sampleExamples(rng, target.Name, posIDs, negIDs, cfg.Positives, cfg.Negatives)
	name := fmt.Sprintf("IMDB+OMDB (%d MD)", cfg.MDCount)
	if cfg.ViolationRate > 0 {
		name = fmt.Sprintf("%s p=%.2f", name, cfg.ViolationRate)
	}
	return &Dataset{
		Name: name,
		Problem: core.Problem{
			Instance: in,
			Target:   target,
			MDs:      mds,
			CFDs:     cfds,
			Pos:      pos,
			Neg:      neg,
		},
		TruePositives: truth,
	}, nil
}

// sampleExamples draws up to nPos positive and nNeg negative example tuples
// for a unary or binary target from the labelled id pools.
func sampleExamples(rng *rand.Rand, target string, posIDs, negIDs []string, nPos, nNeg int) ([]relation.Tuple, []relation.Tuple) {
	rng.Shuffle(len(posIDs), func(i, j int) { posIDs[i], posIDs[j] = posIDs[j], posIDs[i] })
	rng.Shuffle(len(negIDs), func(i, j int) { negIDs[i], negIDs[j] = negIDs[j], negIDs[i] })
	if nPos > len(posIDs) || nPos <= 0 {
		nPos = len(posIDs)
	}
	if nNeg > len(negIDs) || nNeg <= 0 {
		nNeg = len(negIDs)
	}
	var pos, neg []relation.Tuple
	for _, id := range posIDs[:nPos] {
		pos = append(pos, relation.NewTuple(target, id))
	}
	for _, id := range negIDs[:nNeg] {
		neg = append(neg, relation.NewTuple(target, id))
	}
	return pos, neg
}
