package datagen

import (
	"fmt"
	"math/rand"

	"dlearn/internal/constraints"
	"dlearn/internal/core"
	"dlearn/internal/relation"
)

var (
	paperTopics = []string{
		"Query Optimization", "Entity Resolution", "Data Cleaning", "Schema Matching",
		"Stream Processing", "Approximate Joins", "Provenance Tracking", "Index Structures",
		"Transaction Recovery", "Graph Analytics", "Federated Learning", "Crowdsourced Labeling",
	}
	paperQualifiers = []string{
		"Scalable", "Adaptive", "Incremental", "Distributed", "Robust", "Interactive",
		"Declarative", "Probabilistic", "Efficient", "Principled",
	}
	venues = []string{"SIGMOD", "VLDB", "ICDE", "EDBT", "CIDR", "PODS"}
)

// CitationsConfig configures the DBLP+Google Scholar generator.
type CitationsConfig struct {
	// Papers is the number of distinct papers shared by the two sources.
	Papers int
	// ViolationRate is p, the fraction of papers whose tuples violate a CFD.
	ViolationRate float64
	// ExactTitleRate is the fraction of papers whose titles match exactly.
	ExactTitleRate float64
	// Positives / Negatives are the numbers of labelled examples to emit.
	Positives, Negatives int
	// Scale multiplies the entity count (0 or 1 = base scale); see
	// MoviesConfig.Scale.
	Scale int
	// Seed drives all random choices.
	Seed int64
}

// DefaultCitationsConfig matches the paper's example counts (500 / 1000) at
// a laptop-friendly scale.
func DefaultCitationsConfig() CitationsConfig {
	return CitationsConfig{
		Papers:         600,
		ViolationRate:  0,
		ExactTitleRate: 0.3,
		Positives:      500,
		Negatives:      1000,
		Seed:           13,
	}
}

// Citations generates the DBLP+Google Scholar dataset: the target relation
// gsPaperYear(gsId, year) pairs a Google Scholar paper id with its year of
// publication as recorded in DBLP. Google Scholar itself lacks (or
// misstates) the year, so the concept requires joining the two sources
// through the title and venue MDs.
func Citations(cfg CitationsConfig) (*Dataset, error) {
	if cfg.Papers <= 0 {
		return nil, fmt.Errorf("datagen: Citations requires a positive paper count")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inj := violationInjector{rng: rng, rate: cfg.ViolationRate}

	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("dblp_papers",
		relation.Attr("did", "dblp_id"), relation.Attr("title", "dblp_title"),
		relation.Attr("venue", "dblp_venue"), relation.Attr("year", "year")))
	s.MustAdd(relation.NewRelation("dblp_authors",
		relation.Attr("did", "dblp_id"), relation.Attr("author", "dblp_person")))
	s.MustAdd(relation.NewRelation("gs_papers",
		relation.Attr("gsId", "gs_id"), relation.Attr("title", "gs_title"), relation.Attr("venue", "gs_venue")))
	s.MustAdd(relation.NewRelation("gs_authors",
		relation.Attr("gsId", "gs_id"), relation.Attr("author", "gs_person")))

	in := relation.NewInstance(s)
	truth := make(map[string]bool)
	type labelled struct{ gsID, year string }
	var positives []labelled
	var negatives []labelled

	for i := 0; i < cfg.Papers*scaleFactor(cfg.Scale); i++ {
		did := fmt.Sprintf("conf/x/%05d", i)
		gsID := fmt.Sprintf("gs%06d", i)
		year := 1995 + rng.Intn(28)
		venue := pick(rng, venues)
		title := fmt.Sprintf("%s %s %d", pick(rng, paperQualifiers), pick(rng, paperTopics), i)
		gsTitle := title
		gsVenue := venue
		if rng.Float64() >= cfg.ExactTitleRate {
			switch rng.Intn(3) {
			case 0:
				gsTitle = fmt.Sprintf("%s.", title)
			case 1:
				gsTitle = fmt.Sprintf("%s (extended abstract)", title)
			default:
				gsTitle = fmt.Sprintf("%s [%s %d]", title, venue, year)
			}
			gsVenue = fmt.Sprintf("Proc. %s %d", venue, year)
		}
		author := personName(rng)

		in.MustInsert("dblp_papers", did, title, venue, fmt.Sprint(year))
		in.MustInsert("dblp_authors", did, author)
		in.MustInsert("gs_papers", gsID, gsTitle, gsVenue)
		in.MustInsert("gs_authors", gsID, flipName(rng, author, 0.6))

		if inj.shouldInject() {
			switch rng.Intn(2) {
			case 0:
				// Duplicate Google Scholar record with a perturbed title:
				// violates "gsId determines title".
				in.MustInsert("gs_papers", gsID, gsTitle+" [duplicate]", gsVenue)
			default:
				// Conflicting DBLP year: violates "did determines year".
				in.MustInsert("dblp_papers", did, title, venue, fmt.Sprint(year+1))
			}
		}

		// Positive example: the correct (gsId, year) pair. Negative example:
		// the same gsId paired with a wrong year.
		positives = append(positives, labelled{gsID: gsID, year: fmt.Sprint(year)})
		wrong := year + 1 + rng.Intn(3)
		negatives = append(negatives, labelled{gsID: gsID, year: fmt.Sprint(wrong)})
		if rng.Float64() < 0.5 {
			negatives = append(negatives, labelled{gsID: gsID, year: fmt.Sprint(year - 1 - rng.Intn(3))})
		}
		truth[gsID+"|"+fmt.Sprint(year)] = true
	}

	target := relation.NewRelation("gsPaperYear",
		relation.Attr("gsId", "gs_id"), relation.Attr("year", "year"))
	mds := []constraints.MD{
		constraints.SimpleMD("md_paper_title", "gs_papers", "title", "dblp_papers", "title"),
		constraints.SimpleMD("md_paper_venue", "gs_papers", "venue", "dblp_papers", "venue"),
	}
	cfds := []constraints.CFD{
		constraints.FD("cfd_gs_title", "gs_papers", []string{"gsId"}, "title"),
		constraints.FD("cfd_dblp_year", "dblp_papers", []string{"did"}, "year"),
	}

	rng.Shuffle(len(positives), func(i, j int) { positives[i], positives[j] = positives[j], positives[i] })
	rng.Shuffle(len(negatives), func(i, j int) { negatives[i], negatives[j] = negatives[j], negatives[i] })
	nPos, nNeg := cfg.Positives, cfg.Negatives
	if nPos <= 0 || nPos > len(positives) {
		nPos = len(positives)
	}
	if nNeg <= 0 || nNeg > len(negatives) {
		nNeg = len(negatives)
	}
	var pos, neg []relation.Tuple
	for _, l := range positives[:nPos] {
		pos = append(pos, relation.NewTuple(target.Name, l.gsID, l.year))
	}
	for _, l := range negatives[:nNeg] {
		neg = append(neg, relation.NewTuple(target.Name, l.gsID, l.year))
	}

	name := "DBLP+Google Scholar"
	if cfg.ViolationRate > 0 {
		name = fmt.Sprintf("%s p=%.2f", name, cfg.ViolationRate)
	}
	return &Dataset{
		Name: name,
		Problem: core.Problem{
			Instance: in,
			Target:   target,
			MDs:      mds,
			CFDs:     cfds,
			Pos:      pos,
			Neg:      neg,
		},
		TruePositives: truth,
	}, nil
}
