// Package datagen generates the synthetic counterparts of the Magellan
// datasets used in the paper's evaluation (Table 3): IMDB+OMDB,
// Walmart+Amazon and DBLP+Google Scholar. The real data cannot be shipped,
// so each generator reproduces the properties the experiments depend on:
//
//   - two sources whose shared entities are represented heterogeneously
//     (reformatted titles and names), connected only through MDs;
//   - a hidden target concept whose signal requires joining the two sources
//     through an MD (so Castor-NoMD cannot express it, Castor-Exact only
//     partially, and best-match cleaning occasionally unifies the wrong
//     pair);
//   - CFDs over single relations plus controlled injection of violations at
//     a configurable rate p (duplicated tuples with conflicting
//     right-hand-side values), exercising DLearn-CFD vs DLearn-Repaired.
//
// All generation is deterministic for a given seed.
package datagen

import (
	"fmt"
	"math/rand"

	"dlearn/internal/core"
)

// Dataset is a generated learning task plus its provenance.
type Dataset struct {
	// Name identifies the dataset family and configuration.
	Name string
	// Problem is the learning task: dirty instance, constraints, examples.
	Problem core.Problem
	// TruePositives / TrueNegatives record the ground-truth labels used to
	// generate the examples (handy for sanity checks in tests).
	TruePositives map[string]bool
}

// Stats summarizes a dataset the way Table 3 does.
type Stats struct {
	Name      string
	Relations int
	Tuples    int
	Positives int
	Negatives int
}

// Stats returns the Table 3 row of the dataset.
func (d *Dataset) Stats() Stats {
	rels, tuples := d.Problem.Instance.Stats()
	return Stats{
		Name:      d.Name,
		Relations: rels,
		Tuples:    tuples,
		Positives: len(d.Problem.Pos),
		Negatives: len(d.Problem.Neg),
	}
}

// String renders the stats row.
func (s Stats) String() string {
	return fmt.Sprintf("%-24s #R=%-3d #T=%-7d #P=%-5d #N=%-5d", s.Name, s.Relations, s.Tuples, s.Positives, s.Negatives)
}

// words used to build deterministic synthetic titles and names.
var (
	titleWords = []string{
		"Silent", "Crimson", "Golden", "Broken", "Hidden", "Distant", "Electric",
		"Midnight", "Savage", "Gentle", "Frozen", "Burning", "Lonely", "Ancient",
		"Scarlet", "Velvet", "Iron", "Paper", "Glass", "Wild",
	}
	titleNouns = []string{
		"Harbor", "Mountain", "River", "Garden", "Empire", "Station", "Mirror",
		"Shadow", "Voyage", "Letter", "Orchard", "Canyon", "Lantern", "Compass",
		"Outpost", "Parade", "Archive", "Meridian", "Harvest", "Signal",
	}
	firstNames = []string{
		"John", "Mary", "Arash", "Elena", "Jose", "Wei", "Priya", "Omar",
		"Lucia", "Dmitri", "Hana", "Carlos", "Aiko", "Nadia", "Peter", "Ingrid",
	}
	lastNames = []string{
		"Smith", "Garcia", "Chen", "Patel", "Kim", "Novak", "Rossi", "Tanaka",
		"Johansson", "Okafor", "Martin", "Silva", "Kowalski", "Haddad", "Brown", "Lee",
	}
	genres    = []string{"Drama", "Comedy", "Action", "Thriller", "Documentary", "Horror", "Romance"}
	ratings   = []string{"R", "PG-13", "PG", "G"}
	countries = []string{"USA", "UK", "France", "Spain", "Japan", "Canada", "Germany"}
	languages = []string{"English", "Spanish", "French", "Japanese", "German"}
	months    = []string{"January", "February", "March", "April", "May", "June", "July", "August", "September", "October", "November", "December"}
)

// pick returns a deterministic pseudo-random element of the list.
func pick(rng *rand.Rand, list []string) string { return list[rng.Intn(len(list))] }

// baseTitle builds the canonical title of entity i.
func baseTitle(rng *rand.Rand, i int) string {
	return fmt.Sprintf("%s %s %d", pick(rng, titleWords), pick(rng, titleNouns), i)
}

// reformatTitle produces the second source's representation of a title. With
// probability exactRate the representation is identical; otherwise it is
// reformatted (suffixes, articles, punctuation) so only a similarity match
// can recover it.
func reformatTitle(rng *rand.Rand, title string, year int, exactRate float64) string {
	if rng.Float64() < exactRate {
		return title
	}
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s (%d)", title, year)
	case 1:
		return fmt.Sprintf("The %s", title)
	case 2:
		return fmt.Sprintf("%s - %d Edition", title, year)
	default:
		return fmt.Sprintf("%s, A Film", title)
	}
}

// personName builds a person name; the second source may flip it to
// "Last, First" form.
func personName(rng *rand.Rand) string {
	return pick(rng, firstNames) + " " + pick(rng, lastNames)
}

func flipName(rng *rand.Rand, name string, exactRate float64) string {
	if rng.Float64() < exactRate {
		return name
	}
	var first, last string
	if _, err := fmt.Sscanf(name, "%s %s", &first, &last); err != nil {
		return name
	}
	return last + ", " + first
}

// violationInjector duplicates tuples with conflicting right-hand-side
// values so that a fraction p of the entities of a relation participate in a
// CFD violation.
type violationInjector struct {
	rng  *rand.Rand
	rate float64
}

func (v violationInjector) shouldInject() bool {
	return v.rate > 0 && v.rng.Float64() < v.rate
}

// alternative returns a value different from the given one, drawn from the
// list.
func alternative(rng *rand.Rand, list []string, not string) string {
	for i := 0; i < 10; i++ {
		if c := pick(rng, list); c != not {
			return c
		}
	}
	return not + " (disputed)"
}

// scaleFactor normalises a config's Scale multiplier: zero (the zero value)
// and one both mean the base entity count; larger values multiply it. The
// generators stay deterministic under a fixed seed at every scale because the
// multiplier only extends the single entity loop.
func scaleFactor(s int) int {
	if s <= 1 {
		return 1
	}
	return s
}
