package datagen

import (
	"fmt"
	"math/rand"

	"dlearn/internal/constraints"
	"dlearn/internal/core"
	"dlearn/internal/relation"
)

var (
	productAdjectives = []string{"Wireless", "Portable", "Compact", "Ergonomic", "Premium", "Ultra", "Slim", "Rugged", "Smart", "Classic"}
	productNouns      = []string{"Keyboard", "Mouse", "Headset", "Monitor Stand", "USB Hub", "Laptop Sleeve", "Webcam", "Speaker", "Charger", "Docking Station", "Blender", "Toaster", "Lamp", "Backpack", "Water Bottle"}
	productBrands     = []string{"Tribeca", "Acme", "Novatech", "Brightline", "Orbit", "Zenwave", "Cascade", "Pinnacle"}
	productCategories = []string{"ComputersAccessories", "Electronics - General", "Home Kitchen", "Office Products", "Sports Outdoors"}
	productGroups     = []string{"Electronics - General", "Home", "Office", "Sports"}
)

// ProductsConfig configures the Walmart+Amazon generator.
type ProductsConfig struct {
	// Products is the number of distinct products shared by the two sources.
	Products int
	// ViolationRate is p, the fraction of products whose tuples violate a CFD.
	ViolationRate float64
	// ExactTitleRate is the fraction of products whose titles match exactly
	// across the sources.
	ExactTitleRate float64
	// Positives / Negatives are the numbers of labelled examples to emit.
	Positives, Negatives int
	// Scale multiplies the entity count (0 or 1 = base scale); see
	// MoviesConfig.Scale.
	Scale int
	// Seed drives all random choices.
	Seed int64
}

// DefaultProductsConfig matches the paper's example counts (77 / 154).
func DefaultProductsConfig() ProductsConfig {
	return ProductsConfig{
		Products:       350,
		ViolationRate:  0,
		ExactTitleRate: 0.2,
		Positives:      77,
		Negatives:      154,
		Seed:           11,
	}
}

// Products generates the Walmart+Amazon dataset: the target relation
// upcOfComputersAccessories(upc) holds for products whose Amazon category is
// ComputersAccessories; the upc only exists on the Walmart side, so the
// concept requires joining the sources through the product-title MD.
func Products(cfg ProductsConfig) (*Dataset, error) {
	if cfg.Products <= 0 {
		return nil, fmt.Errorf("datagen: Products requires a positive product count")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inj := violationInjector{rng: rng, rate: cfg.ViolationRate}

	s := relation.NewSchema()
	s.MustAdd(relation.NewRelation("walmart_ids",
		relation.Attr("wid", "walmart_id"), relation.Attr("brand", "brand"), relation.Attr("upc", "upc")))
	s.MustAdd(relation.NewRelation("walmart_title",
		relation.Attr("wid", "walmart_id"), relation.Attr("title", "walmart_title")))
	s.MustAdd(relation.NewRelation("walmart_groupname",
		relation.Attr("wid", "walmart_id"), relation.ConstAttr("groupname", "group")))
	s.MustAdd(relation.NewRelation("walmart_brand",
		relation.Attr("wid", "walmart_id"), relation.ConstAttr("brand", "brand")))
	s.MustAdd(relation.NewRelation("walmart_price",
		relation.Attr("wid", "walmart_id"), relation.Attr("price", "price")))
	s.MustAdd(relation.NewRelation("amazon_title",
		relation.Attr("aid", "amazon_id"), relation.Attr("title", "amazon_title")))
	s.MustAdd(relation.NewRelation("amazon_category",
		relation.Attr("aid", "amazon_id"), relation.ConstAttr("category", "category")))
	s.MustAdd(relation.NewRelation("amazon_brand",
		relation.Attr("aid", "amazon_id"), relation.ConstAttr("brand", "brand")))
	s.MustAdd(relation.NewRelation("amazon_listprice",
		relation.Attr("aid", "amazon_id"), relation.Attr("price", "price")))
	s.MustAdd(relation.NewRelation("amazon_itemweight",
		relation.Attr("aid", "amazon_id"), relation.Attr("weight", "weight")))

	in := relation.NewInstance(s)
	truth := make(map[string]bool)
	var posIDs, negIDs []string

	for i := 0; i < cfg.Products*scaleFactor(cfg.Scale); i++ {
		wid := fmt.Sprintf("w%05d", i)
		aid := fmt.Sprintf("a%05d", i)
		upc := fmt.Sprintf("0%011d", 10000+i)
		brand := pick(rng, productBrands)
		// Bias the target category so the positive class is large enough to
		// sample the paper's example counts (77 positives).
		category := pick(rng, productCategories)
		if rng.Float64() < 0.22 {
			category = "ComputersAccessories"
		}
		group := pick(rng, productGroups)
		price := fmt.Sprintf("%d.99", 5+rng.Intn(200))
		weight := fmt.Sprintf("%.1f pounds", 0.2+rng.Float64()*5)
		title := fmt.Sprintf("%s %s %s %d", brand, pick(rng, productAdjectives), pick(rng, productNouns), i)
		amazonTitle := title
		if rng.Float64() >= cfg.ExactTitleRate {
			switch rng.Intn(3) {
			case 0:
				amazonTitle = fmt.Sprintf("%s (%s)", title, brand)
			case 1:
				amazonTitle = fmt.Sprintf("%s - Retail Packaging", title)
			default:
				amazonTitle = fmt.Sprintf("New %s", title)
			}
		}

		in.MustInsert("walmart_ids", wid, brand, upc)
		in.MustInsert("walmart_title", wid, title)
		in.MustInsert("walmart_groupname", wid, group)
		in.MustInsert("walmart_brand", wid, brand)
		in.MustInsert("walmart_price", wid, price)
		in.MustInsert("amazon_title", aid, amazonTitle)
		in.MustInsert("amazon_category", aid, category)
		in.MustInsert("amazon_brand", aid, brand)
		in.MustInsert("amazon_listprice", aid, price)
		in.MustInsert("amazon_itemweight", aid, weight)

		if inj.shouldInject() {
			switch rng.Intn(3) {
			case 0:
				in.MustInsert("amazon_category", aid, alternative(rng, productCategories, category))
			case 1:
				in.MustInsert("walmart_groupname", wid, alternative(rng, productGroups, group))
			default:
				in.MustInsert("amazon_brand", aid, alternative(rng, productBrands, brand))
			}
		}

		isPositive := category == "ComputersAccessories"
		truth[upc] = isPositive
		if isPositive {
			posIDs = append(posIDs, upc)
		} else {
			negIDs = append(negIDs, upc)
		}
	}

	target := relation.NewRelation("upcOfComputersAccessories", relation.Attr("upc", "upc"))
	mds := []constraints.MD{
		constraints.SimpleMD("md_product_title", "walmart_title", "title", "amazon_title", "title"),
	}
	cfds := []constraints.CFD{
		constraints.FD("cfd_category", "amazon_category", []string{"aid"}, "category"),
		constraints.FD("cfd_group", "walmart_groupname", []string{"wid"}, "groupname"),
		constraints.FD("cfd_abrand", "amazon_brand", []string{"aid"}, "brand"),
		constraints.FD("cfd_upc", "walmart_ids", []string{"wid"}, "upc"),
		constraints.FD("cfd_price", "walmart_price", []string{"wid"}, "price"),
		constraints.FD("cfd_weight", "amazon_itemweight", []string{"aid"}, "weight"),
	}

	pos, neg := sampleExamples(rng, target.Name, posIDs, negIDs, cfg.Positives, cfg.Negatives)
	name := "Walmart+Amazon"
	if cfg.ViolationRate > 0 {
		name = fmt.Sprintf("%s p=%.2f", name, cfg.ViolationRate)
	}
	return &Dataset{
		Name: name,
		Problem: core.Problem{
			Instance: in,
			Target:   target,
			MDs:      mds,
			CFDs:     cfds,
			Pos:      pos,
			Neg:      neg,
		},
		TruePositives: truth,
	}, nil
}
