package datagen

import (
	"strings"
	"testing"

	"dlearn/internal/constraints"
)

func TestMoviesGeneratorBasics(t *testing.T) {
	cfg := DefaultMoviesConfig()
	cfg.Movies = 150
	cfg.Positives = 20
	cfg.Negatives = 40
	ds, err := Movies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Problem.Validate(); err != nil {
		t.Fatalf("generated problem does not validate: %v", err)
	}
	stats := ds.Stats()
	if stats.Relations != 12 {
		t.Errorf("IMDB+OMDB should have 12 relations, got %d", stats.Relations)
	}
	if stats.Positives != 20 || stats.Negatives != 40 {
		t.Errorf("example counts wrong: %+v", stats)
	}
	if stats.Tuples < 120*10 {
		t.Errorf("tuple count suspiciously low: %d", stats.Tuples)
	}
	if !strings.Contains(ds.Name, "IMDB+OMDB") {
		t.Errorf("unexpected name %q", ds.Name)
	}
	// Every positive example id must be truly positive.
	for _, e := range ds.Problem.Pos {
		if !ds.TruePositives[e.Values[0]] {
			t.Errorf("example %v labelled positive but ground truth disagrees", e)
		}
	}
	for _, e := range ds.Problem.Neg {
		if ds.TruePositives[e.Values[0]] {
			t.Errorf("example %v labelled negative but ground truth disagrees", e)
		}
	}
}

func TestMoviesGeneratorMDCount(t *testing.T) {
	cfg := DefaultMoviesConfig()
	cfg.Movies = 60
	cfg.MDCount = 3
	ds, err := Movies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Problem.MDs) != 3 {
		t.Errorf("MDCount=3 should emit 3 MDs, got %d", len(ds.Problem.MDs))
	}
	cfg.MDCount = 2
	if _, err := Movies(cfg); err == nil {
		t.Error("MDCount=2 must be rejected")
	}
	cfg.MDCount = 1
	cfg.Movies = 0
	if _, err := Movies(cfg); err == nil {
		t.Error("zero movies must be rejected")
	}
}

func TestMoviesGeneratorDeterministic(t *testing.T) {
	cfg := DefaultMoviesConfig()
	cfg.Movies = 80
	a, err := Movies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Movies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Problem.Instance.TotalTuples() != b.Problem.Instance.TotalTuples() {
		t.Error("generation must be deterministic for a fixed seed")
	}
	if len(a.Problem.Pos) != len(b.Problem.Pos) || a.Problem.Pos[0].Key() != b.Problem.Pos[0].Key() {
		t.Error("example sampling must be deterministic for a fixed seed")
	}
}

func TestMoviesViolationInjection(t *testing.T) {
	clean := DefaultMoviesConfig()
	clean.Movies = 200
	dirty := clean
	dirty.ViolationRate = 0.2
	cleanDS, err := Movies(clean)
	if err != nil {
		t.Fatal(err)
	}
	dirtyDS, err := Movies(dirty)
	if err != nil {
		t.Fatal(err)
	}
	countViolations := func(ds *Dataset) int {
		total := 0
		for _, cfd := range ds.Problem.CFDs {
			total += len(cfd.FindViolations(ds.Problem.Instance))
		}
		return total
	}
	if countViolations(cleanDS) != 0 {
		t.Error("p=0 dataset should satisfy all CFDs")
	}
	if countViolations(dirtyDS) == 0 {
		t.Error("p=0.2 dataset should contain CFD violations")
	}
	if !constraints.ConsistentCFDs(dirtyDS.Problem.Instance.Schema(), dirtyDS.Problem.CFDs) {
		t.Error("generated CFD set must be consistent")
	}
}

func TestProductsGenerator(t *testing.T) {
	cfg := DefaultProductsConfig()
	cfg.Products = 150
	cfg.Positives = 15
	cfg.Negatives = 30
	ds, err := Products(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Problem.Validate(); err != nil {
		t.Fatalf("generated problem does not validate: %v", err)
	}
	if ds.Problem.Target.Name != "upcOfComputersAccessories" {
		t.Errorf("unexpected target %s", ds.Problem.Target.Name)
	}
	if got := ds.Stats().Relations; got != 10 {
		t.Errorf("Walmart+Amazon should have 10 relations, got %d", got)
	}
	if len(ds.Problem.MDs) != 1 || len(ds.Problem.CFDs) != 6 {
		t.Errorf("expected 1 MD and 6 CFDs, got %d and %d", len(ds.Problem.MDs), len(ds.Problem.CFDs))
	}
	if _, err := Products(ProductsConfig{}); err == nil {
		t.Error("zero products must be rejected")
	}
}

func TestCitationsGenerator(t *testing.T) {
	cfg := DefaultCitationsConfig()
	cfg.Papers = 150
	cfg.Positives = 50
	cfg.Negatives = 100
	ds, err := Citations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Problem.Validate(); err != nil {
		t.Fatalf("generated problem does not validate: %v", err)
	}
	if ds.Problem.Target.Arity() != 2 {
		t.Errorf("gsPaperYear should be binary, got arity %d", ds.Problem.Target.Arity())
	}
	if len(ds.Problem.MDs) != 2 || len(ds.Problem.CFDs) != 2 {
		t.Errorf("expected 2 MDs and 2 CFDs, got %d and %d", len(ds.Problem.MDs), len(ds.Problem.CFDs))
	}
	// Positive examples carry the true year; negatives a wrong one.
	for _, e := range ds.Problem.Pos[:10] {
		if !ds.TruePositives[e.Values[0]+"|"+e.Values[1]] {
			t.Errorf("positive example %v not in ground truth", e)
		}
	}
	for _, e := range ds.Problem.Neg[:10] {
		if ds.TruePositives[e.Values[0]+"|"+e.Values[1]] {
			t.Errorf("negative example %v contradicts ground truth", e)
		}
	}
	if _, err := Citations(CitationsConfig{}); err == nil {
		t.Error("zero papers must be rejected")
	}
}

func TestStatsString(t *testing.T) {
	cfg := DefaultMoviesConfig()
	cfg.Movies = 50
	ds, err := Movies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Stats().String()
	if !strings.Contains(s, "#R=") || !strings.Contains(s, "#P=") {
		t.Errorf("Stats.String missing fields: %s", s)
	}
}

func TestHeterogeneityHelpers(t *testing.T) {
	// reformatTitle with exactRate 1 always returns the original; with 0 it
	// always reformats.
	rngExact := newTestRand(1)
	if got := reformatTitle(rngExact, "Silent Harbor 3", 2001, 1); got != "Silent Harbor 3" {
		t.Errorf("exactRate=1 should keep the title, got %q", got)
	}
	rngDirty := newTestRand(2)
	if got := reformatTitle(rngDirty, "Silent Harbor 3", 2001, 0); got == "Silent Harbor 3" {
		t.Errorf("exactRate=0 should reformat the title")
	}
	if got := flipName(newTestRand(3), "John Smith", 0); got != "Smith, John" {
		t.Errorf("flipName should flip, got %q", got)
	}
	if got := alternative(newTestRand(4), []string{"a", "b"}, "a"); got != "b" {
		t.Errorf("alternative should avoid the excluded value, got %q", got)
	}
}

func TestScaleMultiplier(t *testing.T) {
	base := DefaultMoviesConfig()
	base.Movies = 40
	base.Positives = 8
	base.Negatives = 16

	// Scale 0 and 1 are both the base scale.
	at := func(scale int) *Dataset {
		cfg := base
		cfg.Scale = scale
		ds, err := Movies(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	s0, s1, s10 := at(0), at(1), at(10)
	if s0.Stats().Tuples != s1.Stats().Tuples {
		t.Errorf("scale 0 and 1 differ: %d vs %d tuples", s0.Stats().Tuples, s1.Stats().Tuples)
	}
	if got, want := s10.Stats().Tuples, 8*s1.Stats().Tuples; got < want {
		t.Errorf("scale 10 should multiply tuples ~10x: got %d, base %d", got, s1.Stats().Tuples)
	}

	// Deterministic under a fixed seed: two runs at the same scale agree
	// tuple-for-tuple.
	a, b := at(10), at(10)
	for _, rel := range a.Problem.Instance.Schema().Relations() {
		ta, tb := a.Problem.Instance.Tuples(rel.Name), b.Problem.Instance.Tuples(rel.Name)
		if len(ta) != len(tb) {
			t.Fatalf("%s: %d vs %d tuples across runs", rel.Name, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i].Key() != tb[i].Key() {
				t.Fatalf("%s[%d]: %v vs %v", rel.Name, i, ta[i], tb[i])
			}
		}
	}
}
