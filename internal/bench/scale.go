package bench

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"time"

	"dlearn/internal/bottomclause"
	"dlearn/internal/core"
	"dlearn/internal/coverage"
	"dlearn/internal/datagen"
	"dlearn/internal/logic"
	"dlearn/internal/persist"
)

// ScalePoint is the measurement of the data layer at one tuple-count
// multiplier: the same candidate-evaluation workload as the coverage
// micro-benchmark, run against a dataset whose entity loop is multiplied by
// Scale, so the points compare how preparation, memory, snapshot size and
// scoring throughput grow with the instance.
type ScalePoint struct {
	// Scale is the tuple-count multiplier (1 = the coverage benchmark's base
	// dataset).
	Scale int `json:"scale"`
	// Tuples and DistinctValues size the generated instance: total tuples
	// across relations and distinct interned values.
	Tuples         int `json:"tuples"`
	DistinctValues int `json:"distinct_values"`
	// Positives / Negatives are the example counts the workload grounds and
	// prepares; they stay fixed across scales so the points isolate instance
	// growth.
	Positives int `json:"positives"`
	Negatives int `json:"negatives"`
	// PrepareSeconds is the cold cost of grounding and preparing every
	// example against the scaled instance.
	PrepareSeconds float64 `json:"prepare_seconds"`
	// ResidentBytes is the in-use heap (runtime.MemStats.HeapInuse after a
	// forced GC) while the instance and prepared examples are live.
	ResidentBytes uint64 `json:"resident_bytes"`
	// SnapshotBytes is the encoded size of the prepared-example snapshot
	// (persist.EncodeExampleSet) at this scale.
	SnapshotBytes int `json:"snapshot_bytes"`
	// CoverTestsPerSecond is full-scoring throughput over the prepared
	// examples, as in the coverage benchmark.
	CoverTestsPerSecond float64 `json:"cover_tests_per_second"`
	// LearnSeconds is the wall-clock time of a budget-clamped covering run
	// over the same example subset; LearnClauses is its definition size.
	LearnSeconds float64 `json:"learn_seconds"`
	LearnClauses int     `json:"learn_clauses"`
}

// ScaleSummary is the machine-readable result of the scale-up benchmark,
// written to BENCH_scale.json.
type ScaleSummary struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Threads    int    `json:"threads"`
	Quick      bool   `json:"quick"`
	Candidates int    `json:"candidates"`
	Rounds     int    `json:"rounds"`
	// Points are the per-multiplier measurements, ascending by scale.
	Points []ScalePoint `json:"points"`
}

// scaleMultipliers returns the tuple-count multipliers to measure: quick runs
// stop at 10x so the smoke job stays fast; full runs add the 100x point.
func (o Options) scaleMultipliers() []int {
	if o.Quick {
		return []int{1, 10}
	}
	return []int{1, 10, 100}
}

// RunScale benchmarks the interned columnar data layer as the instance grows:
// the coverage benchmark's workload (IMDB+OMDB with three MDs and CFD
// violations, fixed example counts) is repeated at 1x/10x(/100x) tuple
// multipliers, recording preparation time, resident memory, snapshot size and
// full-scoring throughput at each point.
func RunScale(ctx context.Context, o Options) (ScaleSummary, error) {
	w := o.out()
	fprintf(w, "Scale-up benchmark: data layer growth at 1x/10x(/100x) tuple multipliers\n")

	nCand, nPos, nNeg, rounds := o.coverageScale()
	lcfg := o.learnerConfig(2, o.iterationsFor("imdb"), 10)

	s := ScaleSummary{
		Experiment: "scale",
		Seed:       o.Seed,
		Threads:    o.Threads,
		Quick:      o.Quick,
		Candidates: nCand,
		Rounds:     rounds,
	}

	for _, scale := range o.scaleMultipliers() {
		mcfg := o.moviesConfig(3, 0.10)
		mcfg.Scale = scale
		ds, err := datagen.Movies(mcfg)
		if err != nil {
			return ScaleSummary{}, err
		}
		p := ds.Problem

		pos, neg, cand := nPos, nNeg, nCand
		if pos > len(p.Pos) {
			pos = len(p.Pos)
		}
		if neg > len(p.Neg) {
			neg = len(p.Neg)
		}
		if cand > pos {
			cand = pos
		}

		builder := bottomclause.NewBuilder(p.Instance, p.Target, p.MDs, p.CFDs, lcfg.BottomClause)
		eval := coverage.NewEvaluator(coverage.Options{
			Subsumption:          lcfg.Subsumption,
			Repair:               lcfg.Repair,
			Threads:              o.Threads,
			CandidateParallelism: o.CandidateParallelism,
			CacheShards:          lcfg.EvalCacheShards,
		})

		prepStart := time.Now()
		var posG, negG []logic.Clause
		for _, t := range p.Pos[:pos] {
			g, err := builder.GroundBottomClause(t)
			if err != nil {
				return ScaleSummary{}, err
			}
			posG = append(posG, g)
		}
		for _, t := range p.Neg[:neg] {
			g, err := builder.GroundBottomClause(t)
			if err != nil {
				return ScaleSummary{}, err
			}
			negG = append(negG, g)
		}
		posEx, err := eval.NewExamples(ctx, posG)
		if err != nil {
			return ScaleSummary{}, err
		}
		negEx, err := eval.NewExamples(ctx, negG)
		if err != nil {
			return ScaleSummary{}, err
		}
		prepare := time.Since(prepStart)

		var cands []logic.Clause
		for _, t := range p.Pos[:cand] {
			c, err := builder.BottomClause(t)
			if err != nil {
				return ScaleSummary{}, err
			}
			cands = append(cands, c)
		}

		snapData := persist.EncodeExampleSet(coverage.SnapshotExamples(posEx, negEx))

		// Resident memory with the scaled instance, the prepared examples and
		// the snapshot buffer all live — the data-layer footprint the interned
		// columnar backend is accountable for.
		runtime.GC()
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)

		// Untimed warm-up so the timed rounds measure scoring, not cache fill.
		for _, c := range cands {
			eval.ScoreClauseExamples(ctx, c, posEx, negEx)
		}
		if err := ctx.Err(); err != nil {
			return ScaleSummary{}, err
		}
		fullStart := time.Now()
		for r := 0; r < rounds; r++ {
			for _, c := range cands {
				eval.ScoreClauseExamples(ctx, c, posEx, negEx)
			}
		}
		if err := ctx.Err(); err != nil {
			return ScaleSummary{}, err
		}
		full := time.Since(fullStart)
		tests := float64(rounds) * float64(len(cands)) * float64(len(posEx)+len(negEx))

		// A budget-clamped covering run over the same subset: the end-to-end
		// cost a learner pays at this scale. Unlike the coverage benchmark's
		// covering pass, the subsumption node budget is clamped in full mode
		// too — identical budgets at every multiplier are what make the
		// learn_seconds column a scaling curve rather than a search-luck draw,
		// and an unbounded search at 100x data would swamp the benchmark.
		learnCfg := lcfg
		learnCfg.GeneralizationSample = 4
		learnCfg.NegativeSearchSample = 16
		learnCfg.MaxClauses = 4
		learnCfg.Subsumption.MaxNodes = 10000
		benchProblem := p
		benchProblem.Pos = p.Pos[:pos]
		benchProblem.Neg = p.Neg[:neg]
		learnStart := time.Now()
		def, _, err := core.NewLearner(learnCfg).LearnContext(ctx, benchProblem)
		if err != nil {
			return ScaleSummary{}, err
		}
		learn := time.Since(learnStart)

		pt := ScalePoint{
			Scale:               scale,
			Tuples:              ds.Stats().Tuples,
			DistinctValues:      p.Instance.DistinctValueCount(),
			Positives:           len(posEx),
			Negatives:           len(negEx),
			PrepareSeconds:      prepare.Seconds(),
			ResidentBytes:       mem.HeapInuse,
			SnapshotBytes:       len(snapData),
			CoverTestsPerSecond: tests / full.Seconds(),
			LearnSeconds:        learn.Seconds(),
			LearnClauses:        def.Len(),
		}
		s.Points = append(s.Points, pt)
		fprintf(w, "  scale %3dx: %8d tuples, %7d values — prepare=%.3fs resident=%.1fMB snapshot=%d bytes  %.0f cover tests/s  learn=%.3fs (%d clauses)\n",
			pt.Scale, pt.Tuples, pt.DistinctValues, pt.PrepareSeconds,
			float64(pt.ResidentBytes)/(1<<20), pt.SnapshotBytes,
			pt.CoverTestsPerSecond, pt.LearnSeconds, pt.LearnClauses)
	}
	return s, nil
}

// WriteScaleJSON writes the scale summary as indented JSON to path.
func WriteScaleJSON(path string, s ScaleSummary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
