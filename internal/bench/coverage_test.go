package bench

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestCoverageSummaryRoundTrip checks the BENCH_coverage.json schema: a
// summary written by WriteCoverageJSON must unmarshal back to an identical
// value, so downstream tooling can rely on the field set.
func TestCoverageSummaryRoundTrip(t *testing.T) {
	want := CoverageSummary{
		Experiment:          "coverage",
		Seed:                7,
		Threads:             16,
		CacheShards:         16,
		Candidates:          8,
		Positives:           40,
		Negatives:           60,
		Rounds:              3,
		PrepareSeconds:      0.25,
		SnapshotHit:         true,
		LoadSeconds:         0.02,
		SnapshotBytes:       123456,
		WarmSpeedup:         12.5,
		FullScoreSeconds:    1.5,
		CoverTestsPerSecond: 1600,
		BatchScoreSeconds:   0.9,
		BatchEarlyExits:     5,
		BatchSpeedup:        1.67,

		CandidateParallelism:     4,
		CandidatePoolPositives:   8,
		CandidatePoolNegatives:   8,
		CandidateSerialSeconds:   0.8,
		CandidateParallelSeconds: 0.3,
		CandidateParallelSpeedup: 2.67,
		CandidateEarlyExits:      9,

		SnapshotStoreBytes:   123456,
		SnapshotStoreFiles:   1,
		SnapshotMaxBytes:     1 << 30,
		SnapshotSweepRemoved: 2,

		PlanProbes:          128,
		PlanWins:            90,
		PlanLosses:          8,
		PlanTies:            30,
		PlanBudgetHits:      12,
		PlanWinRate:         0.918,
		PlanBacktracksSaved: 40000,
		PlanSeconds:         0.004,

		LearnProbes:           512,
		LearnSearchNodes:      20000,
		LearnSearchNodesFixed: 32000,
		LearnBacktracksSaved:  12000,
		LearnSecondsFixed:     2.1,
	}
	path := filepath.Join(t.TempDir(), "BENCH_coverage.json")
	if err := WriteCoverageJSON(path, want); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got CoverageSummary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// The schema keys are part of the trajectory contract; a rename would
	// silently break comparisons across PRs.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"experiment", "seed", "threads", "cache_shards",
		"candidates", "positives", "negatives", "rounds",
		"prepare_seconds", "snapshot_hit", "load_seconds", "snapshot_bytes",
		"warm_speedup", "full_score_seconds", "cover_tests_per_second",
		"batch_score_seconds", "batch_early_exits", "batch_speedup",
		"candidate_parallelism", "candidate_pool_positives", "candidate_pool_negatives",
		"candidate_serial_seconds", "candidate_parallel_seconds",
		"candidate_parallel_speedup", "candidate_early_exits",
		"snapshot_store_bytes", "snapshot_store_files",
		"snapshot_max_bytes", "snapshot_sweep_removed",
		"plan_probes", "plan_wins", "plan_losses", "plan_ties",
		"plan_budget_hits", "plan_win_rate", "plan_backtracks_saved", "plan_seconds",
		"learn_probes", "learn_search_nodes", "learn_search_nodes_fixed",
		"learn_backtracks_saved", "learn_seconds_fixed",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("BENCH_coverage.json is missing key %q", key)
		}
	}
}

// TestRunCoverageQuick smoke-tests the micro-benchmark at quick scale.
func TestRunCoverageQuick(t *testing.T) {
	o := QuickOptions()
	o.Out = io.Discard
	s, err := RunCoverage(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Experiment != "coverage" {
		t.Errorf("experiment = %q", s.Experiment)
	}
	if s.Candidates <= 0 || s.Positives <= 0 || s.Negatives <= 0 {
		t.Errorf("empty workload: %+v", s)
	}
	if s.FullScoreSeconds <= 0 || s.CoverTestsPerSecond <= 0 {
		t.Errorf("missing timings: %+v", s)
	}
	if !s.SnapshotHit {
		t.Error("warm-start load did not hit the snapshot store")
	}
	if s.LoadSeconds <= 0 || s.SnapshotBytes <= 0 || s.WarmSpeedup <= 0 {
		t.Errorf("missing snapshot measurements: %+v", s)
	}
	if s.CandidateParallelism <= 0 || s.CandidateSerialSeconds <= 0 || s.CandidateParallelSeconds <= 0 {
		t.Errorf("missing candidate-tier measurements: %+v", s)
	}
	if s.CandidatePoolPositives <= 0 || s.CandidatePoolPositives > 8 ||
		s.CandidatePoolNegatives <= 0 || s.CandidatePoolNegatives > 8 {
		t.Errorf("candidate tier did not run on the small example pool: %+v", s)
	}
	if s.SnapshotStoreBytes <= 0 || s.SnapshotStoreFiles != 1 {
		t.Errorf("missing store occupancy: %+v", s)
	}
	if s.PlanProbes <= 0 || s.PlanWins+s.PlanLosses+s.PlanTies != s.PlanProbes {
		t.Errorf("planner A/B tallies do not partition the probes: %+v", s)
	}
	if s.PlanWinRate < 0 || s.PlanWinRate > 1 {
		t.Errorf("plan win rate %v out of range", s.PlanWinRate)
	}
	if s.LearnProbes <= 0 || s.LearnSearchNodes <= 0 || s.LearnSearchNodesFixed <= 0 {
		t.Errorf("missing learner-pass planner measurements: %+v", s)
	}
	if s.LearnBacktracksSaved != s.LearnSearchNodesFixed-s.LearnSearchNodes {
		t.Errorf("learn_backtracks_saved inconsistent: %+v", s)
	}
}

// TestRunCoverageSnapshotCap checks the -snapshot-max-bytes plumbing: a cap
// triggers the LRU sweep and the post-sweep occupancy honours it (the
// snapshot just written is always kept).
func TestRunCoverageSnapshotCap(t *testing.T) {
	dir := t.TempDir()
	// A pre-existing stale snapshot that the sweep must reclaim.
	stale := filepath.Join(dir, "0000000000000000000000000000000000000000000000000000000000000000.dlsnap")
	if err := os.WriteFile(stale, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	o := QuickOptions()
	o.Out = io.Discard
	o.SnapshotDir = dir
	o.SnapshotMaxBytes = 8192 // smaller than stale + fresh snapshots
	s, err := RunCoverage(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if s.SnapshotMaxBytes != 8192 {
		t.Errorf("cap not recorded: %+v", s)
	}
	if s.SnapshotSweepRemoved < 1 {
		t.Errorf("sweep removed %d snapshots, want at least the stale one", s.SnapshotSweepRemoved)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale snapshot survived the sweep: %v", err)
	}
	if s.SnapshotStoreFiles != 1 {
		t.Errorf("store holds %d files after sweep, want 1 (the fresh snapshot)", s.SnapshotStoreFiles)
	}
}

// TestRunCoverageSnapshotDir checks that a caller-provided snapshot dir is
// used and populated.
func TestRunCoverageSnapshotDir(t *testing.T) {
	dir := t.TempDir()
	o := QuickOptions()
	o.Out = io.Discard
	o.SnapshotDir = dir
	s, err := RunCoverage(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !s.SnapshotHit {
		t.Error("warm-start load did not hit the snapshot store")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir has %d entries, want 1", len(entries))
	}
}

// TestRunCoverageCancelled checks that a cancelled context aborts the run.
func TestRunCoverageCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := QuickOptions()
	o.Out = io.Discard
	if _, err := RunCoverage(ctx, o); err == nil {
		t.Fatal("cancelled RunCoverage should return an error")
	}
}
