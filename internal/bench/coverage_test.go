package bench

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestCoverageSummaryRoundTrip checks the BENCH_coverage.json schema: a
// summary written by WriteCoverageJSON must unmarshal back to an identical
// value, so downstream tooling can rely on the field set.
func TestCoverageSummaryRoundTrip(t *testing.T) {
	want := CoverageSummary{
		Experiment:          "coverage",
		Seed:                7,
		Threads:             16,
		CacheShards:         16,
		Candidates:          8,
		Positives:           40,
		Negatives:           60,
		Rounds:              3,
		PrepareSeconds:      0.25,
		SnapshotHit:         true,
		LoadSeconds:         0.02,
		SnapshotBytes:       123456,
		WarmSpeedup:         12.5,
		FullScoreSeconds:    1.5,
		CoverTestsPerSecond: 1600,
		BatchScoreSeconds:   0.9,
		BatchEarlyExits:     5,
		BatchSpeedup:        1.67,
	}
	path := filepath.Join(t.TempDir(), "BENCH_coverage.json")
	if err := WriteCoverageJSON(path, want); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got CoverageSummary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// The schema keys are part of the trajectory contract; a rename would
	// silently break comparisons across PRs.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"experiment", "seed", "threads", "cache_shards",
		"candidates", "positives", "negatives", "rounds",
		"prepare_seconds", "snapshot_hit", "load_seconds", "snapshot_bytes",
		"warm_speedup", "full_score_seconds", "cover_tests_per_second",
		"batch_score_seconds", "batch_early_exits", "batch_speedup",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("BENCH_coverage.json is missing key %q", key)
		}
	}
}

// TestRunCoverageQuick smoke-tests the micro-benchmark at quick scale.
func TestRunCoverageQuick(t *testing.T) {
	o := QuickOptions()
	o.Out = io.Discard
	s, err := RunCoverage(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Experiment != "coverage" {
		t.Errorf("experiment = %q", s.Experiment)
	}
	if s.Candidates <= 0 || s.Positives <= 0 || s.Negatives <= 0 {
		t.Errorf("empty workload: %+v", s)
	}
	if s.FullScoreSeconds <= 0 || s.CoverTestsPerSecond <= 0 {
		t.Errorf("missing timings: %+v", s)
	}
	if !s.SnapshotHit {
		t.Error("warm-start load did not hit the snapshot store")
	}
	if s.LoadSeconds <= 0 || s.SnapshotBytes <= 0 || s.WarmSpeedup <= 0 {
		t.Errorf("missing snapshot measurements: %+v", s)
	}
}

// TestRunCoverageSnapshotDir checks that a caller-provided snapshot dir is
// used and populated.
func TestRunCoverageSnapshotDir(t *testing.T) {
	dir := t.TempDir()
	o := QuickOptions()
	o.Out = io.Discard
	o.SnapshotDir = dir
	s, err := RunCoverage(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !s.SnapshotHit {
		t.Error("warm-start load did not hit the snapshot store")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir has %d entries, want 1", len(entries))
	}
}

// TestRunCoverageCancelled checks that a cancelled context aborts the run.
func TestRunCoverageCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := QuickOptions()
	o.Out = io.Discard
	if _, err := RunCoverage(ctx, o); err == nil {
		t.Fatal("cancelled RunCoverage should return an error")
	}
}
