package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	def := DefaultOptions()
	if def.Folds != 5 || def.Threads != 16 || def.Quick {
		t.Errorf("unexpected defaults: %+v", def)
	}
	q := QuickOptions()
	if !q.Quick || q.folds() != 2 {
		t.Errorf("unexpected quick options: %+v", q)
	}
	if (Options{}).folds() != 5 {
		t.Error("zero options should default to 5 folds")
	}
	if (Options{Quick: true}).folds() != 2 {
		t.Error("quick options should default to 2 folds")
	}
}

func TestSweepsShrinkInQuickMode(t *testing.T) {
	full, quick := DefaultOptions(), QuickOptions()
	if len(quick.Table4KMs()) >= len(full.Table4KMs()) {
		t.Error("quick mode should sweep fewer k_m values")
	}
	if len(quick.Table5Rates()) >= len(full.Table5Rates()) {
		t.Error("quick mode should sweep fewer violation rates")
	}
	if len(quick.Table6Sizes()) >= len(full.Table6Sizes()) {
		t.Error("quick mode should sweep fewer example counts")
	}
	if len(quick.Table7Depths()) >= len(full.Table7Depths()) {
		t.Error("quick mode should sweep fewer depths")
	}
	if len(quick.Figure1SampleSizes()) >= len(full.Figure1SampleSizes()) {
		t.Error("quick mode should sweep fewer sample sizes")
	}
	if quick.iterationsFor("walmart") >= full.iterationsFor("walmart") {
		t.Error("quick mode should trim the iteration depth")
	}
}

func TestLearnerConfigQuickCaps(t *testing.T) {
	q := QuickOptions()
	cfg := q.learnerConfig(10, 4, 10)
	if cfg.BottomClause.SampleSize > 4 {
		t.Error("quick mode should cap the sample size")
	}
	if cfg.BottomClause.KM != 10 || cfg.BottomClause.Iterations != 4 {
		t.Error("explicit km and iterations must be preserved")
	}
	full := DefaultOptions()
	if full.learnerConfig(5, 4, 10).BottomClause.SampleSize != 10 {
		t.Error("full mode must keep the requested sample size")
	}
}

func TestRunTable3(t *testing.T) {
	var buf bytes.Buffer
	o := QuickOptions()
	o.Out = &buf
	stats, err := RunTable3(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("Table 3 should have 4 dataset rows, got %d", len(stats))
	}
	out := buf.String()
	for _, want := range []string{"IMDB+OMDB (1 MD)", "IMDB+OMDB (3 MD)", "Walmart+Amazon", "DBLP+Google Scholar"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q:\n%s", want, out)
		}
	}
	for _, s := range stats {
		if s.Tuples == 0 || s.Positives == 0 || s.Negatives == 0 {
			t.Errorf("empty dataset row: %+v", s)
		}
	}
}

func TestGenerateUnknownDataset(t *testing.T) {
	o := QuickOptions()
	if _, err := o.generate(datasetSpec{key: "nope"}, 0); err == nil {
		t.Fatal("unknown dataset spec must be rejected")
	}
}
