package bench

import (
	"context"
	"testing"
	"time"

	"dlearn/internal/baseline"
	"dlearn/internal/datagen"
	"dlearn/internal/eval"
)

// TestTimingProbe learns once with DLearn on a quick-mode IMDB+OMDB dataset
// and reports how long it took. It guards against the learner regressing to
// impractical runtimes (the experiment harness runs dozens of such fits).
func TestTimingProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("timing probe skipped in -short mode")
	}
	o := QuickOptions()
	cfg := o.moviesConfig(1, 0)
	ds, err := datagen.Movies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	lcfg := o.learnerConfig(2, 3, 6)
	res, err := baseline.RunContext(context.Background(), baseline.DLearn, ds.Problem, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	split := eval.Split{TestPos: ds.Problem.Pos, TestNeg: ds.Problem.Neg}
	m, err := eval.EvaluateSplit(res.Model, split)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("DLearn quick fit: %s, train %s, %d clauses", elapsed, m, res.Definition.Len())
	if elapsed > 90*time.Second {
		t.Errorf("single quick-mode DLearn fit took %s; the experiment harness would be impractical", elapsed)
	}
}
