// Package bench contains the experiment runners that regenerate every table
// and figure of the paper's evaluation (Section 6): Table 3 (dataset
// statistics), Table 4 (MD handling vs the Castor baselines), Table 5
// (DLearn-CFD vs DLearn-Repaired under injected CFD violations), Table 6
// (scaling the number of training examples), Table 7 (the effect of the
// number of iterations d) and Figure 1 (example and sample-size sweeps).
//
// Absolute numbers differ from the paper — the datasets are synthetic and
// the substrate is this repository's own in-memory engine rather than
// VoltDB — but the comparisons the paper draws (which system wins, how
// quality degrades with the violation rate, how time grows with k_m, d and
// the number of examples) are reproduced in shape.
package bench

import (
	"context"
	"fmt"
	"io"
	"os"

	"dlearn/internal/baseline"
	"dlearn/internal/core"
	"dlearn/internal/datagen"
	"dlearn/internal/eval"
	"dlearn/internal/observe"
)

// Options configures an experiment run.
type Options struct {
	// Quick shrinks every dataset and sweep so the whole suite finishes in
	// a couple of minutes; it is the mode used by `go test -bench`.
	Quick bool
	// Seed drives data generation and cross-validation splits.
	Seed int64
	// Threads is the coverage-testing parallelism (the paper uses 16).
	Threads int
	// Folds is the number of cross-validation folds (the paper uses 5).
	Folds int
	// Out receives the rendered tables; nil means os.Stdout.
	Out io.Writer
	// Observer receives the learning-run events of every fit the experiment
	// performs (a TimingCollector aggregates them into a machine-readable
	// summary); nil discards them.
	Observer observe.Observer
	// CandidateParallelism is the outer-tier worker count of the two-tier
	// coverage scheduler (candidates in flight at once); zero selects
	// coverage.DefaultCandidateParallelism.
	CandidateParallelism int
	// SnapshotDir is where the coverage micro-benchmark persists prepared
	// examples to measure cold vs warm starts. Empty means a throwaway
	// temporary directory. The benchmark always measures the cold prepare
	// (and rewrites the snapshot) so its numbers stay comparable across
	// runs; a persistent directory only keeps the resulting snapshot
	// around, e.g. for warm-starting dlearn-learn.
	SnapshotDir string
	// SnapshotMaxBytes caps the snapshot store: after the coverage
	// experiment's write-back, least-recently-used snapshots are swept until
	// the store fits, and the post-sweep occupancy is reported in
	// BENCH_coverage.json. Zero means unbounded.
	SnapshotMaxBytes int64
	// DisableLiteralPlanner turns off the θ-subsumption literal planner for
	// every fit the experiments perform — the A/B switch behind the plan_*
	// fields of BENCH_coverage.json. The coverage experiment additionally runs
	// its own planner-on/planner-off differential regardless of this setting.
	DisableLiteralPlanner bool
}

// DefaultOptions mirrors the paper's experimental setup.
func DefaultOptions() Options {
	return Options{Seed: 1, Threads: 16, Folds: 5}
}

// QuickOptions is the configuration used by the benchmark harness in
// bench_test.go.
func QuickOptions() Options {
	return Options{Quick: true, Seed: 1, Threads: 4, Folds: 2}
}

func (o Options) out() io.Writer {
	if o.Out != nil {
		return o.Out
	}
	return os.Stdout
}

func (o Options) folds() int {
	if o.Folds >= 2 {
		return o.Folds
	}
	if o.Quick {
		return 2
	}
	return 5
}

// learnerConfig builds the shared learner configuration for an experiment.
func (o Options) learnerConfig(km, iterations, sampleSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Threads = o.Threads
	if cfg.Threads <= 0 {
		cfg.Threads = DefaultOptions().Threads
	}
	cfg.Seed = o.Seed
	cfg.Observer = o.Observer
	cfg.Subsumption.DisablePlanner = o.DisableLiteralPlanner
	cfg.BottomClause.KM = km
	cfg.BottomClause.Iterations = iterations
	cfg.BottomClause.SampleSize = sampleSize
	if o.Quick {
		if cfg.BottomClause.SampleSize > 4 {
			cfg.BottomClause.SampleSize = 4
		}
		cfg.GeneralizationSample = 4
		cfg.NegativeSearchSample = 16
		cfg.MaxClauses = 6
		cfg.Subsumption.MaxNodes = 10000
	}
	return cfg
}

// moviesConfig returns the IMDB+OMDB generator configuration for the given
// MD count and violation rate, scaled down in Quick mode.
func (o Options) moviesConfig(mdCount int, p float64) datagen.MoviesConfig {
	cfg := datagen.DefaultMoviesConfig()
	cfg.MDCount = mdCount
	cfg.ViolationRate = p
	cfg.Seed = o.Seed + 100
	if o.Quick {
		cfg.Movies = 100
		cfg.Positives = 12
		cfg.Negatives = 24
	}
	return cfg
}

func (o Options) productsConfig(p float64) datagen.ProductsConfig {
	cfg := datagen.DefaultProductsConfig()
	cfg.ViolationRate = p
	cfg.Seed = o.Seed + 200
	if o.Quick {
		cfg.Products = 100
		cfg.Positives = 12
		cfg.Negatives = 24
	}
	return cfg
}

func (o Options) citationsConfig(p float64) datagen.CitationsConfig {
	cfg := datagen.DefaultCitationsConfig()
	cfg.ViolationRate = p
	cfg.Seed = o.Seed + 300
	if o.Quick {
		cfg.Papers = 80
		cfg.Positives = 14
		cfg.Negatives = 28
	}
	return cfg
}

// iterationsFor returns the per-dataset iteration depth d used in the paper
// (Section 6.2.3): 3 for DBLP+Scholar, 4 for IMDB+OMDB, 5 for
// Walmart+Amazon. Quick mode trims them by one to stay fast.
func (o Options) iterationsFor(dataset string) int {
	d := 4
	switch dataset {
	case "dblp":
		d = 3
	case "walmart":
		d = 5
	}
	if o.Quick && d > 2 {
		d--
	}
	return d
}

// crossValidate learns with the given system on every fold and returns the
// aggregated metrics and the mean learning time in minutes. Cancelling the
// context aborts the current fold and returns its error.
func crossValidate(ctx context.Context, system baseline.System, ds *datagen.Dataset, cfg core.Config, folds int, seed int64) (eval.Metrics, float64, error) {
	splits, err := eval.KFold(ds.Problem.Pos, ds.Problem.Neg, folds, seed)
	if err != nil {
		return eval.Metrics{}, 0, err
	}
	var total eval.Metrics
	var minutes float64
	for _, split := range splits {
		problem := ds.Problem
		problem.Pos = split.TrainPos
		problem.Neg = split.TrainNeg
		sw := eval.NewStopwatch()
		res, err := baseline.RunContext(ctx, system, problem, cfg)
		if err != nil {
			return eval.Metrics{}, 0, err
		}
		minutes += sw.Minutes()
		m, err := eval.EvaluateSplit(res.Model, split)
		if err != nil {
			return eval.Metrics{}, 0, err
		}
		total.Add(m)
	}
	return total, minutes / float64(folds), nil
}

// fprintf writes to the experiment output, ignoring write errors (the
// writers used here are stdout, buffers and test logs).
func fprintf(w io.Writer, format string, args ...interface{}) {
	_, _ = fmt.Fprintf(w, format, args...)
}
