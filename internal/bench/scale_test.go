package bench

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunScaleQuick smoke-tests the scale-up benchmark at quick scale: both
// points land, the 10x instance is measurably larger, and every measurement
// the JSON schema promises is populated.
func TestRunScaleQuick(t *testing.T) {
	o := QuickOptions()
	o.Out = io.Discard
	s, err := RunScale(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Experiment != "scale" || !s.Quick {
		t.Errorf("bad run configuration: %+v", s)
	}
	if len(s.Points) != 2 || s.Points[0].Scale != 1 || s.Points[1].Scale != 10 {
		t.Fatalf("quick run must measure scales [1 10], got %+v", s.Points)
	}
	p1, p10 := s.Points[0], s.Points[1]
	if p10.Tuples <= 5*p1.Tuples {
		t.Errorf("10x point should hold ~10x the tuples: %d vs %d", p10.Tuples, p1.Tuples)
	}
	if p10.DistinctValues <= p1.DistinctValues {
		t.Errorf("10x point should intern more values: %d vs %d", p10.DistinctValues, p1.DistinctValues)
	}
	for _, p := range s.Points {
		if p.Positives <= 0 || p.Negatives <= 0 {
			t.Errorf("scale %d: empty workload: %+v", p.Scale, p)
		}
		if p.PrepareSeconds <= 0 || p.ResidentBytes == 0 || p.SnapshotBytes <= 0 {
			t.Errorf("scale %d: missing data-layer measurements: %+v", p.Scale, p)
		}
		if p.CoverTestsPerSecond <= 0 || p.LearnSeconds <= 0 {
			t.Errorf("scale %d: missing throughput measurements: %+v", p.Scale, p)
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_scale.json")
	if err := WriteScaleJSON(path, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("BENCH_scale.json is not valid JSON: %v", err)
	}
	points, ok := raw["points"].([]any)
	if !ok || len(points) != 2 {
		t.Fatalf("points did not round-trip: %v", raw["points"])
	}
	pt, ok := points[0].(map[string]any)
	if !ok {
		t.Fatalf("point 0 is not an object: %v", points[0])
	}
	for _, key := range []string{
		"scale", "tuples", "distinct_values", "positives", "negatives",
		"prepare_seconds", "resident_bytes", "snapshot_bytes",
		"cover_tests_per_second", "learn_seconds", "learn_clauses",
	} {
		if _, ok := pt[key]; !ok {
			t.Errorf("BENCH_scale.json point is missing key %q", key)
		}
	}
}

// TestRunScaleCancelled checks that a cancelled context aborts the run.
func TestRunScaleCancelled(t *testing.T) {
	o := QuickOptions()
	o.Out = io.Discard
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScale(ctx, o); err == nil {
		t.Fatal("cancelled RunScale should return an error")
	}
}
