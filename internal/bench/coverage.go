package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dlearn/internal/bottomclause"
	"dlearn/internal/core"
	"dlearn/internal/coverage"
	"dlearn/internal/logic"
	"dlearn/internal/observe"
	"dlearn/internal/persist"
)

// CoverageSummary is the machine-readable result of the coverage
// micro-benchmark: throughput of the candidate-evaluation pipeline (prepared
// examples, compiled candidates, sharded caches) in full-scoring and
// floor-bounded batch-scoring modes. It is written to BENCH_coverage.json
// and tracked across PRs as the perf trajectory of the hottest path.
type CoverageSummary struct {
	Experiment  string `json:"experiment"`
	Seed        int64  `json:"seed"`
	Threads     int    `json:"threads"`
	CacheShards int    `json:"cache_shards"`

	Candidates int `json:"candidates"`
	Positives  int `json:"positives"`
	Negatives  int `json:"negatives"`
	Rounds     int `json:"rounds"`

	// PrepareSeconds is the one-off cost of preparing all ground bottom
	// clauses for repeated probing — the cold-start cost the snapshot store
	// exists to amortize.
	PrepareSeconds float64 `json:"prepare_seconds"`

	// SnapshotHit reports whether the warm-start load was served from the
	// snapshot store (persistence worked end to end in this run).
	SnapshotHit bool `json:"snapshot_hit"`
	// LoadSeconds is the warm-start cost: loading, decoding and restoring
	// the prepared examples from the snapshot store.
	LoadSeconds float64 `json:"load_seconds"`
	// SnapshotBytes is the encoded snapshot size on disk.
	SnapshotBytes int `json:"snapshot_bytes"`
	// WarmSpeedup is PrepareSeconds / LoadSeconds: how much faster a warm
	// start is than a cold one.
	WarmSpeedup float64 `json:"warm_speedup"`

	// Full scoring: every candidate scored over every example per round.
	FullScoreSeconds    float64 `json:"full_score_seconds"`
	CoverTestsPerSecond float64 `json:"cover_tests_per_second"`

	// Batch scoring: the same work with the incumbent's score as the floor,
	// early-exiting candidates that cannot win.
	BatchScoreSeconds float64 `json:"batch_score_seconds"`
	BatchEarlyExits   int     `json:"batch_early_exits"`
	BatchSpeedup      float64 `json:"batch_speedup"`

	// Candidate-tier scheduling on the small-example-pool workload: the same
	// candidates scored over a pool smaller than the thread count, one
	// candidate at a time (inner pool only) and through the two-tier
	// scheduler (CandidateParallelism outer workers × Threads inner workers),
	// both sharing the rising floor.
	CandidateParallelism     int     `json:"candidate_parallelism"`
	CandidatePoolPositives   int     `json:"candidate_pool_positives"`
	CandidatePoolNegatives   int     `json:"candidate_pool_negatives"`
	CandidateSerialSeconds   float64 `json:"candidate_serial_seconds"`
	CandidateParallelSeconds float64 `json:"candidate_parallel_seconds"`
	CandidateParallelSpeedup float64 `json:"candidate_parallel_speedup"`
	CandidateEarlyExits      int     `json:"candidate_early_exits"`

	// Literal-planner differential: every candidate probed against every
	// positive example's prepared ground clause under the selectivity plan
	// and again in fixed clause order, on the warmed evaluator. A probe is a
	// win when the planned search explored strictly fewer backtracking nodes,
	// a loss when strictly more; PlanWinRate is wins over decided (non-tie)
	// probes. PlanBacktracksSaved is the total node difference and
	// PlanSeconds the total plan-computation time — the overhead bought by
	// the saving. Outcomes must agree probe by probe; the run fails if any
	// completed probe diverges. PlanBudgetHits counts probes where either
	// order exhausted the node budget: both searches stop at the same cap,
	// so those probes tally as ties regardless of order quality — a high
	// count means the candidates (full bottom clauses at paper scale) are
	// budget-bound and the A/B says nothing beyond that.
	PlanProbes          int     `json:"plan_probes"`
	PlanWins            int     `json:"plan_wins"`
	PlanLosses          int     `json:"plan_losses"`
	PlanTies            int     `json:"plan_ties"`
	PlanBudgetHits      int     `json:"plan_budget_hits"`
	PlanWinRate         float64 `json:"plan_win_rate"`
	PlanBacktracksSaved int64   `json:"plan_backtracks_saved"`
	PlanSeconds         float64 `json:"plan_seconds"`

	// Covering-run scheduler telemetry: a full learner pass over the same
	// problem, its CandidateBatchScored events aggregated into a per-run
	// early-exit rate — the same figure dlearn-serve exports cumulatively
	// via /v1/stats, recorded here per benchmark run so its trajectory is
	// tracked across PRs alongside the throughput numbers.
	LearnSeconds          float64 `json:"learn_seconds"`
	LearnClauses          int     `json:"learn_clauses"`
	LearnCandidateBatches int64   `json:"learn_candidate_batches"`
	LearnCandidatesScored int64   `json:"learn_candidates_scored"`
	LearnEarlyExits       int64   `json:"learn_early_exits"`
	LearnEarlyExitRate    float64 `json:"learn_early_exit_rate"`

	// The learner pass runs twice — literal planner on, then off.
	// LearnSearchNodes and LearnSearchNodesFixed are the θ-subsumption search
	// nodes each pass explored; LearnBacktracksSaved is their difference, the
	// planner's measured saving on a real covering run rather than isolated
	// probes. LearnSecondsFixed is the planner-off pass's wall-clock time.
	// The two definitions are not compared here: the benchmark clamps the
	// search budget, and a budget-exhausted probe answers a conservative
	// "no" that can differ between orders. Unbounded outcome equality is
	// pinned by the engine thread-matrix test and the differential fuzz
	// battery instead. For the same reason the two passes can walk different
	// covering trajectories (different seeds rejected, different clauses
	// accepted, different batch counts), so the node totals compare whole
	// runs, not probe-for-probe cost; LearnProbes and the per-pass batch
	// telemetry give the context needed to read them.
	LearnProbes           int64   `json:"learn_probes"`
	LearnSearchNodes      int64   `json:"learn_search_nodes"`
	LearnSearchNodesFixed int64   `json:"learn_search_nodes_fixed"`
	LearnBacktracksSaved  int64   `json:"learn_backtracks_saved"`
	LearnSecondsFixed     float64 `json:"learn_seconds_fixed"`

	// Snapshot-store occupancy after the run (and, with a size cap, after
	// the LRU sweep): total bytes and file count in the store directory.
	SnapshotStoreBytes int64 `json:"snapshot_store_bytes"`
	SnapshotStoreFiles int   `json:"snapshot_store_files"`
	// SnapshotMaxBytes echoes the -snapshot-max-bytes cap (0 = unbounded);
	// SnapshotSweepRemoved counts the snapshots the sweep deleted.
	SnapshotMaxBytes     int64 `json:"snapshot_max_bytes"`
	SnapshotSweepRemoved int   `json:"snapshot_sweep_removed"`
}

// coverageScale returns the workload size: candidates, positives, negatives,
// rounds.
func (o Options) coverageScale() (int, int, int, int) {
	if o.Quick {
		return 4, 10, 16, 2
	}
	return 8, 40, 60, 3
}

// RunCoverage benchmarks the candidate-evaluation pipeline on the IMDB+OMDB
// dataset with CFD violations: it grounds and prepares the training
// examples (cold), snapshots them, loads them back through the snapshot
// store (warm), then repeatedly scores bottom-clause candidates over the
// warm-loaded examples, both exhaustively (ScoreClauseExamples) and with
// floor-bounded early exit (ScoreBatch), and reports the throughput of each
// mode. Scoring against the restored examples makes the warm path's
// correctness part of the benchmark, not an assumption.
func RunCoverage(ctx context.Context, o Options) (CoverageSummary, error) {
	w := o.out()
	fprintf(w, "Coverage micro-benchmark: candidate evaluation over prepared examples\n")

	nCand, nPos, nNeg, rounds := o.coverageScale()
	ds, err := o.generate(datasetSpec{key: "imdb3"}, 0.10)
	if err != nil {
		return CoverageSummary{}, err
	}
	lcfg := o.learnerConfig(2, o.iterationsFor("imdb"), 10)
	p := ds.Problem
	builder := bottomclause.NewBuilder(p.Instance, p.Target, p.MDs, p.CFDs, lcfg.BottomClause)
	eval := coverage.NewEvaluator(coverage.Options{
		Subsumption:          lcfg.Subsumption,
		Repair:               lcfg.Repair,
		Threads:              o.Threads,
		CandidateParallelism: o.CandidateParallelism,
		CacheShards:          lcfg.EvalCacheShards,
	})

	if nPos > len(p.Pos) {
		nPos = len(p.Pos)
	}
	if nNeg > len(p.Neg) {
		nNeg = len(p.Neg)
	}
	if nCand > nPos {
		nCand = nPos
	}
	var posG, negG []logic.Clause
	for _, t := range p.Pos[:nPos] {
		g, err := builder.GroundBottomClause(t)
		if err != nil {
			return CoverageSummary{}, err
		}
		posG = append(posG, g)
	}
	for _, t := range p.Neg[:nNeg] {
		g, err := builder.GroundBottomClause(t)
		if err != nil {
			return CoverageSummary{}, err
		}
		negG = append(negG, g)
	}
	var cands []logic.Clause
	for _, t := range p.Pos[:nCand] {
		c, err := builder.BottomClause(t)
		if err != nil {
			return CoverageSummary{}, err
		}
		cands = append(cands, c)
	}

	// Cold start: prepare every example fresh, then persist the result.
	snapDir := o.SnapshotDir
	if snapDir == "" {
		tmp, err := os.MkdirTemp("", "dlearn-snapshots-*")
		if err != nil {
			return CoverageSummary{}, err
		}
		defer os.RemoveAll(tmp)
		snapDir = tmp
	}
	// The store is capped only for the report-time sweep below: capping it
	// here would let Save sweep eagerly and hide the reclaim count the
	// summary reports.
	store := persist.NewDirStore(snapDir)
	// The benchmark scores a subset of the dataset's examples, so the
	// fingerprint covers exactly that subset — shared with the learner via
	// core.SnapshotFingerprint so both tools key snapshots identically.
	benchProblem := p
	benchProblem.Pos = p.Pos[:nPos]
	benchProblem.Neg = p.Neg[:nNeg]
	key := core.SnapshotFingerprint(benchProblem, lcfg).Key()

	prepStart := time.Now()
	coldPos, err := eval.NewExamples(ctx, posG)
	if err != nil {
		return CoverageSummary{}, err
	}
	coldNeg, err := eval.NewExamples(ctx, negG)
	if err != nil {
		return CoverageSummary{}, err
	}
	prepare := time.Since(prepStart)

	snapData := persist.EncodeExampleSet(coverage.SnapshotExamples(coldPos, coldNeg))
	if err := store.Save(key, snapData); err != nil {
		return CoverageSummary{}, err
	}

	// Warm start: a fresh evaluator loads the snapshot through the same
	// path the learner uses. The scoring passes below run on the restored
	// examples.
	warmEval := coverage.NewEvaluator(coverage.Options{
		Subsumption:          lcfg.Subsumption,
		Repair:               lcfg.Repair,
		Threads:              o.Threads,
		CandidateParallelism: o.CandidateParallelism,
		CacheShards:          lcfg.EvalCacheShards,
	})
	posEx, negEx, outcome, err := warmEval.LoadOrPrepareExamples(ctx, store, key, posG, negG)
	if err != nil {
		return CoverageSummary{}, err
	}
	eval = warmEval
	fprintf(w, "  snapshot: key %s, %d bytes in %s\n", key.Short(), len(snapData), snapDir)
	if outcome.Hit {
		fprintf(w, "  snapshot hit: warm load %.3fs vs cold prepare %.3fs (%.0fx)\n",
			outcome.LoadTime.Seconds(), prepare.Seconds(), prepare.Seconds()/outcome.LoadTime.Seconds())
	} else {
		fprintf(w, "  snapshot miss (%s): warm start fell back to fresh preparation\n", outcome.Reason)
	}

	// Untimed warm-up: populate the candidate/repair/strip caches so the two
	// timed passes compare scoring strategies, not cache states.
	for _, c := range cands {
		eval.ScoreClauseExamples(ctx, c, posEx, negEx)
	}
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}

	// Full scoring: the pre-early-exit workload.
	fullStart := time.Now()
	for r := 0; r < rounds; r++ {
		for _, c := range cands {
			eval.ScoreClauseExamples(ctx, c, posEx, negEx)
		}
	}
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}
	full := time.Since(fullStart)

	// Batch scoring with the incumbent floor, as the hill-climb issues it.
	earlyExits := 0
	batchStart := time.Now()
	for r := 0; r < rounds; r++ {
		floor := -1 << 30
		for _, c := range cands {
			score, exact := eval.ScoreBatch(ctx, c, posEx, negEx, floor)
			if !exact {
				earlyExits++
				continue
			}
			if score.Value() > floor {
				floor = score.Value()
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}
	batch := time.Since(batchStart)

	// Candidate-tier scheduling on the small-example-pool workload: a pool
	// smaller than the inner thread count leaves most workers idle when
	// candidates run one at a time; the scheduler overlaps the candidates.
	// Both passes run on the same warmed evaluator with the same shared-
	// floor semantics, so the comparison isolates the outer tier.
	poolPos, poolNeg := smallPool(posEx), smallPool(negEx)
	candPar := eval.CandidateWorkers(len(cands), 0)
	candRounds := rounds * 4
	candSerialStart := time.Now()
	for r := 0; r < candRounds; r++ {
		coverage.BestCandidate(eval.ScoreCandidates(ctx, cands, poolPos, poolNeg, -1<<30, 1), -1<<30)
	}
	candSerial := time.Since(candSerialStart)
	candEarlyExits := 0
	candParStart := time.Now()
	for r := 0; r < candRounds; r++ {
		results := eval.ScoreCandidates(ctx, cands, poolPos, poolNeg, -1<<30, candPar)
		for _, res := range results {
			if !res.Exact {
				candEarlyExits++
			}
		}
	}
	candParallel := time.Since(candParStart)
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}

	// Literal-planner differential: the warmed evaluator probes every
	// candidate against every positive example under the selectivity plan and
	// again in fixed clause order. Plans are permutations, so any outcome
	// divergence is a bug the benchmark turns into a failure.
	planCmp := eval.ComparePlannerOrder(ctx, cands, posEx)
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}
	if planCmp.Divergences != 0 {
		return CoverageSummary{}, fmt.Errorf("bench: literal planner changed the outcome of %d of %d probes", planCmp.Divergences, planCmp.Probes)
	}

	// Covering-run pass: a real learner run over the benchmark subset, with
	// its scheduler telemetry aggregated from CandidateBatchScored events.
	// The learner shares the snapshot store, so the pass warm-starts off the
	// snapshot saved above and times the covering loop, not preparation.
	// The hill-climb budgets are clamped so the pass stays a bounded
	// micro-benchmark rather than a full evaluation run; none of the clamped
	// fields feed the snapshot fingerprint, so the warm start is preserved.
	// The pass runs twice — literal planner on, then off — both warm-started
	// (the toggle is excluded from the snapshot fingerprint), measuring the
	// planner's node saving on a real covering run.
	sched := observe.NewSchedulerStats()
	plans := observe.NewPlanStats()
	learnCfg := lcfg
	learnCfg.Subsumption.DisablePlanner = false
	learnCfg.Observer = observe.Multi(sched, plans)
	learnCfg.SnapshotStore = store
	learnCfg.GeneralizationSample = 4
	learnCfg.NegativeSearchSample = 16
	learnCfg.MaxClauses = 6
	learnStart := time.Now()
	def, _, err := core.NewLearner(learnCfg).LearnContext(ctx, benchProblem)
	if err != nil {
		return CoverageSummary{}, err
	}
	learnDur := time.Since(learnStart)
	learnStats := sched.Snapshot()
	planStats := plans.Snapshot()

	fixedPlans := observe.NewPlanStats()
	fixedCfg := learnCfg
	fixedCfg.Subsumption.DisablePlanner = true
	fixedCfg.Observer = fixedPlans
	fixedStart := time.Now()
	if _, _, err := core.NewLearner(fixedCfg).LearnContext(ctx, benchProblem); err != nil {
		return CoverageSummary{}, err
	}
	fixedDur := time.Since(fixedStart)
	fixedStats := fixedPlans.Snapshot()

	tests := float64(rounds) * float64(len(cands)) * float64(len(posEx)+len(negEx))
	// Store occupancy (after an LRU sweep when a cap is configured).
	var sweepRemoved int
	if o.SnapshotMaxBytes > 0 {
		stats, err := store.SetMaxBytes(o.SnapshotMaxBytes).Compact()
		if err != nil {
			return CoverageSummary{}, err
		}
		sweepRemoved = stats.Removed
	}
	storeBytes, storeFiles, err := store.Size()
	if err != nil {
		return CoverageSummary{}, err
	}

	s := CoverageSummary{
		Experiment:               "coverage",
		Seed:                     o.Seed,
		Threads:                  eval.Threads(),
		CacheShards:              eval.CacheShards(),
		Candidates:               len(cands),
		Positives:                len(posEx),
		Negatives:                len(negEx),
		Rounds:                   rounds,
		PrepareSeconds:           prepare.Seconds(),
		SnapshotHit:              outcome.Hit,
		LoadSeconds:              outcome.LoadTime.Seconds(),
		SnapshotBytes:            len(snapData),
		FullScoreSeconds:         full.Seconds(),
		CoverTestsPerSecond:      tests / full.Seconds(),
		BatchScoreSeconds:        batch.Seconds(),
		BatchEarlyExits:          earlyExits,
		CandidateParallelism:     candPar,
		CandidatePoolPositives:   len(poolPos),
		CandidatePoolNegatives:   len(poolNeg),
		CandidateSerialSeconds:   candSerial.Seconds(),
		CandidateParallelSeconds: candParallel.Seconds(),
		CandidateEarlyExits:      candEarlyExits,
		PlanProbes:               planCmp.Probes,
		PlanWins:                 planCmp.Wins,
		PlanLosses:               planCmp.Losses,
		PlanTies:                 planCmp.Ties,
		PlanBudgetHits:           planCmp.BudgetHits,
		PlanWinRate:              planCmp.WinRate(),
		PlanBacktracksSaved:      planCmp.NodesSaved(),
		PlanSeconds:              planCmp.PlanTime.Seconds(),
		LearnSeconds:             learnDur.Seconds(),
		LearnClauses:             def.Len(),
		LearnCandidateBatches:    learnStats.Batches,
		LearnCandidatesScored:    learnStats.Candidates,
		LearnEarlyExits:          learnStats.EarlyExited,
		LearnEarlyExitRate:       learnStats.EarlyExitRate,
		LearnProbes:              planStats.Probes,
		LearnSearchNodes:         planStats.Nodes,
		LearnSearchNodesFixed:    fixedStats.Nodes,
		LearnBacktracksSaved:     fixedStats.Nodes - planStats.Nodes,
		LearnSecondsFixed:        fixedDur.Seconds(),
		SnapshotStoreBytes:       storeBytes,
		SnapshotStoreFiles:       storeFiles,
		SnapshotMaxBytes:         o.SnapshotMaxBytes,
		SnapshotSweepRemoved:     sweepRemoved,
	}
	if batch > 0 {
		s.BatchSpeedup = full.Seconds() / batch.Seconds()
	}
	if s.LoadSeconds > 0 {
		s.WarmSpeedup = s.PrepareSeconds / s.LoadSeconds
	}
	if candParallel > 0 {
		s.CandidateParallelSpeedup = candSerial.Seconds() / candParallel.Seconds()
	}
	fprintf(w, "  candidates=%d positives=%d negatives=%d rounds=%d threads=%d shards=%d\n",
		s.Candidates, s.Positives, s.Negatives, s.Rounds, s.Threads, s.CacheShards)
	fprintf(w, "  prepare=%.3fs  load=%.3fs (hit=%v, %.0fx warm speedup)  full=%.3fs (%.0f cover tests/s)  batch=%.3fs (%.2fx, %d early exits)\n",
		s.PrepareSeconds, s.LoadSeconds, s.SnapshotHit, s.WarmSpeedup,
		s.FullScoreSeconds, s.CoverTestsPerSecond, s.BatchScoreSeconds, s.BatchSpeedup, s.BatchEarlyExits)
	fprintf(w, "  candidate tier (pool %dp+%dn): serial=%.3fs  parallel[%d]=%.3fs (%.2fx, %d early exits)\n",
		s.CandidatePoolPositives, s.CandidatePoolNegatives, s.CandidateSerialSeconds,
		s.CandidateParallelism, s.CandidateParallelSeconds, s.CandidateParallelSpeedup, s.CandidateEarlyExits)
	fprintf(w, "  literal planner: %d probes — %d wins / %d losses / %d ties (%d budget-capped; win rate %.0f%%), %d backtrack nodes saved, plan time %.4fs\n",
		s.PlanProbes, s.PlanWins, s.PlanLosses, s.PlanTies, s.PlanBudgetHits, 100*s.PlanWinRate, s.PlanBacktracksSaved, s.PlanSeconds)
	fprintf(w, "  covering run: %d clauses in %.3fs — %d batches, %d candidates, %d early exits (%.0f%% early-exit rate)\n",
		s.LearnClauses, s.LearnSeconds, s.LearnCandidateBatches, s.LearnCandidatesScored,
		s.LearnEarlyExits, 100*s.LearnEarlyExitRate)
	fprintf(w, "  covering run planner A/B: %d probes, %d nodes planned vs %d fixed (%d saved); planner-off pass %.3fs\n",
		s.LearnProbes, s.LearnSearchNodes, s.LearnSearchNodesFixed, s.LearnBacktracksSaved, s.LearnSecondsFixed)
	fprintf(w, "  snapshot store: %d files, %d bytes", s.SnapshotStoreFiles, s.SnapshotStoreBytes)
	if s.SnapshotMaxBytes > 0 {
		fprintf(w, " (cap %d, sweep removed %d)", s.SnapshotMaxBytes, s.SnapshotSweepRemoved)
	}
	fprintf(w, "\n")
	return s, nil
}

// smallPool trims a prepared-example slice to the small-example-pool
// workload: at most 8 examples, fewer than the inner worker pool on the
// thread counts the paper uses, so candidate-level parallelism is the only
// way to keep the machine busy.
func smallPool(exs []*coverage.Example) []*coverage.Example {
	if len(exs) > 8 {
		return exs[:8]
	}
	return exs
}

// WriteCoverageJSON writes the coverage summary as indented JSON to path.
func WriteCoverageJSON(path string, s CoverageSummary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
