package bench

import (
	"context"
	"encoding/json"
	"os"
	"time"

	"dlearn/internal/bottomclause"
	"dlearn/internal/coverage"
	"dlearn/internal/logic"
)

// CoverageSummary is the machine-readable result of the coverage
// micro-benchmark: throughput of the candidate-evaluation pipeline (prepared
// examples, compiled candidates, sharded caches) in full-scoring and
// floor-bounded batch-scoring modes. It is written to BENCH_coverage.json
// and tracked across PRs as the perf trajectory of the hottest path.
type CoverageSummary struct {
	Experiment  string `json:"experiment"`
	Seed        int64  `json:"seed"`
	Threads     int    `json:"threads"`
	CacheShards int    `json:"cache_shards"`

	Candidates int `json:"candidates"`
	Positives  int `json:"positives"`
	Negatives  int `json:"negatives"`
	Rounds     int `json:"rounds"`

	// PrepareSeconds is the one-off cost of preparing all ground bottom
	// clauses for repeated probing.
	PrepareSeconds float64 `json:"prepare_seconds"`

	// Full scoring: every candidate scored over every example per round.
	FullScoreSeconds    float64 `json:"full_score_seconds"`
	CoverTestsPerSecond float64 `json:"cover_tests_per_second"`

	// Batch scoring: the same work with the incumbent's score as the floor,
	// early-exiting candidates that cannot win.
	BatchScoreSeconds float64 `json:"batch_score_seconds"`
	BatchEarlyExits   int     `json:"batch_early_exits"`
	BatchSpeedup      float64 `json:"batch_speedup"`
}

// coverageScale returns the workload size: candidates, positives, negatives,
// rounds.
func (o Options) coverageScale() (int, int, int, int) {
	if o.Quick {
		return 4, 10, 16, 2
	}
	return 8, 40, 60, 3
}

// RunCoverage benchmarks the candidate-evaluation pipeline on the IMDB+OMDB
// dataset with CFD violations: it grounds and prepares the training
// examples, then repeatedly scores bottom-clause candidates over them, both
// exhaustively (ScoreClauseExamples) and with floor-bounded early exit
// (ScoreBatch), and reports the throughput of each mode.
func RunCoverage(ctx context.Context, o Options) (CoverageSummary, error) {
	w := o.out()
	fprintf(w, "Coverage micro-benchmark: candidate evaluation over prepared examples\n")

	nCand, nPos, nNeg, rounds := o.coverageScale()
	ds, err := o.generate(datasetSpec{key: "imdb3"}, 0.10)
	if err != nil {
		return CoverageSummary{}, err
	}
	lcfg := o.learnerConfig(2, o.iterationsFor("imdb"), 10)
	p := ds.Problem
	builder := bottomclause.NewBuilder(p.Instance, p.Target, p.MDs, p.CFDs, lcfg.BottomClause)
	eval := coverage.NewEvaluator(coverage.Options{
		Subsumption: lcfg.Subsumption,
		Repair:      lcfg.Repair,
		Threads:     o.Threads,
		CacheShards: lcfg.EvalCacheShards,
	})

	if nPos > len(p.Pos) {
		nPos = len(p.Pos)
	}
	if nNeg > len(p.Neg) {
		nNeg = len(p.Neg)
	}
	if nCand > nPos {
		nCand = nPos
	}
	var posG, negG []logic.Clause
	for _, t := range p.Pos[:nPos] {
		g, err := builder.GroundBottomClause(t)
		if err != nil {
			return CoverageSummary{}, err
		}
		posG = append(posG, g)
	}
	for _, t := range p.Neg[:nNeg] {
		g, err := builder.GroundBottomClause(t)
		if err != nil {
			return CoverageSummary{}, err
		}
		negG = append(negG, g)
	}
	var cands []logic.Clause
	for _, t := range p.Pos[:nCand] {
		c, err := builder.BottomClause(t)
		if err != nil {
			return CoverageSummary{}, err
		}
		cands = append(cands, c)
	}

	prepStart := time.Now()
	posEx := eval.NewExamples(ctx, posG)
	negEx := eval.NewExamples(ctx, negG)
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}
	prepare := time.Since(prepStart)

	// Untimed warm-up: populate the candidate/repair/strip caches so the two
	// timed passes compare scoring strategies, not cache states.
	for _, c := range cands {
		eval.ScoreClauseExamples(ctx, c, posEx, negEx)
	}
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}

	// Full scoring: the pre-early-exit workload.
	fullStart := time.Now()
	for r := 0; r < rounds; r++ {
		for _, c := range cands {
			eval.ScoreClauseExamples(ctx, c, posEx, negEx)
		}
	}
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}
	full := time.Since(fullStart)

	// Batch scoring with the incumbent floor, as the hill-climb issues it.
	earlyExits := 0
	batchStart := time.Now()
	for r := 0; r < rounds; r++ {
		floor := -1 << 30
		for _, c := range cands {
			score, exact := eval.ScoreBatch(ctx, c, posEx, negEx, floor)
			if !exact {
				earlyExits++
				continue
			}
			if score.Value() > floor {
				floor = score.Value()
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return CoverageSummary{}, err
	}
	batch := time.Since(batchStart)

	tests := float64(rounds) * float64(len(cands)) * float64(len(posEx)+len(negEx))
	s := CoverageSummary{
		Experiment:          "coverage",
		Seed:                o.Seed,
		Threads:             eval.Threads(),
		CacheShards:         eval.CacheShards(),
		Candidates:          len(cands),
		Positives:           len(posEx),
		Negatives:           len(negEx),
		Rounds:              rounds,
		PrepareSeconds:      prepare.Seconds(),
		FullScoreSeconds:    full.Seconds(),
		CoverTestsPerSecond: tests / full.Seconds(),
		BatchScoreSeconds:   batch.Seconds(),
		BatchEarlyExits:     earlyExits,
	}
	if batch > 0 {
		s.BatchSpeedup = full.Seconds() / batch.Seconds()
	}
	fprintf(w, "  candidates=%d positives=%d negatives=%d rounds=%d threads=%d shards=%d\n",
		s.Candidates, s.Positives, s.Negatives, s.Rounds, s.Threads, s.CacheShards)
	fprintf(w, "  prepare=%.3fs  full=%.3fs (%.0f cover tests/s)  batch=%.3fs (%.2fx, %d early exits)\n",
		s.PrepareSeconds, s.FullScoreSeconds, s.CoverTestsPerSecond, s.BatchScoreSeconds, s.BatchSpeedup, s.BatchEarlyExits)
	return s, nil
}

// WriteCoverageJSON writes the coverage summary as indented JSON to path.
func WriteCoverageJSON(path string, s CoverageSummary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
