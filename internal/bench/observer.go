package bench

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"dlearn/internal/observe"
)

// TimingCollector aggregates the observe events of every learning run an
// experiment performs into a machine-readable timing summary. It is safe for
// concurrent use (coverage workers never emit events, but future harnesses
// may run fits in parallel).
type TimingCollector struct {
	mu sync.Mutex

	runs              int
	iterations        int
	clausesAccepted   int
	clausesRejected   int
	clausesConsidered int
	uncovered         int
	bottomClause      time.Duration
	covering          time.Duration
	total             time.Duration
}

// NewTimingCollector returns an empty collector.
func NewTimingCollector() *TimingCollector { return &TimingCollector{} }

// Observe accumulates one learning-run event.
func (t *TimingCollector) Observe(e observe.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev := e.(type) {
	case observe.RunStarted:
		t.runs++
	case observe.IterationStarted:
		t.iterations++
	case observe.ClauseAccepted:
		t.clausesAccepted++
	case observe.ClauseRejected:
		t.clausesRejected++
	case observe.PhaseDone:
		switch ev.Phase {
		case observe.PhaseBottomClauses:
			t.bottomClause += ev.Duration
		case observe.PhaseCovering:
			t.covering += ev.Duration
		}
	case observe.RunFinished:
		t.clausesConsidered += ev.ClausesConsidered
		t.uncovered += ev.UncoveredPositives
		t.total += ev.Duration
	}
}

// TimingSummary is the JSON-serializable aggregate of an experiment's
// learning runs, the seed of the perf trajectory tracked across PRs.
type TimingSummary struct {
	Experiment          string  `json:"experiment"`
	Runs                int     `json:"runs"`
	Iterations          int     `json:"iterations"`
	ClausesAccepted     int     `json:"clauses_accepted"`
	ClausesRejected     int     `json:"clauses_rejected"`
	ClausesConsidered   int     `json:"clauses_considered"`
	UncoveredPositives  int     `json:"uncovered_positives"`
	BottomClauseSeconds float64 `json:"bottom_clause_seconds"`
	CoveringSeconds     float64 `json:"covering_seconds"`
	TotalSeconds        float64 `json:"total_seconds"`
}

// Summary snapshots the collector for the named experiment.
func (t *TimingCollector) Summary(experiment string) TimingSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimingSummary{
		Experiment:          experiment,
		Runs:                t.runs,
		Iterations:          t.iterations,
		ClausesAccepted:     t.clausesAccepted,
		ClausesRejected:     t.clausesRejected,
		ClausesConsidered:   t.clausesConsidered,
		UncoveredPositives:  t.uncovered,
		BottomClauseSeconds: t.bottomClause.Seconds(),
		CoveringSeconds:     t.covering.Seconds(),
		TotalSeconds:        t.total.Seconds(),
	}
}

// WriteTimingJSON writes a timing summary as indented JSON to path.
func WriteTimingJSON(path string, s TimingSummary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
