package bench

import (
	"context"

	"dlearn/internal/baseline"
	"dlearn/internal/datagen"
)

// FigurePoint is one point of a Figure 1 series: the swept parameter value,
// the cross-validated F1-score and the mean learning time in minutes.
type FigurePoint struct {
	X       int
	F1      float64
	Minutes float64
}

// Figure1LeftSizes returns the example sweep of Figure 1 (left).
func (o Options) Figure1LeftSizes() []int {
	if o.Quick {
		return []int{8, 16}
	}
	return []int{100, 500, 1000, 2000}
}

// RunFigure1Left regenerates Figure 1 (left): F1 and learning time while
// increasing the number of training examples on IMDB+OMDB (3 MDs), MD-only,
// k_m = 2.
func RunFigure1Left(ctx context.Context, o Options) ([]FigurePoint, error) {
	w := o.out()
	fprintf(w, "Figure 1 (left): example scaling on IMDB+OMDB (3 MDs), km=2, MD-only\n")
	var points []FigurePoint
	for _, nPos := range o.Figure1LeftSizes() {
		cfg := o.moviesConfig(3, 0)
		cfg.Positives = nPos
		cfg.Negatives = 2 * nPos
		if !o.Quick {
			cfg.Movies = maxInt(cfg.Movies, nPos*6)
		}
		ds, err := datagen.Movies(cfg)
		if err != nil {
			return nil, err
		}
		lcfg := o.learnerConfig(2, o.iterationsFor("imdb"), 10)
		m, minutes, err := crossValidate(ctx, baseline.DLearn, ds, lcfg, o.folds(), o.Seed)
		if err != nil {
			return nil, err
		}
		p := FigurePoint{X: nPos, F1: m.F1(), Minutes: minutes}
		points = append(points, p)
		fprintf(w, "  #P=%-5d F1=%.2f  time=%.2fm\n", p.X, p.F1, p.Minutes)
	}
	return points, nil
}

// Figure1SampleSizes returns the sample-size sweep of Figure 1 (middle and
// right).
func (o Options) Figure1SampleSizes() []int {
	if o.Quick {
		return []int{4, 10}
	}
	return []int{2, 5, 10, 15, 20}
}

// runFigure1Samples runs the sample-size sweep for a fixed k_m.
func runFigure1Samples(ctx context.Context, o Options, km int, label string) ([]FigurePoint, error) {
	w := o.out()
	fprintf(w, "Figure 1 (%s): sample-size sweep on IMDB+OMDB (3 MDs), km=%d\n", label, km)
	ds, err := datagen.Movies(o.moviesConfig(3, 0))
	if err != nil {
		return nil, err
	}
	var points []FigurePoint
	for _, sample := range o.Figure1SampleSizes() {
		lcfg := o.learnerConfig(km, o.iterationsFor("imdb"), sample)
		m, minutes, err := crossValidate(ctx, baseline.DLearn, ds, lcfg, o.folds(), o.Seed)
		if err != nil {
			return nil, err
		}
		p := FigurePoint{X: sample, F1: m.F1(), Minutes: minutes}
		points = append(points, p)
		fprintf(w, "  sample=%-3d F1=%.2f  time=%.2fm\n", p.X, p.F1, p.Minutes)
	}
	return points, nil
}

// RunFigure1Middle regenerates Figure 1 (middle): the sample-size sweep with
// k_m = 2.
func RunFigure1Middle(ctx context.Context, o Options) ([]FigurePoint, error) {
	return runFigure1Samples(ctx, o, 2, "middle")
}

// RunFigure1Right regenerates Figure 1 (right): the sample-size sweep with
// k_m = 5.
func RunFigure1Right(ctx context.Context, o Options) ([]FigurePoint, error) {
	km := 5
	if o.Quick {
		km = 3
	}
	return runFigure1Samples(ctx, o, km, "right")
}
