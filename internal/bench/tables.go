package bench

import (
	"context"

	"fmt"

	"dlearn/internal/baseline"
	"dlearn/internal/datagen"
)

// datasetSpec names one generated dataset family for the experiment
// runners.
type datasetSpec struct {
	key   string // "imdb1", "imdb3", "walmart", "dblp"
	label string
}

func table4Datasets() []datasetSpec {
	return []datasetSpec{
		{key: "imdb1", label: "IMDB + OMDB (one MD)"},
		{key: "imdb3", label: "IMDB + OMDB (three MDs)"},
		{key: "walmart", label: "Walmart + Amazon"},
		{key: "dblp", label: "DBLP + Google Scholar"},
	}
}

func table5Datasets() []datasetSpec {
	return []datasetSpec{
		{key: "imdb3", label: "IMDB + OMDB (three MDs)"},
		{key: "walmart", label: "Walmart + Amazon"},
		{key: "dblp", label: "DBLP + Google Scholar"},
	}
}

// generate builds the dataset for a spec with the given violation rate.
func (o Options) generate(spec datasetSpec, p float64) (*datagen.Dataset, error) {
	switch spec.key {
	case "imdb1":
		return datagen.Movies(o.moviesConfig(1, p))
	case "imdb3":
		return datagen.Movies(o.moviesConfig(3, p))
	case "walmart":
		return datagen.Products(o.productsConfig(p))
	case "dblp":
		return datagen.Citations(o.citationsConfig(p))
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", spec.key)
	}
}

func (o Options) iterationsForSpec(spec datasetSpec) int {
	switch spec.key {
	case "walmart":
		return o.iterationsFor("walmart")
	case "dblp":
		return o.iterationsFor("dblp")
	default:
		return o.iterationsFor("imdb")
	}
}

// --- Table 3 ----------------------------------------------------------------

// RunTable3 regenerates the dataset-statistics table (Table 3).
func RunTable3(ctx context.Context, o Options) ([]datagen.Stats, error) {
	w := o.out()
	fprintf(w, "Table 3: dataset statistics\n")
	var out []datagen.Stats
	for _, spec := range table4Datasets() {
		ds, err := o.generate(spec, 0)
		if err != nil {
			return nil, err
		}
		st := ds.Stats()
		out = append(out, st)
		fprintf(w, "  %s\n", st)
	}
	return out, nil
}

// --- Table 4 ----------------------------------------------------------------

// Table4Row is one cell group of Table 4: a system's cross-validated
// F1-score and learning time on one dataset (DLearn rows carry the k_m used).
type Table4Row struct {
	Dataset string
	System  baseline.System
	KM      int
	F1      float64
	Minutes float64
}

// Table4KMs returns the k_m sweep used for the DLearn columns of Table 4.
func (o Options) Table4KMs() []int {
	if o.Quick {
		return []int{2, 5}
	}
	return []int{2, 5, 10}
}

// RunTable4 regenerates Table 4: learning over the MD-only datasets with
// Castor-NoMD, Castor-Exact, Castor-Clean and DLearn (k_m ∈ {2,5,10}).
func RunTable4(ctx context.Context, o Options) ([]Table4Row, error) {
	w := o.out()
	fprintf(w, "Table 4: learning over datasets with MDs (F1 / minutes)\n")
	var rows []Table4Row
	for _, spec := range table4Datasets() {
		ds, err := o.generate(spec, 0)
		if err != nil {
			return nil, err
		}
		iters := o.iterationsForSpec(spec)
		fprintf(w, "  %s\n", spec.label)
		for _, system := range []baseline.System{baseline.CastorNoMD, baseline.CastorExact, baseline.CastorClean} {
			cfg := o.learnerConfig(5, iters, 10)
			m, minutes, err := crossValidate(ctx, system, ds, cfg, o.folds(), o.Seed)
			if err != nil {
				return nil, err
			}
			row := Table4Row{Dataset: spec.label, System: system, F1: m.F1(), Minutes: minutes}
			rows = append(rows, row)
			fprintf(w, "    %-14s          F1=%.2f  time=%.2fm\n", system, row.F1, row.Minutes)
		}
		for _, km := range o.Table4KMs() {
			cfg := o.learnerConfig(km, iters, 10)
			m, minutes, err := crossValidate(ctx, baseline.DLearn, ds, cfg, o.folds(), o.Seed)
			if err != nil {
				return nil, err
			}
			row := Table4Row{Dataset: spec.label, System: baseline.DLearn, KM: km, F1: m.F1(), Minutes: minutes}
			rows = append(rows, row)
			fprintf(w, "    %-14s (km=%-2d)  F1=%.2f  time=%.2fm\n", baseline.DLearn, km, row.F1, row.Minutes)
		}
	}
	return rows, nil
}

// --- Table 5 ----------------------------------------------------------------

// Table5Row is one cell group of Table 5: DLearn-CFD or DLearn-Repaired on a
// dataset with violation rate p.
type Table5Row struct {
	Dataset string
	System  baseline.System
	P       float64
	F1      float64
	Minutes float64
}

// Table5Rates returns the violation-rate sweep of Table 5.
func (o Options) Table5Rates() []float64 {
	if o.Quick {
		return []float64{0.05, 0.20}
	}
	return []float64{0.05, 0.10, 0.20}
}

// RunTable5 regenerates Table 5: DLearn-CFD vs DLearn-Repaired under
// injected CFD violations.
func RunTable5(ctx context.Context, o Options) ([]Table5Row, error) {
	w := o.out()
	fprintf(w, "Table 5: learning over datasets with MDs and CFD violations (F1 / minutes)\n")
	var rows []Table5Row
	for _, spec := range table5Datasets() {
		fprintf(w, "  %s\n", spec.label)
		iters := o.iterationsForSpec(spec)
		// The paper uses k_m=5 for IMDB+OMDB and k_m=10 for the others.
		km := 10
		if spec.key == "imdb3" {
			km = 5
		}
		if o.Quick {
			km = 2
		}
		for _, system := range []baseline.System{baseline.DLearnCFD, baseline.DLearnRepaired} {
			for _, p := range o.Table5Rates() {
				ds, err := o.generate(spec, p)
				if err != nil {
					return nil, err
				}
				cfg := o.learnerConfig(km, iters, 10)
				m, minutes, err := crossValidate(ctx, system, ds, cfg, o.folds(), o.Seed)
				if err != nil {
					return nil, err
				}
				row := Table5Row{Dataset: spec.label, System: system, P: p, F1: m.F1(), Minutes: minutes}
				rows = append(rows, row)
				fprintf(w, "    %-16s p=%.2f  F1=%.2f  time=%.2fm\n", system, p, row.F1, row.Minutes)
			}
		}
	}
	return rows, nil
}

// --- Table 6 ----------------------------------------------------------------

// Table6Row is one cell of Table 6: F1 and time while growing the number of
// training examples, for a fixed k_m, on IMDB+OMDB (3 MDs) with CFD
// violations.
type Table6Row struct {
	KM        int
	Positives int
	Negatives int
	F1        float64
	Minutes   float64
}

// Table6Sizes returns the training-set sweep of Table 6 (positive counts;
// negatives are always twice as many).
func (o Options) Table6Sizes() []int {
	if o.Quick {
		return []int{8, 16}
	}
	return []int{100, 500, 1000, 2000}
}

// Table6KMs returns the k_m values compared in Table 6.
func (o Options) Table6KMs() []int {
	if o.Quick {
		return []int{2}
	}
	return []int{5, 2}
}

// RunTable6 regenerates Table 6: example-count scaling with CFD violations.
func RunTable6(ctx context.Context, o Options) ([]Table6Row, error) {
	w := o.out()
	fprintf(w, "Table 6: scaling the number of examples on IMDB+OMDB (3 MDs) with CFD violations\n")
	var rows []Table6Row
	for _, km := range o.Table6KMs() {
		for _, nPos := range o.Table6Sizes() {
			cfg := o.moviesConfig(3, 0.10)
			cfg.Positives = nPos
			cfg.Negatives = 2 * nPos
			// Grow the database with the requested example count so the
			// requested number of positives exists.
			if !o.Quick {
				cfg.Movies = maxInt(cfg.Movies, nPos*6)
			}
			ds, err := datagen.Movies(cfg)
			if err != nil {
				return nil, err
			}
			lcfg := o.learnerConfig(km, o.iterationsFor("imdb"), 10)
			m, minutes, err := crossValidate(ctx, baseline.DLearnCFD, ds, lcfg, o.folds(), o.Seed)
			if err != nil {
				return nil, err
			}
			row := Table6Row{KM: km, Positives: nPos, Negatives: 2 * nPos, F1: m.F1(), Minutes: minutes}
			rows = append(rows, row)
			fprintf(w, "  km=%-2d #P/#N=%d/%d  F1=%.2f  time=%.2fm\n", km, row.Positives, row.Negatives, row.F1, row.Minutes)
		}
	}
	return rows, nil
}

// --- Table 7 ----------------------------------------------------------------

// Table7Row is one cell of Table 7: the effect of the number of iterations d.
type Table7Row struct {
	D       int
	F1      float64
	Minutes float64
}

// Table7Depths returns the iteration sweep of Table 7.
func (o Options) Table7Depths() []int {
	if o.Quick {
		return []int{2, 3}
	}
	return []int{2, 3, 4, 5}
}

// RunTable7 regenerates Table 7: DLearn-CFD on IMDB+OMDB (3 MDs + CFDs) with
// varying bottom-clause construction depth d, k_m = 5.
func RunTable7(ctx context.Context, o Options) ([]Table7Row, error) {
	w := o.out()
	fprintf(w, "Table 7: effect of the number of iterations d (IMDB+OMDB, 3 MDs + CFDs, km=5)\n")
	ds, err := datagen.Movies(o.moviesConfig(3, 0.10))
	if err != nil {
		return nil, err
	}
	km := 5
	if o.Quick {
		km = 2
	}
	var rows []Table7Row
	for _, d := range o.Table7Depths() {
		cfg := o.learnerConfig(km, d, 10)
		m, minutes, err := crossValidate(ctx, baseline.DLearnCFD, ds, cfg, o.folds(), o.Seed)
		if err != nil {
			return nil, err
		}
		row := Table7Row{D: d, F1: m.F1(), Minutes: minutes}
		rows = append(rows, row)
		fprintf(w, "  d=%d  F1=%.2f  time=%.2fm\n", d, row.F1, row.Minutes)
	}
	return rows, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
