package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dlearn/internal/baseline"
	"dlearn/internal/datagen"
	"dlearn/internal/observe"
)

func TestTimingCollectorAggregates(t *testing.T) {
	c := NewTimingCollector()
	for run := 0; run < 2; run++ {
		c.Observe(observe.RunStarted{Target: "t", Positives: 4, Negatives: 8})
		c.Observe(observe.PhaseDone{Phase: observe.PhaseBottomClauses, Duration: time.Second})
		c.Observe(observe.IterationStarted{Iteration: 1})
		c.Observe(observe.ClauseAccepted{Iteration: 1, Positives: 3})
		c.Observe(observe.ClauseRejected{Iteration: 1})
		c.Observe(observe.PhaseDone{Phase: observe.PhaseCovering, Duration: 2 * time.Second})
		c.Observe(observe.RunFinished{Clauses: 1, ClausesConsidered: 10, UncoveredPositives: 1, Duration: 3 * time.Second})
	}
	s := c.Summary("exp")
	if s.Experiment != "exp" || s.Runs != 2 || s.Iterations != 2 ||
		s.ClausesAccepted != 2 || s.ClausesRejected != 2 || s.ClausesConsidered != 20 ||
		s.UncoveredPositives != 2 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if s.BottomClauseSeconds != 2 || s.CoveringSeconds != 4 || s.TotalSeconds != 6 {
		t.Errorf("unexpected timing aggregation: %+v", s)
	}
}

func TestWriteTimingJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := TimingSummary{Experiment: "test", Runs: 3, TotalSeconds: 1.5}
	if err := WriteTimingJSON(path, want); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got TimingSummary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, data)
	}
	if got != want {
		t.Errorf("round-trip = %+v, want %+v", got, want)
	}
}

// TestExperimentEmitsObserverEvents runs a real (small) cross-validated fit
// with a collector attached and checks events flowed all the way through
// Options.Observer → learner config → covering learner.
func TestExperimentEmitsObserverEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	o := QuickOptions()
	collector := NewTimingCollector()
	o.Observer = collector

	ds, err := datagen.Movies(o.moviesConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.learnerConfig(2, 2, 4)
	if _, _, err := crossValidate(context.Background(), baseline.DLearn, ds, cfg, o.folds(), o.Seed); err != nil {
		t.Fatal(err)
	}

	s := collector.Summary("smoke")
	if s.Runs != o.folds() {
		t.Errorf("collector saw %d runs, want one per fold (%d)", s.Runs, o.folds())
	}
	if s.Iterations == 0 || s.TotalSeconds <= 0 {
		t.Errorf("observer events did not flow through the harness: %+v", s)
	}
}
