package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dlearn/internal/logic"
	"dlearn/internal/subsumption"
)

// The snapshot wire format, version 2:
//
//	magic   "DLSNAP"            6 bytes
//	version uint16 big-endian   2 bytes
//	strings string table        uvarint count, then per string uvarint length + bytes
//	payload                     varint-framed values, see below
//	crc32   IEEE, big-endian    4 bytes, over everything before it
//
// Every string of the payload — term names, predicates, repair groups — is
// interned into the string table (in first-encounter order of the payload
// walk) and referenced by uvarint ID. Terms pack the variable flag into the
// low bit of the ID: uvarint(id<<1 | var). Version 1 wrote every string
// inline at every occurrence; the table writes each distinct value once,
// which is where the bulk of the snapshot-size reduction comes from (ground
// bottom clauses repeat the same constants across examples relentlessly).
//
// The payload is a deterministic depth-first serialization of an ExampleSet:
// integers as (u)varints, strings as table IDs, slices count-prefixed.
// Determinism matters beyond aesthetics: encode(decode(encode(x))) is
// byte-identical, so snapshot files can be compared and deduplicated by
// content, and the round-trip property is testable exactly.
//
// Version bumps are cheap — Decode rejects unknown versions and the caller
// falls back to a fresh preparation — so the format can evolve without
// migration code.

const (
	codecMagic   = "DLSNAP"
	codecVersion = 2
)

// ExampleSnapshot is the persistable form of one prepared coverage example:
// its ground bottom clause plus every preparation derived from it (the
// direct and CFD-stripped subsumption preparations, the CFD-only expansion
// and the full repair expansion). It mirrors coverage.Example, which
// converts to and from this form.
type ExampleSnapshot struct {
	Ground   logic.Clause
	Prep     subsumption.PreparedSnapshot
	Stripped subsumption.PreparedSnapshot
	CFDExp   []subsumption.PreparedSnapshot
	Repaired []subsumption.PreparedSnapshot
}

// ExampleSet is a whole training set of prepared examples — what one
// learning run loads or prepares in one step.
type ExampleSet struct {
	Pos []ExampleSnapshot
	Neg []ExampleSnapshot
}

// EncodeExampleSet serializes the set in the versioned binary format. The
// payload is encoded first so the string table is complete (in
// first-encounter order), then the file is assembled around it.
func EncodeExampleSet(set ExampleSet) []byte {
	e := &encoder{buf: make([]byte, 0, 1<<16), table: make(map[string]uint32)}
	e.exampleList(set.Pos)
	e.exampleList(set.Neg)

	tableSize := binary.MaxVarintLen64
	for _, s := range e.order {
		tableSize += binary.MaxVarintLen64 + len(s)
	}
	out := make([]byte, 0, len(codecMagic)+2+tableSize+len(e.buf)+4)
	out = append(out, codecMagic...)
	out = binary.BigEndian.AppendUint16(out, codecVersion)
	out = binary.AppendUvarint(out, uint64(len(e.order)))
	for _, s := range e.order {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = append(out, e.buf...)
	return binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// DecodeExampleSet parses a snapshot, verifying the magic, version and
// checksum first so a truncated or corrupted file — or a snapshot written by
// an older codec — fails fast with an error instead of yielding garbage
// preparations; the caller falls back to a fresh preparation and writes the
// current format back. Strings are shared through the table and literals are
// interned during decoding: structurally identical literals across all
// examples of the set share one backing structure, which is what lets
// paper-scale runs hold hundreds of prepared examples with heavily
// overlapping bottom clauses in memory.
func DecodeExampleSet(data []byte) (ExampleSet, error) {
	if len(data) < len(codecMagic)+2+4 {
		return ExampleSet{}, fmt.Errorf("persist: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:len(codecMagic)]) != codecMagic {
		return ExampleSet{}, fmt.Errorf("persist: bad snapshot magic")
	}
	if v := binary.BigEndian.Uint16(data[len(codecMagic):]); v != codecVersion {
		return ExampleSet{}, fmt.Errorf("persist: unsupported snapshot version %d (want %d)", v, codecVersion)
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return ExampleSet{}, fmt.Errorf("persist: snapshot checksum mismatch")
	}
	d := &decoder{data: body, off: len(codecMagic) + 2, in: newInterner()}
	d.stringTable()
	var set ExampleSet
	set.Pos = d.exampleList()
	set.Neg = d.exampleList()
	if d.err != nil {
		return ExampleSet{}, d.err
	}
	if d.off != len(body) {
		return ExampleSet{}, fmt.Errorf("persist: %d trailing bytes after snapshot payload", len(body)-d.off)
	}
	return set, nil
}

// encoder appends values to a growing buffer, interning every string into a
// deterministic first-encounter-order table. All writes are infallible.
type encoder struct {
	buf   []byte
	table map[string]uint32
	order []string
}

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }

// strID interns a string into the table, assigning the next dense ID.
func (e *encoder) strID(s string) uint32 {
	if id, ok := e.table[s]; ok {
		return id
	}
	id := uint32(len(e.order))
	e.table[s] = id
	e.order = append(e.order, s)
	return id
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(e.strID(s)))
}

func (e *encoder) boolean(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// term packs the variable flag into the low bit of the name's table ID.
func (e *encoder) term(t logic.Term) {
	v := uint64(e.strID(t.Name)) << 1
	if t.Var {
		v |= 1
	}
	e.uvarint(v)
}

func (e *encoder) literal(l logic.Literal) {
	e.uvarint(uint64(l.Kind))
	e.str(l.Pred)
	e.uvarint(uint64(len(l.Args)))
	for _, a := range l.Args {
		e.term(a)
	}
	e.uvarint(uint64(len(l.Cond)))
	for _, c := range l.Cond {
		e.uvarint(uint64(c.Op))
		e.term(c.L)
		e.term(c.R)
	}
	e.uvarint(uint64(l.Origin))
	e.str(l.Group)
	e.boolean(l.Induced)
}

func (e *encoder) clause(c logic.Clause) {
	e.literal(c.Head)
	e.uvarint(uint64(len(c.Body)))
	for _, l := range c.Body {
		e.literal(l)
	}
}

func (e *encoder) termPairs(ps [][2]logic.Term) {
	e.uvarint(uint64(len(ps)))
	for _, p := range ps {
		e.term(p[0])
		e.term(p[1])
	}
}

func (e *encoder) prepared(p subsumption.PreparedSnapshot) {
	e.clause(p.Clause)
	e.varint(int64(p.MaxNodes))
	e.termPairs(p.EqRoots)
	e.termPairs(p.SimPairs)
	e.uvarint(uint64(len(p.Connected)))
	for _, c := range p.Connected {
		e.uvarint(uint64(c.Literal))
		e.uvarint(uint64(len(c.Repairs)))
		for _, r := range c.Repairs {
			e.uvarint(uint64(r))
		}
	}
}

func (e *encoder) preparedList(ps []subsumption.PreparedSnapshot) {
	e.uvarint(uint64(len(ps)))
	for _, p := range ps {
		e.prepared(p)
	}
}

func (e *encoder) example(ex ExampleSnapshot) {
	e.clause(ex.Ground)
	e.prepared(ex.Prep)
	e.prepared(ex.Stripped)
	e.preparedList(ex.CFDExp)
	e.preparedList(ex.Repaired)
}

func (e *encoder) exampleList(exs []ExampleSnapshot) {
	e.uvarint(uint64(len(exs)))
	for _, ex := range exs {
		e.example(ex)
	}
}

// maxCount caps every decoded collection length. The checksum already rules
// out random corruption; the cap keeps a hand-crafted hostile snapshot from
// forcing a huge allocation before the payload runs out.
const maxCount = 1 << 24

// decoder reads the payload sequentially, latching the first error; every
// read after an error is a cheap no-op, so call sites stay unconditional.
type decoder struct {
	data  []byte
	off   int
	err   error
	table []string
	in    *interner
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: "+format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and bounds it.
func (d *decoder) count() int {
	v := d.uvarint()
	if v > maxCount {
		d.fail("implausible collection length %d", v)
		return 0
	}
	return int(v)
}

// stringTable reads the table every payload string references by ID.
func (d *decoder) stringTable() {
	n := d.count()
	if d.err != nil || n == 0 {
		return
	}
	d.table = make([]string, n)
	for i := range d.table {
		m := d.count()
		if d.err != nil {
			return
		}
		if d.off+m > len(d.data) {
			d.fail("truncated string table entry at offset %d", d.off)
			return
		}
		d.table[i] = string(d.data[d.off : d.off+m])
		d.off += m
	}
}

// tableString resolves a string-table ID.
func (d *decoder) tableString(id uint64) string {
	if d.err != nil {
		return ""
	}
	if id >= uint64(len(d.table)) {
		d.fail("string id %d out of table range %d", id, len(d.table))
		return ""
	}
	return d.table[id]
}

func (d *decoder) str() string {
	return d.tableString(d.uvarint())
}

func (d *decoder) boolean() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	b := d.data[d.off]
	d.off++
	if b > 1 {
		d.fail("invalid bool byte %d at offset %d", b, d.off-1)
		return false
	}
	return b == 1
}

func (d *decoder) term() logic.Term {
	v := d.uvarint()
	return logic.Term{Name: d.tableString(v >> 1), Var: v&1 == 1}
}

func (d *decoder) literal() logic.Literal {
	start := d.off
	var l logic.Literal
	l.Kind = logic.Kind(d.uvarint())
	l.Pred = d.str()
	if n := d.count(); n > 0 {
		l.Args = make([]logic.Term, n)
		for i := range l.Args {
			l.Args[i] = d.term()
		}
	}
	if n := d.count(); n > 0 {
		l.Cond = make([]logic.Condition, n)
		for i := range l.Cond {
			l.Cond[i] = logic.Condition{Op: logic.CondOp(d.uvarint()), L: d.term(), R: d.term()}
		}
	}
	l.Origin = logic.RepairOrigin(d.uvarint())
	l.Group = d.str()
	l.Induced = d.boolean()
	if d.err != nil {
		return l
	}
	// Intern on the literal's encoded bytes: table IDs are deterministic, so
	// byte equality is structural equality, and repeated literals across the
	// set share one Args/Cond backing.
	return d.in.literal(d.data[start:d.off], l)
}

func (d *decoder) clause() logic.Clause {
	var c logic.Clause
	c.Head = d.literal()
	if n := d.count(); n > 0 {
		c.Body = make([]logic.Literal, n)
		for i := range c.Body {
			c.Body[i] = d.literal()
		}
	}
	return c
}

func (d *decoder) termPairs() [][2]logic.Term {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([][2]logic.Term, n)
	for i := range out {
		out[i] = [2]logic.Term{d.term(), d.term()}
	}
	return out
}

func (d *decoder) prepared() subsumption.PreparedSnapshot {
	var p subsumption.PreparedSnapshot
	p.Clause = d.clause()
	p.MaxNodes = int(d.varint())
	p.EqRoots = d.termPairs()
	p.SimPairs = d.termPairs()
	if n := d.count(); n > 0 {
		p.Connected = make([]subsumption.ConnectedEntry, n)
		for i := range p.Connected {
			p.Connected[i].Literal = int(d.uvarint())
			if m := d.count(); m > 0 {
				p.Connected[i].Repairs = make([]int, m)
				for j := range p.Connected[i].Repairs {
					p.Connected[i].Repairs[j] = int(d.uvarint())
				}
			}
		}
	}
	return p
}

func (d *decoder) preparedList() []subsumption.PreparedSnapshot {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]subsumption.PreparedSnapshot, n)
	for i := range out {
		out[i] = d.prepared()
	}
	return out
}

func (d *decoder) example() ExampleSnapshot {
	var ex ExampleSnapshot
	ex.Ground = d.clause()
	ex.Prep = d.prepared()
	ex.Stripped = d.prepared()
	ex.CFDExp = d.preparedList()
	ex.Repaired = d.preparedList()
	return ex
}

func (d *decoder) exampleList() []ExampleSnapshot {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]ExampleSnapshot, n)
	for i := range out {
		out[i] = d.example()
	}
	return out
}

// interner dedupes decoded literals for the lifetime of one DecodeExampleSet
// call, keyed by their encoded bytes. Ground bottom clauses of different
// examples share most of their literals (the same database tuples reached
// from different seeds), and every Prepared of one example repeats the
// literals of its expansions, so interning collapses the dominant share of
// decoded allocations. Strings are already shared through the table.
type interner struct {
	literals map[string]logic.Literal
}

func newInterner() *interner {
	return &interner{literals: make(map[string]logic.Literal)}
}

// literal returns the canonical copy of a literal, keyed by its encoded
// bytes. The decoded literal is passed in so first occurrences need no
// re-decoding.
func (in *interner) literal(enc []byte, l logic.Literal) logic.Literal {
	if canon, ok := in.literals[string(enc)]; ok {
		return canon
	}
	in.literals[string(enc)] = l
	return l
}
