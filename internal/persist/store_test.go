package persist_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dlearn/internal/bottomclause"
	"dlearn/internal/constraints"
	"dlearn/internal/persist"
	"dlearn/internal/relation"
)

func testKey(b byte) persist.Key {
	var k persist.Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestDirStoreSaveLoad(t *testing.T) {
	store := persist.NewDirStore(filepath.Join(t.TempDir(), "snaps"))
	key := testKey(1)
	if _, err := store.Load(key); err != persist.ErrNotFound {
		t.Fatalf("Load on empty store = %v, want ErrNotFound", err)
	}
	want := []byte("payload")
	if err := store.Save(key, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := store.Load(key)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Load = %q, want %q", got, want)
	}
	// Overwrite replaces the value.
	want2 := []byte("payload-v2")
	if err := store.Save(key, want2); err != nil {
		t.Fatalf("Save overwrite: %v", err)
	}
	if got, _ := store.Load(key); !bytes.Equal(got, want2) {
		t.Fatalf("Load after overwrite = %q, want %q", got, want2)
	}
	// Distinct keys do not collide.
	if _, err := store.Load(testKey(2)); err != persist.ErrNotFound {
		t.Fatalf("Load of unrelated key = %v, want ErrNotFound", err)
	}
}

func TestDirStoreLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	store := persist.NewDirStore(dir)
	if err := store.Save(testKey(3), []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("store dir has %d entries %v, want 1", len(entries), names)
	}
}

// fpInputs builds a baseline FingerprintInputs over a small instance.
func fpInputs(t *testing.T) persist.FingerprintInputs {
	t.Helper()
	schema := relation.NewSchema()
	schema.MustAdd(relation.NewRelation("movies", relation.Attr("id", "imdb_id"), relation.Attr("title", "imdb_title")))
	db := relation.NewInstance(schema)
	db.MustInsert("movies", "m1", "Superbad")
	db.MustInsert("movies", "m2", "Election")
	target := relation.NewRelation("highGrossing", relation.Attr("title", "bom_title"))
	cfg := bottomclause.DefaultConfig()
	cfg.Seed = 1
	return persist.FingerprintInputs{
		Instance:     db,
		Target:       target,
		MDs:          []constraints.MD{constraints.SimpleMD("md1", "highGrossing", "title", "movies", "title")},
		CFDs:         []constraints.CFD{constraints.FD("fd1", "movies", []string{"id"}, "title")},
		Pos:          []relation.Tuple{relation.NewTuple("highGrossing", "Superbad")},
		Neg:          []relation.Tuple{relation.NewTuple("highGrossing", "Election")},
		BottomClause: cfg,
		Noise:        0.3,
	}
}

// TestFingerprintStability: equal inputs, independently constructed, hash to
// the same key — otherwise a restarted process could never hit its own
// snapshots.
func TestFingerprintStability(t *testing.T) {
	if fpInputs(t).Key() != fpInputs(t).Key() {
		t.Fatal("identical inputs produced different keys")
	}
}

// TestFingerprintSensitivity: every input that can change the prepared
// examples must change the key. This is the property that makes a stale
// database or constraint set provably miss the cache.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpInputs(t).Key()
	mutations := map[string]func(f *persist.FingerprintInputs){
		"tuple inserted": func(f *persist.FingerprintInputs) {
			f.Instance.MustInsert("movies", "m3", "Clueless")
		},
		"tuple value changed": func(f *persist.FingerprintInputs) {
			f.Instance.ReplaceValue("movies", 1, "Superbad", "Superbad (2007)")
		},
		"CFD added": func(f *persist.FingerprintInputs) {
			f.CFDs = append(f.CFDs, constraints.FD("fd2", "movies", []string{"title"}, "id"))
		},
		"CFD pattern changed": func(f *persist.FingerprintInputs) {
			f.CFDs[0] = constraints.NewCFD("fd1", "movies", []string{"id"}, "title", map[string]string{"id": "m1"})
		},
		"CFD removed": func(f *persist.FingerprintInputs) { f.CFDs = nil },
		"MD changed": func(f *persist.FingerprintInputs) {
			f.MDs[0] = constraints.SimpleMD("md1", "highGrossing", "title", "movies", "id")
		},
		"positive example added": func(f *persist.FingerprintInputs) {
			f.Pos = append(f.Pos, relation.NewTuple("highGrossing", "Clueless"))
		},
		"example order swapped": func(f *persist.FingerprintInputs) {
			f.Pos, f.Neg = f.Neg, f.Pos
		},
		"bottom-clause iterations":  func(f *persist.FingerprintInputs) { f.BottomClause.Iterations++ },
		"bottom-clause sample seed": func(f *persist.FingerprintInputs) { f.BottomClause.Seed++ },
		"similarity threshold":      func(f *persist.FingerprintInputs) { f.BottomClause.SimilarityThreshold += 0.1 },
		"CFDs disabled":             func(f *persist.FingerprintInputs) { f.BottomClause.UseCFDs = false },
		"subsumption budget":        func(f *persist.FingerprintInputs) { f.Subsumption.MaxNodes = 123 },
		"repair budget":             func(f *persist.FingerprintInputs) { f.Repair.MaxClauses = 3 },
		"noise tolerance":           func(f *persist.FingerprintInputs) { f.Noise = 0.1 },
	}
	for name, mutate := range mutations {
		f := fpInputs(t)
		mutate(&f)
		if f.Key() == base {
			t.Errorf("%s: key unchanged", name)
		}
	}
}

// TestDirStoreCompactLRU checks the size-capped sweep: the least-recently-
// used snapshots are removed until the store fits, and a Load refreshes a
// snapshot's recency so it survives a sweep that removes older siblings.
func TestDirStoreCompactLRU(t *testing.T) {
	dir := t.TempDir()
	store := persist.NewDirStore(dir)
	payload := bytes.Repeat([]byte("x"), 100)
	for b := byte(1); b <= 4; b++ {
		if err := store.Save(testKey(b), payload); err != nil {
			t.Fatalf("Save %d: %v", b, err)
		}
		// Stagger mtimes so LRU order is unambiguous on coarse filesystems.
		path := filepath.Join(dir, testKey(b).String()+".dlsnap")
		mt := time.Now().Add(-time.Hour * time.Duration(10-int(b)))
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 1 (the oldest) via Load: it must now outrank keys 2 and 3.
	if _, err := store.Load(testKey(1)); err != nil {
		t.Fatalf("Load: %v", err)
	}

	store.SetMaxBytes(250) // room for two 100-byte snapshots
	stats, err := store.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.Removed != 2 || stats.Remaining != 2 {
		t.Fatalf("Compact stats = %+v, want 2 removed / 2 remaining", stats)
	}
	if stats.RemainingBytes != 200 || stats.RemovedBytes != 200 {
		t.Fatalf("Compact byte stats = %+v", stats)
	}
	for b, want := range map[byte]bool{1: true, 2: false, 3: false, 4: true} {
		_, err := store.Load(testKey(b))
		if got := err == nil; got != want {
			t.Errorf("after sweep, key %d present = %v (err %v), want %v", b, got, err, want)
		}
	}
}

// TestDirStoreSaveSweeps checks that a capped store sweeps automatically on
// Save and never removes the snapshot just written, even when it alone
// exceeds the cap.
func TestDirStoreSaveSweeps(t *testing.T) {
	dir := t.TempDir()
	store := persist.NewDirStore(dir).SetMaxBytes(150)
	old := testKey(7)
	if err := store.Save(old, bytes.Repeat([]byte("a"), 100)); err != nil {
		t.Fatal(err)
	}
	oldPath := filepath.Join(dir, old.String()+".dlsnap")
	mt := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(oldPath, mt, mt); err != nil {
		t.Fatal(err)
	}
	// The new snapshot alone busts the cap; the old one must be swept, the
	// new one kept.
	fresh := testKey(8)
	if err := store.Save(fresh, bytes.Repeat([]byte("b"), 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(old); err != persist.ErrNotFound {
		t.Errorf("old snapshot survived the Save sweep: %v", err)
	}
	if _, err := store.Load(fresh); err != nil {
		t.Errorf("fresh snapshot was swept: %v", err)
	}
	bytesTotal, files, err := store.Size()
	if err != nil || files != 1 || bytesTotal != 200 {
		t.Errorf("Size = (%d, %d, %v), want (200, 1, nil)", bytesTotal, files, err)
	}
}

// TestDirStoreCompactRemovesAgedTempFiles checks orphaned temp files from a
// crashed writer are swept once old, while young ones (possibly an in-flight
// Save) survive.
func TestDirStoreCompactRemovesAgedTempFiles(t *testing.T) {
	dir := t.TempDir()
	store := persist.NewDirStore(dir)
	if err := store.Save(testKey(9), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	aged := filepath.Join(dir, testKey(5).String()+".tmp-orphan")
	if err := os.WriteFile(aged, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	mt := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(aged, mt, mt); err != nil {
		t.Fatal(err)
	}
	young := filepath.Join(dir, testKey(6).String()+".tmp-inflight")
	if err := os.WriteFile(young, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := os.Stat(aged); !os.IsNotExist(err) {
		t.Errorf("aged temp file survived Compact: %v", err)
	}
	if _, err := os.Stat(young); err != nil {
		t.Errorf("young temp file was removed: %v", err)
	}
	if _, err := store.Load(testKey(9)); err != nil {
		t.Errorf("snapshot removed by uncapped Compact: %v", err)
	}
}

// TestDirStoreSizeEmpty checks Size on a store whose directory was never
// created.
func TestDirStoreSizeEmpty(t *testing.T) {
	store := persist.NewDirStore(filepath.Join(t.TempDir(), "never-created"))
	bytesTotal, files, err := store.Size()
	if err != nil || bytesTotal != 0 || files != 0 {
		t.Errorf("Size of missing dir = (%d, %d, %v), want zeros", bytesTotal, files, err)
	}
	if stats, err := store.Compact(); err != nil || stats != (persist.CompactStats{}) {
		t.Errorf("Compact of missing dir = (%+v, %v)", stats, err)
	}
}

// TestFingerprintInternerInvariance: the fingerprint hashes the *logical*
// content of the instance — relation names, row order, string values — not
// the interned representation. Two instances that converge to the same
// tuples through different mutation histories (and therefore different
// interner tables and ID assignments) must produce the same snapshot key,
// and hence the same result key, so a repaired-then-rebuilt database still
// hits its warm snapshots.
func TestFingerprintInternerInvariance(t *testing.T) {
	base := fpInputs(t)

	// Build the same logical instance along a different path: insert scratch
	// values first (polluting the interner with extra IDs), then rewrite them
	// to the target values with both mutation primitives.
	schema := base.Instance.Schema()
	db := relation.NewInstance(schema)
	db.MustInsert("movies", "m1", "scratch-title")
	db.MustInsert("movies", "tmp", "Election")
	if n := db.ReplaceValue("movies", 1, "scratch-title", "Superbad"); n != 1 {
		t.Fatalf("ReplaceValue rewrote %d fields, want 1", n)
	}
	if err := db.SetValueAt("movies", 1, 0, "m2"); err != nil {
		t.Fatalf("SetValueAt: %v", err)
	}
	for i, want := range []relation.Tuple{
		relation.NewTuple("movies", "m1", "Superbad"),
		relation.NewTuple("movies", "m2", "Election"),
	} {
		if got := db.Tuples("movies")[i]; !got.Equal(want) {
			t.Fatalf("rebuilt tuple %d = %v, want %v", i, got, want)
		}
	}
	if db.DistinctValueCount() == base.Instance.DistinctValueCount() {
		t.Fatal("rebuilt instance should have extra interned values for the test to mean anything")
	}

	rebuilt := base
	rebuilt.Instance = db
	if base.Key() != rebuilt.Key() {
		t.Fatal("snapshot keys differ across interner histories of the same logical instance")
	}

	resultOf := func(f persist.FingerprintInputs) persist.Key {
		return persist.ResultFingerprintInputs{Snapshot: f.Key(), Seed: 7, MaxClauses: 4}.Key()
	}
	if resultOf(base) != resultOf(rebuilt) {
		t.Fatal("result keys differ across interner histories of the same logical instance")
	}
}
