package persist_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dlearn/internal/bottomclause"
	"dlearn/internal/constraints"
	"dlearn/internal/persist"
	"dlearn/internal/relation"
)

func testKey(b byte) persist.Key {
	var k persist.Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestDirStoreSaveLoad(t *testing.T) {
	store := persist.NewDirStore(filepath.Join(t.TempDir(), "snaps"))
	key := testKey(1)
	if _, err := store.Load(key); err != persist.ErrNotFound {
		t.Fatalf("Load on empty store = %v, want ErrNotFound", err)
	}
	want := []byte("payload")
	if err := store.Save(key, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := store.Load(key)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Load = %q, want %q", got, want)
	}
	// Overwrite replaces the value.
	want2 := []byte("payload-v2")
	if err := store.Save(key, want2); err != nil {
		t.Fatalf("Save overwrite: %v", err)
	}
	if got, _ := store.Load(key); !bytes.Equal(got, want2) {
		t.Fatalf("Load after overwrite = %q, want %q", got, want2)
	}
	// Distinct keys do not collide.
	if _, err := store.Load(testKey(2)); err != persist.ErrNotFound {
		t.Fatalf("Load of unrelated key = %v, want ErrNotFound", err)
	}
}

func TestDirStoreLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	store := persist.NewDirStore(dir)
	if err := store.Save(testKey(3), []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("store dir has %d entries %v, want 1", len(entries), names)
	}
}

// fpInputs builds a baseline FingerprintInputs over a small instance.
func fpInputs(t *testing.T) persist.FingerprintInputs {
	t.Helper()
	schema := relation.NewSchema()
	schema.MustAdd(relation.NewRelation("movies", relation.Attr("id", "imdb_id"), relation.Attr("title", "imdb_title")))
	db := relation.NewInstance(schema)
	db.MustInsert("movies", "m1", "Superbad")
	db.MustInsert("movies", "m2", "Election")
	target := relation.NewRelation("highGrossing", relation.Attr("title", "bom_title"))
	cfg := bottomclause.DefaultConfig()
	cfg.Seed = 1
	return persist.FingerprintInputs{
		Instance:     db,
		Target:       target,
		MDs:          []constraints.MD{constraints.SimpleMD("md1", "highGrossing", "title", "movies", "title")},
		CFDs:         []constraints.CFD{constraints.FD("fd1", "movies", []string{"id"}, "title")},
		Pos:          []relation.Tuple{relation.NewTuple("highGrossing", "Superbad")},
		Neg:          []relation.Tuple{relation.NewTuple("highGrossing", "Election")},
		BottomClause: cfg,
		Noise:        0.3,
	}
}

// TestFingerprintStability: equal inputs, independently constructed, hash to
// the same key — otherwise a restarted process could never hit its own
// snapshots.
func TestFingerprintStability(t *testing.T) {
	if fpInputs(t).Key() != fpInputs(t).Key() {
		t.Fatal("identical inputs produced different keys")
	}
}

// TestFingerprintSensitivity: every input that can change the prepared
// examples must change the key. This is the property that makes a stale
// database or constraint set provably miss the cache.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpInputs(t).Key()
	mutations := map[string]func(f *persist.FingerprintInputs){
		"tuple inserted": func(f *persist.FingerprintInputs) {
			f.Instance.MustInsert("movies", "m3", "Clueless")
		},
		"tuple value changed": func(f *persist.FingerprintInputs) {
			f.Instance.ReplaceValue("movies", 1, "Superbad", "Superbad (2007)")
		},
		"CFD added": func(f *persist.FingerprintInputs) {
			f.CFDs = append(f.CFDs, constraints.FD("fd2", "movies", []string{"title"}, "id"))
		},
		"CFD pattern changed": func(f *persist.FingerprintInputs) {
			f.CFDs[0] = constraints.NewCFD("fd1", "movies", []string{"id"}, "title", map[string]string{"id": "m1"})
		},
		"CFD removed": func(f *persist.FingerprintInputs) { f.CFDs = nil },
		"MD changed": func(f *persist.FingerprintInputs) {
			f.MDs[0] = constraints.SimpleMD("md1", "highGrossing", "title", "movies", "id")
		},
		"positive example added": func(f *persist.FingerprintInputs) {
			f.Pos = append(f.Pos, relation.NewTuple("highGrossing", "Clueless"))
		},
		"example order swapped": func(f *persist.FingerprintInputs) {
			f.Pos, f.Neg = f.Neg, f.Pos
		},
		"bottom-clause iterations":  func(f *persist.FingerprintInputs) { f.BottomClause.Iterations++ },
		"bottom-clause sample seed": func(f *persist.FingerprintInputs) { f.BottomClause.Seed++ },
		"similarity threshold":      func(f *persist.FingerprintInputs) { f.BottomClause.SimilarityThreshold += 0.1 },
		"CFDs disabled":             func(f *persist.FingerprintInputs) { f.BottomClause.UseCFDs = false },
		"subsumption budget":        func(f *persist.FingerprintInputs) { f.Subsumption.MaxNodes = 123 },
		"repair budget":             func(f *persist.FingerprintInputs) { f.Repair.MaxClauses = 3 },
		"noise tolerance":           func(f *persist.FingerprintInputs) { f.Noise = 0.1 },
	}
	for name, mutate := range mutations {
		f := fpInputs(t)
		mutate(&f)
		if f.Key() == base {
			t.Errorf("%s: key unchanged", name)
		}
	}
}
