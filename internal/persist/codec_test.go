package persist_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"dlearn/internal/coverage"
	"dlearn/internal/logic"
	"dlearn/internal/persist"
	"dlearn/internal/repair"
	"dlearn/internal/subsumption"
)

// genGround builds a ground bottom clause with the full literal zoo the
// codec must carry: relation literals, restriction literals (=, ≠, ≈,
// including induced equalities), and MD and CFD repair literals with
// conditions and groups, so preparations have non-trivial equality
// closures, similarity pairs, connectivity and repair expansions.
func genGround(rng *rand.Rand) logic.Clause {
	consts := []string{"a", "b", "c", "d", "e"}
	pick := func() logic.Term { return logic.Const(consts[rng.Intn(len(consts))]) }
	id := logic.Const(consts[rng.Intn(len(consts))])
	title := pick()
	body := []logic.Literal{
		logic.Rel("movies", id, title),
		logic.Rel("mov2genres", id, pick()),
	}
	if rng.Intn(2) == 0 {
		body = append(body, logic.Rel("ratings", id, pick()))
	}
	switch rng.Intn(4) {
	case 0:
		body = append(body, logic.Eq(pick(), pick()))
	case 1:
		body = append(body, logic.InducedEq(pick(), pick()))
	case 2:
		body = append(body, logic.Sim(pick(), pick()))
	case 3:
		body = append(body, logic.Neq(pick(), pick()))
	}
	if rng.Intn(2) == 0 {
		v := logic.Var("vt")
		body = append(body,
			logic.Sim(title, v),
			logic.RepairInGroup("md1", "md1#0", logic.OriginMD, title, v,
				logic.Condition{Op: logic.CondSim, L: title, R: v}))
	}
	if rng.Intn(2) == 0 {
		v := logic.Var("vg")
		g := pick()
		body = append(body, logic.Rel("mov2genres", id, g),
			logic.RepairInGroup("cfd1", "cfd1#0", logic.OriginCFD, g, v,
				logic.Condition{Op: logic.CondEq, L: v, R: pick()}))
	}
	return logic.NewClause(logic.Rel("highGrossing", title), body...)
}

// genCandidate builds a small non-ground candidate clause to probe
// preparations with.
func genCandidate(rng *rand.Rand) logic.Clause {
	x, y := logic.Var("x"), logic.Var("y")
	body := []logic.Literal{logic.Rel("movies", y, x)}
	if rng.Intn(2) == 0 {
		body = append(body, logic.Rel("mov2genres", y, logic.Var("z")))
	}
	if rng.Intn(3) == 0 {
		body = append(body, logic.Rel("ratings", y, logic.Const("a")))
	}
	return logic.NewClause(logic.Rel("highGrossing", x), body...)
}

func genSet(t *testing.T, rng *rand.Rand, e *coverage.Evaluator, nPos, nNeg int) ([]*coverage.Example, []*coverage.Example, persist.ExampleSet) {
	t.Helper()
	ctx := context.Background()
	grounds := func(n int) []logic.Clause {
		out := make([]logic.Clause, n)
		for i := range out {
			out[i] = genGround(rng)
		}
		return out
	}
	pos, err := e.NewExamples(ctx, grounds(nPos))
	if err != nil {
		t.Fatalf("NewExamples: %v", err)
	}
	neg, err := e.NewExamples(ctx, grounds(nNeg))
	if err != nil {
		t.Fatalf("NewExamples: %v", err)
	}
	return pos, neg, coverage.SnapshotExamples(pos, neg)
}

func newEvaluator() *coverage.Evaluator {
	return coverage.NewEvaluator(coverage.Options{
		Subsumption: subsumption.Options{MaxNodes: 50000},
		Repair:      repair.Options{MaxClauses: 8, MaxStates: 128},
		Threads:     2,
	})
}

// TestRoundTripByteEquality is the codec's property test:
// encode(decode(encode(set))) must be byte-identical to encode(set), over
// many randomly generated prepared-example sets.
func TestRoundTripByteEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := newEvaluator()
	for i := 0; i < 25; i++ {
		_, _, set := genSet(t, rng, e, 1+rng.Intn(4), rng.Intn(3))
		data := persist.EncodeExampleSet(set)
		decoded, err := persist.DecodeExampleSet(data)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		again := persist.EncodeExampleSet(decoded)
		if !bytes.Equal(data, again) {
			t.Fatalf("case %d: re-encoding decoded set changed bytes (%d vs %d)", i, len(data), len(again))
		}
	}
}

// TestDecodedExamplesBehaveIdentically cross-checks restored preparations
// against fresh ones, FuzzSubsumes-style: every coverage answer over the
// decoded examples must match the answer over the originals.
func TestDecodedExamplesBehaveIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		e := newEvaluator()
		pos, neg, set := genSet(t, rng, e, 4, 4)
		decoded, err := persist.DecodeExampleSet(persist.EncodeExampleSet(set))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		restored := coverage.NewEvaluator(coverage.Options{
			Subsumption: subsumption.Options{MaxNodes: 50000},
			Repair:      repair.Options{MaxClauses: 8, MaxStates: 128},
			Threads:     2,
		})
		var rPos, rNeg []*coverage.Example
		for _, s := range decoded.Pos {
			rPos = append(rPos, restored.RestoreExample(s))
		}
		for _, s := range decoded.Neg {
			rNeg = append(rNeg, restored.RestoreExample(s))
		}
		for j := 0; j < 12; j++ {
			c := genCandidate(rng)
			for k := range pos {
				if got, want := restored.CoversPositiveExample(ctx, c, rPos[k]), e.CoversPositiveExample(ctx, c, pos[k]); got != want {
					t.Fatalf("case %d cand %d pos %d: restored=%v fresh=%v\nc=%s\ng=%s", i, j, k, got, want, c, pos[k].Ground)
				}
			}
			for k := range neg {
				if got, want := restored.CoversNegativeExample(ctx, c, rNeg[k]), e.CoversNegativeExample(ctx, c, neg[k]); got != want {
					t.Fatalf("case %d cand %d neg %d: restored=%v fresh=%v\nc=%s\ng=%s", i, j, k, got, want, c, neg[k].Ground)
				}
			}
		}
	}
}

// TestCorruptedSnapshotRejected flips bytes across the snapshot and checks
// every corruption is caught by the checksum (or the header checks), never
// silently decoded.
func TestCorruptedSnapshotRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := newEvaluator()
	_, _, set := genSet(t, rng, e, 2, 1)
	data := persist.EncodeExampleSet(set)
	for pos := 0; pos < len(data); pos += 1 + pos/16 {
		corrupt := bytes.Clone(data)
		corrupt[pos] ^= 0x41
		if _, err := persist.DecodeExampleSet(corrupt); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", pos, len(data))
		}
	}
}

// TestTruncatedSnapshotRejected checks every proper prefix fails to decode.
func TestTruncatedSnapshotRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := newEvaluator()
	_, _, set := genSet(t, rng, e, 2, 1)
	data := persist.EncodeExampleSet(set)
	for n := 0; n < len(data); n += 1 + n/8 {
		if _, err := persist.DecodeExampleSet(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(data))
		}
	}
}

// TestUnsupportedVersionRejected checks the version gate so a future format
// bump degrades to a miss on old binaries instead of misparsing.
func TestUnsupportedVersionRejected(t *testing.T) {
	data := persist.EncodeExampleSet(persist.ExampleSet{})
	data[6], data[7] = 0xFF, 0xFE
	if _, err := persist.DecodeExampleSet(data); err == nil {
		t.Fatal("bumped version went undetected")
	}
}

// TestEmptySetRoundTrips pins the degenerate case.
func TestEmptySetRoundTrips(t *testing.T) {
	data := persist.EncodeExampleSet(persist.ExampleSet{})
	set, err := persist.DecodeExampleSet(data)
	if err != nil {
		t.Fatalf("decode empty set: %v", err)
	}
	if len(set.Pos) != 0 || len(set.Neg) != 0 {
		t.Fatalf("empty set decoded as %d/%d examples", len(set.Pos), len(set.Neg))
	}
}

// TestOldVersionSnapshotRejected pins the v1 → v2 upgrade path: a snapshot
// carrying the previous format version with a valid checksum is rejected by
// the version gate specifically — not the checksum — so callers fall back to
// a fresh preparation and write the current format back.
func TestOldVersionSnapshotRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := newEvaluator()
	_, _, set := genSet(t, rng, e, 1, 1)
	data := persist.EncodeExampleSet(set)
	data = data[:len(data)-4]
	data[6], data[7] = 0, 1 // version 1, big-endian
	data = binary.BigEndian.AppendUint32(data, crc32.ChecksumIEEE(data))
	_, err := persist.DecodeExampleSet(data)
	if err == nil {
		t.Fatal("version-1 snapshot went undetected")
	}
	if !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("want a version error naming version 1, got %v", err)
	}
}
