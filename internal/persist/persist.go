// Package persist stores prepared coverage examples across runs. Preparing
// the ground bottom clauses of a training set — θ-subsumption preprocessing
// plus the CFD/repair expansions of Section 4.3 — dominates every cold start
// (tens of seconds against ~2.5s of actual scoring on the coverage bench),
// yet the result depends only on the database instance, the declarative
// constraints and the preparation options. This package makes that
// observation actionable with three pieces:
//
//   - A content-addressed Key (fingerprint.go): a SHA-256 over the relational
//     database, the MD and CFD sets, the bottom-clause configuration, the
//     noise option, the coverage budgets and the training examples. Any
//     mutation of the inputs changes the key, so a stale database or a
//     changed constraint set can never serve a wrong cache hit.
//   - A versioned binary codec (codec.go) for snapshots of prepared examples:
//     the ground bottom clause plus the frozen subsumption preparations
//     (equality closures, repair connectivity) and every CFD/repair
//     expansion. Decoding interns terms and literals so identical structures
//     are shared across the restored preparations.
//   - A Store interface with a filesystem implementation (DirStore) that
//     writes one snapshot file per key.
//
// The coverage evaluator's LoadOrPrepareExamples ties the pieces together;
// any load, decode or validation failure degrades gracefully to a fresh
// preparation.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dlearn/internal/fault"
)

// ErrNotFound is returned by Store.Load when no snapshot exists for a key.
var ErrNotFound = errors.New("persist: snapshot not found")

// Store is a content-addressed snapshot store. Implementations must be safe
// for concurrent use; keys are collision-resistant content hashes, so a
// value stored under a key never needs invalidation.
type Store interface {
	// Load returns the snapshot stored under the key, or ErrNotFound.
	Load(key Key) ([]byte, error)
	// Save stores the snapshot under the key, replacing any previous value.
	Save(key Key, data []byte) error
}

// snapshotExt is the file extension of DirStore snapshot files.
const snapshotExt = ".dlsnap"

// tmpMaxAge is how old an orphaned temp file (left by a crashed writer) must
// be before Compact removes it. Young temp files may belong to an in-flight
// Save and are left alone.
const tmpMaxAge = time.Hour

// DirStore is a filesystem-backed Store: one file per key, named by the
// key's hex form, inside a single directory. The directory is created on
// first Save. Writes are atomic (temp file plus rename), so a crashed or
// concurrent writer can leave at worst a stale temp file, never a torn
// snapshot under a final name.
//
// Snapshots are content-addressed, so one blob per fingerprint accumulates
// forever as inputs evolve — every edited tuple or tweaked budget mints a
// new key and orphans the old file. SetMaxBytes caps the directory: Save
// sweeps least-recently-used snapshots (Load refreshes a snapshot's mtime,
// so recently served keys survive) until the store fits, and Compact runs
// the same sweep on demand.
type DirStore struct {
	dir      string
	maxBytes int64
	faults   *fault.Injector
}

// NewDirStore returns a store rooted at dir. The directory does not need to
// exist yet.
func NewDirStore(dir string) *DirStore { return &DirStore{dir: dir} }

// Dir returns the directory the store writes to.
func (s *DirStore) Dir() string { return s.dir }

// SetMaxBytes caps the store's total snapshot size: after every Save
// (and on Compact) least-recently-used snapshots are removed until the
// directory holds at most n bytes. Zero (the default) means unbounded.
// It returns the store for chaining.
func (s *DirStore) SetMaxBytes(n int64) *DirStore {
	s.maxBytes = n
	return s
}

// MaxBytes returns the configured size cap; zero means unbounded.
func (s *DirStore) MaxBytes() int64 { return s.maxBytes }

// SetFaults installs a fault-injection schedule on the store's I/O seams
// (injection points "persist.load" and "persist.save"). Nil — the default —
// disables injection entirely. It returns the store for chaining. Test hook;
// production stores never set it.
func (s *DirStore) SetFaults(inj *fault.Injector) *DirStore {
	s.faults = inj
	return s
}

func (s *DirStore) path(key Key) string {
	return filepath.Join(s.dir, key.String()+snapshotExt)
}

// Load reads the snapshot file for the key. A hit refreshes the file's
// modification time (best effort), so the size-capped sweep removes
// least-recently-used snapshots rather than least-recently-written ones.
func (s *DirStore) Load(key Key) ([]byte, error) {
	if err := s.faults.Err("persist.load"); err != nil {
		return nil, err
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("persist: loading snapshot %s: %w", key, err)
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return data, nil
}

// Save writes the snapshot file for the key atomically.
func (s *DirStore) Save(key Key, data []byte) error {
	if f := s.faults.Fire("persist.save"); f != nil {
		if f.Kind == fault.KindTorn {
			// A torn write: the truncated payload lands under the final name —
			// exactly what a crash between write and fsync can leave behind on
			// filesystems without atomic rename durability. The codec's
			// checksum catches it at the next Load as a graceful miss.
			_ = os.MkdirAll(s.dir, 0o755)
			_ = os.WriteFile(s.path(key), f.Torn(data), 0o644)
		}
		return f.Err()
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("persist: creating snapshot dir: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, key.String()+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("persist: writing snapshot %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: writing snapshot %s: %w", key, err)
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: committing snapshot %s: %w", key, err)
	}
	if s.maxBytes > 0 {
		// A failed sweep must not fail the write: the snapshot itself landed.
		// The just-written snapshot is excluded from the sweep explicitly —
		// on filesystems with coarse mtime granularity it could otherwise tie
		// with a stale sibling and lose the LRU ordering.
		_, _ = s.compact(s.path(key))
	}
	return nil
}

// CompactStats reports what a sweep removed and what remains.
type CompactStats struct {
	// Removed and RemovedBytes count the snapshot files the LRU sweep
	// deleted (temp files are accounted separately).
	Removed      int
	RemovedBytes int64
	// TempRemoved counts aged orphan temp files reclaimed by the sweep.
	TempRemoved int
	// Remaining and RemainingBytes describe the store's snapshots after the
	// sweep.
	Remaining      int
	RemainingBytes int64
}

// Compact sweeps the store: orphaned temp files older than an hour are
// removed unconditionally, and — when a size cap is set — the
// least-recently-used snapshots (oldest modification time; Load refreshes
// it) are removed until the remaining snapshots fit in MaxBytes. The
// most-recently-used snapshot is never removed even if it alone exceeds the
// cap, so a store whose cap is smaller than one snapshot still serves warm
// starts for the live fingerprint.
func (s *DirStore) Compact() (CompactStats, error) { return s.compact("") }

// compact implements Compact; a non-empty protect path (the snapshot a Save
// just wrote) is never swept regardless of its timestamp.
func (s *DirStore) compact(protect string) (CompactStats, error) {
	var stats CompactStats
	entries, err := os.ReadDir(s.dir)
	if errors.Is(err, os.ErrNotExist) {
		return stats, nil
	}
	if err != nil {
		return stats, fmt.Errorf("persist: compacting snapshot dir: %w", err)
	}

	type snapFile struct {
		path    string
		size    int64
		mtime   time.Time
		removed bool
	}
	var snaps []snapFile
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent sweep; skip
		}
		path := filepath.Join(s.dir, e.Name())
		switch {
		case strings.HasSuffix(e.Name(), snapshotExt):
			snaps = append(snaps, snapFile{path: path, size: info.Size(), mtime: info.ModTime()})
			total += info.Size()
		case strings.Contains(e.Name(), ".tmp-"):
			// An aged orphan from a crashed writer.
			if time.Since(info.ModTime()) > tmpMaxAge {
				if os.Remove(path) == nil {
					stats.TempRemoved++
				}
			}
		}
	}

	if s.maxBytes > 0 && total > s.maxBytes {
		// Stable order with a path tie-break: coarse filesystem timestamps
		// can tie, and the sweep must stay deterministic when they do.
		sort.SliceStable(snaps, func(i, j int) bool {
			if !snaps[i].mtime.Equal(snaps[j].mtime) {
				return snaps[i].mtime.Before(snaps[j].mtime)
			}
			return snaps[i].path < snaps[j].path
		})
		for i := 0; i < len(snaps)-1 && total > s.maxBytes; i++ {
			if snaps[i].path == protect {
				continue
			}
			if err := os.Remove(snaps[i].path); err != nil {
				continue
			}
			total -= snaps[i].size
			stats.Removed++
			stats.RemovedBytes += snaps[i].size
			snaps[i].removed = true
		}
	}
	for _, f := range snaps {
		if !f.removed {
			stats.Remaining++
			stats.RemainingBytes += f.size
		}
	}
	return stats, nil
}

// Size returns the total bytes and file count of the snapshots currently in
// the store (temp files excluded). A store whose directory does not exist
// yet is empty.
func (s *DirStore) Size() (bytes int64, files int, err error) {
	entries, err := os.ReadDir(s.dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("persist: sizing snapshot dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapshotExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		bytes += info.Size()
		files++
	}
	return bytes, files, nil
}
