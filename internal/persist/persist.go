// Package persist stores prepared coverage examples across runs. Preparing
// the ground bottom clauses of a training set — θ-subsumption preprocessing
// plus the CFD/repair expansions of Section 4.3 — dominates every cold start
// (tens of seconds against ~2.5s of actual scoring on the coverage bench),
// yet the result depends only on the database instance, the declarative
// constraints and the preparation options. This package makes that
// observation actionable with three pieces:
//
//   - A content-addressed Key (fingerprint.go): a SHA-256 over the relational
//     database, the MD and CFD sets, the bottom-clause configuration, the
//     noise option, the coverage budgets and the training examples. Any
//     mutation of the inputs changes the key, so a stale database or a
//     changed constraint set can never serve a wrong cache hit.
//   - A versioned binary codec (codec.go) for snapshots of prepared examples:
//     the ground bottom clause plus the frozen subsumption preparations
//     (equality closures, repair connectivity) and every CFD/repair
//     expansion. Decoding interns terms and literals so identical structures
//     are shared across the restored preparations.
//   - A Store interface with a filesystem implementation (DirStore) that
//     writes one snapshot file per key.
//
// The coverage evaluator's LoadOrPrepareExamples ties the pieces together;
// any load, decode or validation failure degrades gracefully to a fresh
// preparation.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrNotFound is returned by Store.Load when no snapshot exists for a key.
var ErrNotFound = errors.New("persist: snapshot not found")

// Store is a content-addressed snapshot store. Implementations must be safe
// for concurrent use; keys are collision-resistant content hashes, so a
// value stored under a key never needs invalidation.
type Store interface {
	// Load returns the snapshot stored under the key, or ErrNotFound.
	Load(key Key) ([]byte, error)
	// Save stores the snapshot under the key, replacing any previous value.
	Save(key Key, data []byte) error
}

// snapshotExt is the file extension of DirStore snapshot files.
const snapshotExt = ".dlsnap"

// DirStore is a filesystem-backed Store: one file per key, named by the
// key's hex form, inside a single directory. The directory is created on
// first Save. Writes are atomic (temp file plus rename), so a crashed or
// concurrent writer can leave at worst a stale temp file, never a torn
// snapshot under a final name.
type DirStore struct {
	dir string
}

// NewDirStore returns a store rooted at dir. The directory does not need to
// exist yet.
func NewDirStore(dir string) *DirStore { return &DirStore{dir: dir} }

// Dir returns the directory the store writes to.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(key Key) string {
	return filepath.Join(s.dir, key.String()+snapshotExt)
}

// Load reads the snapshot file for the key.
func (s *DirStore) Load(key Key) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("persist: loading snapshot %s: %w", key, err)
	}
	return data, nil
}

// Save writes the snapshot file for the key atomically.
func (s *DirStore) Save(key Key, data []byte) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("persist: creating snapshot dir: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, key.String()+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("persist: writing snapshot %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: writing snapshot %s: %w", key, err)
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: committing snapshot %s: %w", key, err)
	}
	return nil
}
