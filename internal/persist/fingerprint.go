package persist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"dlearn/internal/bottomclause"
	"dlearn/internal/constraints"
	"dlearn/internal/relation"
	"dlearn/internal/repair"
	"dlearn/internal/subsumption"
)

// Key is the content address of a snapshot: a SHA-256 over every input that
// influences the prepared examples. Two learning runs share a key exactly
// when their preparations are guaranteed identical.
type Key [sha256.Size]byte

// String returns the key in hex, the form used for file names and logs.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns a 12-hex-digit prefix of the key for human-facing output.
func (k Key) Short() string { return k.String()[:12] }

// FingerprintInputs collects everything that determines the prepared form of
// a training set. Key hashes the inputs into a snapshot address; see the
// field comments for why each input is included.
type FingerprintInputs struct {
	// Instance is the database the ground bottom clauses are built from; any
	// tuple or schema change must miss the cache.
	Instance *relation.Instance
	// Target is the target relation (its name and attributes shape the
	// clause heads).
	Target *relation.Relation
	// MDs and CFDs are the declarative constraints; both inject literals
	// into ground bottom clauses and drive the repair expansions.
	MDs  []constraints.MD
	CFDs []constraints.CFD
	// Pos and Neg are the training examples the prepared set covers, in
	// order (the snapshot stores prepared examples positionally).
	Pos, Neg []relation.Tuple
	// BottomClause is the bottom-clause construction configuration,
	// including its sampling seed.
	BottomClause bottomclause.Config
	// Subsumption matters because the search budget is frozen into each
	// preparation.
	Subsumption subsumption.Options
	// Repair bounds the CFD/repair expansions stored in the snapshot.
	Repair repair.Options
	// Noise is the learner's noise tolerance (MaxNegativeFraction).
	Noise float64
}

// Key hashes the inputs into the snapshot's content address.
func (f FingerprintInputs) Key() Key {
	h := sha256.New()
	w := fpWriter{h: h}
	w.str("dlearn-snapshot-fingerprint/v1")

	w.instance(f.Instance)
	w.relationDesc(f.Target)

	w.num(int64(len(f.MDs)))
	for _, md := range f.MDs {
		w.md(md)
	}
	w.num(int64(len(f.CFDs)))
	for _, cfd := range f.CFDs {
		w.cfd(cfd)
	}

	w.tuples(f.Pos)
	w.tuples(f.Neg)

	bc := f.BottomClause
	w.num(int64(bc.Iterations))
	w.num(int64(bc.SampleSize))
	w.num(int64(bc.KM))
	w.float(bc.SimilarityThreshold)
	w.num(int64(bc.MDMode))
	w.boolean(bc.UseCFDs)
	w.num(bc.Seed)

	w.num(int64(f.Subsumption.MaxNodes))
	w.num(int64(f.Repair.MaxClauses))
	w.num(int64(f.Repair.MaxStates))
	w.num(int64(f.Repair.Origin))
	w.float(f.Noise)

	var k Key
	h.Sum(k[:0])
	return k
}

// ResultFingerprintInputs extends a snapshot key into the content address of
// a completed learning run. The snapshot key already covers the problem
// (instance, constraints, examples) and every preparation option; the fields
// here are the remaining configuration knobs that influence which definition
// the covering search returns. Two runs share a result key exactly when
// Engine.Learn is guaranteed to return byte-identical definitions — which is
// why parallelism settings (threads, candidate parallelism, cache shards)
// are deliberately absent: the two-tier scheduler pins definitions identical
// across all of them.
type ResultFingerprintInputs struct {
	// Snapshot is the prepared-example fingerprint (FingerprintInputs.Key).
	Snapshot Key
	// Seed drives seed-example selection and candidate sampling. The
	// bottom-clause sampling seed is already inside Snapshot.
	Seed int64
	// GeneralizationSample, NegativeSearchSample, MinPositiveCoverage and
	// MaxClauses shape the covering search and acceptance test.
	GeneralizationSample int
	NegativeSearchSample int
	MinPositiveCoverage  int
	MaxClauses           int
}

// Key hashes the inputs into the result's content address.
func (f ResultFingerprintInputs) Key() Key {
	h := sha256.New()
	w := fpWriter{h: h}
	w.str("dlearn-result-fingerprint/v1")
	w.h.Write(f.Snapshot[:])
	w.num(f.Seed)
	w.num(int64(f.GeneralizationSample))
	w.num(int64(f.NegativeSearchSample))
	w.num(int64(f.MinPositiveCoverage))
	w.num(int64(f.MaxClauses))
	var k Key
	h.Sum(k[:0])
	return k
}

// ParseKey decodes the hex form produced by Key.String, for callers that
// persist keys as text (e.g. the dlearn-serve job journal).
func ParseKey(s string) (Key, bool) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, false
	}
	copy(k[:], b)
	return k, true
}

// fpWriter streams length-prefixed values into the hash so that adjacent
// fields can never alias (e.g. ["ab","c"] vs ["a","bc"]).
type fpWriter struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

func (w *fpWriter) num(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.h.Write(w.buf[:n])
}

func (w *fpWriter) float(v float64) {
	binary.BigEndian.PutUint64(w.buf[:8], math.Float64bits(v))
	w.h.Write(w.buf[:8])
}

func (w *fpWriter) boolean(v bool) {
	if v {
		w.num(1)
	} else {
		w.num(0)
	}
}

func (w *fpWriter) str(s string) {
	w.num(int64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpWriter) tuples(ts []relation.Tuple) {
	w.num(int64(len(ts)))
	for _, t := range ts {
		w.str(t.Relation)
		w.num(int64(len(t.Values)))
		for _, v := range t.Values {
			w.str(v)
		}
	}
}

func (w *fpWriter) relationDesc(r *relation.Relation) {
	if r == nil {
		w.num(-1)
		return
	}
	w.str(r.Name)
	w.num(int64(len(r.Attrs)))
	for _, a := range r.Attrs {
		w.str(a.Name)
		w.num(int64(a.Type))
		w.str(a.Domain)
		w.boolean(a.Constant)
	}
}

// instance hashes the schema (relations in insertion order) and every tuple
// in insertion order. Tuple order is part of the fingerprint because
// bottom-clause sampling is order-sensitive.
func (w *fpWriter) instance(in *relation.Instance) {
	if in == nil {
		w.num(-1)
		return
	}
	schema := in.Schema()
	names := schema.Names()
	w.num(int64(len(names)))
	for _, name := range names {
		w.relationDesc(schema.Relation(name))
		w.tuples(in.Tuples(name))
	}
}

func (w *fpWriter) md(md constraints.MD) {
	w.str(md.Name)
	w.str(md.LeftRel)
	w.str(md.RightRel)
	w.num(int64(len(md.Similar)))
	for _, p := range md.Similar {
		w.str(p.Left)
		w.str(p.Right)
	}
	w.str(md.MatchLeft)
	w.str(md.MatchRight)
}

func (w *fpWriter) cfd(cfd constraints.CFD) {
	w.str(cfd.Name)
	w.str(cfd.Relation)
	w.num(int64(len(cfd.LHS)))
	for _, a := range cfd.LHS {
		w.str(a)
	}
	w.str(cfd.RHS)
	// Pattern is a map; hash its entries in sorted order.
	keys := make([]string, 0, len(cfd.Pattern))
	for k := range cfd.Pattern {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.num(int64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(cfd.Pattern[k])
	}
}
