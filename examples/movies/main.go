// Command movies reproduces the IMDB+OMDB scenario of the paper's
// introduction and evaluation at example scale: the target relation
// dramaRestrictedMovies(imdbId) holds for movies that are dramas (genre in
// IMDB) and rated R (rating only in OMDB). The two sources represent titles
// differently, so only a learner that uses the matching dependency can
// express the concept. The program compares DLearn against the Castor
// baselines on a held-out test split.
package main

import (
	"context"
	"fmt"
	"log"

	"dlearn"
)

func main() {
	ctx := context.Background()
	cfg := dlearn.DefaultMoviesConfig()
	cfg.Movies = 200
	cfg.Positives = 20
	cfg.Negatives = 40
	cfg.MDCount = 1
	ds, err := dlearn.GenerateMovies(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated %s\n\n", ds.Stats())

	split, err := dlearn.HoldOut(ds.Problem.Pos, ds.Problem.Neg, 0.3, 1)
	if err != nil {
		log.Fatal(err)
	}
	train := ds.Problem
	train.Pos, train.Neg = split.TrainPos, split.TrainNeg

	// One engine drives every system; the per-system database and
	// constraint handling happens inside RunBaseline.
	eng := dlearn.New(
		dlearn.WithThreads(4),
		dlearn.WithTopMatches(2),
		dlearn.WithSampleSize(4),
		dlearn.WithIterations(3),
		dlearn.WithGeneralizationSample(4),
		dlearn.WithMaxClauses(6),
	)

	for _, system := range []dlearn.System{dlearn.CastorNoMD, dlearn.CastorExact, dlearn.CastorClean, dlearn.DLearn} {
		def, model, report, err := eng.RunBaseline(ctx, system, &train)
		if err != nil {
			log.Fatal(err)
		}
		metrics, err := dlearn.EvaluateSplit(model, split)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s  test %s  (%d clauses, learned in %s)\n",
			system, metrics, def.Len(), report.Duration.Round(1e7))
	}

	// Show the definition DLearn ends up with.
	def, _, _, err := eng.RunBaseline(ctx, dlearn.DLearn, &train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDLearn's learned definition:")
	fmt.Println(def)
}
