// Command products reproduces the Walmart+Amazon scenario of Section 6.2.1:
// the target relation upcOfComputersAccessories(upc) holds for products whose
// Amazon category is ComputersAccessories, while the UPC only exists on the
// Walmart side. Product titles differ between the sources, so the learned
// definition must join them through the title matching dependency — the
// program prints the learned clauses so they can be compared with the
// definitions shown in the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"dlearn"
)

func main() {
	ctx := context.Background()
	cfg := dlearn.DefaultProductsConfig()
	cfg.Products = 180
	cfg.Positives = 16
	cfg.Negatives = 32
	ds, err := dlearn.GenerateProducts(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated %s\n\n", ds.Stats())

	eng := dlearn.New(
		dlearn.WithThreads(4),
		dlearn.WithTopMatches(5),
		dlearn.WithSampleSize(4),
		dlearn.WithIterations(4),
		dlearn.WithGeneralizationSample(4),
		dlearn.WithMaxClauses(6),
	)

	// Castor-Clean first resolves each product title to its most similar
	// counterpart and learns over the unified database; DLearn learns over
	// the dirty database directly.
	for _, system := range []dlearn.System{dlearn.CastorClean, dlearn.DLearn} {
		def, model, report, err := eng.RunBaseline(ctx, system, &ds.Problem)
		if err != nil {
			log.Fatal(err)
		}
		split := dlearn.Split{TestPos: ds.Problem.Pos, TestNeg: ds.Problem.Neg}
		metrics, err := dlearn.EvaluateSplit(model, split)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", system)
		fmt.Printf("training-set %s, learned in %s\n", metrics, report.Duration.Round(1e7))
		fmt.Println(def)
		fmt.Println()
	}
}
