// Command citations reproduces the DBLP+Google Scholar scenario: Google
// Scholar records lack a reliable publication year, so the binary target
// relation gsPaperYear(gsId, year) must be learned by joining Scholar papers
// to their DBLP counterparts through title and venue matching dependencies.
// The Scholar data additionally violates the CFD "gsId determines title"
// (duplicate records), which the program injects at a configurable rate and
// handles with DLearn-CFD versus repairing up front (DLearn-Repaired).
package main

import (
	"fmt"
	"log"

	"dlearn"
)

func main() {
	for _, p := range []float64{0.0, 0.10} {
		cfg := dlearn.DefaultCitationsConfig()
		cfg.Papers = 120
		cfg.Positives = 20
		cfg.Negatives = 40
		cfg.ViolationRate = p
		ds, err := dlearn.GenerateCitations(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Generated %s\n", ds.Stats())

		lcfg := dlearn.DefaultConfig()
		lcfg.Threads = 4
		lcfg.BottomClause.KM = 3
		lcfg.BottomClause.SampleSize = 4
		lcfg.BottomClause.Iterations = 3
		lcfg.GeneralizationSample = 4
		lcfg.MaxClauses = 4

		systems := []dlearn.System{dlearn.DLearn}
		if p > 0 {
			systems = []dlearn.System{dlearn.DLearnCFD, dlearn.DLearnRepaired}
		}
		for _, system := range systems {
			def, model, report, err := dlearn.RunBaseline(system, ds.Problem, lcfg)
			if err != nil {
				log.Fatal(err)
			}
			split := dlearn.Split{TestPos: ds.Problem.Pos, TestNeg: ds.Problem.Neg}
			metrics, err := dlearn.EvaluateSplit(model, split)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s p=%.2f  training-set %s  (%d clauses, %s)\n",
				system, p, metrics, def.Len(), report.Duration.Round(1e7))
		}
		fmt.Println()
	}
}
