// Command citations reproduces the DBLP+Google Scholar scenario: Google
// Scholar records lack a reliable publication year, so the binary target
// relation gsPaperYear(gsId, year) must be learned by joining Scholar papers
// to their DBLP counterparts through title and venue matching dependencies.
// The Scholar data additionally violates the CFD "gsId determines title"
// (duplicate records), which the program injects at a configurable rate and
// handles with DLearn-CFD versus repairing up front (DLearn-Repaired).
package main

import (
	"context"
	"fmt"
	"log"

	"dlearn"
)

func main() {
	ctx := context.Background()

	// One engine serves every violation rate and system: engines hold no
	// per-run state, so they are safely reused across learning runs.
	eng := dlearn.New(
		dlearn.WithThreads(4),
		dlearn.WithTopMatches(3),
		dlearn.WithSampleSize(4),
		dlearn.WithIterations(3),
		dlearn.WithGeneralizationSample(4),
		dlearn.WithMaxClauses(4),
	)

	for _, p := range []float64{0.0, 0.10} {
		cfg := dlearn.DefaultCitationsConfig()
		cfg.Papers = 120
		cfg.Positives = 20
		cfg.Negatives = 40
		cfg.ViolationRate = p
		ds, err := dlearn.GenerateCitations(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Generated %s\n", ds.Stats())

		systems := []dlearn.System{dlearn.DLearn}
		if p > 0 {
			systems = []dlearn.System{dlearn.DLearnCFD, dlearn.DLearnRepaired}
		}
		for _, system := range systems {
			def, model, report, err := eng.RunBaseline(ctx, system, &ds.Problem)
			if err != nil {
				log.Fatal(err)
			}
			split := dlearn.Split{TestPos: ds.Problem.Pos, TestNeg: ds.Problem.Neg}
			metrics, err := dlearn.EvaluateSplit(model, split)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s p=%.2f  training-set %s  (%d clauses, %s)\n",
				system, p, metrics, def.Len(), report.Duration.Round(1e7))
		}
		fmt.Println()
	}
}
