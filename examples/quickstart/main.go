// Command quickstart is the minimal end-to-end DLearn example: a tiny movie
// database whose BOM-style titles only match the IMDB-style titles
// approximately, a matching dependency connecting them, and a handful of
// labelled examples. DLearn learns a Horn-clause definition of the target
// relation highGrossing(title) directly over the dirty data.
//
// It demonstrates the three pieces of the Engine API: the fluent
// ProblemBuilder, a configured reusable Engine, and an Observer streaming
// learning progress.
package main

import (
	"context"
	"fmt"
	"log"

	"dlearn"
)

func main() {
	ctx := context.Background()

	// 1. Declare the schema. Domains mark which attributes are comparable;
	// ConstAttr marks attributes whose values should stay constants in
	// learned clauses (like genres).
	schema := dlearn.NewSchema()
	schema.MustAdd(dlearn.NewRelation("movies",
		dlearn.Attr("id", "imdb_id"), dlearn.Attr("title", "imdb_title"), dlearn.ConstAttr("year", "year")))
	schema.MustAdd(dlearn.NewRelation("mov2genres",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("genre", "genre")))
	schema.MustAdd(dlearn.NewRelation("mov2countries",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("country", "country")))

	// 2. Load the (dirty) database.
	db := dlearn.NewInstance(schema)
	movies := []struct{ id, title, year, genre, country string }{
		{"m1", "Silent Harbor", "2007", "comedy", "USA"},
		{"m2", "Crimson Station", "2001", "comedy", "UK"},
		{"m3", "Golden Orchard", "2007", "comedy", "USA"},
		{"m4", "Broken Mirror", "2007", "drama", "USA"},
		{"m5", "Hidden Canyon", "1999", "drama", "Spain"},
		{"m6", "Distant Signal", "2011", "thriller", "UK"},
		{"m7", "Electric Parade", "2015", "comedy", "USA"},
		{"m8", "Midnight Archive", "2018", "drama", "France"},
	}
	for _, m := range movies {
		db.MustInsert("movies", m.id, m.title+" ("+m.year+")", m.year)
		db.MustInsert("mov2genres", m.id, m.genre)
		db.MustInsert("mov2countries", m.id, m.country)
	}

	// 3. The target relation lives in another "source" (BOM), so its titles
	// are formatted differently; a matching dependency declares that the two
	// title attributes refer to the same values when they are similar. The
	// ProblemBuilder assembles and validates the learning task. Training
	// examples: the comedies are high grossing.
	target := dlearn.NewRelation("highGrossing", dlearn.Attr("title", "bom_title"))
	builder := dlearn.NewProblem(target).
		OnInstance(db).
		WithMDs(dlearn.SimpleMD("md_title", "highGrossing", "title", "movies", "title"))
	for _, m := range movies {
		if m.genre == "comedy" {
			builder.PosValues(m.title) // note: no " (year)" suffix
		} else {
			builder.NegValues(m.title)
		}
	}
	problem, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Configure a reusable engine. The observer streams clause decisions
	// as they happen; WithSeed makes the run reproducible.
	eng := dlearn.New(
		dlearn.WithThreads(4),
		dlearn.WithSeed(1),
		dlearn.WithObserver(dlearn.ObserverFunc(func(e dlearn.Event) {
			if acc, ok := e.(dlearn.ClauseAccepted); ok {
				fmt.Printf("accepted clause covering %d pos / %d neg\n", acc.Positives, acc.Negatives)
			}
		})),
	)

	// 5. Learn directly over the dirty database — no cleaning step.
	def, report, err := eng.Learn(ctx, problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLearned definition:")
	fmt.Println(def)
	fmt.Printf("\nLearning took %s (%d candidate clauses considered)\n",
		report.Duration.Round(1e6), report.ClausesConsidered)

	// 6. Use the learned model to classify new, equally dirty examples.
	model, _, err := eng.LearnModel(ctx, problem)
	if err != nil {
		log.Fatal(err)
	}
	for _, title := range []string{"Golden Orchard", "Midnight Archive"} {
		got, err := model.PredictContext(ctx, dlearn.NewTuple("highGrossing", title))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("highGrossing(%q)? %v\n", title, got)
	}
}
