// Command quickstart is the minimal end-to-end DLearn example: a tiny movie
// database whose BOM-style titles only match the IMDB-style titles
// approximately, a matching dependency connecting them, and a handful of
// labelled examples. DLearn learns a Horn-clause definition of the target
// relation highGrossing(title) directly over the dirty data.
package main

import (
	"fmt"
	"log"

	"dlearn"
)

func main() {
	// 1. Declare the schema. Domains mark which attributes are comparable;
	// ConstAttr marks attributes whose values should stay constants in
	// learned clauses (like genres).
	schema := dlearn.NewSchema()
	schema.MustAdd(dlearn.NewRelation("movies",
		dlearn.Attr("id", "imdb_id"), dlearn.Attr("title", "imdb_title"), dlearn.ConstAttr("year", "year")))
	schema.MustAdd(dlearn.NewRelation("mov2genres",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("genre", "genre")))
	schema.MustAdd(dlearn.NewRelation("mov2countries",
		dlearn.Attr("id", "imdb_id"), dlearn.ConstAttr("country", "country")))

	// 2. Load the (dirty) database.
	db := dlearn.NewInstance(schema)
	movies := []struct{ id, title, year, genre, country string }{
		{"m1", "Silent Harbor", "2007", "comedy", "USA"},
		{"m2", "Crimson Station", "2001", "comedy", "UK"},
		{"m3", "Golden Orchard", "2007", "comedy", "USA"},
		{"m4", "Broken Mirror", "2007", "drama", "USA"},
		{"m5", "Hidden Canyon", "1999", "drama", "Spain"},
		{"m6", "Distant Signal", "2011", "thriller", "UK"},
		{"m7", "Electric Parade", "2015", "comedy", "USA"},
		{"m8", "Midnight Archive", "2018", "drama", "France"},
	}
	for _, m := range movies {
		db.MustInsert("movies", m.id, m.title+" ("+m.year+")", m.year)
		db.MustInsert("mov2genres", m.id, m.genre)
		db.MustInsert("mov2countries", m.id, m.country)
	}

	// 3. The target relation lives in another "source" (BOM), so its titles
	// are formatted differently; a matching dependency declares that the two
	// title attributes refer to the same values when they are similar.
	target := dlearn.NewRelation("highGrossing", dlearn.Attr("title", "bom_title"))
	md := dlearn.SimpleMD("md_title", "highGrossing", "title", "movies", "title")

	// 4. Training examples: the comedies are high grossing.
	var pos, neg []dlearn.Tuple
	for _, m := range movies {
		e := dlearn.NewTuple("highGrossing", m.title) // note: no " (year)" suffix
		if m.genre == "comedy" {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}

	problem := dlearn.Problem{
		Instance: db,
		Target:   target,
		MDs:      []dlearn.MD{md},
		Pos:      pos,
		Neg:      neg,
	}

	// 5. Learn directly over the dirty database — no cleaning step.
	cfg := dlearn.DefaultConfig()
	cfg.Threads = 4
	def, report, err := dlearn.Learn(problem, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Learned definition:")
	fmt.Println(def)
	fmt.Printf("\nLearning took %s (%d candidate clauses considered)\n",
		report.Duration.Round(1e6), report.ClausesConsidered)

	// 6. Use the learned model to classify new, equally dirty examples.
	model, _, err := dlearn.LearnModel(problem, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, title := range []string{"Golden Orchard", "Midnight Archive"} {
		got, err := model.Predict(dlearn.NewTuple("highGrossing", title))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("highGrossing(%q)? %v\n", title, got)
	}
}
