package dlearn_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dlearn"
)

// snapshotEventCounter tallies the snapshot events of a run.
type snapshotEventCounter struct {
	mu                              sync.Mutex
	hits, misses, saves, writeFails int
	missReasons                     []string
}

func (c *snapshotEventCounter) Observe(e dlearn.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev := e.(type) {
	case dlearn.SnapshotHit:
		c.hits++
	case dlearn.SnapshotMiss:
		c.misses++
		c.missReasons = append(c.missReasons, ev.Reason)
	case dlearn.SnapshotWritten:
		c.saves++
	case dlearn.SnapshotWriteFailed:
		c.writeFails++
	}
}

// learnWithSnapshots runs Learn over the problem with a snapshot dir and
// returns the definition plus the observed snapshot traffic.
func learnWithSnapshots(t *testing.T, p *dlearn.Problem, dir string, extra ...dlearn.Option) (*dlearn.Definition, *dlearn.Report, *snapshotEventCounter) {
	t.Helper()
	counter := &snapshotEventCounter{}
	opts := append(tinyEngineOptions(),
		dlearn.WithSeed(1),
		dlearn.WithSnapshotDir(dir),
		dlearn.WithObserver(counter))
	opts = append(opts, extra...)
	def, report, err := dlearn.New(opts...).Learn(context.Background(), p)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return def, report, counter
}

// TestEngineSnapshotWarmStart drives persistence end to end through the
// public API: a cold run misses and writes, a warm run over the same inputs
// hits and learns the identical definition.
func TestEngineSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	p := buildTinyProblemFluent(t)

	defCold, repCold, cold := learnWithSnapshots(t, p, dir)
	if cold.hits != 0 || cold.misses != 1 || cold.saves != 1 {
		t.Fatalf("cold run events: hits=%d misses=%d saves=%d, want 0/1/1", cold.hits, cold.misses, cold.saves)
	}
	if repCold.SnapshotHit {
		t.Fatal("cold run reported a snapshot hit")
	}
	if repCold.PrepareTime == 0 {
		t.Fatal("cold run reported zero preparation time")
	}

	defWarm, repWarm, warm := learnWithSnapshots(t, buildTinyProblemFluent(t), dir)
	if warm.hits != 1 || warm.misses != 0 || warm.saves != 0 {
		t.Fatalf("warm run events: hits=%d misses=%d saves=%d, want 1/0/0", warm.hits, warm.misses, warm.saves)
	}
	if !repWarm.SnapshotHit {
		t.Fatal("warm run did not report a snapshot hit")
	}
	if repWarm.PrepareTime != 0 {
		t.Fatalf("warm run prepared fresh for %v", repWarm.PrepareTime)
	}
	if defCold.String() != defWarm.String() {
		t.Fatalf("warm start changed the learned definition:\ncold:\n%s\nwarm:\n%s", defCold, defWarm)
	}
}

// TestEngineSnapshotStaleOnMutation is the acceptance test for the content
// address: mutating the database or the CFD set between runs must miss the
// cache and re-prepare, never serve the stale snapshot.
func TestEngineSnapshotStaleOnMutation(t *testing.T) {
	dir := t.TempDir()
	_, _, cold := learnWithSnapshots(t, buildTinyProblemFluent(t), dir)
	if cold.misses != 1 {
		t.Fatalf("cold run misses = %d, want 1", cold.misses)
	}

	// Mutated database: one extra tuple.
	mutated := buildTinyProblemFluent(t)
	mutated.Instance.MustInsert("movies", "m7", "Quiet Voltage (2007)", "2007")
	mutated.Instance.MustInsert("mov2genres", "m7", "comedy")
	_, repDB, dbRun := learnWithSnapshots(t, mutated, dir)
	if dbRun.hits != 0 || dbRun.misses != 1 {
		t.Fatalf("mutated-database run events: hits=%d misses=%d, want 0/1", dbRun.hits, dbRun.misses)
	}
	if repDB.SnapshotHit || repDB.PrepareTime == 0 {
		t.Fatalf("mutated database did not re-prepare: hit=%v prepare=%v", repDB.SnapshotHit, repDB.PrepareTime)
	}

	// Changed CFD set over the original database.
	withCFD := buildTinyProblemFluent(t)
	withCFD.CFDs = append(withCFD.CFDs, dlearn.FD("fd_title", "movies", []string{"id"}, "title"))
	_, repCFD, cfdRun := learnWithSnapshots(t, withCFD, dir)
	if cfdRun.hits != 0 || cfdRun.misses != 1 {
		t.Fatalf("changed-CFD run events: hits=%d misses=%d, want 0/1", cfdRun.hits, cfdRun.misses)
	}
	if repCFD.SnapshotHit || repCFD.PrepareTime == 0 {
		t.Fatalf("changed CFD set did not re-prepare: hit=%v prepare=%v", repCFD.SnapshotHit, repCFD.PrepareTime)
	}

	// A changed preparation option (subsumption budget) also misses.
	_, repOpt, optRun := learnWithSnapshots(t, buildTinyProblemFluent(t), dir, dlearn.WithSubsumptionBudget(12345))
	if optRun.hits != 0 || optRun.misses != 1 {
		t.Fatalf("changed-budget run events: hits=%d misses=%d, want 0/1", optRun.hits, optRun.misses)
	}
	if repOpt.SnapshotHit {
		t.Fatal("changed subsumption budget served the stale snapshot")
	}

	// The original inputs still hit their own snapshot afterwards.
	_, repBack, backRun := learnWithSnapshots(t, buildTinyProblemFluent(t), dir)
	if backRun.hits != 1 || !repBack.SnapshotHit {
		t.Fatalf("original inputs no longer hit: hits=%d report.hit=%v", backRun.hits, repBack.SnapshotHit)
	}
}

// brokenStore never finds a snapshot and fails every write.
type brokenStore struct{}

func (brokenStore) Load(dlearn.SnapshotKey) ([]byte, error) {
	return nil, dlearn.ErrSnapshotNotFound
}
func (brokenStore) Save(dlearn.SnapshotKey, []byte) error {
	return errors.New("disk full")
}

// TestEngineSnapshotWriteFailureSurfaced pins the degradation contract for
// an unwritable store: learning succeeds on the fresh preparation and the
// failed write-back is reported as a SnapshotWriteFailed event, so a
// permanently cold store is diagnosable.
func TestEngineSnapshotWriteFailureSurfaced(t *testing.T) {
	counter := &snapshotEventCounter{}
	opts := append(tinyEngineOptions(),
		dlearn.WithSeed(1),
		dlearn.WithSnapshotStore(brokenStore{}),
		dlearn.WithObserver(counter))
	def, _, err := dlearn.New(opts...).Learn(context.Background(), buildTinyProblemFluent(t))
	if err != nil {
		t.Fatalf("Learn over a broken store: %v", err)
	}
	if def.Len() == 0 {
		t.Fatal("broken store prevented learning")
	}
	if counter.misses != 1 || counter.writeFails != 1 || counter.saves != 0 {
		t.Fatalf("events: misses=%d writeFails=%d saves=%d, want 1/1/0",
			counter.misses, counter.writeFails, counter.saves)
	}
}

// TestEngineSnapshotDisabled pins that no snapshot events fire without a
// store.
func TestEngineSnapshotDisabled(t *testing.T) {
	counter := &snapshotEventCounter{}
	opts := append(tinyEngineOptions(), dlearn.WithSeed(1), dlearn.WithObserver(counter))
	if _, _, err := dlearn.New(opts...).Learn(context.Background(), buildTinyProblemFluent(t)); err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if counter.hits+counter.misses+counter.saves != 0 {
		t.Fatalf("snapshot events without a store: %+v", counter)
	}
	// WithSnapshotDir("") is an explicit disable.
	cfg := dlearn.New(dlearn.WithSnapshotDir("")).Config()
	if cfg.SnapshotStore != nil {
		t.Fatal(`WithSnapshotDir("") left a store configured`)
	}
}
