package dlearn

import (
	"dlearn/internal/bottomclause"
	"dlearn/internal/observe"
	"dlearn/internal/repair"
)

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithConfig replaces the engine's whole configuration. It composes with
// later options, so it can serve as a base that further With* calls refine.
func WithConfig(cfg Config) Option {
	return func(e *Engine) { e.cfg = cfg }
}

// WithThreads sets the worker-pool size used for parallel coverage testing
// (the paper's experiments use 16).
func WithThreads(n int) Option {
	return func(e *Engine) { e.cfg.Threads = n }
}

// WithSeed sets the seed that drives every random choice of a run (seed
// selection, candidate sampling, bottom-clause tuple sampling). Runs are
// fully deterministic given the seed — there is no wall-clock fallback.
func WithSeed(seed int64) Option {
	return func(e *Engine) {
		e.cfg.Seed = seed
		e.cfg.BottomClause.Seed = seed
	}
}

// WithCandidateParallelism sets the outer tier of the two-tier coverage
// scheduler: how many independent candidate clauses of a refinement sample
// are scored concurrently. Each in-flight candidate runs its example batch
// on the inner WithThreads pool, so the two tiers keep roughly
// threads × parallelism coverage tests in flight — the lever that keeps a
// 16-thread machine busy when the example pool is small. The learned
// definition is identical for every value: the scheduler's shared floor only
// prunes candidates that provably cannot win. Zero selects the default (4).
func WithCandidateParallelism(n int) Option {
	return func(e *Engine) { e.cfg.CandidateParallelism = n }
}

// WithEvalCacheShards sets the number of lock stripes in the coverage
// evaluator's memo tables (repair expansions, CFD projections, compiled
// candidates). The value is rounded up to a power of two; more stripes
// reduce contention between coverage workers. Zero selects the default
// (16, matching the paper's 16-way parallel coverage testing).
func WithEvalCacheShards(n int) Option {
	return func(e *Engine) { e.cfg.EvalCacheShards = n }
}

// WithNoiseTolerance sets the maximum fraction of covered examples that may
// be negative for a clause to be accepted (the paper's noise parameter).
func WithNoiseTolerance(f float64) Option {
	return func(e *Engine) { e.cfg.MaxNegativeFraction = f }
}

// WithMaxClauses bounds the number of clauses in a learned definition.
func WithMaxClauses(n int) Option {
	return func(e *Engine) { e.cfg.MaxClauses = n }
}

// WithMinPositiveCoverage sets the minimum number of positive training
// examples a clause must cover to be accepted.
func WithMinPositiveCoverage(n int) Option {
	return func(e *Engine) { e.cfg.MinPositiveCoverage = n }
}

// WithGeneralizationSample sets |E+_s|, the number of uncovered positive
// examples sampled to produce candidate generalizations per step.
func WithGeneralizationSample(n int) Option {
	return func(e *Engine) { e.cfg.GeneralizationSample = n }
}

// WithNegativeSearchSample caps how many negative examples score candidates
// during hill climbing (the acceptance test always uses all of them). Zero
// means all negatives.
func WithNegativeSearchSample(n int) Option {
	return func(e *Engine) { e.cfg.NegativeSearchSample = n }
}

// WithSubsumptionBudget caps the number of nodes each θ-subsumption search
// may explore. Exhausting the budget reports "does not subsume", which only
// makes coverage estimates conservative.
func WithSubsumptionBudget(maxNodes int) Option {
	return func(e *Engine) { e.cfg.Subsumption.MaxNodes = maxNodes }
}

// WithLiteralPlanner toggles the θ-subsumption literal planner, which orders
// each probe's body literals by estimated selectivity before the backtracking
// search (on by default). Plans are permutations, so the learned definition is
// identical either way — only search node counts change; the off switch exists
// for differential testing and A/B measurement and is excluded from snapshot
// and result-cache fingerprints.
func WithLiteralPlanner(enabled bool) Option {
	return func(e *Engine) { e.cfg.Subsumption.DisablePlanner = !enabled }
}

// WithRepairBudget bounds repaired-clause expansion during coverage testing:
// at most maxClauses distinct repaired clauses per clause, exploring at most
// maxStates intermediate states.
func WithRepairBudget(maxClauses, maxStates int) Option {
	return func(e *Engine) { e.cfg.Repair = repair.Options{MaxClauses: maxClauses, MaxStates: maxStates} }
}

// WithIterations sets d, the number of bottom-clause expansion rounds of
// Algorithm 2 (the paper uses 3–5 depending on the dataset).
func WithIterations(d int) Option {
	return func(e *Engine) { e.cfg.BottomClause.Iterations = d }
}

// WithSampleSize caps the tuples added to a bottom clause per relation.
// Zero means no cap.
func WithSampleSize(n int) Option {
	return func(e *Engine) { e.cfg.BottomClause.SampleSize = n }
}

// WithTopMatches sets k_m, the number of top similarity matches considered
// per probe value during bottom-clause construction.
func WithTopMatches(km int) Option {
	return func(e *Engine) { e.cfg.BottomClause.KM = km }
}

// WithSimilarityThreshold sets the minimum combined similarity for two
// values to be considered approximately equal.
func WithSimilarityThreshold(t float64) Option {
	return func(e *Engine) { e.cfg.BottomClause.SimilarityThreshold = t }
}

// WithMDMode selects how matching dependencies are used while collecting
// relevant tuples (MDSimilarity is DLearn; MDExact and MDIgnore are the
// Castor baselines).
func WithMDMode(m MDMode) Option {
	return func(e *Engine) { e.cfg.BottomClause.MDMode = m }
}

// WithCFDRepairs toggles CFD repair literals in bottom clauses (DLearn-CFD
// vs plain DLearn).
func WithCFDRepairs(enabled bool) Option {
	return func(e *Engine) { e.cfg.BottomClause.UseCFDs = enabled }
}

// WithBottomClause replaces the whole bottom-clause construction
// configuration for callers that need full control.
func WithBottomClause(cfg BottomClauseConfig) Option {
	return func(e *Engine) { e.cfg.BottomClause = cfg }
}

// WithSnapshotStore persists prepared training examples across runs in the
// given store. Learn serves the preparation phase from the store when a
// snapshot exists for the problem-and-configuration fingerprint and writes
// one back after preparing fresh otherwise; hits, misses and writes are
// reported through the observer (SnapshotHit, SnapshotMiss,
// SnapshotWritten). A nil store disables persistence.
func WithSnapshotStore(store SnapshotStore) Option {
	return func(e *Engine) { e.cfg.SnapshotStore = store }
}

// WithSnapshotDir is WithSnapshotStore over a filesystem directory: one
// snapshot file per content-addressed key, created on first write. An empty
// dir disables persistence.
func WithSnapshotDir(dir string) Option {
	return func(e *Engine) {
		if dir == "" {
			e.cfg.SnapshotStore = nil
			return
		}
		e.cfg.SnapshotStore = NewDirSnapshotStore(dir)
	}
}

// WithObserver registers an observer for the engine's learning runs. Passing
// several observers (or using the option repeatedly) fans events out to all
// of them in order.
func WithObserver(obs ...Observer) Option {
	return func(e *Engine) {
		all := append([]Observer{e.cfg.Observer}, obs...)
		e.cfg.Observer = observe.Multi(all...)
	}
}

// MDMode selects how matching dependencies are used while collecting
// relevant tuples; see the MD* constants.
type MDMode = bottomclause.MDMode

// The MD usage modes.
const (
	// MDIgnore ignores MDs entirely (the Castor-NoMD baseline).
	MDIgnore = bottomclause.MDIgnore
	// MDExact uses MDs only as exact joins (the Castor-Exact baseline).
	MDExact = bottomclause.MDExact
	// MDSimilarity performs top-k_m similarity search along MDs and adds
	// similarity and repair literals (DLearn).
	MDSimilarity = bottomclause.MDSimilarity
)

// BottomClauseConfig controls bottom-clause construction (d, sample size,
// k_m, MD mode, CFD usage).
type BottomClauseConfig = bottomclause.Config

// DefaultBottomClauseConfig mirrors the paper's bottom-clause defaults.
func DefaultBottomClauseConfig() BottomClauseConfig { return bottomclause.DefaultConfig() }
