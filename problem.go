package dlearn

import (
	"errors"
	"fmt"
)

// ProblemBuilder assembles a learning Problem fluently and centralizes its
// validation: Build reports every structural mistake (missing instance,
// examples of the wrong relation or arity, ill-formed MDs or CFDs,
// inconsistent CFD sets) as an error instead of failing later inside Learn.
//
//	problem, err := dlearn.NewProblem(target).
//		OnInstance(db).
//		WithMDs(md).
//		Pos(posExamples...).
//		Neg(negExamples...).
//		Build()
type ProblemBuilder struct {
	p    Problem
	errs []error
}

// NewProblem starts building a learning task for the given target relation.
func NewProblem(target *Relation) *ProblemBuilder {
	b := &ProblemBuilder{}
	if target == nil {
		b.errs = append(b.errs, fmt.Errorf("dlearn: NewProblem needs a target relation"))
		return b
	}
	b.p.Target = target
	return b
}

// OnInstance sets the (dirty) database instance the definition is learned
// over.
func (b *ProblemBuilder) OnInstance(db *Instance) *ProblemBuilder {
	if db == nil {
		b.errs = append(b.errs, fmt.Errorf("dlearn: OnInstance needs a non-nil instance"))
		return b
	}
	b.p.Instance = db
	return b
}

// WithMDs appends matching dependencies describing representational
// heterogeneity across the instance (and the target relation).
func (b *ProblemBuilder) WithMDs(mds ...MD) *ProblemBuilder {
	b.p.MDs = append(b.p.MDs, mds...)
	return b
}

// WithCFDs appends conditional functional dependencies whose violations mark
// inconsistencies in the instance.
func (b *ProblemBuilder) WithCFDs(cfds ...CFD) *ProblemBuilder {
	b.p.CFDs = append(b.p.CFDs, cfds...)
	return b
}

// Pos appends positive training examples (tuples of the target relation).
func (b *ProblemBuilder) Pos(examples ...Tuple) *ProblemBuilder {
	b.p.Pos = append(b.p.Pos, examples...)
	return b
}

// Neg appends negative training examples (tuples of the target relation).
func (b *ProblemBuilder) Neg(examples ...Tuple) *ProblemBuilder {
	b.p.Neg = append(b.p.Neg, examples...)
	return b
}

// PosValues appends one positive example given as raw attribute values of
// the target relation.
func (b *ProblemBuilder) PosValues(values ...string) *ProblemBuilder {
	return b.example(true, values)
}

// NegValues appends one negative example given as raw attribute values of
// the target relation.
func (b *ProblemBuilder) NegValues(values ...string) *ProblemBuilder {
	return b.example(false, values)
}

func (b *ProblemBuilder) example(positive bool, values []string) *ProblemBuilder {
	if b.p.Target == nil {
		// NewProblem already recorded the missing target.
		return b
	}
	t := NewTuple(b.p.Target.Name, values...)
	if positive {
		b.p.Pos = append(b.p.Pos, t)
	} else {
		b.p.Neg = append(b.p.Neg, t)
	}
	return b
}

// Build validates the assembled problem and returns it. Builder-level
// mistakes (nil target, nil instance) are reported first; the returned
// problem otherwise passed the same validation Learn performs.
func (b *ProblemBuilder) Build() (*Problem, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if b.p.Instance == nil {
		return nil, fmt.Errorf("dlearn: problem needs an instance; call OnInstance")
	}
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	p := b.p
	return &p, nil
}

// MustBuild is Build, panicking on error; for tests and examples.
func (b *ProblemBuilder) MustBuild() *Problem {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
