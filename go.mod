module dlearn

go 1.24
