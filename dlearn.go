// Package dlearn is a Go implementation of DLearn, the system described in
// "Learning Over Dirty Data Without Cleaning" (Picado, Davis, Termehchy,
// Lee — SIGMOD 2020). DLearn learns Horn-clause definitions of a target
// relation directly over a dirty relational database — one containing
// representational heterogeneity captured by matching dependencies (MDs) and
// integrity violations captured by conditional functional dependencies
// (CFDs) — without materializing any repaired instance. Learned clauses use
// repair literals to compactly represent the clauses one would learn over
// every possible repair.
//
// # The Engine API
//
// The package is used through three pieces:
//
//   - An Engine, built once with New and functional options, reusable and
//     safe for concurrent use. Its methods are context-first: cancellation
//     and deadlines reach into the covering loop, the parallel coverage
//     worker pool and every θ-subsumption search.
//   - A ProblemBuilder, which assembles a learning task fluently and
//     centralizes validation.
//   - An optional Observer, which streams progress events (phase timings,
//     covering iterations, clause decisions) to the caller.
//
// A minimal end-to-end use looks like:
//
//	schema := dlearn.NewSchema()
//	schema.MustAdd(dlearn.NewRelation("movies",
//		dlearn.Attr("id", "imdb_id"), dlearn.Attr("title", "imdb_title")))
//	db := dlearn.NewInstance(schema)
//	db.MustInsert("movies", "m1", "Superbad (2007)")
//
//	target := dlearn.NewRelation("highGrossing", dlearn.Attr("title", "bom_title"))
//	problem, err := dlearn.NewProblem(target).
//		OnInstance(db).
//		WithMDs(dlearn.SimpleMD("md_title", "highGrossing", "title", "movies", "title")).
//		PosValues("Superbad").
//		Build()
//	if err != nil { ... }
//
//	eng := dlearn.New(dlearn.WithThreads(8), dlearn.WithSeed(1))
//	def, report, err := eng.Learn(ctx, problem)
//
// The free functions Learn, LearnModel and RunBaseline mirror the seed
// release's one-shot facade; they are deprecated wrappers over a
// throwaway Engine and remain only so existing callers compile.
//
// Under the hood the package fronts the internal packages: the in-memory
// relational engine, the similarity operator, the constraint and repair
// machinery, the θ-subsumption engine, the covering learner, the
// Castor-style baselines, the synthetic dataset generators that stand in for
// the paper's Magellan datasets, and the experiment harness that regenerates
// every table and figure of the paper's evaluation. See the examples
// directory for complete runnable programs.
package dlearn

import (
	"context"

	"dlearn/internal/baseline"
	"dlearn/internal/bench"
	"dlearn/internal/constraints"
	"dlearn/internal/core"
	"dlearn/internal/datagen"
	"dlearn/internal/eval"
	"dlearn/internal/logic"
	"dlearn/internal/relation"
)

// Schema, relation and instance types of the in-memory relational substrate.
type (
	// Schema is a set of relation descriptors.
	Schema = relation.Schema
	// Relation describes one relation symbol and its attributes.
	Relation = relation.Relation
	// Attribute describes one column: name, type, comparability domain and
	// whether its values stay constants in learned clauses.
	Attribute = relation.Attribute
	// Instance is an in-memory database instance.
	Instance = relation.Instance
	// Tuple is one row of a relation (also used for training examples).
	Tuple = relation.Tuple
)

// Constraint types.
type (
	// MD is a matching dependency (Section 2.2 of the paper).
	MD = constraints.MD
	// CFD is a conditional functional dependency (Section 2.3).
	CFD = constraints.CFD
	// AttrPair is one compared attribute pair of an MD's left-hand side.
	AttrPair = constraints.AttrPair
)

// Learning types.
type (
	// Problem is a learning task: instance, constraints, target, examples.
	// Assemble one with NewProblem.
	Problem = core.Problem
	// Config controls the learner; prefer configuring an Engine with
	// functional options over constructing a Config by hand.
	Config = core.Config
	// Definition is a learned set of Horn clauses.
	Definition = logic.Definition
	// Clause is one learned Horn clause.
	Clause = logic.Clause
	// Model packages a definition with everything needed to classify.
	Model = core.Model
	// Report summarizes a learning run.
	Report = core.Report
)

// Evaluation types.
type (
	// Metrics are precision/recall/F1 classification metrics.
	Metrics = eval.Metrics
	// Split is one train/test partition.
	Split = eval.Split
)

// Dataset generation types (synthetic stand-ins for the paper's datasets).
type (
	// Dataset is a generated learning task.
	Dataset = datagen.Dataset
	// MoviesConfig configures the IMDB+OMDB generator.
	MoviesConfig = datagen.MoviesConfig
	// ProductsConfig configures the Walmart+Amazon generator.
	ProductsConfig = datagen.ProductsConfig
	// CitationsConfig configures the DBLP+Google Scholar generator.
	CitationsConfig = datagen.CitationsConfig
)

// Baseline system identifiers (Section 6.1.3).
type System = baseline.System

// The systems compared in the paper's evaluation.
const (
	CastorNoMD     = baseline.CastorNoMD
	CastorExact    = baseline.CastorExact
	CastorClean    = baseline.CastorClean
	DLearn         = baseline.DLearn
	DLearnCFD      = baseline.DLearnCFD
	DLearnRepaired = baseline.DLearnRepaired
)

// Schema construction.

// NewSchema returns an empty schema.
func NewSchema() *Schema { return relation.NewSchema() }

// NewRelation builds a relation descriptor.
func NewRelation(name string, attrs ...Attribute) *Relation {
	return relation.NewRelation(name, attrs...)
}

// Attr declares a string attribute in the given comparability domain; its
// values become join variables in learned clauses.
func Attr(name, domain string) Attribute { return relation.Attr(name, domain) }

// ConstAttr declares a string attribute whose values stay constants in
// learned clauses (genres, categories, ratings, ...).
func ConstAttr(name, domain string) Attribute { return relation.ConstAttr(name, domain) }

// NewInstance creates an empty instance of a schema.
func NewInstance(schema *Schema) *Instance { return relation.NewInstance(schema) }

// NewTuple builds a tuple (or training example) of the named relation.
func NewTuple(rel string, values ...string) Tuple { return relation.NewTuple(rel, values...) }

// Constraint construction.

// SimpleMD builds the common single-attribute matching dependency
// left[attr] ≈ right[attr'] → left[attr] ⇌ right[attr'].
func SimpleMD(name, leftRel, leftAttr, rightRel, rightAttr string) MD {
	return constraints.SimpleMD(name, leftRel, leftAttr, rightRel, rightAttr)
}

// NewMD builds a matching dependency with an explicit compared-attribute
// list and matched pair.
func NewMD(name, leftRel, rightRel string, similar []AttrPair, matchLeft, matchRight string) MD {
	return constraints.NewMD(name, leftRel, rightRel, similar, matchLeft, matchRight)
}

// FD builds an unconditional functional dependency X → A.
func FD(name, rel string, lhs []string, rhs string) CFD {
	return constraints.FD(name, rel, lhs, rhs)
}

// NewCFD builds a conditional functional dependency (X → A, tp).
func NewCFD(name, rel string, lhs []string, rhs string, pattern map[string]string) CFD {
	return constraints.NewCFD(name, rel, lhs, rhs, pattern)
}

// Learning: the deprecated one-shot facade.

// DefaultConfig returns the learner configuration mirroring the paper's
// experimental setup. Prefer New with functional options; DefaultConfig
// remains for callers that assemble a Config for WithConfig.
func DefaultConfig() Config { return core.DefaultConfig() }

// Learn runs DLearn on the problem and returns the learned definition.
//
// Deprecated: use New(...).Learn(ctx, &p), which supports cancellation,
// deadlines and observers.
func Learn(p Problem, cfg Config) (*Definition, *Report, error) {
	return New(WithConfig(cfg)).Learn(context.Background(), &p)
}

// LearnModel learns a definition and wraps it in a Model for prediction.
//
// Deprecated: use New(...).LearnModel(ctx, &p).
func LearnModel(p Problem, cfg Config) (*Model, *Report, error) {
	return New(WithConfig(cfg)).LearnModel(context.Background(), &p)
}

// RunBaseline learns with one of the paper's systems (DLearn or a baseline).
//
// Deprecated: use New(...).RunBaseline(ctx, system, &p).
func RunBaseline(system System, p Problem, cfg Config) (*Definition, *Model, *Report, error) {
	return New(WithConfig(cfg)).RunBaseline(context.Background(), system, &p)
}

// Evaluation.

// KFold partitions labelled examples into k cross-validation splits.
func KFold(pos, neg []Tuple, k int, seed int64) ([]Split, error) {
	return eval.KFold(pos, neg, k, seed)
}

// HoldOut splits labelled examples into one train/test partition.
func HoldOut(pos, neg []Tuple, testFraction float64, seed int64) (Split, error) {
	return eval.HoldOut(pos, neg, testFraction, seed)
}

// EvaluateSplit scores a model on a split's test examples.
func EvaluateSplit(m *Model, s Split) (Metrics, error) { return eval.EvaluateSplit(m, s) }

// Dataset generation.

// DefaultMoviesConfig returns the default IMDB+OMDB generator configuration.
func DefaultMoviesConfig() MoviesConfig { return datagen.DefaultMoviesConfig() }

// DefaultProductsConfig returns the default Walmart+Amazon configuration.
func DefaultProductsConfig() ProductsConfig { return datagen.DefaultProductsConfig() }

// DefaultCitationsConfig returns the default DBLP+Google Scholar
// configuration.
func DefaultCitationsConfig() CitationsConfig { return datagen.DefaultCitationsConfig() }

// GenerateMovies generates the synthetic IMDB+OMDB dataset.
func GenerateMovies(cfg MoviesConfig) (*Dataset, error) { return datagen.Movies(cfg) }

// GenerateProducts generates the synthetic Walmart+Amazon dataset.
func GenerateProducts(cfg ProductsConfig) (*Dataset, error) { return datagen.Products(cfg) }

// GenerateCitations generates the synthetic DBLP+Google Scholar dataset.
func GenerateCitations(cfg CitationsConfig) (*Dataset, error) { return datagen.Citations(cfg) }

// Experiments.

// ExperimentOptions configures the experiment harness.
type ExperimentOptions = bench.Options

// DefaultExperimentOptions mirrors the paper's experimental setup; quick
// options shrink everything for smoke runs.
func DefaultExperimentOptions() ExperimentOptions { return bench.DefaultOptions() }

// QuickExperimentOptions returns the configuration used by `go test -bench`.
func QuickExperimentOptions() ExperimentOptions { return bench.QuickOptions() }
