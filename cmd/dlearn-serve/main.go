// Command dlearn-serve runs the multi-tenant learning service: clients POST
// learning problems to /v1/jobs, follow their progress over server-sent
// events, and fetch the learned definition when the job finishes. Jobs run
// through a bounded queue with per-tenant admission control, share one
// snapshot store (so identical preparations dedupe across tenants), and a
// SIGINT/SIGTERM drains gracefully: new submissions are rejected while
// queued and running jobs finish, up to -drain-timeout.
//
// Usage:
//
//	dlearn-serve -addr :8080 -snapshot-dir /var/lib/dlearn/snapshots
//
// For scripted setups (tests, CI) bind an ephemeral port and discover it:
//
//	dlearn-serve -addr 127.0.0.1:0 -addr-file /tmp/dlearn-serve.addr
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dlearn"
	"dlearn/internal/fault"
	"dlearn/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address; use host:0 for an ephemeral port")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		maxQueued     = flag.Int("max-queued", 64, "queued jobs admitted before submissions get 429")
		maxConcurrent = flag.Int("max-concurrent", 2, "jobs learning at once")
		maxPerTenant  = flag.Int("max-per-tenant", 8, "one tenant's in-flight job cap (X-Tenant header); <0 disables")
		defTimeout    = flag.Duration("default-timeout", 5*time.Minute, "per-job deadline when the job requests none")
		maxTimeout    = flag.Duration("max-timeout", 30*time.Minute, "upper bound on the deadline a job may request")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		snapDir       = flag.String("snapshot-dir", "", "shared snapshot store directory (empty disables persistence)")
		snapMaxBytes  = flag.Int64("snapshot-max-bytes", 0, "snapshot store size cap enforced on writes (0 = unbounded)")
		jobDir        = flag.String("job-dir", "", "job journal directory: accepted jobs and their outcomes survive restarts (empty disables)")
		resultCacheMB = flag.Int64("result-cache-max-bytes", 0, "result cache byte cap (0 = 64 MiB default; <0 disables the cache)")
		threads       = flag.Int("threads", 0, "base engine threads per job (0 = engine default; jobs may override)")
		maxEventBytes = flag.Int("journal-max-event-bytes", 0, "journalled event log byte cap per job, oldest events dropped behind a log_truncated marker (0 = 1 MiB; <0 unbounded)")
		sseTimeout    = flag.Duration("sse-write-timeout", 0, "per-write deadline and slow-subscriber grace on event streams (0 = 10s)")
		faultSchedule = flag.String("fault-schedule", "", "fault-injection schedule for chaos testing, e.g. 'journal.finish:hit=1:error=boom' (empty disables; test hook)")
		faultSeed     = flag.Int64("fault-seed", 1, "seed for probabilistic fault-schedule rules")
	)
	flag.Parse()

	faults, err := fault.Parse(*faultSchedule, *faultSeed)
	if err != nil {
		log.Fatalf("dlearn-serve: %v", err)
	}
	if faults != nil {
		log.Printf("dlearn-serve: FAULT INJECTION ACTIVE (%s) — not for production", faults)
	}

	cfg := server.Config{
		MaxQueued:           *maxQueued,
		MaxConcurrent:       *maxConcurrent,
		MaxPerTenant:        *maxPerTenant,
		DefaultTimeout:      *defTimeout,
		MaxTimeout:          *maxTimeout,
		JobDir:              *jobDir,
		ResultCacheMaxBytes: *resultCacheMB,
		MaxEventLogBytes:    *maxEventBytes,
		SSEWriteTimeout:     *sseTimeout,
		Faults:              faults,
	}
	if *threads > 0 {
		cfg.EngineOptions = append(cfg.EngineOptions, dlearn.WithThreads(*threads))
	}
	if *snapDir != "" {
		store := dlearn.NewDirSnapshotStore(*snapDir)
		if *snapMaxBytes > 0 {
			store.SetMaxBytes(*snapMaxBytes)
		}
		store.SetFaults(faults)
		cfg.Store = store
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("dlearn-serve: %v", err)
	}
	if st := srv.Stats(); st.RecoveredJobs > 0 {
		log.Printf("dlearn-serve: recovered %d jobs from %s (%d re-queued)",
			st.RecoveredJobs, *jobDir, st.QueueDepth)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dlearn-serve: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatalf("dlearn-serve: writing -addr-file: %v", err)
		}
	}
	log.Printf("dlearn-serve: listening on http://%s (%d workers, %d queue slots)",
		ln.Addr(), *maxConcurrent, *maxQueued)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("dlearn-serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("dlearn-serve: draining (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("dlearn-serve: drain incomplete, jobs cancelled: %v", err)
	}
	httpSrv.Shutdown(context.Background())
	if faults != nil {
		log.Printf("dlearn-serve: faults fired: %v", faults.Fired())
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "dlearn-serve: served %d jobs (%d completed, %d failed, %d cancelled)\n",
		st.Submitted, st.Completed, st.Failed, st.Cancelled)
}
