// Command dlearn-datagen emits one of the synthetic dirty datasets as CSV
// files (one file per relation, plus positive and negative example files), so
// the data can be inspected or consumed by other tools.
//
// Usage:
//
//	dlearn-datagen -dataset movies -out ./data/movies -violations 0.1
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dlearn"
)

func main() {
	var (
		dataset    = flag.String("dataset", "movies", "dataset to generate: movies|products|citations")
		out        = flag.String("out", "./data", "output directory")
		violations = flag.Float64("violations", 0, "CFD violation rate p")
		seed       = flag.Int64("seed", 7, "generation seed")
		scale      = flag.Int("scale", 1, "tuple-count multiplier (1, 10, 100, ...); deterministic under -seed")
		entities   = flag.Int("entities", 0, "base entity count override (movies/products/papers)")
	)
	flag.Parse()

	var (
		ds  *dlearn.Dataset
		err error
	)
	switch *dataset {
	case "movies":
		cfg := dlearn.DefaultMoviesConfig()
		cfg.ViolationRate = *violations
		cfg.Seed = *seed
		cfg.Scale = *scale
		if *entities > 0 {
			cfg.Movies = *entities
		}
		ds, err = dlearn.GenerateMovies(cfg)
	case "products":
		cfg := dlearn.DefaultProductsConfig()
		cfg.ViolationRate = *violations
		cfg.Seed = *seed
		cfg.Scale = *scale
		if *entities > 0 {
			cfg.Products = *entities
		}
		ds, err = dlearn.GenerateProducts(cfg)
	case "citations":
		cfg := dlearn.DefaultCitationsConfig()
		cfg.ViolationRate = *violations
		cfg.Seed = *seed
		cfg.Scale = *scale
		if *entities > 0 {
			cfg.Papers = *entities
		}
		ds, err = dlearn.GenerateCitations(cfg)
	default:
		fmt.Fprintf(os.Stderr, "dlearn-datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-datagen: %v\n", err)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-datagen: %v\n", err)
		os.Exit(1)
	}
	if err := writeDataset(ds, *out); err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s to %s\n", ds.Stats(), *out)
}

func writeDataset(ds *dlearn.Dataset, dir string) error {
	schema := ds.Problem.Instance.Schema()
	for _, rel := range schema.Relations() {
		header := make([]string, rel.Arity())
		for i, a := range rel.Attrs {
			header[i] = a.Name
		}
		rows := [][]string{header}
		for _, t := range ds.Problem.Instance.Tuples(rel.Name) {
			rows = append(rows, t.Values)
		}
		if err := writeCSV(filepath.Join(dir, rel.Name+".csv"), rows); err != nil {
			return err
		}
	}
	examples := func(name string, tuples []dlearn.Tuple) error {
		header := make([]string, ds.Problem.Target.Arity())
		for i, a := range ds.Problem.Target.Attrs {
			header[i] = a.Name
		}
		rows := [][]string{header}
		for _, t := range tuples {
			rows = append(rows, t.Values)
		}
		return writeCSV(filepath.Join(dir, name+".csv"), rows)
	}
	if err := examples("positive_examples", ds.Problem.Pos); err != nil {
		return err
	}
	return examples("negative_examples", ds.Problem.Neg)
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
