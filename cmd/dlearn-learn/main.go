// Command dlearn-learn learns a definition over CSV data produced by
// dlearn-datagen (or in the same layout): one CSV file per relation with a
// header row, plus positive_examples.csv and negative_examples.csv for the
// target relation. Because CSV carries no schema metadata, the tool is
// currently wired to the three shipped dataset layouts and rebuilds their
// schemas and constraints by name.
//
// The run is driven through the Engine API: SIGINT/SIGTERM cancels learning
// mid-search, and -progress streams the engine's observer events (phase
// timings, iterations, accepted clauses) to stderr.
//
// With -remote the problem is not learned in process: it is submitted to a
// dlearn-serve instance over its HTTP API and the job's server-sent events
// drive the same -progress output, so local and remote runs look alike.
//
// Usage:
//
//	dlearn-datagen -dataset movies -out ./data/movies
//	dlearn-learn   -dataset movies -dir ./data/movies -km 5 -progress
//	dlearn-learn   -dataset movies -dir ./data/movies -remote http://127.0.0.1:8080
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dlearn"
	"dlearn/internal/server"
	"dlearn/internal/server/wire"
)

func main() {
	var (
		dataset  = flag.String("dataset", "movies", "dataset layout: movies|products|citations")
		dir      = flag.String("dir", "./data", "directory containing the CSV files")
		km       = flag.Int("km", 5, "number of top similarity matches k_m")
		iters    = flag.Int("d", 3, "bottom-clause construction iterations d")
		sample   = flag.Int("sample", 10, "bottom-clause sample size per relation")
		threads  = flag.Int("threads", 8, "parallel coverage-testing workers")
		seed     = flag.Int64("seed", 1, "random seed driving the learner")
		system   = flag.String("system", "DLearn", "system to run: DLearn|DLearn-CFD|DLearn-Repaired|Castor-NoMD|Castor-Exact|Castor-Clean")
		progress = flag.Bool("progress", false, "stream learning progress events to stderr")
		snapDir  = flag.String("snapshot-dir", "", "directory persisting prepared examples across runs (empty disables)")
		remote   = flag.String("remote", "", "dlearn-serve base URL; learn there instead of in process")
		tenant   = flag.String("tenant", "", "tenant name sent with remote jobs (X-Tenant header)")
		timeout  = flag.Duration("timeout", 0, "remote job deadline (0 = server default)")
		noCache  = flag.Bool("no-cache", false, "remote only: bypass the server's result cache and force a fresh run")
		retries  = flag.Int("retries", 4, "remote only: retry budget for 429/503 rejections and dropped event streams (0 disables)")
		retryBas = flag.Duration("retry-base", 200*time.Millisecond, "remote only: first retry delay, doubling per attempt (capped, jittered)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Rebuild the problem skeleton (schema, MDs, CFDs, target) from the
	// generator, then replace its tuples and examples with the CSV contents.
	skeleton, err := emptyProblem(*dataset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-learn: %v\n", err)
		os.Exit(2)
	}
	problem, err := loadProblem(skeleton, *dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-learn: %v\n", err)
		os.Exit(1)
	}

	if *remote != "" {
		opts, err := remoteOptions(*system, *km, *iters, *sample, *threads, *seed, *timeout)
		opts.NoCache = *noCache
		backoff := server.Backoff{Retries: *retries, Base: *retryBas, Seed: *seed}
		if err == nil {
			err = learnRemote(ctx, *remote, *tenant, problem, opts, backoff, *progress)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dlearn-learn: %v\n", err)
			os.Exit(1)
		}
		return
	}

	engineOpts := []dlearn.Option{
		dlearn.WithTopMatches(*km),
		dlearn.WithIterations(*iters),
		dlearn.WithSampleSize(*sample),
		dlearn.WithThreads(*threads),
		dlearn.WithSeed(*seed),
	}
	if *progress {
		engineOpts = append(engineOpts, dlearn.WithObserver(progressObserver()))
	}
	if *snapDir != "" {
		engineOpts = append(engineOpts,
			dlearn.WithSnapshotDir(*snapDir),
			dlearn.WithObserver(snapshotObserver()))
	}
	eng := dlearn.New(engineOpts...)

	def, _, report, err := eng.RunBaseline(ctx, dlearn.System(*system), problem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-learn: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("learned %d clauses in %s:\n\n%s\n", def.Len(), report.Duration.Round(1e7), def)
}

// remoteOptions maps the CLI's system and budget flags onto the wire
// options a dlearn-serve job accepts. Only the systems that leave the
// database instance untouched can run remotely: Castor-Clean and
// DLearn-Repaired rewrite the instance before learning, which the service's
// plain Engine.Learn path deliberately does not do.
func remoteOptions(system string, km, iters, sample, threads int, seed int64, timeout time.Duration) (wire.Options, error) {
	o := wire.Options{
		Seed:           seed,
		Threads:        threads,
		Iterations:     iters,
		SampleSize:     sample,
		TopMatches:     km,
		TimeoutSeconds: timeout.Seconds(),
	}
	switch dlearn.System(system) {
	case dlearn.DLearn:
		o.MDMode = "similarity"
	case dlearn.DLearnCFD:
		o.MDMode = "similarity"
		o.CFDRepairs = true
	case dlearn.CastorNoMD:
		o.MDMode = "ignore"
	case dlearn.CastorExact:
		o.MDMode = "exact"
	case dlearn.CastorClean, dlearn.DLearnRepaired:
		return wire.Options{}, fmt.Errorf("system %s rewrites the database before learning and cannot run remotely", system)
	default:
		return wire.Options{}, fmt.Errorf("unknown system %q", system)
	}
	return o, nil
}

// learnRemote submits the problem to a dlearn-serve instance and follows its
// event stream; with progress enabled the streamed observer events feed the
// same renderers as a local run. The backoff policy retries transient
// admission rejections (429/503, honoring Retry-After) and reconnects a
// dropped event stream with Last-Event-ID, resuming where it left off.
func learnRemote(ctx context.Context, baseURL, tenant string, p *dlearn.Problem, opts wire.Options, backoff server.Backoff, progress bool) error {
	client := &server.Client{BaseURL: baseURL, Tenant: tenant, Retry: backoff}
	var onEvent func(dlearn.Event)
	if progress {
		local, snap := progressObserver(), snapshotObserver()
		onEvent = func(e dlearn.Event) {
			local.Observe(e)
			snap.Observe(e)
		}
	}
	res, err := client.Learn(ctx, p, opts, onEvent)
	if err != nil {
		return err
	}
	fmt.Printf("learned %d clauses in %s (remote):\n\n%s\n",
		len(res.Clauses), (time.Duration(res.Report.DurationSeconds * float64(time.Second))).Round(1e7), res.Definition)
	return nil
}

// progressObserver renders observer events as terse stderr lines.
func progressObserver() dlearn.Observer {
	return dlearn.ObserverFunc(func(e dlearn.Event) {
		switch ev := e.(type) {
		case dlearn.RunStarted:
			fmt.Fprintf(os.Stderr, "learning %s (%d pos, %d neg)\n", ev.Target, ev.Positives, ev.Negatives)
		case dlearn.PhaseDone:
			fmt.Fprintf(os.Stderr, "phase %s done in %s\n", ev.Phase, ev.Duration.Round(1e6))
		case dlearn.IterationStarted:
			fmt.Fprintf(os.Stderr, "iteration %d: seed example %d, %d uncovered\n", ev.Iteration, ev.SeedIndex, ev.Uncovered)
		case dlearn.ClauseAccepted:
			fmt.Fprintf(os.Stderr, "  + clause accepted (%d pos / %d neg covered, %d left): %s\n",
				ev.Positives, ev.Negatives, ev.Uncovered, ev.Clause)
		case dlearn.ClauseRejected:
			fmt.Fprintf(os.Stderr, "  - clause rejected (%d pos / %d neg covered)\n", ev.Positives, ev.Negatives)
		}
	})
}

// snapshotObserver prints the snapshot hit/miss summary lines so a warm
// start is visible without -progress.
func snapshotObserver() dlearn.Observer {
	return dlearn.ObserverFunc(func(e dlearn.Event) {
		switch ev := e.(type) {
		case dlearn.SnapshotHit:
			fmt.Fprintf(os.Stderr, "snapshot hit %s: %d prepared examples loaded in %s (%d bytes)\n",
				ev.Key[:12], ev.Examples, ev.Duration.Round(1e6), ev.Bytes)
		case dlearn.SnapshotMiss:
			fmt.Fprintf(os.Stderr, "snapshot miss %s (%s): prepared fresh in %s\n",
				ev.Key[:12], ev.Reason, ev.Duration.Round(1e6))
		case dlearn.SnapshotWritten:
			fmt.Fprintf(os.Stderr, "snapshot written %s: %d examples, %d bytes in %s\n",
				ev.Key[:12], ev.Examples, ev.Bytes, ev.Duration.Round(1e6))
		case dlearn.SnapshotWriteFailed:
			fmt.Fprintf(os.Stderr, "snapshot write failed %s: %s (runs will keep starting cold)\n",
				ev.Key[:12], ev.Error)
		case dlearn.ResultCacheHit:
			fmt.Fprintf(os.Stderr, "result cache hit %s: definition served without running (%d bytes)\n",
				ev.Key[:12], ev.Bytes)
		}
	})
}

// emptyProblem returns the schema, constraints and target of a dataset
// family with an empty instance and no examples.
func emptyProblem(dataset string) (dlearn.Problem, error) {
	var (
		ds  *dlearn.Dataset
		err error
	)
	switch dataset {
	case "movies":
		cfg := dlearn.DefaultMoviesConfig()
		cfg.Movies = 1
		cfg.Positives, cfg.Negatives = 0, 0
		ds, err = dlearn.GenerateMovies(cfg)
	case "products":
		cfg := dlearn.DefaultProductsConfig()
		cfg.Products = 1
		cfg.Positives, cfg.Negatives = 0, 0
		ds, err = dlearn.GenerateProducts(cfg)
	case "citations":
		cfg := dlearn.DefaultCitationsConfig()
		cfg.Papers = 1
		cfg.Positives, cfg.Negatives = 0, 0
		ds, err = dlearn.GenerateCitations(cfg)
	default:
		return dlearn.Problem{}, fmt.Errorf("unknown dataset layout %q", dataset)
	}
	if err != nil {
		return dlearn.Problem{}, err
	}
	p := ds.Problem
	p.Instance = dlearn.NewInstance(p.Instance.Schema())
	p.Pos, p.Neg = nil, nil
	return p, nil
}

// loadProblem fills a fresh ProblemBuilder with the skeleton's constraints
// plus the tuples and examples found in dir, and validates the result.
func loadProblem(skeleton dlearn.Problem, dir string) (*dlearn.Problem, error) {
	schema := skeleton.Instance.Schema()
	db := dlearn.NewInstance(schema)
	for _, rel := range schema.Relations() {
		rows, err := readCSV(filepath.Join(dir, rel.Name+".csv"))
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			if err := db.Insert(rel.Name, row...); err != nil {
				return nil, err
			}
		}
	}
	pos, err := readCSV(filepath.Join(dir, "positive_examples.csv"))
	if err != nil {
		return nil, err
	}
	neg, err := readCSV(filepath.Join(dir, "negative_examples.csv"))
	if err != nil {
		return nil, err
	}
	b := dlearn.NewProblem(skeleton.Target).
		OnInstance(db).
		WithMDs(skeleton.MDs...).
		WithCFDs(skeleton.CFDs...)
	for _, row := range pos {
		b.PosValues(row...)
	}
	for _, row := range neg {
		b.NegValues(row...)
	}
	return b.Build()
}

// readCSV reads a CSV file and returns its data rows (header skipped).
func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(records) <= 1 {
		return nil, nil
	}
	return records[1:], nil
}
