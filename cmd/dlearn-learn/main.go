// Command dlearn-learn learns a definition over CSV data produced by
// dlearn-datagen (or in the same layout): one CSV file per relation with a
// header row, plus positive_examples.csv and negative_examples.csv for the
// target relation. Because CSV carries no schema metadata, the tool is
// currently wired to the three shipped dataset layouts and rebuilds their
// schemas and constraints by name.
//
// Usage:
//
//	dlearn-datagen -dataset movies -out ./data/movies
//	dlearn-learn   -dataset movies -dir ./data/movies -km 5
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dlearn"
)

func main() {
	var (
		dataset = flag.String("dataset", "movies", "dataset layout: movies|products|citations")
		dir     = flag.String("dir", "./data", "directory containing the CSV files")
		km      = flag.Int("km", 5, "number of top similarity matches k_m")
		iters   = flag.Int("d", 3, "bottom-clause construction iterations d")
		sample  = flag.Int("sample", 10, "bottom-clause sample size per relation")
		threads = flag.Int("threads", 8, "parallel coverage-testing workers")
		system  = flag.String("system", "DLearn", "system to run: DLearn|DLearn-CFD|DLearn-Repaired|Castor-NoMD|Castor-Exact|Castor-Clean")
	)
	flag.Parse()

	// Rebuild the problem skeleton (schema, MDs, CFDs, target) from the
	// generator, then replace its tuples and examples with the CSV contents.
	skeleton, err := emptyProblem(*dataset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-learn: %v\n", err)
		os.Exit(2)
	}
	problem, err := loadProblem(skeleton, *dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-learn: %v\n", err)
		os.Exit(1)
	}

	cfg := dlearn.DefaultConfig()
	cfg.BottomClause.KM = *km
	cfg.BottomClause.Iterations = *iters
	cfg.BottomClause.SampleSize = *sample
	cfg.Threads = *threads

	def, _, report, err := dlearn.RunBaseline(dlearn.System(*system), problem, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-learn: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("learned %d clauses in %s:\n\n%s\n", def.Len(), report.Duration.Round(1e7), def)
}

// emptyProblem returns the schema, constraints and target of a dataset
// family with an empty instance and no examples.
func emptyProblem(dataset string) (dlearn.Problem, error) {
	var (
		ds  *dlearn.Dataset
		err error
	)
	switch dataset {
	case "movies":
		cfg := dlearn.DefaultMoviesConfig()
		cfg.Movies = 1
		cfg.Positives, cfg.Negatives = 0, 0
		ds, err = dlearn.GenerateMovies(cfg)
	case "products":
		cfg := dlearn.DefaultProductsConfig()
		cfg.Products = 1
		cfg.Positives, cfg.Negatives = 0, 0
		ds, err = dlearn.GenerateProducts(cfg)
	case "citations":
		cfg := dlearn.DefaultCitationsConfig()
		cfg.Papers = 1
		cfg.Positives, cfg.Negatives = 0, 0
		ds, err = dlearn.GenerateCitations(cfg)
	default:
		return dlearn.Problem{}, fmt.Errorf("unknown dataset layout %q", dataset)
	}
	if err != nil {
		return dlearn.Problem{}, err
	}
	p := ds.Problem
	p.Instance = dlearn.NewInstance(p.Instance.Schema())
	p.Pos, p.Neg = nil, nil
	return p, nil
}

// loadProblem fills the problem with the tuples and examples found in dir.
func loadProblem(p dlearn.Problem, dir string) (dlearn.Problem, error) {
	schema := p.Instance.Schema()
	for _, rel := range schema.Relations() {
		rows, err := readCSV(filepath.Join(dir, rel.Name+".csv"))
		if err != nil {
			return p, err
		}
		for _, row := range rows {
			if err := p.Instance.Insert(rel.Name, row...); err != nil {
				return p, err
			}
		}
	}
	pos, err := readCSV(filepath.Join(dir, "positive_examples.csv"))
	if err != nil {
		return p, err
	}
	neg, err := readCSV(filepath.Join(dir, "negative_examples.csv"))
	if err != nil {
		return p, err
	}
	for _, row := range pos {
		p.Pos = append(p.Pos, dlearn.NewTuple(p.Target.Name, row...))
	}
	for _, row := range neg {
		p.Neg = append(p.Neg, dlearn.NewTuple(p.Target.Name, row...))
	}
	return p, nil
}

// readCSV reads a CSV file and returns its data rows (header skipped).
func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(records) <= 1 {
		return nil, nil
	}
	return records[1:], nil
}
