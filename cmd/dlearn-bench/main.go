// Command dlearn-bench runs the experiments that regenerate the tables and
// figures of "Learning Over Dirty Data Without Cleaning" (SIGMOD 2020) over
// the synthetic datasets shipped with this repository.
//
// Usage:
//
//	dlearn-bench -exp table4            # one experiment at paper scale
//	dlearn-bench -exp all -quick        # every experiment, shrunk for a smoke run
//
// Experiments: table3, table4, table5, table6, table7, fig1left, fig1mid,
// fig1right, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dlearn/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: table3|table4|table5|table6|table7|fig1left|fig1mid|fig1right|all")
		quick   = flag.Bool("quick", false, "shrink datasets and sweeps for a fast smoke run")
		seed    = flag.Int64("seed", 1, "random seed for data generation and splits")
		threads = flag.Int("threads", 16, "parallel coverage-testing workers")
		folds   = flag.Int("folds", 0, "cross-validation folds (default: 5, or 2 with -quick)")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	opts.Seed = *seed
	opts.Threads = *threads
	if *folds > 0 {
		opts.Folds = *folds
	}
	opts.Out = os.Stdout

	runners := map[string]func(bench.Options) error{
		"table3":   func(o bench.Options) error { _, err := bench.RunTable3(o); return err },
		"table4":   func(o bench.Options) error { _, err := bench.RunTable4(o); return err },
		"table5":   func(o bench.Options) error { _, err := bench.RunTable5(o); return err },
		"table6":   func(o bench.Options) error { _, err := bench.RunTable6(o); return err },
		"table7":   func(o bench.Options) error { _, err := bench.RunTable7(o); return err },
		"fig1left": func(o bench.Options) error { _, err := bench.RunFigure1Left(o); return err },
		"fig1mid":  func(o bench.Options) error { _, err := bench.RunFigure1Middle(o); return err },
		"fig1right": func(o bench.Options) error {
			_, err := bench.RunFigure1Right(o)
			return err
		},
	}
	order := []string{"table3", "table4", "table5", "table6", "table7", "fig1left", "fig1mid", "fig1right"}

	selected := strings.ToLower(*exp)
	if selected == "all" {
		for _, name := range order {
			if err := runners[name](opts); err != nil {
				fmt.Fprintf(os.Stderr, "dlearn-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[selected]
	if !ok {
		fmt.Fprintf(os.Stderr, "dlearn-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-bench: %v\n", err)
		os.Exit(1)
	}
}
