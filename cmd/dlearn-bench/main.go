// Command dlearn-bench runs the experiments that regenerate the tables and
// figures of "Learning Over Dirty Data Without Cleaning" (SIGMOD 2020) over
// the synthetic datasets shipped with this repository.
//
// Each experiment also emits a machine-readable timing summary —
// BENCH_<experiment>.json — aggregated from the learner's observer events
// (runs, iterations, clause decisions, per-phase seconds), so successive
// versions of the engine can be compared without parsing the tables.
// Interrupting the run (SIGINT/SIGTERM) cancels the in-flight experiment
// through the engine's context support.
//
// Usage:
//
//	dlearn-bench -exp table4            # one experiment at paper scale
//	dlearn-bench -exp all -quick        # every experiment, shrunk for a smoke run
//	dlearn-bench -exp table4 -json ""   # disable the JSON summary
//
// Experiments: table3, table4, table5, table6, table7, fig1left, fig1mid,
// fig1right, coverage, scale, all. The coverage experiment is a
// micro-benchmark of the candidate-evaluation pipeline; its
// BENCH_coverage.json records the throughput numbers tracked across engine
// versions, including the literal planner's win rate and node saving versus
// fixed-order search (plan_* fields). The scale experiment reruns that
// workload at 1x/10x(/100x) tuple multipliers and writes BENCH_scale.json
// with the data layer's growth curve (prepare seconds, resident bytes,
// snapshot bytes, cover tests/s at each scale).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strings"
	"syscall"

	"dlearn/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: table3|table4|table5|table6|table7|fig1left|fig1mid|fig1right|coverage|scale|all")
		quick   = flag.Bool("quick", false, "shrink datasets and sweeps for a fast smoke run")
		seed    = flag.Int64("seed", 1, "random seed for data generation and splits")
		threads = flag.Int("threads", 16, "parallel coverage-testing workers")
		folds   = flag.Int("folds", 0, "cross-validation folds (default: 5, or 2 with -quick)")
		jsonDir = flag.String("json", ".", "directory for BENCH_<exp>.json timing summaries (empty disables)")
		snapDir = flag.String("snapshot-dir", "", "snapshot directory for the coverage experiment's warm-start measurement (empty uses a throwaway temp dir)")
		snapMax = flag.Int64("snapshot-max-bytes", 0, "size cap on the snapshot store; least-recently-used snapshots are swept until it fits (0 = unbounded)")
		candPar = flag.Int("candidate-parallelism", 0, "outer-tier workers of the two-tier coverage scheduler (0 = default)")
		planner = flag.Bool("literal-planner", true, "order θ-subsumption search literals by per-probe selectivity (the coverage experiment always measures both orders)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	opts.Seed = *seed
	opts.Threads = *threads
	if *folds > 0 {
		opts.Folds = *folds
	}
	opts.SnapshotDir = *snapDir
	opts.SnapshotMaxBytes = *snapMax
	opts.CandidateParallelism = *candPar
	opts.DisableLiteralPlanner = !*planner
	opts.Out = os.Stdout

	runners := map[string]func(context.Context, bench.Options) error{
		"table3":   func(ctx context.Context, o bench.Options) error { _, err := bench.RunTable3(ctx, o); return err },
		"table4":   func(ctx context.Context, o bench.Options) error { _, err := bench.RunTable4(ctx, o); return err },
		"table5":   func(ctx context.Context, o bench.Options) error { _, err := bench.RunTable5(ctx, o); return err },
		"table6":   func(ctx context.Context, o bench.Options) error { _, err := bench.RunTable6(ctx, o); return err },
		"table7":   func(ctx context.Context, o bench.Options) error { _, err := bench.RunTable7(ctx, o); return err },
		"fig1left": func(ctx context.Context, o bench.Options) error { _, err := bench.RunFigure1Left(ctx, o); return err },
		"fig1mid":  func(ctx context.Context, o bench.Options) error { _, err := bench.RunFigure1Middle(ctx, o); return err },
		"fig1right": func(ctx context.Context, o bench.Options) error {
			_, err := bench.RunFigure1Right(ctx, o)
			return err
		},
	}
	order := []string{"table3", "table4", "table5", "table6", "table7", "fig1left", "fig1mid", "fig1right", "coverage", "scale"}

	// runOne executes one experiment with a fresh timing collector and, when
	// enabled, writes its BENCH_<name>.json summary next to the tables. The
	// coverage micro-benchmark produces its own summary shape instead of the
	// observer-event aggregate.
	runOne := func(name string) error {
		o := opts
		if name == "coverage" {
			summary, err := bench.RunCoverage(ctx, o)
			if err != nil {
				return err
			}
			if *jsonDir == "" {
				return nil
			}
			path := filepath.Join(*jsonDir, "BENCH_coverage.json")
			if err := bench.WriteCoverageJSON(path, summary); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
			fmt.Printf("wrote %s\n", path)
			return nil
		}
		if name == "scale" {
			summary, err := bench.RunScale(ctx, o)
			if err != nil {
				return err
			}
			if *jsonDir == "" {
				return nil
			}
			path := filepath.Join(*jsonDir, "BENCH_scale.json")
			if err := bench.WriteScaleJSON(path, summary); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
			fmt.Printf("wrote %s\n", path)
			return nil
		}
		run, ok := runners[name]
		if !ok {
			// order and runners diverged; fail with a message, not a nil call.
			return fmt.Errorf("experiment %q is listed but has no runner", name)
		}
		collector := bench.NewTimingCollector()
		o.Observer = collector
		if err := run(ctx, o); err != nil {
			return err
		}
		if *jsonDir == "" {
			return nil
		}
		path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
		if err := bench.WriteTimingJSON(path, collector.Summary(name)); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	selected := strings.ToLower(*exp)
	if selected == "all" {
		for _, name := range order {
			if err := runOne(name); err != nil {
				fmt.Fprintf(os.Stderr, "dlearn-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	if !slices.Contains(order, selected) {
		fmt.Fprintf(os.Stderr, "dlearn-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if err := runOne(selected); err != nil {
		fmt.Fprintf(os.Stderr, "dlearn-bench: %v\n", err)
		os.Exit(1)
	}
}
