package dlearn

import "dlearn/internal/persist"

// Persistence: preparing training examples for coverage testing — ground
// bottom clauses preprocessed for θ-subsumption plus their CFD/repair
// expansions — dominates cold starts, yet depends only on the database, the
// constraints and the preparation options. An Engine configured with
// WithSnapshotStore (or WithSnapshotDir) persists the prepared examples
// under a content-addressed key and serves later runs over the same inputs
// from the snapshot, turning tens of seconds of preparation into a
// sub-second load. Any input change — a tuple, an MD or CFD, a bottom-clause
// or budget option — changes the key, so a stale snapshot can never be
// served; corrupted or truncated snapshots fall back to fresh preparation.
type (
	// SnapshotStore is a content-addressed store for prepared-example
	// snapshots. Implementations must be safe for concurrent use; DirSnapshotStore
	// is the built-in filesystem implementation.
	SnapshotStore = persist.Store
	// SnapshotKey is the content address of one snapshot: a SHA-256 over
	// every input that influences the prepared examples.
	SnapshotKey = persist.Key
	// DirSnapshotStore stores one snapshot file per key in a directory.
	DirSnapshotStore = persist.DirStore
)

// ErrSnapshotNotFound is returned by SnapshotStore.Load when no snapshot
// exists for a key.
var ErrSnapshotNotFound = persist.ErrNotFound

// NewDirSnapshotStore returns a filesystem-backed snapshot store rooted at
// dir. The directory is created on first write.
func NewDirSnapshotStore(dir string) *DirSnapshotStore { return persist.NewDirStore(dir) }
